//===- bench/bench_version_chain.cpp - multi-version update pipeline ------===//
//
// Drives a firmware lineage (a sense-and-report app growing features over
// five releases) through the VersionStore under UCC-RA and under the
// update-oblivious GCC-RA baseline, then plans a mixed-version fleet
// campaign. Reports the cumulative over-the-air edit-script cost of the
// whole chain, the direct-vs-composed planner decision for the oldest
// stragglers, and the dissemination energy of bringing a line fleet to the
// head release.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/VersionStore.h"
#include "net/Network.h"
#include "serve/PlanService.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ucc;
using namespace uccbench;

namespace {

/// Shared runtime the whole lineage keeps: sampling, smoothing, and a
/// little fixed-point math, TinyOS-style.
const char *Prelude = R"(
int sys_ticks;
int prev_sample;
int history[8];
int hist_pos;
int report_count;

int clamp8(int v) {
  return v & 0xff;
}

int smooth_sample(int raw) {
  int cur = clamp8(raw);
  int sm = (prev_sample * 3 + cur) >> 2;
  history[hist_pos] = sm;
  hist_pos = (hist_pos + 1) & 7;
  prev_sample = sm;
  return sm;
}

int checksum16(int a, int b) {
  int s = a + b;
  int folded = (s & 0xff) + ((s >> 8) & 0xff);
  return folded & 0xff;
}
)";

/// The release lineage. Each step is a realistic maintenance update:
///   v0  raw sampling, report every tick
///   v1  smooth the samples before reporting       (statement level)
///   v2  add a threshold alarm handler             (function level)
///   v3  checksum the report, retune the threshold (statement level)
///   v4  duty-cycle reports by history energy      (structure level)
std::vector<std::string> releaseChain() {
  std::vector<std::string> Chain;

  Chain.push_back(std::string(Prelude) + R"(
void report(int value) {
  __out(1, value & 0xff);
  report_count = report_count + 1;
}

void main() {
  int ticks = 0;
  while (ticks < 48) {
    sys_ticks = __in(3);
    int raw = __in(4);
    report(raw & 0xff);
    ticks = ticks + 1;
  }
  __out(15, report_count);
  __halt();
}
)");

  Chain.push_back(std::string(Prelude) + R"(
void report(int value) {
  __out(1, value & 0xff);
  report_count = report_count + 1;
}

void main() {
  int ticks = 0;
  while (ticks < 48) {
    sys_ticks = __in(3);
    int raw = __in(4);
    int sm = smooth_sample(raw);
    report(sm);
    ticks = ticks + 1;
  }
  __out(15, report_count);
  __halt();
}
)");

  Chain.push_back(std::string(Prelude) + R"(
int alarm_count;

void report(int value) {
  __out(1, value & 0xff);
  report_count = report_count + 1;
}

void check_alarm(int sm) {
  if (sm > 200) {
    __out(2, sm & 0xff);
    alarm_count = alarm_count + 1;
  }
}

void main() {
  int ticks = 0;
  while (ticks < 48) {
    sys_ticks = __in(3);
    int raw = __in(4);
    int sm = smooth_sample(raw);
    check_alarm(sm);
    report(sm);
    ticks = ticks + 1;
  }
  __out(15, report_count + alarm_count);
  __halt();
}
)");

  Chain.push_back(std::string(Prelude) + R"(
int alarm_count;

void report(int value) {
  int code = checksum16(value, sys_ticks);
  __out(1, value & 0xff);
  __out(3, code);
  report_count = report_count + 1;
}

void check_alarm(int sm) {
  if (sm > 180) {
    __out(2, sm & 0xff);
    alarm_count = alarm_count + 1;
  }
}

void main() {
  int ticks = 0;
  while (ticks < 48) {
    sys_ticks = __in(3);
    int raw = __in(4);
    int sm = smooth_sample(raw);
    check_alarm(sm);
    report(sm);
    ticks = ticks + 1;
  }
  __out(15, report_count + alarm_count);
  __halt();
}
)");

  Chain.push_back(std::string(Prelude) + R"(
int alarm_count;

int history_energy() {
  int acc = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    int h = history[i];
    acc = acc + ((h * h) >> 4);
  }
  return acc & 0x7fff;
}

void report(int value) {
  int code = checksum16(value, sys_ticks);
  __out(1, value & 0xff);
  __out(3, code);
  report_count = report_count + 1;
}

void check_alarm(int sm) {
  if (sm > 180) {
    __out(2, sm & 0xff);
    alarm_count = alarm_count + 1;
  }
}

void main() {
  int ticks = 0;
  while (ticks < 48) {
    sys_ticks = __in(3);
    int raw = __in(4);
    int sm = smooth_sample(raw);
    check_alarm(sm);
    if ((ticks & 3) == 0 || history_energy() > 512) {
      report(sm);
    }
    ticks = ticks + 1;
  }
  __out(15, report_count + alarm_count);
  __halt();
}
)");

  return Chain;
}

VersionStore buildStore(const std::vector<std::string> &Chain,
                        const CompileOptions &Opts) {
  VersionStore Store;
  DiagnosticEngine Diag;
  if (Store.addInitial(Chain.front(), Opts, Diag) != 0) {
    std::fprintf(stderr, "bench_version_chain: %s\n", Diag.str().c_str());
    std::exit(1);
  }
  for (size_t V = 1; V < Chain.size(); ++V) {
    if (Store.addUpdate(Chain[V], Opts, Diag) != static_cast<int>(V)) {
      std::fprintf(stderr, "bench_version_chain: %s\n", Diag.str().c_str());
      std::exit(1);
    }
  }
  return Store;
}

size_t cumulativeScriptBytes(const VersionStore &Store) {
  size_t Total = 0;
  for (const StoredVersion &V : Store.versions())
    Total += V.ScriptBytesFromParent;
  return Total;
}

} // namespace

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "version_chain");

  std::vector<std::string> Chain = releaseChain();
  const int FleetNodes = Bench.quick() ? 12 : 40;
  if (Bench.quick())
    Chain.resize(3);
  const int Head = static_cast<int>(Chain.size()) - 1;

  std::printf("Version chain: %zu releases through the VersionStore, "
              "line(%d) fleet\n\n", Chain.size(), FleetNodes);

  VersionStore Ucc = buildStore(Chain, uccOptions());
  VersionStore Gcc = buildStore(Chain, baselineOptions());

  std::printf("%4s  %10s  %10s  %6s  %6s\n", "step", "UCC bytes",
              "GCC bytes", "code", "data");
  for (int V = 1; V <= Head; ++V)
    std::printf("v%d>v%d  %10zu  %10zu  %6zu  %6d\n", V - 1, V,
                Ucc.find(V)->ScriptBytesFromParent,
                Gcc.find(V)->ScriptBytesFromParent,
                Ucc.find(V)->Image.Code.size(),
                Ucc.find(V)->Layout.DataWords);

  size_t CumUcc = cumulativeScriptBytes(Ucc);
  size_t CumGcc = cumulativeScriptBytes(Gcc);
  double Reduction =
      CumGcc > 0 ? 100.0 * (static_cast<double>(CumGcc) -
                            static_cast<double>(CumUcc)) /
                       static_cast<double>(CumGcc)
                 : 0.0;
  std::printf("%4s  %10zu  %10zu  (%.1f%% fewer bytes over the air)\n\n",
              "sum", CumUcc, CumGcc, Reduction);

  // The planner's call for the oldest straggler: ship the composed
  // stepwise chain or a fresh endpoint diff?
  auto Plan = Ucc.plan(0, Head);
  if (!Plan) {
    std::fprintf(stderr, "bench_version_chain: plan(0, %d) failed\n", Head);
    return 1;
  }
  std::printf("plan v0 -> v%d: direct %zu bytes, composed chain %zu bytes "
              "(%d steps) -> %s\n\n", Head, Plan->DirectBytes,
              Plan->ChainedBytes, Plan->ChainSteps,
              Plan->Route == UpdatePlan::RouteKind::Chained ? "chained"
                                                            : "direct");

  // Mixed-version fleet: deployed versions cycle through the lineage, the
  // sink already runs the head release.
  Topology T = Topology::line(FleetNodes);
  std::vector<int> Deployed(static_cast<size_t>(FleetNodes));
  Deployed[0] = Head;
  for (int N = 1; N < FleetNodes; ++N)
    Deployed[static_cast<size_t>(N)] = N % (Head + 1);

  RadioChannel Channel;
  Channel.LossRate = 0.1;
  Channel.Seed = 42;
  DiagnosticEngine Diag;
  // The campaign runs through the serving layer, like the uccc tool and
  // a real long-lived sink would; plans (and so every campaign metric)
  // are byte-identical to the store-backed path.
  PlanService Service(std::move(Ucc));
  auto Campaign = planFleetCampaign(Service, T, Deployed, Head, Diag,
                                    PacketFormat(), Mica2Power(), Channel);
  if (!Campaign) {
    std::fprintf(stderr, "bench_version_chain: %s\n", Diag.str().c_str());
    return 1;
  }
  std::printf("campaign to v%d: %zu cohorts, %d node(s) updated, "
              "%d already current\n", Head, Campaign->Cohorts.size(),
              Campaign->NodesUpdated, Campaign->NodesCurrent);
  for (const UpdateCohort &C : Campaign->Cohorts)
    std::printf("  from v%d: %zu node(s), %zu script bytes, %.4f J\n",
                C.FromVersion, C.Nodes.size(), C.ScriptBytes,
                C.Flood.totalJoules());
  std::printf("  total: %zu bytes on air, %.4f J\n",
              Campaign->totalBytesOnAir(), Campaign->totalJoules());

  Bench.metric("chain_steps", static_cast<double>(Head));
  Bench.metric("cum_script_bytes_ucc", static_cast<double>(CumUcc));
  Bench.metric("cum_script_bytes_gcc", static_cast<double>(CumGcc));
  Bench.metric("reduction_pct", Reduction);
  Bench.metric("plan_direct_bytes",
               static_cast<double>(Plan->DirectBytes));
  Bench.metric("plan_chained_bytes",
               static_cast<double>(Plan->ChainedBytes));
  Bench.metric("plan_route_chained",
               Plan->Route == UpdatePlan::RouteKind::Chained ? 1.0 : 0.0);
  Bench.metric("campaign_cohorts",
               static_cast<double>(Campaign->Cohorts.size()));
  Bench.metric("campaign_bytes_on_air",
               static_cast<double>(Campaign->totalBytesOnAir()));
  Bench.metric("campaign_joules", Campaign->totalJoules());
  return 0;
}
