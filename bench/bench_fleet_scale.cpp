//===- bench/bench_fleet_scale.cpp - event simulator at fleet scale -------===//
//
// Scales the discrete-event dissemination engine (net/EventSim) far past
// the workload topologies: line and grid fleets from 1k nodes up to 100k
// in the quick profile and 1M in the full profile, under ideal channels,
// lossy contended channels, and duty cycling. Reports events/sec, wall
// time, and joules per scenario, and hard-fails unless a 100k-node run is
// byte-identical between 1 worker and 8 workers (results, per-node
// joules, and every net.* counter/gauge) — the parallel determinism
// contract of docs/NETWORK.md.
//
// Deterministic metrics (completion, transmitters, retransmissions,
// collisions, event counts, joules) gate against baseline.json;
// `_seconds` metrics are wall-clock and excluded.
//
// `--smoke` runs one small lossy/duty-cycled scenario with the parallel
// path forced on and exits — CI drives it under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "net/EventSim.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace ucc;
using namespace uccbench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// A contended fleet: moderate loss, CSMA on, short duty cycle.
FleetConfig harshConfig() {
  FleetConfig Cfg;
  Cfg.Link.LossRate = 0.2;
  Cfg.Link.LossJitter = 0.1;
  Cfg.Duty.PeriodSeconds = 0.1;
  Cfg.Duty.OnFraction = 0.5;
  Cfg.Mac.MaxBursts = 6;
  return Cfg;
}

/// The 100k-node determinism gate scenario (also a headline datapoint).
FleetConfig fleet100kConfig() {
  FleetConfig Cfg;
  Cfg.Link.LossRate = 0.05;
  Cfg.Mac.MaxBursts = 4;
  Cfg.Seed = 1234;
  return Cfg;
}

bool sameResult(const FleetResult &A, const FleetResult &B) {
  return A.Packets == B.Packets && A.BytesOnAir == B.BytesOnAir &&
         A.MaxHops == B.MaxHops && A.Transmitters == B.Transmitters &&
         A.NodesComplete == B.NodesComplete &&
         A.NodesIncomplete == B.NodesIncomplete &&
         A.Retransmissions == B.Retransmissions &&
         A.FailedPackets == B.FailedPackets &&
         A.Collisions == B.Collisions && A.Backoffs == B.Backoffs &&
         A.SleepDeferrals == B.SleepDeferrals &&
         A.SleepMisses == B.SleepMisses && A.Overheard == B.Overheard &&
         A.Beacons == B.Beacons && A.Requests == B.Requests &&
         A.EventsProcessed == B.EventsProcessed && A.Batches == B.Batches &&
         A.ParallelBatches == B.ParallelBatches &&
         std::memcmp(&A.Energy, &B.Energy, sizeof(A.Energy)) == 0 &&
         A.PerNodeJoules.size() == B.PerNodeJoules.size() &&
         std::memcmp(A.PerNodeJoules.data(), B.PerNodeJoules.data(),
                     A.PerNodeJoules.size() * sizeof(double)) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int K = 1; K < Argc; ++K)
    if (std::strcmp(Argv[K], "--smoke") == 0)
      Smoke = true;

  BenchHarness Bench(Argc, Argv, "fleet_scale");

  if (Smoke) {
    // One small contended scenario with the fan-out forced on; run it
    // under TSan with UCC_JOBS > 1 to race-check the region workers.
    FleetConfig Cfg = harshConfig();
    Cfg.Regions = 8;
    Cfg.ParallelThreshold = 1;
    FleetResult R = simulateFlood(Topology::grid(16, 16), 300, Cfg);
    std::printf("smoke: %d/%d complete, %lld events, %lld parallel "
                "batches\n", R.NodesComplete, 256,
                static_cast<long long>(R.EventsProcessed),
                static_cast<long long>(R.ParallelBatches));
    return R.NodesComplete == 256 && R.ParallelBatches > 0 ? 0 : 1;
  }

  const size_t ScriptBytes = 256;
  std::printf("Fleet-scale dissemination: %s profile, script %zu B\n\n",
              Bench.quick() ? "quick" : "full", ScriptBytes);
  std::printf("%-14s %9s %9s %11s %11s %9s %12s\n", "scenario", "nodes",
              "complete", "events", "events/s", "wall s", "joules");

  auto RunOne = [&](const char *Name, const Topology &T,
                    const FleetConfig &Cfg) {
    auto Start = std::chrono::steady_clock::now();
    FleetResult R = simulateFlood(T, ScriptBytes, Cfg);
    double Sec = secondsSince(Start);
    double Eps = Sec > 0 ? static_cast<double>(R.EventsProcessed) / Sec : 0;
    std::printf("%-14s %9d %9d %11lld %11.0f %9.3f %12.4f\n", Name,
                T.NumNodes, R.NodesComplete,
                static_cast<long long>(R.EventsProcessed), Eps, Sec,
                R.totalJoules());
    std::string Tag = Name;
    Bench.metric(Tag + "_nodes_complete",
                 static_cast<double>(R.NodesComplete));
    Bench.metric(Tag + "_transmitters", static_cast<double>(R.Transmitters));
    Bench.metric(Tag + "_retransmissions",
                 static_cast<double>(R.Retransmissions));
    Bench.metric(Tag + "_collisions", static_cast<double>(R.Collisions));
    Bench.metric(Tag + "_events", static_cast<double>(R.EventsProcessed));
    Bench.metric(Tag + "_batches", static_cast<double>(R.Batches));
    Bench.metric(Tag + "_joules", R.totalJoules());
    Bench.metric(Tag + "_wall_seconds", Sec);
    Bench.sampleMetrics();
    return R;
  };

  RunOne("line1k", Topology::line(1000), FleetConfig());
  RunOne("grid1k_ideal", Topology::grid(32, 32), FleetConfig());
  RunOne("grid1k_harsh", Topology::grid(32, 32), harshConfig());
  // A single-hop fleet of 100k leaves: one burst, giant event batches —
  // the best case for the parallel region workers.
  RunOne("star100k", Topology::star(100'000), FleetConfig());

  // The 100k-node multi-hop run doubles as the determinism gate: jobs 1
  // and jobs 8 must produce byte-identical results and telemetry.
  Topology Grid100k = Topology::grid(317, 317);
  FleetConfig Jobs1 = fleet100kConfig();
  Jobs1.Jobs = 1;
  FleetConfig Jobs8 = fleet100kConfig();
  Jobs8.Jobs = 8;

  Telemetry T1, T8;
  FleetResult R1, R8;
  double Sec8 = 0.0;
  {
    TelemetryScope Scope(T1);
    R1 = simulateFlood(Grid100k, ScriptBytes, Jobs1);
  }
  {
    TelemetryScope Scope(T8);
    auto Start = std::chrono::steady_clock::now();
    R8 = simulateFlood(Grid100k, ScriptBytes, Jobs8);
    Sec8 = secondsSince(Start);
  }
  double Eps = Sec8 > 0 ? static_cast<double>(R8.EventsProcessed) / Sec8 : 0;
  std::printf("%-14s %9d %9d %11lld %11.0f %9.3f %12.4f\n", "grid100k",
              Grid100k.NumNodes, R8.NodesComplete,
              static_cast<long long>(R8.EventsProcessed), Eps, Sec8,
              R8.totalJoules());

  if (!sameResult(R1, R8) || T1.counters() != T8.counters() ||
      T1.gauges() != T8.gauges()) {
    std::fprintf(stderr, "bench_fleet_scale: jobs 1 vs 8 are NOT "
                         "byte-identical on grid100k\n");
    return 1;
  }
  std::printf("%-14s jobs 1 vs 8 byte-identical (results + net.* "
              "telemetry)\n", "grid100k");

  Bench.metric("grid100k_nodes_complete",
               static_cast<double>(R8.NodesComplete));
  Bench.metric("grid100k_transmitters",
               static_cast<double>(R8.Transmitters));
  Bench.metric("grid100k_retransmissions",
               static_cast<double>(R8.Retransmissions));
  Bench.metric("grid100k_collisions", static_cast<double>(R8.Collisions));
  Bench.metric("grid100k_events",
               static_cast<double>(R8.EventsProcessed));
  Bench.metric("grid100k_batches", static_cast<double>(R8.Batches));
  Bench.metric("grid100k_parallel_batches",
               static_cast<double>(R8.ParallelBatches));
  Bench.metric("grid100k_joules", R8.totalJoules());
  Bench.metric("grid100k_wall_seconds", Sec8);
  Bench.metric("grid100k_jobs_identical", 1.0);
  Bench.sampleMetrics();

  if (!Bench.quick()) {
    FleetConfig MillionCfg;
    MillionCfg.Link.LossRate = 0.02;
    RunOne("grid1m", Topology::grid(1000, 1000), MillionCfg);
  }
  return 0;
}
