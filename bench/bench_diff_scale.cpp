//===- bench/bench_diff_scale.cpp - diff engine at production image scale -===//
//
// Scales the alignment engine far past workload size: synthetic images of
// 64k up to 1M instruction words under three edit patterns (sparse point
// edits, clustered rewrite regions, shuffled block moves), plus a head-to-
// head against the exact-LCS oracle. The oracle's quadratic table makes it
// infeasible at 100k words (a ~40 GB table), so the comparison measures
// both backends at an oracle-feasible size and extrapolates the oracle
// quadratically to 100k — the engine is measured there for real. The
// acceptance bar is the ISSUE-5 target: >=10x over the (extrapolated)
// oracle at 100k words.
//
// Deterministic metrics (script bytes, matches, anchor/Myers/fallback
// counters) gate against baseline.json; `_seconds` metrics are wall-clock
// and excluded.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "diff/EditScript.h"
#include "support/RNG.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ucc;
using namespace uccbench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Synthetic firmware image: mostly high-entropy words (instruction
/// encodings rarely repeat exactly) with a repetitive minority (common
/// idioms — push/pop/nop sequences).
std::vector<uint32_t> makeImage(RNG &Rng, size_t N) {
  std::vector<uint32_t> Words(N);
  for (uint32_t &W : Words)
    W = Rng.chance(3, 10)
            ? static_cast<uint32_t>(Rng.below(32))        // common idioms
            : static_cast<uint32_t>(Rng.below(1u << 30)); // distinct code
  return Words;
}

/// Sparse pattern: isolated point edits scattered over the image (the
/// shape statement-level maintenance produces).
std::vector<uint32_t> editSparse(RNG &Rng, std::vector<uint32_t> Words) {
  size_t Edits = Words.size() / 100;
  for (size_t K = 0; K < Edits; ++K)
    Words[Rng.below(Words.size())] =
        static_cast<uint32_t>(Rng.below(1u << 30));
  return Words;
}

/// Clustered pattern: a handful of dense rewrite regions (new features,
/// function-level changes).
std::vector<uint32_t> editClustered(RNG &Rng, std::vector<uint32_t> Words) {
  for (int C = 0; C < 8; ++C) {
    size_t Len = Words.size() / 64;
    size_t At = Rng.below(Words.size() - Len);
    for (size_t K = 0; K < Len; ++K)
      Words[At + K] = static_cast<uint32_t>(Rng.below(1u << 30));
    // Each cluster also grows a little (insertions shift everything after).
    std::vector<uint32_t> Fresh(Len / 4);
    for (uint32_t &W : Fresh)
      W = static_cast<uint32_t>(Rng.below(1u << 30));
    Words.insert(Words.begin() + static_cast<long>(At + Len), Fresh.begin(),
                 Fresh.end());
  }
  return Words;
}

/// Shuffled pattern: whole blocks relocated (reordered functions — what
/// anchors and the block-copy fallback exist for).
std::vector<uint32_t> editShuffled(RNG &Rng, std::vector<uint32_t> Words) {
  for (int M = 0; M < 16; ++M) {
    size_t Len = 1 + Rng.below(Words.size() / 16);
    size_t From = Rng.below(Words.size() - Len + 1);
    std::vector<uint32_t> Block(
        Words.begin() + static_cast<long>(From),
        Words.begin() + static_cast<long>(From + Len));
    Words.erase(Words.begin() + static_cast<long>(From),
                Words.begin() + static_cast<long>(From + Len));
    size_t To = Rng.below(Words.size() + 1);
    Words.insert(Words.begin() + static_cast<long>(To), Block.begin(),
                 Block.end());
  }
  return Words;
}

struct Pattern {
  const char *Name;
  std::vector<uint32_t> (*Apply)(RNG &, std::vector<uint32_t>);
};

const Pattern Patterns[] = {
    {"sparse", editSparse},
    {"clustered", editClustered},
    {"shuffled", editShuffled},
};

} // namespace

int main(int Argc, char **Argv) {
  BenchHarness Bench(Argc, Argv, "diff_scale");

  std::vector<size_t> Sizes = Bench.quick()
                                  ? std::vector<size_t>{size_t(64) << 10}
                                  : std::vector<size_t>{size_t(64) << 10,
                                                        size_t(256) << 10,
                                                        size_t(1) << 20};

  std::printf("Diff engine at scale: synthetic images, %zu size(s), "
              "3 edit patterns\n\n", Sizes.size());
  std::printf("%-10s %9s  %9s  %9s  %8s  %8s  %8s  %9s\n", "pattern",
              "words", "matches", "script B", "anchors", "myers_d",
              "fallback", "seconds");

  for (size_t N : Sizes) {
    for (const Pattern &P : Patterns) {
      RNG Rng(0xD1FF5CA1E ^ N);
      std::vector<uint32_t> Old = makeImage(Rng, N);
      std::vector<uint32_t> New = P.Apply(Rng, Old);

      DiffStats Stats;
      auto Start = std::chrono::steady_clock::now();
      auto Matches = alignWords(Old, New, DiffOptions{}, &Stats);
      double EngineSec = secondsSince(Start);

      EditScript Script = scriptFromMatches(Old, New, Matches);
      std::vector<uint32_t> Patched;
      if (!applyEditScript(Old, Script, Patched) || Patched != New) {
        std::fprintf(stderr, "bench_diff_scale: %s/%zu script does not "
                             "patch\n", P.Name, N);
        return 1;
      }

      std::printf("%-10s %9zu  %9zu  %9zu  %8lld  %8lld  %8lld  %9.4f\n",
                  P.Name, N, Matches.size(), Script.encodedBytes(),
                  static_cast<long long>(Stats.Anchors),
                  static_cast<long long>(Stats.MyersD),
                  static_cast<long long>(Stats.FallbackBlocks), EngineSec);

      std::string Tag =
          std::string(P.Name) + "_" + std::to_string(N >> 10) + "k";
      Bench.metric(Tag + "_matches", static_cast<double>(Matches.size()));
      Bench.metric(Tag + "_script_bytes",
                   static_cast<double>(Script.encodedBytes()));
      Bench.metric(Tag + "_anchors", static_cast<double>(Stats.Anchors));
      Bench.metric(Tag + "_myers_d", static_cast<double>(Stats.MyersD));
      Bench.metric(Tag + "_fallback_blocks",
                   static_cast<double>(Stats.FallbackBlocks));
      Bench.metric(Tag + "_engine_seconds", EngineSec);
    }
  }

  // Oracle head-to-head. The full table at 100k words would need ~40 GB,
  // so the oracle runs at a feasible size and extrapolates by its exact
  // O(M*N) cell count; the engine runs at 100k for real.
  const size_t OracleN = 8192;
  const size_t TargetN = 100'000;
  RNG Rng(0xBEEF);
  std::vector<uint32_t> SmallOld = makeImage(Rng, OracleN);
  std::vector<uint32_t> SmallNew = editSparse(Rng, SmallOld);

  auto Start = std::chrono::steady_clock::now();
  auto Exact = alignWordsExact(SmallOld, SmallNew);
  double OracleSec = secondsSince(Start);
  if (!Exact) {
    std::fprintf(stderr, "bench_diff_scale: oracle refused %zu words\n",
                 OracleN);
    return 1;
  }

  DiffOptions Engine;
  Engine.ForceEngine = true;
  DiffStats SmallStats;
  Start = std::chrono::steady_clock::now();
  auto SmallMatches = alignWords(SmallOld, SmallNew, Engine, &SmallStats);
  double EngineSmallSec = secondsSince(Start);

  std::vector<uint32_t> BigOld = makeImage(Rng, TargetN);
  std::vector<uint32_t> BigNew = editSparse(Rng, BigOld);
  DiffStats BigStats;
  Start = std::chrono::steady_clock::now();
  auto BigMatches = alignWords(BigOld, BigNew, DiffOptions{}, &BigStats);
  double EngineBigSec = secondsSince(Start);

  double Scale = (static_cast<double>(TargetN) / OracleN) *
                 (static_cast<double>(TargetN) / OracleN);
  double OracleBigSec = OracleSec * Scale;
  double Speedup = EngineBigSec > 0 ? OracleBigSec / EngineBigSec : 0.0;

  std::printf("\noracle head-to-head (sparse pattern):\n");
  std::printf("  %zu words: oracle %.4f s (%zu matches), engine %.4f s "
              "(%zu matches)\n", OracleN, OracleSec, Exact->size(),
              EngineSmallSec, SmallMatches.size());
  std::printf("  %zu words: engine %.4f s (%zu matches); oracle "
              "extrapolated %.1f s -> %.0fx speedup\n", TargetN,
              EngineBigSec, BigMatches.size(), OracleBigSec, Speedup);
  std::printf("  engine resident memory is O(min(M,N)): match vector + "
              "Myers V arrays; no quadratic table\n");

  // Match-quality parity at the oracle-feasible size (deterministic).
  Bench.metric("oracle_8k_matches", static_cast<double>(Exact->size()));
  Bench.metric("engine_8k_matches",
               static_cast<double>(SmallMatches.size()));
  Bench.metric("engine_100k_matches",
               static_cast<double>(BigMatches.size()));
  Bench.metric("oracle_8k_seconds", OracleSec);
  Bench.metric("engine_8k_seconds", EngineSmallSec);
  Bench.metric("engine_100k_seconds", EngineBigSec);
  Bench.metric("oracle_extrapolated_100k_seconds", OracleBigSec);
  Bench.metric("oracle_speedup_100k_x_seconds", Speedup);
  return 0;
}
