//===- bench/bench_fig10_dissemination.cpp - paper Fig. 10 ----------------===//
//
// Reproduces Fig. 10 (the code dissemination cost): Diff_inst for update
// test cases 1..12 under the update-oblivious baseline (GCC-RA, diffed with
// the best possible binary match) and UCC-RA, plus the case-13 large-change
// discussion of section 5.3 (instructions reused vs updated).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig10_dissemination");
  std::printf("Figure 10: code dissemination cost (Diff_inst per update)\n");
  std::printf("Lower is better; GCC-RA is diffed with the best possible "
              "binary match.\n\n");
  std::printf("%4s  %-6s  %-42s  %8s  %8s  %9s\n", "case", "level",
              "update", "GCC-RA", "UCC-RA", "reduction");

  double TotalBase = 0.0, TotalUcc = 0.0;
  for (const UpdateCase &Case : updateCases()) {
    if (Case.Id > 12)
      continue;
    CaseResult R = evaluateCase(Case);
    double Reduction =
        R.DiffInstBaseline > 0
            ? 100.0 * (R.DiffInstBaseline - R.DiffInstUcc) /
                  R.DiffInstBaseline
            : 0.0;
    std::printf("%4d  %-6s  %-42.42s  %8d  %8d  %8.1f%%\n", Case.Id,
                updateLevelName(Case.Level), Case.Description.c_str(),
                R.DiffInstBaseline, R.DiffInstUcc, Reduction);
    TotalBase += R.DiffInstBaseline;
    TotalUcc += R.DiffInstUcc;
  }
  std::printf("%4s  %-6s  %-42s  %8.0f  %8.0f  %8.1f%%\n", "sum", "", "",
              TotalBase, TotalUcc,
              TotalBase > 0 ? 100.0 * (TotalBase - TotalUcc) / TotalBase
                            : 0.0);

  // Section 5.3's case-13 narrative: the application swap. Report reuse.
  const UpdateCase &Case13 = updateCases()[12];
  CaseResult R13 = evaluateCase(Case13);
  std::printf("\nCase 13 (%s):\n", Case13.Description.c_str());
  std::printf("  GCC-RA reuses %d instructions, must update %d\n",
              R13.ReusedBaseline, R13.DiffInstBaseline);
  std::printf("  UCC-RA reuses %d instructions, must update %d\n",
              R13.ReusedUcc, R13.DiffInstUcc);
  if (R13.ReusedBaseline > 0)
    std::printf("  UCC-RA reuses %d more (%.1f%% over GCC-RA)\n",
                R13.ReusedUcc - R13.ReusedBaseline,
                100.0 * (R13.ReusedUcc - R13.ReusedBaseline) /
                    R13.ReusedBaseline);

  Bench.metric("diff_inst_gcc_total", TotalBase);
  Bench.metric("diff_inst_ucc_total", TotalUcc);
  Bench.metric("reduction_pct",
               TotalBase > 0
                   ? 100.0 * (TotalBase - TotalUcc) / TotalBase
                   : 0.0);
  Bench.metric("case13_reused_gcc",
               static_cast<double>(R13.ReusedBaseline));
  Bench.metric("case13_reused_ucc", static_cast<double>(R13.ReusedUcc));
  return 0;
}
