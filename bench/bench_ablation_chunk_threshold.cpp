//===- bench/bench_ablation_chunk_threshold.cpp - K sensitivity (A2) ------===//
//
// Design-choice ablation for the chunking threshold K of section 3.2:
// unchanged runs shorter than K are folded into the surrounding changed
// chunk. K=1 trusts every matched instruction; large K gives up on short
// matched runs (retransmitting them) in exchange for more allocation
// freedom inside changed regions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <map>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "ablation_chunk_threshold");
  std::printf("Ablation A2: chunking threshold K (section 3.2)\n");
  std::printf("Diff_inst per update case as K varies.\n\n");

  const int Ks[] = {1, 2, 3, 5, 8, 16};
  std::printf("%4s |", "case");
  for (int K : Ks)
    std::printf("   K=%-3d", K);
  std::printf("\n");

  // Each case's K sweep is independent: run the cases concurrently under
  // --jobs, then print and total in case order.
  std::vector<const UpdateCase *> Cases;
  for (const UpdateCase &Case : updateCases())
    if (Case.Id <= 12)
      Cases.push_back(&Case);
  constexpr size_t NumKs = sizeof(Ks) / sizeof(Ks[0]);
  std::vector<int> Grid(Cases.size() * NumKs, 0);
  parallelFor(static_cast<int>(Cases.size()), Bench.jobs(), [&](int I) {
    const UpdateCase &Case = *Cases[static_cast<size_t>(I)];
    CompileOutput V1 = compileOrDie(Case.OldSource, baselineOptions());
    for (size_t J = 0; J < NumKs; ++J) {
      CompileOptions Opts = uccOptions();
      Opts.Ucc.ChunkK = Ks[J];
      CompileOutput V2 = recompileOrDie(Case.NewSource, V1.Record, Opts);
      Grid[static_cast<size_t>(I) * NumKs + J] =
          diffImages(V1.Image, V2.Image).totalDiffInst();
    }
  });

  std::map<int, int64_t> TotalByK;
  for (size_t I = 0; I < Cases.size(); ++I) {
    std::printf("%4d |", Cases[I]->Id);
    for (size_t J = 0; J < NumKs; ++J) {
      int Diff = Grid[I * NumKs + J];
      TotalByK[Ks[J]] += Diff;
      std::printf("  %6d", Diff);
    }
    std::printf("\n");
  }
  Bench.metric("diff_inst_total_k1", static_cast<double>(TotalByK[1]));
  Bench.metric("diff_inst_total_k3", static_cast<double>(TotalByK[3]));
  Bench.metric("diff_inst_total_k16", static_cast<double>(TotalByK[16]));
  std::printf("\nSmall K preserves the most matched instructions; the "
              "default K=3 trades a little similarity for\nrobustness "
              "against spurious one-instruction matches.\n");
  return 0;
}
