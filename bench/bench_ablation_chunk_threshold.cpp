//===- bench/bench_ablation_chunk_threshold.cpp - K sensitivity (A2) ------===//
//
// Design-choice ablation for the chunking threshold K of section 3.2:
// unchanged runs shorter than K are folded into the surrounding changed
// chunk. K=1 trusts every matched instruction; large K gives up on short
// matched runs (retransmitting them) in exchange for more allocation
// freedom inside changed regions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <map>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "ablation_chunk_threshold");
  std::printf("Ablation A2: chunking threshold K (section 3.2)\n");
  std::printf("Diff_inst per update case as K varies.\n\n");

  const int Ks[] = {1, 2, 3, 5, 8, 16};
  std::printf("%4s |", "case");
  for (int K : Ks)
    std::printf("   K=%-3d", K);
  std::printf("\n");

  std::map<int, int64_t> TotalByK;
  for (const UpdateCase &Case : updateCases()) {
    if (Case.Id > 12)
      continue;
    std::printf("%4d |", Case.Id);
    CompileOutput V1 = compileOrDie(Case.OldSource, baselineOptions());
    for (int K : Ks) {
      CompileOptions Opts = uccOptions();
      Opts.Ucc.ChunkK = K;
      CompileOutput V2 = recompileOrDie(Case.NewSource, V1.Record, Opts);
      int Diff = diffImages(V1.Image, V2.Image).totalDiffInst();
      TotalByK[K] += Diff;
      std::printf("  %6d", Diff);
    }
    std::printf("\n");
  }
  Bench.metric("diff_inst_total_k1", static_cast<double>(TotalByK[1]));
  Bench.metric("diff_inst_total_k3", static_cast<double>(TotalByK[3]));
  Bench.metric("diff_inst_total_k16", static_cast<double>(TotalByK[16]));
  std::printf("\nSmall K preserves the most matched instructions; the "
              "default K=3 trades a little similarity for\nrobustness "
              "against spurious one-instruction matches.\n");
  return 0;
}
