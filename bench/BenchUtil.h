//===- bench/BenchUtil.h - shared helpers for the experiment harness ------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: compile/recompile
/// wrappers over the update-case table, cycle measurement via the
/// simulator, and the BenchHarness that gives every bench a uniform
/// reporting surface (trace JSON, Chrome trace events, and the headline
/// metric report that `ucc-report` aggregates into BENCH.json). Benches
/// print tables to stdout (they are reporting tools, so the no-iostream
/// library rule does not apply to them).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_BENCH_BENCHUTIL_H
#define UCC_BENCH_BENCHUTIL_H

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace uccbench {

/// The uniform per-bench harness. Every bench constructs one at the top
/// of main() with its argv and a stable bench name, then feeds its
/// headline metrics in as it prints its table. On destruction the
/// harness writes whatever outputs were requested.
///
/// Flags (each with an environment-variable fallback so both hermetic
/// invocation by `ucc-report` and ad-hoc shell loops work):
///
///   --trace-json <file>    aggregate telemetry JSON   (UCC_TRACE_JSON)
///   --trace-events <file>  Chrome trace-event JSON    (UCC_TRACE_EVENTS)
///   --report-json <file>   headline metric report     (UCC_REPORT_JSON)
///   --metrics <file>       time-series snapshots, JSONL (UCC_METRICS) —
///                          the bench calls sampleMetrics() at phase
///                          boundaries; `uccc monitor` renders the file
///   --quick                reduced profile for CI     (UCC_BENCH_QUICK=1)
///   --jobs <n>             worker threads for the sweep (UCC_JOBS;
///                          default hardware concurrency — deterministic
///                          metrics are identical for every value)
///
/// The report document is schema-versioned and is the unit `ucc-report`
/// aggregates (docs/OBSERVABILITY.md):
///
///   {"schema_version":1,"bench":"fig10_dissemination","profile":"full",
///    "metrics":{"diff_inst_ucc_total":57,...}}
///
/// Metric naming: lowercase snake_case; metrics ending in `_seconds` are
/// wall-clock measurements and are excluded from baseline regression
/// comparison (they are machine-dependent).
class BenchHarness {
public:
  BenchHarness(int Argc, char **Argv, const char *BenchName)
      : Name(BenchName) {
    TracePath = optionOrEnv(Argc, Argv, "--trace-json", "UCC_TRACE_JSON");
    EventsPath =
        optionOrEnv(Argc, Argv, "--trace-events", "UCC_TRACE_EVENTS");
    ReportPath =
        optionOrEnv(Argc, Argv, "--report-json", "UCC_REPORT_JSON");
    MetricsPath = optionOrEnv(Argc, Argv, "--metrics", "UCC_METRICS");
    Quick = hasFlag(Argc, Argv, "--quick") ||
            std::getenv("UCC_BENCH_QUICK") != nullptr;
    std::string JobsArg = optionOrEnv(Argc, Argv, "--jobs", "UCC_JOBS");
    if (!JobsArg.empty() && std::atoi(JobsArg.c_str()) > 0)
      ucc::ThreadPool::setDefaultJobs(std::atoi(JobsArg.c_str()));
    if (!TracePath.empty() || !EventsPath.empty() || !MetricsPath.empty()) {
      T.declareStandardCounters();
      if (!EventsPath.empty())
        T.enableEvents();
      Scope = std::make_unique<ucc::TelemetryScope>(T);
    }
    if (!MetricsPath.empty()) {
      Sampler = std::make_unique<ucc::MetricsSnapshotter>(T);
      // Truncate up front so a crashed run does not leave a stale file
      // that `uccc monitor` would happily render.
      writeText(MetricsPath, "");
    }
  }

  ~BenchHarness() {
    Scope.reset();
    if (!TracePath.empty())
      writeText(TracePath, T.toJson() + "\n");
    if (!EventsPath.empty())
      writeText(EventsPath, T.toChromeTrace() + "\n");
    if (!ReportPath.empty()) {
      ucc::json::Value Doc = ucc::json::Value::object();
      Doc.set("schema_version", ucc::json::Value::number(1));
      Doc.set("bench", ucc::json::Value::string(Name));
      Doc.set("profile",
              ucc::json::Value::string(Quick ? "quick" : "full"));
      ucc::json::Value MetricsObj = ucc::json::Value::object();
      for (const auto &[MetricName, Value] : Metrics)
        MetricsObj.set(MetricName, ucc::json::Value::number(Value));
      Doc.set("metrics", std::move(MetricsObj));
      writeText(ReportPath, Doc.serialize() + "\n");
    }
  }

  /// Records headline metric \p MetricName (last write wins, insertion
  /// order preserved in the report).
  void metric(const std::string &MetricName, double Value) {
    for (auto &[Existing, Old] : Metrics)
      if (Existing == MetricName) {
        Old = Value;
        return;
      }
    Metrics.emplace_back(MetricName, Value);
  }

  /// The harness registry (benches publish gauges through it for the
  /// metrics snapshots); null when no output was requested.
  ucc::Telemetry *telemetry() { return Scope ? &T : nullptr; }

  /// Appends one time-series snapshot to the `--metrics` JSONL file
  /// (no-op when the flag was not given). Benches call this at phase
  /// boundaries — cold loop done, warm loop done — so windowed rates in
  /// the file line up with the phases the printed tables report.
  void sampleMetrics() {
    if (!Sampler)
      return;
    Sampler->sample();
    appendText(MetricsPath, Sampler->lastJsonLine() + "\n");
  }

  /// True under the reduced `--quick` profile (CI uses it to keep the
  /// regression gate fast; the slow benches shrink their sweeps).
  bool quick() const { return Quick; }

  /// Worker threads for this bench's sweep (`--jobs` / UCC_JOBS /
  /// hardware concurrency). Feed to ucc::parallelFor.
  int jobs() const { return ucc::ThreadPool::defaultJobs(); }

  BenchHarness(const BenchHarness &) = delete;
  BenchHarness &operator=(const BenchHarness &) = delete;

private:
  static std::string optionOrEnv(int Argc, char **Argv, const char *Flag,
                                 const char *Env) {
    for (int K = 1; K + 1 < Argc; ++K)
      if (std::strcmp(Argv[K], Flag) == 0)
        return Argv[K + 1];
    if (const char *V = std::getenv(Env))
      return V;
    return "";
  }

  static bool hasFlag(int Argc, char **Argv, const char *Flag) {
    for (int K = 1; K < Argc; ++K)
      if (std::strcmp(Argv[K], Flag) == 0)
        return true;
    return false;
  }

  static void writeText(const std::string &Path, const std::string &Text) {
    if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path.c_str());
    }
  }

  static void appendText(const std::string &Path, const std::string &Text) {
    if (std::FILE *F = std::fopen(Path.c_str(), "a")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path.c_str());
    }
  }

  std::string Name;
  ucc::Telemetry T;
  std::unique_ptr<ucc::TelemetryScope> Scope;
  std::unique_ptr<ucc::MetricsSnapshotter> Sampler;
  std::string TracePath, EventsPath, ReportPath, MetricsPath;
  bool Quick = false;
  std::vector<std::pair<std::string, double>> Metrics;
};

/// Compiles or dies (benches have no recovery story).
inline ucc::CompileOutput compileOrDie(const std::string &Source,
                                       const ucc::CompileOptions &Opts) {
  ucc::DiagnosticEngine Diag;
  auto Out = ucc::Compiler::compile(Source, Opts, Diag);
  if (!Out) {
    std::fprintf(stderr, "bench: compilation failed:\n%s", Diag.str().c_str());
    std::exit(1);
  }
  return std::move(*Out);
}

inline ucc::CompileOutput recompileOrDie(const std::string &Source,
                                         const ucc::CompilationRecord &Old,
                                         const ucc::CompileOptions &Opts) {
  ucc::DiagnosticEngine Diag;
  auto Out = ucc::Compiler::recompile(Source, Old, Opts, Diag);
  if (!Out) {
    std::fprintf(stderr, "bench: recompilation failed:\n%s",
                 Diag.str().c_str());
    std::exit(1);
  }
  return std::move(*Out);
}

/// Baseline (update-oblivious) options: GCC-RA + GCC-DA.
inline ucc::CompileOptions baselineOptions() {
  ucc::CompileOptions Opts;
  Opts.RA = ucc::RegAllocKind::Baseline;
  Opts.DA = ucc::DataAllocKind::BaselineHash;
  return Opts;
}

/// Update-conscious options: UCC-RA + UCC-DA.
inline ucc::CompileOptions uccOptions(double Cnt = 1000.0) {
  ucc::CompileOptions Opts;
  Opts.RA = ucc::RegAllocKind::UpdateConscious;
  Opts.DA = ucc::DataAllocKind::UpdateConscious;
  Opts.Ucc.Cnt = Cnt;
  return Opts;
}

/// Cycles for a single run of an image (dies on trap).
inline uint64_t cyclesFor(const ucc::BinaryImage &Img) {
  ucc::SimOptions Opts;
  Opts.MaxSteps = 50'000'000;
  ucc::RunResult R = ucc::runImage(Img, Opts);
  if (R.Trapped) {
    std::fprintf(stderr, "bench: simulation trapped: %s\n",
                 R.TrapReason.c_str());
    std::exit(1);
  }
  return R.Cycles;
}

/// One evaluated update: both compilers applied to the same case.
struct CaseResult {
  const ucc::UpdateCase *Case = nullptr;
  int DiffInstBaseline = 0;
  int DiffInstUcc = 0;
  int64_t DiffCycleBaseline = 0;
  int64_t DiffCycleUcc = 0;
  size_t ScriptBytesBaseline = 0;
  size_t ScriptBytesUcc = 0;
  int ReusedBaseline = 0;
  int ReusedUcc = 0;
  int InsertedMovs = 0;
};

/// Runs one update case under both compilers.
inline CaseResult evaluateCase(const ucc::UpdateCase &Case,
                               double Cnt = 1000.0) {
  CaseResult R;
  R.Case = &Case;

  ucc::CompileOutput V1 = compileOrDie(Case.OldSource, baselineOptions());
  uint64_t OldCycles = cyclesFor(V1.Image);

  ucc::CompileOutput VBase =
      recompileOrDie(Case.NewSource, V1.Record, baselineOptions());
  ucc::CompileOutput VUcc =
      recompileOrDie(Case.NewSource, V1.Record, uccOptions(Cnt));

  ucc::ImageDiff DBase = ucc::diffImages(V1.Image, VBase.Image);
  ucc::ImageDiff DUcc = ucc::diffImages(V1.Image, VUcc.Image);
  R.DiffInstBaseline = DBase.totalDiffInst();
  R.DiffInstUcc = DUcc.totalDiffInst();
  R.ReusedBaseline = DBase.totalMatched();
  R.ReusedUcc = DUcc.totalMatched();

  R.DiffCycleBaseline = static_cast<int64_t>(cyclesFor(VBase.Image)) -
                        static_cast<int64_t>(OldCycles);
  R.DiffCycleUcc = static_cast<int64_t>(cyclesFor(VUcc.Image)) -
                   static_cast<int64_t>(OldCycles);

  R.ScriptBytesBaseline =
      ucc::makeImageUpdate(V1.Image, VBase.Image).scriptBytes();
  R.ScriptBytesUcc = ucc::makeImageUpdate(V1.Image, VUcc.Image).scriptBytes();
  for (const ucc::UccAllocStats &S : VUcc.RegAllocStats)
    R.InsertedMovs += S.InsertedMovs;
  return R;
}

} // namespace uccbench

#endif // UCC_BENCH_BENCHUTIL_H
