//===- bench/BenchUtil.h - shared helpers for the experiment harness ------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: compile/recompile
/// wrappers over the update-case table and cycle measurement via the
/// simulator. Benches print tables to stdout (they are reporting tools, so
/// the no-iostream library rule does not apply to them).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_BENCH_BENCHUTIL_H
#define UCC_BENCH_BENCHUTIL_H

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "support/Telemetry.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace uccbench {

/// Telemetry hook for the bench binaries: when the UCC_TRACE_JSON
/// environment variable names a file, installs a telemetry registry for
/// the object's lifetime and writes the JSON trace (same schema as
/// `uccc --trace-json`, see docs/OBSERVABILITY.md) there on destruction.
/// Without the variable this is inert. Every bench declares one at the
/// top of main(), so
///
///   UCC_TRACE_JSON=fig09.json ./build/bench/bench_fig09_update_cases
///
/// captures the full per-phase/counter breakdown behind any figure.
class TelemetrySession {
public:
  TelemetrySession() {
    if (const char *Path = std::getenv("UCC_TRACE_JSON")) {
      TracePath = Path;
      T.declareStandardCounters();
      Scope = std::make_unique<ucc::TelemetryScope>(T);
    }
  }

  ~TelemetrySession() {
    Scope.reset();
    if (TracePath.empty())
      return;
    if (std::FILE *F = std::fopen(TracePath.c_str(), "w")) {
      std::string Json = T.toJson();
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "bench: cannot write trace '%s'\n",
                   TracePath.c_str());
    }
  }

  TelemetrySession(const TelemetrySession &) = delete;
  TelemetrySession &operator=(const TelemetrySession &) = delete;

private:
  ucc::Telemetry T;
  std::unique_ptr<ucc::TelemetryScope> Scope;
  std::string TracePath;
};

/// Compiles or dies (benches have no recovery story).
inline ucc::CompileOutput compileOrDie(const std::string &Source,
                                       const ucc::CompileOptions &Opts) {
  ucc::DiagnosticEngine Diag;
  auto Out = ucc::Compiler::compile(Source, Opts, Diag);
  if (!Out) {
    std::fprintf(stderr, "bench: compilation failed:\n%s", Diag.str().c_str());
    std::exit(1);
  }
  return std::move(*Out);
}

inline ucc::CompileOutput recompileOrDie(const std::string &Source,
                                         const ucc::CompilationRecord &Old,
                                         const ucc::CompileOptions &Opts) {
  ucc::DiagnosticEngine Diag;
  auto Out = ucc::Compiler::recompile(Source, Old, Opts, Diag);
  if (!Out) {
    std::fprintf(stderr, "bench: recompilation failed:\n%s",
                 Diag.str().c_str());
    std::exit(1);
  }
  return std::move(*Out);
}

/// Baseline (update-oblivious) options: GCC-RA + GCC-DA.
inline ucc::CompileOptions baselineOptions() {
  ucc::CompileOptions Opts;
  Opts.RA = ucc::RegAllocKind::Baseline;
  Opts.DA = ucc::DataAllocKind::BaselineHash;
  return Opts;
}

/// Update-conscious options: UCC-RA + UCC-DA.
inline ucc::CompileOptions uccOptions(double Cnt = 1000.0) {
  ucc::CompileOptions Opts;
  Opts.RA = ucc::RegAllocKind::UpdateConscious;
  Opts.DA = ucc::DataAllocKind::UpdateConscious;
  Opts.Ucc.Cnt = Cnt;
  return Opts;
}

/// Cycles for a single run of an image (dies on trap).
inline uint64_t cyclesFor(const ucc::BinaryImage &Img) {
  ucc::SimOptions Opts;
  Opts.MaxSteps = 50'000'000;
  ucc::RunResult R = ucc::runImage(Img, Opts);
  if (R.Trapped) {
    std::fprintf(stderr, "bench: simulation trapped: %s\n",
                 R.TrapReason.c_str());
    std::exit(1);
  }
  return R.Cycles;
}

/// One evaluated update: both compilers applied to the same case.
struct CaseResult {
  const ucc::UpdateCase *Case = nullptr;
  int DiffInstBaseline = 0;
  int DiffInstUcc = 0;
  int64_t DiffCycleBaseline = 0;
  int64_t DiffCycleUcc = 0;
  size_t ScriptBytesBaseline = 0;
  size_t ScriptBytesUcc = 0;
  int ReusedBaseline = 0;
  int ReusedUcc = 0;
  int InsertedMovs = 0;
};

/// Runs one update case under both compilers.
inline CaseResult evaluateCase(const ucc::UpdateCase &Case,
                               double Cnt = 1000.0) {
  CaseResult R;
  R.Case = &Case;

  ucc::CompileOutput V1 = compileOrDie(Case.OldSource, baselineOptions());
  uint64_t OldCycles = cyclesFor(V1.Image);

  ucc::CompileOutput VBase =
      recompileOrDie(Case.NewSource, V1.Record, baselineOptions());
  ucc::CompileOutput VUcc =
      recompileOrDie(Case.NewSource, V1.Record, uccOptions(Cnt));

  ucc::ImageDiff DBase = ucc::diffImages(V1.Image, VBase.Image);
  ucc::ImageDiff DUcc = ucc::diffImages(V1.Image, VUcc.Image);
  R.DiffInstBaseline = DBase.totalDiffInst();
  R.DiffInstUcc = DUcc.totalDiffInst();
  R.ReusedBaseline = DBase.totalMatched();
  R.ReusedUcc = DUcc.totalMatched();

  R.DiffCycleBaseline = static_cast<int64_t>(cyclesFor(VBase.Image)) -
                        static_cast<int64_t>(OldCycles);
  R.DiffCycleUcc = static_cast<int64_t>(cyclesFor(VUcc.Image)) -
                   static_cast<int64_t>(OldCycles);

  R.ScriptBytesBaseline =
      ucc::makeImageUpdate(V1.Image, VBase.Image).scriptBytes();
  R.ScriptBytesUcc = ucc::makeImageUpdate(V1.Image, VUcc.Image).scriptBytes();
  for (const ucc::UccAllocStats &S : VUcc.RegAllocStats)
    R.InsertedMovs += S.InsertedMovs;
  return R;
}

} // namespace uccbench

#endif // UCC_BENCH_BENCHUTIL_H
