//===- bench/bench_fig11_code_quality.cpp - paper Fig. 11 -----------------===//
//
// Reproduces Fig. 11 (the code quality comparison): Diff_cycle — the
// change in single-run execution cycles relative to the old binary — for
// GCC-RA and UCC-RA across update cases 1..12. UCC-RA may run slightly
// slower when it inserted movs; the paper reports the slowdown is
// negligible (for test case 12, 3 cycles of ~244K).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig11_code_quality");
  std::printf("Figure 11: the performance comparison (single run)\n\n");
  std::printf("%4s  %-42s  %10s  %10s  %6s  %12s\n", "case", "update",
              "GCC-RA dC", "UCC-RA dC", "movs", "UCC slowdown");
  std::vector<const UpdateCase *> Rows;
  for (const UpdateCase &Case : updateCases())
    if (Case.Id <= 12)
      Rows.push_back(&Case);
  Rows.push_back(&liveRangeExtensionCase()); // the Cnt-sensitive case

  // The cases are independent compile+simulate pipelines: evaluate them
  // concurrently under --jobs, then print/reduce in case order.
  struct Eval {
    CaseResult R;
    double Slowdown = 0.0;
  };
  std::vector<Eval> Evals(Rows.size());
  parallelFor(static_cast<int>(Rows.size()), Bench.jobs(), [&](int I) {
    const UpdateCase &Case = *Rows[static_cast<size_t>(I)];
    Eval &E = Evals[static_cast<size_t>(I)];
    E.R = evaluateCase(Case);
    // Slowdown of UCC-RA's update relative to the baseline's update, as a
    // fraction of one whole run.
    CompileOutput New = compileOrDie(Case.NewSource, baselineOptions());
    uint64_t RunCycles = cyclesFor(New.Image);
    E.Slowdown =
        100.0 *
        static_cast<double>(E.R.DiffCycleUcc - E.R.DiffCycleBaseline) /
        static_cast<double>(RunCycles);
  });

  int64_t TotalDcBase = 0, TotalDcUcc = 0;
  int TotalMovs = 0;
  double MaxSlowdown = 0.0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    const UpdateCase &Case = *Rows[I];
    const CaseResult &R = Evals[I].R;
    double Slowdown = Evals[I].Slowdown;
    std::printf("%4d  %-42.42s  %10lld  %10lld  %6d  %11.4f%%\n", Case.Id,
                Case.Description.c_str(),
                static_cast<long long>(R.DiffCycleBaseline),
                static_cast<long long>(R.DiffCycleUcc), R.InsertedMovs,
                Slowdown);
    TotalDcBase += R.DiffCycleBaseline;
    TotalDcUcc += R.DiffCycleUcc;
    TotalMovs += R.InsertedMovs;
    MaxSlowdown = std::max(MaxSlowdown, Slowdown);
  }
  std::printf("\n(dC = cycles(new binary) - cycles(old binary) for one "
              "run; UCC-RA's extra cycles come from inserted movs.)\n");

  Bench.metric("diff_cycle_gcc_total", static_cast<double>(TotalDcBase));
  Bench.metric("diff_cycle_ucc_total", static_cast<double>(TotalDcUcc));
  Bench.metric("inserted_movs_total", static_cast<double>(TotalMovs));
  Bench.metric("max_slowdown_pct", MaxSlowdown);
  return 0;
}
