//===- bench/bench_fig13_constraints.cpp - paper Fig. 13 ------------------===//
//
// Reproduces Fig. 13: the number of ILP constraints as a function of the
// number of IR instructions in the chunk (the paper reports near-linear
// growth). Also reports the binary-variable count for context.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "SyntheticWindows.h"

#include <algorithm>
#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig13_constraints");
  std::printf("Figure 13: ILP constraints as a function of instruction "
              "count\n\n");
  std::printf("%8s  %6s  %6s  %12s  %12s  %16s\n", "instrs", "vars", "regs",
              "binaries", "constraints", "constraints/instr");
  double MaxPerInstr = 0.0;
  int LastBinaries = 0, LastConstraints = 0;
  for (int NumStmts : {10, 20, 40, 60, 80, 120, 160, 200, 250}) {
    int NumVars = 6;
    int NumRegs = 8;
    WindowSpec Spec = makeSyntheticWindow(NumStmts, NumVars, NumRegs,
                                          TagMode::Good, 42);
    WindowModelStats Stats = windowModelStats(Spec);
    std::printf("%8d  %6d  %6d  %12d  %12d  %16.1f\n", NumStmts, NumVars,
                NumRegs, Stats.NumBinaries, Stats.NumConstraints,
                static_cast<double>(Stats.NumConstraints) / NumStmts);
    MaxPerInstr =
        std::max(MaxPerInstr,
                 static_cast<double>(Stats.NumConstraints) / NumStmts);
    LastBinaries = Stats.NumBinaries;
    LastConstraints = Stats.NumConstraints;
  }
  Bench.metric("binaries_at_250", static_cast<double>(LastBinaries));
  Bench.metric("constraints_at_250",
               static_cast<double>(LastConstraints));
  Bench.metric("max_constraints_per_instr", MaxPerInstr);
  std::printf("\nThe constraints-per-instruction column is flat: constraint "
              "count grows linearly with chunk size,\nmatching the paper's "
              "Fig. 13.\n");
  return 0;
}
