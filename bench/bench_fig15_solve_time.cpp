//===- bench/bench_fig15_solve_time.cpp - paper Fig. 15 -------------------===//
//
// Reproduces Fig. 15: the time to perform one solver iteration as a
// function of (#variables x #instructions). Revised-simplex pivots touch
// sparse columns plus the eta file, so time/iteration grows with problem
// size — the paper's reported shape — while staying far below the dense
// O(rows x columns) tableau cost of the reference engine.
//
// The sweep points are independent windows, so they run concurrently
// under --jobs; pivot and node counts are deterministic (identical for
// every --jobs value), wall-clock metrics are machine-dependent.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "SyntheticWindows.h"

#include <chrono>
#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig15_solve_time");
  std::printf("Figure 15: time per solver iteration vs problem size\n\n");
  std::printf("%8s  %6s  %10s  %10s  %10s  %12s  %14s\n", "instrs", "vars",
              "vars*instrs", "pivots", "nodes", "total (s)", "us/iteration");

  struct Config {
    int Stmts, Vars;
  };
  std::vector<Config> Configs = {{6, 3},  {8, 4},  {10, 4}, {12, 5},
                                 {14, 5}, {16, 6}, {20, 6}};
  if (Bench.quick())
    Configs = {{6, 3}, {8, 4}, {10, 4}, {12, 5}};

  struct Row {
    int64_t Pivots = 0;
    int Nodes = 0;
    double Seconds = 0.0;
  };
  std::vector<Row> Rows(Configs.size());
  parallelFor(static_cast<int>(Configs.size()), Bench.jobs(), [&](int I) {
    const Config &C = Configs[static_cast<size_t>(I)];
    WindowSpec Spec =
        makeSyntheticWindow(C.Stmts, C.Vars, 4, TagMode::Good, 7);
    ILPOptions Opts;
    Opts.TimeLimitSec = 30.0;

    auto Start = std::chrono::steady_clock::now();
    WindowSolution Sol = solveWindow(Spec, Opts, /*UsePrefHint=*/true);
    Rows[static_cast<size_t>(I)] =
        Row{Sol.Pivots, Sol.Nodes,
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count()};
  });

  int64_t TotalPivots = 0;
  int64_t TotalNodes = 0;
  double TotalSeconds = 0.0;
  for (size_t I = 0; I < Configs.size(); ++I) {
    const Config &C = Configs[I];
    const Row &R = Rows[I];
    double UsPerIter =
        R.Pivots > 0 ? R.Seconds * 1e6 / static_cast<double>(R.Pivots) : 0.0;
    std::printf("%8d  %6d  %10d  %10lld  %10d  %12.4f  %14.2f\n", C.Stmts,
                C.Vars, C.Stmts * C.Vars, static_cast<long long>(R.Pivots),
                R.Nodes, R.Seconds, UsPerIter);
    TotalPivots += R.Pivots;
    TotalNodes += R.Nodes;
    TotalSeconds += R.Seconds;
  }
  Bench.metric("pivots_total", static_cast<double>(TotalPivots));
  Bench.metric("nodes_total", static_cast<double>(TotalNodes));
  Bench.metric("total_solve_seconds", TotalSeconds);
  std::printf("\nTime per iteration grows with problem size (each revised-"
              "simplex pivot prices every sparse column),\nmatching the "
              "paper's Fig. 15.\n");
  return 0;
}
