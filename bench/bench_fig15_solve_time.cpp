//===- bench/bench_fig15_solve_time.cpp - paper Fig. 15 -------------------===//
//
// Reproduces Fig. 15: the time to perform one solver iteration as a
// function of (#variables x #instructions). Dense-tableau pivots cost
// O(rows x columns), so time/iteration grows near-linearly with problem
// size — the paper's reported shape.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "SyntheticWindows.h"

#include <chrono>
#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig15_solve_time");
  std::printf("Figure 15: time per solver iteration vs problem size\n\n");
  std::printf("%8s  %6s  %10s  %10s  %12s  %14s\n", "instrs", "vars",
              "vars*instrs", "pivots", "total (s)", "us/iteration");

  struct Config {
    int Stmts, Vars;
  };
  std::vector<Config> Configs = {{6, 3},  {8, 4},  {10, 4}, {12, 5},
                                 {14, 5}, {16, 6}, {20, 6}};
  if (Bench.quick())
    Configs = {{6, 3}, {8, 4}, {10, 4}, {12, 5}};
  int64_t TotalPivots = 0;
  double TotalSeconds = 0.0;
  for (const Config &C : Configs) {
    WindowSpec Spec =
        makeSyntheticWindow(C.Stmts, C.Vars, 4, TagMode::Good, 7);
    ILPOptions Opts;
    Opts.TimeLimitSec = 30.0;

    auto Start = std::chrono::steady_clock::now();
    WindowSolution Sol = solveWindow(Spec, Opts, /*UsePrefHint=*/true);
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    double UsPerIter =
        Sol.Pivots > 0 ? Seconds * 1e6 / static_cast<double>(Sol.Pivots)
                       : 0.0;
    std::printf("%8d  %6d  %10d  %10lld  %12.4f  %14.2f\n", C.Stmts, C.Vars,
                C.Stmts * C.Vars, static_cast<long long>(Sol.Pivots),
                Seconds, UsPerIter);
    TotalPivots += Sol.Pivots;
    TotalSeconds += Seconds;
  }
  Bench.metric("pivots_total", static_cast<double>(TotalPivots));
  Bench.metric("total_solve_seconds", TotalSeconds);
  std::printf("\nTime per iteration grows roughly linearly with problem "
              "size (dense tableau pivots are O(rows x cols)),\nmatching "
              "the paper's Fig. 15.\n");
  return 0;
}
