//===- bench/bench_ablation_splits.cpp - live-range splits (Fig. 4) -------===//
//
// Design-choice ablation: the section 3.1 mechanism itself. UCC-RA's
// live-range splits + boundary movs (Fig. 4(c)) are switched off, forcing
// the allocator to either match the old register for a whole live range or
// give up on those unchanged instructions. Measures how much of UCC-RA's
// advantage comes from the split mechanism vs plain preference-honoring.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "ablation_splits");
  std::printf("Ablation: live-range splits and boundary movs (paper "
              "Fig. 4(c))\n\n");
  std::printf("%4s  %-42s  %10s  %12s  %6s\n", "case", "update",
              "no splits", "with splits", "movs");
  int64_t TotalNoSplit = 0, TotalSplit = 0, TotalMovs = 0;
  auto evalRow = [&](const char *Label, const UpdateCase &Case) {
    CompileOutput V1 = compileOrDie(Case.OldSource, baselineOptions());

    CompileOptions NoSplit = uccOptions();
    NoSplit.Ucc.EnableSplits = false;
    CompileOutput VNo = recompileOrDie(Case.NewSource, V1.Record, NoSplit);

    CompileOptions WithSplit = uccOptions();
    CompileOutput VYes =
        recompileOrDie(Case.NewSource, V1.Record, WithSplit);

    int Movs = 0;
    for (const UccAllocStats &S : VYes.RegAllocStats)
      Movs += S.InsertedMovs;

    int DiffNo = diffImages(V1.Image, VNo.Image).totalDiffInst();
    int DiffYes = diffImages(V1.Image, VYes.Image).totalDiffInst();
    std::printf("%4s  %-42.42s  %10d  %12d  %6d\n", Label,
                Case.Description.c_str(), DiffNo, DiffYes, Movs);
    TotalNoSplit += DiffNo;
    TotalSplit += DiffYes;
    TotalMovs += Movs;
  };

  char Label[16];
  for (const UpdateCase &Case : updateCases()) {
    if (Case.Id > 12)
      continue;
    std::snprintf(Label, sizeof(Label), "%d", Case.Id);
    evalRow(Label, Case);
  }
  evalRow("F4", liveRangeExtensionCase());
  Bench.metric("diff_inst_nosplit_total",
               static_cast<double>(TotalNoSplit));
  Bench.metric("diff_inst_split_total", static_cast<double>(TotalSplit));
  Bench.metric("movs_total", static_cast<double>(TotalMovs));
  std::printf("\nWhere the columns differ, a mov bought back unchanged "
              "instructions (the Fig. 4(c) trade).\n");
  return 0;
}
