//===- bench/SyntheticWindows.h - window generator for Figs. 13-15 --------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates synthetic allocation windows ("changed chunks") of controlled
/// size for the solver-scaling experiments (Figs. 13-15) and the
/// preferred-tag ablation of section 5.6. The generated code has the shape
/// of straight-line compute: each statement defines a variable from one or
/// two previously defined ones; a configurable fraction of statements is
/// unchanged and carries preferred-register tags.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_BENCH_SYNTHETICWINDOWS_H
#define UCC_BENCH_SYNTHETICWINDOWS_H

#include "regalloc/UccIlpModel.h"
#include "support/RNG.h"

#include <cstddef>
#include <vector>

namespace uccbench {

enum class TagMode {
  Good,       ///< consistent, achievable preferred registers
  None,       ///< no tags at all (allocate from scratch)
  Misleading  ///< random tags (the paper's adversarial experiment)
};

inline ucc::WindowSpec makeSyntheticWindow(int NumStmts, int NumVars,
                                           int NumRegs, TagMode Mode,
                                           uint64_t Seed) {
  ucc::RNG Rng(Seed);
  ucc::WindowSpec Spec;
  Spec.NumVars = NumVars;
  Spec.NumRegs = NumRegs;
  Spec.EntryReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.ExitReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.LiveOut.assign(static_cast<size_t>(NumVars), false);

  // A consistent register plan used for Good tags (round-robin is always
  // achievable when NumVars <= NumRegs; otherwise tags overlap, which is
  // realistic for pressured chunks).
  auto goodReg = [&](int Var) { return Var % NumRegs; };

  std::vector<bool> Defined(static_cast<size_t>(NumVars), false);
  for (int S = 0; S < NumStmts; ++S) {
    ucc::WindowInstr I;
    I.Freq = 1.0 + static_cast<double>(Rng.below(8));
    // Draw the changed flag unconditionally so every TagMode sees the
    // same program structure for a given seed.
    bool Changed = Rng.chance(2, 5);
    I.Changed = Mode == TagMode::None || Changed;
    int Def = static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars)));
    I.Def = Def;
    // Use one or two already-defined variables.
    int NumUses = static_cast<int>(Rng.range(0, 2));
    for (int U = 0; U < NumUses; ++U) {
      int Var = static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars)));
      if (!Defined[static_cast<size_t>(Var)])
        continue;
      I.Uses.push_back(Var);
      int Pref = -1;
      if (!I.Changed && Mode == TagMode::Good)
        Pref = goodReg(Var);
      else if (!I.Changed && Mode == TagMode::Misleading)
        Pref = static_cast<int>(
            Rng.below(static_cast<uint64_t>(NumRegs)));
      I.UsePref.push_back(Pref);
    }
    if (!I.Changed && Mode == TagMode::Good)
      I.DefPref = goodReg(Def);
    else if (!I.Changed && Mode == TagMode::Misleading)
      I.DefPref =
          static_cast<int>(Rng.below(static_cast<uint64_t>(NumRegs)));
    Defined[static_cast<size_t>(Def)] = true;
    Spec.Instrs.push_back(std::move(I));
  }
  return Spec;
}

} // namespace uccbench

#endif // UCC_BENCH_SYNTHETICWINDOWS_H
