//===- bench/bench_fig09_update_cases.cpp - paper Figs. 8 and 9 -----------===//
//
// Prints the benchmark suite (Fig. 8) with compiled sizes, and the update
// test cases (Fig. 9) with the instruction counts of both versions.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig09_update_cases");
  std::printf("Figure 8: benchmark programs\n\n");
  std::printf("%-16s  %7s  %6s  %s\n", "benchmark", "instrs", "funcs",
              "details");
  size_t WorkloadCount = 0, WorkloadInstrs = 0;
  for (const Workload &W : workloads()) {
    CompileOutput Out = compileOrDie(W.Source, baselineOptions());
    std::printf("%-16s  %7zu  %6zu  %.70s\n", W.Name.c_str(),
                Out.Image.Code.size(), Out.Image.Functions.size(),
                W.Details.c_str());
    ++WorkloadCount;
    WorkloadInstrs += Out.Image.Code.size();
  }

  std::printf("\nFigure 9: experimental update details\n\n");
  std::printf("%4s  %-6s  %-16s  %8s  %8s  %s\n", "case", "level",
              "benchmark", "old#", "new#", "update details");
  size_t CaseCount = 0, OldInstrs = 0, NewInstrs = 0;
  for (const UpdateCase &Case : updateCases()) {
    CompileOutput Old = compileOrDie(Case.OldSource, baselineOptions());
    CompileOutput New = compileOrDie(Case.NewSource, baselineOptions());
    std::printf("%4d  %-6s  %-16s  %8zu  %8zu  %.60s\n", Case.Id,
                updateLevelName(Case.Level), Case.Benchmark.c_str(),
                Old.Image.Code.size(), New.Image.Code.size(),
                Case.Description.c_str());
    ++CaseCount;
    OldInstrs += Old.Image.Code.size();
    NewInstrs += New.Image.Code.size();
  }
  std::printf("\nData-layout cases (Fig. 16):\n");
  for (const UpdateCase &Case : dataLayoutCases())
    std::printf("  D%d  %-16s  %.60s\n", Case.Id - 100,
                Case.Benchmark.c_str(), Case.Description.c_str());

  Bench.metric("workloads", static_cast<double>(WorkloadCount));
  Bench.metric("workload_instrs_total",
               static_cast<double>(WorkloadInstrs));
  Bench.metric("update_cases", static_cast<double>(CaseCount));
  Bench.metric("old_instrs_total", static_cast<double>(OldInstrs));
  Bench.metric("new_instrs_total", static_cast<double>(NewInstrs));
  Bench.metric("data_layout_cases",
               static_cast<double>(dataLayoutCases().size()));
  return 0;
}
