//===- bench/bench_fig03_power_model.cpp - paper Fig. 3 -------------------===//
//
// Prints the Mica2 power model (Fig. 3) and the derived per-cycle /
// per-bit energies every other experiment builds on, including the
// section 2.1 break-even example (how many executions pay for one
// transmitted instruction word).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "energy/EnergyModel.h"

#include <cstdio>

using namespace ucc;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig03_power_model");
  std::printf("Figure 3: the power model for Mica2\n\n");
  std::printf("%s\n", EnergyModel::powerTable().c_str());

  EnergyModel Model;
  std::printf("Derived quantities:\n");
  std::printf("  energy per CPU cycle          %.3e J\n",
              Model.energyPerCycle());
  std::printf("  energy per transmitted bit    %.3e J  (1000x one ALU "
              "instruction)\n",
              Model.energyPerBit());
  std::printf("  energy per instruction word   %.3e J  (32 bits)\n",
              Model.instrTransmissionEnergy());
  std::printf("  radio Tx first-principles     %.3e J/bit (21.5 mA at "
              "38.4 kbps)\n",
              Model.power().radioTxEnergyPerBit());
  std::printf("\nSection 2.1 break-even: one saved instruction word pays "
              "for %.0f extra executed cycles\n",
              Model.breakEvenExecutions(1.0, 1.0));

  Bench.metric("energy_per_cycle_j", Model.energyPerCycle());
  Bench.metric("energy_per_bit_j", Model.energyPerBit());
  Bench.metric("instr_word_j", Model.instrTransmissionEnergy());
  Bench.metric("break_even_cycles", Model.breakEvenExecutions(1.0, 1.0));
  return 0;
}
