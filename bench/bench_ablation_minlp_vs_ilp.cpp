//===- bench/bench_ablation_minlp_vs_ilp.cpp - paper section 5.6 ----------===//
//
// Reproduces the MINLP-vs-ILP comparison (A1/A3 in DESIGN.md): the exact
// nonlinear objective of eq. 12 is optimized by exhaustive search (the
// "MINLP solver" stand-in) and compared against the theta=3/4 linearized
// ILP. The paper observed identical allocation decisions, with the
// nonlinear solve orders of magnitude slower; the same shape appears here
// as the exponential enumeration cost takes off while the ILP stays fast.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "SyntheticWindows.h"

#include <chrono>
#include <cstdio>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "ablation_minlp_vs_ilp");
  std::printf("Ablation: exact nonlinear objective (MINLP stand-in) vs "
              "theta=3/4 linearized ILP\n\n");
  std::printf("%8s  %6s  %6s  | %12s  %12s  | %10s  %10s  %8s\n", "instrs",
              "vars", "regs", "exact obj", "ILP obj", "exact (s)",
              "ILP (s)", "same?");

  struct Config {
    int Stmts, Vars, Regs;
  };
  std::vector<Config> Configs = {{6, 3, 4},  {8, 4, 4},  {10, 4, 5},
                                 {12, 5, 5}, {14, 5, 6}, {16, 6, 6}};
  if (Bench.quick()) // exact enumeration is exponential in window size
    Configs = {{6, 3, 4}, {8, 4, 4}, {10, 4, 5}};
  int Agree = 0, Total = 0;
  double ExactSecTotal = 0.0, IlpSecTotal = 0.0;
  for (const Config &C : Configs) {
    WindowSpec Spec = makeSyntheticWindow(C.Stmts, C.Vars, C.Regs,
                                          TagMode::Good, 11);

    auto T0 = std::chrono::steady_clock::now();
    WindowSolution Exact = solveWindowExact(Spec);
    auto T1 = std::chrono::steady_clock::now();
    ILPOptions Opts;
    Opts.TimeLimitSec = 30.0;
    WindowSolution Ilp = solveWindow(Spec, Opts);
    auto T2 = std::chrono::steady_clock::now();

    double ExactSec = std::chrono::duration<double>(T1 - T0).count();
    double IlpSec = std::chrono::duration<double>(T2 - T1).count();
    bool Same = Ilp.Objective <= Exact.Objective + 1e-6;
    Agree += Same;
    ++Total;
    ExactSecTotal += ExactSec;
    IlpSecTotal += IlpSec;
    std::printf("%8d  %6d  %6d  | %12.1f  %12.1f  | %10.4f  %10.4f  %8s\n",
                C.Stmts, C.Vars, C.Regs, Exact.Objective, Ilp.Objective,
                ExactSec, IlpSec, Same ? "yes" : "NO");
  }
  Bench.metric("agree", static_cast<double>(Agree));
  Bench.metric("total", static_cast<double>(Total));
  Bench.metric("exact_solve_seconds", ExactSecTotal);
  Bench.metric("ilp_solve_seconds", IlpSecTotal);
  std::printf("\n%d/%d configurations: the linearized ILP found decisions "
              "at least as good as the exact nonlinear optimum\n(the "
              "paper: identical decisions, with the nonlinear solver "
              "orders of magnitude slower).\n",
              Agree, Total);
  return 0;
}
