//===- bench/bench_fig12_energy_savings.cpp - paper Fig. 12 ---------------===//
//
// Reproduces Fig. 12: the energy savings of UCC-RA over GCC-RA per update
// as a function of the execution frequency Cnt (eqs. 18-19). UCC-RA is
// re-run for every Cnt because its mov-insertion decisions depend on it
// (the paper: "UCC-RA adaptively inserts mov instructions according to
// execution profiles and update frequency" and falls back to GCC-RA
// quality at very large Cnt).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig12_energy_savings");
  EnergyModel Model;
  std::vector<double> Cnts = {1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
  std::vector<int> CaseIds = {1, 4, 6, 8, 10, 12};
  if (Bench.quick()) { // reduced sweep: end points + the paper's default
    Cnts = {1e0, 1e3, 1e6};
    CaseIds = {1, 8, 12};
  }

  std::printf("Figure 12: energy savings per update vs execution "
              "frequency Cnt\n");
  std::printf("Savings = Diff_energy(GCC-RA) - Diff_energy(UCC-RA), in "
              "joules.\n\n");
  std::printf("%4s |", "case");
  for (double Cnt : Cnts)
    std::printf("  Cnt=1e%.0f", std::log10(Cnt));
  std::printf("\n");

  // Every (case, Cnt) cell is an independent pair of compilations: sweep
  // the whole grid concurrently under --jobs, then print in row order.
  std::vector<const UpdateCase *> RowCases;
  std::vector<std::string> RowLabels;
  for (int Id : CaseIds) {
    RowCases.push_back(&updateCases()[static_cast<size_t>(Id - 1)]);
    char Label[16];
    std::snprintf(Label, sizeof(Label), "%d", Id);
    RowLabels.push_back(Label);
  }
  // The Fig. 4 scenario: the one case whose UCC decision depends on Cnt
  // (mov inserted while cold, withdrawn when hot).
  RowCases.push_back(&liveRangeExtensionCase());
  RowLabels.push_back("F4");

  size_t NumCnts = Cnts.size();
  std::vector<double> Grid(RowCases.size() * NumCnts, 0.0);
  parallelFor(static_cast<int>(Grid.size()), Bench.jobs(), [&](int I) {
    size_t RowIdx = static_cast<size_t>(I) / NumCnts;
    double Cnt = Cnts[static_cast<size_t>(I) % NumCnts];
    CaseResult R = evaluateCase(*RowCases[RowIdx], Cnt);
    Grid[static_cast<size_t>(I)] = Model.energySavings(
        R.DiffInstBaseline, static_cast<double>(R.DiffCycleBaseline),
        R.DiffInstUcc, static_cast<double>(R.DiffCycleUcc), Cnt);
  });

  double SavingsLowCnt = 0.0, SavingsHighCnt = 0.0, MinSavings = 0.0;
  for (size_t RowIdx = 0; RowIdx < RowCases.size(); ++RowIdx) {
    std::printf("%4s |", RowLabels[RowIdx].c_str());
    for (size_t K = 0; K < NumCnts; ++K) {
      double Savings = Grid[RowIdx * NumCnts + K];
      std::printf("  %8.2e", Savings);
      if (K == 0)
        SavingsLowCnt += Savings;
      if (K + 1 == NumCnts)
        SavingsHighCnt += Savings;
      MinSavings = std::min(MinSavings, Savings);
    }
    std::printf("\n");
  }

  Bench.metric("savings_j_low_cnt_total", SavingsLowCnt);
  Bench.metric("savings_j_high_cnt_total", SavingsHighCnt);
  Bench.metric("min_savings_j", MinSavings);

  std::printf("\nReading the series: when UCC-RA and GCC-RA produce the "
              "same-quality code the savings are flat in Cnt (pure \n"
              "transmission savings); where UCC-RA inserted movs the "
              "savings shrink as the code runs hotter, and UCC-RA\n"
              "falls back to update-oblivious quality (savings >= 0) "
              "instead of losing energy at very large Cnt.\n");
  return 0;
}
