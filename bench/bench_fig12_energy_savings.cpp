//===- bench/bench_fig12_energy_savings.cpp - paper Fig. 12 ---------------===//
//
// Reproduces Fig. 12: the energy savings of UCC-RA over GCC-RA per update
// as a function of the execution frequency Cnt (eqs. 18-19). UCC-RA is
// re-run for every Cnt because its mov-insertion decisions depend on it
// (the paper: "UCC-RA adaptively inserts mov instructions according to
// execution profiles and update frequency" and falls back to GCC-RA
// quality at very large Cnt).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace ucc;
using namespace uccbench;

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig12_energy_savings");
  EnergyModel Model;
  std::vector<double> Cnts = {1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
  std::vector<int> CaseIds = {1, 4, 6, 8, 10, 12};
  if (Bench.quick()) { // reduced sweep: end points + the paper's default
    Cnts = {1e0, 1e3, 1e6};
    CaseIds = {1, 8, 12};
  }

  std::printf("Figure 12: energy savings per update vs execution "
              "frequency Cnt\n");
  std::printf("Savings = Diff_energy(GCC-RA) - Diff_energy(UCC-RA), in "
              "joules.\n\n");
  std::printf("%4s |", "case");
  for (double Cnt : Cnts)
    std::printf("  Cnt=1e%.0f", std::log10(Cnt));
  std::printf("\n");

  double SavingsLowCnt = 0.0, SavingsHighCnt = 0.0, MinSavings = 0.0;
  auto printRow = [&](const char *Label, const UpdateCase &Case) {
    std::printf("%4s |", Label);
    for (double Cnt : Cnts) {
      CaseResult R = evaluateCase(Case, Cnt);
      double Savings = Model.energySavings(
          R.DiffInstBaseline, static_cast<double>(R.DiffCycleBaseline),
          R.DiffInstUcc, static_cast<double>(R.DiffCycleUcc), Cnt);
      std::printf("  %8.2e", Savings);
      if (Cnt == Cnts.front())
        SavingsLowCnt += Savings;
      if (Cnt == Cnts.back())
        SavingsHighCnt += Savings;
      MinSavings = std::min(MinSavings, Savings);
    }
    std::printf("\n");
  };

  char Label[16];
  for (int Id : CaseIds) {
    std::snprintf(Label, sizeof(Label), "%d", Id);
    printRow(Label, updateCases()[static_cast<size_t>(Id - 1)]);
  }
  // The Fig. 4 scenario: the one case whose UCC decision depends on Cnt
  // (mov inserted while cold, withdrawn when hot).
  printRow("F4", liveRangeExtensionCase());

  Bench.metric("savings_j_low_cnt_total", SavingsLowCnt);
  Bench.metric("savings_j_high_cnt_total", SavingsHighCnt);
  Bench.metric("min_savings_j", MinSavings);

  std::printf("\nReading the series: when UCC-RA and GCC-RA produce the "
              "same-quality code the savings are flat in Cnt (pure \n"
              "transmission savings); where UCC-RA inserted movs the "
              "savings shrink as the code runs hotter, and UCC-RA\n"
              "falls back to update-oblivious quality (savings >= 0) "
              "instead of losing energy at very large Cnt.\n");
  return 0;
}
