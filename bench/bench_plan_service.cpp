//===- bench/bench_plan_service.cpp - serving throughput and latency ------===//
//
// Measures the serve/PlanService layer under a realistic fleet-version
// request mix: a long release lineage committed to a VersionStore, then a
// Zipf-skewed stream of plan(from, head) requests (most of the fleet runs
// the release just behind the head, a long tail lags several back, and a
// sprinkling of arbitrary pairs models cross-version queries). Reports
// cache-cold vs cache-warm plans/sec and p95 latency, batch throughput,
// a closed-loop multi-threaded driver (`--threads`, default 8) swept
// across shard counts {1,2,4,8} plus a same-shard adversarial mix, a
// scan-thrash admission scenario, a TTL expiry scenario, and — the
// correctness anchor — that every served plan is byte-identical to the
// direct VersionStore::plan result, across shard counts, thread counts,
// and cache on/off. The bench hard-fails if the cache-warm speedup drops
// below 5x cold, the admission policy lets a one-pass scan thrash the
// hot set, any plan diverges, or (on machines with at least 4 cores)
// the contended 8-thread run fails to reach 3x plans/sec on 8 shards
// over 1 — on smaller machines the scaling ratio is printed but the
// gate is skipped, since there is no parallelism to measure.
//
// Wall-clock metrics carry the `_seconds` suffix so the baseline gate
// skips them; everything else (request mix, hit/miss accounting, route
// choices, script bytes, the scripted eviction/admission/TTL scenarios)
// is deterministic for a given profile and regression-gated.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/VersionStore.h"
#include "serve/PlanService.h"
#include "support/Format.h"
#include "support/RNG.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace ucc;
using namespace uccbench;

namespace {

/// Shared runtime every release keeps (sampling and fixed-point helpers).
const char *Prelude = R"(
int sys_ticks;
int prev_sample;
int history[8];
int hist_pos;
int report_count;

int clamp8(int v) {
  return v & 0xff;
}

int smooth_sample(int raw) {
  int cur = clamp8(raw);
  int sm = (prev_sample * 3 + cur) >> 2;
  history[hist_pos] = sm;
  hist_pos = (hist_pos + 1) & 7;
  prev_sample = sm;
  return sm;
}
)";

/// Release \p V of a firmware lineage that accretes one feature handler
/// per release and retunes a threshold — function-level growth plus
/// statement-level churn, the paper's frequent-update regime.
std::string releaseSource(int V) {
  std::string S = Prelude;
  for (int F = 0; F < V; ++F)
    S += format(R"(
int feature_%d(int x) {
  int acc = x + %d;
  acc = acc ^ (x << %d);
  if (acc > %d) {
    acc = acc - (x >> 1);
  }
  return acc & 0x7fff;
}
)",
                F, 17 + F * 13, 1 + (F % 3), 900 - F * 31);
  S += format(R"(
void main() {
  int ticks = 0;
  int acc = 0;
  while (ticks < %d) {
    sys_ticks = __in(3);
    int sm = smooth_sample(__in(4));
    acc = acc + sm;
)",
              40 + V);
  for (int F = 0; F < V; ++F)
    S += format("    acc = acc + feature_%d(acc);\n", F);
  S += format(R"(
    if (acc > %d) {
      __out(1, acc & 0xff);
      report_count = report_count + 1;
    }
    ticks = ticks + 1;
  }
  __out(15, report_count);
  __halt();
}
)",
              300 - V * 7);
  return S;
}

VersionStore buildStore(int Versions) {
  VersionStore Store;
  DiagnosticEngine Diag;
  for (int V = 0; V < Versions; ++V) {
    int Id = V == 0
                 ? Store.addInitial(releaseSource(0), uccOptions(), Diag)
                 : Store.addUpdate(releaseSource(V), uccOptions(), Diag);
    if (Id != V) {
      std::fprintf(stderr, "bench_plan_service: %s\n", Diag.str().c_str());
      std::exit(1);
    }
  }
  return Store;
}

double secondsSince(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

double percentileUs(std::vector<double> Latencies, double Q) {
  std::sort(Latencies.begin(), Latencies.end());
  size_t At = static_cast<size_t>(Q * (Latencies.size() - 1));
  return Latencies[At] * 1e6;
}

PlanServiceOptions serveOpts(size_t Capacity, size_t NumShards = 8) {
  PlanServiceOptions Opts;
  Opts.CacheCapacity = Capacity;
  Opts.Shards = NumShards;
  return Opts;
}

/// One closed-loop multi-threaded measurement.
struct MtStats {
  double PlansPerSec = 0;
  double P95Us = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "plan_service");

  const int Versions = Bench.quick() ? 6 : 10;
  const int Requests = Bench.quick() ? 1500 : 12000;
  const int ColdRequests = Bench.quick() ? 40 : 150;
  const int WarmSeqRequests = Bench.quick() ? 1000 : 2000;
  const int MtRequests = Bench.quick() ? 20000 : 60000;
  const int Head = Versions - 1;
  const double ZipfS = 1.2;

  // The closed-loop driver's thread count (the harness ignores flags it
  // does not know).
  int Threads = 8;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--threads" && I + 1 < Argc)
      Threads = std::atoi(Argv[I + 1]);
  if (Threads < 1)
    Threads = 1;

  std::printf("Plan service: %d releases, %d requests, zipf s=%.1f, "
              "target v%d\n\n",
              Versions, Requests, ZipfS, Head);

  // Two identical chains: one stays a raw store (the byte-identity
  // reference), one becomes the service under test.
  VersionStore Reference = buildStore(Versions);
  PlanService Service(buildStore(Versions), serveOpts(512));

  // The request stream: Zipf-ranked stale versions against the head
  // (rank 1 = the release just behind it), plus every 7th request an
  // arbitrary cross-version pair for diversity. Seeded, so the stream —
  // and every deterministic metric below — is identical across runs.
  std::vector<int> Candidates;
  for (int Id = 0; Id < Versions; ++Id)
    if (Id != Head)
      Candidates.push_back(Id);
  std::sort(Candidates.begin(), Candidates.end(),
            [&](int L, int R) { return Head - L < Head - R; });

  RNG Rng(0x5eed1);
  ZipfSampler Zipf(Candidates.size(), ZipfS);
  std::vector<std::pair<int, int>> Stream;
  Stream.reserve(static_cast<size_t>(Requests));
  std::vector<int> Fleet(1, Head); // node 0: the sink
  for (int K = 0; K < Requests; ++K) {
    if (K % 7 == 6) {
      int From = static_cast<int>(Rng.below(static_cast<uint64_t>(
          Versions)));
      int To = static_cast<int>(Rng.below(static_cast<uint64_t>(
          Versions)));
      if (From == To)
        To = (From + 1) % Versions;
      Stream.push_back({From, To});
    } else {
      int From = Candidates[Zipf.sample(Rng) - 1];
      Stream.push_back({From, Head});
      Fleet.push_back(From);
    }
  }

  std::vector<std::pair<int, int>> Unique;
  for (const auto &P : Stream)
    if (std::find(Unique.begin(), Unique.end(), P) == Unique.end())
      Unique.push_back(P);

  // The byte-identity oracle: the raw store's answer for every distinct
  // pair the stream touches. Every serving configuration below — any
  // shard count, thread count, cache on or off — must reproduce these
  // bytes exactly.
  std::map<std::pair<int, int>, std::vector<uint8_t>> RefBytes;
  for (const auto &[From, To] : Unique) {
    auto Direct = Reference.plan(From, To);
    if (!Direct) {
      std::fprintf(stderr, "bench_plan_service: reference plan failed\n");
      return 1;
    }
    RefBytes[{From, To}] = Direct->Update.serialize();
  }
  auto verifyService = [&](const PlanService &Svc) {
    int Bad = 0;
    for (const auto &[From, To] : Unique) {
      auto P = Svc.plan(From, To);
      if (!P || P->Update.serialize() != RefBytes[{From, To}]) {
        std::fprintf(stderr,
                     "bench_plan_service: plan %d -> %d diverges from "
                     "the direct store plan\n",
                     From, To);
        ++Bad;
      }
    }
    return Bad;
  };

  // --- Cache-cold: capacity 0 disables caching, every request pays the
  // full direct-diff + chain-compose planning cost.
  double ColdSeconds;
  double ColdP95Us;
  double ColdP99Us;
  int Mismatches = 0;
  {
    PlanService Cold(buildStore(Versions), serveOpts(0));
    std::vector<double> Latency;
    Latency.reserve(static_cast<size_t>(ColdRequests));
    auto Begin = std::chrono::steady_clock::now();
    for (int K = 0; K < ColdRequests; ++K) {
      auto T0 = std::chrono::steady_clock::now();
      auto P = Cold.plan(Stream[static_cast<size_t>(K)].first,
                         Stream[static_cast<size_t>(K)].second);
      if (!P) {
        std::fprintf(stderr, "bench_plan_service: cold plan failed\n");
        return 1;
      }
      Latency.push_back(secondsSince(T0));
    }
    Mismatches += verifyService(Cold); // byte identity with caching off
    ColdSeconds = secondsSince(Begin);
    ColdP95Us = percentileUs(Latency, 0.95);
    ColdP99Us = percentileUs(Latency, 0.99);
  }
  double ColdPlansPerSec = ColdRequests / ColdSeconds;
  Bench.sampleMetrics(); // phase boundary: cold loop done

  // --- Cache-warm: precompute from the observed fleet histogram, prefill
  // the long tail with one batch, then measure pure served traffic.
  int Warmed = Service.warm(Fleet, Head, Bench.jobs());
  Service.planBatch(Unique, Bench.jobs()); // prefill the diverse pairs
  PlanServiceStats Before = Service.stats();
  // Scope the service's always-on latency histogram to the measured warm
  // traffic so the published serve.p*_us gauges describe this phase.
  Service.resetLatency();

  std::vector<double> WarmLatency;
  WarmLatency.reserve(static_cast<size_t>(WarmSeqRequests));
  auto WarmBegin = std::chrono::steady_clock::now();
  for (int K = 0; K < WarmSeqRequests; ++K) {
    const auto &Req = Stream[static_cast<size_t>(K) %
                             Stream.size()];
    auto T0 = std::chrono::steady_clock::now();
    auto P = Service.plan(Req.first, Req.second);
    if (!P) {
      std::fprintf(stderr, "bench_plan_service: warm plan failed\n");
      return 1;
    }
    WarmLatency.push_back(secondsSince(T0));
  }
  double WarmSeconds = secondsSince(WarmBegin);
  double WarmPlansPerSec = WarmSeqRequests / WarmSeconds;
  double WarmP95Us = percentileUs(WarmLatency, 0.95);
  double WarmP99Us = percentileUs(WarmLatency, 0.99);

  // Publish the warm-phase SLO gauges and snapshot: the service's own
  // histogram (reset at the phase start) agrees with the raw-sample
  // percentiles above to within the log-bucket resolution.
  if (Telemetry *T = Bench.telemetry()) {
    const LatencyHistogram &H = Service.latency();
    T->setGauge("serve.p50_us", H.quantileSeconds(0.50) * 1e6);
    T->setGauge("serve.p95_us", H.quantileSeconds(0.95) * 1e6);
    T->setGauge("serve.p99_us", H.quantileSeconds(0.99) * 1e6);
  }
  Bench.sampleMetrics(); // phase boundary: warm sequential loop done

  auto BatchBegin = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const UpdatePlan>> BatchPlans =
      Service.planBatch(Stream, Bench.jobs());
  double BatchSeconds = secondsSince(BatchBegin);
  double BatchPlansPerSec = Requests / BatchSeconds;
  PlanServiceStats After = Service.stats();
  Bench.sampleMetrics(); // phase boundary: batch fan-out done

  uint64_t MeasuredHits = After.Hits - Before.Hits;
  uint64_t MeasuredMisses = After.Misses - Before.Misses;
  double Speedup = WarmPlansPerSec / ColdPlansPerSec;

  // --- Byte identity: every distinct pair the stream touched, service vs
  // direct store. This is the acceptance anchor, so it hard-fails.
  int ChainedRoutes = 0;
  size_t TotalScriptBytes = 0;
  for (const auto &[From, To] : Unique) {
    auto Served = Service.plan(From, To);
    if (!Served || Served->Update.serialize() != RefBytes[{From, To}]) {
      std::fprintf(stderr,
                   "bench_plan_service: plan %d -> %d diverges from the "
                   "direct store plan\n",
                   From, To);
      ++Mismatches;
      continue;
    }
    TotalScriptBytes += Served->ScriptBytes;
    if (Served->Route == UpdatePlan::RouteKind::Chained)
      ++ChainedRoutes;
  }

  // --- The contended multi-threaded scenarios: a closed loop (every
  // thread grabs the next request as soon as it finishes the last) over
  // the warm Zipf stream, swept across shard counts. Same request
  // stream, same cache capacity — only the lock granularity changes.
  auto runClosedLoop = [&](const PlanService &Svc,
                           const std::vector<std::pair<int, int>> &Reqs) {
    std::atomic<int> Next{0};
    std::atomic<int> Failed{0};
    std::vector<std::vector<double>> Lat(static_cast<size_t>(Threads));
    auto Begin = std::chrono::steady_clock::now();
    std::vector<std::thread> Pool;
    Pool.reserve(static_cast<size_t>(Threads));
    for (int T = 0; T < Threads; ++T)
      Pool.emplace_back([&, T] {
        std::vector<double> &My = Lat[static_cast<size_t>(T)];
        My.reserve(static_cast<size_t>(MtRequests / Threads + 1));
        for (;;) {
          int K = Next.fetch_add(1, std::memory_order_relaxed);
          if (K >= MtRequests)
            return;
          const auto &Req = Reqs[static_cast<size_t>(K) % Reqs.size()];
          auto T0 = std::chrono::steady_clock::now();
          if (!Svc.plan(Req.first, Req.second))
            Failed.fetch_add(1, std::memory_order_relaxed);
          My.push_back(secondsSince(T0));
        }
      });
    for (std::thread &T : Pool)
      T.join();
    double Seconds = secondsSince(Begin);
    if (Failed.load() != 0) {
      std::fprintf(stderr,
                   "bench_plan_service: multi-threaded plan failed\n");
      std::exit(1);
    }
    std::vector<double> All;
    All.reserve(static_cast<size_t>(MtRequests));
    for (const std::vector<double> &L : Lat)
      All.insert(All.end(), L.begin(), L.end());
    MtStats R;
    R.PlansPerSec = MtRequests / Seconds;
    R.P95Us = percentileUs(All, 0.95);
    return R;
  };

  std::map<size_t, MtStats> Sweep;
  for (size_t NumShards : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
    PlanService Svc(buildStore(Versions), serveOpts(512, NumShards));
    Svc.planBatch(Unique, Bench.jobs()); // warm every pair first
    Sweep[NumShards] = runClosedLoop(Svc, Stream);
    Mismatches += verifyService(Svc); // byte identity after contention
  }
  double ScalingX = Sweep[8].PlansPerSec / Sweep[1].PlansPerSec;
  Bench.sampleMetrics(); // phase boundary: shard sweep done

  // The adversarial mix: every request hashes into ONE of the 8 shards,
  // so sharding buys nothing and the single hot lock is the ceiling.
  MtStats SameShard;
  size_t SameShardPairs = 0;
  {
    PlanService Svc(buildStore(Versions), serveOpts(512, 8));
    Svc.planBatch(Unique, Bench.jobs());
    std::vector<std::vector<std::pair<int, int>>> ByShard(
        Svc.shardCount());
    for (const auto &P : Unique)
      if (auto Idx = Svc.shardIndex(P.first, P.second))
        ByShard[*Idx].push_back(P);
    const std::vector<std::pair<int, int>> *Crowded = &ByShard[0];
    for (const std::vector<std::pair<int, int>> &Pairs : ByShard)
      if (Pairs.size() > Crowded->size())
        Crowded = &Pairs;
    SameShardPairs = Crowded->size();
    SameShard = runClosedLoop(Svc, *Crowded);
    Mismatches += verifyService(Svc);
  }
  Bench.sampleMetrics(); // phase boundary: adversarial scenario done

  // --- Scan-thrash: a hot pair of plans accessed repeatedly, then a
  // one-pass scan over every other stale version. Classic LRU lets the
  // scan evict the hot set (two extra misses when it returns); the
  // frequency doorkeeper refuses the scan residency and keeps the hot
  // set resident. Deterministic, so the gate pins all three counters.
  uint64_t ScanHotMissesLru = 0, ScanHotMissesTinyLfu = 0,
           ScanAdmissionRejects = 0;
  for (int Pass = 0; Pass < 2; ++Pass) {
    PlanServiceOptions Opts = serveOpts(2, 1);
    Opts.Admit = Pass ? PlanServiceOptions::Admission::Frequency
                      : PlanServiceOptions::Admission::Always;
    PlanService Svc(buildStore(Versions), Opts);
    for (int K = 0; K < 3; ++K) {
      Svc.plan(0, Head);
      Svc.plan(1, Head);
    }
    for (int From = 2; From < Head; ++From)
      Svc.plan(From, Head); // the scan
    PlanServiceStats Mid = Svc.stats();
    Svc.plan(0, Head);
    Svc.plan(1, Head);
    PlanServiceStats End = Svc.stats();
    if (Pass) {
      ScanHotMissesTinyLfu = End.Misses - Mid.Misses;
      ScanAdmissionRejects = End.AdmissionRejects;
    } else {
      ScanHotMissesLru = End.Misses - Mid.Misses;
    }
  }

  // --- TTL: on an injected clock, a cached plan older than the TTL is
  // dropped at its next lookup and recomputed. One expiry, exactly.
  uint64_t TtlExpired = 0;
  {
    double FakeNow = 0;
    PlanServiceOptions Opts = serveOpts(8, 1);
    Opts.TtlSeconds = 30;
    Opts.Clock = [&FakeNow] { return FakeNow; };
    PlanService Svc(buildStore(Versions), Opts);
    Svc.plan(0, Head); // miss, stamped t=0
    FakeNow = 10;
    Svc.plan(0, Head); // fresh: hit
    FakeNow = 45;
    Svc.plan(0, Head); // expired: dropped and recomputed
    TtlExpired = Svc.stats().TtlExpired;
  }

  // --- A scripted eviction scenario the regression gate can pin: a
  // capacity-2 single-shard cache walked through three pairs evicts the
  // LRU pair, and that pair's return misses and evicts again — two
  // evictions total.
  uint64_t Cap2Evictions;
  {
    PlanService Tiny(buildStore(Versions), serveOpts(2, 1));
    Tiny.plan(0, Head);
    Tiny.plan(1, Head);
    Tiny.plan(2, Head); // evicts (0, Head)
    Tiny.plan(0, Head); // misses again, evicts (1, Head)
    Cap2Evictions = Tiny.stats().Evictions;
  }

  std::printf("%-28s %12s %12s\n", "", "cold", "warm");
  std::printf("%-28s %12.0f %12.0f\n", "plans/sec", ColdPlansPerSec,
              WarmPlansPerSec);
  std::printf("%-28s %12.1f %12.1f\n", "p95 latency (us)", ColdP95Us,
              WarmP95Us);
  std::printf("%-28s %12.1f %12.1f\n", "p99 latency (us)", ColdP99Us,
              WarmP99Us);
  std::printf("\nwarm speedup over cold:      %.1fx\n", Speedup);
  std::printf("batch throughput:            %.0f plans/sec (%d jobs)\n",
              BatchPlansPerSec, Bench.jobs());
  std::printf("distinct pairs in stream:    %zu (%d chained routes, "
              "%zu script bytes)\n",
              Unique.size(), ChainedRoutes, TotalScriptBytes);
  std::printf("warmed pairs:                %d\n", Warmed);
  std::printf("measured hits/misses:        %llu / %llu\n",
              static_cast<unsigned long long>(MeasuredHits),
              static_cast<unsigned long long>(MeasuredMisses));

  unsigned Cores = std::thread::hardware_concurrency();
  bool EnforceScaling = Cores >= 4 && Threads >= 4;
  std::printf("\nContended serving, %d threads, %d requests "
              "(closed loop, warm cache):\n",
              Threads, MtRequests);
  std::printf("%-28s %12s %12s\n", "shards", "plans/sec", "p95 (us)");
  for (const auto &[NumShards, R] : Sweep)
    std::printf("%-28zu %12.0f %12.2f\n", NumShards, R.PlansPerSec,
                R.P95Us);
  std::printf("%-28s %12.0f %12.2f   (%zu pairs, one shard)\n",
              "same-shard adversarial", SameShard.PlansPerSec,
              SameShard.P95Us, SameShardPairs);
  std::printf("shards=8 over shards=1:      %.2fx", ScalingX);
  if (!EnforceScaling)
    std::printf("   (3x gate skipped: %u core%s)", Cores,
                Cores == 1 ? "" : "s");
  std::printf("\n");

  std::printf("\nadmission scan-thrash:       hot misses %llu (lru) vs "
              "%llu (tinylfu), %llu scan rejects\n",
              static_cast<unsigned long long>(ScanHotMissesLru),
              static_cast<unsigned long long>(ScanHotMissesTinyLfu),
              static_cast<unsigned long long>(ScanAdmissionRejects));
  std::printf("ttl expirations:             %llu\n",
              static_cast<unsigned long long>(TtlExpired));
  std::printf("capacity-2 evictions:        %llu\n",
              static_cast<unsigned long long>(Cap2Evictions));
  std::printf("byte-identical to store:     %s\n",
              Mismatches == 0 ? "yes" : "NO");

  Bench.metric("versions", Versions);
  Bench.metric("requests", Requests);
  Bench.metric("unique_pairs", static_cast<double>(Unique.size()));
  Bench.metric("warmed_pairs", Warmed);
  Bench.metric("measured_hits", static_cast<double>(MeasuredHits));
  Bench.metric("measured_misses", static_cast<double>(MeasuredMisses));
  Bench.metric("chained_routes", ChainedRoutes);
  Bench.metric("total_script_bytes",
               static_cast<double>(TotalScriptBytes));
  Bench.metric("cap2_evictions", static_cast<double>(Cap2Evictions));
  Bench.metric("scan_hot_misses_lru",
               static_cast<double>(ScanHotMissesLru));
  Bench.metric("scan_hot_misses_tinylfu",
               static_cast<double>(ScanHotMissesTinyLfu));
  Bench.metric("scan_admission_rejects",
               static_cast<double>(ScanAdmissionRejects));
  Bench.metric("ttl_expired", static_cast<double>(TtlExpired));
  Bench.metric("mt_threads", Threads);
  Bench.metric("mt_same_shard_pairs",
               static_cast<double>(SameShardPairs));
  for (const auto &[NumShards, R] : Sweep) {
    Bench.metric(format("mt_shards%zu_plans_per_sec_seconds", NumShards),
                 R.PlansPerSec);
    Bench.metric(format("mt_shards%zu_p95_us_seconds", NumShards),
                 R.P95Us);
  }
  Bench.metric("mt_same_shard_plans_per_sec_seconds",
               SameShard.PlansPerSec);
  Bench.metric("mt_same_shard_p95_us_seconds", SameShard.P95Us);
  Bench.metric("mt_scaling_shards8_over_1_x_seconds", ScalingX);
  Bench.metric("byte_identical", Mismatches == 0 ? 1.0 : 0.0);
  Bench.metric("cold_plans_per_sec_seconds", ColdPlansPerSec);
  Bench.metric("warm_plans_per_sec_seconds", WarmPlansPerSec);
  Bench.metric("batch_plans_per_sec_seconds", BatchPlansPerSec);
  Bench.metric("speedup_warm_over_cold_x_seconds", Speedup);
  Bench.metric("cold_p95_us_seconds", ColdP95Us);
  Bench.metric("warm_p95_us_seconds", WarmP95Us);
  Bench.metric("cold_p99_us_seconds", ColdP99Us);
  Bench.metric("warm_p99_us_seconds", WarmP99Us);
  Bench.metric("serve_p99_us_seconds",
               Service.latency().quantileSeconds(0.99) * 1e6);

  if (Mismatches != 0)
    return 1;
  if (Speedup < 5.0) {
    std::fprintf(stderr,
                 "bench_plan_service: warm speedup %.1fx is below the "
                 "5x acceptance floor\n",
                 Speedup);
    return 1;
  }
  if (ScanHotMissesTinyLfu != 0) {
    std::fprintf(stderr,
                 "bench_plan_service: the admission doorkeeper let a "
                 "one-pass scan evict the hot set (%llu hot misses)\n",
                 static_cast<unsigned long long>(ScanHotMissesTinyLfu));
    return 1;
  }
  if (EnforceScaling && ScalingX < 3.0) {
    std::fprintf(stderr,
                 "bench_plan_service: contended %d-thread throughput on "
                 "8 shards is only %.2fx the 1-shard cache (3x floor)\n",
                 Threads, ScalingX);
    return 1;
  }
  return 0;
}
