//===- bench/bench_fig16_data_alloc.cpp - paper section 5.7 / Fig. 16 -----===//
//
// Reproduces the update-conscious data-allocation study: for the D1/D2
// cases, compares Diff_inst when the data allocator is the gcc-style
// hashed layout (GCC-DA) versus UCC-DA, with UCC-RA held fixed so the
// effect is isolated to data layout (as in section 5.7).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace ucc;
using namespace uccbench;

namespace {

int diffWith(const UpdateCase &Case, DataAllocKind DA) {
  CompileOptions OldOpts = baselineOptions();
  CompileOutput V1 = compileOrDie(Case.OldSource, OldOpts);

  CompileOptions NewOpts;
  NewOpts.RA = RegAllocKind::UpdateConscious; // isolate the DA effect
  NewOpts.DA = DA;
  CompileOutput V2 = recompileOrDie(Case.NewSource, V1.Record, NewOpts);
  return diffImages(V1.Image, V2.Image).totalDiffInst();
}

} // namespace

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig16_data_alloc");
  std::printf("Figure 16 / section 5.7: update-conscious data "
              "allocation\n");
  std::printf("Diff_inst with UCC-RA fixed; only the data allocator "
              "varies.\n\n");
  std::printf("%4s  %-16s  %-46s  %8s  %8s\n", "case", "benchmark",
              "update", "GCC-DA", "UCC-DA");
  for (const UpdateCase &Case : dataLayoutCases()) {
    int Baseline = diffWith(Case, DataAllocKind::BaselineHash);
    int Ucc = diffWith(Case, DataAllocKind::UpdateConscious);
    std::printf("%4s%d  %-16s  %-46.46s  %8d  %8d\n", "D",
                Case.Id - 100, Case.Benchmark.c_str(),
                Case.Description.c_str(), Baseline, Ucc);
    char Key[48];
    std::snprintf(Key, sizeof(Key), "d%d_diff_inst_gcc", Case.Id - 100);
    Bench.metric(Key, static_cast<double>(Baseline));
    std::snprintf(Key, sizeof(Key), "d%d_diff_inst_ucc", Case.Id - 100);
    Bench.metric(Key, static_cast<double>(Ucc));
  }

  std::printf("\nSection 5.7 narrative checks:\n");
  std::printf("  D1: adding globals reshuffles the hashed layout, touching "
              "every instruction that addresses a moved\n      variable; "
              "UCC-DA appends/reuses holes so surviving variables keep "
              "their addresses.\n");
  std::printf("  D2: renaming a variable is a delete+insert for UCC-DA, "
              "which puts the new name into the old hole —\n      the "
              "binary barely changes, while name-hash layout moves "
              "everything.\n");
  return 0;
}
