//===- bench/bench_fig14_iterations.cpp - paper Fig. 14 -------------------===//
//
// Reproduces Fig. 14: solver iterations (simplex pivots across the
// branch-and-bound) as a function of (#variables x #instructions), plus
// the section 5.6 observation that preferred-register tags act as a hint
// that reduces solver work, while *misleading* tags increase it (the paper
// measured 2-3x more iterations).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "SyntheticWindows.h"

#include <cstdio>

using namespace ucc;
using namespace uccbench;

namespace {

int64_t pivotsFor(int NumStmts, int NumVars, int NumRegs, TagMode Mode,
                  uint64_t Seed, bool UseHint) {
  WindowSpec Spec =
      makeSyntheticWindow(NumStmts, NumVars, NumRegs, Mode, Seed);
  ILPOptions Opts;
  Opts.TimeLimitSec = 30.0;
  WindowSolution Sol = solveWindow(Spec, Opts, UseHint);
  if (Sol.Status != SolveStatus::Optimal &&
      Sol.Status != SolveStatus::Feasible)
    return -1;
  return Sol.Pivots;
}

} // namespace

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "fig14_iterations");
  std::printf("Figure 14: solver iterations vs (#variables x "
              "#instructions)\n\n");
  std::printf("%8s  %6s  %10s  | %12s  %12s  %12s  %12s\n", "instrs",
              "vars", "vars*instrs", "tags+hint", "tags-hint", "no tags",
              "misleading");

  struct Config {
    int Stmts, Vars;
  };
  std::vector<Config> Configs = {{6, 3},  {8, 4},  {10, 4},
                                 {12, 5}, {14, 5}, {16, 6}};
  int Seeds = 2;
  if (Bench.quick()) { // the largest windows dominate the full runtime
    Configs = {{6, 3}, {8, 4}, {10, 4}};
    Seeds = 1;
  }
  // Every (config, seed, mode) cell is an independent window: solve the
  // whole grid concurrently under --jobs, then reduce in config order so
  // the table and the metrics are identical for every job count.
  struct Cell {
    int64_t Hinted = 0, Unhinted = 0, None = 0, Bad = 0;
  };
  std::vector<Cell> Cells(Configs.size() * static_cast<size_t>(Seeds));
  parallelFor(static_cast<int>(Cells.size()), Bench.jobs(), [&](int I) {
    const Config &C = Configs[static_cast<size_t>(I) /
                              static_cast<size_t>(Seeds)];
    uint64_t Seed = static_cast<uint64_t>(I % Seeds) + 1;
    Cell &Out = Cells[static_cast<size_t>(I)];
    Out.Hinted = pivotsFor(C.Stmts, C.Vars, 4, TagMode::Good, Seed, true);
    Out.Unhinted = pivotsFor(C.Stmts, C.Vars, 4, TagMode::Good, Seed, false);
    Out.None = pivotsFor(C.Stmts, C.Vars, 4, TagMode::None, Seed, true);
    Out.Bad = pivotsFor(C.Stmts, C.Vars, 4, TagMode::Misleading, Seed, true);
  });

  int64_t SumHinted = 0, SumUnhinted = 0, SumNone = 0, SumBad = 0;
  for (size_t K = 0; K < Configs.size(); ++K) {
    const Config &C = Configs[K];
    int64_t Hinted = 0, Unhinted = 0, None = 0, Bad = 0;
    for (int Seed = 0; Seed < Seeds; ++Seed) {
      const Cell &Out = Cells[K * static_cast<size_t>(Seeds) +
                              static_cast<size_t>(Seed)];
      Hinted += Out.Hinted;
      Unhinted += Out.Unhinted;
      None += Out.None;
      Bad += Out.Bad;
    }
    std::printf("%8d  %6d  %10d  | %12lld  %12lld  %12lld  %12lld\n",
                C.Stmts, C.Vars, C.Stmts * C.Vars,
                static_cast<long long>(Hinted / Seeds),
                static_cast<long long>(Unhinted / Seeds),
                static_cast<long long>(None / Seeds),
                static_cast<long long>(Bad / Seeds));
    SumHinted += Hinted;
    SumUnhinted += Unhinted;
    SumNone += None;
    SumBad += Bad;
  }
  Bench.metric("pivots_hinted_total", static_cast<double>(SumHinted));
  Bench.metric("pivots_unhinted_total",
               static_cast<double>(SumUnhinted));
  Bench.metric("pivots_no_tags_total", static_cast<double>(SumNone));
  Bench.metric("pivots_misleading_total", static_cast<double>(SumBad));
  std::printf("\nIterations grow with problem size. Consistent tags used "
              "as a starting hint (tags+hint) never cost more than\n"
              "ignoring them (tags-hint); misleading tags blow the search "
              "up on the larger windows — the paper's section 5.6\n"
              "observations (tags reduce iterations; random tags need 2-3x "
              "more).\n");
  return 0;
}
