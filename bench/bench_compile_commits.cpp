//===- bench/bench_compile_commits.cpp - incremental recompile rate -------===//
//
// Measures the function-level compile cache (core/CompileCache) on the
// workload it was built for: a firmware with many substantial functions
// committed through a version store as a long chain of small releases,
// each touching only 1-3 functions. Cache-off, every commit pays
// isel -> RA -> frame layout for every function; cache-on, unchanged
// functions are served from the cache and only the touched ones recompile.
// The bench sweeps jobs {1, 8} x cache {off, on}, reports commits/sec per
// configuration, and hard-fails unless (a) all four configurations produce
// byte-identical images and parent scripts for every version and (b) the
// warm-over-cold speedup at jobs=1 clears the 3x acceptance floor.
//
// Wall-clock metrics carry the `_seconds` suffix so the baseline gate
// skips them; everything else (function/commit counts, cache hit/miss/
// eviction accounting, script bytes, byte identity) is deterministic for
// a given profile and regression-gated.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/CompileCache.h"
#include "core/VersionStore.h"
#include "support/Format.h"
#include "support/RNG.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ucc;
using namespace uccbench;

namespace {

/// One sensor-processing stage. Deliberately heavyweight — a dozen live
/// locals, a loop, and branches — so the per-function back half (isel,
/// UCC register allocation, frame layout) dominates the shared front half
/// that the cache cannot skip. \p Rev is the stage's revision: editing a
/// stage bumps its revision, which perturbs constants in the body the way
/// a threshold retune does.
std::string stageSource(int F, int Rev) {
  int Salt = 17 + F * 13 + Rev * 101;
  return format(R"(
int stage_%d(int x) {
  int acc = x + %d;
  int a0 = x ^ %d;
  int a1 = (x << 1) + %d;
  int a2 = a0 + a1;
  int a3 = x - (a1 >> 2);
  int a4 = a2 ^ a3;
  int a5 = a4 + %d;
  int i = 0;
  while (i < 6) {
    acc = acc + (a0 ^ i);
    a1 = a1 + (acc >> 1);
    a2 = a2 ^ (a1 + i);
    a3 = a3 + (a2 & 0xff);
    a4 = a4 + (a3 ^ acc);
    a5 = (a5 << 1) ^ a4;
    if (acc > %d) {
      acc = acc - (a2 >> 2);
      a0 = a0 + 3;
    }
    if (a5 > a3) {
      a5 = a5 - a3;
    }
    i = i + 1;
  }
  acc = acc + a0 + a1;
  acc = acc ^ (a2 + a3);
  acc = acc + (a4 ^ a5);
  return acc & 0x7fff;
}
)",
                F, Salt, Salt * 3 + 7, Salt & 0xff, 5 + (F % 9),
                600 + Salt % 257);
}

/// The firmware at a given set of per-stage revisions: every stage, plus a
/// main loop that keeps them all live. Only the edited stages' text
/// changes between releases — exactly the regime where a function-level
/// cache should skip everything else.
std::string firmwareSource(const std::vector<int> &Revs) {
  std::string S = "int sys_ticks;\nint report_count;\n";
  for (int F = 0; F < static_cast<int>(Revs.size()); ++F)
    S += stageSource(F, Revs[static_cast<size_t>(F)]);
  S += "\nvoid main() {\n  int ticks = 0;\n  int acc = 0;\n"
       "  while (ticks < 50) {\n    sys_ticks = __in(3);\n"
       "    acc = acc + __in(4);\n";
  for (int F = 0; F < static_cast<int>(Revs.size()); ++F)
    S += format("    acc = acc + stage_%d(acc);\n", F);
  S += "    if (acc > 900) {\n      __out(1, acc & 0xff);\n"
       "      report_count = report_count + 1;\n    }\n"
       "    ticks = ticks + 1;\n  }\n"
       "  __out(15, report_count);\n  __halt();\n}\n";
  return S;
}

/// Untimed commits at the head of the chain before the measured window
/// opens. Version 0 compiles with no old record, so its cache keys carry
/// no old slice; the first update then rewrites every function against
/// that record. Both are all-miss transients under any configuration —
/// steady state (misses = touched functions plus last commit's ripples)
/// starts at the second update, so the clock starts there too.
constexpr int WarmupCommits = 2;

/// The release chain: source 0 is the initial firmware; each later release
/// bumps the revision of 1-3 stages (seeded, so every configuration
/// commits the identical chain).
std::vector<std::string> releaseChain(int Stages, int Commits) {
  std::vector<std::string> Sources;
  std::vector<int> Revs(static_cast<size_t>(Stages), 0);
  Sources.push_back(firmwareSource(Revs));
  RNG Rng(0xc0117);
  for (int C = 0; C < Commits + WarmupCommits; ++C) {
    int Touched = 1 + static_cast<int>(Rng.below(3));
    for (int T = 0; T < Touched; ++T)
      ++Revs[static_cast<size_t>(Rng.below(static_cast<uint64_t>(Stages)))];
    Sources.push_back(firmwareSource(Revs));
  }
  return Sources;
}

/// What one (jobs, cache) configuration produced: wall time for the
/// steady-state update commits (initial compile and warm-up transients
/// excluded) plus everything the identity check compares.
struct ChainResult {
  double UpdateSeconds = 0.0;
  std::vector<std::vector<uint8_t>> Images; ///< image bytes per version
  std::vector<size_t> ScriptBytes; ///< script-from-parent per version
  CompileCacheStats Cache;         ///< zeros when the cache was off
  CompileCacheStats CacheBefore;   ///< snapshot when the clock started
};

double secondsSince(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Commits the whole chain into a fresh store under the given jobs/cache
/// configuration. Cache-on goes through an UpdateSession (which owns a
/// CompileCache); cache-off calls the store directly with a null cache —
/// the exact code path minus the lookup.
ChainResult runChain(const std::vector<std::string> &Sources, int Jobs,
                     bool WithCache) {
  ChainResult R;
  CompileOptions Opts = uccOptions();
  Opts.Jobs = Jobs;
  VersionStore Store;
  DiagnosticEngine Diag;

  auto commitOrDie = [&](int Expect, int Id) {
    if (Id != Expect) {
      std::fprintf(stderr, "bench_compile_commits: commit %d failed:\n%s",
                   Expect, Diag.str().c_str());
      std::exit(1);
    }
  };

  const size_t FirstTimed = 1 + WarmupCommits;
  if (WithCache) {
    UpdateSession Session(Store, Opts);
    commitOrDie(0, Session.commit(Sources[0], Diag));
    for (size_t V = 1; V < FirstTimed; ++V)
      commitOrDie(static_cast<int>(V), Session.commit(Sources[V], Diag));
    R.CacheBefore = Session.compileCacheStats();
    auto Begin = std::chrono::steady_clock::now();
    for (size_t V = FirstTimed; V < Sources.size(); ++V)
      commitOrDie(static_cast<int>(V), Session.commit(Sources[V], Diag));
    R.UpdateSeconds = secondsSince(Begin);
    R.Cache = Session.compileCacheStats();
  } else {
    commitOrDie(0, Store.addInitial(Sources[0], Opts, Diag));
    for (size_t V = 1; V < FirstTimed; ++V)
      commitOrDie(static_cast<int>(V),
                  Store.addUpdate(Sources[V], Opts, Diag));
    auto Begin = std::chrono::steady_clock::now();
    for (size_t V = FirstTimed; V < Sources.size(); ++V)
      commitOrDie(static_cast<int>(V),
                  Store.addUpdate(Sources[V], Opts, Diag));
    R.UpdateSeconds = secondsSince(Begin);
  }

  for (const StoredVersion &V : Store.versions()) {
    R.Images.push_back(V.Image.serialize());
    R.ScriptBytes.push_back(V.ScriptBytesFromParent);
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  uccbench::BenchHarness Bench(Argc, Argv, "compile_commits");

  const int Stages = Bench.quick() ? 24 : 40;
  const int Commits = Bench.quick() ? 8 : 16;
  const int JobsSweep[] = {1, 8};

  std::printf("Compile commits: %d stages + main, %d timed update commits "
              "(+%d warm-up), 1-3 stages touched per commit\n\n",
              Stages, Commits, WarmupCommits);

  std::vector<std::string> Sources = releaseChain(Stages, Commits);

  // The sweep: jobs x cache. Index [J][C] with C = 0 off, 1 on.
  ChainResult Results[2][2];
  for (int J = 0; J < 2; ++J) {
    for (int C = 0; C < 2; ++C) {
      Results[J][C] = runChain(Sources, JobsSweep[J], C == 1);
      Bench.sampleMetrics(); // phase boundary: one configuration done
    }
  }

  // --- Byte identity across the whole sweep: every configuration must
  // produce the identical image and parent script for every version. This
  // is the acceptance anchor, so it hard-fails.
  int Mismatches = 0;
  const ChainResult &Ref = Results[0][0];
  for (int J = 0; J < 2; ++J)
    for (int C = 0; C < 2; ++C) {
      const ChainResult &R = Results[J][C];
      if (R.Images != Ref.Images || R.ScriptBytes != Ref.ScriptBytes) {
        std::fprintf(stderr,
                     "bench_compile_commits: jobs=%d cache=%s diverges "
                     "from jobs=1 cache=off\n",
                     JobsSweep[J], C ? "on" : "off");
        ++Mismatches;
      }
    }

  // Cache accounting is scheduling-independent (every function has its
  // own key; commits are sequential), so jobs=1 and jobs=8 must agree.
  const CompileCacheStats &CS1 = Results[0][1].Cache;
  const CompileCacheStats &CS8 = Results[1][1].Cache;
  uint64_t TimedHits = CS1.Hits - Results[0][1].CacheBefore.Hits;
  uint64_t TimedMisses = CS1.Misses - Results[0][1].CacheBefore.Misses;
  if (CS1.Hits != CS8.Hits || CS1.Misses != CS8.Misses ||
      CS1.Evictions != CS8.Evictions) {
    std::fprintf(stderr,
                 "bench_compile_commits: cache accounting differs "
                 "between jobs=1 and jobs=8\n");
    ++Mismatches;
  }

  size_t TotalScriptBytes = 0;
  for (size_t B : Ref.ScriptBytes)
    TotalScriptBytes += B;

  double CommitsPerSec[2][2];
  for (int J = 0; J < 2; ++J)
    for (int C = 0; C < 2; ++C)
      CommitsPerSec[J][C] = Commits / Results[J][C].UpdateSeconds;
  double SpeedupJ1 = CommitsPerSec[0][1] / CommitsPerSec[0][0];
  double SpeedupJ8 = CommitsPerSec[1][1] / CommitsPerSec[1][0];

  std::printf("%-28s %12s %12s %10s\n", "", "cache off", "cache on",
              "speedup");
  std::printf("%-28s %12.1f %12.1f %9.1fx\n", "commits/sec (jobs=1)",
              CommitsPerSec[0][0], CommitsPerSec[0][1], SpeedupJ1);
  std::printf("%-28s %12.1f %12.1f %9.1fx\n", "commits/sec (jobs=8)",
              CommitsPerSec[1][0], CommitsPerSec[1][1], SpeedupJ8);
  std::printf("\ntimed-window hits/misses:    %llu / %llu "
              "(chain total %llu / %llu, %llu evictions, %zu resident)\n",
              static_cast<unsigned long long>(TimedHits),
              static_cast<unsigned long long>(TimedMisses),
              static_cast<unsigned long long>(CS1.Hits),
              static_cast<unsigned long long>(CS1.Misses),
              static_cast<unsigned long long>(CS1.Evictions),
              CS1.Entries);
  std::printf("total script bytes:          %zu across %d commits\n",
              TotalScriptBytes, Commits);
  std::printf("byte-identical (4 configs):  %s\n",
              Mismatches == 0 ? "yes" : "NO");

  Bench.metric("functions", Stages + 1);
  Bench.metric("commits", Commits);
  Bench.metric("warm_hits", static_cast<double>(CS1.Hits));
  Bench.metric("warm_misses", static_cast<double>(CS1.Misses));
  Bench.metric("timed_hits", static_cast<double>(TimedHits));
  Bench.metric("timed_misses", static_cast<double>(TimedMisses));
  Bench.metric("warm_evictions", static_cast<double>(CS1.Evictions));
  Bench.metric("total_script_bytes",
               static_cast<double>(TotalScriptBytes));
  Bench.metric("byte_identical", Mismatches == 0 ? 1.0 : 0.0);
  Bench.metric("cold_commits_per_sec_j1_seconds", CommitsPerSec[0][0]);
  Bench.metric("warm_commits_per_sec_j1_seconds", CommitsPerSec[0][1]);
  Bench.metric("cold_commits_per_sec_j8_seconds", CommitsPerSec[1][0]);
  Bench.metric("warm_commits_per_sec_j8_seconds", CommitsPerSec[1][1]);
  Bench.metric("speedup_warm_over_cold_j1_x_seconds", SpeedupJ1);
  Bench.metric("speedup_warm_over_cold_j8_x_seconds", SpeedupJ8);

  if (Mismatches != 0)
    return 1;
  if (SpeedupJ1 < 3.0) {
    std::fprintf(stderr,
                 "bench_compile_commits: warm speedup %.1fx at jobs=1 is "
                 "below the 3x acceptance floor\n",
                 SpeedupJ1);
    return 1;
  }
  return 0;
}
