#!/usr/bin/env python3
"""Fail CI on dead intra-repo markdown links.

Walks every tracked markdown file at the repo root and under docs/,
extracts inline links and images, and checks that relative targets
(after stripping #anchors) exist on disk. External links (a scheme or
a bare domain) are ignored -- this is a rot check for the repo's own
documentation graph, not a crawler.

Usage: tools/check-doc-links.py [repo-root]
Exit 0 when every intra-repo link resolves, 1 otherwise (listing each
dead link as file:line).
"""

import os
import re
import sys

# Inline markdown links/images: [text](target) / ![alt](target).
# Reference-style definitions: [label]: target
INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")

SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    files = [
        os.path.join(root, f)
        for f in sorted(os.listdir(root))
        if f.endswith(".md")
    ]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += [
            os.path.join(docs, f)
            for f in sorted(os.listdir(docs))
            if f.endswith(".md")
        ]
    return files


def targets_in(line):
    for m in INLINE.finditer(line):
        yield m.group(1)
    m = REFDEF.match(line)
    if m:
        yield m.group(1)


def is_external(target):
    return target.startswith(SCHEMES) or target.startswith("#")


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    dead = []
    checked = 0
    for path in markdown_files(root):
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in targets_in(line):
                    if is_external(target):
                        continue
                    resolved = target.split("#", 1)[0]
                    if not resolved:
                        continue
                    checked += 1
                    full = os.path.normpath(os.path.join(base, resolved))
                    if not os.path.exists(full):
                        rel = os.path.relpath(path, root)
                        dead.append(
                            "%s:%d: dead link -> %s" % (rel, lineno, target)
                        )
    if dead:
        print("check-doc-links: %d dead intra-repo link(s):" % len(dead))
        for d in dead:
            print("  " + d)
        return 1
    print(
        "check-doc-links: %d intra-repo link(s) across %d file(s), all alive"
        % (checked, len(markdown_files(root)))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
