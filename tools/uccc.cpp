//===- tools/uccc.cpp - the update-conscious compiler driver --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end over the library — the sink-side toolchain of
/// the paper's Fig. 1 and the sensor-side patcher of Fig. 2 as one binary:
///
///   uccc compile  app.mc -o app.img --record app.rec [--dis]
///   uccc update   app_v2.mc --record app.rec --image app.img
///                 -o app_v2.img --new-record app_v2.rec
///                 --script update.pkg [--baseline] [--cnt N] [--spacet N]
///   uccc patch    app.img update.pkg -o patched.img
///   uccc run      app.img [--steps N] [--sensor 1,2,3] [--profile]
///   uccc dis      app.img
///   uccc diff     old.img new.img
///
/// Every command additionally accepts `--trace-json <file>` (write the
/// telemetry registry as JSON, schema in docs/OBSERVABILITY.md),
/// `--trace-events <file>` (write a Chrome trace-event JSON file of the
/// structured event timeline — load it in Perfetto / chrome://tracing) and
/// `--stats` (print a human-readable telemetry summary after the command).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace ucc;

namespace {

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "uccc: %s\n", Message.c_str());
  std::exit(1);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  uccc compile <src> -o <img> [--record <rec>] [--dis] [--O0]\n"
      "  uccc update  <src> --record <rec> --image <img> -o <img>\n"
      "               [--new-record <rec>] [--script <pkg>]\n"
      "               [--baseline] [--cnt <n>] [--spacet <n>] [--k <n>]\n"
      "               [--strategy greedy|ilp|hybrid]\n"
      "               [--ilp-max-binaries <n>]\n"
      "  uccc patch   <img> <pkg> -o <img>\n"
      "  uccc run     <img> [--steps <n>] [--sensor v,v,...] [--profile]\n"
      "  uccc dis     <img>\n"
      "  uccc diff    <old-img> <new-img>\n"
      "global flags (any command):\n"
      "  --jobs <n>            worker threads for parallel phases\n"
      "                        (default: hardware concurrency, or the\n"
      "                        UCC_JOBS environment variable; output is\n"
      "                        bit-identical for every value)\n"
      "  --trace-json <file>   write the telemetry trace as JSON\n"
      "  --trace-events <file> write a Chrome trace-event JSON timeline\n"
      "  --stats               print a telemetry summary to stdout\n");
  std::exit(2);
}

std::string readTextFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    die("cannot open '" + Path + "'");
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

std::vector<uint8_t> readBinaryFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    die("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return Bytes;
}

void writeBinaryFile(const std::string &Path,
                     const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    die("cannot write '" + Path + "'");
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

BinaryImage loadImage(const std::string &Path) {
  BinaryImage Img;
  if (!BinaryImage::deserialize(readBinaryFile(Path), Img))
    die("'" + Path + "' is not a valid SAVR image");
  return Img;
}

CompilationRecord loadRecord(const std::string &Path) {
  CompilationRecord Rec;
  if (!CompilationRecord::deserialize(readBinaryFile(Path), Rec))
    die("'" + Path + "' is not a valid compilation record");
  return Rec;
}

/// Simple flag cursor over argv.
class Args {
public:
  Args(int Argc, char **Argv) : Argv(Argv), Argc(Argc) {}

  /// Next positional argument, or empty when none remain.
  std::string positional() {
    for (int K = Pos; K < Argc; ++K) {
      if (Argv[K][0] != '-' && !Consumed[static_cast<size_t>(K)]) {
        Consumed[static_cast<size_t>(K)] = true;
        Pos = K + 1;
        return Argv[K];
      }
      if (Argv[K][0] == '-' && flagTakesValue(Argv[K]))
        ++K; // skip the flag's value
    }
    return "";
  }

  bool flag(const char *Name) {
    for (int K = 0; K < Argc; ++K)
      if (std::strcmp(Argv[K], Name) == 0) {
        Consumed[static_cast<size_t>(K)] = true;
        return true;
      }
    return false;
  }

  std::string option(const char *Name, const std::string &Default = "") {
    for (int K = 0; K + 1 < Argc; ++K)
      if (std::strcmp(Argv[K], Name) == 0) {
        Consumed[static_cast<size_t>(K)] = true;
        Consumed[static_cast<size_t>(K + 1)] = true;
        return Argv[K + 1];
      }
    return Default;
  }

private:
  static bool flagTakesValue(const char *Flag) {
    static const char *WithValue[] = {"-o",         "--record",
                                      "--image",     "--new-record",
                                      "--script",    "--cnt",
                                      "--spacet",    "--k",
                                      "--steps",     "--sensor",
                                      "--strategy",  "--trace-json",
                                      "--trace-events",
                                      "--ilp-max-binaries",
                                      "--jobs"};
    for (const char *F : WithValue)
      if (std::strcmp(Flag, F) == 0)
        return true;
    return false;
  }

  char **Argv;
  int Argc;
  int Pos = 0;
  std::vector<bool> Consumed = std::vector<bool>(256, false);
};

void reportDiagnostics(const DiagnosticEngine &Diag) {
  std::fprintf(stderr, "%s", Diag.str().c_str());
}

int cmdCompile(Args &A) {
  std::string Src = A.positional();
  std::string OutPath = A.option("-o");
  if (Src.empty() || OutPath.empty())
    usage();

  CompileOptions Opts;
  if (A.flag("--O0"))
    Opts.Opt = OptLevel::O0;

  DiagnosticEngine Diag;
  auto Out = Compiler::compile(readTextFile(Src), Opts, Diag);
  if (!Out) {
    reportDiagnostics(Diag);
    return 1;
  }
  writeBinaryFile(OutPath, Out->Image.serialize());
  std::string RecPath = A.option("--record");
  if (!RecPath.empty())
    writeBinaryFile(RecPath, Out->Record.serialize());
  if (A.flag("--dis"))
    std::printf("%s", Out->Image.disassemble().c_str());
  std::printf("compiled %s: %zu instructions, %zu data words -> %s\n",
              Src.c_str(), Out->Image.Code.size(),
              Out->Image.DataInit.size(), OutPath.c_str());
  return 0;
}

int cmdUpdate(Args &A) {
  std::string Src = A.positional();
  std::string RecPath = A.option("--record");
  std::string ImgPath = A.option("--image");
  std::string OutPath = A.option("-o");
  if (Src.empty() || RecPath.empty() || ImgPath.empty() || OutPath.empty())
    usage();

  CompilationRecord OldRec = loadRecord(RecPath);
  BinaryImage OldImg = loadImage(ImgPath);

  CompileOptions Opts;
  if (!A.flag("--baseline")) {
    Opts.RA = RegAllocKind::UpdateConscious;
    Opts.DA = DataAllocKind::UpdateConscious;
  }
  std::string Cnt = A.option("--cnt");
  if (!Cnt.empty())
    Opts.Ucc.Cnt = std::atof(Cnt.c_str());
  std::string SpaceT = A.option("--spacet");
  if (!SpaceT.empty())
    Opts.UccDa.SpaceT = std::atoi(SpaceT.c_str());
  std::string K = A.option("--k");
  if (!K.empty())
    Opts.Ucc.ChunkK = std::atoi(K.c_str());
  std::string Strategy = A.option("--strategy");
  if (Strategy == "greedy")
    Opts.Ucc.Strategy = UccStrategy::Greedy;
  else if (Strategy == "ilp")
    Opts.Ucc.Strategy = UccStrategy::Ilp;
  else if (Strategy == "hybrid")
    Opts.Ucc.Strategy = UccStrategy::Hybrid;
  else if (!Strategy.empty())
    die("unknown --strategy '" + Strategy + "'");
  std::string IlpBudget = A.option("--ilp-max-binaries");
  if (!IlpBudget.empty())
    Opts.Ucc.IlpMaxBinaries = std::atoi(IlpBudget.c_str());

  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(readTextFile(Src), OldRec, Opts, Diag);
  if (!Out) {
    reportDiagnostics(Diag);
    return 1;
  }
  writeBinaryFile(OutPath, Out->Image.serialize());

  std::string NewRecPath = A.option("--new-record");
  if (!NewRecPath.empty())
    writeBinaryFile(NewRecPath, Out->Record.serialize());

  ImageUpdate Update = makeImageUpdate(OldImg, Out->Image);
  ImageDiff Diff = diffImages(OldImg, Out->Image);
  std::string ScriptPath = A.option("--script");
  if (!ScriptPath.empty())
    writeBinaryFile(ScriptPath, Update.serialize());

  std::printf("update: Diff_inst=%d (%d instructions reused), script=%zu "
              "bytes, full image=%zu bytes\n",
              Diff.totalDiffInst(), Diff.totalMatched(),
              Update.scriptBytes(), Out->Image.transmitBytes());
  for (const FunctionDiff &F : Diff.Functions)
    if (F.diffInst() != 0 || F.NewCount == 0)
      std::printf("  %-20s old=%-4d new=%-4d reused=%-4d ship=%d\n",
                  F.Name.c_str(), F.OldCount, F.NewCount, F.Matched,
                  F.diffInst());
  return 0;
}

int cmdPatch(Args &A) {
  std::string ImgPath = A.positional();
  std::string PkgPath = A.positional();
  std::string OutPath = A.option("-o");
  if (ImgPath.empty() || PkgPath.empty() || OutPath.empty())
    usage();

  BinaryImage Old = loadImage(ImgPath);
  ImageUpdate Update;
  if (!ImageUpdate::deserialize(readBinaryFile(PkgPath), Update))
    die("'" + PkgPath + "' is not a valid update package");

  BinaryImage New;
  if (!applyUpdate(Old, Update, New))
    die("update package does not apply to this image");
  writeBinaryFile(OutPath, New.serialize());
  std::printf("patched %s (+%zu bytes of script) -> %s\n", ImgPath.c_str(),
              Update.scriptBytes(), OutPath.c_str());
  return 0;
}

int cmdRun(Args &A) {
  std::string ImgPath = A.positional();
  if (ImgPath.empty())
    usage();
  BinaryImage Img = loadImage(ImgPath);

  SimOptions Opts;
  std::string Steps = A.option("--steps");
  if (!Steps.empty())
    Opts.MaxSteps = static_cast<uint64_t>(std::atoll(Steps.c_str()));
  std::string Sensor = A.option("--sensor");
  for (size_t At = 0; At < Sensor.size();) {
    size_t Comma = Sensor.find(',', At);
    if (Comma == std::string::npos)
      Comma = Sensor.size();
    Opts.SensorInput.push_back(static_cast<int16_t>(
        std::atoi(Sensor.substr(At, Comma - At).c_str())));
    At = Comma + 1;
  }
  Opts.CollectProfile = A.flag("--profile");

  RunResult R = runImage(Img, Opts);
  if (R.Trapped) {
    std::printf("TRAP after %llu steps: %s\n",
                static_cast<unsigned long long>(R.Steps),
                R.TrapReason.c_str());
    return 1;
  }
  std::printf("halted after %llu steps, %llu cycles\n",
              static_cast<unsigned long long>(R.Steps),
              static_cast<unsigned long long>(R.Cycles));
  auto printTrace = [](const char *Name,
                       const std::vector<int16_t> &Trace) {
    if (Trace.empty())
      return;
    std::printf("%s:", Name);
    for (int16_t V : Trace)
      std::printf(" %d", V);
    std::printf("\n");
  };
  printTrace("led", R.LedTrace);
  printTrace("debug", R.DebugTrace);
  for (size_t K = 0; K < R.Packets.size(); ++K)
    printTrace(format("packet[%zu]", K).c_str(), R.Packets[K]);
  if (Opts.CollectProfile) {
    std::printf("hottest instructions:\n");
    for (int Shown = 0; Shown < 5; ++Shown) {
      size_t Best = 0;
      for (size_t K = 1; K < R.InstrCounts.size(); ++K)
        if (R.InstrCounts[K] > R.InstrCounts[Best])
          Best = K;
      if (R.InstrCounts[Best] == 0)
        break;
      std::printf("  %5zu: %-24s x%llu\n", Best,
                  disassembleInstr(Img.Code[Best]).c_str(),
                  static_cast<unsigned long long>(R.InstrCounts[Best]));
      R.InstrCounts[Best] = 0;
    }
  }
  return 0;
}

int cmdDis(Args &A) {
  std::string ImgPath = A.positional();
  if (ImgPath.empty())
    usage();
  std::printf("%s", loadImage(ImgPath).disassemble().c_str());
  return 0;
}

int cmdDiff(Args &A) {
  std::string OldPath = A.positional();
  std::string NewPath = A.positional();
  if (OldPath.empty() || NewPath.empty())
    usage();
  BinaryImage Old = loadImage(OldPath);
  BinaryImage New = loadImage(NewPath);
  ImageDiff D = diffImages(Old, New);
  std::printf("%-20s %6s %6s %7s %6s\n", "function", "old", "new",
              "reused", "ship");
  for (const FunctionDiff &F : D.Functions)
    std::printf("%-20s %6d %6d %7d %6d\n", F.Name.c_str(), F.OldCount,
                F.NewCount, F.Matched, F.diffInst());
  std::printf("total Diff_inst: %d (data words changed: %d)\n",
              D.totalDiffInst(), D.DataWordsChanged);
  return 0;
}

/// Prints a human-readable telemetry summary (the --stats flag).
void printStats(const Telemetry &T) {
  std::printf("--- telemetry ---\n");
  struct Walker {
    static void walk(const TelemetrySpan &Span, int Depth) {
      std::printf("%*s%-*s %9.3f ms  x%lld\n", Depth * 2, "",
                  24 - Depth * 2, Span.Name.c_str(), Span.Seconds * 1e3,
                  static_cast<long long>(Span.Count));
      for (const auto &Child : Span.Children)
        walk(*Child, Depth + 1);
    }
  };
  for (const auto &Child : T.spans().Children)
    Walker::walk(*Child, 0);
  for (const auto &[Name, Value] : T.counters())
    if (Value != 0)
      std::printf("%-32s %lld\n", Name.c_str(),
                  static_cast<long long>(Value));
  for (const auto &[Name, Value] : T.gauges())
    std::printf("%-32s %g\n", Name.c_str(), Value);
}

int dispatch(const std::string &Cmd, Args &A) {
  if (Cmd == "compile")
    return cmdCompile(A);
  if (Cmd == "update")
    return cmdUpdate(A);
  if (Cmd == "patch")
    return cmdPatch(A);
  if (Cmd == "run")
    return cmdRun(A);
  if (Cmd == "dis")
    return cmdDis(A);
  if (Cmd == "diff")
    return cmdDiff(A);
  usage();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  std::string Cmd = Argv[1];
  Args A(Argc - 2, Argv + 2);

  std::string TracePath = A.option("--trace-json");
  std::string EventsPath = A.option("--trace-events");
  bool WantStats = A.flag("--stats");
  std::string JobsArg = A.option("--jobs");
  if (!JobsArg.empty()) {
    int Jobs = std::atoi(JobsArg.c_str());
    if (Jobs <= 0)
      die("--jobs expects a positive integer");
    ThreadPool::setDefaultJobs(Jobs);
  }

  if (TracePath.empty() && EventsPath.empty() && !WantStats)
    return dispatch(Cmd, A);

  // Telemetry session around the whole command. The standard counters are
  // pre-declared so the documented schema keys appear in the output even
  // when their code path never ran (e.g. lp.* under the greedy strategy).
  Telemetry T;
  T.declareStandardCounters();
  if (!EventsPath.empty())
    T.enableEvents();
  int Rc;
  {
    TelemetryScope Scope(T);
    Rc = dispatch(Cmd, A);
  }
  if (!TracePath.empty()) {
    std::ofstream Out(TracePath, std::ios::trunc);
    if (!Out)
      die("cannot write '" + TracePath + "'");
    Out << T.toJson() << "\n";
  }
  if (!EventsPath.empty()) {
    std::ofstream Out(EventsPath, std::ios::trunc);
    if (!Out)
      die("cannot write '" + EventsPath + "'");
    Out << T.toChromeTrace() << "\n";
  }
  if (WantStats)
    printStats(T);
  return Rc;
}
