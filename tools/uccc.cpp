//===- tools/uccc.cpp - the update-conscious compiler driver --------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end over the library — the sink-side toolchain of
/// the paper's Fig. 1 and the sensor-side patcher of Fig. 2 as one binary:
///
///   uccc compile  app.mc -o app.img --record app.rec [--dis]
///   uccc update   app_v2.mc --record app.rec --image app.img
///                 -o app_v2.img --new-record app_v2.rec
///                 --script update.pkg [--baseline] [--cnt N] [--spacet N]
///   uccc patch    app.img update.pkg -o patched.img
///   uccc run      app.img [--steps N] [--sensor 1,2,3] [--profile]
///   uccc dis      app.img
///   uccc diff     old.img new.img
///
/// and the stateful sink workflow over an on-disk version store:
///
///   uccc commit   app_vN.mc --store dir [--parent K] [--baseline] ...
///   uccc history  --store dir
///   uccc plan     --store dir --from K --to N [-o update.pkg]
///   uccc plan     --store dir --batch F:T,F:T,... [--cache N]
///   uccc campaign --store dir --target N --deployed v,v,...
///                 [--topology line:40|grid:8x5|star:20] [--loss p]
///   uccc serve-bench --store dir [--requests N] [--cache N] [--zipf s]
///                 [--target K] [--seed n] [--warm] [--batch N]
///                 [--metrics file] [--metrics-every N]
///                 [--slo-p99-us V --flight-record file]
///   uccc monitor  --metrics file [--once] [--interval-ms N]
///                 [--idle-exit N]
///
/// The batch and serve-bench paths go through serve/PlanService: one store
/// open, one service, every request against the same snapshot and cache.
/// serve-bench doubles as the observability producer: `--metrics`
/// appends timestamped counter/gauge/rate snapshots (JSONL, one object per
/// line — the support/Metrics schema) that `uccc monitor` renders live or
/// once, and `--flight-record` dumps the event ring as a Chrome trace when
/// the `--slo-p99-us` latency threshold is breached.
///
/// Every command additionally accepts `--trace-json <file>` (write the
/// telemetry registry as JSON, schema in docs/OBSERVABILITY.md),
/// `--trace-events <file>` (write a Chrome trace-event JSON file of the
/// structured event timeline — load it in Perfetto / chrome://tracing) and
/// `--stats` (print a human-readable telemetry summary after the command).
///
/// Exit codes: 0 success, 1 operational failure (bad input file, failed
/// compile), 2 command-line usage error (unknown flag/command, missing
/// option value, malformed number).
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "core/VersionStore.h"
#include "serve/PlanService.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/RNG.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace ucc;

namespace {

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "uccc: %s\n", Message.c_str());
  std::exit(1);
}

/// Usage errors (malformed command line, as opposed to bad input files)
/// exit with 2, like usage() itself.
[[noreturn]] void dieCli(const std::string &Message) {
  std::fprintf(stderr, "uccc: %s\n", Message.c_str());
  std::fprintf(stderr, "uccc: run 'uccc' without arguments for usage\n");
  std::exit(2);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  uccc compile <src> -o <img> [--record <rec>] [--dis] [--O0]\n"
      "  uccc update  <src> --record <rec> --image <img> -o <img>\n"
      "               [--new-record <rec>] [--script <pkg>]\n"
      "               [--baseline] [--cnt <n>] [--spacet <n>] [--k <n>]\n"
      "               [--strategy greedy|ilp|hybrid]\n"
      "               [--ilp-max-binaries <n>]\n"
      "  uccc patch   <img> <pkg> -o <img>\n"
      "  uccc run     <img> [--steps <n>] [--sensor v,v,...] [--profile]\n"
      "  uccc dis     <img>\n"
      "  uccc diff    <old-img> <new-img>\n"
      "  uccc commit  <src> --store <dir> [--parent <id>] [-o <img>]\n"
      "               [--record <rec>] [--baseline] [--cnt <n>]\n"
      "               [--spacet <n>] [--k <n>]\n"
      "               [--strategy greedy|ilp|hybrid]\n"
      "               [--ilp-max-binaries <n>]\n"
      "  uccc history --store <dir>\n"
      "  uccc plan    --store <dir> --from <id> --to <id> [-o <pkg>]\n"
      "  uccc plan    --store <dir> --batch <f>:<t>,<f>:<t>,...\n"
      "               [--cache <n>] [--jobs <n>]\n"
      "  uccc campaign --store <dir> --target <id> --deployed v,v,...\n"
      "               [--topology line:<n>|grid:<w>x<h>|star:<n>]\n"
      "               [--loss <p>] [--seed <n>]\n"
      "  uccc serve-bench --store <dir> [--requests <n>] [--cache <n>]\n"
      "               [--zipf <s>] [--target <id>] [--seed <n>] [--warm]\n"
      "               [--batch <n>] [--threads <n>] [--shards <n>]\n"
      "               [--admission always|freq] [--ttl <seconds>]\n"
      "               [--metrics <file>] [--metrics-every <n>]\n"
      "               [--slo-p99-us <us> --flight-record <file>]\n"
      "  uccc monitor --metrics <file> [--once] [--interval-ms <n>]\n"
      "               [--idle-exit <n>]\n"
      "global flags (any command):\n"
      "  --jobs <n>            worker threads for parallel phases\n"
      "                        (default: hardware concurrency, or the\n"
      "                        UCC_JOBS environment variable; output is\n"
      "                        bit-identical for every value)\n"
      "  --trace-json <file>   write the telemetry trace as JSON\n"
      "  --trace-events <file> write a Chrome trace-event JSON timeline\n"
      "  --stats               print a telemetry summary to stdout\n");
  std::exit(2);
}

/// Strict integer parse: the whole string must be a number.
int parseInt(const std::string &Text, const char *What) {
  char *End = nullptr;
  long V = std::strtol(Text.c_str(), &End, 10);
  if (Text.empty() || *End != '\0')
    dieCli(format("%s expects an integer, got '%s'", What, Text.c_str()));
  return static_cast<int>(V);
}

double parseDouble(const std::string &Text, const char *What) {
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (Text.empty() || *End != '\0')
    dieCli(format("%s expects a number, got '%s'", What, Text.c_str()));
  return V;
}

std::string readTextFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    die("cannot open '" + Path + "'");
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

std::vector<uint8_t> readBinaryFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    die("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  return Bytes;
}

void writeBinaryFile(const std::string &Path,
                     const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    die("cannot write '" + Path + "'");
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

BinaryImage loadImage(const std::string &Path) {
  BinaryImage Img;
  if (!BinaryImage::deserialize(readBinaryFile(Path), Img))
    die("'" + Path + "' is not a valid SAVR image");
  return Img;
}

CompilationRecord loadRecord(const std::string &Path) {
  CompilationRecord Rec;
  if (!CompilationRecord::deserialize(readBinaryFile(Path), Rec))
    die("'" + Path + "' is not a valid compilation record");
  return Rec;
}

/// Simple flag cursor over argv. Commands pull their flags and
/// positionals, then call finish(), which rejects anything left over —
/// so a typoed flag is an error rather than silently ignored.
class Args {
public:
  Args(int Argc, char **Argv)
      : Argv(Argv), Argc(Argc),
        Consumed(static_cast<size_t>(Argc), false) {}

  /// Next positional argument, or empty when none remain.
  std::string positional() {
    for (int K = Pos; K < Argc; ++K) {
      if (Argv[K][0] != '-' && !Consumed[static_cast<size_t>(K)]) {
        Consumed[static_cast<size_t>(K)] = true;
        Pos = K + 1;
        return Argv[K];
      }
      if (Argv[K][0] == '-' && flagTakesValue(Argv[K]))
        ++K; // skip the flag's value
    }
    return "";
  }

  bool flag(const char *Name) {
    for (int K = 0; K < Argc; ++K)
      if (std::strcmp(Argv[K], Name) == 0) {
        Consumed[static_cast<size_t>(K)] = true;
        return true;
      }
    return false;
  }

  std::string option(const char *Name, const std::string &Default = "") {
    for (int K = 0; K < Argc; ++K)
      if (std::strcmp(Argv[K], Name) == 0) {
        if (K + 1 >= Argc)
          dieCli(format("option '%s' expects a value", Name));
        Consumed[static_cast<size_t>(K)] = true;
        Consumed[static_cast<size_t>(K + 1)] = true;
        return Argv[K + 1];
      }
    return Default;
  }

  /// Rejects every argument no command consumed: unknown flags, stray
  /// positionals, values of unrecognized options.
  void finish() const {
    for (int K = 0; K < Argc; ++K)
      if (!Consumed[static_cast<size_t>(K)])
        dieCli(format("unknown argument '%s'", Argv[K]));
  }

private:
  static bool flagTakesValue(const char *Flag) {
    static const char *WithValue[] = {"-o",         "--record",
                                      "--image",     "--new-record",
                                      "--script",    "--cnt",
                                      "--spacet",    "--k",
                                      "--steps",     "--sensor",
                                      "--strategy",  "--trace-json",
                                      "--trace-events",
                                      "--ilp-max-binaries",
                                      "--jobs",      "--store",
                                      "--parent",    "--from",
                                      "--to",        "--target",
                                      "--deployed",  "--topology",
                                      "--loss",      "--seed",
                                      "--batch",     "--cache",
                                      "--requests",  "--zipf",
                                      "--threads",   "--shards",
                                      "--admission", "--ttl",
                                      "--metrics",   "--metrics-every",
                                      "--slo-p99-us",
                                      "--flight-record",
                                      "--interval-ms",
                                      "--idle-exit"};
    for (const char *F : WithValue)
      if (std::strcmp(Flag, F) == 0)
        return true;
    return false;
  }

  char **Argv;
  int Argc;
  int Pos = 0;
  std::vector<bool> Consumed;
};

void reportDiagnostics(const DiagnosticEngine &Diag) {
  std::fprintf(stderr, "%s", Diag.str().c_str());
}

/// The UCC-vs-baseline knobs shared by `update` and `commit`.
CompileOptions parseCompileKnobs(Args &A) {
  CompileOptions Opts;
  if (!A.flag("--baseline")) {
    Opts.RA = RegAllocKind::UpdateConscious;
    Opts.DA = DataAllocKind::UpdateConscious;
  }
  std::string Cnt = A.option("--cnt");
  if (!Cnt.empty())
    Opts.Ucc.Cnt = parseDouble(Cnt, "--cnt");
  std::string SpaceT = A.option("--spacet");
  if (!SpaceT.empty())
    Opts.UccDa.SpaceT = parseInt(SpaceT, "--spacet");
  std::string K = A.option("--k");
  if (!K.empty())
    Opts.Ucc.ChunkK = parseInt(K, "--k");
  std::string Strategy = A.option("--strategy");
  if (Strategy == "greedy")
    Opts.Ucc.Strategy = UccStrategy::Greedy;
  else if (Strategy == "ilp")
    Opts.Ucc.Strategy = UccStrategy::Ilp;
  else if (Strategy == "hybrid")
    Opts.Ucc.Strategy = UccStrategy::Hybrid;
  else if (!Strategy.empty())
    dieCli("unknown --strategy '" + Strategy + "'");
  std::string IlpBudget = A.option("--ilp-max-binaries");
  if (!IlpBudget.empty())
    Opts.Ucc.IlpMaxBinaries = parseInt(IlpBudget, "--ilp-max-binaries");
  return Opts;
}

VersionStore openStoreOrDie(const std::string &Dir) {
  DiagnosticEngine Diag;
  auto Store = VersionStore::open(Dir, Diag);
  if (!Store) {
    reportDiagnostics(Diag);
    die("cannot open version store '" + Dir + "'");
  }
  return std::move(*Store);
}

/// Pulls --store for a store-backed command. Every such command parses and
/// validates its whole command line first (usage errors exit 2 before any
/// store I/O), then opens the manifest exactly once via openStoreOrDie and
/// threads that one store through the rest of the command — batch plans
/// and serve-bench share a single PlanService over it rather than
/// re-opening per request.
std::string storeDirArg(Args &A) {
  std::string StoreDir = A.option("--store");
  if (StoreDir.empty())
    dieCli("this command requires --store <dir>");
  return StoreDir;
}

int cmdCompile(Args &A) {
  std::string Src = A.positional();
  std::string OutPath = A.option("-o");
  std::string RecPath = A.option("--record");
  bool O0 = A.flag("--O0");
  bool Dis = A.flag("--dis");
  if (Src.empty() || OutPath.empty())
    usage();
  A.finish();

  CompileOptions Opts;
  if (O0)
    Opts.Opt = OptLevel::O0;

  DiagnosticEngine Diag;
  auto Out = Compiler::compile(readTextFile(Src), Opts, Diag);
  if (!Out) {
    reportDiagnostics(Diag);
    return 1;
  }
  writeBinaryFile(OutPath, Out->Image.serialize());
  if (!RecPath.empty())
    writeBinaryFile(RecPath, Out->Record.serialize());
  if (Dis)
    std::printf("%s", Out->Image.disassemble().c_str());
  std::printf("compiled %s: %zu instructions, %zu data words -> %s\n",
              Src.c_str(), Out->Image.Code.size(),
              Out->Image.DataInit.size(), OutPath.c_str());
  return 0;
}

int cmdUpdate(Args &A) {
  std::string Src = A.positional();
  std::string RecPath = A.option("--record");
  std::string ImgPath = A.option("--image");
  std::string OutPath = A.option("-o");
  std::string NewRecPath = A.option("--new-record");
  std::string ScriptPath = A.option("--script");
  CompileOptions Opts = parseCompileKnobs(A);
  if (Src.empty() || RecPath.empty() || ImgPath.empty() || OutPath.empty())
    usage();
  A.finish();

  CompilationRecord OldRec = loadRecord(RecPath);
  BinaryImage OldImg = loadImage(ImgPath);

  // Route the recompile through a function-level compile cache so --stats
  // surfaces the compile.cache_* counters (results are byte-identical).
  CompileCache FnCache;
  Opts.Cache = &FnCache;

  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(readTextFile(Src), OldRec, Opts, Diag);
  if (!Out) {
    reportDiagnostics(Diag);
    return 1;
  }
  writeBinaryFile(OutPath, Out->Image.serialize());
  if (!NewRecPath.empty())
    writeBinaryFile(NewRecPath, Out->Record.serialize());

  ImageUpdate Update = makeImageUpdate(OldImg, Out->Image);
  ImageDiff Diff = diffImages(OldImg, Out->Image);
  if (!ScriptPath.empty())
    writeBinaryFile(ScriptPath, Update.serialize());

  std::printf("update: Diff_inst=%d (%d instructions reused), script=%zu "
              "bytes, full image=%zu bytes\n",
              Diff.totalDiffInst(), Diff.totalMatched(),
              Update.scriptBytes(), Out->Image.transmitBytes());
  for (const FunctionDiff &F : Diff.Functions)
    if (F.diffInst() != 0 || F.NewCount == 0)
      std::printf("  %-20s old=%-4d new=%-4d reused=%-4d ship=%d\n",
                  F.Name.c_str(), F.OldCount, F.NewCount, F.Matched,
                  F.diffInst());
  return 0;
}

int cmdPatch(Args &A) {
  std::string ImgPath = A.positional();
  std::string PkgPath = A.positional();
  std::string OutPath = A.option("-o");
  if (ImgPath.empty() || PkgPath.empty() || OutPath.empty())
    usage();
  A.finish();

  BinaryImage Old = loadImage(ImgPath);
  ImageUpdate Update;
  if (!ImageUpdate::deserialize(readBinaryFile(PkgPath), Update))
    die("'" + PkgPath + "' is not a valid update package");

  BinaryImage New;
  if (!applyUpdate(Old, Update, New))
    die("update package does not apply to this image");
  writeBinaryFile(OutPath, New.serialize());
  std::printf("patched %s (+%zu bytes of script) -> %s\n", ImgPath.c_str(),
              Update.scriptBytes(), OutPath.c_str());
  return 0;
}

int cmdRun(Args &A) {
  std::string ImgPath = A.positional();
  std::string Steps = A.option("--steps");
  std::string Sensor = A.option("--sensor");
  bool Profile = A.flag("--profile");
  if (ImgPath.empty())
    usage();
  A.finish();

  // Validate the whole command line before touching the image file.
  SimOptions Opts;
  if (!Steps.empty())
    Opts.MaxSteps = static_cast<uint64_t>(parseInt(Steps, "--steps"));
  for (size_t At = 0; At < Sensor.size();) {
    size_t Comma = Sensor.find(',', At);
    if (Comma == std::string::npos)
      Comma = Sensor.size();
    Opts.SensorInput.push_back(static_cast<int16_t>(
        parseInt(Sensor.substr(At, Comma - At), "--sensor")));
    At = Comma + 1;
  }
  Opts.CollectProfile = Profile;

  BinaryImage Img = loadImage(ImgPath);

  RunResult R = runImage(Img, Opts);
  if (R.Trapped) {
    std::printf("TRAP after %llu steps: %s\n",
                static_cast<unsigned long long>(R.Steps),
                R.TrapReason.c_str());
    return 1;
  }
  std::printf("halted after %llu steps, %llu cycles\n",
              static_cast<unsigned long long>(R.Steps),
              static_cast<unsigned long long>(R.Cycles));
  auto printTrace = [](const char *Name,
                       const std::vector<int16_t> &Trace) {
    if (Trace.empty())
      return;
    std::printf("%s:", Name);
    for (int16_t V : Trace)
      std::printf(" %d", V);
    std::printf("\n");
  };
  printTrace("led", R.LedTrace);
  printTrace("debug", R.DebugTrace);
  for (size_t K = 0; K < R.Packets.size(); ++K)
    printTrace(format("packet[%zu]", K).c_str(), R.Packets[K]);
  if (Opts.CollectProfile) {
    std::printf("hottest instructions:\n");
    for (int Shown = 0; Shown < 5; ++Shown) {
      size_t Best = 0;
      for (size_t K = 1; K < R.InstrCounts.size(); ++K)
        if (R.InstrCounts[K] > R.InstrCounts[Best])
          Best = K;
      if (R.InstrCounts[Best] == 0)
        break;
      std::printf("  %5zu: %-24s x%llu\n", Best,
                  disassembleInstr(Img.Code[Best]).c_str(),
                  static_cast<unsigned long long>(R.InstrCounts[Best]));
      R.InstrCounts[Best] = 0;
    }
  }
  return 0;
}

int cmdDis(Args &A) {
  std::string ImgPath = A.positional();
  if (ImgPath.empty())
    usage();
  A.finish();
  std::printf("%s", loadImage(ImgPath).disassemble().c_str());
  return 0;
}

int cmdDiff(Args &A) {
  std::string OldPath = A.positional();
  std::string NewPath = A.positional();
  if (OldPath.empty() || NewPath.empty())
    usage();
  A.finish();
  BinaryImage Old = loadImage(OldPath);
  BinaryImage New = loadImage(NewPath);
  ImageDiff D = diffImages(Old, New);
  std::printf("%-20s %6s %6s %7s %6s\n", "function", "old", "new",
              "reused", "ship");
  for (const FunctionDiff &F : D.Functions)
    std::printf("%-20s %6d %6d %7d %6d\n", F.Name.c_str(), F.OldCount,
                F.NewCount, F.Matched, F.diffInst());
  std::printf("total Diff_inst: %d (data words changed: %d)\n",
              D.totalDiffInst(), D.DataWordsChanged);
  return 0;
}

int cmdCommit(Args &A) {
  std::string Src = A.positional();
  std::string ParentArg = A.option("--parent");
  std::string OutPath = A.option("-o");
  std::string RecPath = A.option("--record");
  CompileOptions Opts = parseCompileKnobs(A);
  std::string StoreDir = storeDirArg(A);
  if (Src.empty())
    usage();
  A.finish();
  VersionStore Store = openStoreOrDie(StoreDir);

  std::string Source = readTextFile(Src);
  // Route the commit through a function-level compile cache so --stats
  // surfaces the compile.cache_* counters (results are byte-identical).
  CompileCache FnCache;
  Opts.Cache = &FnCache;
  DiagnosticEngine Diag;
  int Id;
  if (Store.size() == 0) {
    if (!ParentArg.empty())
      dieCli("--parent makes no sense for the initial commit");
    Id = Store.addInitial(Source, Opts, Diag);
  } else {
    int Parent = ParentArg.empty() ? -1 : parseInt(ParentArg, "--parent");
    Id = Store.addUpdate(Source, Opts, Diag, Parent);
  }
  if (Id < 0) {
    reportDiagnostics(Diag);
    return 1;
  }
  const StoredVersion *V = Store.find(Id);
  if (!OutPath.empty())
    writeBinaryFile(OutPath, V->Image.serialize());
  if (!RecPath.empty())
    writeBinaryFile(RecPath, V->Record.serialize());
  if (V->Parent < 0)
    std::printf("committed v%d (initial, %zu instructions) -> %s\n", V->Id,
                V->Image.Code.size(), Store.directory().c_str());
  else
    std::printf("committed v%d (parent v%d, script %zu bytes) -> %s\n",
                V->Id, V->Parent, V->ScriptBytesFromParent,
                Store.directory().c_str());
  return 0;
}

int cmdHistory(Args &A) {
  std::string StoreDir = storeDirArg(A);
  A.finish();
  VersionStore Store = openStoreOrDie(StoreDir);
  std::printf("%-4s %-6s %-16s %10s %8s %8s\n", "id", "parent",
              "source-hash", "script", "code", "data");
  for (const StoredVersion &V : Store.versions()) {
    std::string Parent = V.Parent < 0 ? "-" : format("v%d", V.Parent);
    std::string Script =
        V.Parent < 0 ? "-" : format("%zu", V.ScriptBytesFromParent);
    std::printf("v%-3d %-6s %-16s %10s %8zu %8zu\n", V.Id, Parent.c_str(),
                V.SourceHash.c_str(), Script.c_str(), V.Image.Code.size(),
                V.Image.DataInit.size());
  }
  std::printf("%zu version(s)\n", Store.size());
  return 0;
}

/// Parses a --batch spec "f:t,f:t,..." into version-id pairs; any
/// malformed element is a usage error.
std::vector<std::pair<int, int>> parseBatchSpec(const std::string &Spec) {
  std::vector<std::pair<int, int>> Pairs;
  for (size_t At = 0; At < Spec.size();) {
    size_t Comma = Spec.find(',', At);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(At, Comma - At);
    size_t Colon = Item.find(':');
    if (Colon == std::string::npos)
      dieCli("--batch expects <from>:<to> pairs, got '" + Item + "'");
    Pairs.push_back({parseInt(Item.substr(0, Colon), "--batch <from>"),
                     parseInt(Item.substr(Colon + 1), "--batch <to>")});
    At = Comma + 1;
  }
  if (Pairs.empty())
    dieCli("--batch expects at least one <from>:<to> pair");
  return Pairs;
}

int cmdPlanBatch(const std::string &StoreDir,
                 const std::vector<std::pair<int, int>> &Pairs,
                 size_t Cache) {
  PlanServiceOptions ServeOpts;
  ServeOpts.CacheCapacity = Cache;
  PlanService Service(openStoreOrDie(StoreDir), ServeOpts);
  std::vector<std::shared_ptr<const UpdatePlan>> Plans =
      Service.planBatch(Pairs);

  int Failures = 0;
  std::printf("%-6s %-6s %-8s %10s %10s %10s\n", "from", "to", "route",
              "script", "direct", "chained");
  for (size_t I = 0; I < Pairs.size(); ++I) {
    if (!Plans[I]) {
      std::printf("v%-5d v%-5d %-8s %10s %10s %10s\n", Pairs[I].first,
                  Pairs[I].second, "-", "-", "-", "-");
      ++Failures;
      continue;
    }
    const UpdatePlan &P = *Plans[I];
    const char *Route =
        P.Route == UpdatePlan::RouteKind::Direct ? "direct" : "chained";
    std::string Chained =
        P.ChainSteps > 0 ? format("%zu", P.ChainedBytes) : "n/a";
    std::printf("v%-5d v%-5d %-8s %10zu %10zu %10s\n", P.From, P.To, Route,
                P.ScriptBytes, P.DirectBytes, Chained.c_str());
  }
  PlanServiceStats S = Service.stats();
  std::printf("%zu request(s), %llu planned, %llu deduped, %llu cache "
              "hit(s)\n",
              Pairs.size(),
              static_cast<unsigned long long>(S.Misses),
              static_cast<unsigned long long>(S.BatchDeduped),
              static_cast<unsigned long long>(S.Hits));
  if (Failures)
    die(format("%d of %zu batch request(s) could not be planned "
               "(unknown version?)",
               Failures, Pairs.size()));
  return 0;
}

int cmdPlan(Args &A) {
  std::string FromArg = A.option("--from");
  std::string ToArg = A.option("--to");
  std::string BatchArg = A.option("--batch");
  std::string CacheArg = A.option("--cache");
  std::string OutPath = A.option("-o");
  std::string StoreDir = storeDirArg(A);

  if (!BatchArg.empty()) {
    if (!FromArg.empty() || !ToArg.empty())
      dieCli("--batch cannot be combined with --from/--to");
    if (!OutPath.empty())
      dieCli("--batch does not write packages; drop -o");
    std::vector<std::pair<int, int>> Pairs = parseBatchSpec(BatchArg);
    size_t Cache = 256;
    if (!CacheArg.empty()) {
      int N = parseInt(CacheArg, "--cache");
      if (N < 0)
        dieCli("--cache expects a non-negative integer");
      Cache = static_cast<size_t>(N);
    }
    A.finish();
    return cmdPlanBatch(StoreDir, Pairs, Cache);
  }

  if (!CacheArg.empty())
    dieCli("--cache requires --batch");
  if (FromArg.empty() || ToArg.empty())
    dieCli("plan requires --from <id> and --to <id> (or --batch)");
  int From = parseInt(FromArg, "--from");
  int To = parseInt(ToArg, "--to");
  A.finish();
  VersionStore Store = openStoreOrDie(StoreDir);

  auto P = Store.plan(From, To);
  if (!P)
    die(format("cannot plan update v%d -> v%d (unknown version?)", From,
               To));
  if (!OutPath.empty())
    writeBinaryFile(OutPath, P->Update.serialize());
  const char *Route =
      P->Route == UpdatePlan::RouteKind::Direct ? "direct" : "chained";
  std::printf("plan v%d -> v%d: %s, %zu bytes\n", P->From, P->To, Route,
              P->ScriptBytes);
  std::printf("  direct diff:    %zu bytes\n", P->DirectBytes);
  if (P->ChainSteps > 0)
    std::printf("  composed route: %zu bytes (%d steps)\n",
                P->ChainedBytes, P->ChainSteps);
  else
    std::printf("  composed route: n/a (v%d and v%d share no graph path)\n",
                P->From, P->To);
  return 0;
}

int cmdCampaign(Args &A) {
  std::string TargetArg = A.option("--target");
  std::string Deployed = A.option("--deployed");
  std::string TopoArg = A.option("--topology");
  std::string LossArg = A.option("--loss");
  std::string SeedArg = A.option("--seed");
  std::string StoreDir = storeDirArg(A);
  if (TargetArg.empty() || Deployed.empty())
    dieCli("campaign requires --target <id> and --deployed v,v,...");
  int Target = parseInt(TargetArg, "--target");
  A.finish();

  std::vector<int> NodeVersions;
  for (size_t At = 0; At < Deployed.size();) {
    size_t Comma = Deployed.find(',', At);
    if (Comma == std::string::npos)
      Comma = Deployed.size();
    NodeVersions.push_back(
        parseInt(Deployed.substr(At, Comma - At), "--deployed"));
    At = Comma + 1;
  }

  Topology T;
  if (TopoArg.empty() || TopoArg.rfind("line:", 0) == 0) {
    int N = TopoArg.empty()
                ? static_cast<int>(NodeVersions.size())
                : parseInt(TopoArg.substr(5), "--topology line:<n>");
    T = Topology::line(N);
  } else if (TopoArg.rfind("grid:", 0) == 0) {
    std::string Spec = TopoArg.substr(5);
    size_t X = Spec.find('x');
    if (X == std::string::npos)
      dieCli("--topology grid expects grid:<w>x<h>");
    T = Topology::grid(parseInt(Spec.substr(0, X), "--topology grid:<w>"),
                       parseInt(Spec.substr(X + 1), "--topology grid:<h>"));
  } else if (TopoArg.rfind("star:", 0) == 0) {
    T = Topology::star(parseInt(TopoArg.substr(5), "--topology star:<n>"));
  } else {
    dieCli("unknown --topology '" + TopoArg +
           "' (expected line:<n>, grid:<w>x<h> or star:<n>)");
  }
  if (static_cast<int>(NodeVersions.size()) != T.NumNodes)
    dieCli(format("--deployed lists %zu versions but the topology has %d "
                  "nodes",
                  NodeVersions.size(), T.NumNodes));

  RadioChannel Channel;
  if (!LossArg.empty())
    Channel.LossRate = parseDouble(LossArg, "--loss");
  if (!SeedArg.empty())
    Channel.Seed = static_cast<uint64_t>(parseInt(SeedArg, "--seed"));

  // Campaigns run through the serving layer: one store open, one service,
  // so repeated cohort pairs (and repeated campaigns in one process) plan
  // once. Plans are byte-identical to the store-backed path.
  PlanService Service(openStoreOrDie(StoreDir));
  DiagnosticEngine Diag;
  auto R = planFleetCampaign(Service, T, NodeVersions, Target, Diag,
                             PacketFormat(), Mica2Power(), Channel);
  if (!R) {
    reportDiagnostics(Diag);
    return 1;
  }
  std::printf("campaign to v%d: %d node(s) updated, %d already current\n",
              R->TargetVersion, R->NodesUpdated, R->NodesCurrent);
  for (const UpdateCohort &C : R->Cohorts)
    std::printf("  cohort v%-3d %3zu node(s)  script %6zu bytes  "
                "%4d packets  %.6f J\n",
                C.FromVersion, C.Nodes.size(), C.ScriptBytes,
                C.Flood.Packets, C.Flood.totalJoules());
  std::printf("total: %zu bytes on air, %.6f J\n", R->totalBytesOnAir(),
              R->totalJoules());
  return 0;
}

/// A one-process serving benchmark against an on-disk store: replays a
/// Zipf-skewed request stream (most requests from the versions closest to
/// the target, a long tail further back) through one PlanService and
/// reports throughput, latency percentiles and cache accounting. The
/// bench/bench_plan_service harness is the regression-gated variant; this
/// command is for poking at a real store.
int cmdServeBench(Args &A) {
  std::string RequestsArg = A.option("--requests");
  std::string CacheArg = A.option("--cache");
  std::string ZipfArg = A.option("--zipf");
  std::string TargetArg = A.option("--target");
  std::string SeedArg = A.option("--seed");
  std::string BatchArg = A.option("--batch");
  std::string ThreadsArg = A.option("--threads");
  std::string ShardsArg = A.option("--shards");
  std::string AdmissionArg = A.option("--admission");
  std::string TtlArg = A.option("--ttl");
  std::string MetricsPath = A.option("--metrics");
  std::string EveryArg = A.option("--metrics-every");
  std::string SloArg = A.option("--slo-p99-us");
  std::string FlightPath = A.option("--flight-record");
  bool Warm = A.flag("--warm");
  std::string StoreDir = storeDirArg(A);

  int Requests = RequestsArg.empty() ? 1000
                                     : parseInt(RequestsArg, "--requests");
  if (Requests <= 0)
    dieCli("--requests expects a positive integer");
  size_t Cache = 256;
  if (!CacheArg.empty()) {
    int N = parseInt(CacheArg, "--cache");
    if (N < 0)
      dieCli("--cache expects a non-negative integer");
    Cache = static_cast<size_t>(N);
  }
  double ZipfS = ZipfArg.empty() ? 1.1 : parseDouble(ZipfArg, "--zipf");
  if (ZipfS <= 0.0)
    dieCli("--zipf expects a positive skew exponent");
  uint64_t Seed = 1;
  if (!SeedArg.empty())
    Seed = static_cast<uint64_t>(parseInt(SeedArg, "--seed"));
  int Batch = 0;
  if (!BatchArg.empty()) {
    Batch = parseInt(BatchArg, "--batch");
    if (Batch <= 0)
      dieCli("--batch expects a positive integer");
  }
  int Threads = 1;
  if (!ThreadsArg.empty()) {
    Threads = parseInt(ThreadsArg, "--threads");
    if (Threads <= 0)
      dieCli("--threads expects a positive integer");
  }
  if (Threads > 1 && Batch > 0)
    dieCli("--threads cannot be combined with --batch (a batch already "
           "fans out internally)");
  PlanServiceOptions ServeOpts;
  if (!ShardsArg.empty()) {
    int N = parseInt(ShardsArg, "--shards");
    if (N <= 0)
      dieCli("--shards expects a positive integer");
    ServeOpts.Shards = static_cast<size_t>(N);
  }
  if (!AdmissionArg.empty()) {
    if (AdmissionArg == "always")
      ServeOpts.Admit = PlanServiceOptions::Admission::Always;
    else if (AdmissionArg == "freq" || AdmissionArg == "frequency")
      ServeOpts.Admit = PlanServiceOptions::Admission::Frequency;
    else
      dieCli("--admission expects 'always' or 'freq'");
  }
  if (!TtlArg.empty()) {
    ServeOpts.TtlSeconds = parseDouble(TtlArg, "--ttl");
    if (ServeOpts.TtlSeconds <= 0.0)
      dieCli("--ttl expects a positive number of seconds");
  }
  if (!EveryArg.empty() && MetricsPath.empty())
    dieCli("--metrics-every requires --metrics");
  int Every = EveryArg.empty() ? 200 : parseInt(EveryArg, "--metrics-every");
  if (Every <= 0)
    dieCli("--metrics-every expects a positive integer");
  if (!FlightPath.empty() && SloArg.empty())
    dieCli("--flight-record requires --slo-p99-us");
  if (FlightPath.empty() && !SloArg.empty())
    dieCli("--slo-p99-us requires --flight-record");
  double SloP99Us = SloArg.empty() ? 0.0 : parseDouble(SloArg, "--slo-p99-us");
  A.finish();

  VersionStore Store = openStoreOrDie(StoreDir);
  if (Store.size() < 2)
    die("serve-bench needs a store with at least two versions");
  int Target = TargetArg.empty() ? Store.latest()->Id
                                 : parseInt(TargetArg, "--target");
  if (!Store.find(Target))
    die(format("unknown target version %d", Target));
  size_t NumVersions = Store.size();

  // Stale versions ordered hottest first: distance from the target breaks
  // the fleet into Zipf ranks, so rank 1 is the release right behind it.
  std::vector<int> Candidates;
  for (int Id = 0; Id < static_cast<int>(NumVersions); ++Id)
    if (Id != Target)
      Candidates.push_back(Id);
  std::sort(Candidates.begin(), Candidates.end(), [&](int L, int R) {
    int DL = std::abs(Target - L), DR = std::abs(Target - R);
    return DL != DR ? DL < DR : L < R;
  });

  RNG Rng(Seed);
  ZipfSampler Zipf(Candidates.size(), ZipfS);
  std::vector<int> Fleet(1, Target); // node 0: the sink, already current
  for (int K = 0; K < Requests; ++K)
    Fleet.push_back(Candidates[Zipf.sample(Rng) - 1]);

  ServeOpts.CacheCapacity = Cache;
  PlanService Service(std::move(Store), ServeOpts);

  // Observability session: metrics sampling and the flight recorder need
  // a registry — reuse the ambient one (--trace-json/--trace-events/
  // --stats) or install a command-local one. Events are only enabled
  // when a flight recorder will dump them.
  Telemetry Local;
  std::optional<TelemetryScope> LocalScope;
  Telemetry *Reg = currentTelemetry();
  if (!Reg && (!MetricsPath.empty() || !FlightPath.empty())) {
    if (!FlightPath.empty())
      Local.enableEvents();
    LocalScope.emplace(Local);
    Reg = &Local;
  }
  std::ofstream MetricsOut;
  std::optional<MetricsSnapshotter> Sampler;
  if (!MetricsPath.empty()) {
    MetricsOut.open(MetricsPath, std::ios::trunc);
    if (!MetricsOut)
      die("cannot write '" + MetricsPath + "'");
    Sampler.emplace(*Reg);
  }
  std::optional<FlightRecorder> Recorder;
  if (!FlightPath.empty()) {
    SloConfig Cfg;
    Cfg.P99LatencyUs = SloP99Us;
    Cfg.TracePath = FlightPath;
    Recorder.emplace(*Reg, Cfg);
  }
  // One observation: publish the latency/cache gauges, append a JSONL
  // sample, and evaluate the SLO.
  auto Observe = [&] {
    if (!Reg)
      return;
    const LatencyHistogram &H = Service.latency();
    PlanServiceStats St = Service.stats();
    Reg->setGauge("serve.p50_us", H.quantileSeconds(0.50) * 1e6);
    Reg->setGauge("serve.p95_us", H.quantileSeconds(0.95) * 1e6);
    Reg->setGauge("serve.p99_us", H.quantileSeconds(0.99) * 1e6);
    Reg->setGauge("serve.cache_entries",
                  static_cast<double>(St.CacheEntries));
    double Now = 0.0;
    if (Sampler) {
      Now = Sampler->sample().TsSeconds;
      MetricsOut << Sampler->lastJsonLine() << "\n";
      MetricsOut.flush();
    }
    if (Recorder && Recorder->check(H.quantileSeconds(0.99) * 1e6, 0, Now))
      logf(LogLevel::Warn,
           "serve-bench: p99 SLO (%g us) breached, trace dumped to %s",
           SloP99Us, FlightPath.c_str());
  };

  int Warmed = 0;
  if (Warm)
    Warmed = Service.warm(Fleet, Target);
  // The measured window excludes warming: reset the request histogram and
  // take the baseline sample so the JSONL's overall rate covers exactly
  // the loop the printed aggregates cover.
  Service.resetLatency();
  Observe();

  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin = Clock::now();
  int SinceSample = 0;
  auto Tick = [&](int Done) {
    SinceSample += Done;
    if (SinceSample >= Every) {
      SinceSample = 0;
      Observe();
    }
  };
  if (Batch > 0) {
    std::vector<std::pair<int, int>> Pairs;
    for (int At = 0; At < Requests; At += Batch) {
      int Len = std::min(Batch, Requests - At);
      Pairs.clear();
      for (int K = 0; K < Len; ++K)
        Pairs.push_back({Fleet[static_cast<size_t>(At + K) + 1], Target});
      std::vector<std::shared_ptr<const UpdatePlan>> Plans =
          Service.planBatch(Pairs);
      for (int K = 0; K < Len; ++K)
        if (!Plans[static_cast<size_t>(K)])
          die(format("cannot plan update %d -> %d",
                     Pairs[static_cast<size_t>(K)].first, Target));
      Tick(Len);
    }
  } else if (Threads > 1) {
    // Closed-loop concurrent driver: every worker pulls the next request
    // off the shared stream as soon as its previous one finishes. Metrics
    // sampling stays on the boundary observations (the snapshotter is
    // single-threaded). Worker threads do not inherit the thread-current
    // telemetry registry, so each gets a scratch registry merged after
    // the join — the same discipline as ThreadPool::parallelFor — or
    // --stats/--trace-json would lose every serve.* count from the loop.
    std::atomic<int> Next{0};
    std::atomic<int> Failed{-1};
    Telemetry *ParentRegistry = currentTelemetry();
    std::vector<Telemetry> Scratch(static_cast<size_t>(Threads));
    std::vector<std::thread> Pool;
    Pool.reserve(static_cast<size_t>(Threads));
    for (int T = 0; T < Threads; ++T)
      Pool.emplace_back([&, T] {
        std::optional<TelemetryScope> Scope;
        if (ParentRegistry)
          Scope.emplace(Scratch[static_cast<size_t>(T)]);
        for (;;) {
          int K = Next.fetch_add(1, std::memory_order_relaxed);
          if (K >= Requests || Failed.load(std::memory_order_relaxed) >= 0)
            return;
          if (!Service.plan(Fleet[static_cast<size_t>(K) + 1], Target))
            Failed.store(Fleet[static_cast<size_t>(K) + 1],
                         std::memory_order_relaxed);
        }
      });
    for (std::thread &T : Pool)
      T.join();
    if (ParentRegistry)
      for (const Telemetry &Child : Scratch)
        ParentRegistry->mergeChild(Child);
    if (int From = Failed.load(); From >= 0)
      die(format("cannot plan update %d -> %d", From, Target));
  } else {
    for (int K = 0; K < Requests; ++K) {
      auto P = Service.plan(Fleet[static_cast<size_t>(K) + 1], Target);
      if (!P)
        die(format("cannot plan update %d -> %d",
                   Fleet[static_cast<size_t>(K) + 1], Target));
      Tick(1);
    }
  }
  double TotalSeconds =
      std::chrono::duration<double>(Clock::now() - Begin).count();
  Observe();

  const LatencyHistogram &H = Service.latency();
  PlanServiceStats S = Service.stats();
  std::printf("serve-bench: %zu version(s), target v%d, %d request(s), "
              "zipf s=%.2f, cache %zu, shards %zu%s%s%s\n",
              NumVersions, Target, Requests, ZipfS, Cache,
              Service.shardCount(),
              Warm ? format(" (%d pair(s) warmed)", Warmed).c_str() : "",
              Batch > 0 ? format(", batches of %d", Batch).c_str() : "",
              Threads > 1 ? format(", %d threads", Threads).c_str() : "");
  std::printf("  %.0f plans/sec, p50 %.1f us, p95 %.1f us, p99 %.1f us\n",
              Requests / TotalSeconds, H.quantileSeconds(0.50) * 1e6,
              H.quantileSeconds(0.95) * 1e6, H.quantileSeconds(0.99) * 1e6);
  std::printf("  hits %llu  misses %llu  evictions %llu  inflight-waits "
              "%llu  entries %zu\n",
              static_cast<unsigned long long>(S.Hits),
              static_cast<unsigned long long>(S.Misses),
              static_cast<unsigned long long>(S.Evictions),
              static_cast<unsigned long long>(S.InflightWaits),
              S.CacheEntries);
  if (S.AdmissionRejects || S.TtlExpired || S.Rejected ||
      ServeOpts.Admit == PlanServiceOptions::Admission::Frequency ||
      ServeOpts.TtlSeconds > 0)
    std::printf("  policy: admission %s (%llu reject(s)), ttl %s "
                "(%llu expired), %llu unknown-id reject(s)\n",
                ServeOpts.Admit ==
                        PlanServiceOptions::Admission::Frequency
                    ? "freq"
                    : "always",
                static_cast<unsigned long long>(S.AdmissionRejects),
                ServeOpts.TtlSeconds > 0
                    ? format("%.3gs", ServeOpts.TtlSeconds).c_str()
                    : "off",
                static_cast<unsigned long long>(S.TtlExpired),
                static_cast<unsigned long long>(S.Rejected));
  return 0;
}

/// Reads every well-formed JSONL snapshot line from a metrics file (the
/// support/Metrics schema); a trailing partially-written line is simply
/// skipped until the producer finishes it.
std::vector<json::Value> readMetricsLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<json::Value> Lines;
  if (!In)
    return Lines;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    if (std::optional<json::Value> V = json::parse(Line))
      Lines.push_back(std::move(*V));
  }
  return Lines;
}

double monitorField(const json::Value &Doc, const char *Section,
                    const char *Name) {
  if (const json::Value *S = Doc.find(Section))
    return S->numberOr(Name, 0.0);
  return 0.0;
}

/// Renders one console frame from the parsed snapshot history: the newest
/// sample's gauges/counters plus rates derived across the whole file.
void renderMonitor(const std::string &Path,
                   const std::vector<json::Value> &Lines) {
  const json::Value &Last = Lines.back();
  const json::Value &First = Lines.front();
  double Ts = Last.numberOr("ts", 0.0);
  double Dt = Ts - First.numberOr("ts", 0.0);
  double Plans = monitorField(Last, "counters", "serve.plans");
  double WindowRate = monitorField(Last, "rates", "serve.plans");
  double Overall =
      Dt > 0.0
          ? (Plans - monitorField(First, "counters", "serve.plans")) / Dt
          : 0.0;
  double Hits = monitorField(Last, "counters", "serve.cache_hits");
  double Misses = monitorField(Last, "counters", "serve.cache_misses");
  double HitRate =
      Hits + Misses > 0.0 ? 100.0 * Hits / (Hits + Misses) : 0.0;
  std::printf("ucc monitor - %s  (%zu sample(s), t=%.1fs)\n", Path.c_str(),
              Lines.size(), Ts);
  std::printf("  plans/sec   %10.0f window  %10.0f overall  (%.0f plans)\n",
              WindowRate, Overall, Plans);
  std::printf("  cache       %5.1f%% hit rate  hits %.0f  misses %.0f  "
              "evictions %.0f  entries %.0f\n",
              HitRate, Hits, Misses,
              monitorField(Last, "counters", "serve.evictions"),
              monitorField(Last, "gauges", "serve.cache_entries"));
  std::printf("  latency     p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
              monitorField(Last, "gauges", "serve.p50_us"),
              monitorField(Last, "gauges", "serve.p95_us"),
              monitorField(Last, "gauges", "serve.p99_us"));
  std::printf("  serving     in-flight waits %.0f  precomputed %.0f  "
              "batches %.0f  commits %.0f\n",
              monitorField(Last, "counters", "serve.inflight_waits"),
              monitorField(Last, "counters", "serve.precomputed"),
              monitorField(Last, "counters", "serve.batches"),
              monitorField(Last, "counters", "serve.commits"));
  double ARej = monitorField(Last, "counters", "serve.admission_rejects");
  double Expired = monitorField(Last, "counters", "serve.ttl_expired");
  double Unknown = monitorField(Last, "counters", "serve.rejected");
  if (ARej + Expired + Unknown > 0.0)
    std::printf("  policy      admission rejects %.0f  ttl expired %.0f  "
                "unknown-id rejects %.0f\n",
                ARej, Expired, Unknown);
  // Per-shard hit counters (serve.shard.<i>.hits) appear once a sharded
  // service has served traffic; summarize the spread so a hot shard is
  // visible at a glance.
  if (const json::Value *Counters = Last.find("counters")) {
    int NShards = 0, HotShard = -1;
    double HotHits = 0.0, ShardHits = 0.0;
    for (const auto &[Name, V] : Counters->Obj) {
      const std::string Prefix = "serve.shard.";
      if (Name.compare(0, Prefix.size(), Prefix) != 0 ||
          Name.size() <= Prefix.size() ||
          Name.compare(Name.size() - 5, 5, ".hits") != 0)
        continue;
      int Idx = std::atoi(Name.c_str() + Prefix.size());
      ++NShards;
      ShardHits += V.Num;
      if (V.Num > HotHits) {
        HotHits = V.Num;
        HotShard = Idx;
      }
    }
    if (NShards > 1 && HotShard >= 0 && ShardHits > 0.0)
      std::printf("  shards      %d reporting  hottest #%d (%.0f hits, "
                  "%.1f%% of shard traffic)\n",
                  NShards, HotShard, HotHits, 100.0 * HotHits / ShardHits);
  }
  double CHits = monitorField(Last, "counters", "compile.cache_hits");
  double CMisses = monitorField(Last, "counters", "compile.cache_misses");
  if (CHits + CMisses > 0.0)
    std::printf("  recompile   %5.1f%% hit rate  hits %.0f  misses %.0f  "
                "evictions %.0f  arena %.0f bytes\n",
                100.0 * CHits / (CHits + CMisses), CHits, CMisses,
                monitorField(Last, "counters", "compile.cache_evictions"),
                monitorField(Last, "gauges", "compile.arena_bytes"));
  if (const json::Value *G = Last.find("gauges"))
    if (G->find("net.campaign_joules"))
      std::printf("  energy      %.6f J across %.0f campaign(s)\n",
                  monitorField(Last, "gauges", "net.campaign_joules"),
                  monitorField(Last, "counters", "net.campaigns"));
}

/// The live console: renders a frame whenever the metrics file grows (or
/// once with --once), in place via ANSI clear. `--idle-exit <n>` ends the
/// session after n polls without new samples so scripted runs terminate.
int cmdMonitor(Args &A) {
  std::string Path = A.option("--metrics");
  bool Once = A.flag("--once");
  std::string IntervalArg = A.option("--interval-ms");
  std::string IdleArg = A.option("--idle-exit");
  if (Path.empty())
    dieCli("monitor requires --metrics <file>");
  if (Once && (!IntervalArg.empty() || !IdleArg.empty()))
    dieCli("--once cannot be combined with --interval-ms/--idle-exit");
  int IntervalMs =
      IntervalArg.empty() ? 1000 : parseInt(IntervalArg, "--interval-ms");
  if (IntervalMs <= 0)
    dieCli("--interval-ms expects a positive integer");
  int IdleExit = IdleArg.empty() ? 0 : parseInt(IdleArg, "--idle-exit");
  if (IdleExit < 0)
    dieCli("--idle-exit expects a non-negative integer");
  A.finish();

  if (Once) {
    std::vector<json::Value> Lines = readMetricsLines(Path);
    if (Lines.empty())
      die("no metrics samples in '" + Path + "'");
    renderMonitor(Path, Lines);
    return 0;
  }

  size_t LastCount = 0;
  int Idle = 0;
  for (;;) {
    std::vector<json::Value> Lines = readMetricsLines(Path);
    if (!Lines.empty() && Lines.size() != LastCount) {
      LastCount = Lines.size();
      Idle = 0;
      std::printf("\033[2J\033[H");
      renderMonitor(Path, Lines);
      std::fflush(stdout);
    } else if (IdleExit > 0 && ++Idle >= IdleExit) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
}

/// Prints a human-readable telemetry summary (the --stats flag).
void printStats(const Telemetry &T) {
  std::printf("--- telemetry ---\n");
  struct Walker {
    static void walk(const TelemetrySpan &Span, int Depth) {
      std::printf("%*s%-*s %9.3f ms  x%lld\n", Depth * 2, "",
                  24 - Depth * 2, Span.Name.c_str(), Span.Seconds * 1e3,
                  static_cast<long long>(Span.Count));
      for (const auto &Child : Span.Children)
        walk(*Child, Depth + 1);
    }
  };
  for (const auto &Child : T.spans().Children)
    Walker::walk(*Child, 0);
  for (const auto &[Name, Value] : T.counters())
    if (Value != 0)
      std::printf("%-32s %lld\n", Name.c_str(),
                  static_cast<long long>(Value));
  for (const auto &[Name, Value] : T.gauges())
    std::printf("%-32s %g\n", Name.c_str(), Value);

  // One-line incremental-recompilation summary (core/CompileCache),
  // printed only when a compile cache actually ran this command.
  long long CacheHits = 0, CacheMisses = 0, CacheEvictions = 0;
  for (const auto &[Name, Value] : T.counters()) {
    if (Name == "compile.cache_hits")
      CacheHits = static_cast<long long>(Value);
    else if (Name == "compile.cache_misses")
      CacheMisses = static_cast<long long>(Value);
    else if (Name == "compile.cache_evictions")
      CacheEvictions = static_cast<long long>(Value);
  }
  double ArenaBytes = 0.0;
  for (const auto &[Name, Value] : T.gauges())
    if (Name == "compile.arena_bytes")
      ArenaBytes = Value;
  if (CacheHits + CacheMisses > 0)
    std::printf("compile cache: %lld hit(s), %lld miss(es), %lld "
                "eviction(s), arena %.0f bytes\n",
                CacheHits, CacheMisses, CacheEvictions, ArenaBytes);
}

int dispatch(const std::string &Cmd, Args &A) {
  if (Cmd == "compile")
    return cmdCompile(A);
  if (Cmd == "update")
    return cmdUpdate(A);
  if (Cmd == "patch")
    return cmdPatch(A);
  if (Cmd == "run")
    return cmdRun(A);
  if (Cmd == "dis")
    return cmdDis(A);
  if (Cmd == "diff")
    return cmdDiff(A);
  if (Cmd == "commit")
    return cmdCommit(A);
  if (Cmd == "history")
    return cmdHistory(A);
  if (Cmd == "plan")
    return cmdPlan(A);
  if (Cmd == "campaign")
    return cmdCampaign(A);
  if (Cmd == "serve-bench")
    return cmdServeBench(A);
  if (Cmd == "monitor")
    return cmdMonitor(A);
  dieCli("unknown command '" + Cmd + "'");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    usage();
  std::string Cmd = Argv[1];
  Args A(Argc - 2, Argv + 2);

  std::string TracePath = A.option("--trace-json");
  std::string EventsPath = A.option("--trace-events");
  bool WantStats = A.flag("--stats");
  std::string JobsArg = A.option("--jobs");
  if (!JobsArg.empty()) {
    int Jobs = parseInt(JobsArg, "--jobs");
    if (Jobs <= 0)
      dieCli("--jobs expects a positive integer");
    ThreadPool::setDefaultJobs(Jobs);
  }

  if (TracePath.empty() && EventsPath.empty() && !WantStats)
    return dispatch(Cmd, A);

  // Telemetry session around the whole command. The standard counters are
  // pre-declared so the documented schema keys appear in the output even
  // when their code path never ran (e.g. lp.* under the greedy strategy).
  Telemetry T;
  T.declareStandardCounters();
  if (!EventsPath.empty())
    T.enableEvents();
  int Rc;
  {
    TelemetryScope Scope(T);
    Rc = dispatch(Cmd, A);
  }
  if (!TracePath.empty()) {
    std::ofstream Out(TracePath, std::ios::trunc);
    if (!Out)
      die("cannot write '" + TracePath + "'");
    Out << T.toJson() << "\n";
  }
  if (!EventsPath.empty()) {
    std::ofstream Out(EventsPath, std::ios::trunc);
    if (!Out)
      die("cannot write '" + EventsPath + "'");
    Out << T.toChromeTrace() << "\n";
  }
  if (WantStats)
    printStats(T);
  return Rc;
}
