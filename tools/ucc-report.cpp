//===- tools/ucc-report.cpp - bench aggregation & regression gate ---------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregates the per-bench report JSONs (written by the bench binaries'
/// `--report-json` flag, schema in docs/OBSERVABILITY.md) into one
/// schema-versioned BENCH.json, and optionally diffs it against a
/// checked-in baseline with per-metric tolerances:
///
///   ucc-report --bench-dir build/bench --out BENCH.json
///   ucc-report r1.json r2.json --out BENCH.json
///   ucc-report --bench-dir build/bench --quick
///              --baseline bench/baseline.json --report report.md
///   ucc-report --bench-dir build/bench --baseline bench/baseline.json
///              --update-baseline
///
/// Run mode (`--bench-dir`) executes every known bench binary with
/// `--report-json` (plus `--quick` when requested) and ingests the result;
/// ingest mode takes already-written report files as positional arguments.
/// Metrics whose name ends in `_seconds` are machine-dependent wall-clock
/// measurements: they are carried through to BENCH.json but never compared
/// against the baseline. Everything else — pivot counts, branch-and-bound
/// nodes, edit-script bytes — is deterministic by construction (the solver
/// and the telemetry merge are scheduling-independent, so `--jobs 8`
/// reports the same values as `--jobs 1`) and is therefore gated with
/// zero tolerance unless the baseline's `tolerances` section explicitly
/// loosens a metric.
///
/// Exit code: 0 on success, 1 when a baseline comparison found a
/// regression, 2 on usage or I/O errors.
///
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace ucc;

namespace {

/// The full bench suite, in presentation order. Binary names are
/// `bench_<name>`; report JSONs carry the bare name in their "bench" field.
const char *const BenchNames[] = {
    "fig03_power_model",        "fig09_update_cases",
    "fig10_dissemination",      "fig11_code_quality",
    "fig12_energy_savings",     "fig13_constraints",
    "fig14_iterations",         "fig15_solve_time",
    "fig16_data_alloc",         "ablation_chunk_threshold",
    "ablation_minlp_vs_ilp",    "ablation_splits",
    "version_chain",            "diff_scale",
    "plan_service",             "compile_commits",
    "fleet_scale"};

[[noreturn]] void die(const std::string &Message) {
  std::fprintf(stderr, "ucc-report: %s\n", Message.c_str());
  std::exit(2);
}

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: ucc-report [report.json ...] [options]\n"
      "  --bench-dir <dir>     run every bench binary found in <dir>\n"
      "                        (bench_fig03_power_model, ...) and ingest\n"
      "                        its --report-json output\n"
      "  --quick               pass --quick to the benches (reduced\n"
      "                        sweeps); compares against the baseline's\n"
      "                        'quick' profile section\n"
      "  --out <file>          write the aggregated BENCH.json\n"
      "  --baseline <file>     compare against this baseline; exit 1 on\n"
      "                        any regression beyond tolerance\n"
      "  --report <file>       write a markdown regression report\n"
      "  --update-baseline     rewrite the --baseline file's section for\n"
      "                        this profile from the current run\n");
  std::exit(2);
}

std::string readTextFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    die("cannot open '" + Path + "'");
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeTextFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    die("cannot write '" + Path + "'");
  Out << Text;
}

json::Value loadJsonFile(const std::string &Path) {
  std::optional<json::Value> V = json::parse(readTextFile(Path));
  if (!V)
    die("'" + Path + "' is not valid JSON");
  return std::move(*V);
}

/// One aggregated bench: its name plus insertion-ordered metrics.
struct BenchResult {
  std::string Name;
  std::vector<std::pair<std::string, double>> Metrics;
};

/// Validates and ingests one per-bench report document.
BenchResult ingestReport(const json::Value &Doc, const std::string &From) {
  if (Doc.numberOr("schema_version", 0) != 1)
    die("'" + From + "': unsupported report schema_version");
  BenchResult R;
  R.Name = Doc.stringOr("bench", "");
  if (R.Name.empty())
    die("'" + From + "': missing \"bench\" field");
  const json::Value *Metrics = Doc.find("metrics");
  if (!Metrics || Metrics->K != json::Value::Object)
    die("'" + From + "': missing \"metrics\" object");
  for (const auto &[Key, Val] : Metrics->Obj)
    if (Val.K == json::Value::Number)
      R.Metrics.emplace_back(Key, Val.Num);
  return R;
}

/// Runs one bench binary with --report-json and ingests the result.
BenchResult runBench(const std::string &BenchDir, const std::string &Name,
                     bool Quick, const std::string &ScratchDir) {
  std::string Binary = BenchDir + "/bench_" + Name;
  std::string ReportPath = ScratchDir + "/" + Name + ".json";
  std::string Cmd = "'" + Binary + "' --report-json '" + ReportPath + "'" +
                    (Quick ? " --quick" : "") + " > /dev/null";
  std::fprintf(stderr, "ucc-report: running bench_%s%s\n", Name.c_str(),
               Quick ? " (quick)" : "");
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0)
    die("bench_" + Name + " failed (exit status " + format("%d", Rc) + ")");
  return ingestReport(loadJsonFile(ReportPath), ReportPath);
}

/// Per-metric comparison tolerances, resolved from the baseline document.
struct Tolerances {
  double DefaultPct = 0.0; // deterministic metrics: exact match required
  double DefaultAbs = 0.0;
  /// "<bench>.<metric>" -> {pct, abs} overrides.
  std::vector<std::pair<std::string, std::pair<double, double>>> Overrides;

  void resolve(const std::string &Bench, const std::string &Metric,
               double &Pct, double &Abs) const {
    Pct = DefaultPct;
    Abs = DefaultAbs;
    std::string Key = Bench + "." + Metric;
    for (const auto &[K, V] : Overrides)
      if (K == Key) {
        Pct = V.first;
        Abs = V.second;
        return;
      }
  }
};

Tolerances parseTolerances(const json::Value &Baseline) {
  Tolerances T;
  const json::Value *Tol = Baseline.find("tolerances");
  if (!Tol)
    return T;
  T.DefaultPct = Tol->numberOr("default_pct", T.DefaultPct);
  T.DefaultAbs = Tol->numberOr("default_abs", T.DefaultAbs);
  if (const json::Value *Metrics = Tol->find("metrics"))
    for (const auto &[Key, Spec] : Metrics->Obj)
      T.Overrides.emplace_back(
          Key, std::make_pair(Spec.numberOr("pct", T.DefaultPct),
                              Spec.numberOr("abs", T.DefaultAbs)));
  return T;
}

bool isWallClockMetric(const std::string &Name) {
  const char *Suffix = "_seconds";
  return Name.size() >= std::strlen(Suffix) &&
         Name.compare(Name.size() - std::strlen(Suffix),
                      std::string::npos, Suffix) == 0;
}

/// One row of the comparison: a metric's baseline/current pair + verdict.
struct Delta {
  std::string Bench, Metric;
  double Base = 0.0, Cur = 0.0, Allowed = 0.0;
  enum Status { Pass, Regressed, MissingInCurrent, NewInCurrent,
                Skipped } St = Pass;
};

/// Compares the current run against the baseline's section for \p Profile.
/// Returns all per-metric rows; regressions make the process exit 1.
std::vector<Delta> compare(const std::vector<BenchResult> &Current,
                           const json::Value &Baseline,
                           const std::string &Profile,
                           const Tolerances &Tol) {
  const json::Value *Profiles = Baseline.find("profiles");
  const json::Value *Section =
      Profiles ? Profiles->find(Profile) : nullptr;
  const json::Value *Benches = Section ? Section->find("benches") : nullptr;
  if (!Benches)
    die("baseline has no profiles." + Profile +
        ".benches section (re-baseline with --update-baseline)");

  std::vector<Delta> Rows;
  for (const BenchResult &B : Current) {
    const json::Value *Entry = Benches->find(B.Name);
    const json::Value *BaseMetrics =
        Entry ? Entry->find("metrics") : nullptr;
    for (const auto &[Name, Cur] : B.Metrics) {
      Delta D;
      D.Bench = B.Name;
      D.Metric = Name;
      D.Cur = Cur;
      const json::Value *Base =
          BaseMetrics ? BaseMetrics->find(Name) : nullptr;
      if (isWallClockMetric(Name)) {
        if (Base && Base->K == json::Value::Number)
          D.Base = Base->Num;
        D.St = Delta::Skipped;
        Rows.push_back(D);
        continue;
      }
      if (!Base || Base->K != json::Value::Number) {
        D.St = Delta::NewInCurrent;
        Rows.push_back(D);
        continue;
      }
      D.Base = Base->Num;
      double Pct = 0.0, Abs = 0.0;
      Tol.resolve(B.Name, Name, Pct, Abs);
      D.Allowed = std::max(Abs, std::fabs(D.Base) * Pct / 100.0);
      D.St = std::fabs(D.Cur - D.Base) > D.Allowed ? Delta::Regressed
                                                   : Delta::Pass;
      Rows.push_back(D);
    }
    // Baseline metrics the current run no longer reports are regressions
    // too: a silently vanished metric must not pass the gate.
    if (BaseMetrics)
      for (const auto &[Name, Val] : BaseMetrics->Obj) {
        if (Val.K != json::Value::Number || isWallClockMetric(Name))
          continue;
        bool Present = false;
        for (const auto &[CurName, CurVal] : B.Metrics)
          if (CurName == Name)
            Present = true;
        if (!Present) {
          Delta D;
          D.Bench = B.Name;
          D.Metric = Name;
          D.Base = Val.Num;
          D.St = Delta::MissingInCurrent;
          Rows.push_back(D);
        }
      }
  }
  return Rows;
}

std::string statusLabel(Delta::Status St) {
  switch (St) {
  case Delta::Pass:
    return "ok";
  case Delta::Regressed:
    return "**REGRESSED**";
  case Delta::MissingInCurrent:
    return "**MISSING**";
  case Delta::NewInCurrent:
    return "new";
  case Delta::Skipped:
    return "skipped (wall clock)";
  }
  return "?";
}

/// The "top movers" digest: the metrics with the largest percent change
/// against the baseline, so a reviewer does not have to eyeball the full
/// per-bench tables. Wall-clock rows are included (labelled) — a big
/// swing there is worth a look even though it is never gated.
std::string renderTopMovers(const std::vector<Delta> &Rows, size_t Limit) {
  struct Mover {
    const Delta *D;
    double Pct;
  };
  std::vector<Mover> Movers;
  for (const Delta &D : Rows) {
    if (D.St == Delta::NewInCurrent || D.St == Delta::MissingInCurrent)
      continue;
    if (D.Base == 0.0 || D.Cur == D.Base)
      continue;
    Movers.push_back({&D, (D.Cur - D.Base) / std::fabs(D.Base) * 100.0});
  }
  if (Movers.empty())
    return "";
  std::stable_sort(Movers.begin(), Movers.end(),
                   [](const Mover &A, const Mover &B) {
                     return std::fabs(A.Pct) > std::fabs(B.Pct);
                   });
  if (Movers.size() > Limit)
    Movers.resize(Limit);
  std::string Md = "## Top movers\n\n";
  Md += "| bench | metric | baseline | current | change | status |\n";
  Md += "|---|---|---:|---:|---:|---|\n";
  for (const Mover &M : Movers)
    Md += "| " + M.D->Bench + " | " + M.D->Metric + " | " +
          format("%.6g", M.D->Base) + " | " + format("%.6g", M.D->Cur) +
          " | " + format("%+.1f%%", M.Pct) + " | " + statusLabel(M.D->St) +
          " |\n";
  Md += "\n";
  return Md;
}

/// Markdown regression report: the top-movers digest, one table per
/// bench, then a verdict line.
std::string renderMarkdown(const std::vector<Delta> &Rows,
                           const std::string &Profile, int Regressions) {
  std::string Md = "# ucc-report: bench comparison\n\n";
  Md += "Profile: `" + Profile + "`\n\n";
  Md += renderTopMovers(Rows, 8);
  std::string LastBench;
  for (const Delta &D : Rows) {
    if (D.Bench != LastBench) {
      Md += "\n## " + D.Bench + "\n\n";
      Md += "| metric | baseline | current | allowed delta | status |\n";
      Md += "|---|---:|---:|---:|---|\n";
      LastBench = D.Bench;
    }
    auto Num = [](double V) { return format("%.6g", V); };
    std::string BaseStr =
        D.St == Delta::NewInCurrent ? "-" : Num(D.Base);
    std::string CurStr =
        D.St == Delta::MissingInCurrent ? "-" : Num(D.Cur);
    std::string AllowedStr =
        D.St == Delta::Pass || D.St == Delta::Regressed ? Num(D.Allowed)
                                                        : "-";
    Md += "| " + D.Metric + " | " + BaseStr + " | " + CurStr + " | " +
          AllowedStr + " | " + statusLabel(D.St) + " |\n";
  }
  Md += Regressions == 0
            ? "\n**Verdict: PASS** — no metric moved beyond tolerance.\n"
            : format("\n**Verdict: FAIL** — %d metric(s) regressed or "
                     "went missing.\n",
                     Regressions);
  return Md;
}

/// The aggregated BENCH.json document.
json::Value renderBenchJson(const std::vector<BenchResult> &Current,
                            const std::string &Profile) {
  json::Value Doc = json::Value::object();
  Doc.set("schema_version", json::Value::number(1));
  Doc.set("tool", json::Value::string("ucc-report"));
  Doc.set("profile", json::Value::string(Profile));
  json::Value Benches = json::Value::object();
  for (const BenchResult &B : Current) {
    json::Value Entry = json::Value::object();
    json::Value Metrics = json::Value::object();
    for (const auto &[Name, Val] : B.Metrics)
      Metrics.set(Name, json::Value::number(Val));
    Entry.set("metrics", std::move(Metrics));
    Benches.set(B.Name, std::move(Entry));
  }
  Doc.set("benches", std::move(Benches));
  return Doc;
}

/// Rewrites the baseline's profiles.<Profile> section from \p Current,
/// preserving everything else (tolerances, the other profile's section).
void updateBaseline(const std::string &Path,
                    const std::vector<BenchResult> &Current,
                    const std::string &Profile) {
  json::Value Doc;
  std::ifstream Probe(Path);
  if (Probe.good()) {
    Probe.close();
    Doc = loadJsonFile(Path);
  } else {
    Doc = json::Value::object();
    Doc.set("schema_version", json::Value::number(1));
    json::Value Tol = json::Value::object();
    Tol.set("default_pct", json::Value::number(0.0));
    Tol.set("default_abs", json::Value::number(0.0));
    Tol.set("metrics", json::Value::object());
    Doc.set("tolerances", std::move(Tol));
    Doc.set("profiles", json::Value::object());
  }
  json::Value *Profiles = Doc.find("profiles");
  if (!Profiles) {
    Doc.set("profiles", json::Value::object());
    Profiles = Doc.find("profiles");
  }
  json::Value Section = json::Value::object();
  json::Value Benches = json::Value::object();
  for (const BenchResult &B : Current) {
    json::Value Entry = json::Value::object();
    json::Value Metrics = json::Value::object();
    for (const auto &[Name, Val] : B.Metrics)
      Metrics.set(Name, json::Value::number(Val));
    Entry.set("metrics", std::move(Metrics));
    Benches.set(B.Name, std::move(Entry));
  }
  Section.set("benches", std::move(Benches));
  Profiles->set(Profile, std::move(Section));
  writeTextFile(Path, Doc.serialize(2) + "\n");
  std::fprintf(stderr, "ucc-report: baseline '%s' section '%s' updated\n",
               Path.c_str(), Profile.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BenchDir, OutPath, BaselinePath, ReportPath;
  bool Quick = false, DoUpdateBaseline = false;
  std::vector<std::string> ReportFiles;
  for (int K = 1; K < Argc; ++K) {
    std::string Arg = Argv[K];
    auto value = [&]() -> std::string {
      if (K + 1 >= Argc)
        usage();
      return Argv[++K];
    };
    if (Arg == "--bench-dir")
      BenchDir = value();
    else if (Arg == "--out")
      OutPath = value();
    else if (Arg == "--baseline")
      BaselinePath = value();
    else if (Arg == "--report")
      ReportPath = value();
    else if (Arg == "--quick")
      Quick = true;
    else if (Arg == "--update-baseline")
      DoUpdateBaseline = true;
    else if (Arg == "--help" || Arg == "-h")
      usage();
    else if (!Arg.empty() && Arg[0] == '-')
      die("unknown flag '" + Arg + "' (see --help)");
    else
      ReportFiles.push_back(Arg);
  }
  if (BenchDir.empty() && ReportFiles.empty())
    usage();
  if (DoUpdateBaseline && BaselinePath.empty())
    die("--update-baseline requires --baseline");

  std::string Profile = Quick ? "quick" : "full";
  std::vector<BenchResult> Current;
  if (!BenchDir.empty()) {
    char ScratchTemplate[] = "/tmp/ucc-report-XXXXXX";
    const char *Scratch = mkdtemp(ScratchTemplate);
    if (!Scratch)
      die("cannot create scratch directory");
    for (const char *Name : BenchNames)
      Current.push_back(runBench(BenchDir, Name, Quick, Scratch));
  }
  for (const std::string &Path : ReportFiles)
    Current.push_back(ingestReport(loadJsonFile(Path), Path));

  if (!OutPath.empty()) {
    writeTextFile(OutPath,
                  renderBenchJson(Current, Profile).serialize(2) + "\n");
    std::fprintf(stderr, "ucc-report: wrote %s (%zu benches)\n",
                 OutPath.c_str(), Current.size());
  }

  if (DoUpdateBaseline) {
    updateBaseline(BaselinePath, Current, Profile);
    return 0;
  }

  if (BaselinePath.empty())
    return 0;

  json::Value Baseline = loadJsonFile(BaselinePath);
  if (Baseline.numberOr("schema_version", 0) != 1)
    die("'" + BaselinePath + "': unsupported baseline schema_version");
  Tolerances Tol = parseTolerances(Baseline);
  std::vector<Delta> Rows = compare(Current, Baseline, Profile, Tol);
  int Regressions = 0;
  for (const Delta &D : Rows)
    if (D.St == Delta::Regressed || D.St == Delta::MissingInCurrent) {
      ++Regressions;
      std::fprintf(stderr,
                   "ucc-report: REGRESSION %s.%s: baseline %.6g, current "
                   "%.6g (allowed delta %.6g)\n",
                   D.Bench.c_str(), D.Metric.c_str(), D.Base,
                   D.St == Delta::MissingInCurrent ? NAN : D.Cur,
                   D.Allowed);
    }
  std::string Md = renderMarkdown(Rows, Profile, Regressions);
  if (!ReportPath.empty())
    writeTextFile(ReportPath, Md);
  else
    std::fputs(Md.c_str(), stdout);
  if (Regressions > 0) {
    std::fprintf(stderr, "ucc-report: FAIL (%d regression(s))\n",
                 Regressions);
    return 1;
  }
  std::fprintf(stderr, "ucc-report: PASS (%zu metric rows)\n",
               Rows.size());
  return 0;
}
