//===- tests/SimTest.cpp - SAVR simulator semantics -----------------------===//
//
// Drives the simulator with hand-encoded images: each test controls the
// exact instruction words, so instruction semantics, cycle counting and
// the machine's trap contract are pinned down independently of the
// compiler.
//
//===----------------------------------------------------------------------===//

#include "codegen/SAVR.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

uint32_t enc(MOp Op, int A = 0, int B = 0, uint16_t Imm = 0) {
  EncodedInstr E;
  E.Op = Op;
  E.A = static_cast<uint8_t>(A);
  E.B = static_cast<uint8_t>(B);
  E.Imm = Imm;
  return E.pack();
}

uint32_t enc3(MOp Op, int A, int B, int C) {
  return enc(Op, A, B, static_cast<uint16_t>(C));
}

BinaryImage imageOf(std::vector<uint32_t> Words,
                    std::vector<int16_t> Data = {}) {
  BinaryImage Img;
  Img.Functions = {
      {"main", 0, static_cast<uint32_t>(Words.size())}};
  Img.Code = std::move(Words);
  Img.DataInit = std::move(Data);
  Img.EntryFunc = 0;
  return Img;
}

TEST(Sim, ArithmeticSemantics) {
  BinaryImage Img = imageOf({
      enc(MOp::LDI, 0, 0, 7),
      enc(MOp::LDI, 1, 0, 3),
      enc3(MOp::ADD, 2, 0, 1), // 10
      enc3(MOp::SUB, 3, 0, 1), // 4
      enc3(MOp::MUL, 4, 0, 1), // 21
      enc3(MOp::DIV, 5, 0, 1), // 2
      enc3(MOp::REM, 6, 0, 1), // 1
      enc(MOp::OUT, 2, 0, PortDebug),
      enc(MOp::OUT, 3, 0, PortDebug),
      enc(MOp::OUT, 4, 0, PortDebug),
      enc(MOp::OUT, 5, 0, PortDebug),
      enc(MOp::OUT, 6, 0, PortDebug),
      enc(MOp::HALT),
  });
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.DebugTrace,
            (std::vector<int16_t>{10, 4, 21, 2, 1}));
}

TEST(Sim, DivisionByZeroYieldsZero) {
  BinaryImage Img = imageOf({
      enc(MOp::LDI, 0, 0, 9),
      enc(MOp::LDI, 1, 0, 0),
      enc3(MOp::DIV, 2, 0, 1),
      enc3(MOp::REM, 3, 0, 1),
      enc(MOp::OUT, 2, 0, PortDebug),
      enc(MOp::OUT, 3, 0, PortDebug),
      enc(MOp::HALT),
  });
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.DebugTrace, (std::vector<int16_t>{0, 0}));
}

TEST(Sim, SixteenBitWraparound) {
  BinaryImage Img = imageOf({
      enc(MOp::LDI, 0, 0, 0x7fff),
      enc(MOp::LDI, 1, 0, 1),
      enc3(MOp::ADD, 2, 0, 1),
      enc(MOp::OUT, 2, 0, PortDebug),
      enc(MOp::HALT),
  });
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.DebugTrace[0], std::numeric_limits<int16_t>::min());
}

TEST(Sim, CompareAndBranchMatrix) {
  // For (a, b) = (2, 5): BLT taken, BGE not, BEQ not, BNE taken.
  BinaryImage Img = imageOf({
      /*0*/ enc(MOp::LDI, 0, 0, 2),
      /*1*/ enc(MOp::LDI, 1, 0, 5),
      /*2*/ enc(MOp::CMP, 0, 1),
      /*3*/ enc(MOp::BLT, 0, 0, 5), // taken: skips the bad OUT
      /*4*/ enc(MOp::OUT, 0, 0, PortDebug),
      /*5*/ enc(MOp::CMP, 0, 1),
      /*6*/ enc(MOp::BGE, 0, 0, 8), // not taken
      /*7*/ enc(MOp::LDI, 2, 0, 77),
      /*8*/ enc(MOp::OUT, 2, 0, PortDebug),
      /*9*/ enc(MOp::HALT),
  });
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.DebugTrace, (std::vector<int16_t>{77}));
}

TEST(Sim, GlobalLoadStoreAndIndexing) {
  BinaryImage Img = imageOf(
      {
          enc(MOp::LDG, 0, 0, 0),       // r0 = data[0] (= 5)
          enc(MOp::LDI, 1, 0, 2),       // index
          enc(MOp::LDGX, 2, 1, 1),      // r2 = data[1 + 2] (= 40)
          enc3(MOp::ADD, 3, 0, 2),      // 45
          enc(MOp::STG, 3, 0, 0),       // data[0] = 45
          enc(MOp::LDG, 4, 0, 0),
          enc(MOp::OUT, 4, 0, PortDebug),
          enc(MOp::HALT),
      },
      {5, 20, 30, 40});
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.DebugTrace, (std::vector<int16_t>{45}));
}

TEST(Sim, FrameIsPerInvocation) {
  // main: ENTER 1; store 11; call fn1; load and print (must still be 11).
  // fn1:  ENTER 1; store 99; ret.
  BinaryImage Img;
  Img.Functions = {{"main", 0, 8}, {"scribble", 8, 4}};
  Img.Code = {
      /*0*/ enc(MOp::ENTER, 0, 0, 1),
      /*1*/ enc(MOp::LDI, 0, 0, 11),
      /*2*/ enc(MOp::STF, 0, 0, 0),
      /*3*/ enc(MOp::CALL, 0, 0, 1),
      /*4*/ enc(MOp::LDF, 1, 0, 0),
      /*5*/ enc(MOp::OUT, 1, 0, PortDebug),
      /*6*/ enc(MOp::HALT),
      /*7*/ enc(MOp::NOP),
      /*8*/ enc(MOp::ENTER, 0, 0, 1),
      /*9*/ enc(MOp::LDI, 0, 0, 99),
      /*10*/ enc(MOp::STF, 0, 0, 0),
      /*11*/ enc(MOp::RET),
  };
  Img.EntryFunc = 0;
  RunResult R = runImage(Img);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.DebugTrace, (std::vector<int16_t>{11}));
}

TEST(Sim, TrapsOnDataOutOfRange) {
  BinaryImage Img = imageOf({enc(MOp::LDG, 0, 0, 100), enc(MOp::HALT)},
                            {1, 2});
  RunResult R = runImage(Img);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("data access"), std::string::npos);
}

TEST(Sim, TrapsOnBadCallTarget) {
  BinaryImage Img = imageOf({enc(MOp::CALL, 0, 0, 9), enc(MOp::HALT)});
  RunResult R = runImage(Img);
  EXPECT_TRUE(R.Trapped);
}

TEST(Sim, TrapsOnCallStackOverflow) {
  // A function that calls itself forever.
  BinaryImage Img = imageOf({enc(MOp::ENTER, 0, 0, 0),
                             enc(MOp::CALL, 0, 0, 0)});
  RunResult R = runImage(Img);
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.TrapReason.find("stack"), std::string::npos);
}

TEST(Sim, ReturnFromEntryHalts) {
  BinaryImage Img = imageOf({enc(MOp::ENTER, 0, 0, 0), enc(MOp::RET)});
  RunResult R = runImage(Img);
  EXPECT_TRUE(R.Halted);
  EXPECT_FALSE(R.Trapped);
}

TEST(Sim, CycleAccountingMatchesTable) {
  // LDI(1) + LDI(1) + MUL(2) + OUT(1) + HALT(0) = 5 cycles.
  BinaryImage Img = imageOf({
      enc(MOp::LDI, 0, 0, 3),
      enc(MOp::LDI, 1, 0, 4),
      enc3(MOp::MUL, 2, 0, 1),
      enc(MOp::OUT, 2, 0, PortDebug),
      enc(MOp::HALT),
  });
  RunResult R = runImage(Img);
  EXPECT_EQ(R.Cycles, 5u);
}

TEST(Sim, TakenBranchCostsExtraCycle) {
  BinaryImage NotTaken = imageOf({
      enc(MOp::LDI, 0, 0, 1),
      enc(MOp::LDI, 1, 0, 2),
      enc(MOp::CMP, 0, 1),
      enc(MOp::BEQ, 0, 0, 5), // not taken (1 cycle)
      enc(MOp::NOP),
      enc(MOp::HALT),
  });
  BinaryImage Taken = imageOf({
      enc(MOp::LDI, 0, 0, 2),
      enc(MOp::LDI, 1, 0, 2),
      enc(MOp::CMP, 0, 1),
      enc(MOp::BEQ, 0, 0, 5), // taken (2 cycles), skips the NOP
      enc(MOp::NOP),
      enc(MOp::HALT),
  });
  RunResult A = runImage(NotTaken);
  RunResult B = runImage(Taken);
  // Not-taken path: 1+1+1+1+1(+0) = 5; taken: 1+1+1+2(+0) = 5... both run
  // different instruction counts; verify against explicit sums instead.
  EXPECT_EQ(A.Cycles, 5u);
  EXPECT_EQ(B.Cycles, 5u);
  EXPECT_EQ(A.Steps, 6u);
  EXPECT_EQ(B.Steps, 5u);
}

TEST(Sim, ProfileCountsEveryInstruction) {
  BinaryImage Img = imageOf({
      enc(MOp::LDI, 0, 0, 3),   // loop counter
      enc(MOp::LDI, 1, 0, 1),
      enc(MOp::LDI, 2, 0, 0),
      /*3*/ enc3(MOp::SUB, 0, 0, 1),
      enc(MOp::CMP, 0, 2),
      enc(MOp::BNE, 0, 0, 3),
      enc(MOp::HALT),
  });
  SimOptions Opts;
  Opts.CollectProfile = true;
  RunResult R = runImage(Img, Opts);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  ASSERT_EQ(R.InstrCounts.size(), Img.Code.size());
  EXPECT_EQ(R.InstrCounts[0], 1u);
  EXPECT_EQ(R.InstrCounts[3], 3u); // loop body ran three times
  EXPECT_EQ(R.InstrCounts[5], 3u);
}

TEST(Sim, DisassemblerRoundTripsMnemonics) {
  EXPECT_EQ(disassembleInstr(enc(MOp::LDI, 3, 0, 42)), "ldi r3, 42");
  EXPECT_EQ(disassembleInstr(enc3(MOp::ADD, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassembleInstr(enc(MOp::JMP, 0, 0, 7)), "jmp +7");
  EXPECT_EQ(disassembleInstr(enc(MOp::STG, 4, 0, 9)), "stg [9], r4");
  EXPECT_EQ(disassembleInstr(enc(MOp::RET)), "ret");
}

TEST(Sim, EncodedInstrPackUnpackRoundTrip) {
  for (int Op = 0; Op < static_cast<int>(MOp::NumOpcodes); ++Op) {
    EncodedInstr E;
    E.Op = static_cast<MOp>(Op);
    E.A = 0xb;
    E.B = 0x3;
    E.Imm = 0xbeef;
    EncodedInstr Back = EncodedInstr::unpack(E.pack());
    EXPECT_EQ(static_cast<int>(Back.Op), Op);
    EXPECT_EQ(Back.A, E.A);
    EXPECT_EQ(Back.B, E.B);
    EXPECT_EQ(Back.Imm, E.Imm);
  }
}

} // namespace
