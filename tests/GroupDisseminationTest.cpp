//===- tests/GroupDisseminationTest.cpp - out-of-order groups (sec. 2.2) --===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "support/RNG.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ucc;

namespace {

struct Scenario {
  CompileOutput V1;
  CompileOutput V2;
  ImageUpdate Update;
};

Scenario makeScenario() {
  const UpdateCase &Case = updateCases()[11]; // case 12: app swap
  DiagnosticEngine Diag;
  auto V1 = Compiler::compile(Case.OldSource, CompileOptions(), Diag);
  EXPECT_TRUE(V1.has_value()) << Diag.str();
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  auto V2 = Compiler::recompile(Case.NewSource, V1->Record, Opts, Diag);
  EXPECT_TRUE(V2.has_value()) << Diag.str();
  Scenario S{std::move(*V1), std::move(*V2), {}};
  S.Update = makeImageUpdate(S.V1.Image, S.V2.Image);
  return S;
}

TEST(GroupDissemination, InOrderDeliveryWorks) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);
  EXPECT_EQ(Groups.size(), S.Update.Functions.size() + 1);

  UpdateAssembler Assembler(S.V1.Image);
  for (const UpdateGroup &G : Groups) {
    EXPECT_TRUE(Assembler.accept(G));
  }
  ASSERT_TRUE(Assembler.complete());
  BinaryImage Out;
  ASSERT_TRUE(Assembler.materialize(Out));
  EXPECT_EQ(Out.Code, S.V2.Image.Code);
  EXPECT_EQ(Out.DataInit, S.V2.Image.DataInit);
}

TEST(GroupDissemination, AnyOrderProducesTheSameImage) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);

  RNG Rng(77);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<UpdateGroup> Shuffled = Groups;
    for (size_t K = Shuffled.size(); K > 1; --K)
      std::swap(Shuffled[K - 1], Shuffled[Rng.below(K)]);

    UpdateAssembler Assembler(S.V1.Image);
    for (size_t K = 0; K < Shuffled.size(); ++K) {
      EXPECT_EQ(Assembler.complete(), false) << "complete too early";
      EXPECT_TRUE(Assembler.accept(Shuffled[K]));
    }
    ASSERT_TRUE(Assembler.complete());
    BinaryImage Out;
    ASSERT_TRUE(Assembler.materialize(Out));
    EXPECT_EQ(Out.Code, S.V2.Image.Code) << "trial " << Trial;
  }
}

TEST(GroupDissemination, DuplicatesAreIdempotent) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);

  UpdateAssembler Assembler(S.V1.Image);
  for (const UpdateGroup &G : Groups) {
    EXPECT_TRUE(Assembler.accept(G));
    EXPECT_TRUE(Assembler.accept(G)); // retransmission
  }
  BinaryImage Out;
  ASSERT_TRUE(Assembler.materialize(Out));
  EXPECT_EQ(Out.Code, S.V2.Image.Code);
}

TEST(GroupDissemination, IncompleteUpdateRefusesToMaterialize) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);

  UpdateAssembler Assembler(S.V1.Image);
  for (size_t K = 0; K + 1 < Groups.size(); ++K)
    Assembler.accept(Groups[K]); // last group lost in the air
  EXPECT_FALSE(Assembler.complete());
  BinaryImage Out;
  EXPECT_FALSE(Assembler.materialize(Out));
}

TEST(GroupDissemination, RejectsGroupsFromAnotherUpdate) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);

  UpdateAssembler Assembler(S.V1.Image);
  ASSERT_TRUE(Assembler.accept(Groups[0]));
  UpdateGroup Foreign = Groups[1];
  Foreign.TotalGroups += 5; // from some other campaign
  EXPECT_FALSE(Assembler.accept(Foreign));
}

TEST(GroupDissemination, PatchedNodeBehavesLikeFreshBuild) {
  Scenario S = makeScenario();
  std::vector<UpdateGroup> Groups = splitIntoGroups(S.Update);
  std::reverse(Groups.begin(), Groups.end()); // fully reversed delivery

  UpdateAssembler Assembler(S.V1.Image);
  for (const UpdateGroup &G : Groups)
    ASSERT_TRUE(Assembler.accept(G));
  BinaryImage Out;
  ASSERT_TRUE(Assembler.materialize(Out));

  RunResult A = runImage(S.V2.Image);
  RunResult B = runImage(Out);
  ASSERT_FALSE(B.Trapped) << B.TrapReason;
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

} // namespace
