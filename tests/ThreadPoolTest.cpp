//===- tests/ThreadPoolTest.cpp - parallelFor + telemetry merge -----------===//
//
// The parallelism substrate of the compilation pipeline: index coverage,
// exception propagation, job-count resolution, and the guarantee the
// whole design leans on — telemetry totals are independent of --jobs.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace ucc;

namespace {

/// Restores the process-wide default job count on scope exit so tests
/// that call setDefaultJobs cannot leak into later tests.
struct DefaultJobsGuard {
  ~DefaultJobsGuard() { ThreadPool::setDefaultJobs(0); }
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int Jobs : {1, 2, 8}) {
    const int N = 257;
    std::vector<std::atomic<int>> Hits(N);
    for (auto &H : Hits)
      H.store(0);
    ThreadPool Pool(Jobs);
    Pool.parallelFor(N, [&](int I) { Hits[static_cast<size_t>(I)]++; });
    for (int I = 0; I < N; ++I)
      EXPECT_EQ(Hits[static_cast<size_t>(I)].load(), 1)
          << "jobs " << Jobs << " index " << I;
  }
}

TEST(ThreadPool, EmptyAndSingleItemLoops) {
  ThreadPool Pool(4);
  int Calls = 0;
  Pool.parallelFor(0, [&](int) { ++Calls; });
  EXPECT_EQ(Calls, 0);
  Pool.parallelFor(1, [&](int I) {
    EXPECT_EQ(I, 0);
    ++Calls;
  });
  EXPECT_EQ(Calls, 1);
}

TEST(ThreadPool, ExceptionIsRethrownOnCaller) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  EXPECT_THROW(Pool.parallelFor(64,
                                [&](int I) {
                                  ++Ran;
                                  if (I == 13)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The queue stops after the failure; not necessarily all items ran.
  EXPECT_GE(Ran.load(), 1);
}

TEST(ThreadPool, DefaultJobsResolution) {
  DefaultJobsGuard Guard;
  ThreadPool::setDefaultJobs(3);
  EXPECT_EQ(ThreadPool::defaultJobs(), 3);
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.jobs(), 3);
  ThreadPool::setDefaultJobs(0); // cleared: hardware (or UCC_JOBS)
  EXPECT_GE(ThreadPool::defaultJobs(), 1);
  EXPECT_GE(ThreadPool::hardwareJobs(), 1);
}

/// The workload the merge contract is about: every item bumps counters,
/// accumulates a gauge, and times a span under the ambient registry.
void instrumentedLoop(int Jobs, Telemetry &Out) {
  TelemetryScope Scope(Out);
  parallelFor(40, Jobs, [&](int I) {
    telemetryCount("test.items");
    telemetryCount("test.weighted", I);
    telemetryGaugeAdd("test.sum", static_cast<double>(I) * 0.5);
    ScopedSpan Span("test_item");
    (void)Span;
  });
}

TEST(ThreadPool, TelemetryTotalsIndependentOfJobs) {
  Telemetry Serial, Parallel;
  instrumentedLoop(1, Serial);
  instrumentedLoop(8, Parallel);

  // Counters and gauges must agree exactly (integer adds; the gauge is a
  // sum of the same doubles in possibly different merge order, but the
  // merge is performed in item order, so even that is identical).
  EXPECT_EQ(Serial.counters(), Parallel.counters());
  EXPECT_EQ(Serial.counter("test.items"), 40);
  EXPECT_EQ(Serial.counter("test.weighted"), 40 * 39 / 2);
  EXPECT_DOUBLE_EQ(Serial.gauge("test.sum"), Parallel.gauge("test.sum"));

  // Span structure folds by name: one "test_item" node entered 40 times,
  // regardless of scheduling. (Seconds are wall-clock and not compared.)
  const TelemetrySpan *S = Serial.spans().find("test_item");
  const TelemetrySpan *P = Parallel.spans().find("test_item");
  ASSERT_NE(S, nullptr);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(S->Count, 40);
  EXPECT_EQ(P->Count, 40);
}

TEST(ThreadPool, MergedEventsStayChronological) {
  Telemetry T;
  T.enableEvents();
  {
    TelemetryScope Scope(T);
    parallelFor(24, 8, [&](int I) {
      telemetryInstant("test", "tick", I);
    });
  }
  std::vector<const TelemetryEvent *> Events = T.eventsInOrder();
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1]->TsMicros, Events[I]->TsMicros);
  // Every item's own event arrived (tracks are the item indices here);
  // the fan-out also emits flow/task instrumentation, filtered out by
  // category.
  std::vector<const TelemetryEvent *> Ticks;
  for (const TelemetryEvent *E : Events)
    if (E->Category == "test")
      Ticks.push_back(E);
  ASSERT_EQ(Ticks.size(), 24u);
  std::vector<bool> Seen(24, false);
  for (const TelemetryEvent *E : Ticks)
    Seen[static_cast<size_t>(E->Track)] = true;
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_TRUE(Seen[I]) << "missing event from item " << I;
}

TEST(ThreadPool, ParallelForEmitsFlowsAcrossWorkerTracks) {
  Telemetry T;
  T.enableEvents();
  {
    TelemetryScope Scope(T);
    parallelFor(64, 4, [&](int) {
      // Enough per-item work that several workers claim items.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }

  int Starts = 0, Ends = 0;
  std::set<uint64_t> StartIds, EndIds;
  std::set<int32_t> WorkerTracks;
  std::map<int32_t, int> OpenPerTrack;
  for (const TelemetryEvent *E : T.eventsInOrder()) {
    if (E->Ph == TelemetryEvent::Phase::FlowStart) {
      ++Starts;
      StartIds.insert(E->FlowId);
      EXPECT_EQ(E->Track, 0) << "fan-out arrows start on the caller track";
    } else if (E->Ph == TelemetryEvent::Phase::FlowEnd) {
      ++Ends;
      EndIds.insert(E->FlowId);
      EXPECT_GE(E->Track, Telemetry::WorkerTrackBase)
          << "arrows terminate on a worker track";
    } else if (E->Category == "task") {
      if (E->Ph == TelemetryEvent::Phase::Begin)
        ++OpenPerTrack[E->Track];
      else if (E->Ph == TelemetryEvent::Phase::End)
        --OpenPerTrack[E->Track];
      WorkerTracks.insert(E->Track);
    }
  }
  EXPECT_EQ(Starts, 64);
  EXPECT_EQ(Ends, 64);
  EXPECT_EQ(StartIds, EndIds) << "every arrow must pair by id";
  EXPECT_EQ(StartIds.size(), 64u) << "flow ids are per-item unique";
  EXPECT_GE(WorkerTracks.size(), 2u)
      << "64 slow items over 4 workers must land on >=2 tracks";
  for (const auto &[Track, Open] : OpenPerTrack)
    EXPECT_EQ(Open, 0) << "unbalanced task slice on track " << Track;
}

TEST(ThreadPool, ParallelForPropagatesTraceContext) {
  Telemetry T;
  T.enableEvents();
  std::mutex Lock;
  std::map<int, TraceContext> PerItem;
  {
    TelemetryScope Scope(T);
    TraceContextScope Trace(TraceContext{99, 0});
    parallelFor(16, 4, [&](int I) {
      const TraceContext *Ctx = currentTraceContext();
      ASSERT_NE(Ctx, nullptr) << "item " << I << " lost the trace";
      std::lock_guard<std::mutex> Guard(Lock);
      PerItem[I] = *Ctx;
    });
    // The caller thread also runs items; its own context must be
    // restored once the loop joins.
    ASSERT_NE(currentTraceContext(), nullptr);
    EXPECT_EQ(currentTraceContext()->TraceId, 99u);
    EXPECT_EQ(currentTraceContext()->SpanId, 0u);
  }
  ASSERT_EQ(PerItem.size(), 16u);
  std::set<uint64_t> SpanIds;
  for (const auto &[I, Ctx] : PerItem) {
    EXPECT_EQ(Ctx.TraceId, 99u) << "item " << I;
    SpanIds.insert(Ctx.SpanId);
  }
  EXPECT_EQ(SpanIds.size(), 16u)
      << "each item gets its own span id under the shared trace";
}

TEST(ThreadPool, ParallelForWithoutEventsAddsNoEvents) {
  // The tracing layer is events-only: with events off, the fan-out must
  // leave the registry's event state untouched.
  Telemetry T;
  {
    TelemetryScope Scope(T);
    parallelFor(16, 4, [&](int) {});
  }
  EXPECT_TRUE(T.eventsInOrder().empty());
  EXPECT_EQ(T.eventsDropped(), 0u);
}

TEST(ThreadPool, FreeParallelForWorksWithoutRegistry) {
  // No ambient registry: parallelFor must still run every item.
  std::vector<std::atomic<int>> Hits(50);
  for (auto &H : Hits)
    H.store(0);
  parallelFor(50, 4, [&](int I) { Hits[static_cast<size_t>(I)]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

} // namespace
