//===- tests/SerializationTest.cpp - wire-format robustness ---------------===//
//
// Images, compilation records and update packages travel as bytes (disk,
// radio). Besides round-tripping, every format must reject corruption and
// truncation instead of crashing the "sensor".
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "support/RNG.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, CompileOptions(), Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

TEST(Serialization, UpdatePackageRoundTrip) {
  const UpdateCase &Case = updateCases()[7];
  CompileOutput V1 = mustCompile(Case.OldSource);
  DiagnosticEngine Diag;
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  auto V2 = Compiler::recompile(Case.NewSource, V1.Record, Opts, Diag);
  ASSERT_TRUE(V2.has_value()) << Diag.str();

  ImageUpdate Update = makeImageUpdate(V1.Image, V2->Image);
  std::vector<uint8_t> Bytes = Update.serialize();

  ImageUpdate Back;
  ASSERT_TRUE(ImageUpdate::deserialize(Bytes, Back));
  BinaryImage PatchedA, PatchedB;
  ASSERT_TRUE(applyUpdate(V1.Image, Update, PatchedA));
  ASSERT_TRUE(applyUpdate(V1.Image, Back, PatchedB));
  EXPECT_EQ(PatchedA.Code, PatchedB.Code);
  EXPECT_EQ(PatchedA.Code, V2->Image.Code);
}

TEST(Serialization, UpdatePackageRejectsTruncation) {
  CompileOutput V1 = mustCompile(workloadSource("Blink"));
  ImageUpdate Update = makeImageUpdate(V1.Image, V1.Image);
  std::vector<uint8_t> Bytes = Update.serialize();
  for (size_t Cut : {size_t(1), Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Trunc(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    ImageUpdate Back;
    EXPECT_FALSE(ImageUpdate::deserialize(Trunc, Back))
        << "accepted a package truncated to " << Cut << " bytes";
  }
}

TEST(Serialization, UpdatePackageRejectsBadMagic) {
  CompileOutput V1 = mustCompile(workloadSource("Blink"));
  std::vector<uint8_t> Bytes = makeImageUpdate(V1.Image, V1.Image)
                                   .serialize();
  Bytes[0] ^= 0xff;
  ImageUpdate Back;
  EXPECT_FALSE(ImageUpdate::deserialize(Bytes, Back));
}

TEST(Serialization, ImageRejectsTruncation) {
  CompileOutput Out = mustCompile(workloadSource("CntToLeds"));
  std::vector<uint8_t> Bytes = Out.Image.serialize();
  std::vector<uint8_t> Trunc(Bytes.begin(),
                             Bytes.begin() +
                                 static_cast<long>(Bytes.size() / 3));
  BinaryImage Back;
  EXPECT_FALSE(BinaryImage::deserialize(Trunc, Back));
}

TEST(Serialization, ImageRejectsTrailingGarbage) {
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  std::vector<uint8_t> Bytes = Out.Image.serialize();
  Bytes.push_back(0x5a);
  BinaryImage Back;
  EXPECT_FALSE(BinaryImage::deserialize(Bytes, Back));
}

TEST(Serialization, RecordRejectsTruncation) {
  CompileOutput Out = mustCompile(workloadSource("CntToRfm"));
  std::vector<uint8_t> Bytes = Out.Record.serialize();
  std::vector<uint8_t> Trunc(Bytes.begin(),
                             Bytes.begin() +
                                 static_cast<long>(Bytes.size() - 7));
  CompilationRecord Back;
  EXPECT_FALSE(CompilationRecord::deserialize(Trunc, Back));
}

TEST(Serialization, RecordSurvivesFullRoundTripAndStillCompiles) {
  // The record must be as good as the in-memory one: recompiling against
  // the deserialized record reproduces the identical image.
  const UpdateCase &Case = updateCases()[5];
  CompileOutput V1 = mustCompile(Case.OldSource);
  std::vector<uint8_t> Bytes = V1.Record.serialize();
  CompilationRecord Back;
  ASSERT_TRUE(CompilationRecord::deserialize(Bytes, Back));

  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  DiagnosticEngine Diag;
  auto FromMem = Compiler::recompile(Case.NewSource, V1.Record, Opts, Diag);
  auto FromDisk = Compiler::recompile(Case.NewSource, Back, Opts, Diag);
  ASSERT_TRUE(FromMem.has_value() && FromDisk.has_value()) << Diag.str();
  EXPECT_EQ(FromMem->Image.Code, FromDisk->Image.Code);
  EXPECT_EQ(FromMem->Image.DataInit, FromDisk->Image.DataInit);
}

TEST(Serialization, RecordRejectsEveryTruncation) {
  // No proper prefix of a record may parse: the format embeds its element
  // counts, so running out of bytes mid-structure must latch an error.
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  std::vector<uint8_t> Bytes = Out.Record.serialize();
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    std::vector<uint8_t> Trunc(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    CompilationRecord Back;
    EXPECT_FALSE(CompilationRecord::deserialize(Trunc, Back))
        << "accepted a record truncated to " << Cut << " of "
        << Bytes.size() << " bytes";
  }
}

TEST(Serialization, RecordBitFlipFuzzNeverCrashes) {
  // Single-bit corruption anywhere in the record must either be rejected
  // or decode to *some* record — never crash or read out of bounds. Most
  // flips land in counts, opcodes or sizes and are caught by the semantic
  // validation; flips inside name bytes or operand values legitimately
  // survive.
  CompileOutput Out = mustCompile(workloadSource("CntToLedsAndRfm"));
  std::vector<uint8_t> Bytes = Out.Record.serialize();
  RNG Rng(7);
  int Rejected = 0;
  const int Trials = 500;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    std::vector<uint8_t> Flipped = Bytes;
    size_t Byte = Rng.below(static_cast<uint32_t>(Flipped.size()));
    Flipped[Byte] ^= static_cast<uint8_t>(1u << Rng.below(8));
    CompilationRecord Back;
    if (!CompilationRecord::deserialize(Flipped, Back))
      ++Rejected;
  }
  // The validation must actually bite: a decoder that swallowed every
  // flip would be accepting corrupt opcodes and counts.
  EXPECT_GT(Rejected, 0);
}

TEST(Serialization, RecordRejectsCorruptOpcode) {
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  CompilationRecord Rec = Out.Record;
  ASSERT_FALSE(Rec.FinalCode.empty());
  ASSERT_FALSE(Rec.FinalCode[0].Blocks.empty());
  ASSERT_FALSE(Rec.FinalCode[0].Blocks[0].Instrs.empty());
  Rec.FinalCode[0].Blocks[0].Instrs[0].Op = static_cast<MOp>(0xee);
  CompilationRecord Back;
  EXPECT_FALSE(CompilationRecord::deserialize(Rec.serialize(), Back));
}

TEST(Serialization, RecordRejectsOutOfRangeSuccessor) {
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  CompilationRecord Rec = Out.Record;
  ASSERT_FALSE(Rec.FinalCode.empty());
  ASSERT_FALSE(Rec.FinalCode[0].Blocks.empty());
  Rec.FinalCode[0].Blocks[0].Succs.push_back(9999);
  CompilationRecord Back;
  EXPECT_FALSE(CompilationRecord::deserialize(Rec.serialize(), Back));
}

TEST(Serialization, RecordRejectsMismatchedTables) {
  // FinalCode and FrameOffsets must stay parallel to FunctionNames — the
  // compiler indexes one by the other.
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  CompilationRecord Rec = Out.Record;
  Rec.FunctionNames.push_back("phantom");
  CompilationRecord Back;
  EXPECT_FALSE(CompilationRecord::deserialize(Rec.serialize(), Back));
}

TEST(Serialization, RandomGarbageNeverCrashesTheDecoders) {
  RNG Rng(2024);
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::vector<uint8_t> Garbage(Rng.below(300));
    for (uint8_t &B : Garbage)
      B = static_cast<uint8_t>(Rng.below(256));
    BinaryImage Img;
    BinaryImage::deserialize(Garbage, Img);
    CompilationRecord Rec;
    CompilationRecord::deserialize(Garbage, Rec);
    ImageUpdate Update;
    ImageUpdate::deserialize(Garbage, Update);
    // Reaching here without crashing is the assertion.
  }
  SUCCEED();
}

} // namespace
