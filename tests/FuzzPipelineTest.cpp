//===- tests/FuzzPipelineTest.cpp - randomized end-to-end updates ---------===//
//
// Generates random (always-terminating) MiniC programs, applies random
// structured edits, and drives the complete update-conscious flow:
//
//   compile v1 -> record -> edit -> recompile (baseline and UCC) ->
//   edit script -> sensor-side patch -> simulate.
//
// Invariants checked per seed:
//   * the patched image is bit-identical to the freshly compiled one;
//   * update-conscious code behaves exactly like update-oblivious code;
//   * recompiling *unchanged* source reproduces the old binary;
// and across all seeds, UCC's total Diff_inst must not exceed the
// baseline's (it is allowed to tie on any individual case).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "support/Format.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

/// Generates random programs as statement lists so that edits can be
/// applied structurally (insert / delete / tweak a statement).
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : Rng(Seed) {
    NumGlobals = static_cast<int>(Rng.range(2, 4));
    NumHelpers = static_cast<int>(Rng.range(1, 2));
    for (int H = 0; H < NumHelpers; ++H)
      Helpers.push_back(makeHelper(H));
    int NumStmts = static_cast<int>(Rng.range(6, 14));
    for (int S = 0; S < NumStmts; ++S)
      MainStmts.push_back(makeStatement());
  }

  /// Renders the current program.
  std::string render() const {
    std::string Out;
    for (int G = 0; G < NumGlobals; ++G)
      Out += format("int g%d = %d;\n", G, G * 3 + 1);
    for (const std::string &H : Helpers)
      Out += H + "\n";
    Out += "void main() {\n";
    Out += "  int a = 1;\n  int b = 2;\n  int c = 3;\n";
    for (const std::string &S : MainStmts)
      Out += S;
    for (int G = 0; G < NumGlobals; ++G)
      Out += format("  __out(15, g%d);\n", G);
    Out += "  __out(15, a + b + c);\n  __halt();\n}\n";
    return Out;
  }

  /// Applies 1..3 random structured edits to main's statement list.
  void mutate() {
    int Edits = static_cast<int>(Rng.range(1, 3));
    for (int K = 0; K < Edits; ++K) {
      uint64_t Kind = Rng.below(3);
      if (Kind == 0 || MainStmts.empty()) {
        MainStmts.insert(MainStmts.begin() +
                             static_cast<long>(
                                 Rng.below(MainStmts.size() + 1)),
                         makeStatement());
      } else if (Kind == 1) {
        MainStmts[Rng.below(MainStmts.size())] = makeStatement();
      } else {
        MainStmts.erase(MainStmts.begin() +
                        static_cast<long>(Rng.below(MainStmts.size())));
      }
    }
  }

private:
  std::string randomValue(int Depth = 0) {
    switch (Rng.below(Depth >= 2 ? 3 : 5)) {
    case 0:
      return format("%d", static_cast<int>(Rng.range(0, 99)));
    case 1:
      return format("g%d", static_cast<int>(
                               Rng.below(static_cast<uint64_t>(NumGlobals))));
    case 2: {
      const char *Locals[] = {"a", "b", "c"};
      return Locals[Rng.below(3)];
    }
    case 3: {
      const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
      return format("(%s %s %s)", randomValue(Depth + 1).c_str(),
                    Ops[Rng.below(6)], randomValue(Depth + 1).c_str());
    }
    default:
      return format("h%d(%s, %s)",
                    static_cast<int>(
                        Rng.below(static_cast<uint64_t>(NumHelpers))),
                    randomValue(Depth + 1).c_str(),
                    randomValue(Depth + 1).c_str());
    }
  }

  std::string randomTarget() {
    if (Rng.chance(1, 2))
      return format("g%d", static_cast<int>(
                               Rng.below(static_cast<uint64_t>(NumGlobals))));
    const char *Locals[] = {"a", "b", "c"};
    return Locals[Rng.below(3)];
  }

  std::string makeStatement() {
    switch (Rng.below(4)) {
    case 0:
      return format("  %s = %s;\n", randomTarget().c_str(),
                    randomValue().c_str());
    case 1:
      return format("  __out(15, %s);\n", randomValue().c_str());
    case 2:
      return format("  if ((%s & 3) != 0) {\n    %s = %s;\n  } else {\n"
                    "    %s = %s;\n  }\n",
                    randomValue().c_str(), randomTarget().c_str(),
                    randomValue().c_str(), randomTarget().c_str(),
                    randomValue().c_str());
    default: {
      int LoopVar = LoopCounter++;
      return format("  {\n    int L%d;\n    for (L%d = 0; L%d < %d; "
                    "L%d = L%d + 1) {\n      %s = %s + L%d;\n    }\n  }\n",
                    LoopVar, LoopVar, LoopVar,
                    static_cast<int>(Rng.range(2, 6)), LoopVar, LoopVar,
                    randomTarget().c_str(), randomTarget().c_str(),
                    LoopVar);
    }
    }
  }

  std::string makeHelper(int Idx) {
    return format("int h%d(int p, int q) {\n"
                  "  int t = (p %s %d) ^ q;\n"
                  "  if (t < 0) {\n    t = 0 - t;\n  }\n"
                  "  return t & 0xff;\n"
                  "}\n",
                  Idx, Rng.chance(1, 2) ? "+" : "*",
                  static_cast<int>(Rng.range(1, 9)));
  }

  RNG Rng;
  int NumGlobals = 0;
  int NumHelpers = 0;
  int LoopCounter = 0;
  std::vector<std::string> Helpers;
  std::vector<std::string> MainStmts;
};

CompileOutput fuzzCompile(const std::string &Source,
                          const CompileOptions &Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str() << "\nsource:\n" << Source;
  return std::move(*Out);
}

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, UpdateFlowInvariants) {
  ProgramGen Gen(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  std::string SourceV1 = Gen.render();
  Gen.mutate();
  std::string SourceV2 = Gen.render();

  CompileOutput V1 = fuzzCompile(SourceV1, CompileOptions());

  // Invariant 0: both versions run to completion when freshly compiled.
  RunResult RunV1 = runImage(V1.Image);
  ASSERT_FALSE(RunV1.Trapped) << RunV1.TrapReason << "\n" << SourceV1;
  ASSERT_TRUE(RunV1.Halted);

  // Invariant 1: recompiling unchanged source reproduces the old binary.
  CompileOptions Ucc;
  Ucc.RA = RegAllocKind::UpdateConscious;
  Ucc.DA = DataAllocKind::UpdateConscious;
  DiagnosticEngine Diag;
  auto Same = Compiler::recompile(SourceV1, V1.Record, Ucc, Diag);
  ASSERT_TRUE(Same.has_value()) << Diag.str();
  EXPECT_EQ(diffImages(V1.Image, Same->Image).totalDiffInst(), 0)
      << SourceV1;

  // The update.
  auto V2Ucc = Compiler::recompile(SourceV2, V1.Record, Ucc, Diag);
  ASSERT_TRUE(V2Ucc.has_value()) << Diag.str() << "\n" << SourceV2;
  CompileOutput V2Fresh = fuzzCompile(SourceV2, CompileOptions());

  // Invariant 2: update-conscious code behaves like oblivious code.
  RunResult RunUcc = runImage(V2Ucc->Image);
  RunResult RunFresh = runImage(V2Fresh.Image);
  ASSERT_FALSE(RunUcc.Trapped) << RunUcc.TrapReason << "\n" << SourceV2;
  EXPECT_TRUE(RunFresh.sameObservableBehavior(RunUcc)) << SourceV2;

  // Invariant 3: the sensor-side patch reproduces the new image exactly.
  UpdatePackage Pkg = makeUpdate(V1, *V2Ucc);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V1.Image, Pkg.Update, Patched));
  EXPECT_EQ(Patched.Code, V2Ucc->Image.Code);
  EXPECT_EQ(Patched.DataInit, V2Ucc->Image.DataInit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(0, 30));

/// Same invariants with the ILP-backed Hybrid strategy in the loop.
class FuzzHybrid : public ::testing::TestWithParam<int> {};

TEST_P(FuzzHybrid, HybridStrategyKeepsBehavior) {
  ProgramGen Gen(static_cast<uint64_t>(GetParam()) * 1099511 + 3);
  std::string SourceV1 = Gen.render();
  Gen.mutate();
  std::string SourceV2 = Gen.render();

  CompileOutput V1 = fuzzCompile(SourceV1, CompileOptions());

  CompileOptions Hybrid;
  Hybrid.RA = RegAllocKind::UpdateConscious;
  Hybrid.DA = DataAllocKind::UpdateConscious;
  Hybrid.Ucc.Strategy = UccStrategy::Hybrid;
  Hybrid.Ucc.IlpMaxBinaries = 1200;
  Hybrid.Ucc.IlpTimeLimitSec = 5.0;

  DiagnosticEngine Diag;
  auto V2 = Compiler::recompile(SourceV2, V1.Record, Hybrid, Diag);
  ASSERT_TRUE(V2.has_value()) << Diag.str() << "\n" << SourceV2;

  CompileOutput Fresh = fuzzCompile(SourceV2, CompileOptions());
  RunResult A = runImage(Fresh.Image);
  RunResult B = runImage(V2->Image);
  ASSERT_FALSE(B.Trapped) << B.TrapReason << "\n" << SourceV2;
  EXPECT_TRUE(A.sameObservableBehavior(B)) << SourceV2;

  UpdatePackage Pkg = makeUpdate(V1, *V2);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V1.Image, Pkg.Update, Patched));
  EXPECT_EQ(Patched.Code, V2->Image.Code);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHybrid, ::testing::Range(0, 10));

TEST(FuzzPipeline, UccNeverLosesToBaselineInAggregate) {
  long TotalBase = 0, TotalUcc = 0;
  for (int Seed = 100; Seed < 120; ++Seed) {
    ProgramGen Gen(static_cast<uint64_t>(Seed) * 48271 + 1);
    std::string SourceV1 = Gen.render();
    Gen.mutate();
    std::string SourceV2 = Gen.render();

    CompileOutput V1 = fuzzCompile(SourceV1, CompileOptions());
    DiagnosticEngine Diag;
    CompileOptions Ucc;
    Ucc.RA = RegAllocKind::UpdateConscious;
    Ucc.DA = DataAllocKind::UpdateConscious;
    auto VUcc = Compiler::recompile(SourceV2, V1.Record, Ucc, Diag);
    auto VBase = Compiler::recompile(SourceV2, V1.Record,
                                     CompileOptions(), Diag);
    ASSERT_TRUE(VUcc.has_value() && VBase.has_value()) << Diag.str();
    TotalBase += diffImages(V1.Image, VBase->Image).totalDiffInst();
    TotalUcc += diffImages(V1.Image, VUcc->Image).totalDiffInst();
  }
  EXPECT_LE(TotalUcc, TotalBase)
      << "update-conscious compilation lost ground on random updates";
}

} // namespace
