//===- tests/WindowCacheTest.cpp - window memo cache ----------------------===//
//
// The regalloc window memo cache: hits return the original solution
// (metrics included), the hash key separates windows that differ in any
// model field, concurrent requesters of one window solve it exactly once,
// and the hit/miss telemetry counters report truthfully.
//
//===----------------------------------------------------------------------===//

#include "regalloc/UccIlpModel.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

/// The UccIlpModelTest window shape: S statements defining and using
/// NumVars variables round-robin, all changed.
WindowSpec simpleSpec(int NumVars, int NumStmts, int NumRegs) {
  WindowSpec Spec;
  Spec.NumVars = NumVars;
  Spec.NumRegs = NumRegs;
  Spec.EntryReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.ExitReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.LiveOut.assign(static_cast<size_t>(NumVars), false);
  for (int S = 0; S < NumStmts; ++S) {
    WindowInstr I;
    I.Changed = true;
    I.Def = S % NumVars;
    if (S > 0) {
      I.Uses.push_back((S - 1) % NumVars);
      I.UsePref.push_back(-1);
    }
    Spec.Instrs.push_back(std::move(I));
  }
  return Spec;
}

void expectSameSolution(const WindowSolution &A, const WindowSolution &B) {
  EXPECT_EQ(A.Status, B.Status);
  EXPECT_DOUBLE_EQ(A.Objective, B.Objective);
  EXPECT_EQ(A.Pivots, B.Pivots);
  EXPECT_EQ(A.Nodes, B.Nodes);
  EXPECT_EQ(A.DefReg, B.DefReg);
  EXPECT_EQ(A.RegAfter, B.RegAfter);
  EXPECT_EQ(A.UseRegs, B.UseRegs);
  EXPECT_EQ(A.InsertedMovs, B.InsertedMovs);
  EXPECT_EQ(A.SpillLoads, B.SpillLoads);
  EXPECT_EQ(A.SpillStores, B.SpillStores);
}

TEST(WindowCache, HitReturnsOriginalSolution) {
  clearWindowCache();
  WindowSpec Spec = simpleSpec(2, 5, 3);

  Telemetry T;
  TelemetryScope Scope(T);
  WindowSolution First = solveWindowCached(Spec);
  WindowSolution Second = solveWindowCached(Spec);
  expectSameSolution(First, Second);
  // Hits replay the original solve's metrics, so bench pivot/node counts
  // do not depend on cache order.
  WindowSolution Fresh = solveWindow(Spec);
  expectSameSolution(First, Fresh);

  EXPECT_EQ(T.counter("ra.window_cache_misses"), 1);
  EXPECT_EQ(T.counter("ra.window_cache_hits"), 1);
  EXPECT_EQ(windowCacheSize(), 1u);
  clearWindowCache();
  EXPECT_EQ(windowCacheSize(), 0u);
}

TEST(WindowCache, DistinctWindowsDoNotCollide) {
  clearWindowCache();
  WindowSpec A = simpleSpec(2, 5, 3);
  WindowSpec B = A;
  B.Instrs[2].Freq = 9.0; // one coefficient differs -> different window

  Telemetry T;
  TelemetryScope Scope(T);
  solveWindowCached(A);
  solveWindowCached(B);
  EXPECT_EQ(T.counter("ra.window_cache_misses"), 2);
  EXPECT_EQ(T.counter("ra.window_cache_hits"), 0);
  EXPECT_EQ(windowCacheSize(), 2u);
  clearWindowCache();
}

TEST(WindowCache, KeyCoversOptionsAndHintFlag) {
  WindowSpec Spec = simpleSpec(2, 4, 3);
  ILPOptions Opts;
  uint64_t Base = windowSpecKey(Spec, Opts, true);
  EXPECT_EQ(windowSpecKey(Spec, Opts, true), Base); // deterministic

  EXPECT_NE(windowSpecKey(Spec, Opts, false), Base);
  ILPOptions Tighter;
  Tighter.TimeLimitSec = 1.0;
  EXPECT_NE(windowSpecKey(Spec, Tighter, true), Base);

  WindowSpec Other = Spec;
  Other.NumRegs = 4;
  EXPECT_NE(windowSpecKey(Other, Opts, true), Base);
  Other = Spec;
  Other.Cnt = 1e6;
  EXPECT_NE(windowSpecKey(Other, Opts, true), Base);
  Other = Spec;
  Other.Instrs[1].DefPref = 0;
  EXPECT_NE(windowSpecKey(Other, Opts, true), Base);
}

TEST(WindowCache, ConcurrentRequestersSolveOnce) {
  clearWindowCache();
  WindowSpec Spec = simpleSpec(3, 6, 3);

  Telemetry T;
  TelemetryScope Scope(T);
  std::vector<WindowSolution> Sols(16);
  parallelFor(16, 8, [&](int I) {
    Sols[static_cast<size_t>(I)] = solveWindowCached(Spec);
  });
  // Exactly one miss; the other fifteen either waited on the in-flight
  // solve or hit the filled entry.
  EXPECT_EQ(T.counter("ra.window_cache_misses"), 1);
  EXPECT_EQ(T.counter("ra.window_cache_hits"), 15);
  for (size_t I = 1; I < Sols.size(); ++I)
    expectSameSolution(Sols[0], Sols[I]);
  EXPECT_EQ(windowCacheSize(), 1u);
  clearWindowCache();
}

} // namespace
