//===- tests/FrontendTest.cpp - lexer/parser/irgen unit tests -------------===//

#include "frontend/IRGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

TEST(Lexer, BasicTokens) {
  DiagnosticEngine Diag;
  auto Toks = lex("int x = 42; // comment\nx = x + 0x1f;", Diag);
  ASSERT_FALSE(Diag.hasErrors());
  ASSERT_GE(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "x");
  EXPECT_EQ(Toks[2].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[3].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[3].IntValue, 42);
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(Lexer, HexAndOperators) {
  DiagnosticEngine Diag;
  auto Toks = lex("0xff << 2 >> 1 && || == != <= >=", Diag);
  ASSERT_FALSE(Diag.hasErrors());
  EXPECT_EQ(Toks[0].IntValue, 255);
  EXPECT_EQ(Toks[1].Kind, TokKind::Shl);
  EXPECT_EQ(Toks[3].Kind, TokKind::Shr);
  EXPECT_EQ(Toks[5].Kind, TokKind::AmpAmp);
  EXPECT_EQ(Toks[6].Kind, TokKind::PipePipe);
  EXPECT_EQ(Toks[7].Kind, TokKind::EqEq);
  EXPECT_EQ(Toks[8].Kind, TokKind::NotEq);
  EXPECT_EQ(Toks[9].Kind, TokKind::Le);
  EXPECT_EQ(Toks[10].Kind, TokKind::Ge);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagnosticEngine Diag;
  lex("int $bad;", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Lexer, ReportsOversizedLiteral) {
  DiagnosticEngine Diag;
  lex("int x = 70000;", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diag;
  lex("/* never closed", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Parser, GlobalScalarAndArray) {
  DiagnosticEngine Diag;
  ProgramAST P = parseProgram("int a = 3; int tbl[4] = {1, 2, 3, 4};", Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  ASSERT_EQ(P.Globals.size(), 2u);
  EXPECT_EQ(P.Globals[0].Name, "a");
  EXPECT_EQ(P.Globals[0].ArraySize, 0);
  ASSERT_EQ(P.Globals[0].Init.size(), 1u);
  EXPECT_EQ(P.Globals[0].Init[0], 3);
  EXPECT_EQ(P.Globals[1].ArraySize, 4);
  ASSERT_EQ(P.Globals[1].Init.size(), 4u);
}

TEST(Parser, FunctionWithControlFlow) {
  DiagnosticEngine Diag;
  const char *Src = R"(
    int gcd(int a, int b) {
      while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
      }
      return a;
    }
  )";
  ProgramAST P = parseProgram(Src, Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0].Name, "gcd");
  EXPECT_TRUE(P.Functions[0].ReturnsInt);
  EXPECT_EQ(P.Functions[0].Params.size(), 2u);
}

TEST(Parser, ReportsSyntaxError) {
  DiagnosticEngine Diag;
  parseProgram("void f() { int x = ; }", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(Parser, TooManyParams) {
  DiagnosticEngine Diag;
  parseProgram("void f(int a, int b, int c, int d, int e) {}", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, SimpleFunctionVerifies) {
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    int g = 5;
    int add(int a, int b) { return a + b; }
    void main() {
      int x = add(g, 2);
      __out(0, x);
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  auto Problems = verifyModule(M);
  EXPECT_TRUE(Problems.empty()) << (Problems.empty() ? "" : Problems[0]);
  EXPECT_EQ(M.Functions.size(), 2u);
  EXPECT_EQ(M.EntryFunc, M.findFunction("main"));
}

TEST(IRGen, UndeclaredIdentifier) {
  DiagnosticEngine Diag;
  compileToIR("void main() { x = 1; }", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, BreakOutsideLoop) {
  DiagnosticEngine Diag;
  compileToIR("void main() { break; }", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, VoidFunctionAsValue) {
  DiagnosticEngine Diag;
  compileToIR("void f() {} void main() { int x = f(); }", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, WrongArgCount) {
  DiagnosticEngine Diag;
  compileToIR("int f(int a) { return a; } void main() { f(1, 2); }", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, ReturnValueFromVoid) {
  DiagnosticEngine Diag;
  compileToIR("void f() { return 3; } void main() {}", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(IRGen, ShortCircuitLowering) {
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    void main() {
      int a = 1;
      int b = 0;
      if (a && (b || a)) {
        __out(0, 1);
      }
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  EXPECT_TRUE(moduleIsValid(M));
  // Short-circuit lowering produces multiple blocks.
  EXPECT_GT(M.Functions[0].Blocks.size(), 3u);
}

TEST(IRGen, LocalArrays) {
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    void main() {
      int buf[8];
      int i;
      for (i = 0; i < 8; i = i + 1) {
        buf[i] = i * i;
      }
      __out(0, buf[3]);
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  EXPECT_TRUE(moduleIsValid(M));
  ASSERT_EQ(M.Functions[0].FrameObjects.size(), 1u);
  EXPECT_EQ(M.Functions[0].FrameObjects[0].SizeWords, 8);
}

TEST(IRGen, PrintsReadableIR) {
  DiagnosticEngine Diag;
  Module M = compileToIR("int g; void main() { g = 7; __halt(); }", Diag);
  ASSERT_FALSE(Diag.hasErrors());
  std::string Text = M.print();
  EXPECT_NE(Text.find("global @g[1]"), std::string::npos);
  EXPECT_NE(Text.find("storeg @g"), std::string::npos);
  EXPECT_NE(Text.find("halt"), std::string::npos);
}

} // namespace
