//===- tests/LPTest.cpp - simplex and branch-and-bound tests --------------===//

#include "lp/LP.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ucc;

namespace {

TEST(Simplex, SimpleTwoVarLP) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0
  // == min -3x - 2y; optimum at (4, 0) with value -12.
  LPProblem P;
  int X = P.addVar(-3.0, 0.0, 1e9);
  int Y = P.addVar(-2.0, 0.0, 1e9);
  P.addLE({{X, 1.0}, {Y, 1.0}}, 4.0);
  P.addLE({{X, 1.0}, {Y, 3.0}}, 6.0);

  LPResult R = solveLP(P);
  ASSERT_EQ(R.Status, SolveStatus::Optimal);
  EXPECT_NEAR(R.Objective, -12.0, 1e-6);
  EXPECT_NEAR(R.X[0], 4.0, 1e-6);
  EXPECT_NEAR(R.X[1], 0.0, 1e-6);
}

TEST(Simplex, EqualityAndGEConstraints) {
  // min x + y  s.t. x + y >= 2, x - y == 1, 0 <= x,y <= 10
  // optimum: x=1.5, y=0.5, obj 2.
  LPProblem P;
  int X = P.addVar(1.0, 0.0, 10.0);
  int Y = P.addVar(1.0, 0.0, 10.0);
  P.addGE({{X, 1.0}, {Y, 1.0}}, 2.0);
  P.addEQ({{X, 1.0}, {Y, -1.0}}, 1.0);

  LPResult R = solveLP(P);
  ASSERT_EQ(R.Status, SolveStatus::Optimal);
  EXPECT_NEAR(R.Objective, 2.0, 1e-6);
  EXPECT_NEAR(R.X[0], 1.5, 1e-6);
  EXPECT_NEAR(R.X[1], 0.5, 1e-6);
}

TEST(Simplex, DetectsInfeasibility) {
  LPProblem P;
  int X = P.addVar(1.0, 0.0, 1.0);
  P.addGE({{X, 1.0}}, 2.0); // x >= 2 but x <= 1
  LPResult R = solveLP(P);
  EXPECT_EQ(R.Status, SolveStatus::Infeasible);
}

TEST(Simplex, RespectsUpperBounds) {
  // min -x with x in [0, 7]: optimum x = 7.
  LPProblem P;
  int X = P.addVar(-1.0, 0.0, 7.0);
  P.addLE({{X, 1.0}}, 100.0);
  LPResult R = solveLP(P);
  ASSERT_EQ(R.Status, SolveStatus::Optimal);
  EXPECT_NEAR(R.X[0], 7.0, 1e-6);
}

TEST(Simplex, NegativeRHSRows) {
  // min x + y s.t. -x - y <= -3 (i.e. x + y >= 3), bounds [0, 10].
  LPProblem P;
  int X = P.addVar(1.0, 0.0, 10.0);
  int Y = P.addVar(1.0, 0.0, 10.0);
  P.addLE({{X, -1.0}, {Y, -1.0}}, -3.0);
  LPResult R = solveLP(P);
  ASSERT_EQ(R.Status, SolveStatus::Optimal);
  EXPECT_NEAR(R.Objective, 3.0, 1e-6);
}

TEST(ILP, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2, 5a + 4b + 3c <= 8 (binary).
  LPProblem P;
  int A = P.addBinaryVar(-10.0);
  int B = P.addBinaryVar(-6.0);
  int C = P.addBinaryVar(-4.0);
  P.addLE({{A, 1.0}, {B, 1.0}, {C, 1.0}}, 2.0);
  P.addLE({{A, 5.0}, {B, 4.0}, {C, 3.0}}, 8.0);

  // a=1,b=1 would score 16 but weighs 9 > 8; the optimum is a=1,c=1.
  ILPResult R = solveILP(P, {A, B, C});
  ASSERT_EQ(R.Status, SolveStatus::Optimal);
  EXPECT_NEAR(R.Objective, -14.0, 1e-6);
  EXPECT_NEAR(R.X[0], 1.0, 1e-6);
  EXPECT_NEAR(R.X[1], 0.0, 1e-6);
  EXPECT_NEAR(R.X[2], 1.0, 1e-6);
}

TEST(ILP, InfeasibleBinaryProblem) {
  LPProblem P;
  int A = P.addBinaryVar(1.0);
  int B = P.addBinaryVar(1.0);
  P.addGE({{A, 1.0}, {B, 1.0}}, 3.0); // two binaries cannot sum to 3
  ILPResult R = solveILP(P, {A, B});
  EXPECT_EQ(R.Status, SolveStatus::Infeasible);
}

TEST(ILP, HintSeedsIncumbentAndReducesWork) {
  // An assignment-style problem where the hint is optimal.
  LPProblem P;
  std::vector<int> Vars;
  // 4 items x 4 slots, one slot per item, one item per slot.
  double Costs[4][4] = {{1, 9, 9, 9}, {9, 1, 9, 9}, {9, 9, 1, 9},
                        {9, 9, 9, 1}};
  for (int I = 0; I < 4; ++I)
    for (int J = 0; J < 4; ++J)
      Vars.push_back(P.addBinaryVar(Costs[I][J]));
  for (int I = 0; I < 4; ++I) {
    std::vector<std::pair<int, double>> Row, Col;
    for (int J = 0; J < 4; ++J) {
      Row.push_back({I * 4 + J, 1.0});
      Col.push_back({J * 4 + I, 1.0});
    }
    P.addEQ(Row, 1.0);
    P.addEQ(Col, 1.0);
  }

  std::vector<double> Hint(16, 0.0);
  for (int I = 0; I < 4; ++I)
    Hint[static_cast<size_t>(I * 4 + I)] = 1.0;

  ILPOptions Plain;
  ILPResult NoHint = solveILP(P, Vars, Plain);
  ILPOptions Hinted;
  Hinted.Hint = &Hint;
  ILPResult WithHint = solveILP(P, Vars, Hinted);

  ASSERT_EQ(NoHint.Status, SolveStatus::Optimal);
  ASSERT_EQ(WithHint.Status, SolveStatus::Optimal);
  EXPECT_NEAR(NoHint.Objective, 4.0, 1e-6);
  EXPECT_NEAR(WithHint.Objective, 4.0, 1e-6);
  EXPECT_LE(WithHint.Pivots, NoHint.Pivots);
}

/// Random binary ILPs cross-checked against exhaustive enumeration.
class RandomILP : public ::testing::TestWithParam<int> {};

TEST_P(RandomILP, MatchesEnumeration) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  int NumVars = static_cast<int>(Rng.range(3, 10));
  int NumCons = static_cast<int>(Rng.range(1, 6));

  LPProblem P;
  std::vector<int> Vars;
  for (int J = 0; J < NumVars; ++J)
    Vars.push_back(
        P.addBinaryVar(static_cast<double>(Rng.range(-10, 10))));
  for (int I = 0; I < NumCons; ++I) {
    std::vector<std::pair<int, double>> Terms;
    for (int J = 0; J < NumVars; ++J)
      if (Rng.chance(2, 3))
        Terms.push_back({J, static_cast<double>(Rng.range(-5, 5))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    double RHS = static_cast<double>(Rng.range(-6, 10));
    int Sense = static_cast<int>(Rng.below(3));
    if (Sense == 0)
      P.addLE(Terms, RHS);
    else if (Sense == 1)
      P.addGE(Terms, RHS);
    else
      P.addEQ(Terms, RHS); // equalities are often infeasible; that's fine
  }

  ILPResult BB = solveILP(P, Vars);
  ILPResult Enum = solveBinaryByEnumeration(P, Vars);

  ASSERT_EQ(BB.Status == SolveStatus::Infeasible,
            Enum.Status == SolveStatus::Infeasible)
      << "branch-and-bound and enumeration disagree on feasibility";
  if (Enum.Status == SolveStatus::Optimal) {
    ASSERT_EQ(BB.Status, SolveStatus::Optimal);
    EXPECT_NEAR(BB.Objective, Enum.Objective, 1e-6);
    EXPECT_TRUE(isFeasible(P, BB.X));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomILP, ::testing::Range(0, 40));

/// Random LPs: the simplex result must be feasible and never worse than a
/// sampled feasible point (sanity optimality check).
class RandomLP : public ::testing::TestWithParam<int> {};

TEST_P(RandomLP, FeasibleAndDominatesSamples) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  int NumVars = static_cast<int>(Rng.range(2, 8));
  int NumCons = static_cast<int>(Rng.range(1, 5));

  LPProblem P;
  for (int J = 0; J < NumVars; ++J)
    P.addVar(static_cast<double>(Rng.range(-9, 9)), 0.0,
             static_cast<double>(Rng.range(1, 10)));
  for (int I = 0; I < NumCons; ++I) {
    std::vector<std::pair<int, double>> Terms;
    for (int J = 0; J < NumVars; ++J)
      if (Rng.chance(3, 4))
        Terms.push_back({J, static_cast<double>(Rng.range(-4, 6))});
    if (Terms.empty())
      Terms.push_back({0, 1.0});
    // Keep RHS generous so most instances are feasible.
    P.addLE(Terms, static_cast<double>(Rng.range(5, 40)));
  }

  LPResult R = solveLP(P);
  if (R.Status != SolveStatus::Optimal)
    return; // infeasible random instance: nothing to check
  EXPECT_TRUE(isFeasible(P, R.X, 1e-5));

  // No sampled feasible point may beat the reported optimum.
  for (int S = 0; S < 200; ++S) {
    std::vector<double> X(static_cast<size_t>(NumVars));
    for (int J = 0; J < NumVars; ++J)
      X[static_cast<size_t>(J)] =
          Rng.unitReal() * P.Upper[static_cast<size_t>(J)];
    if (!isFeasible(P, X, 1e-9))
      continue;
    EXPECT_GE(objectiveValue(P, X), R.Objective - 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLP, ::testing::Range(0, 40));

} // namespace
