//===- tests/ToolTest.cpp - the uccc CLI end to end -----------------------===//
//
// Shells out to the real `uccc` binary (path injected by CMake) and walks
// the full sink-to-sensor flow on disk: compile, update, patch, run, diff.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef UCC_TOOL_PATH
#define UCC_TOOL_PATH "uccc"
#endif

/// A scratch directory for one test.
class ToolFixture : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/uccc-test-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    std::system(("rm -rf " + Dir).c_str());
  }

  std::string path(const std::string &Name) const {
    return Dir + "/" + Name;
  }

  void writeFile(const std::string &Name, const std::string &Text) const {
    std::ofstream Out(path(Name));
    Out << Text;
  }

  std::string readFile(const std::string &Name) const {
    std::ifstream In(path(Name), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  /// Runs `uccc <ArgsLine>`; stdout/stderr go to a capture file. Returns
  /// the exit code.
  int uccc(const std::string &ArgsLine) const {
    std::string Cmd = std::string(UCC_TOOL_PATH) + " " + ArgsLine + " > " +
                      path("out.txt") + " 2>&1";
    int Status = std::system(Cmd.c_str());
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  std::string capturedOutput() const { return readFile("out.txt"); }

  std::string Dir;
};

const char *SourceV1 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i; }
  __out(15, total);
  __halt();
}
)";

const char *SourceV2 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i * 2; }
  __out(15, total);
  __halt();
}
)";

TEST_F(ToolFixture, CompileRunFlow) {
  writeFile("app.mc", SourceV1);
  ASSERT_EQ(uccc("compile " + path("app.mc") + " -o " + path("app.img") +
                 " --record " + path("app.rec")),
            0)
      << capturedOutput();
  EXPECT_FALSE(readFile("app.img").empty());
  EXPECT_FALSE(readFile("app.rec").empty());

  ASSERT_EQ(uccc("run " + path("app.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 15"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, UpdatePatchFlowReproducesFreshImage) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img") +
                 " --script " + path("up.pkg")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("patch " + path("v1.img") + " " + path("up.pkg") + " -o " +
                 path("patched.img")),
            0)
      << capturedOutput();
  EXPECT_EQ(readFile("patched.img"), readFile("v2.img"))
      << "the patched image must be byte-identical to the fresh build";

  ASSERT_EQ(uccc("run " + path("patched.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 30"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, DiffAndDisassembleReport) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img")),
            0);
  ASSERT_EQ(uccc("diff " + path("v1.img") + " " + path("v2.img")), 0);
  EXPECT_NE(capturedOutput().find("total Diff_inst:"), std::string::npos);

  ASSERT_EQ(uccc("dis " + path("v1.img")), 0);
  EXPECT_NE(capturedOutput().find("main:"), std::string::npos);
  EXPECT_NE(capturedOutput().find("halt"), std::string::npos);
}

TEST_F(ToolFixture, RejectsBrokenInputs) {
  writeFile("bad.mc", "void main() { int x = ; }");
  EXPECT_NE(uccc("compile " + path("bad.mc") + " -o " + path("bad.img")),
            0);
  EXPECT_NE(capturedOutput().find("error"), std::string::npos);

  writeFile("garbage.img", "this is not an image");
  EXPECT_NE(uccc("run " + path("garbage.img")), 0);
  EXPECT_NE(uccc("dis " + path("garbage.img")), 0);
}

TEST_F(ToolFixture, BaselineFlagProducesBiggerScript) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("a.img") +
                 " --script " + path("ucc.pkg")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("b.img") +
                 " --script " + path("base.pkg") + " --baseline"),
            0);
  EXPECT_LE(readFile("ucc.pkg").size(), readFile("base.pkg").size());
}

} // namespace
