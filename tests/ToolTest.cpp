//===- tests/ToolTest.cpp - the uccc CLI end to end -----------------------===//
//
// Shells out to the real `uccc` binary (path injected by CMake) and walks
// the full sink-to-sensor flow on disk: compile, update, patch, run, diff.
//
//===----------------------------------------------------------------------===//

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef UCC_TOOL_PATH
#define UCC_TOOL_PATH "uccc"
#endif

/// A scratch directory for one test.
class ToolFixture : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/uccc-test-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    std::system(("rm -rf " + Dir).c_str());
  }

  std::string path(const std::string &Name) const {
    return Dir + "/" + Name;
  }

  void writeFile(const std::string &Name, const std::string &Text) const {
    std::ofstream Out(path(Name));
    Out << Text;
  }

  std::string readFile(const std::string &Name) const {
    std::ifstream In(path(Name), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  /// Runs `uccc <ArgsLine>`; stdout/stderr go to a capture file. Returns
  /// the exit code.
  int uccc(const std::string &ArgsLine) const {
    std::string Cmd = std::string(UCC_TOOL_PATH) + " " + ArgsLine + " > " +
                      path("out.txt") + " 2>&1";
    int Status = std::system(Cmd.c_str());
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  std::string capturedOutput() const { return readFile("out.txt"); }

  std::string Dir;
};

const char *SourceV1 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i; }
  __out(15, total);
  __halt();
}
)";

const char *SourceV2 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i * 2; }
  __out(15, total);
  __halt();
}
)";

TEST_F(ToolFixture, CompileRunFlow) {
  writeFile("app.mc", SourceV1);
  ASSERT_EQ(uccc("compile " + path("app.mc") + " -o " + path("app.img") +
                 " --record " + path("app.rec")),
            0)
      << capturedOutput();
  EXPECT_FALSE(readFile("app.img").empty());
  EXPECT_FALSE(readFile("app.rec").empty());

  ASSERT_EQ(uccc("run " + path("app.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 15"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, UpdatePatchFlowReproducesFreshImage) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img") +
                 " --script " + path("up.pkg")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("patch " + path("v1.img") + " " + path("up.pkg") + " -o " +
                 path("patched.img")),
            0)
      << capturedOutput();
  EXPECT_EQ(readFile("patched.img"), readFile("v2.img"))
      << "the patched image must be byte-identical to the fresh build";

  ASSERT_EQ(uccc("run " + path("patched.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 30"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, DiffAndDisassembleReport) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img")),
            0);
  ASSERT_EQ(uccc("diff " + path("v1.img") + " " + path("v2.img")), 0);
  EXPECT_NE(capturedOutput().find("total Diff_inst:"), std::string::npos);

  ASSERT_EQ(uccc("dis " + path("v1.img")), 0);
  EXPECT_NE(capturedOutput().find("main:"), std::string::npos);
  EXPECT_NE(capturedOutput().find("halt"), std::string::npos);
}

TEST_F(ToolFixture, TraceJsonEmitsTheDocumentedSchema) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec") + " --trace-json " +
                 path("compile.json")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img") +
                 " --trace-json " + path("update.json")),
            0)
      << capturedOutput();

  // The compile trace: a "compile" span with the per-phase children.
  auto CompileDoc = testjson::parse(readFile("compile.json"));
  ASSERT_TRUE(CompileDoc.has_value()) << readFile("compile.json");
  ASSERT_EQ(CompileDoc->get("version")->Num, 1.0);
  const testjson::Value *Spans = CompileDoc->get("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->Arr.size(), 1u);
  const testjson::Value &Compile = *Spans->Arr[0];
  EXPECT_EQ(Compile.get("name")->Str, "compile");
  const testjson::Value *Children = Compile.get("children");
  ASSERT_NE(Children, nullptr);
  for (const char *Phase : {"parse", "opt", "isel", "ra", "da", "encode"}) {
    bool Found = false;
    for (const auto &C : Children->Arr)
      Found |= C->get("name")->Str == Phase;
    EXPECT_TRUE(Found) << "missing phase span: " << Phase;
  }

  // The update trace: "recompile" + "diff" spans, the declared solver
  // counters (zero here — greedy strategy), and edit-script byte counts.
  auto UpdateDoc = testjson::parse(readFile("update.json"));
  ASSERT_TRUE(UpdateDoc.has_value()) << readFile("update.json");
  const testjson::Value *USpans = UpdateDoc->get("spans");
  ASSERT_NE(USpans, nullptr);
  bool SawRecompile = false, SawDiff = false;
  for (const auto &S : USpans->Arr) {
    SawRecompile |= S->get("name")->Str == "recompile";
    SawDiff |= S->get("name")->Str == "diff";
  }
  EXPECT_TRUE(SawRecompile);
  EXPECT_TRUE(SawDiff);

  const testjson::Value *Counters = UpdateDoc->get("counters");
  ASSERT_NE(Counters, nullptr);
  for (const char *Key :
       {"lp.pivots", "lp.bb_nodes", "ra.pref_honored", "ra.pref_broken",
        "diff.script_bytes", "diff.bytes.insert", "diff.bytes.replace"})
    EXPECT_NE(Counters->get(Key), nullptr) << "missing counter: " << Key;
  EXPECT_GT(Counters->get("diff.script_bytes")->Num, 0.0);
  EXPECT_GT(Counters->get("ra.pref_honored")->Num, 0.0);

  // --stats prints the human-readable summary without disturbing output.
  ASSERT_EQ(uccc("diff " + path("v1.img") + " " + path("v2.img") +
                 " --stats"),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("--- telemetry ---"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, TraceJsonCapturesIlpSolverWork) {
  // Straight-line sources: the ILP engine only takes single-block
  // functions, and the default model budget (400 binaries) is too small
  // even for these — hence --ilp-max-binaries.
  writeFile("s1.mc", R"(
int a; int b; int c;
void main() {
  a = 3; b = a + 4; c = a + b;
  __out(15, c);
  __halt();
}
)");
  writeFile("s2.mc", R"(
int a; int b; int c;
void main() {
  a = 3; b = a + 9; c = a + b;
  __out(15, c);
  __halt();
}
)");
  ASSERT_EQ(uccc("compile " + path("s1.mc") + " -o " + path("s1.img") +
                 " --record " + path("s1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("s2.mc") + " --record " + path("s1.rec") +
                 " --image " + path("s1.img") + " -o " + path("s2.img") +
                 " --strategy ilp --ilp-max-binaries 4000 --trace-json " +
                 path("ilp.json")),
            0)
      << capturedOutput();

  auto Doc = testjson::parse(readFile("ilp.json"));
  ASSERT_TRUE(Doc.has_value()) << readFile("ilp.json");
  const testjson::Value *Counters = Doc->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GT(Counters->get("ra.ilp_windows")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.ilp_solves")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.bb_nodes")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.pivots")->Num, 0.0);
  const testjson::Value *Gauges = Doc->get("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_NE(Gauges->get("lp.ilp_seconds"), nullptr);
}

TEST_F(ToolFixture, RejectsBrokenInputs) {
  writeFile("bad.mc", "void main() { int x = ; }");
  EXPECT_NE(uccc("compile " + path("bad.mc") + " -o " + path("bad.img")),
            0);
  EXPECT_NE(capturedOutput().find("error"), std::string::npos);

  writeFile("garbage.img", "this is not an image");
  EXPECT_NE(uccc("run " + path("garbage.img")), 0);
  EXPECT_NE(uccc("dis " + path("garbage.img")), 0);
}

TEST_F(ToolFixture, BaselineFlagProducesBiggerScript) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("a.img") +
                 " --script " + path("ucc.pkg")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("b.img") +
                 " --script " + path("base.pkg") + " --baseline"),
            0);
  EXPECT_LE(readFile("ucc.pkg").size(), readFile("base.pkg").size());
}

} // namespace
