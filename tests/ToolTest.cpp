//===- tests/ToolTest.cpp - the uccc CLI end to end -----------------------===//
//
// Shells out to the real `uccc` binary (path injected by CMake) and walks
// the full sink-to-sensor flow on disk: compile, update, patch, run, diff.
//
//===----------------------------------------------------------------------===//

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

#ifndef UCC_TOOL_PATH
#define UCC_TOOL_PATH "uccc"
#endif

/// A scratch directory for one test.
class ToolFixture : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/uccc-test-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override {
    std::system(("rm -rf " + Dir).c_str());
  }

  std::string path(const std::string &Name) const {
    return Dir + "/" + Name;
  }

  void writeFile(const std::string &Name, const std::string &Text) const {
    std::ofstream Out(path(Name));
    Out << Text;
  }

  std::string readFile(const std::string &Name) const {
    std::ifstream In(path(Name), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  /// Runs `uccc <ArgsLine>`; stdout/stderr go to a capture file. Returns
  /// the exit code.
  int uccc(const std::string &ArgsLine) const {
    std::string Cmd = std::string(UCC_TOOL_PATH) + " " + ArgsLine + " > " +
                      path("out.txt") + " 2>&1";
    int Status = std::system(Cmd.c_str());
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  std::string capturedOutput() const { return readFile("out.txt"); }

  std::string Dir;
};

const char *SourceV1 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i; }
  __out(15, total);
  __halt();
}
)";

const char *SourceV2 = R"(
int total;
void main() {
  int i;
  for (i = 1; i <= 5; i = i + 1) { total = total + i * 2; }
  __out(15, total);
  __halt();
}
)";

TEST_F(ToolFixture, CompileRunFlow) {
  writeFile("app.mc", SourceV1);
  ASSERT_EQ(uccc("compile " + path("app.mc") + " -o " + path("app.img") +
                 " --record " + path("app.rec")),
            0)
      << capturedOutput();
  EXPECT_FALSE(readFile("app.img").empty());
  EXPECT_FALSE(readFile("app.rec").empty());

  ASSERT_EQ(uccc("run " + path("app.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 15"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, UpdatePatchFlowReproducesFreshImage) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img") +
                 " --script " + path("up.pkg")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("patch " + path("v1.img") + " " + path("up.pkg") + " -o " +
                 path("patched.img")),
            0)
      << capturedOutput();
  EXPECT_EQ(readFile("patched.img"), readFile("v2.img"))
      << "the patched image must be byte-identical to the fresh build";

  ASSERT_EQ(uccc("run " + path("patched.img")), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("debug: 30"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, DiffAndDisassembleReport) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img")),
            0);
  ASSERT_EQ(uccc("diff " + path("v1.img") + " " + path("v2.img")), 0);
  EXPECT_NE(capturedOutput().find("total Diff_inst:"), std::string::npos);

  ASSERT_EQ(uccc("dis " + path("v1.img")), 0);
  EXPECT_NE(capturedOutput().find("main:"), std::string::npos);
  EXPECT_NE(capturedOutput().find("halt"), std::string::npos);
}

TEST_F(ToolFixture, TraceJsonEmitsTheDocumentedSchema) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec") + " --trace-json " +
                 path("compile.json")),
            0)
      << capturedOutput();
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("v2.img") +
                 " --trace-json " + path("update.json")),
            0)
      << capturedOutput();

  // The compile trace: a "compile" span with the per-phase children.
  auto CompileDoc = testjson::parse(readFile("compile.json"));
  ASSERT_TRUE(CompileDoc.has_value()) << readFile("compile.json");
  ASSERT_EQ(CompileDoc->get("version")->Num, 1.0);
  const testjson::Value *Spans = CompileDoc->get("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->Arr.size(), 1u);
  const testjson::Value &Compile = *Spans->Arr[0];
  EXPECT_EQ(Compile.get("name")->Str, "compile");
  const testjson::Value *Children = Compile.get("children");
  ASSERT_NE(Children, nullptr);
  for (const char *Phase : {"parse", "opt", "isel", "ra", "da", "encode"}) {
    bool Found = false;
    for (const auto &C : Children->Arr)
      Found |= C->get("name")->Str == Phase;
    EXPECT_TRUE(Found) << "missing phase span: " << Phase;
  }

  // The update trace: "recompile" + "diff" spans, the declared solver
  // counters (zero here — greedy strategy), and edit-script byte counts.
  auto UpdateDoc = testjson::parse(readFile("update.json"));
  ASSERT_TRUE(UpdateDoc.has_value()) << readFile("update.json");
  const testjson::Value *USpans = UpdateDoc->get("spans");
  ASSERT_NE(USpans, nullptr);
  bool SawRecompile = false, SawDiff = false;
  for (const auto &S : USpans->Arr) {
    SawRecompile |= S->get("name")->Str == "recompile";
    SawDiff |= S->get("name")->Str == "diff";
  }
  EXPECT_TRUE(SawRecompile);
  EXPECT_TRUE(SawDiff);

  const testjson::Value *Counters = UpdateDoc->get("counters");
  ASSERT_NE(Counters, nullptr);
  for (const char *Key :
       {"lp.pivots", "lp.bb_nodes", "ra.pref_honored", "ra.pref_broken",
        "diff.script_bytes", "diff.bytes.insert", "diff.bytes.replace"})
    EXPECT_NE(Counters->get(Key), nullptr) << "missing counter: " << Key;
  EXPECT_GT(Counters->get("diff.script_bytes")->Num, 0.0);
  EXPECT_GT(Counters->get("ra.pref_honored")->Num, 0.0);

  // --stats prints the human-readable summary without disturbing output.
  ASSERT_EQ(uccc("diff " + path("v1.img") + " " + path("v2.img") +
                 " --stats"),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("--- telemetry ---"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, TraceJsonCapturesIlpSolverWork) {
  // Straight-line sources: the ILP engine only takes single-block
  // functions, and the default model budget (400 binaries) is too small
  // even for these — hence --ilp-max-binaries.
  writeFile("s1.mc", R"(
int a; int b; int c;
void main() {
  a = 3; b = a + 4; c = a + b;
  __out(15, c);
  __halt();
}
)");
  writeFile("s2.mc", R"(
int a; int b; int c;
void main() {
  a = 3; b = a + 9; c = a + b;
  __out(15, c);
  __halt();
}
)");
  ASSERT_EQ(uccc("compile " + path("s1.mc") + " -o " + path("s1.img") +
                 " --record " + path("s1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("s2.mc") + " --record " + path("s1.rec") +
                 " --image " + path("s1.img") + " -o " + path("s2.img") +
                 " --strategy ilp --ilp-max-binaries 4000 --trace-json " +
                 path("ilp.json")),
            0)
      << capturedOutput();

  auto Doc = testjson::parse(readFile("ilp.json"));
  ASSERT_TRUE(Doc.has_value()) << readFile("ilp.json");
  const testjson::Value *Counters = Doc->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_GT(Counters->get("ra.ilp_windows")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.ilp_solves")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.bb_nodes")->Num, 0.0);
  EXPECT_GT(Counters->get("lp.pivots")->Num, 0.0);
  const testjson::Value *Gauges = Doc->get("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_NE(Gauges->get("lp.ilp_seconds"), nullptr);
}

TEST_F(ToolFixture, RejectsBrokenInputs) {
  writeFile("bad.mc", "void main() { int x = ; }");
  EXPECT_NE(uccc("compile " + path("bad.mc") + " -o " + path("bad.img")),
            0);
  EXPECT_NE(capturedOutput().find("error"), std::string::npos);

  writeFile("garbage.img", "this is not an image");
  EXPECT_NE(uccc("run " + path("garbage.img")), 0);
  EXPECT_NE(uccc("dis " + path("garbage.img")), 0);
}

TEST_F(ToolFixture, BaselineFlagProducesBiggerScript) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  ASSERT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --record " + path("v1.rec")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("a.img") +
                 " --script " + path("ucc.pkg")),
            0);
  ASSERT_EQ(uccc("update " + path("v2.mc") + " --record " + path("v1.rec") +
                 " --image " + path("v1.img") + " -o " + path("b.img") +
                 " --script " + path("base.pkg") + " --baseline"),
            0);
  EXPECT_LE(readFile("ucc.pkg").size(), readFile("base.pkg").size());
}

TEST_F(ToolFixture, CliUsageErrorsExitTwoWithAMessage) {
  writeFile("v1.mc", SourceV1);

  // Unknown command.
  EXPECT_EQ(uccc("frobnicate"), 2);
  EXPECT_NE(capturedOutput().find("unknown command"), std::string::npos)
      << capturedOutput();

  // Unknown flag — must be rejected, not silently ignored.
  EXPECT_EQ(uccc("compile " + path("v1.mc") + " -o " + path("v1.img") +
                 " --bogus-flag"),
            2);
  EXPECT_NE(capturedOutput().find("unknown argument '--bogus-flag'"),
            std::string::npos)
      << capturedOutput();

  // A value flag at the end of the line has no value.
  EXPECT_EQ(uccc("compile " + path("v1.mc") + " -o"), 2);
  EXPECT_NE(capturedOutput().find("option '-o' expects a value"),
            std::string::npos)
      << capturedOutput();

  // Malformed numbers are diagnosed instead of atoi'd to zero.
  writeFile("dummy.img", "x");
  EXPECT_EQ(uccc("run " + path("dummy.img") + " --steps banana"), 2);
  EXPECT_NE(capturedOutput().find("--steps expects an integer"),
            std::string::npos)
      << capturedOutput();

  // A stray positional is rejected too.
  EXPECT_EQ(uccc("compile " + path("v1.mc") + " extra.mc -o " +
                 path("v1.img")),
            2);
  EXPECT_NE(capturedOutput().find("unknown argument"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, RecordLoadFailureIsDiagnosed) {
  writeFile("v2.mc", SourceV2);
  writeFile("broken.rec", "not a record at all");
  writeFile("v1.img", "x");
  EXPECT_EQ(uccc("update " + path("v2.mc") + " --record " +
                 path("broken.rec") + " --image " + path("v1.img") +
                 " -o " + path("out.img")),
            1);
  EXPECT_NE(capturedOutput().find("not a valid compilation record"),
            std::string::npos)
      << capturedOutput();

  EXPECT_EQ(uccc("update " + path("v2.mc") + " --record " +
                 path("missing.rec") + " --image " + path("v1.img") +
                 " -o " + path("out.img")),
            1);
  EXPECT_NE(capturedOutput().find("cannot open"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, StoreWorkflowCommitHistoryPlanCampaign) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");

  // Three commits: v0 (initial), v1, v2 (back to the old source).
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("committed v0"), std::string::npos);
  ASSERT_EQ(uccc("commit " + path("v2.mc") + Store), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("committed v1"), std::string::npos);
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("committed v2"), std::string::npos);

  // The artifacts live on disk.
  EXPECT_FALSE(readFile("store/manifest.json").empty());
  EXPECT_FALSE(readFile("store/v2.img").empty());
  EXPECT_FALSE(readFile("store/v2.rec").empty());

  ASSERT_EQ(uccc("history" + Store), 0) << capturedOutput();
  EXPECT_NE(capturedOutput().find("3 version(s)"), std::string::npos)
      << capturedOutput();

  // Plan across the whole chain and write the package; it must patch v0's
  // stored image to v2's, byte for byte.
  ASSERT_EQ(uccc("plan" + Store + " --from 0 --to 2 -o " +
                 path("plan.pkg")),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("direct diff:"), std::string::npos);
  EXPECT_NE(capturedOutput().find("composed route:"), std::string::npos);
  ASSERT_EQ(uccc("patch " + path("store/v0.img") + " " + path("plan.pkg") +
                 " -o " + path("patched.img")),
            0)
      << capturedOutput();
  EXPECT_EQ(readFile("patched.img"), readFile("store/v2.img"));

  // A campaign over a mixed-version line fleet reports per-cohort floods.
  ASSERT_EQ(uccc("campaign" + Store +
                 " --target 2 --deployed 2,0,0,1,1,2 --loss 0.1"),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("cohort v0"), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("cohort v1"), std::string::npos);
  EXPECT_NE(capturedOutput().find("4 node(s) updated, 1 already current"),
            std::string::npos)
      << capturedOutput();

  // Planning to a downgrade target works too: the rollback composes
  // through the version graph and competes with the direct diff.
  ASSERT_EQ(uccc("plan" + Store + " --from 2 --to 0"), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("composed route: "), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("(2 steps)"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, StoreCliDiagnostics) {
  writeFile("v1.mc", SourceV1);
  // --store is required.
  EXPECT_EQ(uccc("history"), 2);
  EXPECT_NE(capturedOutput().find("requires --store"), std::string::npos)
      << capturedOutput();

  // Planning in an empty store is an operational error.
  EXPECT_EQ(uccc("plan --store " + path("empty") + " --from 0 --to 1"), 1);
  EXPECT_NE(capturedOutput().find("cannot plan"), std::string::npos)
      << capturedOutput();

  // --parent on the very first commit is meaningless.
  EXPECT_EQ(uccc("commit " + path("v1.mc") + " --store " + path("fresh") +
                 " --parent 0"),
            2);
  EXPECT_NE(capturedOutput().find("initial commit"), std::string::npos)
      << capturedOutput();

  // A corrupt manifest is reported, not crashed on.
  ASSERT_EQ(uccc("commit " + path("v1.mc") + " --store " + path("store")),
            0);
  writeFile("store/manifest.json", "{ broken");
  EXPECT_EQ(uccc("history --store " + path("store")), 1);
  EXPECT_NE(capturedOutput().find("cannot open version store"),
            std::string::npos)
      << capturedOutput();

  // Campaign argument validation: deployed list must match the topology.
  EXPECT_EQ(uccc("campaign --store " + path("store") +
                 " --target 0 --deployed 0,0 --topology line:5"),
            2);
  EXPECT_NE(capturedOutput().find("2 versions but the topology has 5"),
            std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, BatchPlanAndServeBenchFlow) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();
  ASSERT_EQ(uccc("commit " + path("v2.mc") + Store), 0) << capturedOutput();
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();

  // Batch planning dedupes the repeated pair and reports one cache hit is
  // not needed: the duplicate never reaches the planner at all.
  ASSERT_EQ(uccc("plan" + Store + " --batch 0:2,1:2,0:2"), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("3 request(s)"), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("2 planned"), std::string::npos);
  EXPECT_NE(capturedOutput().find("1 deduped"), std::string::npos);

  // The serving benchmark runs against the same store and reports
  // throughput plus the service's cache accounting.
  ASSERT_EQ(uccc("serve-bench" + Store + " --requests 50 --warm"), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("plans/sec"), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("hits "), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("misses "), std::string::npos);
}

TEST_F(ToolFixture, BatchPlanAndServeBenchDiagnostics) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();

  // Usage errors (exit 2): malformed batch specs, mixing --batch with the
  // single-pair flags, and --cache outside batch mode.
  EXPECT_EQ(uccc("plan" + Store + " --batch 0:zz"), 2);
  EXPECT_NE(capturedOutput().find("--batch"), std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("plan" + Store + " --batch 0:1 --from 0"), 2);
  EXPECT_EQ(uccc("plan" + Store + " --cache 4 --from 0 --to 1"), 2);
  EXPECT_NE(capturedOutput().find("--cache requires --batch"),
            std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("serve-bench" + Store + " --requests -2"), 2);
  EXPECT_EQ(uccc("serve-bench --requests 50"), 2);
  EXPECT_NE(capturedOutput().find("requires --store"), std::string::npos)
      << capturedOutput();

  // Operational errors (exit 1): a store too small to serve from, and a
  // batch that names a version the store does not have.
  EXPECT_EQ(uccc("serve-bench" + Store), 1);
  EXPECT_NE(capturedOutput().find("at least two versions"), std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("plan" + Store + " --batch 0:9"), 1);
}

TEST_F(ToolFixture, ServeBenchMetricsFileAndMonitorConsole) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();
  ASSERT_EQ(uccc("commit " + path("v2.mc") + Store), 0) << capturedOutput();
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();

  std::string Metrics = path("metrics.jsonl");
  ASSERT_EQ(uccc("serve-bench" + Store + " --requests 60 --warm --metrics " +
                 Metrics + " --metrics-every 20"),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("p99 "), std::string::npos)
      << capturedOutput();

  // The JSONL file: a baseline sample plus periodic + final samples, each
  // line a self-contained snapshot; the last one carries the whole run.
  std::ifstream In(Metrics);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Lines;
  for (std::string L; std::getline(In, L);)
    if (!L.empty())
      Lines.push_back(L);
  ASSERT_GE(Lines.size(), 3u) << readFile("metrics.jsonl");
  for (const std::string &L : Lines)
    EXPECT_TRUE(testjson::parse(L).has_value()) << L;
  auto Last = testjson::parse(Lines.back());
  ASSERT_TRUE(Last.has_value());
  ASSERT_NE(Last->get("counters"), nullptr);
  EXPECT_GE(Last->get("counters")->get("serve.plans")->Num, 60.0);
  ASSERT_NE(Last->get("gauges"), nullptr);
  ASSERT_NE(Last->get("gauges")->get("serve.p99_us"), nullptr);
  EXPECT_GT(Last->get("gauges")->get("serve.p99_us")->Num, 0.0);
  ASSERT_NE(Last->get("rates"), nullptr);

  // The console renders the same file, one-shot and via the polling loop
  // (which exits cleanly after two idle polls).
  ASSERT_EQ(uccc("monitor --metrics " + Metrics + " --once"), 0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("plans/sec"), std::string::npos)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("hit rate"), std::string::npos);
  EXPECT_NE(capturedOutput().find("p99"), std::string::npos);
  ASSERT_EQ(uccc("monitor --metrics " + Metrics +
                 " --interval-ms 10 --idle-exit 2"),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("plans/sec"), std::string::npos)
      << capturedOutput();
}

TEST_F(ToolFixture, ServeBenchFlightRecorderDumpsOnSloBreach) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();
  ASSERT_EQ(uccc("commit " + path("v2.mc") + Store), 0) << capturedOutput();

  // A sub-nanosecond p99 budget: every observation breaches, so the
  // recorder must dump the event ring as a loadable Chrome trace.
  std::string Flight = path("flight.json");
  ASSERT_EQ(uccc("serve-bench" + Store +
                 " --requests 20 --slo-p99-us 0.001 --flight-record " +
                 Flight),
            0)
      << capturedOutput();
  EXPECT_NE(capturedOutput().find("SLO"), std::string::npos)
      << "the breach must be logged: " << capturedOutput();
  std::string Trace = readFile("flight.json");
  ASSERT_FALSE(Trace.empty());
  auto Doc = testjson::parse(Trace);
  ASSERT_TRUE(Doc.has_value()) << Trace;
  EXPECT_NE(Doc->get("traceEvents"), nullptr);
}

TEST_F(ToolFixture, ServeBenchTracedBatchCrossesWorkerTracks) {
  writeFile("v1.mc", SourceV1);
  writeFile("v2.mc", SourceV2);
  std::string Store = " --store " + path("store");
  // Six versions so each batch dedupes to several unique pairs and the
  // fan-out genuinely spreads across the pool.
  for (int K = 0; K < 6; ++K)
    ASSERT_EQ(uccc("commit " + path(K % 2 ? "v2.mc" : "v1.mc") + Store), 0)
        << capturedOutput();

  // The acceptance shape: a traced batched run whose per-request spans
  // ride flow arrows from the pipeline track onto worker tracks. Items
  // are handed out by an atomic counter, so a heavily loaded machine can
  // let the caller thread drain a whole batch before the spawned workers
  // are scheduled — retry a few independent runs before calling the
  // >=2-track assertion failed.
  std::string Trace = path("events.json");
  std::string Text;
  std::set<double> FlowStartIds, FlowEndIds, EndTids, WorkerLabelTids;
  bool SawBatchSpan = false, SawPlanTraceArg = false;
  for (int Attempt = 0; Attempt < 5 && EndTids.size() < 2; ++Attempt) {
    FlowStartIds.clear();
    FlowEndIds.clear();
    EndTids.clear();
    WorkerLabelTids.clear();
    SawBatchSpan = SawPlanTraceArg = false;
    ASSERT_EQ(uccc("serve-bench" + Store +
                   " --requests 64 --batch 16 --jobs 4 --trace-events " +
                   Trace),
              0)
        << capturedOutput();
    Text = readFile("events.json");
    auto Doc = testjson::parse(Text);
    ASSERT_TRUE(Doc.has_value());
    const testjson::Value *Events = Doc->get("traceEvents");
    ASSERT_NE(Events, nullptr);
    for (const auto &E : Events->Arr) {
      const std::string &Ph = E->get("ph")->Str;
      const std::string &Name = E->get("name")->Str;
      if (Ph == "s")
        FlowStartIds.insert(E->get("id")->Num);
      if (Ph == "f") {
        FlowEndIds.insert(E->get("id")->Num);
        EndTids.insert(E->get("tid")->Num);
      }
      if (Name == "serve.batch" && Ph == "B")
        SawBatchSpan = true;
      if (Name == "serve.plan" && Ph == "B") {
        const testjson::Value *Args = E->get("args");
        if (Args && Args->get("trace"))
          SawPlanTraceArg = true;
      }
      if (Name == "thread_name" && Ph == "M") {
        const testjson::Value *Args = E->get("args");
        const testjson::Value *Tid = E->get("tid");
        if (Tid && Args && Args->get("name") &&
            Args->get("name")->Str.rfind("worker ", 0) == 0)
          WorkerLabelTids.insert(Tid->Num);
      }
    }
  }
  EXPECT_TRUE(SawBatchSpan) << Text.substr(0, 2000);
  EXPECT_TRUE(SawPlanTraceArg)
      << "per-request spans must carry the batch's trace id";
  EXPECT_FALSE(FlowStartIds.empty());
  EXPECT_EQ(FlowStartIds, FlowEndIds) << "every fan-out arrow must land";
  EXPECT_GE(EndTids.size(), 2u)
      << "64 requests over 4 workers must span >=2 worker tracks";
  // Which workers claim items is pure scheduling (under TSan the spawned
  // threads can drain a whole batch before the caller's own Work() call
  // gets a turn), so assert the labeling contract itself: every track a
  // fan-out arrow landed on carries a "worker N" thread_name row.
  for (double Tid : EndTids)
    EXPECT_TRUE(WorkerLabelTids.count(Tid))
        << "worker track " << Tid << " must be labeled for Perfetto";
}

TEST_F(ToolFixture, MonitorAndMetricsFlagDiagnostics) {
  writeFile("v1.mc", SourceV1);
  std::string Store = " --store " + path("store");
  ASSERT_EQ(uccc("commit " + path("v1.mc") + Store), 0) << capturedOutput();

  // Usage errors (exit 2): the observability flags validate before the
  // store is even opened.
  EXPECT_EQ(uccc("monitor"), 2);
  EXPECT_NE(capturedOutput().find("requires --metrics"), std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("monitor --metrics x --once --interval-ms 5"), 2);
  EXPECT_EQ(uccc("serve-bench" + Store + " --metrics-every 10"), 2);
  EXPECT_NE(capturedOutput().find("requires --metrics"), std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("serve-bench" + Store + " --flight-record x.json"), 2);
  EXPECT_NE(capturedOutput().find("requires --slo-p99-us"),
            std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("serve-bench" + Store + " --slo-p99-us 5"), 2);
  EXPECT_NE(capturedOutput().find("requires --flight-record"),
            std::string::npos)
      << capturedOutput();
  EXPECT_EQ(uccc("serve-bench" + Store + " --batch 0"), 2);

  // Operational error (exit 1): a one-shot monitor over a file with no
  // samples.
  writeFile("empty.jsonl", "");
  EXPECT_EQ(uccc("monitor --metrics " + path("empty.jsonl") + " --once"), 1);
  EXPECT_NE(capturedOutput().find("no metrics samples"), std::string::npos)
      << capturedOutput();
}

} // namespace
