//===- tests/DiffTest.cpp - edit scripts and image diffing ----------------===//

#include "diff/EditScript.h"
#include "diff/ImageDiff.h"
#include "support/RNG.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

std::vector<uint32_t> randomWords(RNG &Rng, size_t N) {
  std::vector<uint32_t> Words(N);
  for (uint32_t &W : Words)
    W = static_cast<uint32_t>(Rng.below(64)); // small alphabet: collisions
  return Words;
}

/// Mutates a word sequence with random point edits, insertions, removals.
std::vector<uint32_t> mutate(RNG &Rng, std::vector<uint32_t> Words,
                             int Edits) {
  for (int K = 0; K < Edits; ++K) {
    uint64_t Kind = Rng.below(3);
    if (Words.empty() || Kind == 0) {
      Words.insert(Words.begin() +
                       static_cast<long>(Rng.below(Words.size() + 1)),
                   static_cast<uint32_t>(Rng.below(64)));
    } else if (Kind == 1) {
      Words[Rng.below(Words.size())] = static_cast<uint32_t>(Rng.below(64));
    } else {
      Words.erase(Words.begin() + static_cast<long>(Rng.below(Words.size())));
    }
  }
  return Words;
}

TEST(EditScript, IdenticalSequencesAreOneCopy) {
  std::vector<uint32_t> Words = {1, 2, 3, 4, 5};
  EditScript S = makeEditScript(Words, Words);
  ASSERT_EQ(S.Prims.size(), 1u);
  EXPECT_EQ(S.Prims[0].Op, EditOp::Copy);
  EXPECT_EQ(S.Prims[0].Count, 5u);
  EXPECT_EQ(S.encodedBytes(), 1u);
}

TEST(EditScript, EmptyToFullIsOneInsert) {
  std::vector<uint32_t> New = {7, 8, 9};
  EditScript S = makeEditScript({}, New);
  ASSERT_EQ(S.Prims.size(), 1u);
  EXPECT_EQ(S.Prims[0].Op, EditOp::Insert);
  EXPECT_EQ(S.encodedBytes(), 1u + 3u * 4u);
}

TEST(EditScript, SingleWordChangeIsOneReplace) {
  std::vector<uint32_t> Old = {1, 2, 3, 4, 5};
  std::vector<uint32_t> New = {1, 2, 9, 4, 5};
  EditScript S = makeEditScript(Old, New);
  // copy 2, replace 1, copy 2
  EXPECT_EQ(S.encodedBytes(), 1u + (1u + 4u) + 1u);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);
}

TEST(EditScript, LongRunsSplitAt63) {
  std::vector<uint32_t> Words(200, 42);
  EditScript S = makeEditScript(Words, Words);
  // 200 copies need ceil(200/63) = 4 primitive bytes.
  EXPECT_EQ(S.encodedBytes(), 4u);
  EXPECT_EQ(S.primitiveCount(), 4u);
}

TEST(EditScript, EncodeDecodeRoundTrip) {
  RNG Rng(99);
  std::vector<uint32_t> Old = randomWords(Rng, 120);
  std::vector<uint32_t> New = mutate(Rng, Old, 25);
  EditScript S = makeEditScript(Old, New);

  std::vector<uint8_t> Bytes = S.encode();
  EXPECT_EQ(Bytes.size(), S.encodedBytes());

  EditScript Back;
  ASSERT_TRUE(EditScript::decode(Bytes, Back));
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, Back, Out));
  EXPECT_EQ(Out, New);
}

TEST(EditScript, RejectsTruncatedScript) {
  EditScript S = makeEditScript({1, 2, 3}, {4, 5, 6});
  std::vector<uint8_t> Bytes = S.encode();
  Bytes.pop_back();
  EditScript Back;
  EXPECT_FALSE(EditScript::decode(Bytes, Back));
}

TEST(EditScript, RejectsScriptForWrongBase) {
  std::vector<uint32_t> Old = {1, 2, 3, 4, 5, 6};
  EditScript S = makeEditScript(Old, {1, 2, 9});
  std::vector<uint32_t> WrongBase = {1, 2};
  std::vector<uint32_t> Out;
  EXPECT_FALSE(applyEditScript(WrongBase, S, Out))
      << "script must notice the old image is shorter than expected";
}

/// The fundamental patcher property: apply(old, script(old, new)) == new.
class ScriptRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ScriptRoundTrip, PatchReproducesNew) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  size_t OldLen = Rng.below(300);
  int Edits = static_cast<int>(Rng.below(60));
  std::vector<uint32_t> Old = randomWords(Rng, OldLen);
  std::vector<uint32_t> New = mutate(Rng, Old, Edits);

  EditScript S = makeEditScript(Old, New);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);

  // The script is never larger than "remove everything, insert everything".
  size_t Naive = (Old.size() + 62) / 63 + (New.size() + 62) / 63 +
                 New.size() * 4;
  EXPECT_LE(S.encodedBytes(), Naive + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptRoundTrip, ::testing::Range(0, 30));

/// Chain composition: compose(A->B, B->C) patches A straight to C, and is
/// never cheaper than a fresh A->C diff (reuse provenance only shrinks
/// along a chain).
class ScriptComposition : public ::testing::TestWithParam<int> {};

TEST_P(ScriptComposition, ComposedScriptPatchesEndToEnd) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 11 + 5);
  std::vector<uint32_t> V1 = randomWords(Rng, Rng.below(250));
  std::vector<uint32_t> V2 =
      mutate(Rng, V1, static_cast<int>(Rng.below(40)));
  std::vector<uint32_t> V3 =
      mutate(Rng, V2, static_cast<int>(Rng.below(40)));

  EditScript S12 = makeEditScript(V1, V2);
  EditScript S23 = makeEditScript(V2, V3);
  EditScript S13;
  ASSERT_TRUE(composeEditScripts(V1, S12, S23, S13));

  std::vector<uint32_t> Patched;
  ASSERT_TRUE(applyEditScript(V1, S13, Patched));
  EXPECT_EQ(Patched, V3);

  // A fresh endpoint diff sees every accidental match; the composed chain
  // only keeps words both steps copied.
  EXPECT_GE(S13.encodedBytes(), makeEditScript(V1, V3).encodedBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptComposition, ::testing::Range(0, 30));

TEST(EditScript, ComposeRejectsScriptsForTheWrongBase) {
  std::vector<uint32_t> V1 = {1, 2, 3, 4, 5};
  std::vector<uint32_t> V2 = {1, 2, 9, 4, 5};
  EditScript S12 = makeEditScript(V1, V2);
  EditScript S23 = makeEditScript({7, 7, 7, 7, 7, 7, 7, 7, 7}, {7});
  EditScript Out;
  EXPECT_FALSE(composeEditScripts(V1, S12, S23, Out))
      << "second script expects a 9-word base, the first produces 5 words";
  EXPECT_FALSE(composeEditScripts({1, 2}, S12, S23, Out))
      << "first script does not apply to a 2-word base";
}

TEST(EditScript, ComposeAcrossThreeSteps) {
  // Composition is associative enough to fold a whole chain: fold the
  // per-step scripts left to right and patch the base once.
  RNG Rng(99);
  std::vector<uint32_t> Versions[4];
  Versions[0] = randomWords(Rng, 120);
  for (int K = 1; K < 4; ++K)
    Versions[K] = mutate(Rng, Versions[K - 1], 25);

  EditScript Acc = makeEditScript(Versions[0], Versions[1]);
  for (int K = 2; K < 4; ++K) {
    EditScript Step = makeEditScript(Versions[K - 1], Versions[K]);
    EditScript Next;
    ASSERT_TRUE(composeEditScripts(Versions[0], Acc, Step, Next));
    Acc = std::move(Next);
  }
  std::vector<uint32_t> Patched;
  ASSERT_TRUE(applyEditScript(Versions[0], Acc, Patched));
  EXPECT_EQ(Patched, Versions[3]);
}

TEST(Alignment, FindsLongestCommonRun) {
  std::vector<uint32_t> Old = {9, 1, 2, 3, 4, 9, 9};
  std::vector<uint32_t> New = {1, 2, 3, 4, 8};
  auto Matches = alignWords(Old, New);
  ASSERT_EQ(Matches.size(), 4u);
  EXPECT_EQ(Matches[0].first, 1);
  EXPECT_EQ(Matches[0].second, 0);
}

TEST(Alignment, MatchesAreStrictlyIncreasing) {
  RNG Rng(5);
  std::vector<uint32_t> Old = randomWords(Rng, 80);
  std::vector<uint32_t> New = mutate(Rng, Old, 30);
  auto Matches = alignWords(Old, New);
  for (size_t K = 1; K < Matches.size(); ++K) {
    EXPECT_LT(Matches[K - 1].first, Matches[K].first);
    EXPECT_LT(Matches[K - 1].second, Matches[K].second);
  }
  for (const auto &[I, J] : Matches)
    EXPECT_EQ(Old[static_cast<size_t>(I)], New[static_cast<size_t>(J)]);
}

TEST(ImageDiffs, CountsPerFunction) {
  BinaryImage Old;
  Old.Functions = {{"main", 0, 3}, {"helper", 3, 2}};
  Old.Code = {10, 11, 12, 20, 21};
  Old.EntryFunc = 0;

  BinaryImage New;
  New.Functions = {{"main", 0, 3}, {"fresh", 3, 2}};
  New.Code = {10, 99, 12, 30, 31};
  New.EntryFunc = 0;

  ImageDiff D = diffImages(Old, New);
  const FunctionDiff *Main = D.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->Matched, 2);
  EXPECT_EQ(Main->diffInst(), 1);

  const FunctionDiff *Fresh = D.find("fresh");
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(Fresh->OldCount, 0);
  EXPECT_EQ(Fresh->diffInst(), 2);

  const FunctionDiff *Helper = D.find("helper");
  ASSERT_NE(Helper, nullptr);
  EXPECT_EQ(Helper->NewCount, 0);
  EXPECT_EQ(Helper->diffInst(), 0); // removals cost nothing on air

  EXPECT_EQ(D.totalDiffInst(), 3);
}

//===----------------------------------------------------------------------===//
// The anchor-accelerated engine (EditScript.h section comment)
//===----------------------------------------------------------------------===//

/// Relocates random blocks — the edit pattern point mutations never
/// produce and the patience anchor pass exists for.
std::vector<uint32_t> moveBlocks(RNG &Rng, std::vector<uint32_t> Words,
                                 int Moves) {
  for (int K = 0; K < Moves && Words.size() > 8; ++K) {
    size_t Len = 1 + Rng.below(Words.size() / 4);
    size_t From = Rng.below(Words.size() - Len + 1);
    std::vector<uint32_t> Block(
        Words.begin() + static_cast<long>(From),
        Words.begin() + static_cast<long>(From + Len));
    Words.erase(Words.begin() + static_cast<long>(From),
                Words.begin() + static_cast<long>(From + Len));
    size_t To = Rng.below(Words.size() + 1);
    Words.insert(Words.begin() + static_cast<long>(To), Block.begin(),
                 Block.end());
  }
  return Words;
}

TEST(ExactAlignment, RefusesOversizedTables) {
  // 20001^2 cells blows ExactAlignCellCap; the guard must refuse before
  // touching memory (this test allocates two word vectors and nothing
  // else).
  std::vector<uint32_t> Old(20000, 1), New(20000, 2);
  EXPECT_FALSE(alignWordsExact(Old, New).has_value());
  // An asymmetric pair keeps the table affordable: only the product of
  // the two sides is capped, not either side alone.
  EXPECT_TRUE(alignWordsExact(Old, {1, 2, 3}).has_value());
}

TEST(DiffEngine, SmallInputsDispatchToTheExactBackend) {
  RNG Rng(17);
  std::vector<uint32_t> Old = randomWords(Rng, 200);
  std::vector<uint32_t> New = mutate(Rng, Old, 40);
  DiffStats Stats;
  auto Engine = alignWords(Old, New, DiffOptions{}, &Stats);
  EXPECT_TRUE(Stats.UsedExact);
  auto Exact = alignWordsExact(Old, New);
  ASSERT_TRUE(Exact.has_value());
  EXPECT_EQ(Engine, *Exact) << "below ExactThreshold the dispatch must be "
                               "bit-for-bit the seed LCS";
}

TEST(DiffEngine, MyersMatchesTheExactMatchCount) {
  // With anchors disabled and an unconstrained D budget the engine is
  // pure Myers + trimming, which is exact: the match count must equal the
  // LCS length on every input.
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    RNG Rng(Seed * 13 + 1);
    std::vector<uint32_t> Old = randomWords(Rng, 100 + Rng.below(300));
    std::vector<uint32_t> New =
        mutate(Rng, Old, static_cast<int>(Rng.below(80)));
    DiffOptions Opts;
    Opts.ForceEngine = true;
    Opts.MaxAnchorDepth = 0;
    Opts.MyersDCap = 1 << 20;
    DiffStats Stats;
    auto Engine = alignWords(Old, New, Opts, &Stats);
    auto Exact = alignWordsExact(Old, New);
    ASSERT_TRUE(Exact.has_value());
    EXPECT_FALSE(Stats.UsedExact);
    EXPECT_EQ(Engine.size(), Exact->size()) << "seed " << Seed;
  }
}

/// The fuzz property of the engine: for random insert/delete/mutate/move
/// mixes the script must patch Old into New exactly, and its size may
/// exceed the exact oracle's script by at most the documented bound
/// (25% + 32 bytes — anchors and the fallback trade optimality for
/// near-linear cost; see docs/PERFORMANCE.md).
class DiffEngineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DiffEngineFuzz, PatchesExactlyAndStaysNearTheOracle) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 29 + 7);
  std::vector<uint32_t> Old = randomWords(Rng, 200 + Rng.below(1200));
  std::vector<uint32_t> New =
      mutate(Rng, Old, static_cast<int>(Rng.below(120)));
  New = moveBlocks(Rng, std::move(New), static_cast<int>(Rng.below(4)));

  DiffOptions Opts;
  Opts.ForceEngine = true;
  EditScript S = makeEditScript(Old, New, Opts);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);

  auto Exact = alignWordsExact(Old, New);
  ASSERT_TRUE(Exact.has_value());
  size_t OracleBytes = scriptFromMatches(Old, New, *Exact).encodedBytes();
  EXPECT_LE(S.encodedBytes(), OracleBytes + OracleBytes / 4 + 32)
      << "engine script too far above the " << OracleBytes
      << "-byte oracle script";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffEngineFuzz, ::testing::Range(0, 40));

TEST(DiffEngine, FallbackHandlesBudgetBlowout) {
  // Heavily shuffled blocks over a wide alphabet: edit distance blows a
  // tiny D budget immediately, so the block-copy fallback must carry the
  // alignment — and the script must still patch exactly.
  RNG Rng(4242);
  std::vector<uint32_t> Old(3000);
  for (size_t K = 0; K < Old.size(); ++K)
    Old[K] = static_cast<uint32_t>(Rng.below(1u << 30));
  std::vector<uint32_t> New = moveBlocks(Rng, Old, 12);

  DiffOptions Opts;
  Opts.ForceEngine = true;
  Opts.MaxAnchorDepth = 0; // no anchor rescue: force Myers -> fallback
  Opts.MyersDCap = 2;
  Opts.SmallGap = 0;
  DiffStats Stats;
  auto Matches = alignWords(Old, New, Opts, &Stats);
  EXPECT_GT(Stats.FallbackBlocks, 0) << "budget blowout must hit the "
                                        "fallback";
  EditScript S = scriptFromMatches(Old, New, Matches);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);
}

TEST(DiffEngine, AnchorsSplitRelocatedUniqueBlocks) {
  // Unique words relocated wholesale are exactly what the patience pass
  // anchors on.
  RNG Rng(888);
  std::vector<uint32_t> Old(2000);
  for (size_t K = 0; K < Old.size(); ++K)
    Old[K] = static_cast<uint32_t>(K); // every word unique
  std::vector<uint32_t> New = moveBlocks(Rng, Old, 6);

  DiffOptions Opts;
  Opts.ForceEngine = true;
  Opts.SmallGap = 64;
  DiffStats Stats;
  auto Matches = alignWords(Old, New, Opts, &Stats);
  EXPECT_GT(Stats.Anchors, 0);
  EditScript S = scriptFromMatches(Old, New, Matches);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);
}

TEST(DiffEngine, OracleCheckAndTelemetryCounters) {
  RNG Rng(55);
  std::vector<uint32_t> Old = randomWords(Rng, 600);
  std::vector<uint32_t> New = mutate(Rng, Old, 60);

  DiffOptions Opts;
  Opts.ForceEngine = true;
  Opts.OracleCheck = true;
  Telemetry T;
  DiffStats Stats;
  {
    TelemetryScope Scope(T);
    alignWords(Old, New, Opts, &Stats);
  }
  EXPECT_EQ(Stats.OracleChecks, 1);
  EXPECT_EQ(T.counter("diff.oracle_checks"), 1);
  EXPECT_EQ(T.counter("diff.myers_d"), Stats.MyersD);
  EXPECT_EQ(T.counter("diff.anchors"), Stats.Anchors);
  EXPECT_EQ(T.counter("diff.fallback_blocks"), Stats.FallbackBlocks);
}

TEST(ImageDiffs, UpdatePackageRoundTrip) {
  BinaryImage Old;
  Old.Functions = {{"main", 0, 4}};
  Old.Code = {1, 2, 3, 4};
  Old.DataInit = {7, 8};
  Old.EntryFunc = 0;

  BinaryImage New;
  New.Functions = {{"main", 0, 5}, {"extra", 5, 2}};
  New.Code = {1, 2, 9, 3, 4, 50, 51};
  New.DataInit = {7, 8, 9};
  New.EntryFunc = 0;

  ImageUpdate U = makeImageUpdate(Old, New);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(Old, U, Patched));
  EXPECT_EQ(Patched.Code, New.Code);
  EXPECT_EQ(Patched.DataInit, New.DataInit);
  ASSERT_EQ(Patched.Functions.size(), 2u);
  EXPECT_EQ(Patched.Functions[1].Name, "extra");
  EXPECT_EQ(Patched.Functions[1].Start, 5u);
}

} // namespace
