//===- tests/DiffTest.cpp - edit scripts and image diffing ----------------===//

#include "diff/EditScript.h"
#include "diff/ImageDiff.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

std::vector<uint32_t> randomWords(RNG &Rng, size_t N) {
  std::vector<uint32_t> Words(N);
  for (uint32_t &W : Words)
    W = static_cast<uint32_t>(Rng.below(64)); // small alphabet: collisions
  return Words;
}

/// Mutates a word sequence with random point edits, insertions, removals.
std::vector<uint32_t> mutate(RNG &Rng, std::vector<uint32_t> Words,
                             int Edits) {
  for (int K = 0; K < Edits; ++K) {
    uint64_t Kind = Rng.below(3);
    if (Words.empty() || Kind == 0) {
      Words.insert(Words.begin() +
                       static_cast<long>(Rng.below(Words.size() + 1)),
                   static_cast<uint32_t>(Rng.below(64)));
    } else if (Kind == 1) {
      Words[Rng.below(Words.size())] = static_cast<uint32_t>(Rng.below(64));
    } else {
      Words.erase(Words.begin() + static_cast<long>(Rng.below(Words.size())));
    }
  }
  return Words;
}

TEST(EditScript, IdenticalSequencesAreOneCopy) {
  std::vector<uint32_t> Words = {1, 2, 3, 4, 5};
  EditScript S = makeEditScript(Words, Words);
  ASSERT_EQ(S.Prims.size(), 1u);
  EXPECT_EQ(S.Prims[0].Op, EditOp::Copy);
  EXPECT_EQ(S.Prims[0].Count, 5u);
  EXPECT_EQ(S.encodedBytes(), 1u);
}

TEST(EditScript, EmptyToFullIsOneInsert) {
  std::vector<uint32_t> New = {7, 8, 9};
  EditScript S = makeEditScript({}, New);
  ASSERT_EQ(S.Prims.size(), 1u);
  EXPECT_EQ(S.Prims[0].Op, EditOp::Insert);
  EXPECT_EQ(S.encodedBytes(), 1u + 3u * 4u);
}

TEST(EditScript, SingleWordChangeIsOneReplace) {
  std::vector<uint32_t> Old = {1, 2, 3, 4, 5};
  std::vector<uint32_t> New = {1, 2, 9, 4, 5};
  EditScript S = makeEditScript(Old, New);
  // copy 2, replace 1, copy 2
  EXPECT_EQ(S.encodedBytes(), 1u + (1u + 4u) + 1u);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);
}

TEST(EditScript, LongRunsSplitAt63) {
  std::vector<uint32_t> Words(200, 42);
  EditScript S = makeEditScript(Words, Words);
  // 200 copies need ceil(200/63) = 4 primitive bytes.
  EXPECT_EQ(S.encodedBytes(), 4u);
  EXPECT_EQ(S.primitiveCount(), 4u);
}

TEST(EditScript, EncodeDecodeRoundTrip) {
  RNG Rng(99);
  std::vector<uint32_t> Old = randomWords(Rng, 120);
  std::vector<uint32_t> New = mutate(Rng, Old, 25);
  EditScript S = makeEditScript(Old, New);

  std::vector<uint8_t> Bytes = S.encode();
  EXPECT_EQ(Bytes.size(), S.encodedBytes());

  EditScript Back;
  ASSERT_TRUE(EditScript::decode(Bytes, Back));
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, Back, Out));
  EXPECT_EQ(Out, New);
}

TEST(EditScript, RejectsTruncatedScript) {
  EditScript S = makeEditScript({1, 2, 3}, {4, 5, 6});
  std::vector<uint8_t> Bytes = S.encode();
  Bytes.pop_back();
  EditScript Back;
  EXPECT_FALSE(EditScript::decode(Bytes, Back));
}

TEST(EditScript, RejectsScriptForWrongBase) {
  std::vector<uint32_t> Old = {1, 2, 3, 4, 5, 6};
  EditScript S = makeEditScript(Old, {1, 2, 9});
  std::vector<uint32_t> WrongBase = {1, 2};
  std::vector<uint32_t> Out;
  EXPECT_FALSE(applyEditScript(WrongBase, S, Out))
      << "script must notice the old image is shorter than expected";
}

/// The fundamental patcher property: apply(old, script(old, new)) == new.
class ScriptRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ScriptRoundTrip, PatchReproducesNew) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  size_t OldLen = Rng.below(300);
  int Edits = static_cast<int>(Rng.below(60));
  std::vector<uint32_t> Old = randomWords(Rng, OldLen);
  std::vector<uint32_t> New = mutate(Rng, Old, Edits);

  EditScript S = makeEditScript(Old, New);
  std::vector<uint32_t> Out;
  ASSERT_TRUE(applyEditScript(Old, S, Out));
  EXPECT_EQ(Out, New);

  // The script is never larger than "remove everything, insert everything".
  size_t Naive = (Old.size() + 62) / 63 + (New.size() + 62) / 63 +
                 New.size() * 4;
  EXPECT_LE(S.encodedBytes(), Naive + 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptRoundTrip, ::testing::Range(0, 30));

/// Chain composition: compose(A->B, B->C) patches A straight to C, and is
/// never cheaper than a fresh A->C diff (reuse provenance only shrinks
/// along a chain).
class ScriptComposition : public ::testing::TestWithParam<int> {};

TEST_P(ScriptComposition, ComposedScriptPatchesEndToEnd) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 11 + 5);
  std::vector<uint32_t> V1 = randomWords(Rng, Rng.below(250));
  std::vector<uint32_t> V2 =
      mutate(Rng, V1, static_cast<int>(Rng.below(40)));
  std::vector<uint32_t> V3 =
      mutate(Rng, V2, static_cast<int>(Rng.below(40)));

  EditScript S12 = makeEditScript(V1, V2);
  EditScript S23 = makeEditScript(V2, V3);
  EditScript S13;
  ASSERT_TRUE(composeEditScripts(V1, S12, S23, S13));

  std::vector<uint32_t> Patched;
  ASSERT_TRUE(applyEditScript(V1, S13, Patched));
  EXPECT_EQ(Patched, V3);

  // A fresh endpoint diff sees every accidental match; the composed chain
  // only keeps words both steps copied.
  EXPECT_GE(S13.encodedBytes(), makeEditScript(V1, V3).encodedBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptComposition, ::testing::Range(0, 30));

TEST(EditScript, ComposeRejectsScriptsForTheWrongBase) {
  std::vector<uint32_t> V1 = {1, 2, 3, 4, 5};
  std::vector<uint32_t> V2 = {1, 2, 9, 4, 5};
  EditScript S12 = makeEditScript(V1, V2);
  EditScript S23 = makeEditScript({7, 7, 7, 7, 7, 7, 7, 7, 7}, {7});
  EditScript Out;
  EXPECT_FALSE(composeEditScripts(V1, S12, S23, Out))
      << "second script expects a 9-word base, the first produces 5 words";
  EXPECT_FALSE(composeEditScripts({1, 2}, S12, S23, Out))
      << "first script does not apply to a 2-word base";
}

TEST(EditScript, ComposeAcrossThreeSteps) {
  // Composition is associative enough to fold a whole chain: fold the
  // per-step scripts left to right and patch the base once.
  RNG Rng(99);
  std::vector<uint32_t> Versions[4];
  Versions[0] = randomWords(Rng, 120);
  for (int K = 1; K < 4; ++K)
    Versions[K] = mutate(Rng, Versions[K - 1], 25);

  EditScript Acc = makeEditScript(Versions[0], Versions[1]);
  for (int K = 2; K < 4; ++K) {
    EditScript Step = makeEditScript(Versions[K - 1], Versions[K]);
    EditScript Next;
    ASSERT_TRUE(composeEditScripts(Versions[0], Acc, Step, Next));
    Acc = std::move(Next);
  }
  std::vector<uint32_t> Patched;
  ASSERT_TRUE(applyEditScript(Versions[0], Acc, Patched));
  EXPECT_EQ(Patched, Versions[3]);
}

TEST(Alignment, FindsLongestCommonRun) {
  std::vector<uint32_t> Old = {9, 1, 2, 3, 4, 9, 9};
  std::vector<uint32_t> New = {1, 2, 3, 4, 8};
  auto Matches = alignWords(Old, New);
  ASSERT_EQ(Matches.size(), 4u);
  EXPECT_EQ(Matches[0].first, 1);
  EXPECT_EQ(Matches[0].second, 0);
}

TEST(Alignment, MatchesAreStrictlyIncreasing) {
  RNG Rng(5);
  std::vector<uint32_t> Old = randomWords(Rng, 80);
  std::vector<uint32_t> New = mutate(Rng, Old, 30);
  auto Matches = alignWords(Old, New);
  for (size_t K = 1; K < Matches.size(); ++K) {
    EXPECT_LT(Matches[K - 1].first, Matches[K].first);
    EXPECT_LT(Matches[K - 1].second, Matches[K].second);
  }
  for (const auto &[I, J] : Matches)
    EXPECT_EQ(Old[static_cast<size_t>(I)], New[static_cast<size_t>(J)]);
}

TEST(ImageDiffs, CountsPerFunction) {
  BinaryImage Old;
  Old.Functions = {{"main", 0, 3}, {"helper", 3, 2}};
  Old.Code = {10, 11, 12, 20, 21};
  Old.EntryFunc = 0;

  BinaryImage New;
  New.Functions = {{"main", 0, 3}, {"fresh", 3, 2}};
  New.Code = {10, 99, 12, 30, 31};
  New.EntryFunc = 0;

  ImageDiff D = diffImages(Old, New);
  const FunctionDiff *Main = D.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(Main->Matched, 2);
  EXPECT_EQ(Main->diffInst(), 1);

  const FunctionDiff *Fresh = D.find("fresh");
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(Fresh->OldCount, 0);
  EXPECT_EQ(Fresh->diffInst(), 2);

  const FunctionDiff *Helper = D.find("helper");
  ASSERT_NE(Helper, nullptr);
  EXPECT_EQ(Helper->NewCount, 0);
  EXPECT_EQ(Helper->diffInst(), 0); // removals cost nothing on air

  EXPECT_EQ(D.totalDiffInst(), 3);
}

TEST(ImageDiffs, UpdatePackageRoundTrip) {
  BinaryImage Old;
  Old.Functions = {{"main", 0, 4}};
  Old.Code = {1, 2, 3, 4};
  Old.DataInit = {7, 8};
  Old.EntryFunc = 0;

  BinaryImage New;
  New.Functions = {{"main", 0, 5}, {"extra", 5, 2}};
  New.Code = {1, 2, 9, 3, 4, 50, 51};
  New.DataInit = {7, 8, 9};
  New.EntryFunc = 0;

  ImageUpdate U = makeImageUpdate(Old, New);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(Old, U, Patched));
  EXPECT_EQ(Patched.Code, New.Code);
  EXPECT_EQ(Patched.DataInit, New.DataInit);
  ASSERT_EQ(Patched.Functions.size(), 2u);
  EXPECT_EQ(Patched.Functions[1].Name, "extra");
  EXPECT_EQ(Patched.Functions[1].Start, 5u);
}

} // namespace
