//===- tests/PlanServiceTest.cpp - the update-distribution service --------===//
//
// The serving layer's contract: plans byte-identical to the raw store,
// exact hit/miss/eviction accounting summed across shards, an
// exactly-once in-flight latch under contention, snapshot isolation
// across concurrent commits, batch dedupe, and the admission/TTL cache
// policies. The concurrent tests run under TSan in CI — they are the
// data-race regression net for the snapshot publication and the sharded
// cache latch.
//
//===----------------------------------------------------------------------===//

#include "serve/PlanService.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace ucc;

namespace {

CompileOptions uccOptions() {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  return Opts;
}

/// A chain alternating between a real update case's old and new sources:
/// even and odd versions share source text (and image content), so the
/// canonical content-hash cache key collides across distinct id pairs —
/// exactly the case the exact-id confirmation must tell apart.
VersionStore buildChain(int Versions = 4) {
  const UpdateCase &Case = updateCases()[5];
  VersionStore Store;
  DiagnosticEngine Diag;
  EXPECT_EQ(Store.addInitial(Case.OldSource, uccOptions(), Diag), 0)
      << Diag.str();
  for (int V = 1; V < Versions; ++V) {
    const std::string &Source =
        (V % 2) ? Case.NewSource : Case.OldSource;
    EXPECT_EQ(Store.addUpdate(Source, uccOptions(), Diag), V)
        << Diag.str();
  }
  return Store;
}

/// A branched history: v0 -> v1 -> {v2, v3 -> v4}. Cross-branch plans
/// (2 <-> 4) must route through the LCA at v1.
VersionStore buildDag() {
  const UpdateCase &Case = updateCases()[5];
  VersionStore Store;
  DiagnosticEngine Diag;
  auto Src = [&](int V) -> const std::string & {
    return (V % 2) ? Case.NewSource : Case.OldSource;
  };
  EXPECT_EQ(Store.addInitial(Src(0), uccOptions(), Diag), 0) << Diag.str();
  EXPECT_EQ(Store.addUpdate(Src(1), uccOptions(), Diag, 0), 1) << Diag.str();
  EXPECT_EQ(Store.addUpdate(Src(2), uccOptions(), Diag, 1), 2) << Diag.str();
  EXPECT_EQ(Store.addUpdate(Src(3), uccOptions(), Diag, 1), 3) << Diag.str();
  EXPECT_EQ(Store.addUpdate(Src(4), uccOptions(), Diag, 3), 4) << Diag.str();
  return Store;
}

std::vector<uint8_t> planBytes(const std::shared_ptr<const UpdatePlan> &P) {
  EXPECT_TRUE(P != nullptr);
  return P ? P->Update.serialize() : std::vector<uint8_t>();
}

TEST(PlanService, ServesByteIdenticalPlansAcrossJobCounts) {
  // The acceptance anchor, at --jobs 1 and --jobs 8: a served plan is the
  // raw VersionStore::plan result, byte for byte, including the route
  // metadata the campaign layer keys on.
  for (int Jobs : {1, 8}) {
    ThreadPool::setDefaultJobs(Jobs);
    VersionStore Reference = buildChain();
    PlanService Service(buildChain());
    for (int From = 0; From < 4; ++From)
      for (int To = 0; To < 4; ++To) {
        auto Served = Service.plan(From, To);
        auto Direct = Reference.plan(From, To);
        ASSERT_TRUE(Served != nullptr) << From << "->" << To;
        EXPECT_EQ(Served->Update.serialize(), Direct->Update.serialize())
            << From << "->" << To << " at jobs " << Jobs;
        EXPECT_EQ(Served->Route, Direct->Route);
        EXPECT_EQ(Served->ScriptBytes, Direct->ScriptBytes);
        EXPECT_EQ(Served->ChainSteps, Direct->ChainSteps);
      }
  }
  ThreadPool::setDefaultJobs(0);
}

TEST(PlanService, DagStoresServeByteIdenticalPlansAcrossShardCounts) {
  // Same anchor over a branched store: every ordered pair — upgrades,
  // rollbacks, and the cross-branch hops that route through the LCA —
  // serves byte-identical to the store, at every shard and job count.
  VersionStore Reference = buildDag();
  for (int Jobs : {1, 8}) {
    ThreadPool::setDefaultJobs(Jobs);
    for (size_t NumShards : {size_t(1), size_t(8)}) {
      PlanServiceOptions Opts;
      Opts.Shards = NumShards;
      PlanService Service(buildDag(), Opts);
      for (int From = 0; From < 5; ++From)
        for (int To = 0; To < 5; ++To) {
          auto Served = Service.plan(From, To);
          auto Direct = Reference.plan(From, To);
          ASSERT_TRUE(Served != nullptr && Direct.has_value())
              << From << "->" << To;
          EXPECT_EQ(Served->Update.serialize(), Direct->Update.serialize())
              << From << "->" << To << " shards " << NumShards << " jobs "
              << Jobs;
          EXPECT_EQ(Served->Route, Direct->Route);
          EXPECT_EQ(Served->ChainSteps, Direct->ChainSteps);
        }
    }
  }
  ThreadPool::setDefaultJobs(0);
  // The cross-branch pair really is composed through the LCA (v1):
  // 2 -> 1 -> 3 -> 4 is three hops.
  auto P = Reference.plan(2, 4);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->ChainSteps, 3);
}

TEST(PlanService, SharedContentHashesAreToldApartByIds) {
  // v0 and v2 are content-identical, so (0,3) and (2,3) collide on the
  // canonical key; the collision chain must still serve each id pair its
  // own plan (they differ in chain depth).
  PlanService Service(buildChain());
  auto A = Service.plan(0, 3);
  auto B = Service.plan(2, 3);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->ChainSteps, 3);
  EXPECT_EQ(B->ChainSteps, 1);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 0u);
  // And both stay cached as distinct entries.
  EXPECT_EQ(planBytes(Service.plan(0, 3)), planBytes(A));
  EXPECT_EQ(planBytes(Service.plan(2, 3)), planBytes(B));
  EXPECT_EQ(Service.stats().Hits, 2u);
}

TEST(PlanService, HitMissEvictionAccounting) {
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 2;
  Opts.Shards = 1; // one LRU list, so eviction order is scriptable
  PlanService Service(buildChain(), Opts);

  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // miss
  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // hit
  EXPECT_TRUE(Service.plan(1, 3) != nullptr); // miss
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, 3u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.CacheEntries, 2u);

  // Re-touch (0,3) so (1,3) is the least recently used, then a third
  // pair evicts it.
  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // hit, moves to front
  EXPECT_TRUE(Service.plan(2, 3) != nullptr); // miss, evicts (1,3)
  S = Service.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.CacheEntries, 2u);
  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // still cached: hit
  EXPECT_EQ(Service.stats().Hits, 3u);
  EXPECT_TRUE(Service.plan(1, 3) != nullptr); // evicted: misses again
  S = Service.stats();
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.Evictions, 2u);
}

TEST(PlanService, ShardedAccountingInvariants) {
  // Satellite invariants under a mixed workload on a sharded cache:
  // every slice is gathered under its shard's lock, and the quiesced
  // totals reconcile exactly — Plans == Hits + Misses + Rejected, and
  // residency == Misses - Evictions (nothing else removes entries with
  // admission and TTL off).
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 4;
  Opts.Shards = 4;
  PlanService Service(buildChain(6), Opts);

  for (int From = 0; From < 6; ++From)
    for (int To = 0; To < 6; ++To)
      EXPECT_TRUE(Service.plan(From, To) != nullptr);
  for (int K = 0; K < 10; ++K)
    EXPECT_TRUE(Service.plan(K % 3, 5) != nullptr);
  EXPECT_TRUE(Service.plan(0, 99) == nullptr);
  EXPECT_TRUE(Service.plan(-1, 2) == nullptr);

  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, 36u + 10u + 2u);
  EXPECT_EQ(S.Rejected, 2u);
  EXPECT_EQ(S.Plans, S.Hits + S.Misses + S.Rejected);
  EXPECT_EQ(S.AdmissionRejects, 0u);
  EXPECT_EQ(S.TtlExpired, 0u);
  EXPECT_EQ(S.CacheEntries, static_cast<size_t>(S.Misses - S.Evictions));
  // The budget is enforced by the inserting shard's own tail, so a shard
  // whose only entry is the newcomer can overshoot transiently — but
  // never by more than one straggler per other shard.
  EXPECT_LE(S.CacheEntries, 4u + 3u);
  EXPECT_GE(S.CacheEntries, 1u);

  // The per-shard slices sum to the service totals.
  EXPECT_EQ(Service.shardCount(), 4u);
  std::vector<PlanShardStats> Shards = Service.shardStats();
  ASSERT_EQ(Shards.size(), 4u);
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
  size_t Entries = 0;
  for (const PlanShardStats &Sh : Shards) {
    Hits += Sh.Hits;
    Misses += Sh.Misses;
    Evictions += Sh.Evictions;
    Entries += Sh.Entries;
  }
  EXPECT_EQ(Hits, S.Hits);
  EXPECT_EQ(Misses, S.Misses);
  EXPECT_EQ(Evictions, S.Evictions);
  EXPECT_EQ(Entries, S.CacheEntries);

  // shardIndex is a stable pure function of the pair, and rejects
  // unknown ids like plan() does.
  auto Idx = Service.shardIndex(0, 3);
  ASSERT_TRUE(Idx.has_value());
  EXPECT_LT(*Idx, Service.shardCount());
  EXPECT_EQ(Service.shardIndex(0, 3), Idx);
  EXPECT_FALSE(Service.shardIndex(0, 99).has_value());
}

TEST(PlanService, CapacityIsAGlobalBudgetNotAPerShardQuota) {
  // The degenerate distribution: pick pairs that all hash into ONE shard
  // and fill the whole global budget through it. A per-shard quota
  // (capacity / shards) would evict; the global budget must not.
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 3;
  Opts.Shards = 4;
  PlanService Service(buildChain(6), Opts);

  std::vector<std::vector<std::pair<int, int>>> ByShard(
      Service.shardCount());
  for (int From = 0; From < 6; ++From)
    for (int To = 0; To < 6; ++To) {
      if (From == To)
        continue;
      auto Idx = Service.shardIndex(From, To);
      ASSERT_TRUE(Idx.has_value());
      ByShard[*Idx].push_back({From, To});
    }
  const std::vector<std::pair<int, int>> *Crowded = nullptr;
  for (const auto &Pairs : ByShard)
    if (Pairs.size() >= 3) {
      Crowded = &Pairs;
      break;
    }
  ASSERT_NE(Crowded, nullptr) << "30 pairs over 4 shards must crowd one";

  for (int K = 0; K < 3; ++K)
    EXPECT_TRUE(
        Service.plan((*Crowded)[K].first, (*Crowded)[K].second) != nullptr);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.CacheEntries, 3u);
  // All three stay resident in the one shard: pure hits on re-access.
  for (int K = 0; K < 3; ++K)
    EXPECT_TRUE(
        Service.plan((*Crowded)[K].first, (*Crowded)[K].second) != nullptr);
  S = Service.stats();
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(PlanService, AdmissionFrequencyKeepsHotPairsAgainstScans) {
  // TinyLFU-flavored doorkeeper: once the cache is full, a one-pass scan
  // must not thrash the hot working set — the scan's one-hit wonders are
  // computed and served but refused residency.
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 2;
  Opts.Shards = 1;
  Opts.Admit = PlanServiceOptions::Admission::Frequency;
  PlanService Service(buildChain(8), Opts);

  // Build frequency for the hot pairs while filling the cache.
  for (int K = 0; K < 3; ++K) {
    EXPECT_TRUE(Service.plan(0, 7) != nullptr);
    EXPECT_TRUE(Service.plan(1, 7) != nullptr);
  }
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 4u);
  EXPECT_EQ(S.CacheEntries, 2u);

  // A cold scan over four other pairs.
  for (int From = 2; From <= 5; ++From)
    EXPECT_TRUE(Service.plan(From, 7) != nullptr);
  S = Service.stats();
  EXPECT_EQ(S.AdmissionRejects, 4u)
      << "every scan pair is refused residency";
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.CacheEntries, 2u);
  EXPECT_EQ(S.CacheEntries,
            static_cast<size_t>(S.Misses - S.Evictions - S.AdmissionRejects));

  // The hot pairs survived the scan.
  EXPECT_TRUE(Service.plan(0, 7) != nullptr);
  EXPECT_TRUE(Service.plan(1, 7) != nullptr);
  EXPECT_EQ(Service.stats().Hits, 6u);
}

TEST(PlanService, TtlExpiresCachedPlans) {
  // Lazy expiry on an injected clock: an entry older than TtlSeconds is
  // dropped at its next lookup (counted serve.ttl_expired, then the
  // request proceeds as a miss) and re-cached with a fresh stamp.
  double FakeNow = 0.0;
  PlanServiceOptions Opts;
  Opts.Shards = 1;
  Opts.TtlSeconds = 10.0;
  Opts.Clock = [&FakeNow] { return FakeNow; };
  PlanService Service(buildChain(), Opts);

  std::vector<uint8_t> First = planBytes(Service.plan(0, 3)); // miss
  FakeNow = 5.0;
  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // within TTL: hit
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.TtlExpired, 0u);

  FakeNow = 16.0; // 16s after the fill: expired
  EXPECT_EQ(planBytes(Service.plan(0, 3)), First);
  S = Service.stats();
  EXPECT_EQ(S.TtlExpired, 1u);
  EXPECT_EQ(S.Misses, 2u) << "expiry recomputes";
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.CacheEntries, 1u);
  EXPECT_EQ(S.CacheEntries,
            static_cast<size_t>(S.Misses - S.Evictions - S.TtlExpired));

  // The refill stamped the entry at 16s, so it serves again until 26s.
  FakeNow = 20.0;
  EXPECT_TRUE(Service.plan(0, 3) != nullptr);
  EXPECT_EQ(Service.stats().Hits, 2u);
}

TEST(PlanService, LatencyHistogramCoversEveryRequest) {
  PlanService Service(buildChain());
  EXPECT_EQ(Service.latency().count(), 0u);

  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // miss (slow path)
  EXPECT_TRUE(Service.plan(0, 3) != nullptr); // hit (fast path)
  EXPECT_TRUE(Service.plan(0, 99) == nullptr); // failure still counts
  std::vector<std::pair<int, int>> Batch = {{0, 3}, {1, 3}};
  Service.planBatch(Batch);

  // One histogram entry per plan() call, batch items included.
  const LatencyHistogram &H = Service.latency();
  EXPECT_EQ(H.count(), 5u);
  EXPECT_GT(H.maxSeconds(), 0.0);
  double P50 = H.quantileSeconds(0.5);
  double P99 = H.quantileSeconds(0.99);
  EXPECT_GE(P50, H.minSeconds());
  EXPECT_LE(P99, H.maxSeconds());
  EXPECT_LE(P50, P99);

  // resetLatency scopes the histogram to a measurement phase without
  // disturbing the cumulative service stats.
  uint64_t PlansBefore = Service.stats().Plans;
  Service.resetLatency();
  EXPECT_EQ(Service.latency().count(), 0u);
  EXPECT_EQ(Service.stats().Plans, PlansBefore);
  EXPECT_TRUE(Service.plan(1, 3) != nullptr);
  EXPECT_EQ(Service.latency().count(), 1u);
}

TEST(PlanService, CapacityZeroDisablesCaching) {
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 0;
  PlanService Service(buildChain(), Opts);
  for (int K = 0; K < 3; ++K)
    EXPECT_TRUE(Service.plan(0, 3) != nullptr);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.CacheEntries, 0u);
}

TEST(PlanService, UnknownIdsAnswerNullAndAreNeverCached) {
  PlanService Service(buildChain());
  EXPECT_TRUE(Service.plan(0, 99) == nullptr);
  EXPECT_TRUE(Service.plan(-3, 0) == nullptr);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, 2u);
  EXPECT_EQ(S.Rejected, 2u) << "unknown ids are rejects, not misses";
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.CacheEntries, 0u);
}

TEST(PlanService, ExactlyOnceLatchUnderContention) {
  // Many threads hammer one pair on a cold cache: the latch must let
  // exactly one of them compute while the rest wait and share the result.
  PlanService Service(buildChain());
  constexpr int NumThreads = 8;
  std::atomic<int> Ready{0};
  std::vector<std::vector<uint8_t>> Results(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (Ready.load() < NumThreads) {
      } // start as simultaneously as the scheduler allows
      auto P = Service.plan(0, 3);
      ASSERT_TRUE(P != nullptr);
      Results[static_cast<size_t>(T)] = P->Update.serialize();
    });
  for (std::thread &T : Threads)
    T.join();

  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, static_cast<uint64_t>(NumThreads));
  EXPECT_EQ(S.Misses, 1u) << "the pair must be computed exactly once";
  EXPECT_EQ(S.Hits, static_cast<uint64_t>(NumThreads - 1));
  EXPECT_EQ(S.CacheEntries, 1u);
  for (int T = 1; T < NumThreads; ++T)
    EXPECT_EQ(Results[static_cast<size_t>(T)], Results[0]);
}

TEST(PlanService, LatchContentionThroughThreadPoolBatch) {
  // The same exactly-once property when the contention comes from
  // planBatch's own ThreadPool fan-out: dedupe removes intra-batch
  // duplicates, so two overlapping batches contend on the latch instead.
  PlanService Service(buildChain());
  std::vector<std::pair<int, int>> Batch = {{0, 3}, {1, 3}, {2, 3}};
  std::thread Other(
      [&] { Service.planBatch(Batch, 4); });
  std::vector<std::shared_ptr<const UpdatePlan>> Mine =
      Service.planBatch(Batch, 4);
  Other.join();

  for (const auto &P : Mine)
    EXPECT_TRUE(P != nullptr);
  PlanServiceStats S = Service.stats();
  // Six requests total across both batches; each of the three pairs was
  // computed exactly once, whoever got there first.
  EXPECT_EQ(S.Plans, 6u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 3u);
}

TEST(PlanService, SnapshotIsolationAcrossCommitAndPlan) {
  // Readers keep planning (0,1) while the writer commits three more
  // versions. Every read must succeed against a coherent snapshot and
  // return the same bytes — commits never block or corrupt in-flight
  // plans. TSan checks the publication discipline.
  const UpdateCase &Case = updateCases()[5];
  PlanService Service(buildChain(2));
  std::vector<uint8_t> Expected = planBytes(Service.plan(0, 1));

  std::atomic<bool> Stop{false};
  std::atomic<int> Failures{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load()) {
        auto P = Service.plan(0, 1);
        if (!P || P->Update.serialize() != Expected)
          Failures.fetch_add(1);
      }
    });

  DiagnosticEngine Diag;
  for (int V = 2; V < 5; ++V) {
    const std::string &Source =
        (V % 2) ? Case.NewSource : Case.OldSource;
    ASSERT_EQ(Service.commit(Source, uccOptions(), Diag), V)
        << Diag.str();
  }
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Service.versionCount(), 5u);
  EXPECT_EQ(Service.latestId(), 4);
  EXPECT_EQ(Service.stats().Commits, 3u);
  // The committed versions are immediately planable, and still byte-match
  // a store that took the same chain.
  VersionStore Reference = buildChain(5);
  auto Served = Service.plan(0, 4);
  auto Direct = Reference.plan(0, 4);
  ASSERT_TRUE(Served && Direct);
  EXPECT_EQ(Served->Update.serialize(), Direct->Update.serialize());
}

TEST(PlanService, BatchDedupesAndPreservesOrder) {
  PlanService Service(buildChain());
  std::vector<std::pair<int, int>> Pairs = {
      {0, 3}, {1, 3}, {0, 3}, {2, 3}, {1, 3}, {0, 3}};
  std::vector<std::shared_ptr<const UpdatePlan>> Plans =
      Service.planBatch(Pairs);
  ASSERT_EQ(Plans.size(), Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I) {
    ASSERT_TRUE(Plans[I] != nullptr) << "request " << I;
    EXPECT_EQ(Plans[I]->From, Pairs[I].first);
    EXPECT_EQ(Plans[I]->To, Pairs[I].second);
  }
  // Duplicates share the winner's plan, and only distinct pairs planned.
  EXPECT_EQ(planBytes(Plans[0]), planBytes(Plans[2]));
  EXPECT_EQ(planBytes(Plans[0]), planBytes(Plans[5]));
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Batches, 1u);
  EXPECT_EQ(S.BatchDeduped, 3u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Plans, 3u) << "deduped requests never reach plan()";

  // A failing pair inside a batch answers null without failing others.
  std::vector<std::shared_ptr<const UpdatePlan>> Mixed =
      Service.planBatch({{0, 3}, {0, 42}});
  EXPECT_TRUE(Mixed[0] != nullptr);
  EXPECT_TRUE(Mixed[1] == nullptr);
}

TEST(PlanService, WarmPrecomputesHotPairsFromFleetHistogram) {
  PlanService Service(buildChain());
  // Fleet: node 0 is the sink; version 1 dominates, version 0 trails.
  std::vector<int> Fleet = {3, 1, 1, 1, 0, 0, 3, 1};
  EXPECT_EQ(Service.warm(Fleet, 3), 2);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Precomputed, 2u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.CacheEntries, 2u);
  // Campaign-shaped traffic now serves entirely from the cache.
  EXPECT_TRUE(Service.plan(1, 3) != nullptr);
  EXPECT_TRUE(Service.plan(0, 3) != nullptr);
  S = Service.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 2u);

  // A capacity-bounded service warms only as many pairs as the GLOBAL
  // budget can hold, hottest first — regardless of which shards the
  // warmed pairs hash into.
  PlanServiceOptions Tiny;
  Tiny.CacheCapacity = 1;
  Tiny.Shards = 8;
  PlanService Bounded(buildChain(), Tiny);
  EXPECT_EQ(Bounded.warm(Fleet, 3), 1);
  EXPECT_TRUE(Bounded.plan(1, 3) != nullptr); // the hot pair: a hit
  EXPECT_EQ(Bounded.stats().Hits, 1u);
}

TEST(PlanService, ClearCacheResetsEntriesButNotAccounting) {
  PlanService Service(buildChain());
  EXPECT_TRUE(Service.plan(0, 3) != nullptr);
  EXPECT_TRUE(Service.plan(1, 3) != nullptr);
  EXPECT_EQ(Service.stats().CacheEntries, 2u);
  Service.clearCache();
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.CacheEntries, 0u);
  EXPECT_EQ(S.Evictions, 0u) << "a clear is not an eviction";
  EXPECT_TRUE(Service.plan(0, 3) != nullptr);
  EXPECT_EQ(Service.stats().Misses, 3u);
}

TEST(PlanService, CampaignThroughServiceMatchesStoreBackedCampaign) {
  // The serving-layer campaign must be flood-for-flood identical to the
  // core store-backed one (same plans, same seeds, same joules).
  VersionStore Store = buildChain();
  Topology T = Topology::line(9);
  std::vector<int> Deployed = {3, 0, 1, 2, 0, 1, 3, 2, 0};
  RadioChannel Channel;
  Channel.LossRate = 0.15;
  Channel.Seed = 7;

  DiagnosticEngine Diag;
  auto ViaStore = planFleetCampaign(Store, T, Deployed, 3, Diag,
                                    PacketFormat(), Mica2Power(), Channel);
  ASSERT_TRUE(ViaStore.has_value()) << Diag.str();

  PlanService Service(buildChain());
  auto ViaService =
      planFleetCampaign(Service, T, Deployed, 3, Diag, PacketFormat(),
                        Mica2Power(), Channel);
  ASSERT_TRUE(ViaService.has_value()) << Diag.str();

  ASSERT_EQ(ViaService->Cohorts.size(), ViaStore->Cohorts.size());
  for (size_t K = 0; K < ViaStore->Cohorts.size(); ++K) {
    EXPECT_EQ(ViaService->Cohorts[K].FromVersion,
              ViaStore->Cohorts[K].FromVersion);
    EXPECT_EQ(ViaService->Cohorts[K].Nodes, ViaStore->Cohorts[K].Nodes);
    EXPECT_EQ(ViaService->Cohorts[K].ScriptBytes,
              ViaStore->Cohorts[K].ScriptBytes);
    EXPECT_DOUBLE_EQ(ViaService->Cohorts[K].Flood.totalJoules(),
                     ViaStore->Cohorts[K].Flood.totalJoules());
  }
  EXPECT_EQ(ViaService->totalBytesOnAir(), ViaStore->totalBytesOnAir());

  // An unknown target is a planning error, not a crash.
  DiagnosticEngine Diag2;
  EXPECT_FALSE(planFleetCampaign(Service, T, Deployed, 9, Diag2)
                   .has_value());
  EXPECT_TRUE(Diag2.hasErrors());
}

TEST(StaleVersions, DistinctSortedAndSinkSkipped) {
  EXPECT_EQ(staleVersions({3, 2, 1, 2, 3, 0}, 3),
            (std::vector<int>{0, 1, 2}));
  // Node 0's version never counts, even when stale.
  EXPECT_EQ(staleVersions({0, 3, 3}, 3), (std::vector<int>()));
  EXPECT_EQ(staleVersions({}, 3), (std::vector<int>()));
}

} // namespace
