//===- tests/PlanServiceTest.cpp - the update-distribution service --------===//
//
// The serving layer's contract: plans byte-identical to the raw store,
// exact hit/miss/eviction accounting, an exactly-once in-flight latch
// under contention, snapshot isolation across concurrent commits, and
// batch dedupe. The concurrent tests run under TSan in CI — they are the
// data-race regression net for the RCU snapshot and the cache latch.
//
//===----------------------------------------------------------------------===//

#include "serve/PlanService.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace ucc;

namespace {

CompileOptions uccOptions() {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  return Opts;
}

/// A four-version chain alternating between a real update case's old and
/// new sources: v0/v2 and v1/v3 share source text (and image content), so
/// the canonical content-hash cache key collides across distinct id pairs
/// — exactly the case the exact-id confirmation must tell apart.
VersionStore buildChain(int Versions = 4) {
  const UpdateCase &Case = updateCases()[5];
  VersionStore Store;
  DiagnosticEngine Diag;
  EXPECT_EQ(Store.addInitial(Case.OldSource, uccOptions(), Diag), 0)
      << Diag.str();
  for (int V = 1; V < Versions; ++V) {
    const std::string &Source =
        (V % 2) ? Case.NewSource : Case.OldSource;
    EXPECT_EQ(Store.addUpdate(Source, uccOptions(), Diag), V)
        << Diag.str();
  }
  return Store;
}

std::vector<uint8_t> planBytes(const std::optional<UpdatePlan> &P) {
  EXPECT_TRUE(P.has_value());
  return P ? P->Update.serialize() : std::vector<uint8_t>();
}

TEST(PlanService, ServesByteIdenticalPlansAcrossJobCounts) {
  // The acceptance anchor, at --jobs 1 and --jobs 8: a served plan is the
  // raw VersionStore::plan result, byte for byte, including the route
  // metadata the campaign layer keys on.
  for (int Jobs : {1, 8}) {
    ThreadPool::setDefaultJobs(Jobs);
    VersionStore Reference = buildChain();
    PlanService Service(buildChain());
    for (int From = 0; From < 4; ++From)
      for (int To = 0; To < 4; ++To) {
        auto Served = Service.plan(From, To);
        auto Direct = Reference.plan(From, To);
        ASSERT_TRUE(Served.has_value()) << From << "->" << To;
        EXPECT_EQ(Served->Update.serialize(), Direct->Update.serialize())
            << From << "->" << To << " at jobs " << Jobs;
        EXPECT_EQ(Served->Route, Direct->Route);
        EXPECT_EQ(Served->ScriptBytes, Direct->ScriptBytes);
        EXPECT_EQ(Served->ChainSteps, Direct->ChainSteps);
      }
  }
  ThreadPool::setDefaultJobs(0);
}

TEST(PlanService, SharedContentHashesAreToldApartByIds) {
  // v0 and v2 are content-identical, so (0,3) and (2,3) collide on the
  // canonical key; the collision chain must still serve each id pair its
  // own plan (they differ in chain depth).
  PlanService Service(buildChain());
  auto A = Service.plan(0, 3);
  auto B = Service.plan(2, 3);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->ChainSteps, 3);
  EXPECT_EQ(B->ChainSteps, 1);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Hits, 0u);
  // And both stay cached as distinct entries.
  EXPECT_EQ(planBytes(Service.plan(0, 3)), planBytes(A));
  EXPECT_EQ(planBytes(Service.plan(2, 3)), planBytes(B));
  EXPECT_EQ(Service.stats().Hits, 2u);
}

TEST(PlanService, HitMissEvictionAccounting) {
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 2;
  PlanService Service(buildChain(), Opts);

  EXPECT_TRUE(Service.plan(0, 3).has_value()); // miss
  EXPECT_TRUE(Service.plan(0, 3).has_value()); // hit
  EXPECT_TRUE(Service.plan(1, 3).has_value()); // miss
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, 3u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.CacheEntries, 2u);

  // Re-touch (0,3) so (1,3) is the least recently used, then a third
  // pair evicts it.
  EXPECT_TRUE(Service.plan(0, 3).has_value()); // hit, moves to front
  EXPECT_TRUE(Service.plan(2, 3).has_value()); // miss, evicts (1,3)
  S = Service.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.CacheEntries, 2u);
  EXPECT_TRUE(Service.plan(0, 3).has_value()); // still cached: hit
  EXPECT_EQ(Service.stats().Hits, 3u);
  EXPECT_TRUE(Service.plan(1, 3).has_value()); // evicted: misses again
  S = Service.stats();
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.Evictions, 2u);
}

TEST(PlanService, LatencyHistogramCoversEveryRequest) {
  PlanService Service(buildChain());
  EXPECT_EQ(Service.latency().count(), 0u);

  EXPECT_TRUE(Service.plan(0, 3).has_value()); // miss (slow path)
  EXPECT_TRUE(Service.plan(0, 3).has_value()); // hit (fast path)
  EXPECT_FALSE(Service.plan(0, 99).has_value()); // failure still counts
  std::vector<std::pair<int, int>> Batch = {{0, 3}, {1, 3}};
  Service.planBatch(Batch);

  // One histogram entry per plan() call, batch items included.
  const LatencyHistogram &H = Service.latency();
  EXPECT_EQ(H.count(), 5u);
  EXPECT_GT(H.maxSeconds(), 0.0);
  double P50 = H.quantileSeconds(0.5);
  double P99 = H.quantileSeconds(0.99);
  EXPECT_GE(P50, H.minSeconds());
  EXPECT_LE(P99, H.maxSeconds());
  EXPECT_LE(P50, P99);

  // resetLatency scopes the histogram to a measurement phase without
  // disturbing the cumulative service stats.
  uint64_t PlansBefore = Service.stats().Plans;
  Service.resetLatency();
  EXPECT_EQ(Service.latency().count(), 0u);
  EXPECT_EQ(Service.stats().Plans, PlansBefore);
  EXPECT_TRUE(Service.plan(1, 3).has_value());
  EXPECT_EQ(Service.latency().count(), 1u);
}

TEST(PlanService, CapacityZeroDisablesCaching) {
  PlanServiceOptions Opts;
  Opts.CacheCapacity = 0;
  PlanService Service(buildChain(), Opts);
  for (int K = 0; K < 3; ++K)
    EXPECT_TRUE(Service.plan(0, 3).has_value());
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.CacheEntries, 0u);
}

TEST(PlanService, UnknownIdsAnswerNulloptAndAreNeverCached) {
  PlanService Service(buildChain());
  EXPECT_FALSE(Service.plan(0, 99).has_value());
  EXPECT_FALSE(Service.plan(-3, 0).has_value());
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, 2u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.CacheEntries, 0u);
}

TEST(PlanService, ExactlyOnceLatchUnderContention) {
  // Many threads hammer one pair on a cold cache: the latch must let
  // exactly one of them compute while the rest wait and share the result.
  PlanService Service(buildChain());
  constexpr int NumThreads = 8;
  std::atomic<int> Ready{0};
  std::vector<std::vector<uint8_t>> Results(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Ready.fetch_add(1);
      while (Ready.load() < NumThreads) {
      } // start as simultaneously as the scheduler allows
      auto P = Service.plan(0, 3);
      ASSERT_TRUE(P.has_value());
      Results[static_cast<size_t>(T)] = P->Update.serialize();
    });
  for (std::thread &T : Threads)
    T.join();

  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Plans, static_cast<uint64_t>(NumThreads));
  EXPECT_EQ(S.Misses, 1u) << "the pair must be computed exactly once";
  EXPECT_EQ(S.Hits, static_cast<uint64_t>(NumThreads - 1));
  EXPECT_EQ(S.CacheEntries, 1u);
  for (int T = 1; T < NumThreads; ++T)
    EXPECT_EQ(Results[static_cast<size_t>(T)], Results[0]);
}

TEST(PlanService, LatchContentionThroughThreadPoolBatch) {
  // The same exactly-once property when the contention comes from
  // planBatch's own ThreadPool fan-out: dedupe removes intra-batch
  // duplicates, so two overlapping batches contend on the latch instead.
  PlanService Service(buildChain());
  std::vector<std::pair<int, int>> Batch = {{0, 3}, {1, 3}, {2, 3}};
  std::thread Other(
      [&] { Service.planBatch(Batch, 4); });
  std::vector<std::optional<UpdatePlan>> Mine = Service.planBatch(Batch, 4);
  Other.join();

  for (const auto &P : Mine)
    EXPECT_TRUE(P.has_value());
  PlanServiceStats S = Service.stats();
  // Six requests total across both batches; each of the three pairs was
  // computed exactly once, whoever got there first.
  EXPECT_EQ(S.Plans, 6u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 3u);
}

TEST(PlanService, SnapshotIsolationAcrossCommitAndPlan) {
  // Readers keep planning (0,1) while the writer commits three more
  // versions. Every read must succeed against a coherent snapshot and
  // return the same bytes — commits never block or corrupt in-flight
  // plans. TSan checks the pointer-swap discipline.
  const UpdateCase &Case = updateCases()[5];
  PlanService Service(buildChain(2));
  std::vector<uint8_t> Expected = planBytes(Service.plan(0, 1));

  std::atomic<bool> Stop{false};
  std::atomic<int> Failures{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load()) {
        auto P = Service.plan(0, 1);
        if (!P || P->Update.serialize() != Expected)
          Failures.fetch_add(1);
      }
    });

  DiagnosticEngine Diag;
  for (int V = 2; V < 5; ++V) {
    const std::string &Source =
        (V % 2) ? Case.NewSource : Case.OldSource;
    ASSERT_EQ(Service.commit(Source, uccOptions(), Diag), V)
        << Diag.str();
  }
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(Service.versionCount(), 5u);
  EXPECT_EQ(Service.latestId(), 4);
  EXPECT_EQ(Service.stats().Commits, 3u);
  // The committed versions are immediately planable, and still byte-match
  // a store that took the same chain.
  VersionStore Reference = buildChain(5);
  auto Served = Service.plan(0, 4);
  auto Direct = Reference.plan(0, 4);
  ASSERT_TRUE(Served && Direct);
  EXPECT_EQ(Served->Update.serialize(), Direct->Update.serialize());
}

TEST(PlanService, BatchDedupesAndPreservesOrder) {
  PlanService Service(buildChain());
  std::vector<std::pair<int, int>> Pairs = {
      {0, 3}, {1, 3}, {0, 3}, {2, 3}, {1, 3}, {0, 3}};
  std::vector<std::optional<UpdatePlan>> Plans = Service.planBatch(Pairs);
  ASSERT_EQ(Plans.size(), Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I) {
    ASSERT_TRUE(Plans[I].has_value()) << "request " << I;
    EXPECT_EQ(Plans[I]->From, Pairs[I].first);
    EXPECT_EQ(Plans[I]->To, Pairs[I].second);
  }
  // Duplicates share the winner's plan, and only distinct pairs planned.
  EXPECT_EQ(planBytes(Plans[0]), planBytes(Plans[2]));
  EXPECT_EQ(planBytes(Plans[0]), planBytes(Plans[5]));
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Batches, 1u);
  EXPECT_EQ(S.BatchDeduped, 3u);
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Plans, 3u) << "deduped requests never reach plan()";

  // A failing pair inside a batch answers nullopt without failing others.
  std::vector<std::optional<UpdatePlan>> Mixed =
      Service.planBatch({{0, 3}, {0, 42}});
  EXPECT_TRUE(Mixed[0].has_value());
  EXPECT_FALSE(Mixed[1].has_value());
}

TEST(PlanService, WarmPrecomputesHotPairsFromFleetHistogram) {
  PlanService Service(buildChain());
  // Fleet: node 0 is the sink; version 1 dominates, version 0 trails.
  std::vector<int> Fleet = {3, 1, 1, 1, 0, 0, 3, 1};
  EXPECT_EQ(Service.warm(Fleet, 3), 2);
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.Precomputed, 2u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.CacheEntries, 2u);
  // Campaign-shaped traffic now serves entirely from the cache.
  EXPECT_TRUE(Service.plan(1, 3).has_value());
  EXPECT_TRUE(Service.plan(0, 3).has_value());
  S = Service.stats();
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Misses, 2u);

  // A capacity-bounded service warms only as many pairs as it can hold,
  // hottest first.
  PlanServiceOptions Tiny;
  Tiny.CacheCapacity = 1;
  PlanService Bounded(buildChain(), Tiny);
  EXPECT_EQ(Bounded.warm(Fleet, 3), 1);
  EXPECT_TRUE(Bounded.plan(1, 3).has_value()); // the hot pair: a hit
  EXPECT_EQ(Bounded.stats().Hits, 1u);
}

TEST(PlanService, ClearCacheResetsEntriesButNotAccounting) {
  PlanService Service(buildChain());
  EXPECT_TRUE(Service.plan(0, 3).has_value());
  EXPECT_TRUE(Service.plan(1, 3).has_value());
  EXPECT_EQ(Service.stats().CacheEntries, 2u);
  Service.clearCache();
  PlanServiceStats S = Service.stats();
  EXPECT_EQ(S.CacheEntries, 0u);
  EXPECT_EQ(S.Evictions, 0u) << "a clear is not an eviction";
  EXPECT_TRUE(Service.plan(0, 3).has_value());
  EXPECT_EQ(Service.stats().Misses, 3u);
}

TEST(PlanService, CampaignThroughServiceMatchesStoreBackedCampaign) {
  // The serving-layer campaign must be flood-for-flood identical to the
  // core store-backed one (same plans, same seeds, same joules).
  VersionStore Store = buildChain();
  Topology T = Topology::line(9);
  std::vector<int> Deployed = {3, 0, 1, 2, 0, 1, 3, 2, 0};
  RadioChannel Channel;
  Channel.LossRate = 0.15;
  Channel.Seed = 7;

  DiagnosticEngine Diag;
  auto ViaStore = planFleetCampaign(Store, T, Deployed, 3, Diag,
                                    PacketFormat(), Mica2Power(), Channel);
  ASSERT_TRUE(ViaStore.has_value()) << Diag.str();

  PlanService Service(buildChain());
  auto ViaService =
      planFleetCampaign(Service, T, Deployed, 3, Diag, PacketFormat(),
                        Mica2Power(), Channel);
  ASSERT_TRUE(ViaService.has_value()) << Diag.str();

  ASSERT_EQ(ViaService->Cohorts.size(), ViaStore->Cohorts.size());
  for (size_t K = 0; K < ViaStore->Cohorts.size(); ++K) {
    EXPECT_EQ(ViaService->Cohorts[K].FromVersion,
              ViaStore->Cohorts[K].FromVersion);
    EXPECT_EQ(ViaService->Cohorts[K].Nodes, ViaStore->Cohorts[K].Nodes);
    EXPECT_EQ(ViaService->Cohorts[K].ScriptBytes,
              ViaStore->Cohorts[K].ScriptBytes);
    EXPECT_DOUBLE_EQ(ViaService->Cohorts[K].Flood.totalJoules(),
                     ViaStore->Cohorts[K].Flood.totalJoules());
  }
  EXPECT_EQ(ViaService->totalBytesOnAir(), ViaStore->totalBytesOnAir());

  // An unknown target is a planning error, not a crash.
  DiagnosticEngine Diag2;
  EXPECT_FALSE(planFleetCampaign(Service, T, Deployed, 9, Diag2)
                   .has_value());
  EXPECT_TRUE(Diag2.hasErrors());
}

TEST(StaleVersions, DistinctSortedAndSinkSkipped) {
  EXPECT_EQ(staleVersions({3, 2, 1, 2, 3, 0}, 3),
            (std::vector<int>{0, 1, 2}));
  // Node 0's version never counts, even when stale.
  EXPECT_EQ(staleVersions({0, 3, 3}, 3), (std::vector<int>()));
  EXPECT_EQ(staleVersions({}, 3), (std::vector<int>()));
}

} // namespace
