//===- tests/VerifierTest.cpp - structural IR checks ----------------------===//

#include "ir/IR.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

/// A minimal valid module: `void main() { halt; }`.
Module minimalModule() {
  Module M;
  Function F;
  F.Name = "main";
  int BB = F.makeBlock("entry");
  Instr Halt;
  Halt.Op = Opcode::Halt;
  F.Blocks[static_cast<size_t>(BB)].Instrs.push_back(Halt);
  M.Functions.push_back(std::move(F));
  M.EntryFunc = 0;
  return M;
}

TEST(VerifierTest, AcceptsMinimalModule) {
  EXPECT_TRUE(verifyModule(minimalModule()).empty());
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module M = minimalModule();
  M.Functions[0].Blocks[0].Instrs.clear();
  Instr Const;
  Const.Op = Opcode::Const;
  Const.Dst = M.Functions[0].makeVReg();
  M.Functions[0].Blocks[0].Instrs.push_back(Const);
  auto Problems = verifyModule(M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, RejectsTerminatorMidBlock) {
  Module M = minimalModule();
  Instr Ret;
  Ret.Op = Opcode::Ret;
  auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), Ret); // ret before the halt
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsOutOfRangeVReg) {
  Module M = minimalModule();
  Instr Mov;
  Mov.Op = Opcode::Mov;
  Mov.Dst = 0; // no vregs exist
  Mov.Srcs = {3};
  auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), Mov);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsBadBlockReference) {
  Module M = minimalModule();
  Instr Br;
  Br.Op = Opcode::Br;
  Br.TrueBB = 7;
  M.Functions[0].Blocks[0].Instrs.back() = Br;
  auto Problems = verifyModule(M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("block reference"), std::string::npos);
}

TEST(VerifierTest, RejectsBadGlobalAndSlotIndices) {
  Module M = minimalModule();
  Instr Load;
  Load.Op = Opcode::LoadG;
  Load.Dst = M.Functions[0].makeVReg();
  Load.Global = 4; // no globals declared
  auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), Load);
  EXPECT_FALSE(verifyModule(M).empty());

  Module M2 = minimalModule();
  Instr Store;
  Store.Op = Opcode::StoreF;
  Store.Slot = 2; // no frame objects
  Store.Srcs = {M2.Functions[0].makeVReg()};
  M2.Functions[0].Blocks[0].Instrs.insert(
      M2.Functions[0].Blocks[0].Instrs.begin(), Store);
  EXPECT_FALSE(verifyModule(M2).empty());
}

TEST(VerifierTest, RejectsCallArityMismatch) {
  Module M = minimalModule();
  Function Callee;
  Callee.Name = "two";
  Callee.Params = {Callee.makeVReg("a"), Callee.makeVReg("b")};
  int BB = Callee.makeBlock("entry");
  Instr Ret;
  Ret.Op = Opcode::Ret;
  Callee.Blocks[static_cast<size_t>(BB)].Instrs.push_back(Ret);
  M.Functions.push_back(std::move(Callee));

  Instr Call;
  Call.Op = Opcode::Call;
  Call.Callee = 1;
  Call.Srcs = {}; // needs two arguments
  auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), Call);
  auto Problems = verifyModule(M);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("args"), std::string::npos);
}

TEST(VerifierTest, RejectsWrongOperandCount) {
  Module M = minimalModule();
  Instr Bin;
  Bin.Op = Opcode::Bin;
  Bin.Dst = M.Functions[0].makeVReg();
  Bin.Srcs = {Bin.Dst}; // binary op needs two sources
  auto &Instrs = M.Functions[0].Blocks[0].Instrs;
  Instrs.insert(Instrs.begin(), Bin);
  EXPECT_FALSE(verifyModule(M).empty());
}

TEST(VerifierTest, RejectsBadEntryIndex) {
  Module M = minimalModule();
  M.EntryFunc = 9;
  EXPECT_FALSE(verifyModule(M).empty());
}

} // namespace
