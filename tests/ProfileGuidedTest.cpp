//===- tests/ProfileGuidedTest.cpp - measured freq(s) drives decisions ----===//
//
// Section 2.1: the compiler "collects program execution profiles to
// estimate how often an updated code will be in use". This suite feeds a
// real simulator profile of the deployed image back into UCC-RA and checks
// that the measured frequencies move the mov-insertion break-even exactly
// as the energy model predicts.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, CompileOptions(), Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

TEST(ProfileGuided, ProfileTablesCoverEveryFunction) {
  CompileOutput Out = mustCompile(workloadSource("CntToLeds"));
  SimOptions Sim;
  Sim.CollectProfile = true;
  RunResult R = runImage(Out.Image, Sim);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;

  auto Freq = profiledStatementFrequencies(Out, R.InstrCounts);
  EXPECT_EQ(Freq.size(), Out.Image.Functions.size());
  ASSERT_TRUE(Freq.count("main"));
  ASSERT_TRUE(Freq.count("timer_fire"));
  // timer_fire runs 64 times per run of main.
  double MaxTimer = 0.0;
  for (double W : Freq["timer_fire"])
    MaxTimer = std::max(MaxTimer, W);
  EXPECT_NEAR(MaxTimer, 64.0, 1.0);
  // Every entry is positive (the floor).
  for (const auto &[Name, Table] : Freq)
    for (double W : Table)
      EXPECT_GT(W, 0.0) << Name;
}

TEST(ProfileGuided, MismatchedProfileIsRejected) {
  CompileOutput Out = mustCompile(workloadSource("Blink"));
  std::vector<uint64_t> Wrong(3, 1); // wrong length
  EXPECT_TRUE(profiledStatementFrequencies(Out, Wrong).empty());
}

TEST(ProfileGuided, MeasuredHeatFlipsTheMovDecision) {
  // In the Fig. 4 scenario the edited routine runs 8 times per run; the
  // static estimate says freq = 1. Pick Cnt between the two break-evens:
  // with the static estimate the mov looks affordable, with the measured
  // profile it does not.
  const UpdateCase &Case = liveRangeExtensionCase();
  CompileOutput V1 = mustCompile(Case.OldSource);

  SimOptions Sim;
  Sim.CollectProfile = true;
  RunResult R = runImage(V1.Image, Sim);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  auto Freq = profiledStatementFrequencies(V1, R.InstrCounts);
  ASSERT_TRUE(Freq.count("report"));

  CompileOptions Static;
  Static.RA = RegAllocKind::UpdateConscious;
  Static.DA = DataAllocKind::UpdateConscious;
  Static.Ucc.Cnt = 20000.0;

  CompileOptions Profiled = Static;
  Profiled.ProfiledFreq = Freq;

  DiagnosticEngine Diag;
  auto VStatic = Compiler::recompile(Case.NewSource, V1.Record, Static,
                                     Diag);
  auto VProfiled = Compiler::recompile(Case.NewSource, V1.Record,
                                       Profiled, Diag);
  ASSERT_TRUE(VStatic.has_value() && VProfiled.has_value()) << Diag.str();

  auto movsOf = [](const CompileOutput &Out) {
    int N = 0;
    for (const UccAllocStats &S : Out.RegAllocStats)
      N += S.InsertedMovs;
    return N;
  };
  EXPECT_GE(movsOf(*VStatic), 1)
      << "static freq=1 makes the mov look affordable at Cnt=2e4";
  EXPECT_EQ(movsOf(*VProfiled), 0)
      << "measured freq=8 pushes the mov past the break-even";

  // Both versions still behave identically to a fresh build.
  CompileOutput Fresh = mustCompile(Case.NewSource);
  RunResult A = runImage(Fresh.Image);
  RunResult B = runImage(VProfiled->Image);
  ASSERT_FALSE(B.Trapped) << B.TrapReason;
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

} // namespace
