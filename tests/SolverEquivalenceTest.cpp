//===- tests/SolverEquivalenceTest.cpp - sparse engine vs dense oracle ----===//
//
// The randomized harness pinning the production LP/ILP engine (sparse
// revised simplex, warm starts, best-first branch-and-bound) to the seed
// dense/DFS implementation kept as `solveLPDense`/`solveILPDfs`: same
// status and same objective (within 1e-6) on hundreds of generated
// instances, plus warm-vs-cold agreement under branching-style bound
// changes and the between-re-solves time-limit behavior.
//
//===----------------------------------------------------------------------===//

#include "lp/LP.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ucc;

namespace {

/// A random bounded LP in the shape of our window relaxations: a few
/// variables, LE/GE/EQ rows, occasional duplicate terms.
LPProblem makeRandomLP(RNG &Rng) {
  LPProblem P;
  int NumVars = static_cast<int>(Rng.range(2, 8));
  for (int V = 0; V < NumVars; ++V) {
    double Lo = static_cast<double>(Rng.range(-3, 1));
    double Hi = Lo + static_cast<double>(Rng.range(0, 6));
    double Cost = static_cast<double>(Rng.range(-9, 9));
    P.addVar(Cost, Lo, Hi);
  }
  int NumRows = static_cast<int>(Rng.range(1, 7));
  for (int C = 0; C < NumRows; ++C) {
    LPConstraint Con;
    int Terms = static_cast<int>(Rng.range(1, 4));
    double MaxAbs = 0.0;
    for (int T = 0; T < Terms; ++T) {
      int Var = static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars)));
      double Coef = static_cast<double>(Rng.range(-4, 4));
      if (Coef == 0.0)
        Coef = 1.0;
      Con.Terms.push_back({Var, Coef});
      MaxAbs += std::fabs(Coef) * 6.0;
    }
    uint64_t Kind = Rng.below(3);
    Con.S = Kind == 0   ? LPConstraint::Sense::LE
            : Kind == 1 ? LPConstraint::Sense::GE
                        : LPConstraint::Sense::EQ;
    // EQ rows with wild RHS are almost always infeasible; keep the RHS
    // in a plausible band so both outcomes are exercised.
    Con.RHS = static_cast<double>(
        Rng.range(-static_cast<int64_t>(MaxAbs / 2),
                  static_cast<int64_t>(MaxAbs / 2) + 1));
    P.addConstraint(std::move(Con));
  }
  return P;
}

/// A random 0/1 ILP small enough for the DFS oracle.
LPProblem makeRandomILP(RNG &Rng, std::vector<int> &IntVars) {
  LPProblem P;
  int NumVars = static_cast<int>(Rng.range(3, 10));
  for (int V = 0; V < NumVars; ++V) {
    P.addBinaryVar(static_cast<double>(Rng.range(-9, 9)));
    IntVars.push_back(V);
  }
  int NumRows = static_cast<int>(Rng.range(1, 6));
  for (int C = 0; C < NumRows; ++C) {
    LPConstraint Con;
    int Terms = static_cast<int>(Rng.range(1, 4));
    for (int T = 0; T < Terms; ++T)
      Con.Terms.push_back(
          {static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars))),
           static_cast<double>(Rng.range(-3, 3))});
    Con.S = Rng.chance(1, 3) ? LPConstraint::Sense::GE
                             : LPConstraint::Sense::LE;
    Con.RHS = static_cast<double>(Rng.range(-2, 5));
    P.addConstraint(std::move(Con));
  }
  return P;
}

// 16 parameterized shards x 16 instances = 256 random LPs.
class LPEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LPEquivalence, SparseMatchesDense) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 6271 + 31);
  for (int Case = 0; Case < 16; ++Case) {
    LPProblem P = makeRandomLP(Rng);
    LPResult Sparse = solveLP(P);
    LPResult Dense = solveLPDense(P);
    ASSERT_EQ(Sparse.Status, Dense.Status)
        << "shard " << GetParam() << " case " << Case;
    if (Sparse.Status == SolveStatus::Optimal) {
      EXPECT_NEAR(Sparse.Objective, Dense.Objective, 1e-6)
          << "shard " << GetParam() << " case " << Case;
      EXPECT_TRUE(isFeasible(P, Sparse.X));
      EXPECT_TRUE(Sparse.Basis.valid());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LPEquivalence, ::testing::Range(0, 16));

// 16 shards x 14 instances = 224 random ILPs.
class ILPEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ILPEquivalence, BestFirstMatchesDfs) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 9973 + 101);
  for (int Case = 0; Case < 14; ++Case) {
    std::vector<int> IntVars;
    LPProblem P = makeRandomILP(Rng, IntVars);
    ILPResult BestFirst = solveILP(P, IntVars);
    ILPResult Dfs = solveILPDfs(P, IntVars);
    ASSERT_EQ(BestFirst.Status, Dfs.Status)
        << "shard " << GetParam() << " case " << Case;
    if (BestFirst.Status == SolveStatus::Optimal) {
      EXPECT_NEAR(BestFirst.Objective, Dfs.Objective, 1e-6)
          << "shard " << GetParam() << " case " << Case;
      EXPECT_TRUE(isFeasible(P, BestFirst.X));
      for (int V : IntVars) {
        double X = BestFirst.X[static_cast<size_t>(V)];
        EXPECT_NEAR(X, std::round(X), 1e-6);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ILPEquivalence, ::testing::Range(0, 16));

// Warm starts: fixing a variable (the branch-and-bound bound change) and
// re-solving from the parent basis must agree with a cold solve of the
// modified problem. 16 shards x 14 = 224 warm re-solves.
class WarmStartEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartEquivalence, WarmMatchesCold) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 4409 + 17);
  for (int Case = 0; Case < 14; ++Case) {
    LPProblem P = makeRandomLP(Rng);
    SparseSimplex Engine(P);
    LPResult Parent = Engine.solve();
    if (Parent.Status != SolveStatus::Optimal)
      continue;

    // Tighten one variable the way branching does: pin it to one end of
    // its domain.
    int Var = static_cast<int>(Rng.below(static_cast<uint64_t>(P.NumVars)));
    double Lo = P.Lower[static_cast<size_t>(Var)];
    double Hi = P.Upper[static_cast<size_t>(Var)];
    double Pin = Rng.chance(1, 2) ? std::floor((Lo + Hi) / 2) : Hi;
    Engine.setVarBounds(Var, Pin, Pin);

    LPResult Warm = Engine.solveWarm(Parent.Basis);

    LPProblem Child = P;
    Child.Lower[static_cast<size_t>(Var)] = Pin;
    Child.Upper[static_cast<size_t>(Var)] = Pin;
    LPResult Cold = solveLPDense(Child);

    ASSERT_EQ(Warm.Status, Cold.Status)
        << "shard " << GetParam() << " case " << Case << " var " << Var
        << " pin " << Pin;
    if (Warm.Status == SolveStatus::Optimal) {
      EXPECT_NEAR(Warm.Objective, Cold.Objective, 1e-6)
          << "shard " << GetParam() << " case " << Case;
      EXPECT_TRUE(isFeasible(Child, Warm.X));
    }

    // The engine must be restorable for the sibling branch.
    Engine.setVarBounds(Var, Lo, Hi);
    LPResult Again = Engine.solveWarm(Parent.Basis);
    ASSERT_EQ(Again.Status, SolveStatus::Optimal);
    EXPECT_NEAR(Again.Objective, Parent.Objective, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartEquivalence,
                         ::testing::Range(0, 16));

TEST(ILPTimeout, ZeroBudgetReportsTimedOut) {
  RNG Rng(42);
  std::vector<int> IntVars;
  LPProblem P = makeRandomILP(Rng, IntVars);
  ILPOptions Opts;
  Opts.TimeLimitSec = 0.0; // expires between any two checks
  ILPResult R = solveILP(P, IntVars, Opts);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_TRUE(R.Status == SolveStatus::Limit ||
              R.Status == SolveStatus::Feasible);
}

TEST(ILPTimeout, HintSurvivesTimeout) {
  // With a feasible integral hint, even a timed-out search returns the
  // hint as a Feasible incumbent instead of Limit.
  LPProblem P;
  std::vector<int> IntVars = {P.addBinaryVar(-1.0), P.addBinaryVar(-1.0)};
  P.addLE({{0, 1.0}, {1, 1.0}}, 1.0);
  std::vector<double> Hint = {1.0, 0.0};
  ILPOptions Opts;
  Opts.TimeLimitSec = 0.0;
  Opts.Hint = &Hint;
  ILPResult R = solveILP(P, IntVars, Opts);
  EXPECT_TRUE(R.TimedOut);
  EXPECT_EQ(R.Status, SolveStatus::Feasible);
  EXPECT_NEAR(R.Objective, -1.0, 1e-9);
}

TEST(ILPTimeout, UntimedSolveReportsNoTimeout) {
  LPProblem P;
  std::vector<int> IntVars = {P.addBinaryVar(-1.0)};
  ILPResult R = solveILP(P, IntVars);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_EQ(R.Status, SolveStatus::Optimal);
}

} // namespace
