//===- tests/PipelineTest.cpp - frontend-to-simulator integration ---------===//

#include "codegen/BinaryImage.h"
#include "codegen/ISel.h"
#include "dataalloc/DataAlloc.h"
#include "frontend/IRGen.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "regalloc/LinearScan.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

/// Compiles MiniC source with the baseline pipeline and returns the image.
BinaryImage compileBaseline(const std::string &Source) {
  DiagnosticEngine Diag;
  Module M = compileToIR(Source, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  EXPECT_TRUE(moduleIsValid(M));
  optimizeModule(M);
  EXPECT_TRUE(moduleIsValid(M));

  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);

  DataLayoutMap DL = layoutGlobalsBaseline(M);
  std::vector<FrameLayout> Frames;
  for (const MachineFunction &MF : MM.Functions)
    Frames.push_back(layoutFrame(MF));
  return encodeModule(MM, M, DL, Frames);
}

RunResult runSource(const std::string &Source, SimOptions Opts = {}) {
  BinaryImage Img = compileBaseline(Source);
  RunResult R = runImage(Img, Opts);
  EXPECT_FALSE(R.Trapped) << R.TrapReason << "\n" << Img.disassemble();
  return R;
}

TEST(Pipeline, ArithmeticAndDebugOutput) {
  RunResult R = runSource(R"(
    void main() {
      __out(15, 2 + 3 * 4);
      __out(15, (10 - 4) / 2);
      __out(15, 17 % 5);
      __out(15, 1 << 4);
      __out(15, -32 >> 2);
      __out(15, 0xf0 ^ 0xff);
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 6u);
  EXPECT_EQ(R.DebugTrace[0], 14);
  EXPECT_EQ(R.DebugTrace[1], 3);
  EXPECT_EQ(R.DebugTrace[2], 2);
  EXPECT_EQ(R.DebugTrace[3], 16);
  EXPECT_EQ(R.DebugTrace[4], -8);
  EXPECT_EQ(R.DebugTrace[5], 0x0f);
  EXPECT_TRUE(R.Halted);
}

TEST(Pipeline, LoopsAndGlobals) {
  RunResult R = runSource(R"(
    int total;
    void main() {
      int i;
      for (i = 1; i <= 10; i = i + 1) {
        total = total + i;
      }
      __out(15, total);
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 55);
}

TEST(Pipeline, FunctionCallsAndRecursion) {
  RunResult R = runSource(R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    void main() {
      __out(15, fib(10));
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 55);
}

TEST(Pipeline, GlobalArraysAndLocalArrays) {
  RunResult R = runSource(R"(
    int table[5] = {3, 1, 4, 1, 5};
    void main() {
      int acc = 0;
      int squares[5];
      int i;
      for (i = 0; i < 5; i = i + 1) {
        squares[i] = table[i] * table[i];
      }
      for (i = 0; i < 5; i = i + 1) {
        acc = acc + squares[i];
      }
      __out(15, acc);
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 9 + 1 + 16 + 1 + 25);
}

TEST(Pipeline, ShortCircuitSemantics) {
  RunResult R = runSource(R"(
    int hits;
    int bump() { hits = hits + 1; return 1; }
    void main() {
      if (0 && bump()) { __out(15, 99); }
      if (1 || bump()) { __out(15, hits); }
      if (bump() && 1) { __out(15, hits); }
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 2u);
  EXPECT_EQ(R.DebugTrace[0], 0); // neither bump ran yet
  EXPECT_EQ(R.DebugTrace[1], 1); // exactly one bump ran
}

TEST(Pipeline, LedAndRadioPorts) {
  RunResult R = runSource(R"(
    void main() {
      int i;
      for (i = 0; i < 3; i = i + 1) {
        __out(0, i);
      }
      __out(1, 7);
      __out(1, 8);
      __out(2, 2);
      __halt();
    }
  )");
  ASSERT_EQ(R.LedTrace.size(), 3u);
  EXPECT_EQ(R.LedTrace[2], 2);
  ASSERT_EQ(R.Packets.size(), 1u);
  ASSERT_EQ(R.Packets[0].size(), 2u);
  EXPECT_EQ(R.Packets[0][0], 7);
  EXPECT_EQ(R.Packets[0][1], 8);
}

TEST(Pipeline, SensorPortScripted) {
  SimOptions Opts;
  Opts.SensorInput = {10, 20, 30};
  RunResult R = runSource(R"(
    void main() {
      __out(15, __in(4) + __in(4) + __in(4) + __in(4));
      __halt();
    }
  )",
                          Opts);
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 60); // exhausted sensor reads 0
}

TEST(Pipeline, HighRegisterPressureSpills) {
  // 16 simultaneously-live values cannot fit in 12 registers.
  RunResult R = runSource(R"(
    void main() {
      int a0 = 1; int a1 = 2; int a2 = 3; int a3 = 4;
      int a4 = 5; int a5 = 6; int a6 = 7; int a7 = 8;
      int b0 = a0 * 2; int b1 = a1 * 2; int b2 = a2 * 2; int b3 = a3 * 2;
      int b4 = a4 * 2; int b5 = a5 * 2; int b6 = a6 * 2; int b7 = a7 * 2;
      __out(15, a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
              + b0 + b1 + b2 + b3 + b4 + b5 + b6 + b7);
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 36 + 72);
}

TEST(Pipeline, ValuesLiveAcrossCalls) {
  RunResult R = runSource(R"(
    int id(int x) { return x; }
    void main() {
      int a = 3;
      int b = 5;
      int c = id(7);
      __out(15, a + b + c);
      __halt();
    }
  )");
  ASSERT_EQ(R.DebugTrace.size(), 1u);
  EXPECT_EQ(R.DebugTrace[0], 15);
}

TEST(Pipeline, ImageSerializationRoundTrip) {
  BinaryImage Img = compileBaseline(R"(
    int g = 9;
    void main() { __out(15, g); __halt(); }
  )");
  std::vector<uint8_t> Bytes = Img.serialize();
  BinaryImage Back;
  ASSERT_TRUE(BinaryImage::deserialize(Bytes, Back));
  EXPECT_EQ(Back.Code, Img.Code);
  EXPECT_EQ(Back.DataInit, Img.DataInit);
  EXPECT_EQ(Back.EntryFunc, Img.EntryFunc);
  ASSERT_EQ(Back.Functions.size(), Img.Functions.size());
  EXPECT_EQ(Back.Functions[0].Name, Img.Functions[0].Name);

  RunResult A = runImage(Img);
  RunResult B = runImage(Back);
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

TEST(Pipeline, InfiniteLoopTrapsOnBudget) {
  DiagnosticEngine Diag;
  Module M = compileToIR("void main() { while (1) {} }", Diag);
  ASSERT_FALSE(Diag.hasErrors());
  optimizeModule(M);
  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);
  DataLayoutMap DL = layoutGlobalsBaseline(M);
  std::vector<FrameLayout> Frames;
  for (const MachineFunction &MF : MM.Functions)
    Frames.push_back(layoutFrame(MF));
  BinaryImage Img = encodeModule(MM, M, DL, Frames);

  SimOptions Opts;
  Opts.MaxSteps = 1000;
  RunResult R = runImage(Img, Opts);
  EXPECT_TRUE(R.Trapped);
  EXPECT_FALSE(R.Halted);
}

TEST(Pipeline, CycleCountingIsDeterministic) {
  BinaryImage Img = compileBaseline(R"(
    void main() {
      int i;
      int acc = 0;
      for (i = 0; i < 100; i = i + 1) { acc = acc + i; }
      __out(15, acc);
      __halt();
    }
  )");
  RunResult A = runImage(Img);
  RunResult B = runImage(Img);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_GT(A.Cycles, 100u);
}

} // namespace
