//===- tests/UccStatsTest.cpp - UCC-RA bookkeeping and chunking -----------===//
//
// The allocator's statistics feed both the evaluation harness and the
// compiler's own decisions; this suite pins down their meaning on real
// recompilations.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, CompileOptions(), Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOutput recompileUcc(const std::string &Source,
                           const CompilationRecord &Old, int ChunkK = 3) {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  Opts.Ucc.ChunkK = ChunkK;
  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(Source, Old, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

TEST(UccStats, UnchangedSourceMatchesEverythingAndBreaksNothing) {
  const std::string &Src = workloadSource("CntToLeds");
  CompileOutput V1 = mustCompile(Src);
  CompileOutput V2 = recompileUcc(Src, V1.Record);

  int Total = 0, Matched = 0, Broken = 0, Movs = 0;
  for (const UccAllocStats &S : V2.RegAllocStats) {
    Total += S.TotalInstrs;
    Matched += S.MatchedInstrs;
    Broken += S.PrefBroken;
    Movs += S.InsertedMovs;
  }
  EXPECT_EQ(Matched, Total) << "identical source must fully align";
  EXPECT_EQ(Broken, 0);
  EXPECT_EQ(Movs, 0);
}

TEST(UccStats, SmallEditKeepsMostInstructionsMatched) {
  const UpdateCase &Case = updateCases()[0]; // case 1
  CompileOutput V1 = mustCompile(Case.OldSource);
  CompileOutput V2 = recompileUcc(Case.NewSource, V1.Record);

  int Total = 0, Matched = 0, Honored = 0;
  for (const UccAllocStats &S : V2.RegAllocStats) {
    Total += S.TotalInstrs;
    Matched += S.MatchedInstrs;
    Honored += S.PrefHonored;
  }
  EXPECT_GT(Matched, Total * 9 / 10)
      << "a one-constant edit must align >90% of the code";
  EXPECT_GT(Honored, 0);
}

TEST(UccStats, HugeChunkThresholdDegradesGracefully) {
  // With K larger than every unchanged run, everything folds into one
  // changed chunk: no anchors survive, yet the compiler must still produce
  // correct (and still fairly similar, via soft preferences) code.
  const UpdateCase &Case = updateCases()[7]; // case 8
  CompileOutput V1 = mustCompile(Case.OldSource);
  CompileOutput Tight = recompileUcc(Case.NewSource, V1.Record, /*K=*/3);
  CompileOutput Slack = recompileUcc(Case.NewSource, V1.Record,
                                     /*K=*/10000);

  int DiffTight = diffImages(V1.Image, Tight.Image).totalDiffInst();
  int DiffSlack = diffImages(V1.Image, Slack.Image).totalDiffInst();
  EXPECT_LE(DiffTight, DiffSlack)
      << "anchoring (small K) must not lose to no anchoring";
}

TEST(UccStats, StatsArePerFunctionAndCoverAllFunctions) {
  const std::string &Src = workloadSource("Blink");
  CompileOutput V1 = mustCompile(Src);
  CompileOutput V2 = recompileUcc(Src, V1.Record);
  EXPECT_EQ(V2.RegAllocStats.size(), V2.MachineCode.Functions.size());
  for (size_t F = 0; F < V2.RegAllocStats.size(); ++F)
    EXPECT_EQ(V2.RegAllocStats[F].TotalInstrs,
              V2.MachineCode.Functions[F].instrCount());
}

} // namespace
