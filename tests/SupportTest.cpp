//===- tests/SupportTest.cpp - support-library unit tests -----------------===//

#include "support/BitVector.h"
#include "support/ByteStream.h"
#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace ucc;

namespace {

TEST(Format, BasicFormatting) {
  EXPECT_EQ(format("%d + %d = %d", 2, 3, 5), "2 + 3 = 5");
  EXPECT_EQ(format("%s/%c", "abc", 'x'), "abc/x");
  EXPECT_EQ(format("%.3f", 1.5), "1.500");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Format, LongStringsDoNotTruncate) {
  std::string Long(5000, 'y');
  std::string Out = format("<%s>", Long.c_str());
  EXPECT_EQ(Out.size(), 5002u);
}

TEST(Diagnostics, CollectsAndRenders) {
  DiagnosticEngine Diag;
  EXPECT_FALSE(Diag.hasErrors());
  Diag.warning({2, 5}, "looks odd");
  EXPECT_FALSE(Diag.hasErrors());
  Diag.error({3, 1}, "broken");
  EXPECT_TRUE(Diag.hasErrors());
  EXPECT_EQ(Diag.errorCount(), 1u);
  std::string Text = Diag.str();
  EXPECT_NE(Text.find("2:5: warning: looks odd"), std::string::npos);
  EXPECT_NE(Text.find("3:1: error: broken"), std::string::npos);
  Diag.clear();
  EXPECT_FALSE(Diag.hasErrors());
}

TEST(BitVectorTest, SetResetAndCount) {
  BitVector BV(130);
  EXPECT_FALSE(BV.any());
  BV.set(0);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 3u);
  BV.reset(64);
  EXPECT_EQ(BV.count(), 2u);
}

TEST(BitVectorTest, SetOperations) {
  BitVector A(100), B(100);
  A.set(3);
  A.set(70);
  B.set(70);
  B.set(80);

  BitVector U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_EQ(U.count(), 3u);
  EXPECT_FALSE(U.unionWith(B)); // already included

  BitVector I = A;
  I.intersectWith(B);
  EXPECT_EQ(I.count(), 1u);
  EXPECT_TRUE(I.test(70));

  BitVector S = A;
  S.subtract(B);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_TRUE(S.test(3));
}

TEST(BitVectorTest, ForEachVisitsAscending) {
  BitVector BV(200);
  std::vector<size_t> Expect = {1, 63, 64, 65, 128, 199};
  for (size_t K : Expect)
    BV.set(K);
  std::vector<size_t> Seen;
  BV.forEach([&](size_t K) { Seen.push_back(K); });
  EXPECT_EQ(Seen, Expect);
}

TEST(ByteStream, ScalarRoundTrip) {
  ByteWriter W;
  W.writeU8(0xab);
  W.writeU16(0x1234);
  W.writeU32(0xdeadbeef);
  W.writeU64(0x0123456789abcdefULL);
  W.writeI32(-42);
  W.writeString("hello");

  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU8(), 0xab);
  EXPECT_EQ(R.readU16(), 0x1234);
  EXPECT_EQ(R.readU32(), 0xdeadbeefu);
  EXPECT_EQ(R.readU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(R.readI32(), -42);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_TRUE(R.atEnd());
  EXPECT_FALSE(R.hadError());
}

TEST(ByteStream, OverrunLatchesError) {
  ByteWriter W;
  W.writeU16(7);
  ByteReader R(W.bytes());
  (void)R.readU32(); // only two bytes available
  EXPECT_TRUE(R.hadError());
  EXPECT_EQ(R.readU8(), 0u); // stays in error state
  EXPECT_EQ(R.readString(), "");
}

TEST(ByteStream, TruncatedStringDetected) {
  ByteWriter W;
  W.writeU32(100); // claims a 100-byte string
  W.writeU8('x');
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readString(), "");
  EXPECT_TRUE(R.hadError());
}

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(12345), B(12345), C(54321);
  bool Differs = false;
  for (int K = 0; K < 100; ++K) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    Differs |= VA != C.next();
  }
  EXPECT_TRUE(Differs);
}

TEST(RNGTest, BoundsRespected) {
  RNG Rng(7);
  for (int K = 0; K < 1000; ++K) {
    EXPECT_LT(Rng.below(17), 17u);
    int64_t V = Rng.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = Rng.unitReal();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RNGTest, CoversTheRange) {
  RNG Rng(11);
  std::set<uint64_t> Seen;
  for (int K = 0; K < 400; ++K)
    Seen.insert(Rng.below(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(ZipfSamplerTest, RankFrequenciesDecreaseMonotonically) {
  // With 50k draws the expected counts at s=1.1 are far enough apart that
  // observed counts over the head ranks order strictly.
  const size_t N = 8;
  ZipfSampler Zipf(N, 1.1);
  RNG Rng(42);
  std::vector<int> Count(N, 0);
  for (int K = 0; K < 50000; ++K) {
    size_t Rank = Zipf.sample(Rng);
    ASSERT_GE(Rank, 1u);
    ASSERT_LE(Rank, N);
    ++Count[Rank - 1];
  }
  for (size_t R = 1; R < N; ++R)
    EXPECT_GE(Count[R - 1], Count[R])
        << "rank " << R << " must be at least as hot as rank " << R + 1;
  EXPECT_GT(Count[0], Count[3]) << "the head must clearly dominate";
}

TEST(ZipfSamplerTest, SkewMatchesTheAnalyticHead) {
  // P(rank 1) at s=1.1 over 8 ranks is ~0.40; a 50k-draw estimate lands
  // within a comfortable band, and higher skew concentrates more mass.
  ZipfSampler Mild(8, 1.1), Sharp(8, 2.0);
  RNG RngA(7), RngB(7);
  int HeadMild = 0, HeadSharp = 0;
  const int Draws = 50000;
  for (int K = 0; K < Draws; ++K) {
    HeadMild += Mild.sample(RngA) == 1;
    HeadSharp += Sharp.sample(RngB) == 1;
  }
  double PMild = static_cast<double>(HeadMild) / Draws;
  double PSharp = static_cast<double>(HeadSharp) / Draws;
  EXPECT_NEAR(PMild, 0.40, 0.03);
  EXPECT_GT(PSharp, PMild + 0.1)
      << "a sharper exponent must concentrate the head";
}

TEST(ZipfSamplerTest, DeterministicAcrossRunsForAFixedSeed) {
  ZipfSampler Zipf(16, 1.1);
  RNG A(123), B(123);
  std::vector<size_t> First, Second;
  for (int K = 0; K < 256; ++K)
    First.push_back(Zipf.sample(A));
  for (int K = 0; K < 256; ++K)
    Second.push_back(Zipf.sample(B));
  EXPECT_EQ(First, Second)
      << "serve-bench fleets must be reproducible from --seed alone";
  // Not degenerate: several distinct ranks appear in the stream.
  EXPECT_GT(std::set<size_t>(First.begin(), First.end()).size(), 3u);
}

} // namespace
