//===- tests/OptTest.cpp - optimizer pass tests ---------------------------===//

#include "frontend/IRGen.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "workloads/Workloads.h"

// Behavioral-equivalence checks drive the whole backend.
#include "codegen/BinaryImage.h"
#include "codegen/ISel.h"
#include "dataalloc/DataAlloc.h"
#include "regalloc/LinearScan.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

Module irFor(const std::string &Source) {
  DiagnosticEngine Diag;
  Module M = compileToIR(Source, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  EXPECT_TRUE(moduleIsValid(M));
  return M;
}

int totalInstrs(const Module &M) {
  int N = 0;
  for (const Function &F : M.Functions)
    N += F.instrCount();
  return N;
}

BinaryImage imageFor(Module M) {
  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);
  DataLayoutMap DL = layoutGlobalsBaseline(M);
  std::vector<FrameLayout> Frames;
  for (const MachineFunction &MF : MM.Functions)
    Frames.push_back(layoutFrame(MF));
  return encodeModule(MM, M, DL, Frames);
}

TEST(Optimizer, FoldsConstantExpressions) {
  Module M = irFor("void main() { __out(15, 2 + 3 * 4); __halt(); }");
  optimizeModule(M);
  // After folding + DCE only [const, out, halt] remain in main.
  const Function &F = M.Functions[0];
  EXPECT_EQ(F.instrCount(), 3) << M.print();
  EXPECT_EQ(F.Blocks[0].Instrs[0].Op, Opcode::Const);
  EXPECT_EQ(F.Blocks[0].Instrs[0].Imm, 14);
}

TEST(Optimizer, FoldsConstantBranches) {
  Module M = irFor(R"(
    void main() {
      if (1 < 2) { __out(15, 1); } else { __out(15, 2); }
      __halt();
    }
  )");
  int Before = totalInstrs(M);
  optimizeModule(M);
  EXPECT_LT(totalInstrs(M), Before);
  // The dead branch is unreachable and must be gone entirely.
  std::string Text = M.print();
  EXPECT_EQ(Text.find("const 2"), std::string::npos) << Text;
}

TEST(Optimizer, RemovesDeadCode) {
  Module M = irFor(R"(
    void main() {
      int unused = 3 * 7;
      int used = 5;
      __out(15, used);
      __halt();
    }
  )");
  optimizeModule(M);
  std::string Text = M.print();
  EXPECT_EQ(Text.find("mul"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("21"), std::string::npos) << Text;
}

TEST(Optimizer, EliminatesCommonSubexpressions) {
  Module M = irFor(R"(
    void main() {
      int a = __in(4);
      int x = a * 13 + 1;
      int y = a * 13 + 2;
      __out(15, x + y);
      __halt();
    }
  )");
  optimizeModule(M);
  // `a * 13` must be computed once.
  int Muls = 0;
  for (const BasicBlock &BB : M.Functions[0].Blocks)
    for (const Instr &I : BB.Instrs)
      Muls += I.Op == Opcode::Bin && I.BinK == BinKind::Mul;
  EXPECT_EQ(Muls, 1) << M.print();
}

TEST(Optimizer, DoesNotCseAcrossStores) {
  // Loads from a global are not CSE'd (a store may intervene).
  Module M = irFor(R"(
    int g;
    void main() {
      int x = g;
      g = x + 1;
      int y = g;
      __out(15, y);
      __halt();
    }
  )");
  optimizeModule(M);
  RunResult R = runImage(imageFor(M));
  ASSERT_FALSE(R.Trapped);
  EXPECT_EQ(R.DebugTrace[0], 1);
}

TEST(Optimizer, SimplifyCfgRemovesUnreachableBlocks) {
  Module M = irFor(R"(
    void main() {
      if (0) { __out(15, 111); }
      __out(15, 7);
      __halt();
    }
  )");
  size_t Before = M.Functions[0].Blocks.size();
  optimizeModule(M);
  EXPECT_LT(M.Functions[0].Blocks.size(), Before);
  EXPECT_TRUE(moduleIsValid(M));
}

TEST(Optimizer, O0LeavesModuleAlone) {
  Module M = irFor("void main() { __out(15, 1 + 1); __halt(); }");
  int Before = totalInstrs(M);
  EXPECT_FALSE(optimizeModule(M, OptLevel::O0));
  EXPECT_EQ(totalInstrs(M), Before);
}

/// The decisive property: optimization must never change behavior.
class OptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptEquivalence, WorkloadBehaviorUnchanged) {
  const Workload &W = workloads()[static_cast<size_t>(GetParam())];
  Module M0 = irFor(W.Source);
  Module M1 = irFor(W.Source);
  optimizeModule(M1);
  EXPECT_TRUE(moduleIsValid(M1));
  EXPECT_LE(totalInstrs(M1), totalInstrs(M0))
      << "optimization must not grow " << W.Name;

  SimOptions Sim;
  Sim.MaxSteps = 50'000'000;
  RunResult R0 = runImage(imageFor(std::move(M0)), Sim);
  RunResult R1 = runImage(imageFor(std::move(M1)), Sim);
  ASSERT_FALSE(R0.Trapped) << R0.TrapReason;
  ASSERT_FALSE(R1.Trapped) << R1.TrapReason;
  EXPECT_TRUE(R0.sameObservableBehavior(R1)) << W.Name;
  EXPECT_LE(R1.Cycles, R0.Cycles) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OptEquivalence,
                         ::testing::Range(0, 5));

} // namespace
