//===- tests/UccHybridTest.cpp - ILP strategy through the real pipeline ---===//

#include "core/Compiler.h"
#include "regalloc/Validator.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, CompileOptions(), Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

TEST(UccHybrid, IlpStrategySolvesStraightLineFunctions) {
  const UpdateCase &Case = updateCases()[2]; // case 3: CntToRfm am_type
  CompileOutput V1 = mustCompile(Case.OldSource);

  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  Opts.Ucc.Strategy = UccStrategy::Hybrid;
  Opts.Ucc.IlpMaxBinaries = 2000;

  DiagnosticEngine Diag;
  auto V2 = Compiler::recompile(Case.NewSource, V1.Record, Opts, Diag);
  ASSERT_TRUE(V2.has_value()) << Diag.str();

  // At least one straight-line function must have gone through the ILP.
  bool AnyIlp = false;
  for (const UccAllocStats &S : V2->RegAllocStats)
    AnyIlp |= S.UsedIlp;
  EXPECT_TRUE(AnyIlp);

  // Allocations validate and behavior matches a fresh baseline build.
  for (const MachineFunction &MF : V2->MachineCode.Functions) {
    auto Problems = validateAllocation(MF);
    EXPECT_TRUE(Problems.empty()) << (Problems.empty() ? "" : Problems[0]);
  }
  RunResult Fresh = runImage(mustCompile(Case.NewSource).Image);
  RunResult Ucc = runImage(V2->Image);
  ASSERT_FALSE(Ucc.Trapped) << Ucc.TrapReason;
  EXPECT_TRUE(Fresh.sameObservableBehavior(Ucc));
}

TEST(UccHybrid, IlpNeverWorseThanGreedyOnUpdateCases) {
  // Compare Diff_inst of the two engines on the small cases.
  for (int CaseIdx : {0, 2, 4}) {
    const UpdateCase &Case = updateCases()[static_cast<size_t>(CaseIdx)];
    CompileOutput V1 = mustCompile(Case.OldSource);

    CompileOptions Greedy;
    Greedy.RA = RegAllocKind::UpdateConscious;
    Greedy.Ucc.Strategy = UccStrategy::Greedy;

    CompileOptions Hybrid = Greedy;
    Hybrid.Ucc.Strategy = UccStrategy::Hybrid;
    Hybrid.Ucc.IlpMaxBinaries = 2000;

    DiagnosticEngine Diag;
    auto VGreedy = Compiler::recompile(Case.NewSource, V1.Record, Greedy,
                                       Diag);
    auto VHybrid = Compiler::recompile(Case.NewSource, V1.Record, Hybrid,
                                       Diag);
    ASSERT_TRUE(VGreedy.has_value() && VHybrid.has_value()) << Diag.str();

    int DiffGreedy =
        diffImages(V1.Image, VGreedy->Image).totalDiffInst();
    int DiffHybrid =
        diffImages(V1.Image, VHybrid->Image).totalDiffInst();
    // Both engines optimize the same objective; the ILP is optimal per
    // straight-line function, so it must not lose by more than noise from
    // multi-block functions (where both fall back to greedy).
    EXPECT_LE(DiffHybrid, DiffGreedy + 2) << "case " << Case.Id;
  }
}

} // namespace
