//===- tests/CampaignTest.cpp - mixed-version fleet campaigns -------------===//
//
// A fleet campaign floods one script per deployed-version cohort. The net
// layer only sees script sizes (by design — it must not know the compiler);
// planFleetCampaign binds the version-store planner into it.
//
//===----------------------------------------------------------------------===//

#include "core/VersionStore.h"
#include "net/Network.h"
#include "support/Telemetry.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

size_t fakeBytes(int From) { return From == 0 ? 100 : 40; }

TEST(Campaign, GroupsNodesByDeployedVersion) {
  Topology T = Topology::line(6);
  // Node 0 is the sink. Stale cohorts: v0 = {1,2}, v1 = {3,4}; node 5 is
  // already current.
  std::vector<int> Versions = {2, 0, 0, 1, 1, 2};
  CampaignResult R = runUpdateCampaign(T, Versions, 2, fakeBytes);

  EXPECT_EQ(R.TargetVersion, 2);
  EXPECT_EQ(R.NodesUpdated, 4);
  EXPECT_EQ(R.NodesCurrent, 1);
  ASSERT_EQ(R.Cohorts.size(), 2u);
  // Cohorts are ordered oldest version first.
  EXPECT_EQ(R.Cohorts[0].FromVersion, 0);
  EXPECT_EQ(R.Cohorts[0].Nodes, (std::vector<int>{1, 2}));
  EXPECT_EQ(R.Cohorts[0].ScriptBytes, 100u);
  EXPECT_EQ(R.Cohorts[1].FromVersion, 1);
  EXPECT_EQ(R.Cohorts[1].Nodes, (std::vector<int>{3, 4}));
  EXPECT_EQ(R.Cohorts[1].ScriptBytes, 40u);
}

TEST(Campaign, StaleVersionsAllCurrentIsEmpty) {
  // Every non-sink node already runs the target.
  EXPECT_TRUE(staleVersions({7, 3, 3, 3, 3}, 3).empty());
  // Single-node fleet: only the sink, nothing to plan.
  EXPECT_TRUE(staleVersions({0}, 5).empty());
  // Empty fleet.
  EXPECT_TRUE(staleVersions({}, 5).empty());
}

TEST(Campaign, StaleVersionsAllStaleListsEachVersionOnce) {
  // Node 0 (the sink, running 9) is skipped even though 9 != target.
  std::vector<int> Stale = staleVersions({9, 2, 0, 2, 1, 0}, 3);
  EXPECT_EQ(Stale, (std::vector<int>{0, 1, 2}));
}

TEST(Campaign, StaleVersionsSinkOnlyFleetIgnoresTheSink) {
  // The sink's own (stale-looking) version never forms a cohort, matching
  // runUpdateCampaign's grouping.
  std::vector<int> Versions = {0, 4, 4};
  EXPECT_EQ(staleVersions(Versions, 4), std::vector<int>{});
  CampaignResult R = runUpdateCampaign(Topology::line(3), Versions, 4,
                                       fakeBytes);
  EXPECT_TRUE(R.Cohorts.empty());
}

TEST(Campaign, AllNodesCurrentMeansNoFloods) {
  Topology T = Topology::star(5);
  std::vector<int> Versions(5, 3);
  CampaignResult R = runUpdateCampaign(T, Versions, 3, fakeBytes);
  EXPECT_TRUE(R.Cohorts.empty());
  EXPECT_EQ(R.NodesUpdated, 0);
  EXPECT_EQ(R.NodesCurrent, 4); // the sink is not counted
  EXPECT_EQ(R.totalJoules(), 0.0);
  EXPECT_EQ(R.totalBytesOnAir(), 0u);
}

TEST(Campaign, EnergyIsTheSumOfPerCohortFloods) {
  Topology T = Topology::grid(4, 3);
  std::vector<int> Versions = {2, 0, 1, 0, 1, 0, 2, 1, 0, 1, 0, 2};
  RadioChannel Channel;
  Channel.LossRate = 0.2;
  Channel.Seed = 77;
  CampaignResult R = runUpdateCampaign(T, Versions, 2, fakeBytes,
                                       PacketFormat(), Mica2Power(),
                                       Channel);
  ASSERT_EQ(R.Cohorts.size(), 2u);

  // Each cohort's flood must match a standalone dissemination with the
  // cohort-offset seed — the campaign adds bookkeeping, not new physics.
  double Total = 0.0;
  int Idx = 0;
  for (const UpdateCohort &C : R.Cohorts) {
    RadioChannel CohortChannel = Channel;
    CohortChannel.Seed = Channel.Seed + static_cast<uint64_t>(Idx);
    DisseminationResult Alone =
        disseminate(T, C.ScriptBytes, PacketFormat(), Mica2Power(),
                    CohortChannel);
    EXPECT_DOUBLE_EQ(C.Flood.totalJoules(), Alone.totalJoules());
    EXPECT_EQ(C.Flood.Retransmissions, Alone.Retransmissions);
    Total += Alone.totalJoules();
    ++Idx;
  }
  EXPECT_DOUBLE_EQ(R.totalJoules(), Total);
}

TEST(Campaign, EmitsPerCohortTelemetry) {
  Telemetry T;
  T.enableEvents();
  {
    TelemetryScope Scope(T);
    Topology Line = Topology::line(5);
    std::vector<int> Versions = {2, 0, 1, 0, 1};
    runUpdateCampaign(Line, Versions, 2, fakeBytes);
  }
  EXPECT_EQ(T.counter("net.campaigns"), 1);
  EXPECT_EQ(T.counter("net.cohorts"), 2);
  EXPECT_EQ(T.counter("net.floods"), 2);
  EXPECT_GT(T.gauge("net.campaign_joules"), 0.0);

  int CohortEvents = 0;
  for (const TelemetryEvent *Ev : T.eventsInOrder())
    if (Ev->Name == "campaign.cohort")
      ++CohortEvents;
  EXPECT_EQ(CohortEvents, 2);

  // The campaign span wraps the per-flood net spans.
  const TelemetrySpan *Campaign = T.spans().find("campaign");
  ASSERT_NE(Campaign, nullptr);
  const TelemetrySpan *Net = Campaign->find("net");
  ASSERT_NE(Net, nullptr);
  EXPECT_EQ(Net->Count, 2);
}

TEST(Campaign, PlanFleetCampaignShipsThePlannedScripts) {
  VersionStore Store;
  const UpdateCase &Case = updateCases()[5];
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  DiagnosticEngine Diag;
  ASSERT_EQ(Store.addInitial(Case.OldSource, Opts, Diag), 0) << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.NewSource, Opts, Diag), 1) << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.OldSource, Opts, Diag), 2) << Diag.str();

  Topology T = Topology::line(7);
  std::vector<int> Versions = {2, 0, 1, 2, 0, 1, 0};
  auto R = planFleetCampaign(Store, T, Versions, 2, Diag);
  ASSERT_TRUE(R.has_value()) << Diag.str();
  ASSERT_EQ(R->Cohorts.size(), 2u);
  EXPECT_EQ(R->NodesUpdated, 5);
  EXPECT_EQ(R->NodesCurrent, 1);

  // Every cohort's flood carries exactly the planner's chosen script, and
  // that script patches the cohort's image to the target image.
  for (const UpdateCohort &C : R->Cohorts) {
    auto P = Store.plan(C.FromVersion, 2);
    ASSERT_TRUE(P.has_value());
    EXPECT_EQ(C.ScriptBytes, P->ScriptBytes);
    BinaryImage Patched;
    ASSERT_TRUE(
        applyUpdate(Store.find(C.FromVersion)->Image, P->Update, Patched));
    EXPECT_EQ(Patched.serialize(), Store.find(2)->Image.serialize());
  }
}

TEST(Campaign, PlanFleetCampaignRejectsUnknownVersions) {
  VersionStore Store;
  const UpdateCase &Case = updateCases()[5];
  DiagnosticEngine Diag;
  ASSERT_EQ(Store.addInitial(Case.OldSource, CompileOptions(), Diag), 0);

  Topology T = Topology::line(3);
  std::vector<int> Versions = {0, 9, 0}; // node 1 claims an unknown version
  EXPECT_FALSE(planFleetCampaign(Store, T, Versions, 0, Diag).has_value());
  EXPECT_TRUE(Diag.hasErrors());
}

} // namespace
