//===- tests/CompileCacheTest.cpp - the function-level compile cache ------===//
//
// core/CompileCache under a microscope: exact hit/miss/eviction
// accounting, key discrimination (content twins, option changes, the old
// record slice), the exactly-once in-flight latch under real ThreadPool
// contention, and the end-to-end anchor — a cached compile chain is
// byte-identical to the uncached one.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"
#include "core/Compiler.h"
#include "core/VersionStore.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace ucc;

namespace {

/// A recognizable result for direct lookupOrCompute tests (no real
/// compilation involved; the cache stores whatever the functor returns).
CompiledFunction marked(const std::string &Name) {
  CompiledFunction R;
  R.Final.Name = Name;
  return R;
}

CompileOutput mustCompile(const std::string &Source, CompileOptions Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOutput mustRecompile(const std::string &Source,
                            const CompilationRecord &Old,
                            CompileOptions Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(Source, Old, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOptions uccOptions() {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  return Opts;
}

TEST(CompileCache, HitMissAccountingIsExact) {
  CompileCache Cache(4);
  CompileCache::Key A{1, 2, 3}, B{4, 5, 6};

  bool Hit = true;
  Cache.lookupOrCompute(A, [] { return marked("a"); }, &Hit);
  EXPECT_FALSE(Hit);
  CompiledFunction R = Cache.lookupOrCompute(
      A, [] { return marked("WRONG"); }, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(R.Final.Name, "a") << "hit must return the cached result, "
                                  "not recompute";
  Cache.lookupOrCompute(B, [] { return marked("b"); }, &Hit);
  EXPECT_FALSE(Hit);

  CompileCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 2u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(CompileCache, LruEvictionAtCapacity) {
  CompileCache Cache(2);
  CompileCache::Key A{1}, B{2}, C{3};

  Cache.lookupOrCompute(A, [] { return marked("a"); });
  Cache.lookupOrCompute(B, [] { return marked("b"); });
  Cache.lookupOrCompute(A, [] { return marked("x"); }); // A now MRU
  Cache.lookupOrCompute(C, [] { return marked("c"); }); // evicts B (LRU)

  bool Hit = false;
  CompiledFunction R =
      Cache.lookupOrCompute(A, [] { return marked("y"); }, &Hit);
  EXPECT_TRUE(Hit) << "A was MRU at the eviction, it must survive";
  EXPECT_EQ(R.Final.Name, "a");

  Cache.lookupOrCompute(B, [] { return marked("b2"); }, &Hit);
  EXPECT_FALSE(Hit) << "B was the LRU entry, it must have been evicted";

  CompileCacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 2u) << "C evicted B, then B's return evicted C";
  EXPECT_EQ(S.Entries, 2u);
}

TEST(CompileCache, CapacityZeroIsPassThrough) {
  CompileCache Cache(0);
  CompileCache::Key A{9};
  int Computes = 0;
  for (int K = 0; K < 3; ++K) {
    bool Hit = true;
    CompiledFunction R = Cache.lookupOrCompute(
        A,
        [&] {
          ++Computes;
          return marked("a");
        },
        &Hit);
    EXPECT_FALSE(Hit);
    EXPECT_EQ(R.Final.Name, "a");
  }
  EXPECT_EQ(Computes, 3);
  CompileCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Entries, 0u);
}

TEST(CompileCache, ClearDropsEntriesKeepsCounters) {
  CompileCache Cache(4);
  Cache.lookupOrCompute(CompileCache::Key{1}, [] { return marked("a"); });
  Cache.lookupOrCompute(CompileCache::Key{2}, [] { return marked("b"); });
  Cache.clear();
  CompileCacheStats S = Cache.stats();
  EXPECT_EQ(S.Entries, 0u);
  EXPECT_EQ(S.Misses, 2u) << "clear() drops entries, not accounting";

  bool Hit = true;
  Cache.lookupOrCompute(CompileCache::Key{1}, [] { return marked("a"); },
                        &Hit);
  EXPECT_FALSE(Hit);
}

TEST(CompileCache, InflightLatchComputesExactlyOnce) {
  // Many threads race on one key; the latch must let exactly one compute
  // while the rest block and then share the published result. The sleep
  // widens the in-flight window so the race actually happens.
  CompileCache Cache(8);
  CompileCache::Key K{7, 7, 7};
  std::atomic<int> Computes{0};
  const int Threads = 8;
  std::vector<std::string> Results(Threads);

  parallelFor(Threads, Threads, [&](int T) {
    CompiledFunction R = Cache.lookupOrCompute(K, [&] {
      ++Computes;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return marked("once");
    });
    Results[static_cast<size_t>(T)] = R.Final.Name;
  });

  EXPECT_EQ(Computes.load(), 1)
      << "concurrent same-key lookups must compute exactly once";
  for (const std::string &R : Results)
    EXPECT_EQ(R, "once");
  CompileCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits, static_cast<uint64_t>(Threads - 1));
}

TEST(CompileCache, ContentTwinsGetDistinctKeys) {
  // Two functions with identical bodies but different names must not
  // share a cache entry: the callee indices inside other functions and
  // the diff engine's per-function matching both depend on the name.
  const char *Source = R"(
    int twin_a(int x) { return x + 41; }
    int twin_b(int x) { return x + 41; }
    void main() { __out(1, twin_a(1) + twin_b(2)); __halt(); }
  )";
  CompileOutput Out = mustCompile(Source, uccOptions());
  int IdxA = Out.IR.findFunction("twin_a");
  int IdxB = Out.IR.findFunction("twin_b");
  ASSERT_GE(IdxA, 0);
  ASSERT_GE(IdxB, 0);

  CompileKeyInputs In;
  In.RAKind = static_cast<uint8_t>(RegAllocKind::UpdateConscious);
  In.DAKind = static_cast<uint8_t>(DataAllocKind::UpdateConscious);
  In.NewNamesDigest = digestModuleNames(Out.IR);

  In.F = &Out.IR.Functions[static_cast<size_t>(IdxA)];
  CompileCache::Key KeyA = CompileCache::buildKey(In);
  In.F = &Out.IR.Functions[static_cast<size_t>(IdxB)];
  CompileCache::Key KeyB = CompileCache::buildKey(In);
  EXPECT_NE(KeyA, KeyB);
}

TEST(CompileCache, KeyCoversOptionsAndOldSlice) {
  const char *Source = "void main() { __out(1, 3); __halt(); }";
  CompileOutput Out = mustCompile(Source, uccOptions());
  ASSERT_FALSE(Out.IR.Functions.empty());

  CompileKeyInputs In;
  In.F = &Out.IR.Functions[0];
  In.NewNamesDigest = digestModuleNames(Out.IR);
  CompileCache::Key Base = CompileCache::buildKey(In);

  CompileKeyInputs Opt = In;
  Opt.RAKind = 1;
  EXPECT_NE(CompileCache::buildKey(Opt), Base) << "RA kind must key";

  CompileKeyInputs Ucc = In;
  UccAllocOptions UccOpts;
  Ucc.UseUcc = true;
  Ucc.Ucc = &UccOpts;
  std::vector<double> Freq{1.0, 2.0};
  Ucc.Freq = &Freq;
  CompileCache::Key UccKey = CompileCache::buildKey(Ucc);
  EXPECT_NE(UccKey, Base) << "UCC options must key";
  Freq[1] = 3.0;
  EXPECT_NE(CompileCache::buildKey(Ucc), UccKey)
      << "profile frequencies must key";

  CompileKeyInputs WithOld = In;
  MachineFunction OldFinal;
  OldFinal.Name = "main";
  WithOld.OldFinal = &OldFinal;
  WithOld.OldNamesDigest = 0x1234;
  EXPECT_NE(CompileCache::buildKey(WithOld), Base)
      << "the old record slice must key";
}

TEST(CompileCache, CachedChainMatchesUncachedByteForByte) {
  // The acceptance anchor at unit scope: a v1 -> v2 -> v3 chain compiled
  // with a shared cache must equal the uncached chain byte for byte, and
  // recompiling v3 from the same record again must be all hits.
  const char *V1 = R"(
    int scale;
    int tune(int x) { return x * 3 + 7; }
    int mix(int a, int b) { return (a ^ b) + scale; }
    void main() { scale = __in(2); __out(1, mix(tune(4), 9)); __halt(); }
  )";
  const char *V2 = R"(
    int scale;
    int tune(int x) { return x * 3 + 11; }
    int mix(int a, int b) { return (a ^ b) + scale; }
    void main() { scale = __in(2); __out(1, mix(tune(4), 9)); __halt(); }
  )";

  CompileOptions Plain = uccOptions();
  CompileOutput P1 = mustCompile(V1, Plain);
  CompileOutput P2 = mustRecompile(V2, P1.Record, Plain);
  CompileOutput P3 = mustRecompile(V1, P2.Record, Plain);

  CompileCache Cache;
  CompileOptions Cached = uccOptions();
  Cached.Cache = &Cache;
  CompileOutput C1 = mustCompile(V1, Cached);
  CompileOutput C2 = mustRecompile(V2, C1.Record, Cached);
  CompileOutput C3 = mustRecompile(V1, C2.Record, Cached);

  EXPECT_EQ(C1.Image.serialize(), P1.Image.serialize());
  EXPECT_EQ(C2.Image.serialize(), P2.Image.serialize());
  EXPECT_EQ(C3.Image.serialize(), P3.Image.serialize());
  EXPECT_EQ(C3.Record.serialize(), P3.Record.serialize());

  // Identical input against the identical record: every function hits.
  CompileCacheStats Before = Cache.stats();
  CompileOutput C3Again = mustRecompile(V1, C2.Record, Cached);
  CompileCacheStats After = Cache.stats();
  EXPECT_EQ(C3Again.Image.serialize(), P3.Image.serialize());
  EXPECT_EQ(After.Misses, Before.Misses)
      << "recompiling the same source against the same record must not "
         "miss";
  EXPECT_EQ(After.Hits, Before.Hits + 3u) << "all three functions hit";
}

TEST(CompileCache, UpdateSessionAccountsHitsAcrossCommits) {
  // Through the session facade: the second commit of a chain where only
  // one function changes must hit on at least one unchanged function.
  const char *V1 = R"(
    int stable(int x) { return x + 1; }
    int churn(int x) { return x + 2; }
    void main() { __out(1, stable(1) + churn(2)); __halt(); }
  )";
  const char *V2 = R"(
    int stable(int x) { return x + 1; }
    int churn(int x) { return x + 5; }
    void main() { __out(1, stable(1) + churn(2)); __halt(); }
  )";

  VersionStore Store;
  UpdateSession Session(Store, uccOptions());
  DiagnosticEngine Diag;
  ASSERT_EQ(Session.commit(V1, Diag), 0) << Diag.str();
  ASSERT_EQ(Session.commit(V2, Diag), 1) << Diag.str();
  ASSERT_EQ(Session.commit(V2, Diag), 2) << Diag.str();

  CompileCacheStats S = Session.compileCacheStats();
  EXPECT_GT(S.Hits, 0u) << "unchanged functions must be served from the "
                           "session cache";
  EXPECT_GT(S.Misses, 0u);
  EXPECT_EQ(S.Evictions, 0u);
}

} // namespace
