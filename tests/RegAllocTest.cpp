//===- tests/RegAllocTest.cpp - allocator-layer unit tests ----------------===//

#include "codegen/ISel.h"
#include "frontend/IRGen.h"
#include "opt/Passes.h"
#include "regalloc/LinearScan.h"
#include "regalloc/LiveIntervals.h"
#include "regalloc/UccAlloc.h"
#include "regalloc/Validator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

MachineModule machineFor(const std::string &Source) {
  DiagnosticEngine Diag;
  Module M = compileToIR(Source, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  optimizeModule(M);
  return selectModule(M);
}

TEST(LiveIntervalsTest, SimpleStraightLine) {
  // Use port reads so the optimizer cannot fold the chain away.
  MachineModule MM = machineFor(R"(
    void main() {
      int a = __in(4);
      int b = a + 2;
      __out(15, a);
      __out(15, b);
      __halt();
    }
  )");
  IntervalAnalysis IA = analyzeIntervals(MM.Functions[0]);
  EXPECT_EQ(IA.NumPositions, MM.Functions[0].instrCount());
  int Valid = 0;
  for (const LiveInterval &IV : IA.VRegIntervals)
    if (IV.valid()) {
      ++Valid;
      EXPECT_LE(IV.Start, IV.End);
      EXPECT_LT(IV.End, IA.NumPositions);
    }
  EXPECT_GE(Valid, 2); // at least a and b
}

TEST(LiveIntervalsTest, PhysRegsBusyAroundCalls) {
  MachineModule MM = machineFor(R"(
    int id(int x) { return x; }
    void main() { __out(15, id(4)); __halt(); }
  )");
  const MachineFunction &Main =
      MM.Functions[MM.Functions.size() - 1].Name == "main"
          ? MM.Functions.back()
          : MM.Functions.front();
  IntervalAnalysis IA = analyzeIntervals(Main);
  // r0 is busy somewhere (argument staging / return value).
  EXPECT_TRUE(IA.physBusyInRange(0, 0, IA.NumPositions - 1));
}

TEST(MemoryHoming, NoVirtualRegisterLiveAcrossCallsAfterPass) {
  MachineModule MM = machineFor(R"(
    int id(int x) { return x; }
    void main() {
      int keep = 5;
      int r = id(3);
      __out(15, keep + r);
      __halt();
    }
  )");
  for (MachineFunction &MF : MM.Functions) {
    memoryHomeAcrossCalls(MF);
    IntervalAnalysis IA = analyzeIntervals(MF);
    int Pos = 0;
    for (const MBlock &BB : MF.Blocks) {
      for (const MInstr &I : BB.Instrs) {
        if (mopIsCall(I.Op)) {
          IA.LiveAfter[static_cast<size_t>(Pos)].forEach([&](size_t V) {
            EXPECT_FALSE(isVirtReg(static_cast<int>(V)))
                << "v" << (V - FirstVReg) << " live across call in @"
                << MF.Name;
          });
        }
        ++Pos;
      }
    }
  }
}

TEST(LinearScanTest, AllOperandsPhysicalAfterAllocation) {
  MachineModule MM = machineFor(workloadSource("CntToLedsAndRfm"));
  for (MachineFunction &MF : MM.Functions) {
    allocateLinearScan(MF);
    for (const MBlock &BB : MF.Blocks)
      for (const MInstr &I : BB.Instrs) {
        if (I.A >= 0) {
          EXPECT_TRUE(isPhysReg(I.A));
        }
        if (I.B >= 0) {
          EXPECT_TRUE(isPhysReg(I.B));
        }
        if (I.C >= 0) {
          EXPECT_TRUE(isPhysReg(I.C));
        }
      }
    auto Problems = validateAllocation(MF);
    EXPECT_TRUE(Problems.empty())
        << MF.Name << ": " << (Problems.empty() ? "" : Problems[0]);
  }
}

TEST(LinearScanTest, DeterministicAcrossRuns) {
  MachineModule A = machineFor(workloadSource("Blink"));
  MachineModule B = machineFor(workloadSource("Blink"));
  for (size_t F = 0; F < A.Functions.size(); ++F) {
    allocateLinearScan(A.Functions[F]);
    allocateLinearScan(B.Functions[F]);
    EXPECT_EQ(A.Functions[F].print(), B.Functions[F].print());
  }
}

TEST(ValidatorTest, CatchesWrongRegisterUse) {
  MachineFunction MF;
  MF.Name = "broken";
  MF.Blocks.resize(1);
  MF.Blocks[0].Name = "entry";
  int V0 = MF.makeVReg();
  int V1 = MF.makeVReg();

  MInstr Def0; // r0 <- ... (holds v0)
  Def0.Op = MOp::LDI;
  Def0.A = 0;
  Def0.VA = V0;
  Def0.Imm = 1;
  MInstr Def1; // r1 <- ... (holds v1)
  Def1.Op = MOp::LDI;
  Def1.A = 1;
  Def1.VA = V1;
  Def1.Imm = 2;
  MInstr Use; // claims to read v0 from r1 — wrong
  Use.Op = MOp::OUT;
  Use.A = 1;
  Use.VA = V0;
  Use.Imm = PortDebug;
  MInstr Halt;
  Halt.Op = MOp::HALT;
  MF.Blocks[0].Instrs = {Def0, Def1, Use, Halt};

  auto Problems = validateAllocation(MF);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("expects v0"), std::string::npos);
}

TEST(ValidatorTest, AcceptsCorrectCode) {
  MachineFunction MF;
  MF.Name = "fine";
  MF.Blocks.resize(1);
  MF.Blocks[0].Name = "entry";
  int V0 = MF.makeVReg();

  MInstr Def;
  Def.Op = MOp::LDI;
  Def.A = 2;
  Def.VA = V0;
  Def.Imm = 9;
  MInstr Use;
  Use.Op = MOp::OUT;
  Use.A = 2;
  Use.VA = V0;
  Use.Imm = PortDebug;
  MInstr Halt;
  Halt.Op = MOp::HALT;
  MF.Blocks[0].Instrs = {Def, Use, Halt};
  EXPECT_TRUE(validateAllocation(MF).empty());
}

TEST(ValidatorTest, CatchesCallClobberViolations) {
  MachineFunction MF;
  MF.Name = "clobbered";
  MF.Blocks.resize(1);
  MF.Blocks[0].Name = "entry";
  int V0 = MF.makeVReg();

  MInstr Def;
  Def.Op = MOp::LDI;
  Def.A = 5;
  Def.VA = V0;
  Def.Imm = 1;
  MInstr Call;
  Call.Op = MOp::CALL;
  Call.Callee = 0;
  MInstr Use; // v0 cannot still be in r5: the call clobbered it
  Use.Op = MOp::OUT;
  Use.A = 5;
  Use.VA = V0;
  Use.Imm = PortDebug;
  MInstr Halt;
  Halt.Op = MOp::HALT;
  MF.Blocks[0].Instrs = {Def, Call, Use, Halt};

  EXPECT_FALSE(validateAllocation(MF).empty());
}

TEST(Dominators, DiamondShape) {
  MachineFunction MF;
  MF.Blocks.resize(4);
  for (int B = 0; B < 4; ++B)
    MF.Blocks[static_cast<size_t>(B)].Name = "b";
  MF.Blocks[0].Succs = {1, 2};
  MF.Blocks[1].Succs = {3};
  MF.Blocks[2].Succs = {3};

  auto Dom = computeDominators(MF);
  EXPECT_TRUE(Dom[3][0]);  // entry dominates the join
  EXPECT_FALSE(Dom[3][1]); // neither arm dominates it
  EXPECT_FALSE(Dom[3][2]);
  EXPECT_TRUE(Dom[1][0]);
  EXPECT_TRUE(Dom[2][2]);
}

TEST(UccAllocTest, FallsBackToLinearScanWithoutOldCode) {
  MachineModule MM = machineFor(workloadSource("Blink"));
  UccContext EmptyCtx; // no old function
  UccAllocOptions Opts;
  std::vector<double> Freq;
  for (MachineFunction &MF : MM.Functions) {
    allocateUcc(MF, EmptyCtx, Opts, Freq);
    EXPECT_TRUE(validateAllocation(MF).empty());
  }
}

} // namespace
