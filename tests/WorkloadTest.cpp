//===- tests/WorkloadTest.cpp - benchmark suite validation ----------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, CompileOptions(), Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

RunResult mustRun(const BinaryImage &Img, uint64_t MaxSteps = 20'000'000) {
  SimOptions Opts;
  Opts.MaxSteps = MaxSteps;
  RunResult R = runImage(Img, Opts);
  EXPECT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_TRUE(R.Halted);
  return R;
}

TEST(Workloads, SuiteMatchesPaperFig8) {
  ASSERT_EQ(workloads().size(), 5u);
  EXPECT_EQ(workloads()[0].Name, "Blink");
  EXPECT_EQ(workloads()[1].Name, "CntToLeds");
  EXPECT_EQ(workloads()[2].Name, "CntToRfm");
  EXPECT_EQ(workloads()[3].Name, "CntToLedsAndRfm");
  EXPECT_EQ(workloads()[4].Name, "AES");
}

TEST(Workloads, BlinkTogglesLed) {
  RunResult R = mustRun(mustCompile(workloadSource("Blink")).Image);
  ASSERT_EQ(R.LedTrace.size(), 64u);
  // The red LED (bit 0) toggles on every fire; other bits may be set by
  // the signal-conditioning path.
  for (size_t K = 0; K < R.LedTrace.size(); ++K)
    EXPECT_EQ(R.LedTrace[K] & 1, (K % 2 == 0) ? 1 : 0) << "tick " << K;
}

TEST(Workloads, CntToLedsDisplaysLowBits) {
  RunResult R = mustRun(mustCompile(workloadSource("CntToLeds")).Image);
  ASSERT_EQ(R.LedTrace.size(), 64u);
  for (size_t K = 0; K < R.LedTrace.size(); ++K)
    EXPECT_EQ(R.LedTrace[K], static_cast<int16_t>((K + 1) & 7));
}

TEST(Workloads, CntToRfmSendsPackets) {
  RunResult R = mustRun(mustCompile(workloadSource("CntToRfm")).Image);
  ASSERT_EQ(R.Packets.size(), 64u);
  for (size_t K = 0; K < R.Packets.size(); ++K) {
    ASSERT_EQ(R.Packets[K].size(), 3u); // AM type, counter, checksum
    EXPECT_EQ(R.Packets[K][0], 4);
    EXPECT_EQ(R.Packets[K][1], static_cast<int16_t>(K + 1));
    EXPECT_GE(R.Packets[K][2], 0);
    EXPECT_LE(R.Packets[K][2], 0xff);
  }
}

TEST(Workloads, CntToLedsAndRfmDoesBoth) {
  RunResult R =
      mustRun(mustCompile(workloadSource("CntToLedsAndRfm")).Image);
  EXPECT_EQ(R.LedTrace.size(), 64u);
  EXPECT_EQ(R.Packets.size(), 64u);
}

TEST(Workloads, AesMatchesFips197Vector) {
  // FIPS-197 appendix C.1: key 000102...0f, plaintext 00112233...eeff.
  RunResult R = mustRun(mustCompile(workloadSource("AES")).Image);
  const int16_t Expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                0x70, 0xb4, 0xc5, 0x5a};
  ASSERT_EQ(R.DebugTrace.size(), 16u);
  for (int K = 0; K < 16; ++K)
    EXPECT_EQ(R.DebugTrace[static_cast<size_t>(K)], Expected[K])
        << "ciphertext byte " << K;
}

TEST(Workloads, ThirteenUpdateCases) {
  ASSERT_EQ(updateCases().size(), 13u);
  int Small = 0, Medium = 0, Large = 0;
  for (const UpdateCase &C : updateCases()) {
    switch (C.Level) {
    case UpdateLevel::Small:
      ++Small;
      break;
    case UpdateLevel::Medium:
      ++Medium;
      break;
    case UpdateLevel::Large:
      ++Large;
      break;
    }
  }
  EXPECT_EQ(Small, 7);
  EXPECT_EQ(Medium, 4);
  EXPECT_EQ(Large, 2);
}

/// Every update case must compile and run in both versions, and every
/// case must actually change the source.
class UpdateCaseRuns : public ::testing::TestWithParam<int> {};

TEST_P(UpdateCaseRuns, BothVersionsCompileAndRun) {
  const UpdateCase &C =
      updateCases()[static_cast<size_t>(GetParam())];
  EXPECT_NE(C.OldSource, C.NewSource);
  mustRun(mustCompile(C.OldSource).Image);
  mustRun(mustCompile(C.NewSource).Image);
}

INSTANTIATE_TEST_SUITE_P(AllCases, UpdateCaseRuns, ::testing::Range(0, 13));

TEST(Workloads, DataLayoutCasesCompileAndRun) {
  ASSERT_EQ(dataLayoutCases().size(), 2u);
  for (const UpdateCase &C : dataLayoutCases()) {
    mustRun(mustCompile(C.OldSource).Image);
    RunResult Old = mustRun(mustCompile(C.OldSource).Image);
    RunResult New = mustRun(mustCompile(C.NewSource).Image);
    if (C.Id == 102) {
      // D2 is a pure rename/shuffle: behavior must be identical.
      EXPECT_TRUE(Old.sameObservableBehavior(New));
    }
  }
}

} // namespace
