//===- tests/UccCompilerTest.cpp - update-conscious compilation ----------===//

#include "core/Compiler.h"
#include "regalloc/Validator.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source,
                          CompileOptions Opts = CompileOptions()) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOutput mustRecompile(const std::string &Source,
                            const CompilationRecord &Old,
                            CompileOptions Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(Source, Old, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOptions uccOptions() {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  return Opts;
}

const char *CounterV1 = R"(
  int count;
  int step = 1;
  void main() {
    int i;
    for (i = 0; i < 20; i = i + 1) {
      count = count + step;
      __out(0, count & 7);
    }
    __out(15, count);
    __halt();
  }
)";

// A small, local change: different LED mask (the paper's test case 1
// changes the blink color).
const char *CounterV2Small = R"(
  int count;
  int step = 1;
  void main() {
    int i;
    for (i = 0; i < 20; i = i + 1) {
      count = count + step;
      __out(0, count & 3);
    }
    __out(15, count);
    __halt();
  }
)";

// A medium change: new global used in a new branch.
const char *CounterV3Medium = R"(
  int count;
  int step = 1;
  int threshold = 12;
  void main() {
    int i;
    for (i = 0; i < 20; i = i + 1) {
      count = count + step;
      if (count > threshold) {
        __out(0, 7);
      }
      __out(0, count & 7);
    }
    __out(15, count);
    __halt();
  }
)";

TEST(UccCompiler, InitialCompileRunsCorrectly) {
  CompileOutput Out = mustCompile(CounterV1);
  RunResult R = runImage(Out.Image);
  ASSERT_FALSE(R.Trapped) << R.TrapReason;
  EXPECT_EQ(R.DebugTrace.back(), 20);
  EXPECT_EQ(R.LedTrace.size(), 20u);
}

TEST(UccCompiler, RecordRoundTripsThroughSerialization) {
  CompileOutput Out = mustCompile(CounterV1);
  std::vector<uint8_t> Bytes = Out.Record.serialize();
  CompilationRecord Back;
  ASSERT_TRUE(CompilationRecord::deserialize(Bytes, Back));
  EXPECT_EQ(Back.FunctionNames, Out.Record.FunctionNames);
  EXPECT_EQ(Back.GlobalNames, Out.Record.GlobalNames);
  ASSERT_EQ(Back.FinalCode.size(), Out.Record.FinalCode.size());
  EXPECT_EQ(Back.FinalCode[0].print(), Out.Record.FinalCode[0].print());
  EXPECT_EQ(Back.GlobalLayout.Words, Out.Record.GlobalLayout.Words);
}

TEST(UccCompiler, UccRecompileBehavesIdentically) {
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOutput V2 = mustRecompile(CounterV3Medium, V1.Record, uccOptions());

  RunResult RBase = runImage(
      mustCompile(CounterV3Medium).Image);
  RunResult RUcc = runImage(V2.Image);
  ASSERT_FALSE(RUcc.Trapped) << RUcc.TrapReason;
  EXPECT_TRUE(RBase.sameObservableBehavior(RUcc))
      << "update-conscious code must behave like baseline code";
}

TEST(UccCompiler, UccBeatsBaselineOnSmallChange) {
  CompileOutput V1 = mustCompile(CounterV1);

  CompileOptions Baseline; // update-oblivious
  CompileOutput V2Base = mustRecompile(CounterV2Small, V1.Record, Baseline);
  CompileOutput V2Ucc = mustRecompile(CounterV2Small, V1.Record,
                                      uccOptions());

  int DiffBase = diffImages(V1.Image, V2Base.Image).totalDiffInst();
  int DiffUcc = diffImages(V1.Image, V2Ucc.Image).totalDiffInst();
  EXPECT_LE(DiffUcc, DiffBase);
  // The change touches one constant; UCC should keep the diff tiny.
  EXPECT_LE(DiffUcc, 4);
}

TEST(UccCompiler, UccBeatsBaselineOnMediumChange) {
  CompileOutput V1 = mustCompile(CounterV1);

  CompileOptions Baseline;
  CompileOutput V2Base = mustRecompile(CounterV3Medium, V1.Record, Baseline);
  CompileOutput V2Ucc =
      mustRecompile(CounterV3Medium, V1.Record, uccOptions());

  int DiffBase = diffImages(V1.Image, V2Base.Image).totalDiffInst();
  int DiffUcc = diffImages(V1.Image, V2Ucc.Image).totalDiffInst();
  EXPECT_LE(DiffUcc, DiffBase);
}

TEST(UccCompiler, PatchedImageMatchesFreshImage) {
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOutput V2 = mustRecompile(CounterV3Medium, V1.Record, uccOptions());

  UpdatePackage Pkg = makeUpdate(V1, V2);
  EXPECT_GT(Pkg.ScriptBytes, 0u);

  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V1.Image, Pkg.Update, Patched));
  EXPECT_EQ(Patched.Code, V2.Image.Code);
  EXPECT_EQ(Patched.DataInit, V2.Image.DataInit);

  RunResult A = runImage(V2.Image);
  RunResult B = runImage(Patched);
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

TEST(UccCompiler, ScriptSmallerThanFullImageForSmallChange) {
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOutput V2 = mustRecompile(CounterV2Small, V1.Record, uccOptions());
  UpdatePackage Pkg = makeUpdate(V1, V2);
  EXPECT_LT(Pkg.ScriptBytes, V2.Image.transmitBytes() / 4)
      << "a one-constant change must not retransmit the image";
}

TEST(UccCompiler, IdenticalSourceProducesEmptyDiff) {
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOutput V2 = mustRecompile(CounterV1, V1.Record, uccOptions());
  EXPECT_EQ(diffImages(V1.Image, V2.Image).totalDiffInst(), 0)
      << "recompiling unchanged source must reproduce the old binary";
}

TEST(UccCompiler, NewFunctionIsTransmittedWhole) {
  CompileOutput V1 = mustCompile(CounterV1);
  const char *WithHelper = R"(
    int count;
    int step = 1;
    int scale(int x) { return x * 3; }
    void main() {
      int i;
      for (i = 0; i < 20; i = i + 1) {
        count = count + step;
        __out(0, count & 7);
      }
      __out(15, scale(count));
      __halt();
    }
  )";
  CompileOutput V2 = mustRecompile(WithHelper, V1.Record, uccOptions());
  UpdatePackage Pkg = makeUpdate(V1, V2);
  const FunctionDiff *FD = Pkg.Diff.find("scale");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->OldCount, 0);
  EXPECT_GT(FD->NewCount, 0);

  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V1.Image, Pkg.Update, Patched));
  EXPECT_EQ(Patched.Code, V2.Image.Code);
}

TEST(UccCompiler, DeletedFunctionCostsNothing) {
  const char *WithTwo = R"(
    int helper(int x) { return x + 1; }
    void main() { __out(15, helper(4)); __halt(); }
  )";
  const char *WithOne = R"(
    void main() { __out(15, 5); __halt(); }
  )";
  CompileOutput V1 = mustCompile(WithTwo);
  CompileOutput V2 = mustRecompile(WithOne, V1.Record, uccOptions());
  UpdatePackage Pkg = makeUpdate(V1, V2);
  const FunctionDiff *FD = Pkg.Diff.find("helper");
  ASSERT_NE(FD, nullptr);
  EXPECT_EQ(FD->NewCount, 0);
  EXPECT_EQ(FD->diffInst(), 0);

  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V1.Image, Pkg.Update, Patched));
  RunResult A = runImage(V2.Image);
  RunResult B = runImage(Patched);
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

TEST(UccCompiler, HighCntDisablesMovInsertion) {
  // With an astronomically high execution count, UCC-RA must refuse to
  // insert runtime movs (the paper: it falls back to baseline quality).
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOptions Opts = uccOptions();
  Opts.Ucc.Cnt = 1e12;
  CompileOutput V2 = mustRecompile(CounterV3Medium, V1.Record, Opts);
  for (const UccAllocStats &S : V2.RegAllocStats)
    EXPECT_EQ(S.InsertedMovs, 0);
}

TEST(UccCompiler, AllAllocationsValidate) {
  CompileOutput V1 = mustCompile(CounterV1);
  CompileOutput V2 = mustRecompile(CounterV3Medium, V1.Record, uccOptions());
  for (const MachineFunction &MF : V2.MachineCode.Functions) {
    auto Problems = validateAllocation(MF);
    EXPECT_TRUE(Problems.empty())
        << (Problems.empty() ? "" : Problems[0]);
  }
}

} // namespace
