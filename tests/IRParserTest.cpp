//===- tests/IRParserTest.cpp - textual IR round-trips --------------------===//

#include "frontend/IRGen.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "workloads/Workloads.h"

// For behavioral equivalence of reparsed modules.
#include "codegen/BinaryImage.h"
#include "codegen/ISel.h"
#include "dataalloc/DataAlloc.h"
#include "opt/Passes.h"
#include "regalloc/LinearScan.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

Module mustParse(const std::string &Text) {
  DiagnosticEngine Diag;
  Module M = parseIR(Text, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str() << "\ninput:\n" << Text;
  return M;
}

TEST(IRParserTest, HandWrittenModule) {
  Module M = mustParse(R"(
global @counter[1] = {5}
global @table[3] = {1, 2, 3}

func @main() {
.entry:
  %x.0 = const 7
  %1 = loadg @counter
  %2 = add %x.0, %1
  storeg @counter, %2
  %3 = loadg @table[%x.0]
  out 15, %2
  halt
}
)");
  EXPECT_TRUE(moduleIsValid(M));
  ASSERT_EQ(M.Globals.size(), 2u);
  EXPECT_EQ(M.Globals[1].SizeWords, 3);
  ASSERT_EQ(M.Functions.size(), 1u);
  EXPECT_EQ(M.EntryFunc, 0);
  EXPECT_EQ(M.Functions[0].vregName(0), "x");
}

TEST(IRParserTest, ControlFlowAndCalls) {
  Module M = mustParse(R"(
func @helper(%a.0) {
.entry:
  %1 = const 2
  %2 = mul %a.0, %1
  ret %2
}

func @main() {
.entry:
  %0 = const 3
  %1 = call @helper(%0)
  %2 = const 5
  condbr lt %1, %2, .small, .big
.small:
  out 15, %1
  br .done
.big:
  out 15, %2
  br .done
.done:
  halt
}
)");
  EXPECT_TRUE(moduleIsValid(M));
  ASSERT_EQ(M.Functions.size(), 2u);
  EXPECT_EQ(M.Functions[1].Blocks.size(), 4u);
}

TEST(IRParserTest, ReportsUnknownSymbols) {
  DiagnosticEngine Diag;
  parseIR("func @main() {\n.entry:\n  %0 = loadg @nope\n  halt\n}\n", Diag);
  EXPECT_TRUE(Diag.hasErrors());

  Diag.clear();
  parseIR("func @main() {\n.entry:\n  br .missing\n}\n", Diag);
  EXPECT_TRUE(Diag.hasErrors());

  Diag.clear();
  parseIR("func @main() {\n.entry:\n  %0 = frobnicate %1\n}\n", Diag);
  EXPECT_TRUE(Diag.hasErrors());
}

/// The definitive property: print -> parse -> print is a fixpoint, for
/// every workload, before and after optimization.
class PrintParseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrintParseRoundTrip, FixpointOnWorkloads) {
  const Workload &W = workloads()[static_cast<size_t>(GetParam())];
  DiagnosticEngine Diag;
  Module M = compileToIR(W.Source, Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();

  for (int Optimized = 0; Optimized < 2; ++Optimized) {
    if (Optimized)
      optimizeModule(M);
    std::string Printed = M.print();
    Module Back = mustParse(Printed);
    EXPECT_TRUE(moduleIsValid(Back)) << W.Name;
    EXPECT_EQ(Back.print(), Printed) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PrintParseRoundTrip,
                         ::testing::Range(0, 5));

TEST(IRParserTest, ReparsedModuleBehavesIdentically) {
  DiagnosticEngine Diag;
  Module M = compileToIR(workloadSource("CntToLeds"), Diag);
  ASSERT_FALSE(Diag.hasErrors());
  optimizeModule(M);
  Module Back = mustParse(M.print());

  auto imageFor = [](Module Mod) {
    MachineModule MM = selectModule(Mod);
    for (MachineFunction &MF : MM.Functions)
      allocateLinearScan(MF);
    DataLayoutMap DL = layoutGlobalsBaseline(Mod);
    std::vector<FrameLayout> Frames;
    for (const MachineFunction &MF : MM.Functions)
      Frames.push_back(layoutFrame(MF));
    return encodeModule(MM, Mod, DL, Frames);
  };
  RunResult A = runImage(imageFor(std::move(M)));
  RunResult B = runImage(imageFor(std::move(Back)));
  ASSERT_FALSE(A.Trapped) << A.TrapReason;
  ASSERT_FALSE(B.Trapped) << B.TrapReason;
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

} // namespace
