//===- tests/TestJson.h - minimal JSON parser for test assertions ---------===//
//
// Just enough JSON to validate telemetry traces: objects, arrays, strings,
// numbers, bool/null. Not a library candidate — error handling is "return
// nullopt and let the test fail".
//
//===----------------------------------------------------------------------===//

#ifndef UCC_TESTS_TESTJSON_H
#define UCC_TESTS_TESTJSON_H

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace testjson {

struct Value {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<std::shared_ptr<Value>> Arr;
  std::map<std::string, std::shared_ptr<Value>> Obj;

  /// Object member, or null when absent / not an object.
  const Value *get(const std::string &Key) const {
    if (K != Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : It->second.get();
  }
};

class Parser {
public:
  explicit Parser(const std::string &Text) : S(Text) {}

  std::optional<Value> parse() {
    auto V = value();
    skipWs();
    if (!V || Pos != S.size())
      return std::nullopt;
    return std::move(*V);
  }

private:
  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!eat('"'))
      return std::nullopt;
    std::string Out;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C == '\\' && Pos < S.size()) {
        char E = S[Pos++];
        switch (E) {
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'u':
          if (Pos + 4 > S.size())
            return std::nullopt;
          Out += static_cast<char>(
              std::strtol(S.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          break;
        default:
          Out += E;
        }
      } else {
        Out += C;
      }
    }
    if (Pos >= S.size())
      return std::nullopt;
    ++Pos; // closing quote
    return Out;
  }

  std::optional<Value> value() {
    skipWs();
    if (Pos >= S.size())
      return std::nullopt;
    Value V;
    char C = S[Pos];
    if (C == '{') {
      ++Pos;
      V.K = Value::Object;
      skipWs();
      if (eat('}'))
        return V;
      do {
        auto Key = string();
        if (!Key || !eat(':'))
          return std::nullopt;
        auto Member = value();
        if (!Member)
          return std::nullopt;
        V.Obj[*Key] = std::make_shared<Value>(std::move(*Member));
      } while (eat(','));
      if (!eat('}'))
        return std::nullopt;
      return V;
    }
    if (C == '[') {
      ++Pos;
      V.K = Value::Array;
      skipWs();
      if (eat(']'))
        return V;
      do {
        auto Elem = value();
        if (!Elem)
          return std::nullopt;
        V.Arr.push_back(std::make_shared<Value>(std::move(*Elem)));
      } while (eat(','));
      if (!eat(']'))
        return std::nullopt;
      return V;
    }
    if (C == '"') {
      auto Str = string();
      if (!Str)
        return std::nullopt;
      V.K = Value::String;
      V.Str = std::move(*Str);
      return V;
    }
    if (S.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      V.K = Value::Bool;
      V.B = true;
      return V;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      V.K = Value::Bool;
      return V;
    }
    if (S.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return V;
    }
    char *End = nullptr;
    V.Num = std::strtod(S.c_str() + Pos, &End);
    if (End == S.c_str() + Pos)
      return std::nullopt;
    Pos = static_cast<size_t>(End - S.c_str());
    V.K = Value::Number;
    return V;
  }

  const std::string &S;
  size_t Pos = 0;
};

inline std::optional<Value> parse(const std::string &Text) {
  return Parser(Text).parse();
}

} // namespace testjson

#endif // UCC_TESTS_TESTJSON_H
