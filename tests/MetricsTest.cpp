//===- tests/MetricsTest.cpp - time-series metrics over Telemetry ---------===//
//
// Contract of support/Metrics: a wait-free mergeable latency histogram
// with DurationDist bucket geometry, a snapshotter whose windowed rates
// and JSONL/Prometheus exposition are deterministic under an injected
// clock, and a flight recorder that honors its threshold, cooldown, and
// lifetime-cap policy.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace ucc;

namespace {

TEST(LatencyHistogram, RecordsExactEnvelopeAndBucketedQuantiles) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantileSeconds(0.5), 0.0);

  for (int K = 0; K < 90; ++K)
    H.record(0.001);
  for (int K = 0; K < 10; ++K)
    H.record(0.1);

  EXPECT_EQ(H.count(), 100u);
  EXPECT_NEAR(H.minSeconds(), 0.001, 1e-6);
  EXPECT_NEAR(H.maxSeconds(), 0.1, 1e-4);
  EXPECT_NEAR(H.meanSeconds(), (90 * 0.001 + 10 * 0.1) / 100.0, 1e-5);
  // p50 sits in the 1ms mass; p99 reaches the 100ms outliers.
  EXPECT_NEAR(H.quantileSeconds(0.50), 0.001, 0.001 * 0.05);
  EXPECT_NEAR(H.quantileSeconds(0.99), 0.1, 0.1 * 0.05);
  // Quantiles never escape the exact [min, max] envelope.
  EXPECT_GE(H.quantileSeconds(0.0), H.minSeconds());
  EXPECT_LE(H.quantileSeconds(1.0), H.maxSeconds());
}

TEST(LatencyHistogram, MergeAndReset) {
  LatencyHistogram A, B;
  for (int K = 0; K < 10; ++K)
    A.record(0.001);
  for (int K = 0; K < 30; ++K)
    B.record(1.0);

  A.merge(B);
  EXPECT_EQ(A.count(), 40u);
  EXPECT_NEAR(A.minSeconds(), 0.001, 1e-6);
  EXPECT_NEAR(A.maxSeconds(), 1.0, 1e-3);
  // 75% of the merged mass is at 1s, so the median moved there.
  EXPECT_NEAR(A.quantileSeconds(0.5), 1.0, 1.0 * 0.05);

  A.reset();
  EXPECT_EQ(A.count(), 0u);
  EXPECT_EQ(A.minSeconds(), 0.0);
  EXPECT_EQ(A.maxSeconds(), 0.0);
  EXPECT_EQ(A.quantileSeconds(0.99), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram H;
  const int Threads = 4, PerThread = 5000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H] {
      for (int K = 0; K < PerThread; ++K)
        H.record(0.0005);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(H.count(), static_cast<uint64_t>(Threads * PerThread));
  EXPECT_NEAR(H.quantileSeconds(0.5), 0.0005, 0.0005 * 0.05);
}

TEST(MetricsSnapshotter, WindowedRatesUnderInjectedClock) {
  Telemetry T;
  MetricsSnapshotter S(T, /*WindowCapacity=*/4);
  EXPECT_EQ(S.lastJsonLine(), "");
  EXPECT_EQ(S.toPrometheus(), "");

  T.addCounter("serve.plans", 100);
  S.sample(1.0);
  EXPECT_EQ(S.rate("serve.plans"), 0.0) << "one sample has no rate";

  T.addCounter("serve.plans", 50);
  S.sample(2.0);
  EXPECT_DOUBLE_EQ(S.rate("serve.plans"), 50.0);
  EXPECT_DOUBLE_EQ(S.windowRate("serve.plans"), 50.0);

  T.addCounter("serve.plans", 200);
  S.sample(4.0);
  EXPECT_DOUBLE_EQ(S.rate("serve.plans"), 100.0);     // 200 over 2s
  EXPECT_DOUBLE_EQ(S.windowRate("serve.plans"), 250.0 / 3.0);

  // The window is bounded: after two more samples the t=1 snapshot ages
  // out and windowRate re-bases on the oldest retained sample.
  S.sample(5.0);
  S.sample(6.0);
  EXPECT_EQ(S.window().size(), 4u);
  EXPECT_DOUBLE_EQ(S.window().front().TsSeconds, 2.0);
  EXPECT_DOUBLE_EQ(S.windowRate("serve.plans"), 200.0 / 4.0);
}

TEST(MetricsSnapshotter, JsonLineCarriesCountersGaugesAndMovedRates) {
  Telemetry T;
  MetricsSnapshotter S(T);
  T.addCounter("serve.plans", 10);
  T.addCounter("serve.misses", 3);
  T.setGauge("serve.p99_us", 420.5);
  S.sample(1.0);
  T.addCounter("serve.plans", 10); // misses stays put
  S.sample(2.0);

  auto Doc = testjson::parse(S.lastJsonLine());
  ASSERT_TRUE(Doc.has_value()) << S.lastJsonLine();
  EXPECT_DOUBLE_EQ(Doc->get("ts")->Num, 2.0);
  ASSERT_NE(Doc->get("counters"), nullptr);
  EXPECT_DOUBLE_EQ(Doc->get("counters")->get("serve.plans")->Num, 20.0);
  ASSERT_NE(Doc->get("gauges"), nullptr);
  EXPECT_DOUBLE_EQ(Doc->get("gauges")->get("serve.p99_us")->Num, 420.5);
  const testjson::Value *Rates = Doc->get("rates");
  ASSERT_NE(Rates, nullptr);
  ASSERT_NE(Rates->get("serve.plans"), nullptr);
  EXPECT_DOUBLE_EQ(Rates->get("serve.plans")->Num, 10.0);
  EXPECT_EQ(Rates->get("serve.misses"), nullptr)
      << "counters that did not move carry no rate entry";
}

TEST(MetricsSnapshotter, PrometheusExposition) {
  Telemetry T;
  MetricsSnapshotter S(T);
  T.addCounter("serve.plans", 7);
  T.setGauge("serve.p99_us", 12.5);
  S.sample(1.0);

  std::string Text = S.toPrometheus();
  EXPECT_NE(Text.find("# TYPE ucc_serve_plans counter\n"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("ucc_serve_plans 7\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("# TYPE ucc_serve_p99_us gauge\n"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("ucc_serve_p99_us 12.5\n"), std::string::npos) << Text;
}

TEST(FlightRecorder, DumpsOnBreachWithCooldownAndCap) {
  char Template[] = "/tmp/ucc-flight-XXXXXX";
  ASSERT_NE(mkdtemp(Template), nullptr);
  std::string TracePath = std::string(Template) + "/flight.json";

  Telemetry T;
  T.enableEvents();
  T.recordEvent(TelemetryEvent::Phase::Instant, "test", "breach-marker", 0);

  SloConfig Cfg;
  Cfg.P99LatencyUs = 1000.0;
  Cfg.TracePath = TracePath;
  Cfg.CooldownSeconds = 5.0;
  Cfg.MaxDumps = 2;
  FlightRecorder R(T, Cfg);

  EXPECT_FALSE(R.check(/*P99Us=*/500.0, /*Errors=*/0, /*Now=*/0.0));
  EXPECT_EQ(R.breaches(), 0);

  // First breach dumps immediately.
  EXPECT_TRUE(R.check(2000.0, 0, 1.0));
  EXPECT_EQ(R.breaches(), 1);
  EXPECT_EQ(R.dumps(), 1);
  {
    std::ifstream In(TracePath, std::ios::binary);
    std::string Trace((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    EXPECT_NE(Trace.find("breach-marker"), std::string::npos)
        << "the dump must carry the registry's event ring";
    EXPECT_NE(Trace.find("traceEvents"), std::string::npos);
  }

  // Inside the cooldown: the breach counts but does not dump.
  EXPECT_FALSE(R.check(2000.0, 0, 3.0));
  EXPECT_EQ(R.breaches(), 2);
  EXPECT_EQ(R.dumps(), 1);

  // Past the cooldown: second (and last allowed) dump.
  EXPECT_TRUE(R.check(2000.0, 0, 7.0));
  EXPECT_EQ(R.dumps(), 2);

  // Lifetime cap: no third dump no matter how far apart.
  EXPECT_FALSE(R.check(2000.0, 0, 100.0));
  EXPECT_EQ(R.breaches(), 4);
  EXPECT_EQ(R.dumps(), 2);

  std::remove(TracePath.c_str());
  rmdir(Template);
}

TEST(FlightRecorder, ErrorThresholdAndDisabledThresholds) {
  Telemetry T;
  SloConfig Cfg; // no TracePath: breaches are counted, never dumped
  Cfg.MaxErrors = 2;
  FlightRecorder R(T, Cfg);

  EXPECT_FALSE(R.check(1e9, 2, 1.0)) << "p99 threshold left disabled";
  EXPECT_EQ(R.breaches(), 0);
  EXPECT_FALSE(R.check(0.0, 3, 2.0)) << "no trace path, so no dump";
  EXPECT_EQ(R.breaches(), 1);
  EXPECT_EQ(R.dumps(), 0);
}

} // namespace
