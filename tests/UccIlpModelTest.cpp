//===- tests/UccIlpModelTest.cpp - the paper's 0/1 program ----------------===//

#include "regalloc/UccIlpModel.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

/// Builds a simple window: S statements defining and using NumVars
/// variables round-robin, all changed (no preferences).
WindowSpec simpleSpec(int NumVars, int NumStmts, int NumRegs) {
  WindowSpec Spec;
  Spec.NumVars = NumVars;
  Spec.NumRegs = NumRegs;
  Spec.EntryReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.ExitReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.LiveOut.assign(static_cast<size_t>(NumVars), false);
  for (int S = 0; S < NumStmts; ++S) {
    WindowInstr I;
    I.Changed = true;
    I.Def = S % NumVars;
    if (S > 0) {
      I.Uses.push_back((S - 1) % NumVars);
      I.UsePref.push_back(-1);
    }
    Spec.Instrs.push_back(std::move(I));
  }
  return Spec;
}

TEST(UccIlp, TrivialWindowSolves) {
  WindowSpec Spec = simpleSpec(2, 4, 4);
  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.InsertedMovs, 0);
  EXPECT_EQ(Sol.SpillLoads, 0);
  // Every def landed somewhere.
  for (size_t S = 0; S < Spec.Instrs.size(); ++S) {
    if (Spec.Instrs[S].Def >= 0) {
      EXPECT_GE(Sol.DefReg[S], 0);
    }
  }
}

TEST(UccIlp, OverlappingVariablesGetDistinctRegisters) {
  // v0 and v1 both live across the middle statement.
  WindowSpec Spec;
  Spec.NumVars = 2;
  Spec.NumRegs = 3;
  Spec.EntryReg = {-1, -1};
  Spec.ExitReg = {-1, -1};
  Spec.LiveOut = {false, false};
  WindowInstr D0;
  D0.Def = 0;
  WindowInstr D1;
  D1.Def = 1;
  WindowInstr UseBoth;
  UseBoth.Uses = {0, 1};
  UseBoth.UsePref = {-1, -1};
  UseBoth.Def = -1;
  Spec.Instrs = {D0, D1, UseBoth};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  // At the point before the use, the two values are in different regs.
  EXPECT_NE(Sol.RegAfter[2][0], Sol.RegAfter[2][1]);
  EXPECT_NE(Sol.UseRegs[2][0], Sol.UseRegs[2][1]);
}

TEST(UccIlp, HonorsPreferencesOnUnchangedStatements) {
  // One variable, one unchanged use preferring register 2.
  WindowSpec Spec;
  Spec.NumVars = 1;
  Spec.NumRegs = 4;
  Spec.EntryReg = {-1};
  Spec.ExitReg = {-1};
  Spec.LiveOut = {false};
  WindowInstr Def;
  Def.Def = 0;
  Def.DefPref = 2;
  Def.Changed = false;
  WindowInstr Use;
  Use.Uses = {0};
  Use.UsePref = {2};
  Use.Changed = false;
  Spec.Instrs = {Def, Use};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.DefReg[0], 2);
  EXPECT_EQ(Sol.UseRegs[1][0], 2);
  EXPECT_EQ(Sol.PrefHonored, 2);
  EXPECT_EQ(Sol.PrefBroken, 0);
  EXPECT_NEAR(Sol.Objective, 0.0, 1e-6);
}

TEST(UccIlp, InsertsMovWhenCheaperThanBreakingPreferences) {
  // The paper's Fig. 4 situation: v0's preferred register (0) is busy
  // early (entry-held by v1), then frees up before v0's three unchanged
  // uses. A mov is cheaper than retransmitting three instructions when
  // Cnt is small.
  WindowSpec Spec;
  Spec.NumVars = 2;
  Spec.NumRegs = 2;
  Spec.EntryReg = {-1, 0}; // v1 enters holding r0
  Spec.ExitReg = {-1, -1};
  Spec.LiveOut = {false, false};
  Spec.Etrans = 32000.0;
  Spec.Eexe = 1.0;
  Spec.Cnt = 10.0; // executed rarely: transmission dominates

  WindowInstr DefV0; // v0 defined while r0 is still taken by v1
  DefV0.Def = 0;
  WindowInstr LastUseV1; // v1 dies here, freeing r0
  LastUseV1.Uses = {1};
  LastUseV1.UsePref = {0};
  LastUseV1.Changed = false;
  auto unchangedUseV0 = [] {
    WindowInstr I;
    I.Uses = {0};
    I.UsePref = {0};
    I.Changed = false;
    return I;
  };
  Spec.Instrs = {DefV0, LastUseV1, unchangedUseV0(), unchangedUseV0(),
                 unchangedUseV0()};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.InsertedMovs, 1);
  EXPECT_EQ(Sol.UseRegs[2][0], 0);
  EXPECT_EQ(Sol.UseRegs[3][0], 0);
  EXPECT_EQ(Sol.UseRegs[4][0], 0);

  // With a huge Cnt the mov's runtime energy dominates: no mov.
  Spec.Cnt = 1e9;
  WindowSolution SolHot = solveWindow(Spec);
  ASSERT_EQ(SolHot.Status, SolveStatus::Optimal);
  EXPECT_EQ(SolHot.InsertedMovs, 0);
}

TEST(UccIlp, PairConstraintForcesConsecutiveRegisters) {
  WindowSpec Spec;
  Spec.NumVars = 2;
  Spec.NumRegs = 4;
  Spec.EntryReg = {-1, -1};
  Spec.ExitReg = {-1, -1};
  Spec.LiveOut = {false, false};
  Spec.Pairs = {{0, 1}};
  WindowInstr D0;
  D0.Def = 0;
  WindowInstr D1;
  D1.Def = 1;
  WindowInstr UseBoth;
  UseBoth.Uses = {0, 1};
  UseBoth.UsePref = {-1, -1};
  Spec.Instrs = {D0, D1, UseBoth};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  int Low = Sol.RegAfter[2][0];
  int High = Sol.RegAfter[2][1];
  EXPECT_EQ(High, Low + 1);
}

TEST(UccIlp, RespectsBusyMask) {
  WindowSpec Spec;
  Spec.NumVars = 1;
  Spec.NumRegs = 2;
  Spec.EntryReg = {-1};
  Spec.ExitReg = {-1};
  Spec.LiveOut = {false};
  WindowInstr Def;
  Def.Def = 0;
  WindowInstr Use;
  Use.Uses = {0};
  Use.UsePref = {-1};
  Use.BusyMask = 0x1; // r0 unavailable around the use
  Spec.Instrs = {Def, Use};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.UseRegs[1][0], 1);
}

TEST(UccIlp, EntryAndExitRequirementsConnect) {
  // v0 enters in r1 and must leave in r0: the solver has to move it.
  WindowSpec Spec;
  Spec.NumVars = 1;
  Spec.NumRegs = 2;
  Spec.EntryReg = {1};
  Spec.ExitReg = {0};
  Spec.LiveOut = {true};
  WindowInstr Use;
  Use.Uses = {0};
  Use.UsePref = {-1};
  Spec.Instrs = {Use};

  WindowSolution Sol = solveWindow(Spec);
  ASSERT_EQ(Sol.Status, SolveStatus::Optimal);
  EXPECT_EQ(Sol.InsertedMovs, 1);
  EXPECT_EQ(Sol.RegAfter[1][0], 0);
}

TEST(UccIlp, ModelSizeGrowsLinearlyWithStatements) {
  // Fig. 13's shape: constraints scale ~linearly in statement count.
  WindowModelStats S10 = windowModelStats(simpleSpec(3, 10, 4));
  WindowModelStats S20 = windowModelStats(simpleSpec(3, 20, 4));
  WindowModelStats S40 = windowModelStats(simpleSpec(3, 40, 4));
  double Ratio1 = static_cast<double>(S20.NumConstraints) /
                  static_cast<double>(S10.NumConstraints);
  double Ratio2 = static_cast<double>(S40.NumConstraints) /
                  static_cast<double>(S20.NumConstraints);
  EXPECT_GT(Ratio1, 1.5);
  EXPECT_LT(Ratio1, 2.6);
  EXPECT_GT(Ratio2, 1.5);
  EXPECT_LT(Ratio2, 2.6);
}

/// Section 5.6: the theta-linearized ILP makes the same decisions as the
/// exact (nonlinear-objective) enumeration on small windows.
class IlpVsExact : public ::testing::TestWithParam<int> {};

TEST_P(IlpVsExact, SameObjectiveAsExhaustiveSearch) {
  RNG Rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  int NumVars = static_cast<int>(Rng.range(2, 4));
  int NumRegs = static_cast<int>(Rng.range(NumVars, 4));
  int NumStmts = static_cast<int>(Rng.range(3, 7));

  WindowSpec Spec;
  Spec.NumVars = NumVars;
  Spec.NumRegs = NumRegs;
  Spec.EntryReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.ExitReg.assign(static_cast<size_t>(NumVars), -1);
  Spec.LiveOut.assign(static_cast<size_t>(NumVars), false);
  for (int S = 0; S < NumStmts; ++S) {
    WindowInstr I;
    I.Def = static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars)));
    I.Changed = Rng.chance(1, 2);
    if (S > 0) {
      int Used = static_cast<int>(Rng.below(static_cast<uint64_t>(NumVars)));
      I.Uses.push_back(Used);
      I.UsePref.push_back(
          I.Changed ? -1
                    : static_cast<int>(
                          Rng.below(static_cast<uint64_t>(NumRegs))));
    }
    if (!I.Changed)
      I.DefPref =
          static_cast<int>(Rng.below(static_cast<uint64_t>(NumRegs)));
    Spec.Instrs.push_back(std::move(I));
  }

  WindowSolution Ilp = solveWindow(Spec);
  WindowSolution Exact = solveWindowExact(Spec);
  ASSERT_EQ(Ilp.Status, SolveStatus::Optimal);
  ASSERT_EQ(Exact.Status, SolveStatus::Optimal);

  // The ILP may additionally use movs/spills, so it can only do better or
  // equal under the linearized objective; on these tiny windows it should
  // match the exact optimum whenever it uses no movs (and in all sampled
  // seeds it does).
  EXPECT_LE(Ilp.Objective, Exact.Objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsExact, ::testing::Range(0, 12));

} // namespace
