//===- tests/VersionStoreTest.cpp - the stateful version chain ------------===//
//
// The store is the sink's long-lived state: commits build a chain of
// image+record+layout artifacts, the planner picks the cheaper of a fresh
// endpoint diff and the composed stepwise chain, and a directory-backed
// store survives a reopen bit for bit.
//
//===----------------------------------------------------------------------===//

#include "core/VersionStore.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

using namespace ucc;

namespace {

CompileOptions uccOptions() {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  return Opts;
}

/// A three-version chain over a real workload update case: old source,
/// new source, and back — so intermediate plans have real diffs.
void buildChain(VersionStore &Store) {
  const UpdateCase &Case = updateCases()[5];
  DiagnosticEngine Diag;
  ASSERT_EQ(Store.addInitial(Case.OldSource, uccOptions(), Diag), 0)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.NewSource, uccOptions(), Diag), 1)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.OldSource, uccOptions(), Diag), 2)
      << Diag.str();
}

/// A branched history: v0 -> v1 -> {v2, v3 -> v4}. The branch point v1 is
/// the LCA of the two tips, so cross-branch plans must compose through it.
void buildDag(VersionStore &Store) {
  const UpdateCase &Case = updateCases()[5];
  DiagnosticEngine Diag;
  ASSERT_EQ(Store.addInitial(Case.OldSource, uccOptions(), Diag), 0)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.NewSource, uccOptions(), Diag, 0), 1)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.OldSource, uccOptions(), Diag, 1), 2)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.NewSource, uccOptions(), Diag, 1), 3)
      << Diag.str();
  ASSERT_EQ(Store.addUpdate(Case.OldSource, uccOptions(), Diag, 3), 4)
      << Diag.str();
}

class ScratchDir : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/ucc-store-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
  }
  void TearDown() override { std::system(("rm -rf " + Dir).c_str()); }
  std::string Dir;
};

TEST(VersionStore, ChainBookkeeping) {
  VersionStore Store;
  buildChain(Store);
  ASSERT_EQ(Store.size(), 3u);
  EXPECT_EQ(Store.find(0)->Parent, -1);
  EXPECT_EQ(Store.find(1)->Parent, 0);
  EXPECT_EQ(Store.find(2)->Parent, 1);
  EXPECT_EQ(Store.latest()->Id, 2);
  EXPECT_EQ(Store.find(0)->ScriptBytesFromParent, 0u);
  EXPECT_GT(Store.find(1)->ScriptBytesFromParent, 0u);
  // v0 and v2 share their source text; the hash must agree.
  EXPECT_EQ(Store.find(0)->SourceHash, Store.find(2)->SourceHash);
  EXPECT_NE(Store.find(0)->SourceHash, Store.find(1)->SourceHash);
}

TEST(VersionStore, RejectsDoubleInitialAndUnknownParent) {
  VersionStore Store;
  buildChain(Store);
  DiagnosticEngine Diag;
  EXPECT_EQ(Store.addInitial(updateCases()[5].OldSource, uccOptions(),
                             Diag),
            -1);
  EXPECT_EQ(Store.addUpdate(updateCases()[5].NewSource, uccOptions(), Diag,
                            42),
            -1);
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(VersionStore, PlanPatchesAnyAncestorToDescendant) {
  VersionStore Store;
  buildChain(Store);
  for (auto [From, To] : {std::pair{0, 1}, {1, 2}, {0, 2}}) {
    auto P = Store.plan(From, To);
    ASSERT_TRUE(P.has_value()) << From << "->" << To;
    EXPECT_EQ(P->ChainSteps, To - From);
    EXPECT_GT(P->DirectBytes, 0u);
    // Whichever route won, the shipped package takes From's image exactly
    // to To's image.
    BinaryImage Patched;
    ASSERT_TRUE(applyUpdate(Store.find(From)->Image, P->Update, Patched));
    EXPECT_EQ(Patched.serialize(), Store.find(To)->Image.serialize());
    // The winner is the cheaper route (ties go Direct).
    if (P->Route == UpdatePlan::RouteKind::Chained) {
      EXPECT_LT(P->ChainedBytes, P->DirectBytes);
    } else if (P->ChainSteps > 0) {
      EXPECT_LE(P->DirectBytes, P->ChainedBytes);
    }
    EXPECT_EQ(P->ScriptBytes, P->Update.scriptBytes());
  }
}

TEST(VersionStore, PlanAgainstTheChainDirectionComposesTheRollback) {
  VersionStore Store;
  buildChain(Store);
  // A downgrade walks the same tree path in reverse: the planner composes
  // the stepwise rollback route v2 -> v1 -> v0 and lets it compete with
  // the direct diff on actual bytes.
  auto P = Store.plan(2, 0);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->ChainSteps, 2);
  EXPECT_GT(P->ChainedBytes, 0u);
  if (P->Route == UpdatePlan::RouteKind::Chained)
    EXPECT_LT(P->ChainedBytes, P->DirectBytes);
  else
    EXPECT_LE(P->DirectBytes, P->ChainedBytes);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(Store.find(2)->Image, P->Update, Patched));
  EXPECT_EQ(Patched.serialize(), Store.find(0)->Image.serialize());
}

TEST(VersionStore, ChildrenAndTipsExposeTheDag) {
  VersionStore Chain;
  buildChain(Chain);
  EXPECT_EQ(Chain.children(0), (std::vector<int>{1}));
  EXPECT_EQ(Chain.children(2), (std::vector<int>()));
  EXPECT_EQ(Chain.tips(), (std::vector<int>{2}));

  VersionStore Dag;
  buildDag(Dag);
  EXPECT_EQ(Dag.find(2)->Parent, 1);
  EXPECT_EQ(Dag.find(3)->Parent, 1);
  EXPECT_EQ(Dag.children(1), (std::vector<int>{2, 3}));
  EXPECT_EQ(Dag.children(42), (std::vector<int>()));
  EXPECT_EQ(Dag.tips(), (std::vector<int>{2, 4}));
}

TEST(VersionStore, CrossBranchPlansComposeThroughTheLca) {
  VersionStore Store;
  buildDag(Store);
  // 2 and 4 are on different branches (no ancestor relation either way):
  // the composed candidate walks 2 -> 1 (the LCA) -> 3 -> 4 and competes
  // with the direct diff on actual bytes.
  for (auto [From, To] : {std::pair{2, 4}, {4, 2}}) {
    auto P = Store.plan(From, To);
    ASSERT_TRUE(P.has_value()) << From << "->" << To;
    EXPECT_EQ(P->ChainSteps, 3);
    EXPECT_GT(P->ChainedBytes, 0u);
    if (P->Route == UpdatePlan::RouteKind::Chained)
      EXPECT_LT(P->ChainedBytes, P->DirectBytes);
    else
      EXPECT_LE(P->DirectBytes, P->ChainedBytes);
    BinaryImage Patched;
    ASSERT_TRUE(applyUpdate(Store.find(From)->Image, P->Update, Patched));
    EXPECT_EQ(Patched.serialize(), Store.find(To)->Image.serialize());
  }
  // The sibling hop 2 -> 3 routes through the LCA in two steps.
  auto Sib = Store.plan(2, 3);
  ASSERT_TRUE(Sib.has_value());
  EXPECT_EQ(Sib->ChainSteps, 2);
}

TEST(VersionStore, SingleStepPlansTieAndGoDirect) {
  VersionStore Store;
  buildChain(Store);
  // A one-hop plan's composed route IS the direct diff (the same
  // endpoint pair through the same differ), so the bytes tie exactly —
  // and ties must deterministically pick Direct, upgrades and rollbacks
  // alike.
  for (auto [From, To] : {std::pair{0, 1}, {1, 2}, {1, 0}, {2, 1}}) {
    auto P = Store.plan(From, To);
    ASSERT_TRUE(P.has_value()) << From << "->" << To;
    EXPECT_EQ(P->ChainSteps, 1);
    EXPECT_EQ(P->ChainedBytes, P->DirectBytes);
    EXPECT_EQ(P->Route, UpdatePlan::RouteKind::Direct);
  }
}

TEST(VersionStore, ComposedRouteBeatsDirectWhenTheDirectDiffFragments) {
  // Engineered images, planned through planBetweenVersions' Find hook:
  // one 6000-word function whose words cycle through a two-word pattern
  // (nothing for the diff engine to anchor on), with 1000 scattered
  // single-word replacements between the endpoints. The direct endpoint
  // diff blows the Myers D budget and falls back to block copies that
  // find no run long enough to keep, so it ships nearly the whole
  // changed region; each stepwise diff stays under the budget and is
  // optimal, and their composition ships only the replaced words. The
  // planner must notice the composed route is cheaper and take it —
  // DBCN's observation that hopping through stored intermediates can
  // beat a fresh endpoint diff.
  constexpr int Words = 6000;
  auto image = [](const std::vector<uint32_t> &Code) {
    BinaryImage Img;
    Img.Code = Code;
    Img.Functions.push_back(
        {"main", 0, static_cast<uint32_t>(Code.size())});
    Img.EntryFunc = 0;
    return Img;
  };
  std::vector<uint32_t> Base(Words);
  for (int K = 0; K < Words; ++K)
    Base[static_cast<size_t>(K)] = 10u + (static_cast<uint32_t>(K) & 1u);
  // Endpoint to endpoint, every third word of the first 4500 changes:
  // edit distance 3000 overruns the (bidirectional) Myers budget and the
  // surviving two-word runs are below the fallback's minimum, so the
  // direct diff ships the whole changed region. Each step changes only
  // half the words (distance 1500, within budget), so the stepwise
  // scripts are exact and their composition ships just the 1500
  // replacements.
  std::vector<uint32_t> MidCode = Base, FinalCode = Base;
  for (int K = 0; K < 1500; ++K) {
    size_t At = static_cast<size_t>(K) * 3;
    uint32_t Val = 1000u + static_cast<uint32_t>(K);
    if (K % 2 == 0)
      MidCode[At] = Val;
    FinalCode[At] = Val;
  }

  StoredVersion V0, V1, V2;
  V0.Id = 0;
  V0.Parent = -1;
  V0.Image = image(Base);
  V1.Id = 1;
  V1.Parent = 0;
  V1.Image = image(MidCode);
  V2.Id = 2;
  V2.Parent = 1;
  V2.Image = image(FinalCode);
  const StoredVersion *Vs[] = {&V0, &V1, &V2};
  auto Find = [&](int Id) -> const StoredVersion * {
    return (Id >= 0 && Id < 3) ? Vs[Id] : nullptr;
  };

  auto P = planBetweenVersions(Find, 0, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->ChainSteps, 2);
  EXPECT_LT(P->ChainedBytes, P->DirectBytes);
  EXPECT_EQ(P->Route, UpdatePlan::RouteKind::Chained);
  EXPECT_EQ(P->ScriptBytes, P->ChainedBytes);
  // And the composed package still patches v0's image exactly to v2's.
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(V0.Image, P->Update, Patched));
  EXPECT_EQ(Patched.serialize(), V2.Image.serialize());
}

TEST(VersionStore, PlanRejectsUnknownVersions) {
  VersionStore Store;
  buildChain(Store);
  EXPECT_FALSE(Store.plan(0, 7).has_value());
  EXPECT_FALSE(Store.plan(-3, 0).has_value());
}

TEST_F(ScratchDir, OnDiskStoreSurvivesReopen) {
  {
    DiagnosticEngine Diag;
    auto Store = VersionStore::open(Dir, Diag);
    ASSERT_TRUE(Store.has_value()) << Diag.str();
    buildChain(*Store);
  }
  DiagnosticEngine Diag;
  auto Reopened = VersionStore::open(Dir, Diag);
  ASSERT_TRUE(Reopened.has_value()) << Diag.str();
  ASSERT_EQ(Reopened->size(), 3u);

  // Compare against a fresh in-memory chain: artifacts must round-trip
  // bit for bit, and the reloaded record must still steer recompilation
  // (the planner exercises images; this checks records and layouts too).
  VersionStore Fresh;
  buildChain(Fresh);
  for (int Id = 0; Id < 3; ++Id) {
    const StoredVersion *A = Reopened->find(Id);
    const StoredVersion *B = Fresh.find(Id);
    EXPECT_EQ(A->Image.serialize(), B->Image.serialize()) << "v" << Id;
    EXPECT_EQ(A->Record.serialize(), B->Record.serialize()) << "v" << Id;
    EXPECT_EQ(A->Layout.GlobalOffsets, B->Layout.GlobalOffsets);
    EXPECT_EQ(A->Layout.DataWords, B->Layout.DataWords);
    EXPECT_EQ(A->Parent, B->Parent);
    EXPECT_EQ(A->SourceHash, B->SourceHash);
    EXPECT_EQ(A->ScriptBytesFromParent, B->ScriptBytesFromParent);
  }

  // And the chain keeps growing after the reopen.
  DiagnosticEngine Diag2;
  EXPECT_EQ(Reopened->addUpdate(updateCases()[5].NewSource, uccOptions(),
                                Diag2),
            3)
      << Diag2.str();
  auto P = Reopened->plan(0, 3);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->ChainSteps, 3);
}

TEST_F(ScratchDir, CorruptManifestIsRejected) {
  {
    DiagnosticEngine Diag;
    auto Store = VersionStore::open(Dir, Diag);
    ASSERT_TRUE(Store.has_value());
    buildChain(*Store);
  }
  std::ofstream(Dir + "/manifest.json") << "{ not json";
  DiagnosticEngine Diag;
  EXPECT_FALSE(VersionStore::open(Dir, Diag).has_value());
  EXPECT_TRUE(Diag.hasErrors());
}

TEST_F(ScratchDir, MissingArtifactIsRejected) {
  {
    DiagnosticEngine Diag;
    auto Store = VersionStore::open(Dir, Diag);
    ASSERT_TRUE(Store.has_value());
    buildChain(*Store);
  }
  std::remove((Dir + "/v1.rec").c_str());
  DiagnosticEngine Diag;
  EXPECT_FALSE(VersionStore::open(Dir, Diag).has_value());
  EXPECT_TRUE(Diag.hasErrors());
}

TEST(UpdateSession, CommitLoopBuildsTheChain) {
  VersionStore Store;
  UpdateSession Session(Store, uccOptions());
  const UpdateCase &Case = updateCases()[5];
  DiagnosticEngine Diag;
  EXPECT_EQ(Session.commit(Case.OldSource, Diag), 0) << Diag.str();
  EXPECT_FALSE(Session.planFromPrevious().has_value());
  EXPECT_EQ(Session.commit(Case.NewSource, Diag), 1) << Diag.str();
  EXPECT_EQ(Session.commit(Case.OldSource, Diag), 2) << Diag.str();

  auto P = Session.planFromPrevious();
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->From, 1);
  EXPECT_EQ(P->To, 2);
  EXPECT_EQ(P->ChainSteps, 1);

  // The session is sugar over the store: the same three-step chain the
  // manual API builds.
  VersionStore Manual;
  buildChain(Manual);
  for (int Id = 0; Id < 3; ++Id)
    EXPECT_EQ(Store.find(Id)->Image.serialize(),
              Manual.find(Id)->Image.serialize())
        << "v" << Id;
}

TEST(VersionStore, SourceHashIsStable) {
  EXPECT_EQ(sourceHash(""), sourceHash(""));
  EXPECT_NE(sourceHash("a"), sourceHash("b"));
  EXPECT_EQ(sourceHash("abc").size(), 16u);
}

} // namespace
