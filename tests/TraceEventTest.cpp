//===- tests/TraceEventTest.cpp - structured event trace layer ------------===//
//
// Pins the event half of the telemetry registry: the bounded ring buffer,
// the disabled-by-default / no-scope no-op contracts, the Chrome
// trace-event export (must parse, timestamps must be monotone, B/E pairs
// must nest), and the simulator/network emission sites.
//
//===----------------------------------------------------------------------===//

#include "TestJson.h"
#include "codegen/SAVR.h"
#include "net/Network.h"
#include "sim/Simulator.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace ucc;

namespace {

TEST(TraceEvent, DisabledByDefault) {
  Telemetry T;
  EXPECT_FALSE(T.eventsEnabled());
  T.recordEvent(TelemetryEvent::Phase::Instant, "x", "dropped");
  EXPECT_TRUE(T.eventsInOrder().empty());
  EXPECT_EQ(T.eventsDropped(), 0u);
}

TEST(TraceEvent, NoScopeEmissionIsANoOp) {
  // With no scope installed the ambient helpers must not crash and must
  // record nothing anywhere.
  EXPECT_EQ(eventTelemetry(), nullptr);
  telemetryInstant("net", "packet.tx", 3);
}

TEST(TraceEvent, ScopeWithoutEventsStaysQuiet) {
  Telemetry T;
  TelemetryScope Scope(T);
  // Counters/spans are on, but nobody asked for events.
  EXPECT_EQ(eventTelemetry(), nullptr);
  telemetryInstant("sim", "halt");
  EXPECT_TRUE(T.eventsInOrder().empty());
}

TEST(TraceEvent, RecordsInOrderWithArgs) {
  Telemetry T;
  T.enableEvents();
  T.recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.tx", 2,
                {{"round", 1.0}, {"attempts", 3.0}});
  T.recordEvent(TelemetryEvent::Phase::Counter, "net", "energy/node2", 2,
                {{"joules", 0.5}});
  auto Events = T.eventsInOrder();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0]->Name, "packet.tx");
  EXPECT_EQ(Events[0]->Category, "net");
  EXPECT_EQ(Events[0]->Track, 2);
  ASSERT_EQ(Events[0]->Args.size(), 2u);
  EXPECT_EQ(Events[0]->Args[0].first, "round");
  EXPECT_EQ(Events[0]->Args[0].second, 1.0);
  EXPECT_EQ(Events[1]->Ph, TelemetryEvent::Phase::Counter);
  EXPECT_LE(Events[0]->TsMicros, Events[1]->TsMicros);
}

TEST(TraceEvent, RingBufferBoundsAndCountsDrops) {
  Telemetry T;
  T.enableEvents(/*Capacity=*/8);
  for (int K = 0; K < 20; ++K)
    T.recordEvent(TelemetryEvent::Phase::Instant, "t",
                  "e" + std::to_string(K));
  auto Events = T.eventsInOrder();
  ASSERT_EQ(Events.size(), 8u);
  EXPECT_EQ(T.eventsDropped(), 12u);
  // Oldest-first order: the survivors are the last 8, in emission order.
  for (int K = 0; K < 8; ++K)
    EXPECT_EQ(Events[static_cast<size_t>(K)]->Name,
              "e" + std::to_string(12 + K));
}

TEST(TraceEvent, ClearResetsEventState) {
  Telemetry T;
  T.enableEvents(4);
  for (int K = 0; K < 9; ++K)
    T.recordEvent(TelemetryEvent::Phase::Instant, "t", "e");
  T.clear();
  EXPECT_TRUE(T.eventsInOrder().empty());
  EXPECT_EQ(T.eventsDropped(), 0u);
  EXPECT_FALSE(T.eventsEnabled());
}

TEST(TraceEvent, SpansMirrorAsBeginEndEvents) {
  Telemetry T;
  T.enableEvents();
  T.beginSpan("compile");
  T.beginSpan("ra");
  T.endSpan();
  T.endSpan();
  auto Events = T.eventsInOrder();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_EQ(Events[0]->Ph, TelemetryEvent::Phase::Begin);
  EXPECT_EQ(Events[0]->Name, "compile");
  EXPECT_EQ(Events[1]->Name, "ra");
  EXPECT_EQ(Events[2]->Ph, TelemetryEvent::Phase::End);
  EXPECT_EQ(Events[3]->Ph, TelemetryEvent::Phase::End);
}

/// Parses a Chrome trace document and applies the structural checks every
/// export must satisfy: top-level object with a traceEvents array, each
/// event carrying name/ph/ts/pid/tid, timestamps monotone non-decreasing
/// in array order, and B/E events well-nested per track.
void checkChromeTrace(const std::string &Trace) {
  auto Doc = testjson::parse(Trace);
  ASSERT_TRUE(Doc.has_value()) << Trace;
  const testjson::Value *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, testjson::Value::Array);

  double LastTs = -1.0;
  std::map<double, int> OpenPerTrack;
  for (const auto &E : Events->Arr) {
    ASSERT_NE(E->get("name"), nullptr);
    ASSERT_NE(E->get("ph"), nullptr);
    ASSERT_NE(E->get("pid"), nullptr);
    const std::string &Ph = E->get("ph")->Str;
    if (Ph == "M")
      continue; // metadata records carry no timestamp/track contract
    ASSERT_NE(E->get("tid"), nullptr);
    ASSERT_NE(E->get("ts"), nullptr);
    double Ts = E->get("ts")->Num;
    EXPECT_GE(Ts, LastTs) << "timestamps must be monotone";
    LastTs = Ts;
    double Tid = E->get("tid")->Num;
    if (Ph == "B")
      ++OpenPerTrack[Tid];
    else if (Ph == "E") {
      EXPECT_GT(OpenPerTrack[Tid], 0) << "E without a matching B";
      --OpenPerTrack[Tid];
    }
  }
  for (const auto &[Tid, Open] : OpenPerTrack)
    EXPECT_EQ(Open, 0) << "unclosed B event on track " << Tid;
}

TEST(TraceEvent, ChromeTraceParsesAndNests) {
  Telemetry T;
  T.enableEvents();
  T.beginSpan("update");
  T.recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.tx", 1,
                {{"round", 1.0}});
  T.recordEvent(TelemetryEvent::Phase::Counter, "net", "energy/node1", 1,
                {{"joules", 1e-3}});
  T.beginSpan("diff");
  T.endSpan();
  T.endSpan();
  checkChromeTrace(T.toChromeTrace());
}

TEST(TraceEvent, ChromeTraceNamesNodeTracks) {
  Telemetry T;
  T.enableEvents();
  T.recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.rx", 5);
  T.recordEvent(TelemetryEvent::Phase::Instant, "net", "flood.done", 0);
  std::string Trace = T.toChromeTrace();
  EXPECT_NE(Trace.find("\"node 5\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"pipeline\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"dropped_events\""), std::string::npos);
}

TEST(TraceEvent, EmptyTraceIsStillValidJson) {
  Telemetry T;
  T.enableEvents();
  checkChromeTrace(T.toChromeTrace());
}

TEST(TraceEvent, ChromeTraceCarriesProcessAndWorkerMetadata) {
  Telemetry T;
  T.enableEvents();
  T.recordEvent(TelemetryEvent::Phase::Instant, "task", "on-worker",
                Telemetry::WorkerTrackBase + 3);
  std::string Trace = T.toChromeTrace();
  EXPECT_NE(Trace.find("\"process_name\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"thread_name\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"worker 3\""), std::string::npos)
      << "worker tracks must render a human label, not a bare tid";
  checkChromeTrace(Trace);
}

TEST(TraceEvent, FlowEventsPairAcrossTracksById) {
  Telemetry T;
  T.enableEvents();
  // A fan-out shaped by hand: the pipeline starts a flow that terminates
  // inside a worker's task slice.
  T.recordEvent(TelemetryEvent::Phase::FlowStart, "flow", "task", 0, {},
                /*FlowId=*/77);
  int32_t Worker = Telemetry::WorkerTrackBase;
  T.recordEvent(TelemetryEvent::Phase::Begin, "task", "task", Worker);
  T.recordEvent(TelemetryEvent::Phase::FlowEnd, "flow", "task", Worker, {},
                /*FlowId=*/77);
  T.recordEvent(TelemetryEvent::Phase::End, "task", "task", Worker);

  std::string Trace = T.toChromeTrace();
  auto Doc = testjson::parse(Trace);
  ASSERT_TRUE(Doc.has_value()) << Trace;
  const testjson::Value *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);

  double StartId = -1.0, EndId = -2.0;
  double StartTid = -1.0, EndTid = -1.0;
  bool SawBindingPoint = false;
  for (const auto &E : Events->Arr) {
    const std::string &Ph = E->get("ph")->Str;
    if (Ph == "s") {
      ASSERT_NE(E->get("id"), nullptr);
      StartId = E->get("id")->Num;
      StartTid = E->get("tid")->Num;
    } else if (Ph == "f") {
      ASSERT_NE(E->get("id"), nullptr);
      EndId = E->get("id")->Num;
      EndTid = E->get("tid")->Num;
      SawBindingPoint = E->get("bp") != nullptr && E->get("bp")->Str == "e";
    }
  }
  EXPECT_EQ(StartId, 77.0);
  EXPECT_EQ(EndId, StartId) << "s/f must share the flow id";
  EXPECT_NE(StartTid, EndTid) << "the flow must cross tracks";
  EXPECT_TRUE(SawBindingPoint)
      << "f events bind to the enclosing slice (bp:e)";
  checkChromeTrace(Trace);
}

TEST(TraceEvent, SpanBeginCarriesActiveTraceId) {
  Telemetry T;
  T.enableEvents();
  {
    TelemetryScope Scope(T);
    TraceContextScope Trace(TraceContext{42, 0});
    ScopedSpan Span("serve.plan");
  }
  bool SawTraceArg = false;
  for (const TelemetryEvent *E : T.eventsInOrder())
    if (E->Ph == TelemetryEvent::Phase::Begin && E->Name == "serve.plan")
      for (const auto &Arg : E->Args)
        if (Arg.first == "trace") {
          SawTraceArg = true;
          EXPECT_EQ(Arg.second, 42.0);
        }
  EXPECT_TRUE(SawTraceArg)
      << "span Begin events must be taggable back to their request";
}

TEST(TraceEvent, TraceContextScopeNestsAndRestores) {
  EXPECT_EQ(currentTraceContext(), nullptr);
  {
    TraceContextScope Outer(TraceContext{7, 0});
    ASSERT_NE(currentTraceContext(), nullptr);
    EXPECT_EQ(currentTraceContext()->TraceId, 7u);
    {
      TraceContextScope Inner(TraceContext{7, 3});
      EXPECT_EQ(currentTraceContext()->SpanId, 3u);
    }
    EXPECT_EQ(currentTraceContext()->SpanId, 0u);
  }
  EXPECT_EQ(currentTraceContext(), nullptr);

  uint64_t A = nextTraceId();
  uint64_t B = nextTraceId();
  EXPECT_GT(B, A) << "trace ids are process-unique and increasing";
}

uint32_t enc(MOp Op, int A = 0, int B = 0, uint16_t Imm = 0) {
  EncodedInstr E;
  E.Op = Op;
  E.A = static_cast<uint8_t>(A);
  E.B = static_cast<uint8_t>(B);
  E.Imm = Imm;
  return E.pack();
}

BinaryImage radioImage() {
  BinaryImage Img;
  Img.Functions = {{"main", 0, 6}};
  Img.Code = {
      enc(MOp::LDI, 0, 0, 42),
      enc(MOp::OUT, 0, 0, PortRadioData),
      enc(MOp::LDI, 1, 0, 1),
      enc(MOp::OUT, 1, 0, PortRadioSend), // one packet of one word
      enc(MOp::OUT, 0, 0, PortDebug),
      enc(MOp::HALT),
  };
  Img.EntryFunc = 0;
  return Img;
}

TEST(TraceEvent, SimulatorEmitsPacketAndLifecycleEvents) {
  Telemetry T;
  T.enableEvents();
  SimOptions Opts;
  Opts.NodeId = 7;
  RunResult R;
  {
    TelemetryScope Scope(T);
    R = runImage(radioImage(), Opts);
  }
  ASSERT_FALSE(R.Trapped) << R.TrapReason;

  bool SawTx = false, SawFinalEnergy = false, SawHalt = false;
  for (const TelemetryEvent *E : T.eventsInOrder()) {
    if (E->Category != "sim")
      continue;
    if (E->Name == "packet.tx") {
      SawTx = true;
      EXPECT_EQ(E->Track, 7);
      ASSERT_FALSE(E->Args.empty());
      EXPECT_EQ(E->Args[0].first, "words");
      EXPECT_EQ(E->Args[0].second, 1.0);
    }
    if (E->Name == "energy/node7" &&
        E->Ph == TelemetryEvent::Phase::Counter) {
      SawFinalEnergy = true;
      ASSERT_FALSE(E->Args.empty());
      EXPECT_GT(E->Args[0].second, 0.0) << "joules must accumulate";
    }
    if (E->Name == "halt")
      SawHalt = true;
  }
  EXPECT_TRUE(SawTx);
  EXPECT_TRUE(SawFinalEnergy);
  EXPECT_TRUE(SawHalt);
  checkChromeTrace(T.toChromeTrace());
}

TEST(TraceEvent, SimulatorSamplesEnergyTimeline) {
  // A long-running countdown loop must produce periodic energy samples,
  // not just the final one.
  BinaryImage Img;
  Img.Functions = {{"main", 0, 7}};
  Img.Code = {
      enc(MOp::LDI, 0, 0, 1000), // counter
      enc(MOp::LDI, 1, 0, 1),    // decrement
      enc(MOp::LDI, 2, 0, 0),    // zero
      enc(MOp::SUB, 0, 0, 1),    // loop:
      enc(MOp::CMP, 0, 2),
      enc(MOp::BNE, 0, 0, 3),
      enc(MOp::HALT),
  };
  Img.EntryFunc = 0;

  Telemetry T;
  T.enableEvents();
  SimOptions Opts;
  Opts.EnergySampleCycles = 500; // several samples across the ~3k cycles
  int Samples = 0;
  {
    TelemetryScope Scope(T);
    RunResult R = runImage(Img, Opts);
    ASSERT_FALSE(R.Trapped) << R.TrapReason;
  }
  double LastJoules = -1.0;
  for (const TelemetryEvent *E : T.eventsInOrder())
    if (E->Ph == TelemetryEvent::Phase::Counter && E->Category == "sim") {
      ++Samples;
      ASSERT_FALSE(E->Args.empty());
      EXPECT_GE(E->Args[0].second, LastJoules)
          << "energy timeline must be non-decreasing";
      LastJoules = E->Args[0].second;
    }
  EXPECT_GE(Samples, 3) << "periodic sampling plus the final sample";
}

TEST(TraceEvent, DisseminationEmitsPerNodeAndProgressEvents) {
  Telemetry T;
  T.enableEvents();
  DisseminationResult R;
  {
    TelemetryScope Scope(T);
    R = disseminate(Topology::line(4), 100);
  }
  int Tx = 0, Rx = 0, Progress = 0;
  double LastReached = 0.0;
  for (const TelemetryEvent *E : T.eventsInOrder()) {
    if (E->Category != "net")
      continue;
    if (E->Name == "packet.tx") {
      ++Tx;
      EXPECT_GT(E->Track, -1);
    }
    if (E->Name == "packet.rx")
      ++Rx;
    if (E->Name == "net.progress") {
      ++Progress;
      EXPECT_EQ(E->Track, 0) << "progress lives on the pipeline track";
      ASSERT_EQ(E->Args.size(), 2u);
      EXPECT_GT(E->Args[1].second, LastReached)
          << "reached-node count must grow every round";
      LastReached = E->Args[1].second;
    }
  }
  EXPECT_EQ(Tx, 3 * R.Packets) << "3 forwarding nodes on a 4-line";
  EXPECT_EQ(Rx, 3) << "one rx event per covered node";
  EXPECT_EQ(Progress, R.MaxHops);
  EXPECT_EQ(static_cast<int>(LastReached), 4);
  checkChromeTrace(T.toChromeTrace());
}

TEST(TraceEvent, DisseminationQuietWithoutEvents) {
  // The aggregate results must be identical with and without the event
  // layer: instrumentation must not perturb the RNG-driven outcomes.
  RadioChannel Lossy;
  Lossy.LossRate = 0.3;
  DisseminationResult Plain = disseminate(Topology::grid(5, 5), 300,
                                          PacketFormat(), Mica2Power(),
                                          Lossy);
  Telemetry T;
  T.enableEvents();
  DisseminationResult Traced;
  {
    TelemetryScope Scope(T);
    Traced = disseminate(Topology::grid(5, 5), 300, PacketFormat(),
                         Mica2Power(), Lossy);
  }
  EXPECT_EQ(Plain.Retransmissions, Traced.Retransmissions);
  EXPECT_DOUBLE_EQ(Plain.totalJoules(), Traced.totalJoules());
  EXPECT_FALSE(T.eventsInOrder().empty());
}

} // namespace
