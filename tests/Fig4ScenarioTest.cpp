//===- tests/Fig4ScenarioTest.cpp - the paper's Fig. 4 end to end ---------===//
//
// Drives the motivating example of section 3.1 through the full compiler:
// an update extends variable b's live range into the region where its old
// register is still held by a. UCC-RA must weigh retransmitting b's
// unchanged uses against inserting a mov — and flip the decision when the
// code is hot (large Cnt).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "sim/Simulator.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

struct Fig4Run {
  CompileOutput V1;
  CompileOutput V2;
  int Movs = 0;
};

Fig4Run runScenario(double Cnt, bool EnableSplits = true) {
  const UpdateCase &Case = liveRangeExtensionCase();
  DiagnosticEngine Diag;
  auto V1 = Compiler::compile(Case.OldSource, CompileOptions(), Diag);
  EXPECT_TRUE(V1.has_value()) << Diag.str();

  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  Opts.Ucc.Cnt = Cnt;
  Opts.Ucc.EnableSplits = EnableSplits;
  auto V2 = Compiler::recompile(Case.NewSource, V1->Record, Opts, Diag);
  EXPECT_TRUE(V2.has_value()) << Diag.str();

  Fig4Run R{std::move(*V1), std::move(*V2), 0};
  for (const UccAllocStats &S : R.V2.RegAllocStats)
    R.Movs += S.InsertedMovs;
  return R;
}

TEST(Fig4Scenario, ColdCodeGetsTheMov) {
  Fig4Run R = runScenario(/*Cnt=*/1000.0);
  EXPECT_GE(R.Movs, 1)
      << "rarely-executed code should trade a runtime mov for script size";
}

TEST(Fig4Scenario, HotCodeSkipsTheMov) {
  Fig4Run R = runScenario(/*Cnt=*/1e9);
  EXPECT_EQ(R.Movs, 0)
      << "hot code must not pay the mov on every execution";
}

TEST(Fig4Scenario, SplitReducesTheScript) {
  Fig4Run With = runScenario(1000.0, /*EnableSplits=*/true);
  Fig4Run Without = runScenario(1000.0, /*EnableSplits=*/false);
  int DiffWith =
      diffImages(With.V1.Image, With.V2.Image).totalDiffInst();
  int DiffWithout =
      diffImages(Without.V1.Image, Without.V2.Image).totalDiffInst();
  EXPECT_LT(DiffWith, DiffWithout + With.Movs)
      << "the mov must buy back at least its own transmission cost";
}

TEST(Fig4Scenario, UccStillBeatsBaseline) {
  Fig4Run R = runScenario(1000.0);
  DiagnosticEngine Diag;
  auto VBase = Compiler::recompile(liveRangeExtensionCase().NewSource,
                                   R.V1.Record, CompileOptions(), Diag);
  ASSERT_TRUE(VBase.has_value());
  EXPECT_LT(diffImages(R.V1.Image, R.V2.Image).totalDiffInst(),
            diffImages(R.V1.Image, VBase->Image).totalDiffInst());
}

TEST(Fig4Scenario, PatchedBehaviorIdentical) {
  Fig4Run R = runScenario(1000.0);
  UpdatePackage Pkg = makeUpdate(R.V1, R.V2);
  BinaryImage Patched;
  ASSERT_TRUE(applyUpdate(R.V1.Image, Pkg.Update, Patched));

  DiagnosticEngine Diag;
  auto Fresh = Compiler::compile(liveRangeExtensionCase().NewSource,
                                 CompileOptions(), Diag);
  ASSERT_TRUE(Fresh.has_value());
  RunResult A = runImage(Fresh->Image);
  RunResult B = runImage(Patched);
  ASSERT_FALSE(B.Trapped) << B.TrapReason;
  EXPECT_TRUE(A.sameObservableBehavior(B));
}

} // namespace
