//===- tests/FleetSimTest.cpp - discrete-event fleet simulator ------------===//
//
// Oracle checks (the event engine's compat schedule against the seed
// round-based engine, bit for bit), fleet-mode radio/MAC/duty-cycle
// semantics, and the parallel determinism contract (jobs 1 vs 8
// byte-identical results and net.* counters).
//
//===----------------------------------------------------------------------===//

#include "net/EventSim.h"
#include "net/Network.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace ucc;

namespace {

/// Two line fragments with no path between them: 0-1-2 and 3-4.
Topology splitTopology() {
  Topology T;
  T.NumNodes = 5;
  T.Neighbors = {{1}, {0, 2}, {1}, {4}, {3}};
  return T;
}

void expectBitIdentical(const DisseminationResult &A,
                        const DisseminationResult &B) {
  EXPECT_EQ(A.Packets, B.Packets);
  EXPECT_EQ(A.BytesOnAir, B.BytesOnAir);
  EXPECT_EQ(A.MaxHops, B.MaxHops);
  EXPECT_EQ(A.Transmitters, B.Transmitters);
  EXPECT_EQ(A.Retransmissions, B.Retransmissions);
  EXPECT_EQ(A.FailedPackets, B.FailedPackets);
  EXPECT_DOUBLE_EQ(A.TotalTxJoules, B.TotalTxJoules);
  EXPECT_DOUBLE_EQ(A.TotalRxJoules, B.TotalRxJoules);
  ASSERT_EQ(A.PerNodeJoules.size(), B.PerNodeJoules.size());
  for (size_t I = 0; I < A.PerNodeJoules.size(); ++I)
    EXPECT_DOUBLE_EQ(A.PerNodeJoules[I], B.PerNodeJoules[I]) << "node " << I;
}

TEST(FleetSim, CompatScheduleMatchesRoundOracleEverywhere) {
  const Topology Topos[] = {Topology::line(1),  Topology::line(2),
                            Topology::line(17), Topology::grid(5, 4),
                            Topology::star(9),  splitTopology()};
  const double Losses[] = {0.0, 0.3, 0.9};
  const uint64_t Seeds[] = {1, 42};
  const int Attempts[] = {1, 2, 16};
  const size_t Bytes[] = {0, 10, 777};
  for (const Topology &T : Topos)
    for (double Loss : Losses)
      for (uint64_t Seed : Seeds)
        for (int MaxAttempts : Attempts)
          for (size_t ScriptBytes : Bytes) {
            RadioChannel Ch;
            Ch.LossRate = Loss;
            Ch.Seed = Seed;
            Ch.MaxAttempts = MaxAttempts;
            DisseminationResult Oracle = disseminateRounds(
                T, ScriptBytes, PacketFormat(), Mica2Power(), Ch);
            DisseminationResult Event =
                disseminate(T, ScriptBytes, PacketFormat(), Mica2Power(), Ch);
            expectBitIdentical(Event, Oracle);
          }
}

TEST(FleetSim, IdealChannelFloodCompletesTheFleet) {
  FleetConfig Cfg;
  FleetResult R = simulateFlood(Topology::line(10), 200, Cfg);
  EXPECT_EQ(R.NodesComplete, 10);
  EXPECT_EQ(R.NodesIncomplete, 0);
  EXPECT_EQ(R.MaxHops, 9);
  // The tail node's only neighbor is already done, so it never forwards,
  // and completion beacons suppress every redundant re-broadcast.
  EXPECT_EQ(R.Transmitters, 9);
  EXPECT_EQ(R.Retransmissions, 0);
  EXPECT_EQ(R.Collisions, 0);
  EXPECT_EQ(R.FailedPackets, 0);
  EXPECT_GT(R.Beacons, 0);
  EXPECT_GT(R.EventsProcessed, 0);
  EXPECT_GT(R.SimSeconds, 0.0);
  // Ideal channel, no duty cycle: the ledger is packet energy only, and
  // Tx matches the seed model (one burst per forwarder).
  DisseminationResult Legacy = disseminate(Topology::line(10), 200);
  EXPECT_DOUBLE_EQ(R.Energy.TxJoules, Legacy.TotalTxJoules);
  EXPECT_DOUBLE_EQ(R.Energy.ListenJoules, 0.0);
  EXPECT_DOUBLE_EQ(R.Energy.SleepJoules, 0.0);
}

TEST(FleetSim, LossyLinksRecoverThroughExtraBursts) {
  FleetConfig Cfg;
  Cfg.Link.LossRate = 0.3;
  Cfg.Mac.MaxBursts = 6;
  Cfg.Seed = 7;
  FleetResult R = simulateFlood(Topology::grid(8, 8), 200, Cfg);
  EXPECT_EQ(R.NodesComplete, 64);
  EXPECT_GT(R.Retransmissions, 0);
  EXPECT_GT(R.Overheard, 0);
}

TEST(FleetSim, PerLinkJitterAndAsymmetryStayDeterministic) {
  FleetConfig Cfg;
  Cfg.Link.LossRate = 0.2;
  Cfg.Link.LossJitter = 0.15;
  Cfg.Link.Asymmetry = 0.2;
  Cfg.Mac.MaxBursts = 6;
  FleetResult A = simulateFlood(Topology::grid(6, 6), 150, Cfg);
  FleetResult B = simulateFlood(Topology::grid(6, 6), 150, Cfg);
  EXPECT_EQ(A.Retransmissions, B.Retransmissions);
  EXPECT_EQ(A.NodesComplete, B.NodesComplete);
  EXPECT_DOUBLE_EQ(A.totalJoules(), B.totalJoules());
  // A different seed re-rolls the per-link qualities.
  Cfg.Seed = 99;
  FleetResult C = simulateFlood(Topology::grid(6, 6), 150, Cfg);
  EXPECT_NE(A.totalJoules(), C.totalJoules());
}

TEST(FleetSim, DisablingCarrierSenseCausesCollisions) {
  FleetConfig Cfg;
  Cfg.Mac.Csma = false;
  Cfg.Mac.MaxBursts = 6;
  FleetResult R = simulateFlood(Topology::grid(10, 10), 400, Cfg);
  EXPECT_GT(R.Collisions, 0);
  EXPECT_EQ(R.Backoffs, 0);
  // Redundant grid paths still deliver everyone eventually.
  EXPECT_EQ(R.NodesComplete, 100);
}

TEST(FleetSim, CarrierSenseBacksOffInsteadOfColliding) {
  FleetConfig Cfg;
  Cfg.Mac.MaxBursts = 6;
  FleetResult R = simulateFlood(Topology::grid(10, 10), 400, Cfg);
  EXPECT_GT(R.Backoffs, 0);
  FleetConfig NoCsma = Cfg;
  NoCsma.Mac.Csma = false;
  FleetResult R2 = simulateFlood(Topology::grid(10, 10), 400, NoCsma);
  EXPECT_LT(R.Collisions, R2.Collisions);
}

TEST(FleetSim, DutyCyclingTradesLatencyAndFillsTheLedger) {
  FleetConfig Cfg;
  Cfg.Duty.PeriodSeconds = 0.25;
  Cfg.Duty.OnFraction = 0.4;
  Cfg.Mac.MaxBursts = 8;
  FleetResult R = simulateFlood(Topology::grid(6, 6), 200, Cfg);
  EXPECT_EQ(R.NodesComplete, 36);
  EXPECT_GT(R.SleepDeferrals + R.SleepMisses, 0);
  EXPECT_GT(R.Energy.ListenJoules, 0.0);
  EXPECT_GT(R.Energy.SleepJoules, 0.0);
  EXPECT_GT(R.Energy.SleepSeconds, 0.0);
  // Always-on takes less virtual time to finish the same flood.
  FleetConfig AlwaysOn = Cfg;
  AlwaysOn.Duty = DutyCycleConfig();
  FleetResult Fast = simulateFlood(Topology::grid(6, 6), 200, AlwaysOn);
  EXPECT_LT(Fast.SimSeconds, R.SimSeconds);
}

TEST(FleetSim, ZeroByteScriptStillPropagatesCompletion) {
  FleetResult R = simulateFlood(Topology::line(5), 0, FleetConfig());
  EXPECT_EQ(R.Packets, 0);
  EXPECT_EQ(R.NodesComplete, 5);
  EXPECT_DOUBLE_EQ(R.Energy.TxJoules, 0.0);
}

TEST(FleetSim, UnreachableNodesStayIncompleteAndCountFailures) {
  FleetConfig Cfg;
  FleetResult R = simulateFlood(splitTopology(), 100, Cfg);
  EXPECT_EQ(R.NodesComplete, 3);
  EXPECT_EQ(R.NodesIncomplete, 2);
  EXPECT_EQ(R.FailedPackets,
            2 * static_cast<int64_t>(PacketFormat().packetsFor(100)));
}

/// The determinism gate: identical results and identical `net.*`
/// counters for jobs 1 vs 8, with the threshold forced down so every
/// multi-region batch actually exercises the parallel path.
TEST(FleetSim, JobsOneVsEightAreByteIdentical) {
  auto Run = [](int Jobs, FleetResult &R, Telemetry &Tel) {
    FleetConfig Cfg;
    Cfg.Link.LossRate = 0.2;
    Cfg.Link.LossJitter = 0.1;
    Cfg.Duty.PeriodSeconds = 0.1;
    Cfg.Duty.OnFraction = 0.6;
    Cfg.Mac.MaxBursts = 6;
    Cfg.Regions = 8;
    Cfg.ParallelThreshold = 1;
    Cfg.Jobs = Jobs;
    TelemetryScope Scope(Tel);
    R = simulateFlood(Topology::grid(12, 12), 300, Cfg);
  };
  FleetResult R1, R8;
  Telemetry T1, T8;
  Run(1, R1, T1);
  Run(8, R8, T8);

  EXPECT_EQ(R1.Packets, R8.Packets);
  EXPECT_EQ(R1.MaxHops, R8.MaxHops);
  EXPECT_EQ(R1.Transmitters, R8.Transmitters);
  EXPECT_EQ(R1.NodesComplete, R8.NodesComplete);
  EXPECT_EQ(R1.Retransmissions, R8.Retransmissions);
  EXPECT_EQ(R1.FailedPackets, R8.FailedPackets);
  EXPECT_EQ(R1.Collisions, R8.Collisions);
  EXPECT_EQ(R1.Backoffs, R8.Backoffs);
  EXPECT_EQ(R1.SleepDeferrals, R8.SleepDeferrals);
  EXPECT_EQ(R1.SleepMisses, R8.SleepMisses);
  EXPECT_EQ(R1.Overheard, R8.Overheard);
  EXPECT_EQ(R1.Beacons, R8.Beacons);
  EXPECT_EQ(R1.EventsProcessed, R8.EventsProcessed);
  EXPECT_EQ(R1.Batches, R8.Batches);
  EXPECT_EQ(R1.ParallelBatches, R8.ParallelBatches);
  EXPECT_GT(R1.ParallelBatches, 0);
  // Floating-point totals must be bit-identical, not just close: the
  // merge barrier fixes the accumulation order.
  EXPECT_EQ(std::memcmp(&R1.Energy, &R8.Energy, sizeof(R1.Energy)), 0);
  ASSERT_EQ(R1.PerNodeJoules.size(), R8.PerNodeJoules.size());
  EXPECT_EQ(std::memcmp(R1.PerNodeJoules.data(), R8.PerNodeJoules.data(),
                        R1.PerNodeJoules.size() * sizeof(double)),
            0);
  EXPECT_EQ(T1.counters(), T8.counters());
  EXPECT_EQ(T1.gauges(), T8.gauges());
}

TEST(FleetSim, EmitsEventCountersAndGauges) {
  Telemetry Tel;
  {
    TelemetryScope Scope(Tel);
    FleetConfig Cfg;
    Cfg.Duty.PeriodSeconds = 0.2;
    Cfg.Duty.OnFraction = 0.5;
    Cfg.Mac.MaxBursts = 6;
    simulateFlood(Topology::grid(5, 5), 120, Cfg);
  }
  EXPECT_EQ(Tel.counter("net.floods"), 1);
  EXPECT_GT(Tel.counter("net.event.processed"), 0);
  EXPECT_GT(Tel.counter("net.event.batches"), 0);
  EXPECT_GT(Tel.counter("net.beacons"), 0);
  EXPECT_GT(Tel.gauge("net.tx_joules"), 0.0);
  EXPECT_GT(Tel.gauge("net.sim_seconds"), 0.0);
  const TelemetrySpan *Net = Tel.spans().find("net");
  ASSERT_NE(Net, nullptr);
  EXPECT_EQ(Net->Count, 1);
}

TEST(FleetSim, TraceEventsFollowTheBursts) {
  Telemetry Tel;
  Tel.enableEvents();
  FleetResult R;
  {
    TelemetryScope Scope(Tel);
    R = simulateFlood(Topology::line(4), 100, FleetConfig());
  }
  int Tx = 0, Rx = 0, Progress = 0;
  for (const TelemetryEvent *Ev : Tel.eventsInOrder()) {
    if (Ev->Name == "burst.tx")
      ++Tx;
    else if (Ev->Name == "burst.rx")
      ++Rx;
    else if (Ev->Name == "net.progress")
      ++Progress;
  }
  EXPECT_EQ(Tx, R.Transmitters);  // beacons suppressed every retry
  EXPECT_GE(Rx, 3);               // each non-sink node decodes at least once
  EXPECT_GT(Progress, 0);
}

} // namespace
