//===- tests/JobsDeterminismTest.cpp - --jobs 1 vs --jobs 8 ---------------===//
//
// The parallel pipeline's output contract: the job count schedules work,
// it never changes results. Compiling and recompiling the workload update
// cases with Jobs=1 and Jobs=8 must produce byte-identical binary images
// and byte-identical edit scripts.
//
//===----------------------------------------------------------------------===//

#include "core/CompileCache.h"
#include "core/Compiler.h"
#include "core/VersionStore.h"
#include "diff/ImageDiff.h"
#include "support/RNG.h"
#include "support/Telemetry.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

CompileOutput mustCompile(const std::string &Source, CompileOptions Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::compile(Source, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOutput mustRecompile(const std::string &Source,
                            const CompilationRecord &Old,
                            CompileOptions Opts) {
  DiagnosticEngine Diag;
  auto Out = Compiler::recompile(Source, Old, Opts, Diag);
  EXPECT_TRUE(Out.has_value()) << Diag.str();
  return std::move(*Out);
}

CompileOptions uccOptions(int Jobs) {
  CompileOptions Opts;
  Opts.RA = RegAllocKind::UpdateConscious;
  Opts.DA = DataAllocKind::UpdateConscious;
  Opts.Jobs = Jobs;
  return Opts;
}

TEST(JobsDeterminism, UpdateCasesBitIdenticalAcrossJobs) {
  // A handful of representative cases keeps the test fast while still
  // covering multi-function programs where the parallel RA loop actually
  // fans out.
  for (const UpdateCase &Case : updateCases()) {
    if (Case.Id > 6)
      break;

    CompileOutput Old1 = mustCompile(Case.OldSource, uccOptions(1));
    CompileOutput Old8 = mustCompile(Case.OldSource, uccOptions(8));
    EXPECT_EQ(Old1.Image.serialize(), Old8.Image.serialize())
        << "case " << Case.Id << " (" << Case.Description
        << "): initial compile differs across job counts";

    CompileOutput New1 =
        mustRecompile(Case.NewSource, Old1.Record, uccOptions(1));
    CompileOutput New8 =
        mustRecompile(Case.NewSource, Old1.Record, uccOptions(8));
    EXPECT_EQ(New1.Image.serialize(), New8.Image.serialize())
        << "case " << Case.Id << " (" << Case.Description
        << "): recompile differs across job counts";

    // The artifact the paper cares about — the over-the-air edit script —
    // must also be byte-identical.
    ImageUpdate Script1 = makeImageUpdate(Old1.Image, New1.Image);
    ImageUpdate Script8 = makeImageUpdate(Old8.Image, New8.Image);
    EXPECT_EQ(Script1.serialize(), Script8.serialize())
        << "case " << Case.Id << " (" << Case.Description
        << "): edit script differs across job counts";
  }
}

TEST(JobsDeterminism, UpdateCasesBitIdenticalAcrossJobsAndCache) {
  // The full jobs x cache sweep: the function-level compile cache is an
  // optimization, never a different pipeline. Every configuration must
  // produce byte-identical images and edit scripts.
  for (const UpdateCase &Case : updateCases()) {
    if (Case.Id > 4)
      break;

    std::vector<uint8_t> RefImage, RefScript;
    bool HaveRef = false;
    for (int Jobs : {1, 8}) {
      for (bool Cached : {false, true}) {
        CompileCache Cache;
        CompileOptions Opts = uccOptions(Jobs);
        if (Cached)
          Opts.Cache = &Cache;

        CompileOutput Old = mustCompile(Case.OldSource, Opts);
        CompileOutput New =
            mustRecompile(Case.NewSource, Old.Record, Opts);
        std::vector<uint8_t> Image = New.Image.serialize();
        std::vector<uint8_t> Script =
            makeImageUpdate(Old.Image, New.Image).serialize();

        if (!HaveRef) {
          RefImage = std::move(Image);
          RefScript = std::move(Script);
          HaveRef = true;
          continue;
        }
        EXPECT_EQ(Image, RefImage)
            << "case " << Case.Id << ": jobs=" << Jobs << " cache="
            << (Cached ? "on" : "off")
            << " image differs from jobs=1 cache=off";
        EXPECT_EQ(Script, RefScript)
            << "case " << Case.Id << ": jobs=" << Jobs << " cache="
            << (Cached ? "on" : "off")
            << " edit script differs from jobs=1 cache=off";
      }
    }
  }
}

TEST(JobsDeterminism, RegAllocStatsOrderedByFunction) {
  // The parallel RA loop writes per-function stats by index; the report
  // order must match Jobs=1.
  const UpdateCase &Case = updateCases().front();
  CompileOutput Out1 = mustCompile(Case.OldSource, uccOptions(1));
  CompileOutput Out8 = mustCompile(Case.OldSource, uccOptions(8));
  ASSERT_EQ(Out1.RegAllocStats.size(), Out8.RegAllocStats.size());
  for (size_t F = 0; F < Out1.RegAllocStats.size(); ++F) {
    EXPECT_EQ(Out1.RegAllocStats[F].TotalInstrs,
              Out8.RegAllocStats[F].TotalInstrs)
        << "function " << F;
    EXPECT_EQ(Out1.RegAllocStats[F].InsertedMovs,
              Out8.RegAllocStats[F].InsertedMovs)
        << "function " << F;
    EXPECT_EQ(Out1.RegAllocStats[F].IlpPivots,
              Out8.RegAllocStats[F].IlpPivots)
        << "function " << F;
  }
}

TEST(JobsDeterminism, ParallelDiffingBitIdenticalAcrossJobs) {
  // Per-function diffing fans out over the pool; the update package and
  // every diff.* counter (telemetry merges in item order) must be
  // independent of the job count. Synthetic functions above the exact
  // dispatch threshold make the engine counters (anchors, Myers D) carry
  // real values, so this also pins the engine's determinism.
  RNG Rng(2024);
  auto makeImage = [&](bool Mutated) {
    RNG Gen(7); // same base content for both images
    BinaryImage Img;
    Img.EntryFunc = 0;
    for (int F = 0; F < 6; ++F) {
      FunctionSpan Span;
      Span.Name = "fn" + std::to_string(F);
      Span.Start = static_cast<uint32_t>(Img.Code.size());
      Span.Count = 6000;
      for (int K = 0; K < 6000; ++K)
        Img.Code.push_back(static_cast<uint32_t>(Gen.below(1u << 20)));
      if (Mutated)
        for (int K = 0; K < 200; ++K)
          Img.Code[Span.Start + Rng.below(Span.Count)] =
              static_cast<uint32_t>(Rng.below(1u << 20));
      Img.Functions.push_back(std::move(Span));
    }
    return Img;
  };
  BinaryImage Old = makeImage(false);
  BinaryImage New = makeImage(true);

  std::vector<uint8_t> Packages[2];
  std::map<std::string, int64_t> Counters[2];
  int Idx = 0;
  for (int Jobs : {1, 8}) {
    Telemetry T;
    T.declareStandardCounters();
    {
      TelemetryScope Scope(T);
      Packages[Idx] = makeImageUpdate(Old, New, Jobs).serialize();
      diffImages(Old, New, Jobs);
    }
    Counters[Idx] = T.counters();
    ++Idx;
  }
  EXPECT_EQ(Packages[0], Packages[1])
      << "edit scripts must be byte-identical across job counts";
  EXPECT_GT(Counters[0].at("diff.scripts"), 0);
  EXPECT_GT(Counters[0].at("diff.myers_d") +
                Counters[0].at("diff.anchors") +
                Counters[0].at("diff.fallback_blocks"),
            0)
      << "synthetic functions above ExactThreshold must exercise the "
         "engine";
  EXPECT_EQ(Counters[0], Counters[1])
      << "diff.* counters must be identical across job counts";
}

TEST(JobsDeterminism, VersionStoreChainMatchesManualChainAcrossJobs) {
  // Driving v1 -> v2 -> v3 through the store must be byte-identical to
  // the hand-rolled compile/recompile chain, at every job count — the
  // store is bookkeeping, never a different pipeline.
  const UpdateCase &Case = updateCases()[2];
  for (int Jobs : {1, 8}) {
    VersionStore Store;
    DiagnosticEngine Diag;
    ASSERT_EQ(Store.addInitial(Case.OldSource, uccOptions(Jobs), Diag), 0)
        << Diag.str();
    ASSERT_EQ(Store.addUpdate(Case.NewSource, uccOptions(Jobs), Diag), 1)
        << Diag.str();
    ASSERT_EQ(Store.addUpdate(Case.OldSource, uccOptions(Jobs), Diag), 2)
        << Diag.str();

    CompileOutput V1 = mustCompile(Case.OldSource, uccOptions(Jobs));
    CompileOutput V2 =
        mustRecompile(Case.NewSource, V1.Record, uccOptions(Jobs));
    CompileOutput V3 =
        mustRecompile(Case.OldSource, V2.Record, uccOptions(Jobs));

    EXPECT_EQ(Store.find(0)->Image.serialize(), V1.Image.serialize())
        << "jobs=" << Jobs;
    EXPECT_EQ(Store.find(1)->Image.serialize(), V2.Image.serialize())
        << "jobs=" << Jobs;
    EXPECT_EQ(Store.find(2)->Image.serialize(), V3.Image.serialize())
        << "jobs=" << Jobs;
    EXPECT_EQ(Store.find(2)->Record.serialize(), V3.Record.serialize())
        << "jobs=" << Jobs;
  }

  // And the planned packages agree across job counts.
  VersionStore S1, S8;
  for (auto [Store, Jobs] : {std::pair<VersionStore *, int>{&S1, 1},
                             {&S8, 8}}) {
    DiagnosticEngine Diag;
    ASSERT_EQ(Store->addInitial(Case.OldSource, uccOptions(Jobs), Diag),
              0);
    ASSERT_EQ(Store->addUpdate(Case.NewSource, uccOptions(Jobs), Diag), 1);
    ASSERT_EQ(Store->addUpdate(Case.OldSource, uccOptions(Jobs), Diag), 2);
  }
  auto P1 = S1.plan(0, 2);
  auto P8 = S8.plan(0, 2);
  ASSERT_TRUE(P1.has_value() && P8.has_value());
  EXPECT_EQ(P1->Route, P8->Route);
  EXPECT_EQ(P1->Update.serialize(), P8->Update.serialize());
}

} // namespace
