//===- tests/EnergyNetworkTest.cpp - energy model and dissemination -------===//

#include "energy/EnergyModel.h"
#include "net/Network.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace ucc;

namespace {

TEST(Energy, PerCycleFromFig3Currents) {
  EnergyModel Model;
  // 8.0 mA x 3 V / 7.3728 MHz.
  EXPECT_NEAR(Model.energyPerCycle(), 8.0e-3 * 3.0 / 7.3728e6, 1e-15);
}

TEST(Energy, BitCostsThousandInstructions) {
  EnergyModel Model;
  EXPECT_NEAR(Model.energyPerBit() / Model.instrExecutionEnergy(), 1000.0,
              1e-9);
  // A 32-bit instruction word costs 32,000 ALU instructions to ship.
  EXPECT_NEAR(Model.instrTransmissionEnergy() / Model.energyPerCycle(),
              32000.0, 1e-6);
}

TEST(Energy, DiffEnergyEquation18) {
  EnergyModel Model;
  double DiffInst = 10, DiffCycle = 5, Cnt = 100;
  EXPECT_NEAR(Model.diffEnergy(DiffInst, DiffCycle, Cnt),
              DiffInst * Model.instrTransmissionEnergy() +
                  DiffCycle * Model.energyPerCycle() * Cnt,
              1e-18);
}

TEST(Energy, SavingsEquation19SignConventions) {
  EnergyModel Model;
  // UCC ships 5 fewer instructions but runs 1 cycle slower.
  double Savings = Model.energySavings(10, 0, 5, 1, /*Cnt=*/1000);
  EXPECT_GT(Savings, 0.0);
  // At enormous Cnt the extra cycle dominates.
  double HotSavings = Model.energySavings(10, 0, 5, 1, /*Cnt=*/1e9);
  EXPECT_LT(HotSavings, 0.0);
}

TEST(Energy, BreakEvenMatchesSection21Arithmetic) {
  EnergyModel Model;
  // One instruction word = 32 bits x 1000 instructions/bit.
  EXPECT_NEAR(Model.breakEvenExecutions(1.0, 1.0), 32000.0, 1e-6);
  EXPECT_TRUE(std::isinf(Model.breakEvenExecutions(1.0, 0.0)));
}

TEST(Energy, PowerTableListsFig3Modes) {
  std::string Table = EnergyModel::powerTable();
  EXPECT_NE(Table.find("CPU active"), std::string::npos);
  EXPECT_NE(Table.find("8.0 mA"), std::string::npos);
  EXPECT_NE(Table.find("21.5 mA"), std::string::npos);
  EXPECT_NE(Table.find("EEPROM write"), std::string::npos);
}

TEST(Network, LineTopologyDistances) {
  Topology T = Topology::line(5);
  std::vector<int> D = T.hopDistances();
  EXPECT_EQ(D, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Network, GridTopologyDistances) {
  Topology T = Topology::grid(3, 3);
  std::vector<int> D = T.hopDistances();
  EXPECT_EQ(D[0], 0);
  EXPECT_EQ(D[8], 4); // opposite corner: 2 + 2 hops
}

TEST(Network, StarIsOneHop) {
  Topology T = Topology::star(10);
  std::vector<int> D = T.hopDistances();
  for (int K = 1; K < 10; ++K)
    EXPECT_EQ(D[static_cast<size_t>(K)], 1);
}

TEST(Network, PacketizationRoundsUp) {
  PacketFormat Fmt;
  Fmt.PayloadBytes = 24;
  Fmt.HeaderBytes = 8;
  EXPECT_EQ(Fmt.packetsFor(0), 0);
  EXPECT_EQ(Fmt.packetsFor(1), 1);
  EXPECT_EQ(Fmt.packetsFor(24), 1);
  EXPECT_EQ(Fmt.packetsFor(25), 2);
  EXPECT_EQ(Fmt.bytesOnAir(25), 25u + 2u * 8u);
}

TEST(Network, EveryNonSinkNodeReceivesOnce) {
  Topology T = Topology::line(10);
  DisseminationResult R = disseminate(T, 100);
  // 9 receivers, and every node except the last must forward.
  double RxPerNode = R.TotalRxJoules / 9.0;
  for (int Node = 1; Node < 10; ++Node)
    EXPECT_GE(R.PerNodeJoules[static_cast<size_t>(Node)],
              RxPerNode * 0.999);
  EXPECT_EQ(R.Transmitters, 9); // nodes 0..8 cover their next neighbor
  EXPECT_EQ(R.MaxHops, 9);
}

TEST(Network, EnergyScalesWithScriptSize) {
  Topology T = Topology::grid(8, 8);
  DisseminationResult Small = disseminate(T, 50);
  DisseminationResult Large = disseminate(T, 500);
  EXPECT_GT(Large.totalJoules(), Small.totalJoules() * 5.0);
}

TEST(Network, StarCheaperThanLineForSameScript) {
  DisseminationResult Line = disseminate(Topology::line(64), 200);
  DisseminationResult Star = disseminate(Topology::star(64), 200);
  // The star has one transmitter; the line has 63.
  EXPECT_LT(Star.TotalTxJoules, Line.TotalTxJoules);
}

TEST(Network, PerfectChannelHasNoRetransmissions) {
  DisseminationResult R = disseminate(Topology::line(20), 300);
  EXPECT_EQ(R.Retransmissions, 0);
  EXPECT_EQ(R.FailedPackets, 0);
}

TEST(Network, LossyChannelCostsRetransmissionEnergy) {
  PacketFormat Fmt;
  Mica2Power Power;
  RadioChannel Clean;
  RadioChannel Lossy;
  Lossy.LossRate = 0.5;

  DisseminationResult A =
      disseminate(Topology::line(20), 300, Fmt, Power, Clean);
  DisseminationResult B =
      disseminate(Topology::line(20), 300, Fmt, Power, Lossy);
  EXPECT_GT(B.Retransmissions, 0);
  EXPECT_GT(B.TotalTxJoules, A.TotalTxJoules * 1.5)
      << "50% loss should roughly double transmission energy";
  EXPECT_DOUBLE_EQ(B.TotalRxJoules, A.TotalRxJoules)
      << "receivers only decode the successful attempt";
}

TEST(Network, LossyChannelIsDeterministicPerSeed) {
  RadioChannel Lossy;
  Lossy.LossRate = 0.3;
  DisseminationResult A = disseminate(Topology::grid(6, 6), 500,
                                      PacketFormat(), Mica2Power(), Lossy);
  DisseminationResult B = disseminate(Topology::grid(6, 6), 500,
                                      PacketFormat(), Mica2Power(), Lossy);
  EXPECT_EQ(A.Retransmissions, B.Retransmissions);
  EXPECT_DOUBLE_EQ(A.totalJoules(), B.totalJoules());
}

TEST(Network, HopelessChannelReportsFailures) {
  RadioChannel Awful;
  Awful.LossRate = 1.0;
  Awful.MaxAttempts = 4;
  DisseminationResult R = disseminate(Topology::line(3), 100,
                                      PacketFormat(), Mica2Power(), Awful);
  EXPECT_GT(R.FailedPackets, 0);
}

TEST(Network, DisconnectedNodesSpendNothing) {
  Topology T;
  T.NumNodes = 3;
  T.Neighbors = {{1}, {0}, {}}; // node 2 unreachable
  DisseminationResult R = disseminate(T, 64);
  EXPECT_EQ(R.PerNodeJoules[2], 0.0);
}

TEST(Network, HopDistancesMarkDisconnectedComponents) {
  Topology T;
  T.NumNodes = 6;
  // 0-1-2 reachable; 3-4 an island; 5 fully isolated.
  T.Neighbors = {{1}, {0, 2}, {1}, {4}, {3}, {}};
  std::vector<int> Dist = T.hopDistances();
  EXPECT_EQ(Dist, (std::vector<int>{0, 1, 2, -1, -1, -1}));
}

TEST(Network, HopDistancesOnEmptyTopology) {
  Topology T;
  EXPECT_TRUE(T.hopDistances().empty());
}

// The satellite fix: a non-positive payload (or negative header) must not
// divide by zero or fabricate negative packet counts — it clamps and
// bumps net.bad_packet_format.
TEST(Network, PacketFormatClampsInvalidSizes) {
  Telemetry Tel;
  TelemetryScope Scope(Tel);

  PacketFormat ZeroPayload;
  ZeroPayload.PayloadBytes = 0;
  EXPECT_EQ(ZeroPayload.packetsFor(5), 5); // one byte per packet
  EXPECT_EQ(Tel.counter("net.bad_packet_format"), 1);

  PacketFormat NegativePayload;
  NegativePayload.PayloadBytes = -24;
  EXPECT_EQ(NegativePayload.packetsFor(3), 3);

  PacketFormat NegativeHeader;
  NegativeHeader.HeaderBytes = -8;
  EXPECT_EQ(NegativeHeader.bytesOnAir(100), 100u); // header clamped to 0

  // A valid format never touches the counter.
  int64_t Before = Tel.counter("net.bad_packet_format");
  PacketFormat Ok;
  EXPECT_EQ(Ok.packetsFor(100), 5);
  EXPECT_EQ(Tel.counter("net.bad_packet_format"), Before);

  // And a flood over a broken format survives end to end.
  DisseminationResult R =
      disseminate(Topology::line(3), 64, ZeroPayload);
  EXPECT_EQ(R.Packets, 64);
  EXPECT_GT(R.totalJoules(), 0.0);
}

// Pins the MaxAttempts boundary semantics: a packet that exhausts its
// attempt budget still counts every extra attempt in Retransmissions
// (the sender spent that energy) *and* counts once in FailedPackets.
TEST(Network, ExhaustedAttemptsCountInBothLedgers) {
  RadioChannel Hopeless;
  Hopeless.LossRate = 1.0;
  Hopeless.MaxAttempts = 4;
  DisseminationResult R = disseminate(Topology::line(2), 100, PacketFormat(),
                                      Mica2Power(), Hopeless);
  ASSERT_GT(R.Packets, 0);
  // One transmitter; every packet burns all 4 attempts and fails.
  EXPECT_EQ(R.Transmitters, 1);
  EXPECT_EQ(R.Retransmissions, 3 * R.Packets);
  EXPECT_EQ(R.FailedPackets, R.Packets);
  // The energy ledger includes the failed attempts.
  double PacketBits = static_cast<double>(R.BytesOnAir) * 8.0 / R.Packets;
  EXPECT_DOUBLE_EQ(R.TotalTxJoules, PacketBits *
                                        Mica2Power().radioTxEnergyPerBit() *
                                        4.0 * R.Packets);
}

TEST(Network, SingleAttemptChannelNeverRetransmits) {
  RadioChannel OneShot;
  OneShot.LossRate = 1.0;
  OneShot.MaxAttempts = 1;
  DisseminationResult R = disseminate(Topology::line(2), 100, PacketFormat(),
                                      Mica2Power(), OneShot);
  // With a single attempt there are no retries to count, only failures.
  EXPECT_EQ(R.Retransmissions, 0);
  EXPECT_EQ(R.FailedPackets, R.Packets);
}

} // namespace
