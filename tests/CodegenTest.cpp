//===- tests/CodegenTest.cpp - instruction selection and encoding ---------===//

#include "codegen/BinaryImage.h"
#include "codegen/ISel.h"
#include "dataalloc/DataAlloc.h"
#include "frontend/IRGen.h"
#include "regalloc/LinearScan.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

MachineModule selectFor(const std::string &Source) {
  DiagnosticEngine Diag;
  Module M = compileToIR(Source, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  return selectModule(M);
}

TEST(ISelTest, MirrorsBlockStructure) {
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    void main() {
      int x = __in(4);
      if (x > 0) { __out(15, 1); } else { __out(15, 2); }
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors());
  MachineFunction MF = selectFunction(M, M.Functions[0]);
  ASSERT_EQ(MF.Blocks.size(), M.Functions[0].Blocks.size());
  for (size_t B = 0; B < MF.Blocks.size(); ++B)
    EXPECT_EQ(MF.Blocks[B].Succs, M.Functions[0].Blocks[B].successors());
}

TEST(ISelTest, PrologueMovesArgumentsOut) {
  MachineModule MM = selectFor(R"(
    int three(int a, int b, int c) { return a + b + c; }
    void main() { __out(15, three(1, 2, 3)); __halt(); }
  )");
  const MachineFunction &Fn = MM.Functions[0];
  ASSERT_GE(Fn.Blocks[0].Instrs.size(), 4u);
  EXPECT_EQ(Fn.Blocks[0].Instrs[0].Op, MOp::ENTER);
  for (int K = 0; K < 3; ++K) {
    const MInstr &Mov = Fn.Blocks[0].Instrs[static_cast<size_t>(K + 1)];
    EXPECT_EQ(Mov.Op, MOp::MOV);
    EXPECT_EQ(Mov.B, K) << "argument " << K << " arrives in r" << K;
    EXPECT_TRUE(isVirtReg(Mov.A));
  }
}

TEST(ISelTest, CallSequenceStagesArgumentsAndResult) {
  MachineModule MM = selectFor(R"(
    int id(int x) { return x; }
    void main() { __out(15, id(9)); __halt(); }
  )");
  const MachineFunction &Main = MM.Functions[1];
  // Find the CALL and check its neighborhood.
  bool Found = false;
  for (const MBlock &BB : Main.Blocks) {
    for (size_t K = 0; K < BB.Instrs.size(); ++K) {
      if (BB.Instrs[K].Op != MOp::CALL)
        continue;
      Found = true;
      ASSERT_GE(K, 1u);
      EXPECT_EQ(BB.Instrs[K - 1].Op, MOp::MOV);
      EXPECT_EQ(BB.Instrs[K - 1].A, 0) << "argument staged into r0";
      ASSERT_LT(K + 1, BB.Instrs.size());
      EXPECT_EQ(BB.Instrs[K + 1].Op, MOp::MOV);
      EXPECT_EQ(BB.Instrs[K + 1].B, RetReg) << "result copied from r0";
    }
  }
  EXPECT_TRUE(Found);
}

TEST(Encoding, FallthroughJumpsAreElided) {
  // if/else produces jumps to the join block; the arm laid out directly
  // before the join must fall through.
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    void main() {
      int x = __in(4);
      int y = 0;
      if (x > 0) { y = 1; } else { y = 2; }
      __out(15, y);
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors());
  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);

  int JumpsInMachine = 0;
  for (const MBlock &BB : MM.Functions[0].Blocks)
    for (const MInstr &I : BB.Instrs)
      JumpsInMachine += I.Op == MOp::JMP;

  DataLayoutMap DL = layoutGlobalsBaseline(M);
  FrameLayout Frame = layoutFrame(MM.Functions[0]);
  std::vector<uint32_t> Words = encodeFunction(MM.Functions[0], DL, Frame);
  int JumpsEncoded = 0;
  for (uint32_t W : Words)
    JumpsEncoded += EncodedInstr::unpack(W).Op == MOp::JMP;
  EXPECT_LT(JumpsEncoded, JumpsInMachine)
      << "at least one jump must become a fallthrough";
}

TEST(Encoding, BranchTargetsAreFunctionRelative) {
  DiagnosticEngine Diag;
  Module M = compileToIR(R"(
    void pad() { __out(15, 0); }
    void main() {
      int i;
      for (i = 0; i < 3; i = i + 1) { __out(0, i); }
      __halt();
    }
  )",
                         Diag);
  ASSERT_FALSE(Diag.hasErrors());
  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);
  DataLayoutMap DL = layoutGlobalsBaseline(M);
  std::vector<FrameLayout> Frames;
  for (const MachineFunction &MF : MM.Functions)
    Frames.push_back(layoutFrame(MF));
  BinaryImage Img = encodeModule(MM, M, DL, Frames);

  int MainIdx = Img.findFunction("main");
  ASSERT_GE(MainIdx, 0);
  const FunctionSpan &Main = Img.Functions[static_cast<size_t>(MainIdx)];
  for (uint32_t K = 0; K < Main.Count; ++K) {
    EncodedInstr E = EncodedInstr::unpack(Img.Code[Main.Start + K]);
    if (E.Op == MOp::JMP || isCondBranch(E.Op)) {
      EXPECT_LT(E.Imm, Main.Count)
          << "branch target must stay inside the function";
    }
  }
}

TEST(Encoding, IRIndexSidecarAlignsWithWords) {
  DiagnosticEngine Diag;
  Module M = compileToIR("void main() { __out(15, 3); __halt(); }", Diag);
  ASSERT_FALSE(Diag.hasErrors());
  MachineModule MM = selectModule(M);
  for (MachineFunction &MF : MM.Functions)
    allocateLinearScan(MF);
  DataLayoutMap DL = layoutGlobalsBaseline(M);
  std::vector<FrameLayout> Frames = {layoutFrame(MM.Functions[0])};
  std::vector<std::vector<int>> IRIdx;
  BinaryImage Img = encodeModule(MM, M, DL, Frames, &IRIdx);
  ASSERT_EQ(IRIdx.size(), 1u);
  EXPECT_EQ(IRIdx[0].size(), Img.Code.size());
}

TEST(MachineIRTest, FrameObjectNamesAreUniquified) {
  MachineFunction MF;
  int A = MF.makeFrameObject("buf", 4, false);
  int B = MF.makeFrameObject("buf", 2, false);
  int C = MF.makeFrameObject("buf", 1, true);
  EXPECT_EQ(MF.FrameObjects[static_cast<size_t>(A)].Name, "buf");
  EXPECT_EQ(MF.FrameObjects[static_cast<size_t>(B)].Name, "buf.2");
  EXPECT_EQ(MF.FrameObjects[static_cast<size_t>(C)].Name, "buf.3");
}

TEST(MachineIRTest, DefUseRolesPerOpcode) {
  MInstr Add;
  Add.Op = MOp::ADD;
  Add.A = 1;
  Add.B = 2;
  Add.C = 3;
  EXPECT_EQ(minstrDefs(Add), (std::vector<int>{1}));
  EXPECT_EQ(minstrUses(Add), (std::vector<int>{2, 3}));

  MInstr Store;
  Store.Op = MOp::STGX;
  Store.A = 4;
  Store.B = 5;
  Store.GlobalIdx = 0;
  EXPECT_TRUE(minstrDefs(Store).empty());
  EXPECT_EQ(minstrUses(Store), (std::vector<int>{4, 5}));

  MInstr Call;
  Call.Op = MOp::CALL;
  Call.Callee = 0;
  std::vector<int> Defs = minstrDefs(Call);
  EXPECT_EQ(static_cast<int>(Defs.size()), NumPhysRegs)
      << "calls clobber every allocatable register";

  MInstr Ret;
  Ret.Op = MOp::RET;
  EXPECT_EQ(minstrUses(Ret), (std::vector<int>{RetReg}));
}

} // namespace
