//===- tests/DataAllocTest.cpp - data-allocation strategies ---------------===//

#include "dataalloc/DataAlloc.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

RegionVar var(const char *Name, int Size = 1, int Usage = 1) {
  return RegionVar{Name, Size, Usage};
}

TEST(BaselineDA, DeterministicForSameNames) {
  std::vector<RegionVar> Vars = {var("alpha"), var("beta"), var("gamma")};
  RegionLayout A = allocateRegionBaseline(Vars);
  RegionLayout B = allocateRegionBaseline(Vars);
  EXPECT_EQ(A.Offsets, B.Offsets);
  EXPECT_EQ(A.Words, 3);
}

TEST(BaselineDA, RenamingMovesVariables) {
  // Section 5.7: gcc hashes variables by name, so renames relocate data.
  // Any specific rename may happen to keep its bucket; across a handful of
  // plausible renames at least one must move something.
  RegionLayout Before =
      allocateRegionBaseline({var("counter"), var("limit"), var("flags")});
  const char *Renames[] = {"event_count", "evt_counter", "n_events",
                           "tally", "ticks_seen"};
  bool AnyMoved = false;
  for (const char *NewName : Renames) {
    RegionLayout After =
        allocateRegionBaseline({var(NewName), var("limit"), var("flags")});
    AnyMoved |= Before.Offsets.at("limit") != After.Offsets.at("limit") ||
                Before.Offsets.at("flags") != After.Offsets.at("flags") ||
                Before.Offsets.at("counter") != After.Offsets.at(NewName);
  }
  EXPECT_TRUE(AnyMoved);
}

OldRegionLayout oldLayoutOf(const RegionLayout &L,
                            const std::vector<RegionVar> &Vars) {
  OldRegionLayout Old;
  Old.Words = L.Words;
  for (const RegionVar &V : Vars)
    Old.Entries.push_back(
        OldRegionLayout::Entry{V.Name, L.Offsets.at(V.Name), V.SizeWords});
  return Old;
}

TEST(UccDA, SurvivorsKeepTheirOffsets) {
  std::vector<RegionVar> OldVars = {var("a"), var("b", 4), var("c")};
  RegionLayout OldL = allocateRegionBaseline(OldVars);

  RegionSpec Spec;
  Spec.Vars = {var("c"), var("a"), var("b", 4), var("fresh")};
  Spec.Old = oldLayoutOf(OldL, OldVars);
  auto Layouts = allocateRegionsUpdateConscious({Spec}, UccDaOptions());

  EXPECT_EQ(Layouts[0].Offsets.at("a"), OldL.Offsets.at("a"));
  EXPECT_EQ(Layouts[0].Offsets.at("b"), OldL.Offsets.at("b"));
  EXPECT_EQ(Layouts[0].Offsets.at("c"), OldL.Offsets.at("c"));
}

TEST(UccDA, NewVariableFillsTheHole) {
  // Old layout: a@0, b@1, c@2. Delete a, add d: d must take offset 0.
  OldRegionLayout Old;
  Old.Words = 3;
  Old.Entries = {{"a", 0, 1}, {"b", 1, 1}, {"c", 2, 1}};

  RegionSpec Spec;
  Spec.Vars = {var("b"), var("c"), var("d")};
  Spec.Old = Old;
  auto Layouts = allocateRegionsUpdateConscious({Spec}, UccDaOptions());
  EXPECT_EQ(Layouts[0].Offsets.at("d"), 0);
  EXPECT_EQ(Layouts[0].Offsets.at("b"), 1);
  EXPECT_EQ(Layouts[0].Offsets.at("c"), 2);
  EXPECT_EQ(Layouts[0].Words, 3);
  EXPECT_EQ(Layouts[0].HoleWords, 0);
}

TEST(UccDA, RenameIsDeletePlusInsertIntoSameSlot) {
  // Section 5.7's closing observation.
  OldRegionLayout Old;
  Old.Words = 2;
  Old.Entries = {{"counter", 0, 1}, {"limit", 1, 1}};

  RegionSpec Spec;
  Spec.Vars = {var("event_count"), var("limit")};
  Spec.Old = Old;
  auto Layouts = allocateRegionsUpdateConscious({Spec}, UccDaOptions());
  EXPECT_EQ(Layouts[0].Offsets.at("event_count"), 0);
  EXPECT_EQ(Layouts[0].Offsets.at("limit"), 1);
}

TEST(UccDA, OversizedVariableCannotReuseSmallHole) {
  OldRegionLayout Old;
  Old.Words = 3;
  Old.Entries = {{"a", 0, 1}, {"b", 1, 2}};

  RegionSpec Spec;
  Spec.Vars = {var("b", 2), var("wide", 3)}; // 'a' deleted: 1-word hole
  Spec.Old = Old;
  auto Layouts = allocateRegionsUpdateConscious({Spec}, UccDaOptions());
  EXPECT_EQ(Layouts[0].Offsets.at("b"), 1);
  EXPECT_GE(Layouts[0].Offsets.at("wide"), 3); // appended, hole too small
}

TEST(UccDA, ThresholdZeroReclaimsByRelocatingLastVariable) {
  // Deleting more than we add leaves Extra words; with SpaceT = 0 the
  // allocator must relocate the last variable into the hole (eq. 16).
  OldRegionLayout Old;
  Old.Words = 4;
  Old.Entries = {{"a", 0, 1}, {"b", 1, 1}, {"c", 2, 1}, {"d", 3, 1}};

  RegionSpec Spec;
  Spec.Vars = {var("b"), var("d")}; // a and c deleted
  Spec.Old = Old;
  UccDaOptions Tight;
  Tight.SpaceT = 0;
  auto Layouts = allocateRegionsUpdateConscious({Spec}, Tight);
  EXPECT_EQ(Layouts[0].HoleWords, 0);
  EXPECT_EQ(Layouts[0].Words, 2);
  EXPECT_EQ(Layouts[0].RelocatedVars, 1);
  EXPECT_EQ(Layouts[0].Offsets.at("d"), 0); // moved into a's hole
  EXPECT_EQ(Layouts[0].Offsets.at("b"), 1);
}

TEST(UccDA, GenerousThresholdAvoidsRelocation) {
  OldRegionLayout Old;
  Old.Words = 4;
  Old.Entries = {{"a", 0, 1}, {"b", 1, 1}, {"c", 2, 1}, {"d", 3, 1}};

  RegionSpec Spec;
  Spec.Vars = {var("b"), var("d")};
  Spec.Old = Old;
  UccDaOptions Loose;
  Loose.SpaceT = 10;
  auto Layouts = allocateRegionsUpdateConscious({Spec}, Loose);
  EXPECT_EQ(Layouts[0].RelocatedVars, 0);
  EXPECT_EQ(Layouts[0].Offsets.at("d"), 3); // untouched
}

TEST(UccDA, Equation17PicksHighestDepthPerUsage) {
  // Two regions with holes; only one relocation is needed to satisfy
  // SpaceT. Region 1 has Depth 8 and a rarely-used last variable: eq. 17
  // says reclaim there first.
  OldRegionLayout OldA;
  OldA.Words = 3;
  OldA.Entries = {{"a1", 0, 1}, {"a2", 1, 1}, {"a3", 2, 1}};
  OldRegionLayout OldB = OldA;
  OldB.Entries = {{"b1", 0, 1}, {"b2", 1, 1}, {"b3", 2, 1}};

  RegionSpec RegionA;
  RegionA.Vars = {var("a2", 1, /*Usage=*/50), var("a3", 1, /*Usage=*/50)};
  RegionA.Old = OldA;
  RegionA.Depth = 1;

  RegionSpec RegionB;
  RegionB.Vars = {var("b2", 1, /*Usage=*/2), var("b3", 1, /*Usage=*/2)};
  RegionB.Old = OldB;
  RegionB.Depth = 8;

  UccDaOptions Opts;
  // Initial waste is 1 (region A, Depth 1) + 8 (region B, Depth 8) = 9.
  // With SpaceT = 8 exactly one relocation is needed, and eq. 17 says it
  // happens in region B (Depth/Usage = 4 beats 0.02).
  Opts.SpaceT = 8;
  auto Layouts =
      allocateRegionsUpdateConscious({RegionA, RegionB}, Opts);
  EXPECT_EQ(Layouts[1].RelocatedVars, 1)
      << "the deep, rarely-used region reclaims first (eq. 17)";
  EXPECT_EQ(Layouts[0].RelocatedVars, 0);
}

TEST(UccDA, InitialCompilationPacksSequentially) {
  RegionSpec Spec;
  Spec.Vars = {var("x"), var("y", 2), var("z")};
  auto Layouts = allocateRegionsUpdateConscious({Spec}, UccDaOptions());
  EXPECT_EQ(Layouts[0].Offsets.at("x"), 0);
  EXPECT_EQ(Layouts[0].Offsets.at("y"), 1);
  EXPECT_EQ(Layouts[0].Offsets.at("z"), 3);
  EXPECT_EQ(Layouts[0].Words, 4);
}

} // namespace
