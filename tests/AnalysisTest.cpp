//===- tests/AnalysisTest.cpp - dataflow and IR analyses ------------------===//

#include "analysis/Dataflow.h"
#include "analysis/IRAnalysis.h"
#include "frontend/IRGen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace ucc;

namespace {

TEST(Liveness, StraightLineChain) {
  // v0 defined at 0, used at 2; v1 defined at 1, used at 1? Build:
  //   i0: def v0
  //   i1: def v1 (uses v0)
  //   i2: use v1
  FlowGraph G;
  G.NumValues = 2;
  FlowBlock B;
  B.Instrs = {DefUse{{0}, {}}, DefUse{{1}, {0}}, DefUse{{}, {1}}};
  G.Blocks.push_back(B);

  Liveness L = computeLiveness(G);
  EXPECT_FALSE(L.LiveIn[0].test(0)) << "v0 is defined, not live-in";
  EXPECT_FALSE(L.LiveOut[0].any());

  auto After = L.liveAfterPerInstr(G, 0);
  EXPECT_TRUE(After[0].test(0));  // v0 live until i1
  EXPECT_FALSE(After[1].test(0)); // dead after last use
  EXPECT_TRUE(After[1].test(1));
  EXPECT_FALSE(After[2].test(1));
}

TEST(Liveness, LoopCarriesValuesAround) {
  // Block 0: def v0 -> block 1. Block 1: use v0, branch to 1 or 2.
  // v0 must be live throughout block 1 (used on the next iteration too).
  FlowGraph G;
  G.NumValues = 1;
  FlowBlock B0;
  B0.Instrs = {DefUse{{0}, {}}};
  B0.Succs = {1};
  FlowBlock B1;
  B1.Instrs = {DefUse{{}, {0}}};
  B1.Succs = {1, 2};
  FlowBlock B2;
  B2.Instrs = {DefUse{{}, {}}};
  G.Blocks = {B0, B1, B2};

  Liveness L = computeLiveness(G);
  EXPECT_TRUE(L.LiveIn[1].test(0));
  EXPECT_TRUE(L.LiveOut[1].test(0)) << "live around the back edge";
  EXPECT_FALSE(L.LiveIn[2].test(0));
}

TEST(Liveness, BranchMergeUnionsUses) {
  // v0 used only on one arm: still live-out of the entry block.
  FlowGraph G;
  G.NumValues = 1;
  FlowBlock Entry;
  Entry.Instrs = {DefUse{{0}, {}}};
  Entry.Succs = {1, 2};
  FlowBlock Left;
  Left.Instrs = {DefUse{{}, {0}}};
  Left.Succs = {3};
  FlowBlock Right;
  Right.Instrs = {DefUse{{}, {}}};
  Right.Succs = {3};
  FlowBlock Join;
  Join.Instrs = {DefUse{{}, {}}};
  G.Blocks = {Entry, Left, Right, Join};

  Liveness L = computeLiveness(G);
  EXPECT_TRUE(L.LiveOut[0].test(0));
  EXPECT_TRUE(L.LiveIn[1].test(0));
  EXPECT_FALSE(L.LiveIn[2].test(0));
}

Module irFor(const char *Source) {
  DiagnosticEngine Diag;
  Module M = compileToIR(Source, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  return M;
}

TEST(LoopDepth, NestedLoopsStack) {
  Module M = irFor(R"(
    void main() {
      int i;
      int j;
      for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) {
          __out(15, i + j);
        }
      }
      __halt();
    }
  )");
  std::vector<int> Depth = loopDepths(M.Functions[0]);
  int MaxDepth = 0;
  for (int D : Depth)
    MaxDepth = std::max(MaxDepth, D);
  EXPECT_EQ(MaxDepth, 2);
  EXPECT_EQ(Depth[0], 0) << "entry block is outside every loop";
}

TEST(LoopDepth, FrequenciesFollowDepth) {
  Module M = irFor(R"(
    void main() {
      int i;
      for (i = 0; i < 5; i = i + 1) {
        __out(15, i);
      }
      __halt();
    }
  )");
  const Function &F = M.Functions[0];
  std::vector<double> BlockFreq = blockFrequencies(F);
  std::vector<int> Depth = loopDepths(F);
  for (size_t B = 0; B < Depth.size(); ++B)
    EXPECT_DOUBLE_EQ(BlockFreq[B], std::pow(10.0, Depth[B]));

  std::vector<double> StmtFreq = statementFrequencies(F);
  EXPECT_EQ(static_cast<int>(StmtFreq.size()), F.instrCount());
}

TEST(LoopDepth, FrequencyCapApplies) {
  Module M = irFor(R"(
    void main() {
      int a; int b; int c; int d; int e; int f; int g;
      for (a = 0; a < 2; a = a + 1) {
       for (b = 0; b < 2; b = b + 1) {
        for (c = 0; c < 2; c = c + 1) {
         for (d = 0; d < 2; d = d + 1) {
          for (e = 0; e < 2; e = e + 1) {
           for (f = 0; f < 2; f = f + 1) {
            for (g = 0; g < 2; g = g + 1) {
              __out(15, 1);
            }
           }
          }
         }
        }
       }
      }
      __halt();
    }
  )");
  std::vector<double> Freq = blockFrequencies(M.Functions[0], 1e6);
  for (double W : Freq)
    EXPECT_LE(W, 1e6);
}

TEST(IRDefUse, ExtractionMatchesOpcodes) {
  Instr I;
  I.Op = Opcode::Bin;
  I.Dst = 5;
  I.Srcs = {1, 2};
  EXPECT_EQ(irDefs(I), (std::vector<int>{5}));
  EXPECT_EQ(irUses(I), (std::vector<int>{1, 2}));

  Instr Store;
  Store.Op = Opcode::StoreG;
  Store.Global = 0;
  Store.Srcs = {3, 4};
  EXPECT_TRUE(irDefs(Store).empty());
  EXPECT_EQ(irUses(Store), (std::vector<int>{3, 4}));
}

} // namespace
