//===- tests/ReportToolTest.cpp - the ucc-report CLI end to end -----------===//
//
// Shells out to the real `ucc-report` binary (path injected by CMake) and
// exercises the aggregation/regression pipeline on disk: ingest synthetic
// bench reports, aggregate to BENCH.json, seed a baseline, then inject a
// regression and assert the non-zero exit plus the markdown diff. One test
// also runs a real bench binary (`bench_fig03_power_model --report-json`)
// to pin the producer side of the contract.
//
//===----------------------------------------------------------------------===//

#include "TestJson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

namespace {

#ifndef UCC_REPORT_PATH
#define UCC_REPORT_PATH "ucc-report"
#endif
#ifndef UCC_BENCH_FIG03_PATH
#define UCC_BENCH_FIG03_PATH "bench_fig03_power_model"
#endif

class ReportFixture : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/ucc-report-test-XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
  }

  void TearDown() override { std::system(("rm -rf " + Dir).c_str()); }

  std::string path(const std::string &Name) const {
    return Dir + "/" + Name;
  }

  void writeFile(const std::string &Name, const std::string &Text) const {
    std::ofstream Out(path(Name));
    Out << Text;
  }

  std::string readFile(const std::string &Name) const {
    std::ifstream In(path(Name), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  /// Runs `ucc-report <ArgsLine>`; output goes to a capture file.
  int uccReport(const std::string &ArgsLine) const {
    std::string Cmd = std::string(UCC_REPORT_PATH) + " " + ArgsLine +
                      " > " + path("out.txt") + " 2> " + path("err.txt");
    int Status = std::system(Cmd.c_str());
    return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }

  /// Two synthetic bench report documents (the producer schema of
  /// docs/OBSERVABILITY.md) standing in for real bench runs.
  void writeSyntheticReports(double DiffInstUcc = 79.0) const {
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"schema_version\":1,\"bench\":\"fig10_dissemination\","
        "\"profile\":\"full\",\"metrics\":{"
        "\"diff_inst_gcc_total\":183,\"diff_inst_ucc_total\":%g,"
        "\"total_solve_seconds\":0.25}}\n",
        DiffInstUcc);
    writeFile("fig10.json", Buf);
    writeFile("fig15.json",
              "{\"schema_version\":1,\"bench\":\"fig15_solve_time\","
              "\"profile\":\"full\",\"metrics\":{"
              "\"pivots_total\":1200}}\n");
  }

  std::string Dir;
};

TEST_F(ReportFixture, AggregatesReportsIntoBenchJson) {
  writeSyntheticReports();
  ASSERT_EQ(uccReport(path("fig10.json") + " " + path("fig15.json") +
                      " --out " + path("BENCH.json")),
            0)
      << readFile("err.txt");
  auto Doc = testjson::parse(readFile("BENCH.json"));
  ASSERT_TRUE(Doc.has_value()) << readFile("BENCH.json");
  EXPECT_EQ(Doc->get("schema_version")->Num, 1.0);
  EXPECT_EQ(Doc->get("tool")->Str, "ucc-report");
  EXPECT_EQ(Doc->get("profile")->Str, "full");
  const testjson::Value *Benches = Doc->get("benches");
  ASSERT_NE(Benches, nullptr);
  const testjson::Value *Fig10 = Benches->get("fig10_dissemination");
  ASSERT_NE(Fig10, nullptr);
  EXPECT_EQ(Fig10->get("metrics")->get("diff_inst_ucc_total")->Num, 79.0);
  ASSERT_NE(Benches->get("fig15_solve_time"), nullptr);
}

TEST_F(ReportFixture, RoundTripThroughBaselinePasses) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0)
      << readFile("err.txt");
  // The same run against the freshly seeded baseline must pass.
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --report " + path("report.md")),
            0)
      << readFile("err.txt");
  std::string Md = readFile("report.md");
  EXPECT_NE(Md.find("Verdict: PASS"), std::string::npos) << Md;
  EXPECT_NE(Md.find("fig10_dissemination"), std::string::npos);
}

TEST_F(ReportFixture, InjectedRegressionFailsWithMarkdownDiff) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0);
  // Regress one metric by ~27% — far beyond the default tolerance.
  writeSyntheticReports(/*DiffInstUcc=*/100.0);
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --report " + path("report.md")),
            1)
      << readFile("err.txt");
  std::string Md = readFile("report.md");
  EXPECT_NE(Md.find("REGRESSED"), std::string::npos) << Md;
  EXPECT_NE(Md.find("Verdict: FAIL"), std::string::npos);
  // The diff row names the metric with both values.
  EXPECT_NE(Md.find("diff_inst_ucc_total"), std::string::npos);
  EXPECT_NE(Md.find("| 79 | 100 |"), std::string::npos) << Md;
  // The untouched metric still passes.
  EXPECT_NE(Md.find("| diff_inst_gcc_total | 183 | 183 |"),
            std::string::npos)
      << Md;
}

TEST_F(ReportFixture, TopMoversDigestRanksByPercentDelta) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0);
  // Move two metrics by different magnitudes: the digest must lead with
  // the larger mover and print signed percent deltas.
  writeFile("fig10.json",
            "{\"schema_version\":1,\"bench\":\"fig10_dissemination\","
            "\"profile\":\"full\",\"metrics\":{"
            "\"diff_inst_gcc_total\":183,\"diff_inst_ucc_total\":100,"
            "\"total_solve_seconds\":0.25}}\n");
  writeFile("fig15.json",
            "{\"schema_version\":1,\"bench\":\"fig15_solve_time\","
            "\"profile\":\"full\",\"metrics\":{"
            "\"pivots_total\":1230}}\n");
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --report " + path("report.md")),
            1);
  std::string Md = readFile("report.md");
  size_t Begin = Md.find("## Top movers");
  ASSERT_NE(Begin, std::string::npos) << Md;
  size_t End = Md.find("\n## ", Begin);
  std::string Section = End == std::string::npos
                            ? Md.substr(Begin)
                            : Md.substr(Begin, End - Begin);
  // 79 -> 100 is +26.6%; 1200 -> 1230 is +2.5%. Rank order and signs.
  size_t Big = Section.find("+26.6%");
  size_t Small = Section.find("+2.5%");
  ASSERT_NE(Big, std::string::npos) << Section;
  ASSERT_NE(Small, std::string::npos) << Section;
  EXPECT_LT(Big, Small) << "largest |delta| first";
  // Unchanged metrics stay out of the digest.
  EXPECT_EQ(Section.find("diff_inst_gcc_total"), std::string::npos)
      << Section;
}

TEST_F(ReportFixture, WallClockMetricsAreNeverCompared) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0);
  // A wildly different *_seconds value must not trip the gate.
  writeFile("fig10.json",
            "{\"schema_version\":1,\"bench\":\"fig10_dissemination\","
            "\"profile\":\"full\",\"metrics\":{"
            "\"diff_inst_gcc_total\":183,\"diff_inst_ucc_total\":79,"
            "\"total_solve_seconds\":99.0}}\n");
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --report " + path("report.md")),
            0)
      << readFile("err.txt");
  EXPECT_NE(readFile("report.md").find("skipped (wall clock)"),
            std::string::npos);
}

TEST_F(ReportFixture, VanishedMetricIsARegression) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0);
  writeFile("fig15.json",
            "{\"schema_version\":1,\"bench\":\"fig15_solve_time\","
            "\"profile\":\"full\",\"metrics\":{}}\n");
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --report " + path("report.md")),
            1);
  EXPECT_NE(readFile("report.md").find("MISSING"), std::string::npos);
}

TEST_F(ReportFixture, PerMetricToleranceOverridesApply) {
  writeSyntheticReports();
  std::string Reports = path("fig10.json") + " " + path("fig15.json");
  ASSERT_EQ(uccReport(Reports + " --baseline " + path("baseline.json") +
                      " --update-baseline"),
            0);
  // Widen the tolerance for the metric we are about to move: with a 50%
  // band the 27% change must pass.
  std::string Baseline = readFile("baseline.json");
  size_t At = Baseline.find("\"metrics\": {}");
  ASSERT_NE(At, std::string::npos) << Baseline;
  Baseline.replace(At, std::strlen("\"metrics\": {}"),
                   "\"metrics\": {\"fig10_dissemination.diff_inst_ucc_"
                   "total\": {\"pct\": 50}}");
  writeFile("baseline.json", Baseline);
  writeSyntheticReports(/*DiffInstUcc=*/100.0);
  EXPECT_EQ(uccReport(Reports + " --baseline " + path("baseline.json")),
            0)
      << readFile("err.txt");
}

TEST_F(ReportFixture, MalformedReportIsAUsageError) {
  writeFile("bad.json", "{\"schema_version\":1}");
  EXPECT_EQ(uccReport(path("bad.json") + " --out " + path("BENCH.json")),
            2);
}

TEST_F(ReportFixture, RealBenchBinaryProducesIngestibleReport) {
  // The producer half of the contract: a real bench run writes a report
  // the aggregator accepts, and the aggregate carries its metrics.
  std::string Cmd = std::string(UCC_BENCH_FIG03_PATH) + " --report-json " +
                    path("fig03.json") + " > /dev/null 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(Cmd.c_str())), 0);
  ASSERT_EQ(uccReport(path("fig03.json") + " --out " + path("BENCH.json")),
            0)
      << readFile("err.txt");
  auto Doc = testjson::parse(readFile("BENCH.json"));
  ASSERT_TRUE(Doc.has_value());
  const testjson::Value *Fig03 =
      Doc->get("benches")->get("fig03_power_model");
  ASSERT_NE(Fig03, nullptr);
  // The Mica2 constant the whole energy model hangs off.
  EXPECT_NEAR(Fig03->get("metrics")->get("energy_per_cycle_j")->Num,
              8.0e-3 * 3.0 / 7.3728e6, 1e-15);
}

} // namespace
