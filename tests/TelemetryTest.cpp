//===- tests/TelemetryTest.cpp - the telemetry registry and its JSON ------===//
//
// Pins the behavior docs/OBSERVABILITY.md documents: counter/gauge
// accounting, span nesting and accumulation, the ambient-scope no-op mode,
// and the serialized schema (version/counters/gauges/spans).
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "TestJson.h"

#include <gtest/gtest.h>

using namespace ucc;

namespace {

TEST(Telemetry, CountersAndGauges) {
  Telemetry T;
  EXPECT_EQ(T.counter("lp.pivots"), 0); // absent reads as zero

  T.addCounter("lp.pivots", 3);
  T.addCounter("lp.pivots");
  EXPECT_EQ(T.counter("lp.pivots"), 4);

  T.setGauge("ra.seconds.main", 1.5);
  T.setGauge("ra.seconds.main", 2.5); // last write wins
  EXPECT_DOUBLE_EQ(T.gauge("ra.seconds.main"), 2.5);

  T.addGauge("lp.lp_seconds", 1.0);
  T.addGauge("lp.lp_seconds", 0.25); // accumulates
  EXPECT_DOUBLE_EQ(T.gauge("lp.lp_seconds"), 1.25);

  T.clear();
  EXPECT_EQ(T.counter("lp.pivots"), 0);
  EXPECT_DOUBLE_EQ(T.gauge("lp.lp_seconds"), 0.0);
}

TEST(Telemetry, DeclaredCountersAppearAtZero) {
  Telemetry T;
  T.declareStandardCounters();
  // Declaration creates the keys without disturbing existing values.
  EXPECT_NE(T.counters().find("lp.bb_nodes"), T.counters().end());
  EXPECT_EQ(T.counter("lp.bb_nodes"), 0);

  T.addCounter("lp.bb_nodes", 7);
  T.declareCounter("lp.bb_nodes"); // re-declaration must not reset
  EXPECT_EQ(T.counter("lp.bb_nodes"), 7);
}

TEST(Telemetry, SpansNestByCallStructureAndAccumulate) {
  Telemetry T;
  T.beginSpan("compile");
  T.beginSpan("ra");
  T.endSpan();
  T.beginSpan("ra"); // re-entry under the same parent: same node
  T.endSpan();
  T.beginSpan("da");
  T.endSpan();
  T.endSpan();

  const TelemetrySpan &Root = T.spans();
  ASSERT_EQ(Root.Children.size(), 1u);
  const TelemetrySpan *Compile = Root.find("compile");
  ASSERT_NE(Compile, nullptr);
  EXPECT_EQ(Compile->Count, 1);
  ASSERT_EQ(Compile->Children.size(), 2u);

  const TelemetrySpan *Ra = Compile->find("ra");
  ASSERT_NE(Ra, nullptr);
  EXPECT_EQ(Ra->Count, 2); // accumulated, not duplicated
  EXPECT_GE(Ra->Seconds, 0.0);
  const TelemetrySpan *Da = Compile->find("da");
  ASSERT_NE(Da, nullptr);
  EXPECT_EQ(Da->Count, 1);
}

TEST(Telemetry, ScopeInstallsAndRestoresTheAmbientRegistry) {
  EXPECT_EQ(currentTelemetry(), nullptr);
  {
    Telemetry Outer;
    TelemetryScope OuterScope(Outer);
    EXPECT_EQ(currentTelemetry(), &Outer);
    {
      Telemetry Inner;
      TelemetryScope InnerScope(Inner);
      EXPECT_EQ(currentTelemetry(), &Inner);
      telemetryCount("x");
      EXPECT_EQ(Inner.counter("x"), 1);
      EXPECT_EQ(Outer.counter("x"), 0);
    }
    EXPECT_EQ(currentTelemetry(), &Outer); // scopes nest and restore
  }
  EXPECT_EQ(currentTelemetry(), nullptr);
}

TEST(Telemetry, HelpersAreNoOpsWithoutAScope) {
  ASSERT_EQ(currentTelemetry(), nullptr);
  // None of these may crash or observably do anything.
  telemetryCount("lp.pivots", 10);
  telemetryGauge("g", 1.0);
  telemetryGaugeAdd("g", 1.0);
  telemetryBeginSpan("phase");
  telemetryEndSpan();
  { ScopedSpan Span("phase"); }

  // A registry installed *afterwards* must not see any of it.
  Telemetry T;
  TelemetryScope Scope(T);
  EXPECT_EQ(T.counter("lp.pivots"), 0);
  EXPECT_TRUE(T.spans().Children.empty());
}

TEST(Telemetry, ScopedSpanBindsTheRegistryAtConstruction) {
  Telemetry T;
  TelemetryScope Scope(T);
  {
    ScopedSpan Span("outer");
    { ScopedSpan Nested("inner"); }
  }
  const TelemetrySpan *Outer = T.spans().find("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_NE(Outer->find("inner"), nullptr);
}

TEST(Telemetry, JsonRoundTrip) {
  Telemetry T;
  T.addCounter("diff.script_bytes", 23);
  T.addCounter("lp.pivots", 143);
  T.setGauge("lp.ilp_seconds", 0.25);
  T.beginSpan("recompile");
  T.beginSpan("ra");
  T.endSpan();
  T.endSpan();
  T.beginSpan("diff");
  T.endSpan();

  auto Doc = testjson::parse(T.toJson());
  ASSERT_TRUE(Doc.has_value()) << T.toJson();

  const testjson::Value *Version = Doc->get("version");
  ASSERT_NE(Version, nullptr);
  EXPECT_EQ(Version->Num, 1.0);

  const testjson::Value *Counters = Doc->get("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->get("diff.script_bytes"), nullptr);
  EXPECT_EQ(Counters->get("diff.script_bytes")->Num, 23.0);
  EXPECT_EQ(Counters->get("lp.pivots")->Num, 143.0);

  const testjson::Value *Gauges = Doc->get("gauges");
  ASSERT_NE(Gauges, nullptr);
  ASSERT_NE(Gauges->get("lp.ilp_seconds"), nullptr);
  EXPECT_DOUBLE_EQ(Gauges->get("lp.ilp_seconds")->Num, 0.25);

  const testjson::Value *Spans = Doc->get("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->K, testjson::Value::Array);
  ASSERT_EQ(Spans->Arr.size(), 2u); // recompile, diff — in entry order
  const testjson::Value &Recompile = *Spans->Arr[0];
  EXPECT_EQ(Recompile.get("name")->Str, "recompile");
  EXPECT_EQ(Recompile.get("count")->Num, 1.0);
  EXPECT_GE(Recompile.get("seconds")->Num, 0.0);
  ASSERT_EQ(Recompile.get("children")->Arr.size(), 1u);
  EXPECT_EQ(Recompile.get("children")->Arr[0]->get("name")->Str, "ra");
  EXPECT_EQ(Spans->Arr[1]->get("name")->Str, "diff");
}

TEST(Telemetry, SpanDurationDistribution) {
  Telemetry T;
  // Five entries of one span name under the root.
  for (int K = 0; K < 5; ++K) {
    T.beginSpan("ra");
    T.endSpan();
  }
  const TelemetrySpan *Ra = T.spans().find("ra");
  ASSERT_NE(Ra, nullptr);
  EXPECT_EQ(Ra->Count, 5);
  EXPECT_EQ(Ra->Dist.Count, 5u);
  EXPECT_GE(Ra->MinSeconds, 0.0);
  EXPECT_GE(Ra->MaxSeconds, Ra->MinSeconds);
  double P50 = Ra->quantileSeconds(0.5);
  double P95 = Ra->quantileSeconds(0.95);
  EXPECT_GE(P50, Ra->MinSeconds);
  EXPECT_GE(P95, P50);
  EXPECT_LE(P95, Ra->MaxSeconds);
}

TEST(Telemetry, SpanDistributionSerializedInJson) {
  Telemetry T;
  T.beginSpan("diff");
  T.endSpan();
  auto Doc = testjson::parse(T.toJson());
  ASSERT_TRUE(Doc.has_value()) << T.toJson();
  const testjson::Value *Spans = Doc->get("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->Arr.size(), 1u);
  const testjson::Value *Dist = Spans->Arr[0]->get("dist");
  ASSERT_NE(Dist, nullptr) << "span JSON should carry the duration "
                              "distribution";
  for (const char *Key : {"min", "p50", "p95", "max"})
    ASSERT_NE(Dist->get(Key), nullptr) << Key;
  EXPECT_LE(Dist->get("min")->Num, Dist->get("max")->Num);
}

TEST(Telemetry, DurationStorageStaysBounded) {
  Telemetry T;
  const int Entries = 5000;
  for (int K = 0; K < Entries; ++K) {
    T.beginSpan("hot");
    T.endSpan();
  }
  const TelemetrySpan *Hot = T.spans().find("hot");
  ASSERT_NE(Hot, nullptr);
  // Every entry is counted, but storage is log-bucketed: the bucket list
  // can never exceed the fixed bucket universe, and in practice a tight
  // loop of near-identical durations lands in a handful of buckets.
  EXPECT_EQ(Hot->Dist.Count, static_cast<uint64_t>(Entries));
  EXPECT_EQ(Hot->Count, static_cast<int64_t>(Entries));
  EXPECT_LE(Hot->Dist.Buckets.size(),
            static_cast<size_t>(DurationDist::NumBuckets));
  EXPECT_LT(Hot->Dist.Buckets.size(), static_cast<size_t>(Entries));
  // Quantiles stay clamped inside the exact [min, max] envelope.
  double P50 = Hot->quantileSeconds(0.5);
  double P99 = Hot->quantileSeconds(0.99);
  EXPECT_GE(P50, Hot->MinSeconds);
  EXPECT_LE(P99, Hot->MaxSeconds);
  EXPECT_LE(P50, P99);
}

TEST(Telemetry, DurationDistBucketsRoundTrip) {
  // bucketFor/valueFor agree within the ~3% sub-bucket resolution across
  // many orders of magnitude.
  for (double S : {1e-9, 3.7e-6, 1e-3, 0.25, 1.0, 17.5, 3600.0}) {
    uint16_t B = DurationDist::bucketFor(S);
    double Mid = DurationDist::valueFor(B);
    EXPECT_NEAR(Mid, S, S * 0.05) << "seconds=" << S;
  }

  DurationDist D;
  for (int K = 0; K < 90; ++K)
    D.record(0.001);
  for (int K = 0; K < 10; ++K)
    D.record(1.0);
  // 90% of the mass is at ~1ms; the p50 must sit there and the p99 must
  // reach the 1s outliers.
  EXPECT_NEAR(D.quantileSeconds(0.5), 0.001, 0.001 * 0.05);
  EXPECT_NEAR(D.quantileSeconds(0.99), 1.0, 1.0 * 0.05);

  DurationDist Other;
  for (int K = 0; K < 100; ++K)
    Other.record(1.0);
  D.merge(Other);
  EXPECT_EQ(D.Count, 200u);
  // After the merge, more than half the mass is at 1s.
  EXPECT_NEAR(D.quantileSeconds(0.5), 1.0, 1.0 * 0.05);
}

TEST(Telemetry, JsonEscapesAwkwardNames) {
  Telemetry T;
  T.addCounter("weird\"name\\with\nstuff", 1);
  auto Doc = testjson::parse(T.toJson());
  ASSERT_TRUE(Doc.has_value()) << T.toJson();
  const testjson::Value *Counters = Doc->get("counters");
  ASSERT_NE(Counters, nullptr);
  EXPECT_NE(Counters->get("weird\"name\\with\nstuff"), nullptr);
}

} // namespace
