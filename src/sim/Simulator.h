//===- sim/Simulator.h - instruction-level SAVR simulator -----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction-level simulator for SAVR binary images with cycle counting —
/// the reproduction's stand-in for Avrora (section 5.1). It supplies the
/// paper's `Diff_cycle` metric (execution-cycle delta across an update,
/// section 5.4), per-instruction execution profiles, and the semantic
/// ground truth for verifying that a patched image behaves identically to a
/// freshly compiled one.
///
/// I/O model: writes to PortLed / PortDebug are traced; the radio is a
/// staging buffer (write words to PortRadioData, then write the word count
/// to PortRadioSend to emit a packet); reads from PortTimer return an
/// incrementing tick; reads from PortSensor return scripted samples.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SIM_SIMULATOR_H
#define UCC_SIM_SIMULATOR_H

#include "codegen/BinaryImage.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// Everything observable about one program run.
struct RunResult {
  bool Halted = false;   ///< reached HALT (or main returned)
  bool Trapped = false;  ///< violated the machine contract
  std::string TrapReason;
  uint64_t Steps = 0;
  uint64_t Cycles = 0;

  std::vector<int16_t> LedTrace;             ///< every PortLed write
  std::vector<std::vector<int16_t>> Packets; ///< radio packets sent
  std::vector<int16_t> DebugTrace;           ///< every PortDebug write

  /// Execution count per absolute instruction index (profile).
  std::vector<uint64_t> InstrCounts;

  /// True when two runs are observationally identical (used to validate
  /// that patched binaries behave like freshly compiled ones).
  bool sameObservableBehavior(const RunResult &RHS) const {
    return Halted == RHS.Halted && Trapped == RHS.Trapped &&
           LedTrace == RHS.LedTrace && Packets == RHS.Packets &&
           DebugTrace == RHS.DebugTrace;
  }
};

/// Simulator configuration.
struct SimOptions {
  uint64_t MaxSteps = 10 * 1000 * 1000;
  std::vector<int16_t> SensorInput; ///< PortSensor samples (0 when exhausted)
  bool CollectProfile = false;

  /// Identity of the simulated mote on the event trace: packet and
  /// energy-sample events land on track \p NodeId (docs/OBSERVABILITY.md).
  /// Only consulted when the ambient telemetry registry has events
  /// enabled.
  int NodeId = 0;
  /// Cycle period of the sampled per-node energy timeline (a cumulative
  /// `energy/node<N>` counter event every this many cycles, plus one
  /// final sample when the run ends).
  uint64_t EnergySampleCycles = 50'000;
};

/// Runs \p Img from its entry function until HALT, trap, or step budget.
RunResult runImage(const BinaryImage &Img, const SimOptions &Opts = {});

} // namespace ucc

#endif // UCC_SIM_SIMULATOR_H
