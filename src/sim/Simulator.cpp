//===- sim/Simulator.cpp - instruction-level SAVR simulator ---------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SAVR interpreter: fetch/decode/execute with cycle accounting, the
/// traced I/O ports (LED, debug, radio staging, timer, sensor) and the
/// optional per-instruction execution profile. Each run executes under the
/// `sim` telemetry span and reports step/cycle/radio totals (`sim.*`).
/// With trace events enabled, every radio send becomes a `packet.tx`
/// instant event and the run emits a sampled cumulative-energy timeline
/// (`energy/node<N>` counter events) on the node's track.
///
//===----------------------------------------------------------------------===//

#include "sim/Simulator.h"

#include "energy/EnergyModel.h"
#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <array>

using namespace ucc;

namespace {

struct CallFrame {
  uint32_t ReturnPC;
  int ReturnFn;
  size_t SavedFP;
};

class SimImpl {
public:
  SimImpl(const BinaryImage &Img, const SimOptions &Opts)
      : Img(Img), Opts(Opts) {}

  RunResult run() {
    if (Opts.CollectProfile)
      R.InstrCounts.assign(Img.Code.size(), 0);
    Data.assign(Img.DataInit.begin(), Img.DataInit.end());
    Regs.fill(0);

    // Event tracing is resolved once per run: without an event-enabled
    // registry the per-step cost is one null check on Tel.
    Tel = eventTelemetry();
    if (Tel && Opts.EnergySampleCycles > 0)
      NextEnergySample = Opts.EnergySampleCycles;

    if (Img.EntryFunc < 0 ||
        Img.EntryFunc >= static_cast<int>(Img.Functions.size()))
      return trap("image has no entry function");
    CurFn = Img.EntryFunc;
    PC = Img.Functions[static_cast<size_t>(CurFn)].Start;

    while (R.Steps < Opts.MaxSteps) {
      if (!pcInCurrentFunction())
        return trap(format("pc %u fell out of function '%s'", PC,
                           curSpan().Name.c_str()));
      if (Opts.CollectProfile)
        ++R.InstrCounts[PC];
      ++R.Steps;
      bool Continue = step();
      if (Tel && NextEnergySample != 0 && R.Cycles >= NextEnergySample) {
        emitEnergySample();
        while (NextEnergySample <= R.Cycles)
          NextEnergySample += Opts.EnergySampleCycles;
      }
      if (!Continue)
        return R; // halted or trapped inside step()
    }
    return trap("step budget exhausted (likely an infinite loop)");
  }

private:
  const FunctionSpan &curSpan() const {
    return Img.Functions[static_cast<size_t>(CurFn)];
  }

  bool pcInCurrentFunction() const {
    const FunctionSpan &S = curSpan();
    return PC >= S.Start && PC < S.Start + S.Count;
  }

  RunResult trap(const std::string &Why) {
    R.Trapped = true;
    R.TrapReason = Why;
    return R;
  }

  int16_t &reg(uint8_t Idx) { return Regs[Idx]; }

  bool dataAt(uint32_t Addr, int16_t *&Out) {
    if (Addr >= Data.size()) {
      trap(format("data access at %u outside segment of %zu words", Addr,
                  Data.size()));
      return false;
    }
    Out = &Data[Addr];
    return true;
  }

  bool frameAt(uint32_t Off, int16_t *&Out) {
    size_t Addr = FP + Off;
    if (Addr >= FrameMem.size()) {
      trap(format("frame access at +%u outside frame", Off));
      return false;
    }
    Out = &FrameMem[Addr];
    return true;
  }

  void branchTo(uint16_t RelTarget) {
    PC = curSpan().Start + RelTarget;
  }

  bool doReturn() {
    FrameMem.resize(FP);
    if (CallStack.empty()) {
      // Returning from the entry function ends the program.
      R.Halted = true;
      return false;
    }
    CallFrame F = CallStack.back();
    CallStack.pop_back();
    PC = F.ReturnPC;
    CurFn = F.ReturnFn;
    FP = F.SavedFP;
    return true;
  }

  int16_t readPort(uint16_t Port) {
    switch (Port) {
    case PortTimer:
      return static_cast<int16_t>(TimerTicks++);
    case PortSensor: {
      if (SensorPos < Opts.SensorInput.size())
        return Opts.SensorInput[SensorPos++];
      return 0;
    }
    default:
      return 0;
    }
  }

  void writePort(uint16_t Port, int16_t Value) {
    switch (Port) {
    case PortLed:
      R.LedTrace.push_back(Value);
      break;
    case PortRadioData:
      RadioStaging.push_back(Value);
      break;
    case PortRadioSend: {
      size_t N = static_cast<size_t>(
          std::max<int>(0, static_cast<int>(Value)));
      N = std::min(N, RadioStaging.size());
      std::vector<int16_t> Packet(RadioStaging.end() - N,
                                  RadioStaging.end());
      RadioStaging.resize(RadioStaging.size() - N);
      if (Tel)
        Tel->recordEvent(TelemetryEvent::Phase::Instant, "sim", "packet.tx",
                         Opts.NodeId,
                         {{"words", static_cast<double>(Packet.size())},
                          {"cycles", static_cast<double>(R.Cycles)}});
      R.Packets.push_back(std::move(Packet));
      break;
    }
    case PortDebug:
      R.DebugTrace.push_back(Value);
      break;
    default:
      break;
    }
  }

  /// Executes one instruction. Returns false when the run is over
  /// (HALT/trap/entry-function return).
  bool step() {
    EncodedInstr E = EncodedInstr::unpack(Img.Code[PC]);
    uint32_t Next = PC + 1;
    R.Cycles += mopCycles(E.Op);

    switch (E.Op) {
    case MOp::NOP:
      break;
    case MOp::HALT:
      R.Halted = true;
      return false;
    case MOp::LDI:
      reg(E.A) = static_cast<int16_t>(E.Imm);
      break;
    case MOp::MOV:
      reg(E.A) = reg(E.B);
      break;
    case MOp::ADD:
    case MOp::SUB:
    case MOp::MUL:
    case MOp::DIV:
    case MOp::REM:
    case MOp::AND:
    case MOp::OR:
    case MOp::XOR:
    case MOp::SHL:
    case MOp::SHR: {
      int16_t B = reg(E.B), C = reg(E.regC());
      int32_t V = 0;
      switch (E.Op) {
      case MOp::ADD:
        V = B + C;
        break;
      case MOp::SUB:
        V = B - C;
        break;
      case MOp::MUL:
        V = B * C;
        break;
      case MOp::DIV:
        V = C == 0 ? 0 : B / C;
        break;
      case MOp::REM:
        V = C == 0 ? 0 : B % C;
        break;
      case MOp::AND:
        V = B & C;
        break;
      case MOp::OR:
        V = B | C;
        break;
      case MOp::XOR:
        V = B ^ C;
        break;
      case MOp::SHL:
        V = B << (C & 15);
        break;
      case MOp::SHR:
        V = B >> (C & 15);
        break;
      default:
        break;
      }
      reg(E.A) = static_cast<int16_t>(V);
      break;
    }
    case MOp::NEG:
      reg(E.A) = static_cast<int16_t>(-reg(E.B));
      break;
    case MOp::NOTR:
      reg(E.A) = static_cast<int16_t>(~reg(E.B));
      break;
    case MOp::CMP:
      CmpA = reg(E.A);
      CmpB = reg(E.B);
      break;
    case MOp::BEQ:
    case MOp::BNE:
    case MOp::BLT:
    case MOp::BGE:
    case MOp::BGT:
    case MOp::BLE: {
      bool Taken = false;
      switch (E.Op) {
      case MOp::BEQ:
        Taken = CmpA == CmpB;
        break;
      case MOp::BNE:
        Taken = CmpA != CmpB;
        break;
      case MOp::BLT:
        Taken = CmpA < CmpB;
        break;
      case MOp::BGE:
        Taken = CmpA >= CmpB;
        break;
      case MOp::BGT:
        Taken = CmpA > CmpB;
        break;
      case MOp::BLE:
        Taken = CmpA <= CmpB;
        break;
      default:
        break;
      }
      if (Taken) {
        R.Cycles += 1; // taken branches cost one extra cycle
        branchTo(E.Imm);
        return !R.Trapped;
      }
      break;
    }
    case MOp::JMP:
      branchTo(E.Imm);
      return !R.Trapped;
    case MOp::CALL: {
      if (E.Imm >= Img.Functions.size()) {
        trap(format("call to invalid function index %u", E.Imm));
        return false;
      }
      if (CallStack.size() >= MaxCallDepth) {
        trap("call stack overflow");
        return false;
      }
      CallStack.push_back(CallFrame{Next, CurFn, FP});
      CurFn = static_cast<int>(E.Imm);
      PC = curSpan().Start;
      return true;
    }
    case MOp::RET:
      return doReturn();
    case MOp::LDG: {
      int16_t *P = nullptr;
      if (!dataAt(E.Imm, P))
        return false;
      reg(E.A) = *P;
      break;
    }
    case MOp::STG: {
      int16_t *P = nullptr;
      if (!dataAt(E.Imm, P))
        return false;
      *P = reg(E.A);
      break;
    }
    case MOp::LDGX: {
      int16_t *P = nullptr;
      if (!dataAt(static_cast<uint32_t>(E.Imm) +
                      static_cast<uint16_t>(reg(E.B)),
                  P))
        return false;
      reg(E.A) = *P;
      break;
    }
    case MOp::STGX: {
      int16_t *P = nullptr;
      if (!dataAt(static_cast<uint32_t>(E.Imm) +
                      static_cast<uint16_t>(reg(E.B)),
                  P))
        return false;
      *P = reg(E.A);
      break;
    }
    case MOp::LDF: {
      int16_t *P = nullptr;
      if (!frameAt(E.Imm, P))
        return false;
      reg(E.A) = *P;
      break;
    }
    case MOp::STF: {
      int16_t *P = nullptr;
      if (!frameAt(E.Imm, P))
        return false;
      *P = reg(E.A);
      break;
    }
    case MOp::LDFX: {
      int16_t *P = nullptr;
      if (!frameAt(static_cast<uint32_t>(E.Imm) +
                       static_cast<uint16_t>(reg(E.B)),
                   P))
        return false;
      reg(E.A) = *P;
      break;
    }
    case MOp::STFX: {
      int16_t *P = nullptr;
      if (!frameAt(static_cast<uint32_t>(E.Imm) +
                       static_cast<uint16_t>(reg(E.B)),
                   P))
        return false;
      *P = reg(E.A);
      break;
    }
    case MOp::IN:
      reg(E.A) = readPort(E.Imm);
      break;
    case MOp::OUT:
      writePort(E.Imm, reg(E.A));
      break;
    case MOp::ENTER:
      FP = FrameMem.size();
      FrameMem.resize(FP + E.Imm, 0);
      break;
    case MOp::NumOpcodes:
      trap(format("illegal opcode at pc %u", PC));
      return false;
    }

    PC = Next;
    return true;
  }

  /// Cumulative CPU energy sample on the node's counter track (the
  /// per-node energy timeline of docs/OBSERVABILITY.md).
  void emitEnergySample() {
    Tel->recordEvent(
        TelemetryEvent::Phase::Counter, "sim",
        format("energy/node%d", Opts.NodeId), Opts.NodeId,
        {{"joules",
          static_cast<double>(R.Cycles) * Mica2Power().energyPerCycle()},
         {"cycles", static_cast<double>(R.Cycles)}});
  }

  static constexpr size_t MaxCallDepth = 256;

  const BinaryImage &Img;
  const SimOptions &Opts;
  RunResult R;

  Telemetry *Tel = nullptr; ///< non-null only when events are recorded
  uint64_t NextEnergySample = 0;

  std::array<int16_t, 16> Regs{};
  std::vector<int16_t> Data;
  std::vector<int16_t> FrameMem;
  std::vector<CallFrame> CallStack;
  size_t FP = 0;
  uint32_t PC = 0;
  int CurFn = 0;
  int16_t CmpA = 0, CmpB = 0;

  uint16_t TimerTicks = 0;
  size_t SensorPos = 0;
  std::vector<int16_t> RadioStaging;
};

} // namespace

RunResult ucc::runImage(const BinaryImage &Img, const SimOptions &Opts) {
  ScopedSpan Span("sim");
  RunResult R = SimImpl(Img, Opts).run();
  if (Telemetry *T = eventTelemetry()) {
    // Close the energy timeline at the final cycle on every exit path.
    T->recordEvent(
        TelemetryEvent::Phase::Counter, "sim",
        format("energy/node%d", Opts.NodeId), Opts.NodeId,
        {{"joules",
          static_cast<double>(R.Cycles) * Mica2Power().energyPerCycle()},
         {"cycles", static_cast<double>(R.Cycles)}});
    T->recordEvent(TelemetryEvent::Phase::Instant, "sim",
                   R.Trapped ? "trap" : "halt", Opts.NodeId);
  }
  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("sim.runs");
    T->addCounter("sim.steps", static_cast<int64_t>(R.Steps));
    T->addCounter("sim.cycles", static_cast<int64_t>(R.Cycles));
    T->addCounter("sim.radio_packets",
                  static_cast<int64_t>(R.Packets.size()));
    int64_t Words = 0;
    for (const std::vector<int16_t> &P : R.Packets)
      Words += static_cast<int64_t>(P.size());
    T->addCounter("sim.radio_words", Words);
  }
  return R;
}
