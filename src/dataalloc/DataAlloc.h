//===- dataalloc/DataAlloc.h - data-layout strategies ----------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data allocation for globals and frames.
///
/// The baseline strategy mimics the gcc behavior the paper describes in
/// section 5.7: variables are laid out in symbol-hash-table iteration order
/// (hash of the *name*, chained buckets, newest first within a bucket), so
/// adding or renaming a variable can reshuffle the whole segment.
///
/// UCC-DA is the paper's threshold-based allocator (section 4): deleted
/// variables leave holes, new variables fill holes first, and leftover
/// holes are reclaimed by relocating each region's *last* variable, picking
/// the region maximizing Depth_j / Usage_j(last) (eq. 17) until the wasted
/// space satisfies sum(Extra_i * Depth_i) <= SpaceT (eq. 16).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_DATAALLOC_DATAALLOC_H
#define UCC_DATAALLOC_DATAALLOC_H

#include "codegen/BinaryImage.h"
#include "ir/IR.h"

#include <map>
#include <string>
#include <vector>

namespace ucc {

/// Which data-allocation strategy to use.
enum class DataAllocKind { BaselineHash, UpdateConscious };

/// A variable as seen by the region allocator.
struct RegionVar {
  std::string Name;
  int SizeWords = 1;
  int Usage = 1; ///< number of instructions referencing the variable
};

/// The layout a previous compilation chose for one region (globals segment
/// or a function frame).
struct OldRegionLayout {
  struct Entry {
    std::string Name;
    int Offset = 0;
    int SizeWords = 1;
  };
  std::vector<Entry> Entries;
  int Words = 0;

  const Entry *find(const std::string &Name) const;
};

/// One region to lay out: the current variable set plus the old layout.
struct RegionSpec {
  std::vector<RegionVar> Vars; ///< variables of the *new* program version
  OldRegionLayout Old;         ///< empty entries = initial compilation
  int Depth = 1;               ///< projected simultaneous instances (paper's Depth_i)
};

/// Result of laying out one region.
struct RegionLayout {
  std::map<std::string, int> Offsets;
  int Words = 0;         ///< region size including residual holes
  int HoleWords = 0;     ///< words still wasted after reclamation
  int RelocatedVars = 0; ///< variables moved to fill holes
};

/// Options for UCC-DA.
struct UccDaOptions {
  int SpaceT = 0; ///< eq. 16 threshold on sum(Extra_i * Depth_i)
};

/// Lays out \p Regions update-consciously. Regions are processed jointly so
/// the relocation step can choose the best region per eq. 17.
std::vector<RegionLayout>
allocateRegionsUpdateConscious(const std::vector<RegionSpec> &Regions,
                               const UccDaOptions &Opts);

/// Baseline layout of one region in hash-table iteration order.
RegionLayout allocateRegionBaseline(const std::vector<RegionVar> &Vars);

//===----------------------------------------------------------------------===//
// Module-level convenience wrappers used by the compiler driver
//===----------------------------------------------------------------------===//

/// Counts, per global, how many IR instructions reference it (`Usage`).
std::vector<int> globalUsageCounts(const Module &M);

/// Lays out \p M's globals with the baseline strategy.
DataLayoutMap layoutGlobalsBaseline(const Module &M);

/// Lays out \p M's globals update-consciously against \p Old. Optionally
/// reports region statistics through \p StatsOut.
DataLayoutMap layoutGlobalsUpdateConscious(const Module &M,
                                           const OldRegionLayout &Old,
                                           const UccDaOptions &Opts,
                                           RegionLayout *StatsOut = nullptr);

/// Converts a computed global layout to the name-keyed form stored in
/// compilation records.
OldRegionLayout toOldLayout(const Module &M, const DataLayoutMap &DL);

/// Frame layout in declaration order (arrays first, spill slots after, as
/// created) — the update-oblivious baseline.
FrameLayout layoutFrame(const MachineFunction &MF);

/// Update-conscious frame layout: keeps surviving frame objects (matched
/// by their stable names) at their old word offsets, filling holes with
/// new objects per the section 4 algorithm. \p OldObjects/\p OldOffsets
/// describe the layout the deployed image uses.
FrameLayout layoutFrameUpdateConscious(
    const MachineFunction &MF, const std::vector<MFrameObject> &OldObjects,
    const std::vector<int> &OldOffsets, const UccDaOptions &Opts);

} // namespace ucc

#endif // UCC_DATAALLOC_DATAALLOC_H
