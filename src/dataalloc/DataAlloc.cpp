//===- dataalloc/DataAlloc.cpp - data-layout strategies -------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gcc-style hashed baseline layout and UCC-DA (section 4): hole-
/// filling placement of new variables, threshold-based reclamation per
/// eqs. 16-17, and the module-level wrappers the compiler driver calls.
/// Region outcomes are mirrored into the `da.*` telemetry counters.
///
//===----------------------------------------------------------------------===//

#include "dataalloc/DataAlloc.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace ucc;

const OldRegionLayout::Entry *
OldRegionLayout::find(const std::string &Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Baseline: hash-table iteration order
//===----------------------------------------------------------------------===//

namespace {

/// djb2 string hash — any stable hash works; what matters is that layout
/// order depends on *names*, reproducing the gcc behavior of section 5.7.
unsigned nameHash(const std::string &S) {
  unsigned H = 5381;
  for (char C : S)
    H = H * 33 + static_cast<unsigned char>(C);
  return H;
}

constexpr unsigned NumBuckets = 16;

} // namespace

RegionLayout ucc::allocateRegionBaseline(const std::vector<RegionVar> &Vars) {
  // Chained hash table with newest-first buckets, iterated in bucket order.
  std::vector<std::vector<const RegionVar *>> Buckets(NumBuckets);
  for (const RegionVar &V : Vars) {
    auto &Bucket = Buckets[nameHash(V.Name) % NumBuckets];
    Bucket.insert(Bucket.begin(), &V);
  }

  RegionLayout Out;
  int Offset = 0;
  for (const auto &Bucket : Buckets) {
    for (const RegionVar *V : Bucket) {
      Out.Offsets[V->Name] = Offset;
      Offset += V->SizeWords;
    }
  }
  Out.Words = Offset;
  return Out;
}

//===----------------------------------------------------------------------===//
// UCC-DA: threshold-based incremental layout
//===----------------------------------------------------------------------===//

namespace {

/// Mutable word-granular occupancy state for one region while the
/// update-conscious allocator works on it.
struct RegionState {
  const RegionSpec *Spec = nullptr;
  std::map<std::string, int> Offsets; // placed variables
  std::vector<bool> Used;             // word occupancy

  int words() const { return static_cast<int>(Used.size()); }

  void ensure(int Words) {
    if (Words > words())
      Used.resize(static_cast<size_t>(Words), false);
  }

  void place(const std::string &Name, int Offset, int Size) {
    ensure(Offset + Size);
    for (int K = 0; K < Size; ++K) {
      assert(!Used[static_cast<size_t>(Offset + K)] &&
             "overlapping placement");
      Used[static_cast<size_t>(Offset + K)] = true;
    }
    Offsets[Name] = Offset;
  }

  void release(int Offset, int Size) {
    for (int K = 0; K < Size; ++K)
      Used[static_cast<size_t>(Offset + K)] = false;
  }

  /// First-fit hole of at least \p Size words strictly below \p Limit
  /// (pass INT_MAX for "anywhere"). Returns -1 when none exists.
  int findHole(int Size, int Limit) const {
    int Run = 0;
    for (int P = 0; P < words() && P < Limit; ++P) {
      Run = Used[static_cast<size_t>(P)] ? 0 : Run + 1;
      if (Run >= Size) {
        int Start = P - Size + 1;
        if (Start + Size <= Limit)
          return Start;
      }
    }
    return -1;
  }

  /// Drops unused words at the end of the region.
  void trimTrailing() {
    while (!Used.empty() && !Used.back())
      Used.pop_back();
  }

  int holeWords() const {
    int N = 0;
    for (bool B : Used)
      N += B ? 0 : 1;
    return N;
  }

  const RegionVar *varByName(const std::string &Name) const {
    for (const RegionVar &V : Spec->Vars)
      if (V.Name == Name)
        return &V;
    return nullptr;
  }

  /// The variable at the highest offset ("last variable", eq. 17).
  const RegionVar *lastVar(int *OffsetOut) const {
    const RegionVar *Best = nullptr;
    int BestOffset = -1;
    for (const auto &[Name, Offset] : Offsets) {
      if (Offset > BestOffset) {
        const RegionVar *V = varByName(Name);
        if (V) {
          Best = V;
          BestOffset = Offset;
        }
      }
    }
    if (OffsetOut)
      *OffsetOut = BestOffset;
    return Best;
  }
};

} // namespace

std::vector<RegionLayout>
ucc::allocateRegionsUpdateConscious(const std::vector<RegionSpec> &Regions,
                                    const UccDaOptions &Opts) {
  std::vector<RegionState> States(Regions.size());
  std::vector<RegionLayout> Results(Regions.size());

  // Phase 1 per region: keep surviving variables in place, then fill holes
  // with new variables, appending only when no hole fits.
  for (size_t R = 0; R < Regions.size(); ++R) {
    RegionState &S = States[R];
    S.Spec = &Regions[R];
    S.ensure(Regions[R].Old.Words);

    for (const RegionVar &V : Regions[R].Vars) {
      const OldRegionLayout::Entry *E = Regions[R].Old.find(V.Name);
      if (E && E->SizeWords == V.SizeWords)
        S.place(V.Name, E->Offset, V.SizeWords);
    }
    for (const RegionVar &V : Regions[R].Vars) {
      if (S.Offsets.count(V.Name))
        continue;
      int Hole = S.findHole(V.SizeWords, /*Limit=*/1 << 30);
      int At = Hole >= 0 ? Hole : S.words();
      if (Hole >= 0 && At + V.SizeWords <= Regions[R].Old.Words)
        telemetryCount("da.holes_filled");
      S.place(V.Name, At, V.SizeWords);
    }
    S.trimTrailing();
  }

  // Phase 2: reclaim leftover holes (eq. 16/17). Keep relocating the last
  // variable of the region maximizing Depth / Usage(last) until the wasted
  // space is within SpaceT or no further relocation is possible.
  auto wasted = [&]() {
    long long W = 0;
    for (RegionState &S : States)
      W += static_cast<long long>(S.holeWords()) * S.Spec->Depth;
    return W;
  };

  while (wasted() > Opts.SpaceT) {
    // Pick the best region per eq. 17 among those that can actually move
    // their last variable into an earlier hole.
    int BestRegion = -1;
    double BestScore = -1.0;
    int BestHole = -1, BestOffset = -1;
    const RegionVar *BestVar = nullptr;

    for (size_t R = 0; R < States.size(); ++R) {
      RegionState &S = States[R];
      if (S.holeWords() == 0)
        continue;
      int LastOffset = -1;
      const RegionVar *Last = S.lastVar(&LastOffset);
      if (!Last)
        continue;
      int Hole = S.findHole(Last->SizeWords, LastOffset);
      if (Hole < 0)
        continue;
      double Score = static_cast<double>(S.Spec->Depth) /
                     std::max(1, Last->Usage);
      if (Score > BestScore) {
        BestScore = Score;
        BestRegion = static_cast<int>(R);
        BestHole = Hole;
        BestOffset = LastOffset;
        BestVar = Last;
      }
    }
    if (BestRegion < 0)
      break; // nothing can be reclaimed

    RegionState &S = States[static_cast<size_t>(BestRegion)];
    S.release(BestOffset, BestVar->SizeWords);
    S.Offsets.erase(BestVar->Name);
    S.place(BestVar->Name, BestHole, BestVar->SizeWords);
    S.trimTrailing();
    ++Results[static_cast<size_t>(BestRegion)].RelocatedVars;
  }

  for (size_t R = 0; R < States.size(); ++R) {
    States[R].trimTrailing();
    Results[R].Offsets = States[R].Offsets;
    Results[R].Words = States[R].words();
    Results[R].HoleWords = States[R].holeWords();
    if (Telemetry *T = currentTelemetry()) {
      T->addCounter("da.regions");
      T->addCounter("da.region_words", Results[R].Words);
      T->addCounter("da.hole_words", Results[R].HoleWords);
      T->addCounter("da.relocated_vars", Results[R].RelocatedVars);
    }
  }
  return Results;
}

//===----------------------------------------------------------------------===//
// Module-level wrappers
//===----------------------------------------------------------------------===//

std::vector<int> ucc::globalUsageCounts(const Module &M) {
  std::vector<int> Counts(M.Globals.size(), 0);
  for (const Function &F : M.Functions)
    for (const BasicBlock &BB : F.Blocks)
      for (const Instr &I : BB.Instrs)
        if ((I.Op == Opcode::LoadG || I.Op == Opcode::StoreG) &&
            I.Global >= 0)
          ++Counts[static_cast<size_t>(I.Global)];
  return Counts;
}

namespace {

std::vector<RegionVar> regionVarsFor(const Module &M) {
  std::vector<int> Usage = globalUsageCounts(M);
  std::vector<RegionVar> Vars;
  Vars.reserve(M.Globals.size());
  for (size_t G = 0; G < M.Globals.size(); ++G)
    Vars.push_back(RegionVar{M.Globals[G].Name, M.Globals[G].SizeWords,
                             std::max(1, Usage[G])});
  return Vars;
}

DataLayoutMap toDataLayoutMap(const Module &M, const RegionLayout &Layout) {
  DataLayoutMap DL;
  DL.GlobalOffsets.resize(M.Globals.size(), 0);
  int Words = Layout.Words;
  for (size_t G = 0; G < M.Globals.size(); ++G) {
    auto It = Layout.Offsets.find(M.Globals[G].Name);
    assert(It != Layout.Offsets.end() && "global missing from layout");
    DL.GlobalOffsets[G] = It->second;
    Words = std::max(Words, It->second + M.Globals[G].SizeWords);
  }
  DL.DataWords = Words;
  return DL;
}

} // namespace

DataLayoutMap ucc::layoutGlobalsBaseline(const Module &M) {
  return toDataLayoutMap(M, allocateRegionBaseline(regionVarsFor(M)));
}

DataLayoutMap ucc::layoutGlobalsUpdateConscious(const Module &M,
                                                const OldRegionLayout &Old,
                                                const UccDaOptions &Opts,
                                                RegionLayout *StatsOut) {
  RegionSpec Spec;
  Spec.Vars = regionVarsFor(M);
  Spec.Old = Old;
  Spec.Depth = 1; // the globals segment exists exactly once
  std::vector<RegionLayout> Layouts =
      allocateRegionsUpdateConscious({Spec}, Opts);
  if (StatsOut)
    *StatsOut = Layouts[0];
  return toDataLayoutMap(M, Layouts[0]);
}

OldRegionLayout ucc::toOldLayout(const Module &M, const DataLayoutMap &DL) {
  OldRegionLayout Old;
  Old.Words = DL.DataWords;
  for (size_t G = 0; G < M.Globals.size(); ++G)
    Old.Entries.push_back(OldRegionLayout::Entry{
        M.Globals[G].Name, DL.GlobalOffsets[G], M.Globals[G].SizeWords});
  return Old;
}

FrameLayout ucc::layoutFrameUpdateConscious(
    const MachineFunction &MF, const std::vector<MFrameObject> &OldObjects,
    const std::vector<int> &OldOffsets, const UccDaOptions &Opts) {
  assert(OldObjects.size() == OldOffsets.size() &&
         "old frame layout arrays must be parallel");
  RegionSpec Spec;
  for (const MFrameObject &FO : MF.FrameObjects)
    Spec.Vars.push_back(RegionVar{FO.Name, FO.SizeWords, 1});
  Spec.Old.Words = 0;
  for (size_t K = 0; K < OldObjects.size(); ++K) {
    Spec.Old.Entries.push_back(OldRegionLayout::Entry{
        OldObjects[K].Name, OldOffsets[K], OldObjects[K].SizeWords});
    Spec.Old.Words = std::max(
        Spec.Old.Words, OldOffsets[K] + OldObjects[K].SizeWords);
  }
  Spec.Depth = 1;

  std::vector<RegionLayout> Layouts =
      allocateRegionsUpdateConscious({Spec}, Opts);
  FrameLayout FL;
  FL.FrameWords = Layouts[0].Words;
  for (const MFrameObject &FO : MF.FrameObjects) {
    auto It = Layouts[0].Offsets.find(FO.Name);
    assert(It != Layouts[0].Offsets.end() && "frame object missing");
    FL.Offsets.push_back(It->second);
  }
  return FL;
}

FrameLayout ucc::layoutFrame(const MachineFunction &MF) {
  FrameLayout FL;
  FL.Offsets.reserve(MF.FrameObjects.size());
  int Offset = 0;
  for (const MFrameObject &FO : MF.FrameObjects) {
    FL.Offsets.push_back(Offset);
    Offset += FO.SizeWords;
  }
  FL.FrameWords = Offset;
  return FL;
}
