//===- workloads/Workloads.cpp ------------------------------------------------==//

#include "workloads/Workloads.h"

#include <cassert>

using namespace ucc;

//===----------------------------------------------------------------------===//
// Benchmark sources
//===----------------------------------------------------------------------===//
//
// All four TinyOS-style applications share a runtime prelude (task queue,
// sample conditioning, small math helpers) the way real TinyOS apps share
// the OS code — the paper's case-13 observation that "applications in the
// same TinyOS environment follow a generic structure" relies on exactly
// this. The handlers are deliberately register-rich: several simultaneously
// live locals give the allocators real decisions to preserve or lose.

namespace {

const char *RuntimePrelude = R"(
// --- TinyOS-style runtime (shared by all applications) ---
int task_queue[8];
int task_head;
int task_count;
int sys_ticks;
int led_shadow;
int prev_sample;
int history[8];
int hist_pos;

int clamp8(int v) {
  return v & 0xff;
}

int mix(int a, int b) {
  int t = (a << 3) ^ b;
  t = t + ((b >> 2) & 0x3ff);
  t = t ^ (a >> 1);
  return t & 0x7fff;
}

int checksum16(int a, int b) {
  int s = a + b;
  int folded = (s & 0xff) + ((s >> 8) & 0xff);
  return folded & 0xff;
}

void post_task(int id) {
  if (task_count < 8) {
    int slot = (task_head + task_count) & 7;
    task_queue[slot] = id;
    task_count = task_count + 1;
  }
}

int next_task() {
  int id = 0;
  if (task_count > 0) {
    id = task_queue[task_head];
    task_head = (task_head + 1) & 7;
    task_count = task_count - 1;
  }
  return id;
}

int smooth_sample(int raw) {
  int cur = clamp8(raw);
  int sm = (prev_sample * 3 + cur) >> 2;
  history[hist_pos] = sm;
  hist_pos = (hist_pos + 1) & 7;
  prev_sample = sm;
  return sm;
}

int history_energy() {
  int acc = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    int h = history[i];
    acc = acc + ((h * h) >> 4);
  }
  return acc & 0x7fff;
}
)";

const char *MainLoop = R"(
void main() {
  int ticks = 0;
  while (ticks < 64) {
    sys_ticks = __in(3);
    post_task(1);
    run_next_task(next_task());
    ticks = ticks + 1;
  }
  __halt();
}
)";

/// Blink: the timer handler toggles the red LED; the surrounding sample
/// conditioning keeps several values live across the toggle.
const char *BlinkBody = R"(
// --- Blink ---
int led_state;

void timer_handle_fire() {
  int raw = __in(4);
  int sm = smooth_sample(raw);
  int level = mix(sm, sys_ticks);
  int code = checksum16(level, sm);
  int guard = level & 15;
  led_state = led_state ^ 1;
  int shown = led_state;
  if (guard > 7) {
    shown = shown | (code & 6);
  }
  __out(0, shown & 7);
}

void run_next_task(int id) {
  if (id == 1) {
    timer_handle_fire();
  }
}
)";

/// CntToLeds: a counter displayed on the LEDs (low three bits).
const char *CntToLedsBody = R"(
// --- CntToLeds ---
int counter;
int audit_word;

void display(int value) {
  int masked = value & 7;
  if (masked != led_shadow) {
    led_shadow = masked;
  }
  __out(0, masked);
}

void timer_fire() {
  int raw = __in(4);
  int sm = smooth_sample(raw);
  int level = mix(sm, counter);
  int audit = checksum16(level, counter);
  audit_word = audit;
  counter = counter + 1;
  display(counter);
  int energy = history_energy();
  if ((energy & 31) == 0) {
    audit_word = checksum16(audit_word, energy);
  }
}

void run_next_task(int id) {
  if (id == 1) {
    timer_fire();
  }
}
)";

/// CntToRfm: the counter goes out as an IntMsg-style AM packet.
const char *CntToRfmBody = R"(
// --- CntToRfm ---
int counter;
int audit_word;
int am_type = 4;
int seq_no;

void send_packet(int value) {
  int header = mix(am_type, seq_no) & 0xff;
  int crc = checksum16(value, header);
  __out(1, am_type);
  __out(1, value);
  __out(1, crc);
  __out(2, 3);
  seq_no = seq_no + 1;
}

void timer_fire() {
  int raw = __in(4);
  int sm = smooth_sample(raw);
  int level = mix(sm, counter);
  int audit = checksum16(level, counter);
  audit_word = audit;
  counter = counter + 1;
  send_packet(counter);
  int energy = history_energy();
  if ((energy & 31) == 0) {
    audit_word = checksum16(audit_word, energy);
  }
}

void run_next_task(int id) {
  if (id == 1) {
    timer_fire();
  }
}
)";

/// CntToLedsAndRfm: the union of the two counter applications.
const char *CntToLedsAndRfmBody = R"(
// --- CntToLedsAndRfm ---
int counter;
int audit_word;
int am_type = 4;
int seq_no;

void display(int value) {
  int masked = value & 7;
  if (masked != led_shadow) {
    led_shadow = masked;
  }
  __out(0, masked);
}

void send_packet(int value) {
  int header = mix(am_type, seq_no) & 0xff;
  int crc = checksum16(value, header);
  __out(1, am_type);
  __out(1, value);
  __out(1, crc);
  __out(2, 3);
  seq_no = seq_no + 1;
}

void timer_fire() {
  int raw = __in(4);
  int sm = smooth_sample(raw);
  int level = mix(sm, counter);
  int audit = checksum16(level, counter);
  audit_word = audit;
  counter = counter + 1;
  display(counter);
  send_packet(counter);
  int energy = history_energy();
  if ((energy & 31) == 0) {
    audit_word = checksum16(audit_word, energy);
  }
}

void run_next_task(int id) {
  if (id == 1) {
    timer_fire();
  }
}
)";

std::string composeApp(const char *Body) {
  return std::string(RuntimePrelude) + Body + MainLoop;
}

/// AES-128 encryption (crypto library benchmark). The S-box is computed
/// from the GF(2^8) inverse + affine map, the key schedule and all ten
/// rounds run for real; the test suite checks the FIPS-197 vector.
const char *AesSrc = R"(
// AES-128 block encryption of one 16-byte block.
int sbox[256];
int rcon[11] = {0, 1, 2, 4, 8, 16, 32, 64, 128, 27, 54};
int key[16] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
int pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
              0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
int state[16];
int rk[176];

int xtime(int a) {
  return ((a << 1) ^ (((a >> 7) & 1) * 0x1b)) & 0xff;
}

int gmul(int a, int b) {
  int p = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (b & 1) {
      p = p ^ a;
    }
    a = xtime(a);
    b = b >> 1;
  }
  return p & 0xff;
}

int rotl8(int x, int n) {
  return ((x << n) | (x >> (8 - n))) & 0xff;
}

void init_sbox() {
  int x;
  for (x = 0; x < 256; x = x + 1) {
    int inv = 0;
    if (x != 0) {
      int acc = 1;
      int base = x;
      int e = 254;
      while (e > 0) {
        if (e & 1) {
          acc = gmul(acc, base);
        }
        base = gmul(base, base);
        e = e >> 1;
      }
      inv = acc;
    }
    sbox[x] = (inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3)
                   ^ rotl8(inv, 4) ^ 0x63) & 0xff;
  }
}

void expand_key() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    rk[i] = key[i];
  }
  for (i = 4; i < 44; i = i + 1) {
    int t0 = rk[(i - 1) * 4];
    int t1 = rk[(i - 1) * 4 + 1];
    int t2 = rk[(i - 1) * 4 + 2];
    int t3 = rk[(i - 1) * 4 + 3];
    if (i % 4 == 0) {
      int tmp = t0;
      t0 = sbox[t1] ^ rcon[i / 4];
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
    }
    rk[i * 4] = (rk[(i - 4) * 4] ^ t0) & 0xff;
    rk[i * 4 + 1] = (rk[(i - 4) * 4 + 1] ^ t1) & 0xff;
    rk[i * 4 + 2] = (rk[(i - 4) * 4 + 2] ^ t2) & 0xff;
    rk[i * 4 + 3] = (rk[(i - 4) * 4 + 3] ^ t3) & 0xff;
  }
}

void add_round_key(int round) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    state[i] = (state[i] ^ rk[round * 16 + i]) & 0xff;
  }
}

void sub_bytes() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    state[i] = sbox[state[i]];
  }
}

void shift_rows() {
  int t;
  t = state[1];
  state[1] = state[5];
  state[5] = state[9];
  state[9] = state[13];
  state[13] = t;
  t = state[2];
  state[2] = state[10];
  state[10] = t;
  t = state[6];
  state[6] = state[14];
  state[14] = t;
  t = state[15];
  state[15] = state[11];
  state[11] = state[7];
  state[7] = state[3];
  state[3] = t;
}

void mix_columns() {
  int c;
  for (c = 0; c < 4; c = c + 1) {
    int a0 = state[c * 4];
    int a1 = state[c * 4 + 1];
    int a2 = state[c * 4 + 2];
    int a3 = state[c * 4 + 3];
    state[c * 4] = (gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3) & 0xff;
    state[c * 4 + 1] = (a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3) & 0xff;
    state[c * 4 + 2] = (a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)) & 0xff;
    state[c * 4 + 3] = (gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)) & 0xff;
  }
}

void encrypt() {
  int round;
  add_round_key(0);
  for (round = 1; round < 10; round = round + 1) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void main() {
  int i;
  init_sbox();
  expand_key();
  for (i = 0; i < 16; i = i + 1) {
    state[i] = pt[i];
  }
  encrypt();
  for (i = 0; i < 16; i = i + 1) {
    __out(15, state[i]);
  }
  __halt();
}
)";

} // namespace

const std::vector<Workload> &ucc::workloads() {
  static const std::vector<Workload> Suite = {
      {"Blink",
       "Starts a 1Hz timer and toggles the red LED every time it fires.",
       composeApp(BlinkBody)},
      {"CntToLeds",
       "Maintains a counter on a 4Hz timer and displays the lowest three "
       "bits of the counter value on the LEDs.",
       composeApp(CntToLedsBody)},
      {"CntToRfm",
       "Maintains a counter on a 4Hz timer and sends out the value of the "
       "counter in an IntMsg AM packet on each increment.",
       composeApp(CntToRfmBody)},
      {"CntToLedsAndRfm",
       "Maintains a counter on a 4Hz timer; combines the tasks performed "
       "by CntToRfm and CntToLeds.",
       composeApp(CntToLedsAndRfmBody)},
      {"AES",
       "Encrypts a given 128-bit input buffer using the AES algorithm "
       "(encryption path).",
       AesSrc},
  };
  return Suite;
}

const std::string &ucc::workloadSource(const std::string &Name) {
  for (const Workload &W : workloads())
    if (W.Name == Name)
      return W.Source;
  assert(false && "unknown workload");
  static const std::string Empty;
  return Empty;
}

const char *ucc::updateLevelName(UpdateLevel Level) {
  switch (Level) {
  case UpdateLevel::Small:
    return "Small";
  case UpdateLevel::Medium:
    return "Medium";
  case UpdateLevel::Large:
    return "Large";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Update cases (Fig. 9)
//===----------------------------------------------------------------------===//

namespace {

/// Replaces the first occurrence of \p From in \p Text with \p To.
/// Asserts the needle exists — catching silently-broken cases in tests.
std::string replaced(std::string Text, const std::string &From,
                     const std::string &To) {
  size_t At = Text.find(From);
  assert(At != std::string::npos && "update-case needle missing");
  Text.replace(At, From.size(), To);
  return Text;
}

std::vector<UpdateCase> buildUpdateCases() {
  const std::string Blink = workloadSource("Blink");
  const std::string CntToLeds = workloadSource("CntToLeds");
  const std::string CntToRfm = workloadSource("CntToRfm");
  const std::string CntToLedsAndRfm = workloadSource("CntToLedsAndRfm");

  std::vector<UpdateCase> Cases;

  // 1 (Small): CntToLeds — change the color of the blink (LED mask).
  Cases.push_back({1, UpdateLevel::Small, "CntToLeds",
                   "change the color of blink (LED selection mask)",
                   CntToLeds,
                   replaced(CntToLeds, "int masked = value & 7;",
                            "int masked = value & 3;")});

  // 2 (Small): CntToLeds — constant change in the shared smoothing filter.
  Cases.push_back(
      {2, UpdateLevel::Small, "CntToLeds",
       "constant change: retune the sample-smoothing filter",
       CntToLeds,
       replaced(CntToLeds, "int sm = (prev_sample * 3 + cur) >> 2;",
                "int sm = (prev_sample * 7 + cur) >> 3;")});

  // 3 (Small): CntToRfm — constant change in the packet header mask.
  Cases.push_back(
      {3, UpdateLevel::Small, "CntToRfm",
       "constant change: narrower packet header mask",
       CntToRfm,
       replaced(CntToRfm, "int header = mix(am_type, seq_no) & 0xff;",
                "int header = mix(am_type, seq_no) & 0x7f;")});

  // 4 (Small): Blink — variable change (toggle a different LED bit).
  Cases.push_back({4, UpdateLevel::Small, "Blink",
                   "variable change: toggle the green LED instead",
                   Blink,
                   replaced(Blink, "led_state = led_state ^ 1;",
                            "led_state = led_state ^ 2;")});

  // 5 (Small): CntToLeds — instruction change (increment step).
  Cases.push_back({5, UpdateLevel::Small, "CntToLeds",
                   "instruction change: count by two",
                   CntToLeds,
                   replaced(CntToLeds, "counter = counter + 1;\n  display",
                            "counter = counter + 2;\n  display")});

  // 6 (Small): CntToRfm — parameter change (send_packet gains an arg).
  Cases.push_back(
      {6, UpdateLevel::Small, "CntToRfm",
       "parameter change: send_packet takes an urgency flag",
       CntToRfm,
       replaced(replaced(CntToRfm,
                         "void send_packet(int value) {\n"
                         "  int header = mix(am_type, seq_no) & 0xff;",
                         "void send_packet(int value, int urgent) {\n"
                         "  int header = mix(am_type + urgent, seq_no) & 0xff;"),
                "send_packet(counter);",
                "send_packet(counter, counter & 1);")});

  // 7 (Small): Blink — control-flow change in the dispatcher.
  Cases.push_back({7, UpdateLevel::Small, "Blink",
                   "control-flow change: dispatch only on odd ticks",
                   Blink,
                   replaced(Blink,
                            "void run_next_task(int id) {\n"
                            "  if (id == 1) {\n"
                            "    timer_handle_fire();\n"
                            "  }\n"
                            "}",
                            "void run_next_task(int id) {\n"
                            "  if (id == 1 && (sys_ticks & 1)) {\n"
                            "    timer_handle_fire();\n"
                            "  }\n"
                            "}")});

  // 8 (Medium): CntToLeds — new global consulted early in timer_fire; the
  // edit lands at the top of a register-rich function, the situation where
  // an update-oblivious allocator reshuffles everything after it.
  Cases.push_back(
      {8, UpdateLevel::Medium, "CntToLeds",
       "insert a global and a guard branch early in timer_fire",
       CntToLeds,
       replaced(replaced(CntToLeds, "int counter;\nint audit_word;",
                         "int counter;\nint audit_word;\nint mute_input;"),
                "void timer_fire() {\n"
                "  int raw = __in(4);",
                "void timer_fire() {\n"
                "  int raw = __in(4);\n"
                "  if (mute_input != 0) {\n"
                "    raw = 0;\n"
                "  }")});

  // 9 (Medium): CntToRfm — extend the send path with a second checksum.
  Cases.push_back(
      {9, UpdateLevel::Medium, "CntToRfm",
       "extend send_packet with a second checksum word",
       CntToRfm,
       replaced(CntToRfm,
                "  __out(1, am_type);\n"
                "  __out(1, value);\n"
                "  __out(1, crc);\n"
                "  __out(2, 3);",
                "  int crc2 = checksum16(crc, seq_no);\n"
                "  __out(1, am_type);\n"
                "  __out(1, value);\n"
                "  __out(1, crc);\n"
                "  __out(1, crc2);\n"
                "  __out(2, 4);")});

  // 10 (Medium): Blink — insert a global variable and use it in a new
  // if/then branch in run_next_task (the paper's own description).
  Cases.push_back({10, UpdateLevel::Medium, "Blink",
                   "insert a global and use it in a new if/then branch in "
                   "run_next_task",
                   Blink,
                   replaced(replaced(Blink, "int led_state;",
                                     "int led_state;\nint suppressed;"),
                            "void run_next_task(int id) {\n"
                            "  if (id == 1) {\n"
                            "    timer_handle_fire();\n"
                            "  }\n"
                            "}",
                            "void run_next_task(int id) {\n"
                            "  if (suppressed != 0) {\n"
                            "    return;\n"
                            "  }\n"
                            "  if (id == 1) {\n"
                            "    timer_handle_fire();\n"
                            "  }\n"
                            "}")});

  // 11 (Medium): Blink — add an else branch for an if statement in the
  // timer handler (the paper's own description).
  Cases.push_back(
      {11, UpdateLevel::Medium, "Blink",
       "add an else branch for an if statement in timer_handle_fire",
       Blink,
       replaced(Blink,
                "  if (guard > 7) {\n"
                "    shown = shown | (code & 6);\n"
                "  }",
                "  if (guard > 7) {\n"
                "    shown = shown | (code & 6);\n"
                "  } else {\n"
                "    shown = shown & 1;\n"
                "  }")});

  // 12 (Large): change the application from CntToRfm to CntToLedsAndRfm.
  Cases.push_back({12, UpdateLevel::Large, "CntToRfm",
                   "change the application from CntToRfm to CntToLedsAndRfm",
                   CntToRfm, CntToLedsAndRfm});

  // 13 (Large): change the application from CntToLeds to CntToRfm.
  Cases.push_back({13, UpdateLevel::Large, "CntToLeds",
                   "change the application from CntToLeds to CntToRfm",
                   CntToLeds, CntToRfm});

  return Cases;
}

std::vector<UpdateCase> buildDataLayoutCases() {
  const std::string CntToLeds = workloadSource("CntToLeds");
  const std::string CntToRfm = workloadSource("CntToRfm");

  std::vector<UpdateCase> Cases;

  // D1: CntToRfm — insert several global variables.
  Cases.push_back({101, UpdateLevel::Medium, "CntToRfm",
                   "insert several global variables",
                   CntToRfm,
                   replaced(CntToRfm, "int am_type = 4;",
                            "int am_type = 4;\n"
                            "int retries;\n"
                            "int last_sent;\n"
                            "int dropped;")});

  // D2: CntToLeds — shuffle the order of globals and change their names.
  {
    std::string Shuffled =
        replaced(CntToLeds, "int counter;\nint audit_word;",
                 "int diag_word;\nint event_count;");
    auto renameAll = [](std::string Text, const std::string &From,
                        const std::string &To) {
      size_t At = 0;
      while ((At = Text.find(From, At)) != std::string::npos) {
        Text.replace(At, From.size(), To);
        At += To.size();
      }
      return Text;
    };
    Shuffled = renameAll(Shuffled, "audit_word", "diag_word");
    Shuffled = renameAll(Shuffled, "counter", "event_count");
    Cases.push_back({102, UpdateLevel::Medium, "CntToLeds",
                     "shuffle the order of globals and change their names",
                     CntToLeds, Shuffled});
  }

  return Cases;
}

} // namespace

const std::vector<UpdateCase> &ucc::updateCases() {
  static const std::vector<UpdateCase> Cases = buildUpdateCases();
  return Cases;
}

const std::vector<UpdateCase> &ucc::dataLayoutCases() {
  static const std::vector<UpdateCase> Cases = buildDataLayoutCases();
  return Cases;
}

//===----------------------------------------------------------------------===//
// The Fig. 4 scenario
//===----------------------------------------------------------------------===//

namespace {

/// A report routine with enough short-lived values that the baseline
/// allocator's cursor wraps and `b` reuses `a`'s register (their live
/// ranges are disjoint in the old version, exactly as in Fig. 4(a)).
const char *Fig4Old = R"(
int sink;
void report(int s) {
  int a = s * 3;
  sink = sink + (a ^ 9);
  sink = sink + (a + 5);
  int f0 = s + 20;
  sink = sink + f0;
  int f1 = s + 21;
  sink = sink + f1;
  int f2 = s + 22;
  sink = sink + f2;
  int f3 = s + 23;
  sink = sink + f3;
  int f4 = s + 24;
  sink = sink + f4;
  int b = s + 7;
  sink = sink + b;
  sink = sink + (b & 7);
  sink = sink + (b ^ 1);
  __out(15, sink);
}
void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    report(__in(4));
  }
  __halt();
}
)";

/// The update hoists b's definition to the top of the routine, extending
/// its live range across a's (Fig. 4(b)): b's unchanged uses still prefer
/// a's register, which only frees up after a dies — the split-and-mov
/// opportunity of Fig. 4(c).
const char *Fig4New = R"(
int sink;
void report(int s) {
  int a = s * 3;
  int b = s + 7;
  sink = sink + (a ^ 9);
  sink = sink + (a + 5);
  int f0 = s + 20;
  sink = sink + f0;
  int f1 = s + 21;
  sink = sink + f1;
  int f2 = s + 22;
  sink = sink + f2;
  int f3 = s + 23;
  sink = sink + f3;
  int f4 = s + 24;
  sink = sink + f4;
  sink = sink + b;
  sink = sink + (b & 7);
  sink = sink + (b ^ 1);
  __out(15, sink);
}
void main() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    report(__in(4));
  }
  __halt();
}
)";

} // namespace

const UpdateCase &ucc::liveRangeExtensionCase() {
  static const UpdateCase Case = {
      14, UpdateLevel::Small, "SenseReport",
      "extend a live range across another variable's (Fig. 4 scenario)",
      Fig4Old, Fig4New};
  return Case;
}
