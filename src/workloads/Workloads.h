//===- workloads/Workloads.h - benchmark programs and update cases --------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC re-implementations of the paper's benchmark suite (Fig. 8):
/// Blink, CntToLeds, CntToRfm, CntToLedsAndRfm from the TinyOS release and
/// AES-128 encryption from the crypto library (computed for real and
/// validated against FIPS-197 in the tests), plus the thirteen update cases
/// of Fig. 9 and the two data-layout cases of Fig. 16.
///
/// TinyOS timers become bounded event loops reading the timer port; LED and
/// radio writes map to the simulator's ports. The *structure* the paper
/// relies on is preserved: a scheduler-style dispatch function
/// (run_next_task), timer-fired handlers, and distinct data-processing vs
/// data-transmission code paths.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_WORKLOADS_WORKLOADS_H
#define UCC_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace ucc {

/// One benchmark program (paper Fig. 8).
struct Workload {
  std::string Name;
  std::string Details;
  std::string Source;
};

/// The benchmark suite.
const std::vector<Workload> &workloads();

/// Fetches a benchmark source by name ("Blink", "CntToLeds", "CntToRfm",
/// "CntToLedsAndRfm", "AES"). Asserts the name exists.
const std::string &workloadSource(const std::string &Name);

/// Update severity (paper section 5.2).
enum class UpdateLevel { Small, Medium, Large };

/// One code-update test case (paper Fig. 9).
struct UpdateCase {
  int Id = 0;
  UpdateLevel Level = UpdateLevel::Small;
  std::string Benchmark;
  std::string Description;
  std::string OldSource;
  std::string NewSource;
};

/// The thirteen register-allocation update cases (Fig. 9).
const std::vector<UpdateCase> &updateCases();

/// The two data-layout update cases D1/D2 (Fig. 16).
const std::vector<UpdateCase> &dataLayoutCases();

/// The paper's Fig. 4 scenario as a concrete update: an edit extends a
/// variable's live range into a region where its old register is occupied,
/// so UCC-RA must choose between retransmitting the variable's unchanged
/// uses and inserting a `mov` — the choice the energy model arbitrates
/// (and reverses at high Cnt).
const UpdateCase &liveRangeExtensionCase();

/// Printable name for an update level.
const char *updateLevelName(UpdateLevel Level);

} // namespace ucc

#endif // UCC_WORKLOADS_WORKLOADS_H
