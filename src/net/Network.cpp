//===- net/Network.cpp - multi-hop dissemination simulator ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Topology builders (line/grid/star), BFS hop distances, and the flood
/// model: every reached node receives the whole script once, forwarding
/// nodes pay per-packet Tx energy (with loss-driven retransmissions) from
/// the Mica2 current table. Each flood runs under the `net` telemetry span
/// and reports packet/byte/energy totals (`net.*` counters and gauges).
/// The flood advances one BFS level per round; with trace events enabled
/// it emits per-node `packet.tx`/`packet.rx`/`packet.retx` instants,
/// per-node cumulative `energy/node<N>` samples, and a per-round
/// `net.progress` counter (nodes reached so far).
///
/// `disseminate()` is a facade: the round loop lives on verbatim as
/// `disseminateRounds()` (the oracle), while the facade runs the
/// discrete-event engine's legacy-compat schedule (net/EventSim.h) which
/// reproduces the loop bit for bit. The campaign layer is engine-agnostic
/// and goes through the facade.
///
//===----------------------------------------------------------------------===//

#include "net/Network.h"

#include "net/EventSim.h"
#include "support/Format.h"
#include "support/RNG.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <optional>

using namespace ucc;

// Clamped accessors behind PacketFormat: a misconfigured format must not
// divide by zero (or produce negative counts) in the middle of a flood.
static int clampedPayload(const PacketFormat &Fmt) {
  if (Fmt.PayloadBytes > 0)
    return Fmt.PayloadBytes;
  if (Telemetry *Tel = currentTelemetry())
    Tel->addCounter("net.bad_packet_format");
  return 1;
}

static int clampedHeader(const PacketFormat &Fmt) {
  if (Fmt.HeaderBytes >= 0)
    return Fmt.HeaderBytes;
  if (Telemetry *Tel = currentTelemetry())
    Tel->addCounter("net.bad_packet_format");
  return 0;
}

int PacketFormat::packetsFor(size_t ScriptBytes) const {
  if (ScriptBytes == 0)
    return 0;
  size_t Payload = static_cast<size_t>(clampedPayload(*this));
  return static_cast<int>((ScriptBytes + Payload - 1) / Payload);
}

size_t PacketFormat::bytesOnAir(size_t ScriptBytes) const {
  return ScriptBytes + static_cast<size_t>(packetsFor(ScriptBytes)) *
                           static_cast<size_t>(clampedHeader(*this));
}

Topology Topology::line(int N) {
  assert(N > 0 && "line topology needs at least one node");
  Topology T;
  T.NumNodes = N;
  T.Neighbors.assign(static_cast<size_t>(N), {});
  for (auto &List : T.Neighbors)
    List.reserve(2); // interior nodes have exactly two neighbors
  for (int K = 0; K + 1 < N; ++K) {
    T.Neighbors[static_cast<size_t>(K)].push_back(K + 1);
    T.Neighbors[static_cast<size_t>(K + 1)].push_back(K);
  }
  return T;
}

Topology Topology::grid(int W, int H) {
  assert(W > 0 && H > 0 && "grid topology needs positive dimensions");
  Topology T;
  T.NumNodes = W * H;
  T.Neighbors.assign(static_cast<size_t>(T.NumNodes), {});
  for (auto &List : T.Neighbors)
    List.reserve(4); // four-connected interior
  auto Id = [&](int X, int Y) { return Y * W + X; };
  for (int Y = 0; Y < H; ++Y) {
    for (int X = 0; X < W; ++X) {
      if (X + 1 < W) {
        T.Neighbors[static_cast<size_t>(Id(X, Y))].push_back(Id(X + 1, Y));
        T.Neighbors[static_cast<size_t>(Id(X + 1, Y))].push_back(Id(X, Y));
      }
      if (Y + 1 < H) {
        T.Neighbors[static_cast<size_t>(Id(X, Y))].push_back(Id(X, Y + 1));
        T.Neighbors[static_cast<size_t>(Id(X, Y + 1))].push_back(Id(X, Y));
      }
    }
  }
  return T;
}

Topology Topology::star(int N) {
  assert(N > 0 && "star topology needs at least one node");
  Topology T;
  T.NumNodes = N;
  T.Neighbors.assign(static_cast<size_t>(N), {});
  T.Neighbors[0].reserve(static_cast<size_t>(N) - 1); // hub sees everyone
  for (int K = 1; K < N; ++K) {
    T.Neighbors[0].push_back(K);
    T.Neighbors[static_cast<size_t>(K)].push_back(0); // leaves: one edge
  }
  return T;
}

std::vector<int> Topology::hopDistances() const {
  std::vector<int> Dist(static_cast<size_t>(NumNodes), -1);
  if (NumNodes == 0)
    return Dist;
  std::deque<int> Queue = {0};
  Dist[0] = 0;
  while (!Queue.empty()) {
    int At = Queue.front();
    Queue.pop_front();
    for (int N : Neighbors[static_cast<size_t>(At)]) {
      if (Dist[static_cast<size_t>(N)] >= 0)
        continue;
      Dist[static_cast<size_t>(N)] = Dist[static_cast<size_t>(At)] + 1;
      Queue.push_back(N);
    }
  }
  return Dist;
}

DisseminationResult ucc::disseminate(const Topology &T, size_t ScriptBytes,
                                     const PacketFormat &Fmt,
                                     const Mica2Power &Power,
                                     const RadioChannel &Channel) {
  // The event engine's compat schedule replays the round loop below bit
  // for bit (oracle-checked in tests/FleetSimTest.cpp).
  return detail::disseminateEventCompat(T, ScriptBytes, Fmt, Power, Channel);
}

DisseminationResult ucc::disseminateRounds(const Topology &T,
                                           size_t ScriptBytes,
                                           const PacketFormat &Fmt,
                                           const Mica2Power &Power,
                                           const RadioChannel &Channel) {
  ScopedSpan Span("net");
  DisseminationResult R;
  R.Packets = Fmt.packetsFor(ScriptBytes);
  R.BytesOnAir = Fmt.bytesOnAir(ScriptBytes);
  R.PerNodeJoules.assign(static_cast<size_t>(T.NumNodes), 0.0);

  std::vector<int> Dist = T.hopDistances();
  for (int D : Dist)
    R.MaxHops = std::max(R.MaxHops, D);

  double PacketBits =
      R.Packets > 0
          ? static_cast<double>(R.BytesOnAir) * 8.0 / R.Packets
          : 0.0;
  double TxPerPacketJ = PacketBits * Power.radioTxEnergyPerBit();
  double RxPerPacketJ = PacketBits * Power.radioRxEnergyPerBit();

  RNG Rng(Channel.Seed);
  // Attempts needed to get one packet across the lossy link.
  auto attemptsForPacket = [&]() {
    int Attempts = 1;
    while (Attempts < Channel.MaxAttempts &&
           Rng.unitReal() < Channel.LossRate)
      ++Attempts;
    if (Attempts >= Channel.MaxAttempts &&
        Rng.unitReal() < Channel.LossRate)
      ++R.FailedPackets; // gave up; the group must be refetched later
    return Attempts;
  };

  // The flood proceeds in rounds, one BFS level per round: in round d the
  // nodes at hop d-1 that cover a farther neighbor transmit, and the
  // nodes at hop d receive the whole script (duplicate suppression: every
  // node receives exactly once). Lost packets cost the sender a
  // retransmission each. With trace events enabled, every per-node
  // send/receive/retransmit lands on that node's track and each round
  // closes with a `net.progress` sample.
  std::vector<std::vector<int>> ByHop(static_cast<size_t>(R.MaxHops) + 1);
  for (int Node = 0; Node < T.NumNodes; ++Node)
    if (Dist[static_cast<size_t>(Node)] >= 0)
      ByHop[static_cast<size_t>(Dist[static_cast<size_t>(Node)])]
          .push_back(Node);

  Telemetry *Ev = eventTelemetry();
  auto emitEnergySample = [&](int Node) {
    Ev->recordEvent(
        TelemetryEvent::Phase::Counter, "net",
        format("energy/node%d", Node), Node,
        {{"joules", R.PerNodeJoules[static_cast<size_t>(Node)]}});
  };

  int Reached = ByHop.empty() ? 0 : static_cast<int>(ByHop[0].size());
  for (int Round = 1; Round <= R.MaxHops; ++Round) {
    // Transmissions: nodes one hop closer that cover someone this round.
    for (int Node : ByHop[static_cast<size_t>(Round - 1)]) {
      bool Forwards = false;
      for (int N : T.Neighbors[static_cast<size_t>(Node)])
        Forwards |= Dist[static_cast<size_t>(N)] >
                    Dist[static_cast<size_t>(Node)];
      if (!Forwards)
        continue;
      int Attempts = 0;
      for (int P = 0; P < R.Packets; ++P) {
        int A = attemptsForPacket();
        Attempts += A;
        if (Ev) {
          Ev->recordEvent(TelemetryEvent::Phase::Instant, "net",
                          "packet.tx", Node,
                          {{"round", static_cast<double>(Round)},
                           {"packet", static_cast<double>(P)},
                           {"attempts", static_cast<double>(A)}});
          if (A > 1)
            Ev->recordEvent(TelemetryEvent::Phase::Instant, "net",
                            "packet.retx", Node,
                            {{"round", static_cast<double>(Round)},
                             {"packet", static_cast<double>(P)},
                             {"extra", static_cast<double>(A - 1)}});
        }
      }
      R.Retransmissions += Attempts - R.Packets;
      double Tx = TxPerPacketJ * Attempts;
      ++R.Transmitters;
      R.TotalTxJoules += Tx;
      R.PerNodeJoules[static_cast<size_t>(Node)] += Tx;
      if (Ev)
        emitEnergySample(Node);
    }
    // Receptions: every node at this hop hears the whole script once.
    for (int Node : ByHop[static_cast<size_t>(Round)]) {
      double Rx = RxPerPacketJ * R.Packets;
      R.TotalRxJoules += Rx;
      R.PerNodeJoules[static_cast<size_t>(Node)] += Rx;
      if (Ev) {
        Ev->recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.rx",
                        Node,
                        {{"round", static_cast<double>(Round)},
                         {"packets", static_cast<double>(R.Packets)}});
        emitEnergySample(Node);
      }
    }
    Reached += static_cast<int>(ByHop[static_cast<size_t>(Round)].size());
    if (Ev)
      Ev->recordEvent(TelemetryEvent::Phase::Counter, "net", "net.progress",
                      0,
                      {{"round", static_cast<double>(Round)},
                       {"reached", static_cast<double>(Reached)}});
  }
  if (Telemetry *Tel = currentTelemetry()) {
    Tel->addCounter("net.floods");
    Tel->addCounter("net.packets", R.Packets);
    Tel->addCounter("net.bytes_on_air",
                    static_cast<int64_t>(R.BytesOnAir));
    Tel->addCounter("net.transmitters", R.Transmitters);
    Tel->addCounter("net.retransmissions", R.Retransmissions);
    Tel->addCounter("net.failed_packets", R.FailedPackets);
    Tel->addGauge("net.tx_joules", R.TotalTxJoules);
    Tel->addGauge("net.rx_joules", R.TotalRxJoules);
  }
  return R;
}

double CampaignResult::totalJoules() const {
  double J = 0.0;
  for (const UpdateCohort &C : Cohorts)
    J += C.Flood.totalJoules();
  return J;
}

size_t CampaignResult::totalBytesOnAir() const {
  size_t Bytes = 0;
  for (const UpdateCohort &C : Cohorts)
    Bytes += C.Flood.BytesOnAir;
  return Bytes;
}

std::vector<int> ucc::staleVersions(const std::vector<int> &NodeVersions,
                                    int TargetVersion) {
  std::vector<int> Stale;
  for (size_t Node = 1; Node < NodeVersions.size(); ++Node) {
    int V = NodeVersions[Node];
    if (V != TargetVersion &&
        std::find(Stale.begin(), Stale.end(), V) == Stale.end())
      Stale.push_back(V);
  }
  std::sort(Stale.begin(), Stale.end());
  return Stale;
}

CampaignResult
ucc::runUpdateCampaign(const Topology &T,
                       const std::vector<int> &NodeVersions,
                       int TargetVersion,
                       const std::function<size_t(int)> &ScriptBytesFor,
                       const PacketFormat &Fmt, const Mica2Power &Power,
                       const RadioChannel &Channel) {
  assert(static_cast<int>(NodeVersions.size()) == T.NumNodes &&
         "one deployed version per node");
  ScopedSpan Span("campaign");
  CampaignResult R;
  R.TargetVersion = TargetVersion;

  // Group stale nodes by deployed version. The handful of distinct
  // versions makes a flat vector (linear probe per node, one sort at the
  // end) cheaper than a node-count's worth of red-black tree churn;
  // cohorts still come out deterministically, oldest version first, with
  // nodes ascending within each cohort. Node 0 is the sink.
  std::vector<std::pair<int, std::vector<int>>> ByVersion;
  for (int Node = 1; Node < T.NumNodes; ++Node) {
    int V = NodeVersions[static_cast<size_t>(Node)];
    if (V == TargetVersion) {
      ++R.NodesCurrent;
      continue;
    }
    auto It = std::find_if(ByVersion.begin(), ByVersion.end(),
                           [&](const auto &E) { return E.first == V; });
    if (It == ByVersion.end()) {
      ByVersion.push_back({V, {}});
      It = ByVersion.end() - 1;
    }
    It->second.push_back(Node);
  }
  std::sort(ByVersion.begin(), ByVersion.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  Telemetry *Ev = eventTelemetry();
  // Each cohort's flood runs under its own trace context (one trace id
  // for the campaign if the caller did not already establish one), so
  // the per-node events of different cohorts are attributable in the
  // exported trace.
  TraceContext CampaignCtx;
  if (const TraceContext *Ctx = currentTraceContext())
    CampaignCtx = *Ctx;
  else if (Ev)
    CampaignCtx = {nextTraceId(), 0};
  int CohortIdx = 0;
  for (auto &[From, Nodes] : ByVersion) {
    UpdateCohort C;
    C.FromVersion = From;
    C.Nodes = std::move(Nodes);
    C.ScriptBytes = ScriptBytesFor(From);
    // Every cohort gets its own whole-network flood (all nodes relay; only
    // the cohort applies the script). Offsetting the seed decorrelates
    // packet loss between the floods.
    RadioChannel CohortChannel = Channel;
    CohortChannel.Seed = Channel.Seed + static_cast<uint64_t>(CohortIdx);
    {
      std::optional<TraceContextScope> CohortTrace;
      if (CampaignCtx.TraceId != 0)
        CohortTrace.emplace(TraceContext{
            CampaignCtx.TraceId, static_cast<uint64_t>(CohortIdx) + 1});
      C.Flood = disseminate(T, C.ScriptBytes, Fmt, Power, CohortChannel);
    }
    R.NodesUpdated += static_cast<int>(C.Nodes.size());
    if (Ev) {
      std::vector<std::pair<std::string, double>> Args = {
          {"from", static_cast<double>(From)},
          {"to", static_cast<double>(TargetVersion)},
          {"nodes", static_cast<double>(C.Nodes.size())},
          {"script_bytes", static_cast<double>(C.ScriptBytes)},
          {"joules", C.Flood.totalJoules()}};
      if (CampaignCtx.TraceId != 0)
        Args.push_back({"trace", static_cast<double>(CampaignCtx.TraceId)});
      Ev->recordEvent(TelemetryEvent::Phase::Instant, "campaign",
                      "campaign.cohort", 0, std::move(Args));
    }
    R.Cohorts.push_back(std::move(C));
    ++CohortIdx;
  }

  if (Telemetry *Tel = currentTelemetry()) {
    Tel->addCounter("net.campaigns");
    Tel->addCounter("net.cohorts", static_cast<int64_t>(R.Cohorts.size()));
    Tel->addGauge("net.campaign_joules", R.totalJoules());
  }
  return R;
}
