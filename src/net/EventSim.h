//===- net/EventSim.h - discrete-event fleet dissemination simulator ------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale dissemination engine: a discrete-event simulator over a
/// global binary heap of slot-timestamped events with deterministic
/// tie-breaking by (time, node, seq). Where net/Network's seed engine
/// advanced an ideal radio one BFS level per round, this engine models the
/// phenomena that make update size matter in the first place (paper
/// sections 1 and 2.2, and the GCP dissemination regimes):
///
///  - a link/radio layer with per-directed-link loss (base rate plus
///    hash-derived per-link jitter and up/down asymmetry),
///  - CSMA-style carrier sense with randomized exponential backoff, and
///    hidden-terminal collisions detected at the receiver when two
///    in-range transmissions overlap,
///  - per-node duty-cycle schedules (periodic listen/sleep windows with
///    per-node phase offsets) — sleeping nodes miss traffic and senders
///    defer to their own wake windows,
///  - an energest-style per-state energy ledger (transmit / receive /
///    idle-listen / sleep seconds and joules) over the Mica2 current
///    table.
///
/// Protocol: the sink starts with the whole script and broadcasts it as a
/// burst; a node that assembles every packet becomes a forwarder,
/// re-broadcasting up to MacConfig::MaxBursts times (decorrelated by
/// randomized forwarding delays) until all its neighbors have announced
/// completion via (idealized, control-plane) done beacons. Receivers draw
/// per-packet link loss — and, under duty cycling, decode only the
/// packets whose air slots fall inside their wake window — so stragglers
/// assemble the script cumulatively across bursts. The long tail is
/// closed Deluge-style by receiver pull: an incomplete node that has
/// heard a done beacon polls (with exponentially growing gaps, up to
/// MacConfig::MaxRequests times) and requests one extra burst from a
/// completed neighbor, so every connected node eventually completes.
///
/// Determinism contract (docs/NETWORK.md): every random draw comes from
/// the private stream of the node the event is addressed to, events are
/// totally ordered by (slot, node, seq), and cross-node effects travel as
/// events with at least one slot of latency. Event processing is
/// parallelized over block-cyclic node regions with conservative
/// one-slot-window synchronization: a batch (all events of one slot) is
/// partitioned by region, regions run on support/ThreadPool workers, and
/// new events are merged in region order at the barrier. Results and
/// `net.*` counters are byte-identical for every job count.
///
/// The seed round-based engine remains available as the oracle
/// (net/Network's disseminateRounds); `disseminate()` is a facade over
/// this engine's legacy-compat schedule and reproduces the oracle's
/// packet/hop/joule results exactly.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_NET_EVENTSIM_H
#define UCC_NET_EVENTSIM_H

#include "net/Network.h"

#include <cstdint>
#include <vector>

namespace ucc {

/// Directed link quality. The effective loss of link u->v is
///   LossRate + LossJitter * j(u,v) + Asymmetry * a(u,v) / 2
/// clamped to [0, 0.999], where j is a per-undirected-link value in
/// [-1, 1] and a a per-directed-link value in [-1, 1], both derived by
/// hashing the endpoints with the seed — so link qualities are stable
/// across the run and asymmetric between the two directions.
struct LinkModel {
  double LossRate = 0.0;
  double LossJitter = 0.0;
  double Asymmetry = 0.0;
};

/// MAC-layer behavior of every node.
struct MacConfig {
  bool Csma = true;      ///< carrier-sense (and collide) instead of ideal air
  int MaxBursts = 3;     ///< unsolicited script broadcasts per forwarder
  int BackoffCapExp = 5; ///< backoff window caps at 2^BackoffCapExp slots
  int MaxBackoffs = 16;  ///< carrier-sense defers before sending anyway
  int MaxRequests = 16;  ///< straggler pull requests per node (0 disables)
};

/// Periodic listen/sleep schedule; every node gets a hash-derived phase
/// offset so the fleet does not wake in lockstep.
struct DutyCycleConfig {
  double PeriodSeconds = 0.0; ///< 0 = radio always on (no sleep states)
  double OnFraction = 1.0;    ///< fraction of each period spent listening
};

/// Full configuration of one fleet flood.
struct FleetConfig {
  PacketFormat Fmt;
  Mica2Power Power;
  LinkModel Link;
  MacConfig Mac;
  DutyCycleConfig Duty;
  uint64_t Seed = 1;
  double SlotSeconds = 1e-3; ///< event-time quantum
  int Regions = 0;           ///< partition count; 0 = auto from node count
  int Jobs = 0;              ///< ThreadPool workers; 0 = defaultJobs()
  int ParallelThreshold = 2048; ///< min events in a batch to fan out
  bool ChargeOverhear = true;   ///< complete nodes still pay Rx for decodes
};

/// Per-state time/energy totals over the whole fleet (the Contiki
/// energest idiom: account every radio/CPU state, not just the packets).
/// Listen/sleep states are tracked only under a duty-cycle schedule; with
/// the radio always on they stay zero, matching the seed engine's
/// packet-energy-only model.
struct EnergyLedger {
  double TxSeconds = 0.0;
  double RxSeconds = 0.0;
  double ListenSeconds = 0.0;
  double SleepSeconds = 0.0;
  double TxJoules = 0.0;
  double RxJoules = 0.0;
  double ListenJoules = 0.0;
  double SleepJoules = 0.0;

  double totalJoules() const {
    return TxJoules + RxJoules + ListenJoules + SleepJoules;
  }
};

/// Outcome of one fleet flood.
struct FleetResult {
  int Packets = 0;
  size_t BytesOnAir = 0; ///< script + headers, per full burst
  int MaxHops = 0;       ///< deepest completion, in protocol hops
  int Transmitters = 0;  ///< nodes that broadcast at least one burst
  int NodesComplete = 0; ///< nodes holding the whole script at the end
  int NodesIncomplete = 0;
  int64_t Retransmissions = 0; ///< packets re-sent in bursts beyond a
                               ///< node's first
  int64_t FailedPackets = 0;   ///< (node, packet) pairs never delivered
  int64_t Collisions = 0;      ///< arrivals lost to overlapping traffic
  int64_t Backoffs = 0;        ///< carrier-sense defers
  int64_t SleepDeferrals = 0;  ///< sends deferred to the sender's wake
  int64_t SleepMisses = 0;     ///< arrivals missed by sleeping receivers
  int64_t Overheard = 0;       ///< bursts decoded by already-complete nodes
  int64_t Beacons = 0;         ///< completion announcements broadcast
  int64_t Requests = 0;        ///< straggler pull requests issued
  int64_t EventsProcessed = 0;
  int64_t Batches = 0;         ///< slot batches executed
  int64_t ParallelBatches = 0; ///< batches fanned out across workers
  double SimSeconds = 0.0;     ///< virtual time of the last event
  EnergyLedger Energy;
  std::vector<double> PerNodeJoules;

  double totalJoules() const { return Energy.totalJoules(); }
};

/// Floods a script of \p ScriptBytes from the sink (node 0) across \p T
/// under the full radio/MAC/duty-cycle model. Deterministic per
/// (topology, config, seed) and byte-identical for every Jobs value.
FleetResult simulateFlood(const Topology &T, size_t ScriptBytes,
                          const FleetConfig &Cfg = FleetConfig());

namespace detail {

/// The legacy-compat schedule of the event engine: BFS-round timing, the
/// shared loss RNG consumed in (round, node, packet) order, unconditional
/// delivery — reproduces disseminateRounds() bit-exactly (including every
/// floating-point accumulation order) so `disseminate()` can run on the
/// event core without perturbing any seed bench or test result.
DisseminationResult disseminateEventCompat(const Topology &T,
                                           size_t ScriptBytes,
                                           const PacketFormat &Fmt,
                                           const Mica2Power &Power,
                                           const RadioChannel &Channel);

} // namespace detail

} // namespace ucc

#endif // UCC_NET_EVENTSIM_H
