//===- net/EventSim.cpp - discrete-event fleet dissemination simulator ----===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event core shared by the fleet simulator and the legacy-compat
/// facade: a global binary heap of slot-timestamped events with
/// deterministic (slot, node, kind, seq) ordering, drained one slot-batch
/// at a time. Because every event schedules its consequences at least one
/// slot in the future, a whole batch is a conservative synchronization
/// window: its events touch only the state of the node they are addressed
/// to, so the batch can be partitioned by node region and processed on
/// ThreadPool workers, with new events merged back in region order at the
/// barrier. See EventSim.h for the model and docs/NETWORK.md for the
/// determinism contract.
///
//===----------------------------------------------------------------------===//

#include "net/EventSim.h"

#include "support/Format.h"
#include "support/RNG.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

using namespace ucc;

namespace {

//===----------------------------------------------------------------------===//
// Deterministic hashing (per-link qualities, per-node phases)
//===----------------------------------------------------------------------===//

uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t hashCombine(uint64_t A, uint64_t B) {
  return mix64(A ^ (B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2)));
}

/// Uniform double in [0, 1) from a hash value.
double hashUnit(uint64_t H) {
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
}

//===----------------------------------------------------------------------===//
// Events and the global heap
//===----------------------------------------------------------------------===//

/// Kind doubles as the within-(slot, node) processing rank: transmissions
/// end (freeing the channel) before new arrivals begin, and a node hears
/// the air (and the control plane) before it decides to transmit into it.
enum EventKind : uint8_t {
  EvArriveEnd = 0,   ///< a burst's airtime at a receiver is over
  EvBeacon = 1,      ///< a neighbor announced completion
  EvRequest = 2,     ///< a straggler asked this node for an extra burst
  EvPoll = 3,        ///< an incomplete node re-checks its own progress
  EvArriveStart = 4, ///< a burst starts occupying a receiver's air
  EvKick = 5,        ///< the node considers transmitting
  EvDeliver = 6,     ///< compat mode: whole-script reception
};

struct Event {
  int64_t Slot = 0;
  int64_t Aux = 0; ///< arrivals: start slot; compat: round number
  int32_t Node = 0; ///< the node whose state this event may touch
  int32_t From = -1;
  int32_t Hop = 0; ///< arrivals: sender's hop; compat kick: round
  uint32_t Seq = 0;
  uint8_t Kind = EvKick;
};

/// Min-heap order: (slot, node, kind, seq).
struct EventOrder {
  bool operator()(const Event &A, const Event &B) const {
    if (A.Slot != B.Slot)
      return A.Slot > B.Slot;
    if (A.Node != B.Node)
      return A.Node > B.Node;
    if (A.Kind != B.Kind)
      return A.Kind > B.Kind;
    return A.Seq > B.Seq;
  }
};

/// The global event queue. Sequence numbers are handed out per target
/// node at push time, so pushes must happen on one thread (they do: at
/// init and at the per-batch merge barrier) and the (slot, node, kind,
/// seq) order is a total order independent of worker scheduling.
class EventHeap {
public:
  explicit EventHeap(int NumNodes)
      : NodeSeq(static_cast<size_t>(std::max(NumNodes, 1)), 0) {}

  void push(Event E) {
    E.Seq = NodeSeq[static_cast<size_t>(E.Node)]++;
    Heap.push(E);
  }

  bool empty() const { return Heap.empty(); }

  /// Drains every event of the earliest slot into \p Batch, sorted by
  /// (node, kind, seq), and returns that slot.
  int64_t popBatch(std::vector<Event> &Batch) {
    Batch.clear();
    int64_t Slot = Heap.top().Slot;
    while (!Heap.empty() && Heap.top().Slot == Slot) {
      Batch.push_back(Heap.top());
      Heap.pop();
    }
    return Slot;
  }

private:
  std::priority_queue<Event, std::vector<Event>, EventOrder> Heap;
  std::vector<uint32_t> NodeSeq;
};

//===----------------------------------------------------------------------===//
// Fleet simulator
//===----------------------------------------------------------------------===//

/// Deferred trace-event record; workers append these to their region
/// scratch and the merge barrier replays them into the ambient registry
/// (worker threads must not touch the caller's thread-local telemetry).
struct TraceRec {
  uint8_t Kind; ///< 0 = tx, 1 = rx, 2 = collision
  int32_t Node;
  int32_t From;
  int32_t Aux; ///< tx: burst index; rx: sender hop
  int64_t Slot;
};

/// Everything a region worker produces during one batch. Merged into the
/// global result and the heap in ascending region order, so totals and
/// event sequence numbers do not depend on worker scheduling.
struct RegionScratch {
  std::vector<Event> Out;
  std::vector<TraceRec> Traces;
  int64_t Retransmissions = 0;
  int64_t Collisions = 0;
  int64_t Backoffs = 0;
  int64_t SleepDeferrals = 0;
  int64_t SleepMisses = 0;
  int64_t Overheard = 0;
  int64_t Beacons = 0;
  int64_t Requests = 0;
  int Transmitters = 0;
  int Completions = 0;
  int MaxHop = 0;
  double TxJoules = 0.0;
  double RxJoules = 0.0;
  double TxSeconds = 0.0;
  double RxSeconds = 0.0;

  void reset() {
    Out.clear();
    Traces.clear();
    Retransmissions = Collisions = Backoffs = 0;
    SleepDeferrals = SleepMisses = Overheard = Beacons = Requests = 0;
    Transmitters = Completions = MaxHop = 0;
    TxJoules = RxJoules = TxSeconds = RxSeconds = 0.0;
  }
};

/// Nodes are assigned to regions in blocks of 64 ids, round-robin, so a
/// geographically local wavefront (contiguous ids in line/grid builders)
/// still spreads across regions and can use the workers.
constexpr int RegionBlockBits = 6;

class FleetSim {
public:
  FleetSim(const Topology &T, size_t ScriptBytes, const FleetConfig &Cfg)
      : T(T), Cfg(Cfg), N(T.NumNodes), Heap(N) {
    Packets = Cfg.Fmt.packetsFor(ScriptBytes);
    Bytes = Cfg.Fmt.bytesOnAir(ScriptBytes);
    double PacketBits =
        Packets > 0 ? static_cast<double>(Bytes) * 8.0 / Packets : 0.0;
    TxPerPacketJ = PacketBits * Cfg.Power.radioTxEnergyPerBit();
    RxPerPacketJ = PacketBits * Cfg.Power.radioRxEnergyPerBit();
    AirSeconds = static_cast<double>(Bytes) * 8.0 / Cfg.Power.RadioBitsPerSec;
    AirSlots = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(AirSeconds / Cfg.SlotSeconds)));
    ForwardJitterW = std::max<int64_t>(8, 2 * AirSlots);
    RetryJitterW = std::max<int64_t>(8, 2 * AirSlots);
    PollBase = 4 * AirSlots + 8;

    if (Cfg.Duty.PeriodSeconds > 0.0) {
      PeriodSlots = std::max<int64_t>(
          2, static_cast<int64_t>(
                 std::llround(Cfg.Duty.PeriodSeconds / Cfg.SlotSeconds)));
      OnSlots = static_cast<int64_t>(
          std::llround(Cfg.Duty.OnFraction * static_cast<double>(PeriodSlots)));
      OnSlots = std::max<int64_t>(1, std::min(OnSlots, PeriodSlots));
    }

    NumRegions = Cfg.Regions > 0
                     ? Cfg.Regions
                     : std::clamp(N / 4096, 1, 256);
    Threshold = std::max(1, Cfg.ParallelThreshold);
  }

  FleetResult run();

private:
  bool duty() const { return PeriodSlots > 0; }

  bool awake(int32_t V, int64_t Slot) const {
    if (!duty())
      return true;
    return (Slot + Phase[static_cast<size_t>(V)]) % PeriodSlots < OnSlots;
  }

  int64_t nextAwake(int32_t V, int64_t Slot) const {
    int64_t R = (Slot + Phase[static_cast<size_t>(V)]) % PeriodSlots;
    return R < OnSlots ? Slot : Slot + (PeriodSlots - R);
  }

  /// Slots in [0, End) during which a node with phase \p Ph listens.
  int64_t awakeSlotsBefore(int64_t End, int64_t Ph) const {
    if (!duty())
      return End;
    int64_t Count = (End / PeriodSlots) * OnSlots;
    int64_t Rem = End % PeriodSlots;
    int64_t E1 = std::min(Ph + Rem, PeriodSlots);
    Count += std::max<int64_t>(0, std::min(E1, OnSlots) - Ph);
    if (Ph + Rem > PeriodSlots)
      Count += std::min<int64_t>(Ph + Rem - PeriodSlots, OnSlots);
    return Count;
  }

  /// Loss probability of the directed link \p U -> \p V (see LinkModel).
  double linkLoss(int32_t U, int32_t V) const {
    double L = Cfg.Link.LossRate;
    if (Cfg.Link.LossJitter != 0.0) {
      uint64_t Lo = static_cast<uint64_t>(std::min(U, V));
      uint64_t Hi = static_cast<uint64_t>(std::max(U, V));
      uint64_t H = hashCombine(hashCombine(Cfg.Seed ^ 0x11f7u, Lo), Hi);
      L += Cfg.Link.LossJitter * (2.0 * hashUnit(H) - 1.0);
    }
    if (Cfg.Link.Asymmetry != 0.0) {
      uint64_t H = hashCombine(hashCombine(Cfg.Seed ^ 0xa57au,
                                           static_cast<uint64_t>(U)),
                               static_cast<uint64_t>(V));
      L += Cfg.Link.Asymmetry * 0.5 * (2.0 * hashUnit(H) - 1.0);
    }
    return std::clamp(L, 0.0, 0.999);
  }

  bool complete(int32_t V) const {
    size_t Vz = static_cast<size_t>(V);
    return SeenBurst[Vz] && HaveCount[Vz] == Packets;
  }

  int regionOf(int32_t Node) const {
    return static_cast<int>((Node >> RegionBlockBits) % NumRegions);
  }

  Event make(uint8_t Kind, int32_t Node, int64_t Slot, int32_t From = -1,
             int32_t Hop = 0, int64_t Aux = 0) const {
    Event E;
    E.Slot = Slot;
    E.Aux = Aux;
    E.Node = Node;
    E.From = From;
    E.Hop = Hop;
    E.Kind = Kind;
    return E;
  }

  /// Air slot of packet \p P within a burst that started at \p Start.
  int64_t packetSlot(int64_t Start, int P) const {
    return Start + (static_cast<int64_t>(P) * AirSlots) / std::max(Packets, 1);
  }

  /// A straggler with an outstanding pull request holds its radio on
  /// until it is served (the Deluge RX state) — otherwise a solicited
  /// burst aligned with the server's wake phase could deterministically
  /// land in the straggler's sleep window on every retry.
  bool pulling(int32_t V) const {
    return Polls[static_cast<size_t>(V)] > 0 && !complete(V);
  }

  /// How many of a burst's packets this receiver's radio was on for
  /// (Packets when not duty cycling; -1 = the whole burst was slept
  /// through). A zero-packet script is a bare marker at the start slot.
  int awakePackets(int32_t V, int64_t Start) const {
    if (!duty() || pulling(V))
      return Packets;
    if (Packets == 0)
      return awake(V, Start) ? 0 : -1;
    int Count = 0;
    for (int P = 0; P < Packets; ++P)
      Count += awake(V, packetSlot(Start, P)) ? 1 : 0;
    return Count > 0 ? Count : -1;
  }

  /// Rx energy for the \p AwakeP packet airtimes the radio listened to.
  void chargeRx(int32_t V, RegionScratch &S, int AwakeP) {
    double RxJ = AwakeP * RxPerPacketJ;
    double RxS =
        Packets > 0 ? AirSeconds * AwakeP / static_cast<double>(Packets) : 0.0;
    PerNodeJ[static_cast<size_t>(V)] += RxJ;
    RxSecNode[static_cast<size_t>(V)] += RxS;
    S.RxJoules += RxJ;
    S.RxSeconds += RxS;
  }

  void handle(const Event &E, RegionScratch &S);
  void kick(const Event &E, RegionScratch &S);
  void arriveStart(const Event &E, RegionScratch &S);
  void arriveEnd(const Event &E, RegionScratch &S);
  void beacon(const Event &E, RegionScratch &S);
  void poll(const Event &E, RegionScratch &S);
  void request(const Event &E, RegionScratch &S);
  void finalize(int64_t LastSlot);
  void emitTrace(const TraceRec &Tr);
  void emitCounters();

  const Topology &T;
  const FleetConfig &Cfg;
  int N;
  EventHeap Heap;
  int Packets = 0;
  size_t Bytes = 0;
  double TxPerPacketJ = 0.0, RxPerPacketJ = 0.0, AirSeconds = 0.0;
  int64_t AirSlots = 1, ForwardJitterW = 8, RetryJitterW = 8, PollBase = 16;
  int64_t PeriodSlots = 0, OnSlots = 0;
  int NumRegions = 1, Threshold = 1;
  Telemetry *Ev = nullptr;

  // Per-node state; every entry is only ever touched by events addressed
  // to that node, so region workers never race.
  std::vector<RNG> Rngs;
  std::vector<int64_t> BusyUntil, OwnTxUntil, CollideStamp, Phase;
  std::vector<int32_t> HaveCount, Hop, ActiveArrivals, DoneNeighbors;
  std::vector<int32_t> LastDoneFrom, Granted;
  std::vector<int16_t> BurstsSent, PendingBackoffs, Polls;
  std::vector<uint64_t> Have; ///< HaveWords words per node
  std::vector<uint8_t> SeenBurst, PollArmed;
  std::vector<double> PerNodeJ, TxSecNode, RxSecNode;
  int HaveWords = 0;

  FleetResult Res;
};

void FleetSim::handle(const Event &E, RegionScratch &S) {
  switch (E.Kind) {
  case EvKick:
    kick(E, S);
    break;
  case EvArriveStart:
    arriveStart(E, S);
    break;
  case EvArriveEnd:
    arriveEnd(E, S);
    break;
  case EvBeacon:
    beacon(E, S);
    break;
  case EvRequest:
    request(E, S);
    break;
  case EvPoll:
    poll(E, S);
    break;
  default:
    assert(false && "compat event kind in fleet simulation");
  }
}

void FleetSim::beacon(const Event &E, RegionScratch &S) {
  int32_t V = E.Node;
  size_t Vz = static_cast<size_t>(V);
  ++DoneNeighbors[Vz];
  LastDoneFrom[Vz] = E.From;
  // A straggler that now knows a completed neighbor arms its pull timer:
  // if the regular bursts have not filled it in by then, it will ask.
  if (!complete(V) && !PollArmed[Vz] && Cfg.Mac.MaxRequests > 0) {
    PollArmed[Vz] = 1;
    S.Out.push_back(make(
        EvPoll, V,
        E.Slot + PollBase +
            static_cast<int64_t>(
                Rngs[Vz].below(static_cast<uint64_t>(PollBase)))));
  }
}

void FleetSim::poll(const Event &E, RegionScratch &S) {
  int32_t V = E.Node;
  size_t Vz = static_cast<size_t>(V);
  if (complete(V) || Polls[Vz] >= Cfg.Mac.MaxRequests)
    return;
  ++Polls[Vz];
  ++S.Requests;
  S.Out.push_back(make(EvRequest, LastDoneFrom[Vz], E.Slot + 1, V));
  // Exponentially growing gap, Trickle-style: early retries are cheap,
  // late ones stay out of the way of a still-busy channel.
  int64_t Gap = PollBase << std::min<int>(Polls[Vz], 4);
  S.Out.push_back(make(
      EvPoll, V,
      E.Slot + Gap +
          static_cast<int64_t>(
              Rngs[Vz].below(static_cast<uint64_t>(PollBase)))));
}

void FleetSim::request(const Event &E, RegionScratch &S) {
  int32_t V = E.Node;
  size_t Vz = static_cast<size_t>(V);
  if (!complete(V))
    return; // raced: the server lost completeness claim is impossible,
            // but a stale LastDoneFrom target may simply not serve
  ++Granted[Vz];
  S.Out.push_back(make(
      EvKick, V,
      E.Slot + 1 + static_cast<int64_t>(Rngs[Vz].below(8))));
}

void FleetSim::kick(const Event &E, RegionScratch &S) {
  int32_t V = E.Node;
  size_t Vz = static_cast<size_t>(V);
  int Deg = static_cast<int>(T.Neighbors[Vz].size());
  // The unsolicited budget plus one extra burst per granted pull request;
  // done beacons from every neighbor retire the forwarder either way.
  int Budget = Cfg.Mac.MaxBursts + Granted[Vz];
  if (BurstsSent[Vz] >= Budget || DoneNeighbors[Vz] >= Deg)
    return; // everyone around already has the script (or budget spent)

  if (!awake(V, E.Slot)) {
    ++S.SleepDeferrals;
    int64_t W = nextAwake(V, E.Slot) +
                static_cast<int64_t>(Rngs[Vz].below(static_cast<uint64_t>(
                    std::max<int64_t>(1, std::min<int64_t>(OnSlots, 8)))));
    S.Out.push_back(make(EvKick, V, W));
    return;
  }

  if (Cfg.Mac.Csma && E.Slot <= BusyUntil[Vz] &&
      PendingBackoffs[Vz] < Cfg.Mac.MaxBackoffs) {
    ++S.Backoffs;
    ++PendingBackoffs[Vz];
    int64_t Window =
        int64_t(1) << std::min<int>(PendingBackoffs[Vz], Cfg.Mac.BackoffCapExp);
    int64_t At =
        std::max(BusyUntil[Vz] + 1, E.Slot + 1) +
        static_cast<int64_t>(Rngs[Vz].below(static_cast<uint64_t>(Window)));
    S.Out.push_back(make(EvKick, V, At));
    return;
  }
  PendingBackoffs[Vz] = 0;

  bool First = BurstsSent[Vz] == 0;
  ++BurstsSent[Vz];
  if (First)
    ++S.Transmitters;
  else
    S.Retransmissions += Packets;

  // The node's own transmission occupies its air: it cannot decode an
  // overlapping arrival (half-duplex) and its neighbors' carrier sense
  // picks the busy channel up via the arrival-start events below.
  if (ActiveArrivals[Vz] > 0)
    CollideStamp[Vz] = E.Slot;
  OwnTxUntil[Vz] = E.Slot + AirSlots;
  BusyUntil[Vz] = std::max(BusyUntil[Vz], E.Slot + AirSlots);

  double TxJ = Packets * TxPerPacketJ;
  PerNodeJ[Vz] += TxJ;
  TxSecNode[Vz] += AirSeconds;
  S.TxJoules += TxJ;
  S.TxSeconds += AirSeconds;

  for (int32_t Nb : T.Neighbors[Vz]) {
    S.Out.push_back(make(EvArriveStart, Nb, E.Slot + 1, V));
    S.Out.push_back(
        make(EvArriveEnd, Nb, E.Slot + 1 + AirSlots, V, Hop[Vz], E.Slot + 1));
  }
  if (Ev)
    S.Traces.push_back({0, V, -1, BurstsSent[Vz], E.Slot});

  if (BurstsSent[Vz] < Budget)
    S.Out.push_back(make(
        EvKick, V,
        E.Slot + AirSlots + 4 +
            static_cast<int64_t>(
                Rngs[Vz].below(static_cast<uint64_t>(RetryJitterW)))));
}

void FleetSim::arriveStart(const Event &E, RegionScratch &S) {
  (void)S;
  size_t Vz = static_cast<size_t>(E.Node);
  // A second concurrent arrival (or one landing during the node's own
  // transmission) garbles every burst overlapping this slot.
  if (ActiveArrivals[Vz] > 0 || E.Slot <= OwnTxUntil[Vz])
    CollideStamp[Vz] = E.Slot;
  ++ActiveArrivals[Vz];
  BusyUntil[Vz] = std::max(BusyUntil[Vz], E.Slot + AirSlots);
}

void FleetSim::arriveEnd(const Event &E, RegionScratch &S) {
  int32_t V = E.Node;
  size_t Vz = static_cast<size_t>(V);
  --ActiveArrivals[Vz];

  // A duty-cycled receiver decodes only the packets whose air slots fall
  // inside its wake window; a burst slept through entirely is a miss.
  int AwakeP = awakePackets(V, E.Aux);
  if (AwakeP < 0) {
    ++S.SleepMisses;
    return;
  }

  if (CollideStamp[Vz] >= E.Aux) {
    ++S.Collisions;
    chargeRx(V, S, AwakeP); // the radio listened through the garble
    if (Ev)
      S.Traces.push_back({2, V, E.From, 0, E.Slot});
    return;
  }

  if (complete(V)) {
    ++S.Overheard;
    if (Cfg.ChargeOverhear)
      chargeRx(V, S, AwakeP);
    return;
  }

  chargeRx(V, S, AwakeP);
  double Loss = linkLoss(E.From, V);
  bool AllOn = !duty() || pulling(V);
  for (int P = 0; P < Packets; ++P) {
    if (!AllOn && !awake(V, packetSlot(E.Aux, P)))
      continue; // the radio was off while this packet was on the air
    size_t W = Vz * static_cast<size_t>(HaveWords) +
               static_cast<size_t>(P) / 64;
    uint64_t Bit = uint64_t(1) << (P % 64);
    if (Have[W] & Bit)
      continue;
    if (Loss > 0.0 && Rngs[Vz].unitReal() < Loss)
      continue; // this packet of the burst was lost on the link
    Have[W] |= Bit;
    ++HaveCount[Vz];
  }
  SeenBurst[Vz] = 1;
  if (Ev)
    S.Traces.push_back({1, V, E.From, E.Hop, E.Slot});

  if (HaveCount[Vz] != Packets)
    return;

  // Completion: remember the hop depth, tell the neighbors (idealized
  // control-plane beacons), and join the forwarders.
  Hop[Vz] = E.Hop + 1;
  S.MaxHop = std::max(S.MaxHop, Hop[Vz]);
  ++S.Completions;
  int Deg = static_cast<int>(T.Neighbors[Vz].size());
  for (int32_t Nb : T.Neighbors[Vz])
    S.Out.push_back(make(EvBeacon, Nb, E.Slot + 1, V));
  S.Beacons += Deg;
  if (Cfg.Mac.MaxBursts > 0)
    S.Out.push_back(make(
        EvKick, V,
        E.Slot + 2 +
            static_cast<int64_t>(
                Rngs[Vz].below(static_cast<uint64_t>(ForwardJitterW)))));
}

void FleetSim::finalize(int64_t LastSlot) {
  Res.SimSeconds = static_cast<double>(LastSlot) * Cfg.SlotSeconds;
  for (int32_t V = 0; V < N; ++V) {
    if (complete(V)) {
      ++Res.NodesComplete;
    } else {
      ++Res.NodesIncomplete;
      Res.FailedPackets += Packets - HaveCount[static_cast<size_t>(V)];
    }
  }
  if (duty()) {
    double ListenW = Cfg.Power.RadioRxA * Cfg.Power.SupplyVolts;
    double SleepW = Cfg.Power.CpuStandbyA * Cfg.Power.SupplyVolts;
    for (int32_t V = 0; V < N; ++V) {
      size_t Vz = static_cast<size_t>(V);
      double AwakeS =
          static_cast<double>(awakeSlotsBefore(LastSlot, Phase[Vz])) *
          Cfg.SlotSeconds;
      double ListenS =
          std::max(0.0, AwakeS - TxSecNode[Vz] - RxSecNode[Vz]);
      double SleepS = std::max(0.0, Res.SimSeconds - AwakeS);
      Res.Energy.ListenSeconds += ListenS;
      Res.Energy.SleepSeconds += SleepS;
      Res.Energy.ListenJoules += ListenS * ListenW;
      Res.Energy.SleepJoules += SleepS * SleepW;
      PerNodeJ[Vz] += ListenS * ListenW + SleepS * SleepW;
    }
  }
  Res.PerNodeJoules = std::move(PerNodeJ);
}

void FleetSim::emitTrace(const TraceRec &Tr) {
  switch (Tr.Kind) {
  case 0:
    Ev->recordEvent(TelemetryEvent::Phase::Instant, "net", "burst.tx",
                    Tr.Node,
                    {{"slot", static_cast<double>(Tr.Slot)},
                     {"burst", static_cast<double>(Tr.Aux)}});
    break;
  case 1:
    Ev->recordEvent(TelemetryEvent::Phase::Instant, "net", "burst.rx",
                    Tr.Node,
                    {{"slot", static_cast<double>(Tr.Slot)},
                     {"from", static_cast<double>(Tr.From)},
                     {"hop", static_cast<double>(Tr.Aux)}});
    break;
  default:
    Ev->recordEvent(TelemetryEvent::Phase::Instant, "net",
                    "burst.collision", Tr.Node,
                    {{"slot", static_cast<double>(Tr.Slot)},
                     {"from", static_cast<double>(Tr.From)}});
    break;
  }
}

void FleetSim::emitCounters() {
  Telemetry *Tel = currentTelemetry();
  if (!Tel)
    return;
  Tel->addCounter("net.floods");
  Tel->addCounter("net.packets", Res.Packets);
  Tel->addCounter("net.bytes_on_air", static_cast<int64_t>(Res.BytesOnAir));
  Tel->addCounter("net.transmitters", Res.Transmitters);
  Tel->addCounter("net.retransmissions", Res.Retransmissions);
  Tel->addCounter("net.failed_packets", Res.FailedPackets);
  Tel->addCounter("net.event.processed", Res.EventsProcessed);
  Tel->addCounter("net.event.batches", Res.Batches);
  Tel->addCounter("net.event.parallel_batches", Res.ParallelBatches);
  Tel->addCounter("net.collisions", Res.Collisions);
  Tel->addCounter("net.backoffs", Res.Backoffs);
  Tel->addCounter("net.sleep.defers", Res.SleepDeferrals);
  Tel->addCounter("net.sleep.misses", Res.SleepMisses);
  Tel->addCounter("net.overheard", Res.Overheard);
  Tel->addCounter("net.beacons", Res.Beacons);
  Tel->addCounter("net.requests", Res.Requests);
  Tel->addCounter("net.nodes_incomplete", Res.NodesIncomplete);
  Tel->addGauge("net.tx_joules", Res.Energy.TxJoules);
  Tel->addGauge("net.rx_joules", Res.Energy.RxJoules);
  Tel->addGauge("net.listen_joules", Res.Energy.ListenJoules);
  Tel->addGauge("net.sleep_joules", Res.Energy.SleepJoules);
  Tel->addGauge("net.sim_seconds", Res.SimSeconds);
}

FleetResult FleetSim::run() {
  ScopedSpan Span("net");
  Res.Packets = Packets;
  Res.BytesOnAir = Bytes;
  if (N == 0) {
    emitCounters();
    return Res;
  }
  Ev = eventTelemetry();

  size_t Nz = static_cast<size_t>(N);
  Rngs.reserve(Nz);
  for (int32_t V = 0; V < N; ++V)
    Rngs.emplace_back(hashCombine(Cfg.Seed, static_cast<uint64_t>(V)));
  BusyUntil.assign(Nz, -1);
  OwnTxUntil.assign(Nz, -1);
  CollideStamp.assign(Nz, -1);
  HaveCount.assign(Nz, 0);
  Hop.assign(Nz, -1);
  ActiveArrivals.assign(Nz, 0);
  DoneNeighbors.assign(Nz, 0);
  LastDoneFrom.assign(Nz, 0);
  Granted.assign(Nz, 0);
  BurstsSent.assign(Nz, 0);
  PendingBackoffs.assign(Nz, 0);
  Polls.assign(Nz, 0);
  PollArmed.assign(Nz, 0);
  HaveWords = (Packets + 63) / 64;
  Have.assign(Nz * static_cast<size_t>(HaveWords), 0);
  SeenBurst.assign(Nz, 0);
  PerNodeJ.assign(Nz, 0.0);
  TxSecNode.assign(Nz, 0.0);
  RxSecNode.assign(Nz, 0.0);
  if (duty()) {
    Phase.resize(Nz);
    for (int32_t V = 0; V < N; ++V)
      Phase[static_cast<size_t>(V)] = static_cast<int64_t>(
          hashCombine(Cfg.Seed ^ 0xd0c5u, static_cast<uint64_t>(V)) %
          static_cast<uint64_t>(PeriodSlots));
  }

  // The sink owns the whole script from the start.
  SeenBurst[0] = 1;
  HaveCount[0] = Packets;
  for (int P = 0; P < Packets; ++P)
    Have[static_cast<size_t>(P) / 64] |= uint64_t(1) << (P % 64);
  Hop[0] = 0;
  int SinkDeg = static_cast<int>(T.Neighbors[0].size());
  for (int32_t Nb : T.Neighbors[0])
    Heap.push(make(EvBeacon, Nb, 1, 0));
  Res.Beacons += SinkDeg;
  if (SinkDeg > 0 && Cfg.Mac.MaxBursts > 0)
    Heap.push(make(EvKick, 0, 2 + static_cast<int64_t>(Rngs[0].below(8))));

  ThreadPool Pool(Cfg.Jobs);
  std::vector<RegionScratch> Scratch(static_cast<size_t>(NumRegions));
  std::vector<std::vector<Event>> RegionEvents(
      static_cast<size_t>(NumRegions));
  std::vector<int> Active;
  std::vector<Event> Batch;
  int Reached = 1; // the sink
  int64_t LastSlot = 0;

  while (!Heap.empty()) {
    int64_t Slot = Heap.popBatch(Batch);
    LastSlot = Slot;
    ++Res.Batches;
    Res.EventsProcessed += static_cast<int64_t>(Batch.size());

    for (const Event &E : Batch) {
      int Rg = regionOf(E.Node);
      if (RegionEvents[static_cast<size_t>(Rg)].empty())
        Active.push_back(Rg);
      RegionEvents[static_cast<size_t>(Rg)].push_back(E);
    }
    std::sort(Active.begin(), Active.end());

    // "Eligible" is a property of the batch, not of the job count, so
    // the counter (and everything downstream) is jobs-invariant.
    bool Eligible = Active.size() > 1 &&
                    static_cast<int>(Batch.size()) >= Threshold;
    if (Eligible)
      ++Res.ParallelBatches;
    auto Work = [&](int I) {
      int Rg = Active[static_cast<size_t>(I)];
      RegionScratch &S = Scratch[static_cast<size_t>(Rg)];
      for (const Event &E : RegionEvents[static_cast<size_t>(Rg)])
        handle(E, S);
    };
    if (Eligible && Pool.jobs() > 1)
      Pool.parallelFor(static_cast<int>(Active.size()), Work);
    else
      for (int I = 0; I < static_cast<int>(Active.size()); ++I)
        Work(I);

    // Merge barrier: ascending region order keeps counter totals, FP
    // sums, heap sequence numbers and trace order schedule-independent.
    int Completions = 0;
    for (int Rg : Active) {
      RegionScratch &S = Scratch[static_cast<size_t>(Rg)];
      Res.Retransmissions += S.Retransmissions;
      Res.Collisions += S.Collisions;
      Res.Backoffs += S.Backoffs;
      Res.SleepDeferrals += S.SleepDeferrals;
      Res.SleepMisses += S.SleepMisses;
      Res.Overheard += S.Overheard;
      Res.Beacons += S.Beacons;
      Res.Requests += S.Requests;
      Res.Transmitters += S.Transmitters;
      Res.MaxHops = std::max(Res.MaxHops, S.MaxHop);
      Completions += S.Completions;
      Res.Energy.TxJoules += S.TxJoules;
      Res.Energy.RxJoules += S.RxJoules;
      Res.Energy.TxSeconds += S.TxSeconds;
      Res.Energy.RxSeconds += S.RxSeconds;
      for (const Event &E : S.Out)
        Heap.push(E);
      if (Ev)
        for (const TraceRec &Tr : S.Traces)
          emitTrace(Tr);
      S.reset();
      RegionEvents[static_cast<size_t>(Rg)].clear();
    }
    Active.clear();

    if (Completions > 0) {
      Reached += Completions;
      if (Ev)
        Ev->recordEvent(TelemetryEvent::Phase::Counter, "net",
                        "net.progress", 0,
                        {{"slot", static_cast<double>(Slot)},
                         {"reached", static_cast<double>(Reached)}});
    }
  }

  finalize(LastSlot);
  emitCounters();
  return Res;
}

} // namespace

FleetResult ucc::simulateFlood(const Topology &T, size_t ScriptBytes,
                               const FleetConfig &Cfg) {
  return FleetSim(T, ScriptBytes, Cfg).run();
}

//===----------------------------------------------------------------------===//
// Legacy-compat schedule
//===----------------------------------------------------------------------===//
//
// The compat schedule drives the event core through the seed engine's
// exact observable behavior: the nodes of BFS level d-1 that cover a
// farther neighbor kick (transmit) at slot 3(d-1) in ascending node
// order, level d receives the whole script at slot 3(d-1)+2, and the
// next level kicks at slot 3d. That reproduces the shared RNG's draw
// order, every floating-point accumulation order, and the trace-event
// sequence of the round loop bit for bit — which the zero-tolerance
// bench gate (campaign joules under loss) depends on.

DisseminationResult ucc::detail::disseminateEventCompat(
    const Topology &T, size_t ScriptBytes, const PacketFormat &Fmt,
    const Mica2Power &Power, const RadioChannel &Channel) {
  ScopedSpan Span("net");
  DisseminationResult R;
  R.Packets = Fmt.packetsFor(ScriptBytes);
  R.BytesOnAir = Fmt.bytesOnAir(ScriptBytes);
  R.PerNodeJoules.assign(static_cast<size_t>(T.NumNodes), 0.0);

  std::vector<int> Dist = T.hopDistances();
  for (int D : Dist)
    R.MaxHops = std::max(R.MaxHops, D);

  double PacketBits =
      R.Packets > 0 ? static_cast<double>(R.BytesOnAir) * 8.0 / R.Packets
                    : 0.0;
  double TxPerPacketJ = PacketBits * Power.radioTxEnergyPerBit();
  double RxPerPacketJ = PacketBits * Power.radioRxEnergyPerBit();

  RNG Rng(Channel.Seed);
  // Attempts needed to get one packet across the lossy link. Draw-order
  // identical to the seed engine's lambda (including the extra draw at
  // the MaxAttempts boundary — see the retry-accounting test).
  auto attemptsForPacket = [&]() {
    int Attempts = 1;
    while (Attempts < Channel.MaxAttempts && Rng.unitReal() < Channel.LossRate)
      ++Attempts;
    if (Attempts >= Channel.MaxAttempts && Rng.unitReal() < Channel.LossRate)
      ++R.FailedPackets; // gave up; the group must be refetched later
    return Attempts;
  };

  Telemetry *Ev = eventTelemetry();
  auto emitEnergySample = [&](int Node) {
    Ev->recordEvent(TelemetryEvent::Phase::Counter, "net",
                    format("energy/node%d", Node), Node,
                    {{"joules", R.PerNodeJoules[static_cast<size_t>(Node)]}});
  };

  EventHeap Heap(T.NumNodes);
  for (int V = 0; V < T.NumNodes; ++V) {
    int D = Dist[static_cast<size_t>(V)];
    if (D < 0)
      continue; // disconnected: neither transmits nor receives
    bool Forwards = false;
    for (int Nb : T.Neighbors[static_cast<size_t>(V)])
      Forwards |= Dist[static_cast<size_t>(Nb)] > D;
    if (Forwards) {
      Event E;
      E.Slot = 3 * static_cast<int64_t>(D);
      E.Node = V;
      E.Hop = D + 1; // the round this transmission belongs to
      E.Kind = EvKick;
      Heap.push(E);
    }
    if (D >= 1) {
      Event E;
      E.Slot = 3 * static_cast<int64_t>(D - 1) + 2;
      E.Node = V;
      E.Hop = D; // the round this reception belongs to
      E.Kind = EvDeliver;
      Heap.push(E);
    }
  }

  int Reached = T.NumNodes > 0 ? 1 : 0; // hop 0 is the sink alone
  std::vector<Event> Batch;
  while (!Heap.empty()) {
    Heap.popBatch(Batch);
    int Delivered = 0;
    int Round = 0;
    for (const Event &E : Batch) {
      int Node = E.Node;
      if (E.Kind == EvKick) {
        int Attempts = 0;
        for (int P = 0; P < R.Packets; ++P) {
          int A = attemptsForPacket();
          Attempts += A;
          if (Ev) {
            Ev->recordEvent(TelemetryEvent::Phase::Instant, "net",
                            "packet.tx", Node,
                            {{"round", static_cast<double>(E.Hop)},
                             {"packet", static_cast<double>(P)},
                             {"attempts", static_cast<double>(A)}});
            if (A > 1)
              Ev->recordEvent(TelemetryEvent::Phase::Instant, "net",
                              "packet.retx", Node,
                              {{"round", static_cast<double>(E.Hop)},
                               {"packet", static_cast<double>(P)},
                               {"extra", static_cast<double>(A - 1)}});
          }
        }
        R.Retransmissions += Attempts - R.Packets;
        double Tx = TxPerPacketJ * Attempts;
        ++R.Transmitters;
        R.TotalTxJoules += Tx;
        R.PerNodeJoules[static_cast<size_t>(Node)] += Tx;
        if (Ev)
          emitEnergySample(Node);
      } else {
        Round = E.Hop;
        double Rx = RxPerPacketJ * R.Packets;
        R.TotalRxJoules += Rx;
        R.PerNodeJoules[static_cast<size_t>(Node)] += Rx;
        if (Ev) {
          Ev->recordEvent(TelemetryEvent::Phase::Instant, "net", "packet.rx",
                          Node,
                          {{"round", static_cast<double>(Round)},
                           {"packets", static_cast<double>(R.Packets)}});
          emitEnergySample(Node);
        }
        ++Delivered;
      }
    }
    if (Delivered > 0) {
      Reached += Delivered;
      if (Ev)
        Ev->recordEvent(TelemetryEvent::Phase::Counter, "net",
                        "net.progress", 0,
                        {{"round", static_cast<double>(Round)},
                         {"reached", static_cast<double>(Reached)}});
    }
  }

  if (Telemetry *Tel = currentTelemetry()) {
    Tel->addCounter("net.floods");
    Tel->addCounter("net.packets", R.Packets);
    Tel->addCounter("net.bytes_on_air", static_cast<int64_t>(R.BytesOnAir));
    Tel->addCounter("net.transmitters", R.Transmitters);
    Tel->addCounter("net.retransmissions", R.Retransmissions);
    Tel->addCounter("net.failed_packets", R.FailedPackets);
    Tel->addGauge("net.tx_joules", R.TotalTxJoules);
    Tel->addGauge("net.rx_joules", R.TotalRxJoules);
  }
  return R;
}
