//===- net/Network.h - multi-hop dissemination simulator ------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-hop WSN dissemination model (paper sections 1 and 2.2): the sink
/// floods an update over the network hop by hop. The edit script is split
/// into packets (header + bounded payload); every node receives the whole
/// script once and every node with downstream neighbors retransmits it.
/// Per-node Tx/Rx energies come from the Mica2 current table at 38.4 kbps.
/// This realizes the paper's "a data report may jump 70 or more hops"
/// setting and lets examples compare network-wide dissemination energy of
/// baseline vs update-conscious scripts.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_NET_NETWORK_H
#define UCC_NET_NETWORK_H

#include "energy/EnergyModel.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace ucc {

/// An undirected sensor-network topology. Node 0 is the sink.
struct Topology {
  int NumNodes = 0;
  std::vector<std::vector<int>> Neighbors;

  /// A chain of \p N nodes: 0 - 1 - ... - N-1 (the deep multi-hop case).
  static Topology line(int N);
  /// A W x H grid with 4-neighborhood; the sink sits at a corner.
  static Topology grid(int W, int H);
  /// A star: the sink reaches every node directly (single-hop broadcast).
  static Topology star(int N);

  /// BFS hop distance of every node from the sink (-1 = unreachable).
  std::vector<int> hopDistances() const;
};

/// Packetization parameters (section 2.2: scripts are divided into packets
/// that may be grouped/encrypted; we model size and count).
///
/// Invalid formats never reach the division below: a non-positive
/// PayloadBytes is clamped to 1 and a negative HeaderBytes to 0, and each
/// clamped call bumps the `net.bad_packet_format` counter so a
/// misconfigured caller is visible in telemetry instead of crashing (or
/// silently returning a negative packet count).
struct PacketFormat {
  int HeaderBytes = 8;
  int PayloadBytes = 24;

  int packetsFor(size_t ScriptBytes) const;
  size_t bytesOnAir(size_t ScriptBytes) const;
};

/// Link quality (section 2.2 notes transmitting more data "increases the
/// possibility of signal collision"): every packet transmission fails
/// independently with LossRate and is retried until it gets through (or
/// MaxAttempts is exhausted — counted as a failure). Deterministic per
/// Seed.
struct RadioChannel {
  double LossRate = 0.0;
  int MaxAttempts = 16;
  uint64_t Seed = 1;
};

/// Outcome of disseminating one script across a topology.
struct DisseminationResult {
  int Packets = 0;
  size_t BytesOnAir = 0;  ///< per transmission (payload + headers)
  int MaxHops = 0;
  int Transmitters = 0;   ///< nodes that had to forward the script
  int Retransmissions = 0; ///< extra attempts forced by packet loss
  int FailedPackets = 0;   ///< packets dropped even after MaxAttempts
  double TotalTxJoules = 0.0;
  double TotalRxJoules = 0.0;
  std::vector<double> PerNodeJoules;

  double totalJoules() const { return TotalTxJoules + TotalRxJoules; }
};

/// Floods a script of \p ScriptBytes from the sink across \p T.
///
/// A facade over the discrete-event engine's legacy-compat schedule
/// (net/EventSim.h): results — packets, hops, joules, retransmissions,
/// trace events — are bit-identical to the seed round-based engine for
/// every channel, seed and topology. Callers that want the full radio
/// model (per-link loss, contention, duty cycling) use simulateFlood().
DisseminationResult disseminate(const Topology &T, size_t ScriptBytes,
                                const PacketFormat &Fmt = PacketFormat(),
                                const Mica2Power &Power = Mica2Power(),
                                const RadioChannel &Channel = RadioChannel());

/// The seed round-based engine (one BFS level per round over an ideal
/// air), kept verbatim as the oracle the event engine is checked against
/// in tests. Behavior and telemetry are identical to disseminate().
DisseminationResult
disseminateRounds(const Topology &T, size_t ScriptBytes,
                  const PacketFormat &Fmt = PacketFormat(),
                  const Mica2Power &Power = Mica2Power(),
                  const RadioChannel &Channel = RadioChannel());

//===----------------------------------------------------------------------===//
// Fleet update campaigns
//===----------------------------------------------------------------------===//
//
// After a few incremental updates a deployed network is rarely uniform:
// nodes that slept through a round still run an older version. A campaign
// brings every node to one target version by flooding, per deployed-version
// cohort, the script that takes exactly that version to the target. The
// script for each cohort is supplied by a callback so this layer stays
// ignorant of how patches are planned (the compilation core binds its
// version-store planner into it).

/// The nodes sharing one deployed version, and the flood that updates them.
struct UpdateCohort {
  int FromVersion = -1;         ///< version this cohort currently runs
  std::vector<int> Nodes;       ///< node ids in the cohort
  size_t ScriptBytes = 0;       ///< script taking FromVersion -> target
  DisseminationResult Flood;    ///< outcome of this cohort's flood
};

/// Outcome of one whole fleet campaign.
struct CampaignResult {
  int TargetVersion = -1;
  std::vector<UpdateCohort> Cohorts; ///< one per distinct stale version
  int NodesUpdated = 0;              ///< nodes brought to the target
  int NodesCurrent = 0;              ///< nodes already at the target

  double totalJoules() const;
  size_t totalBytesOnAir() const;
};

/// The distinct deployed versions in \p NodeVersions that still need an
/// update to \p TargetVersion, sorted ascending. Node 0 (the sink) is
/// skipped, matching runUpdateCampaign's cohort grouping — this is the set
/// of scripts a campaign must plan before any flood, exposed so planners
/// (store- or service-backed) and precompute passes agree on it.
std::vector<int> staleVersions(const std::vector<int> &NodeVersions,
                               int TargetVersion);

/// Brings every node of \p T to \p TargetVersion. \p NodeVersions[i] is the
/// version node i currently runs (the sink, node 0, is assumed current and
/// its entry is ignored). \p ScriptBytesFor maps a deployed version to the
/// byte size of the script taking it to the target; every distinct stale
/// version triggers one network-wide flood of that script (all nodes relay,
/// but only the cohort applies it). Cohort floods get decorrelated loss by
/// offsetting Channel.Seed per cohort.
CampaignResult
runUpdateCampaign(const Topology &T, const std::vector<int> &NodeVersions,
                  int TargetVersion,
                  const std::function<size_t(int)> &ScriptBytesFor,
                  const PacketFormat &Fmt = PacketFormat(),
                  const Mica2Power &Power = Mica2Power(),
                  const RadioChannel &Channel = RadioChannel());

} // namespace ucc

#endif // UCC_NET_NETWORK_H
