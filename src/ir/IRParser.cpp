//===- ir/IRParser.cpp ---------------------------------------------------------==//

#include "ir/IRParser.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace ucc;

namespace {

/// Splits text into trimmed lines, remembering 1-based line numbers.
struct Line {
  std::string Text;
  unsigned Number;
};

std::vector<Line> splitLines(const std::string &Text) {
  std::vector<Line> Lines;
  unsigned Number = 1;
  size_t At = 0;
  while (At <= Text.size()) {
    size_t End = Text.find('\n', At);
    if (End == std::string::npos)
      End = Text.size();
    std::string L = Text.substr(At, End - At);
    size_t First = L.find_first_not_of(" \t");
    size_t Last = L.find_last_not_of(" \t\r");
    if (First != std::string::npos)
      Lines.push_back({L.substr(First, Last - First + 1), Number});
    ++Number;
    At = End + 1;
  }
  return Lines;
}

/// Cursor over the tokens of one line.
class LineCursor {
public:
  LineCursor(const Line &L, DiagnosticEngine &Diag)
      : Text(L.Text), Number(L.Number), Diag(Diag) {}

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool done() {
    skipSpace();
    return Pos >= Text.size();
  }

  bool accept(const std::string &Token) {
    skipSpace();
    if (Text.compare(Pos, Token.size(), Token) != 0)
      return false;
    Pos += Token.size();
    return true;
  }

  bool expect(const std::string &Token, const char *What) {
    if (accept(Token))
      return true;
    error(format("expected '%s' %s", Token.c_str(), What));
    return false;
  }

  /// Reads an identifier ([A-Za-z0-9_.]+).
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.'))
      ++Pos;
    if (Pos == Start)
      error("expected an identifier");
    return Text.substr(Start, Pos - Start);
  }

  /// Reads a (possibly negative) integer.
  long long integer() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start) {
      error("expected a number");
      return 0;
    }
    return std::atoll(Text.substr(Start, Pos - Start).c_str());
  }

  /// Reads a `%name.N` or `%N` virtual-register token; returns its id.
  VReg vreg() {
    if (!expect("%", "before a virtual register"))
      return 0;
    std::string Token = ident();
    // The id is the digits after the last '.', or the whole token.
    size_t Dot = Token.rfind('.');
    std::string IdPart =
        Dot == std::string::npos ? Token : Token.substr(Dot + 1);
    bool AllDigits = !IdPart.empty();
    for (char C : IdPart)
      AllDigits &= std::isdigit(static_cast<unsigned char>(C)) != 0;
    if (!AllDigits) {
      error(format("bad virtual register token '%%%s'", Token.c_str()));
      return 0;
    }
    LastVRegName = Dot == std::string::npos ? "" : Token.substr(0, Dot);
    return std::atoi(IdPart.c_str());
  }

  void error(const std::string &Message) {
    Diag.error({Number, static_cast<unsigned>(Pos + 1)}, Message);
  }

  std::string LastVRegName;

private:
  const std::string &Text;
  unsigned Number;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
};

class IRParserImpl {
public:
  IRParserImpl(const std::string &Text, DiagnosticEngine &Diag)
      : Lines(splitLines(Text)), Diag(Diag) {}

  Module run() {
    // Pre-pass: register every function and global name so forward
    // references (calls, loads) resolve.
    for (const Line &L : Lines) {
      if (L.Text.rfind("func @", 0) == 0) {
        Function F;
        F.Name = nameAfter(L.Text, "func @");
        M.Functions.push_back(std::move(F));
      } else if (L.Text.rfind("global @", 0) == 0) {
        GlobalVar G;
        G.Name = nameAfter(L.Text, "global @");
        M.Globals.push_back(std::move(G));
      }
    }

    size_t FnCounter = 0;
    for (At = 0; At < Lines.size(); ++At) {
      const Line &L = Lines[At];
      if (L.Text.rfind("global @", 0) == 0) {
        parseGlobal(L);
      } else if (L.Text.rfind("func @", 0) == 0) {
        parseFunction(FnCounter++);
      } else {
        Diag.error({L.Number, 1},
                   format("unexpected top-level line '%s'",
                          L.Text.c_str()));
      }
      if (Diag.hasErrors())
        break;
    }
    M.EntryFunc = M.findFunction("main");
    return std::move(M);
  }

private:
  static std::string nameAfter(const std::string &Text,
                               const std::string &Prefix) {
    size_t Start = Prefix.size();
    size_t End = Start;
    while (End < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[End])) ||
            Text[End] == '_'))
      ++End;
    return Text.substr(Start, End - Start);
  }

  void parseGlobal(const Line &L) {
    LineCursor C(L, Diag);
    C.expect("global", "at global declaration");
    C.expect("@", "before global name");
    std::string Name = C.ident();
    int Idx = M.findGlobal(Name);
    GlobalVar &G = M.Globals[static_cast<size_t>(Idx)];
    C.expect("[", "before global size");
    G.SizeWords = static_cast<int>(C.integer());
    C.expect("]", "after global size");
    if (C.accept("=")) {
      C.expect("{", "before initializer list");
      if (!C.accept("}")) {
        do {
          G.Init.push_back(static_cast<int16_t>(C.integer()));
        } while (C.accept(","));
        C.expect("}", "after initializer list");
      }
    }
  }

  void parseFunction(size_t FnIdx) {
    Function &F = M.Functions[FnIdx];
    {
      LineCursor C(Lines[At], Diag);
      C.expect("func", "at function");
      C.expect("@", "before function name");
      C.ident(); // name (already registered)
      C.expect("(", "before parameters");
      if (!C.accept(")")) {
        do {
          VReg P = C.vreg();
          F.Params.push_back(P);
          noteVReg(F, P, C.LastVRegName);
        } while (C.accept(","));
        C.expect(")", "after parameters");
      }
      C.expect("{", "to open function body");
    }

    // Pre-scan the body for block labels so branches resolve forward.
    std::map<std::string, int> BlockIdx;
    for (size_t Look = At + 1;
         Look < Lines.size() && Lines[Look].Text != "}"; ++Look) {
      const std::string &T = Lines[Look].Text;
      if (T.size() > 1 && T[0] == '.' && T.back() == ':') {
        std::string Label = T.substr(1, T.size() - 2);
        BlockIdx[Label] = F.makeBlock(Label);
      }
    }

    int CurBB = -1;
    for (++At; At < Lines.size(); ++At) {
      const Line &L = Lines[At];
      if (L.Text == "}")
        return;
      if (L.Text[0] == '.' && L.Text.back() == ':') {
        CurBB = BlockIdx[L.Text.substr(1, L.Text.size() - 2)];
        continue;
      }
      if (L.Text.rfind("frame $", 0) == 0) {
        LineCursor C(L, Diag);
        C.expect("frame", "at frame declaration");
        C.expect("$", "before frame name");
        std::string Name = C.ident();
        C.expect("[", "before frame size");
        int Size = static_cast<int>(C.integer());
        C.expect("]", "after frame size");
        F.makeFrameObject(Name, Size);
        continue;
      }
      if (CurBB < 0) {
        Diag.error({L.Number, 1}, "instruction before any block label");
        return;
      }
      Instr I = parseInstr(F, BlockIdx, L);
      if (Diag.hasErrors())
        return;
      F.Blocks[static_cast<size_t>(CurBB)].Instrs.push_back(std::move(I));
    }
    Diag.error({Lines.back().Number, 1}, "missing '}' at end of function");
  }

  void noteVReg(Function &F, VReg R, const std::string &Name) {
    while (F.NumVRegs <= R)
      F.makeVReg();
    if (!Name.empty())
      F.VRegNames[static_cast<size_t>(R)] = Name;
  }

  int blockRef(LineCursor &C, const std::map<std::string, int> &BlockIdx) {
    C.expect(".", "before block label");
    std::string Label = C.ident();
    auto It = BlockIdx.find(Label);
    if (It == BlockIdx.end()) {
      C.error(format("unknown block '.%s'", Label.c_str()));
      return 0;
    }
    return It->second;
  }

  int globalRef(LineCursor &C) {
    C.expect("@", "before global name");
    std::string Name = C.ident();
    int Idx = M.findGlobal(Name);
    if (Idx < 0)
      C.error(format("unknown global '@%s'", Name.c_str()));
    return std::max(0, Idx);
  }

  int slotRef(Function &F, LineCursor &C) {
    C.expect("$", "before frame name");
    std::string Name = C.ident();
    for (size_t K = 0; K < F.FrameObjects.size(); ++K)
      if (F.FrameObjects[K].Name == Name)
        return static_cast<int>(K);
    C.error(format("unknown frame object '$%s'", Name.c_str()));
    return 0;
  }

  VReg readVReg(Function &F, LineCursor &C) {
    VReg R = C.vreg();
    noteVReg(F, R, C.LastVRegName);
    return R;
  }

  Instr parseInstr(Function &F, const std::map<std::string, int> &BlockIdx,
                   const Line &L) {
    LineCursor C(L, Diag);
    Instr I;
    I.Loc = SourceLoc{L.Number, 1};

    // Destination form: `%d = <op> ...`.
    if (L.Text[0] == '%') {
      I.Dst = readVReg(F, C);
      C.expect("=", "after destination");
      std::string Op = C.ident();
      if (Op == "const") {
        I.Op = Opcode::Const;
        I.Imm = C.integer();
        return I;
      }
      if (Op == "mov") {
        I.Op = Opcode::Mov;
        I.Srcs = {readVReg(F, C)};
        return I;
      }
      if (Op == "neg" || Op == "not") {
        I.Op = Opcode::Un;
        I.UnK = Op == "neg" ? UnKind::Neg : UnKind::Not;
        I.Srcs = {readVReg(F, C)};
        return I;
      }
      if (Op == "loadg" || Op == "loadf") {
        I.Op = Op == "loadg" ? Opcode::LoadG : Opcode::LoadF;
        if (I.Op == Opcode::LoadG)
          I.Global = globalRef(C);
        else
          I.Slot = slotRef(F, C);
        if (C.accept("[")) {
          I.Srcs = {readVReg(F, C)};
          C.expect("]", "after index");
        }
        return I;
      }
      if (Op == "call")
        return parseCall(F, C, I);
      if (Op == "in") {
        I.Op = Opcode::In;
        I.Imm = C.integer();
        return I;
      }
      // Binary operators by mnemonic.
      static const std::map<std::string, BinKind> BinOps = {
          {"add", BinKind::Add}, {"sub", BinKind::Sub},
          {"mul", BinKind::Mul}, {"div", BinKind::Div},
          {"rem", BinKind::Rem}, {"and", BinKind::And},
          {"or", BinKind::Or},   {"xor", BinKind::Xor},
          {"shl", BinKind::Shl}, {"shr", BinKind::Shr}};
      auto It = BinOps.find(Op);
      if (It != BinOps.end()) {
        I.Op = Opcode::Bin;
        I.BinK = It->second;
        VReg A = readVReg(F, C);
        C.expect(",", "between operands");
        VReg B = readVReg(F, C);
        I.Srcs = {A, B};
        return I;
      }
      C.error(format("unknown operation '%s'", Op.c_str()));
      return I;
    }

    // Statement forms.
    std::string Op = C.ident();
    if (Op == "storeg" || Op == "storef") {
      I.Op = Op == "storeg" ? Opcode::StoreG : Opcode::StoreF;
      if (I.Op == Opcode::StoreG)
        I.Global = globalRef(C);
      else
        I.Slot = slotRef(F, C);
      VReg Index = NoVReg;
      if (C.accept("[")) {
        Index = readVReg(F, C);
        C.expect("]", "after index");
      }
      C.expect(",", "before stored value");
      I.Srcs = {readVReg(F, C)};
      if (Index != NoVReg)
        I.Srcs.push_back(Index);
      return I;
    }
    if (Op == "call") {
      Instr Call;
      Call.Loc = I.Loc;
      return parseCall(F, C, Call);
    }
    if (Op == "br") {
      I.Op = Opcode::Br;
      I.TrueBB = blockRef(C, BlockIdx);
      return I;
    }
    if (Op == "condbr") {
      I.Op = Opcode::CondBr;
      static const std::map<std::string, CmpPred> Preds = {
          {"eq", CmpPred::EQ}, {"ne", CmpPred::NE}, {"lt", CmpPred::LT},
          {"le", CmpPred::LE}, {"gt", CmpPred::GT}, {"ge", CmpPred::GE}};
      std::string Pred = C.ident();
      auto It = Preds.find(Pred);
      if (It == Preds.end())
        C.error(format("unknown predicate '%s'", Pred.c_str()));
      else
        I.PredK = It->second;
      VReg A = readVReg(F, C);
      C.expect(",", "between compare operands");
      VReg B = readVReg(F, C);
      I.Srcs = {A, B};
      C.expect(",", "before true target");
      I.TrueBB = blockRef(C, BlockIdx);
      C.expect(",", "before false target");
      I.FalseBB = blockRef(C, BlockIdx);
      return I;
    }
    if (Op == "ret") {
      I.Op = Opcode::Ret;
      if (!C.done())
        I.Srcs = {readVReg(F, C)};
      return I;
    }
    if (Op == "out") {
      I.Op = Opcode::Out;
      I.Imm = C.integer();
      C.expect(",", "before output value");
      I.Srcs = {readVReg(F, C)};
      return I;
    }
    if (Op == "halt") {
      I.Op = Opcode::Halt;
      return I;
    }
    C.error(format("unknown statement '%s'", Op.c_str()));
    return I;
  }

  Instr parseCall(Function &F, LineCursor &C, Instr I) {
    I.Op = Opcode::Call;
    C.expect("@", "before callee name");
    std::string Name = C.ident();
    I.Callee = M.findFunction(Name);
    if (I.Callee < 0)
      C.error(format("unknown function '@%s'", Name.c_str()));
    C.expect("(", "before call arguments");
    if (!C.accept(")")) {
      do {
        I.Srcs.push_back(readVReg(F, C));
      } while (C.accept(","));
      C.expect(")", "after call arguments");
    }
    return I;
  }

  std::vector<Line> Lines;
  DiagnosticEngine &Diag;
  Module M;
  size_t At = 0;
};

} // namespace

Module ucc::parseIR(const std::string &Text, DiagnosticEngine &Diag) {
  return IRParserImpl(Text, Diag).run();
}
