//===- ir/Verifier.h - structural IR validity checks ----------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification for IR modules. Every pipeline stage that builds
/// or mutates IR runs the verifier in tests; pipeline drivers assert on it.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_IR_VERIFIER_H
#define UCC_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ucc {

struct Module;

/// Checks \p M for structural validity. Returns a list of human-readable
/// problem descriptions; an empty result means the module is well-formed.
///
/// Checked invariants:
///  * every block ends in exactly one terminator, and terminators appear
///    only at block ends;
///  * all block / global / frame-slot / callee / vreg indices are in range;
///  * operand counts match opcodes;
///  * call argument counts match callee parameter counts;
///  * the entry function index is valid if set.
std::vector<std::string> verifyModule(const Module &M);

/// Convenience: true when verifyModule() reports no problems.
bool moduleIsValid(const Module &M);

} // namespace ucc

#endif // UCC_IR_VERIFIER_H
