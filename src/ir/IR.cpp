//===- ir/IR.cpp -----------------------------------------------------------==//

#include "ir/IR.h"

#include "support/Format.h"

using namespace ucc;

std::vector<int> BasicBlock::successors() const {
  if (Instrs.empty())
    return {};
  const Instr &T = Instrs.back();
  switch (T.Op) {
  case Opcode::Br:
    return {T.TrueBB};
  case Opcode::CondBr:
    return {T.TrueBB, T.FalseBB};
  default:
    return {};
  }
}

int Function::instrCount() const {
  int N = 0;
  for (const BasicBlock &BB : Blocks)
    N += static_cast<int>(BB.Instrs.size());
  return N;
}

int Module::findFunction(const std::string &Name) const {
  for (size_t I = 0, E = Functions.size(); I != E; ++I)
    if (Functions[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

int Module::findGlobal(const std::string &Name) const {
  for (size_t I = 0, E = Globals.size(); I != E; ++I)
    if (Globals[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

const char *ucc::binKindName(BinKind Op) {
  switch (Op) {
  case BinKind::Add:
    return "add";
  case BinKind::Sub:
    return "sub";
  case BinKind::Mul:
    return "mul";
  case BinKind::Div:
    return "div";
  case BinKind::Rem:
    return "rem";
  case BinKind::And:
    return "and";
  case BinKind::Or:
    return "or";
  case BinKind::Xor:
    return "xor";
  case BinKind::Shl:
    return "shl";
  case BinKind::Shr:
    return "shr";
  }
  return "?";
}

const char *ucc::unKindName(UnKind Op) {
  switch (Op) {
  case UnKind::Neg:
    return "neg";
  case UnKind::Not:
    return "not";
  }
  return "?";
}

const char *ucc::cmpPredName(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return "eq";
  case CmpPred::NE:
    return "ne";
  case CmpPred::LT:
    return "lt";
  case CmpPred::LE:
    return "le";
  case CmpPred::GT:
    return "gt";
  case CmpPred::GE:
    return "ge";
  }
  return "?";
}

const char *ucc::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Mov:
    return "mov";
  case Opcode::Bin:
    return "bin";
  case Opcode::Un:
    return "un";
  case Opcode::LoadG:
    return "loadg";
  case Opcode::StoreG:
    return "storeg";
  case Opcode::LoadF:
    return "loadf";
  case Opcode::StoreF:
    return "storef";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::In:
    return "in";
  case Opcode::Out:
    return "out";
  case Opcode::Halt:
    return "halt";
  }
  return "?";
}

int16_t ucc::evalBin(BinKind Op, int16_t A, int16_t B) {
  int32_t X = A, Y = B;
  int32_t R = 0;
  switch (Op) {
  case BinKind::Add:
    R = X + Y;
    break;
  case BinKind::Sub:
    R = X - Y;
    break;
  case BinKind::Mul:
    R = X * Y;
    break;
  case BinKind::Div:
    R = (Y == 0) ? 0 : X / Y;
    break;
  case BinKind::Rem:
    R = (Y == 0) ? 0 : X % Y;
    break;
  case BinKind::And:
    R = X & Y;
    break;
  case BinKind::Or:
    R = X | Y;
    break;
  case BinKind::Xor:
    R = X ^ Y;
    break;
  case BinKind::Shl:
    R = X << (Y & 15);
    break;
  case BinKind::Shr:
    R = X >> (Y & 15);
    break;
  }
  return static_cast<int16_t>(R);
}

int16_t ucc::evalUn(UnKind Op, int16_t A) {
  switch (Op) {
  case UnKind::Neg:
    return static_cast<int16_t>(-static_cast<int32_t>(A));
  case UnKind::Not:
    return static_cast<int16_t>(~A);
  }
  return 0;
}

bool ucc::evalCmp(CmpPred Pred, int16_t A, int16_t B) {
  switch (Pred) {
  case CmpPred::EQ:
    return A == B;
  case CmpPred::NE:
    return A != B;
  case CmpPred::LT:
    return A < B;
  case CmpPred::LE:
    return A <= B;
  case CmpPred::GT:
    return A > B;
  case CmpPred::GE:
    return A >= B;
  }
  return false;
}
