//===- ir/IR.h - mid-level three-address IR -------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-level intermediate representation the UCC pipeline works on.
///
/// Deliberately a non-SSA, three-address IR over virtual registers: the
/// paper's update-conscious register-allocation model (section 3) is stated
/// in terms of variables with definition points, use points and last uses,
/// which maps 1:1 onto this representation. Instructions are plain structs
/// (no class hierarchy): the differ, the serializer and the chunker all want
/// to treat instructions as comparable values.
///
/// All scalar values are 16-bit signed integers (the SAVR machine word, see
/// DESIGN.md section 4 for the substitution rationale). Local arrays live in
/// frame objects; globals live in the module data segment.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_IR_IR_H
#define UCC_IR_IR_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// A virtual register id. Negative means "none".
using VReg = int;
constexpr VReg NoVReg = -1;

/// IR operation codes.
enum class Opcode {
  Const,  ///< Dst = Imm
  Mov,    ///< Dst = Src0
  Bin,    ///< Dst = Src0 <BinK> Src1
  Un,     ///< Dst = <UnK> Src0
  LoadG,  ///< Dst = Global[Src0?]            (Src0 optional index)
  StoreG, ///< Global[Src1?] = Src0           (Src1 optional index)
  LoadF,  ///< Dst = Frame[Slot][Src0?]
  StoreF, ///< Frame[Slot][Src1?] = Src0
  Call,   ///< Dst? = call Callee(Srcs...)
  Br,     ///< goto TrueBB
  CondBr, ///< if (Src0 <PredK> Src1) goto TrueBB else FalseBB
  Ret,    ///< return Src0?
  In,     ///< Dst = port[Imm]
  Out,    ///< port[Imm] = Src0
  Halt    ///< stop the node
};

/// Binary operators for Opcode::Bin.
enum class BinKind {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr ///< arithmetic shift right (values are signed 16-bit)
};

/// Unary operators for Opcode::Un.
enum class UnKind { Neg, Not };

/// Comparison predicates for Opcode::CondBr (signed).
enum class CmpPred { EQ, NE, LT, LE, GT, GE };

/// One IR instruction. Which fields are meaningful depends on Op; the
/// accessors below and the verifier encode the exact contract.
struct Instr {
  Opcode Op = Opcode::Halt;
  BinKind BinK = BinKind::Add;
  UnKind UnK = UnKind::Neg;
  CmpPred PredK = CmpPred::EQ;

  VReg Dst = NoVReg;
  std::vector<VReg> Srcs; ///< value operands, in positional order
  int64_t Imm = 0;        ///< Const immediate / In/Out port number
  int Global = -1;        ///< global index for LoadG/StoreG
  int Slot = -1;          ///< frame object index for LoadF/StoreF
  int Callee = -1;        ///< function index for Call
  int TrueBB = -1;        ///< Br/CondBr target block index
  int FalseBB = -1;       ///< CondBr fall-through block index
  SourceLoc Loc;

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret ||
           Op == Opcode::Halt;
  }

  bool hasDst() const { return Dst != NoVReg; }
};

/// A basic block: a straight-line run of instructions ending in exactly one
/// terminator. Blocks are identified by their index in Function::Blocks.
struct BasicBlock {
  std::string Name;
  std::vector<Instr> Instrs;

  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }

  /// Successor block indices of this block's terminator.
  std::vector<int> successors() const;
};

/// A local frame object (scalar spill homes are added later by codegen; at
/// the IR level frame objects are local arrays).
struct FrameObject {
  std::string Name;
  int SizeWords = 1;
};

/// A function: parameters are virtual registers defined on entry.
struct Function {
  std::string Name;
  std::vector<VReg> Params;
  std::vector<BasicBlock> Blocks; ///< Blocks[0] is the entry block
  std::vector<FrameObject> FrameObjects;
  int NumVRegs = 0;                  ///< virtual register ids are [0, NumVRegs)
  std::vector<std::string> VRegNames; ///< optional debug names per vreg

  VReg makeVReg(const std::string &Name = "") {
    VRegNames.push_back(Name);
    return NumVRegs++;
  }

  int makeBlock(const std::string &Name) {
    Blocks.push_back(BasicBlock{Name, {}});
    return static_cast<int>(Blocks.size()) - 1;
  }

  int makeFrameObject(const std::string &Name, int SizeWords) {
    FrameObjects.push_back(FrameObject{Name, SizeWords});
    return static_cast<int>(FrameObjects.size()) - 1;
  }

  /// Total number of instructions across all blocks.
  int instrCount() const;

  const std::string &vregName(VReg R) const {
    assert(R >= 0 && R < NumVRegs && "vreg out of range");
    return VRegNames[static_cast<size_t>(R)];
  }
};

/// A module-level global scalar or array.
struct GlobalVar {
  std::string Name;
  int SizeWords = 1;
  std::vector<int16_t> Init; ///< empty means zero-initialized
};

/// A whole program: globals + functions. Function 0 need not be the entry;
/// EntryFunc names the function the node starts executing ("main").
struct Module {
  std::vector<GlobalVar> Globals;
  std::vector<Function> Functions;
  int EntryFunc = -1;

  int findFunction(const std::string &Name) const;
  int findGlobal(const std::string &Name) const;

  /// Renders the module as human-readable text (tests and debugging).
  std::string print() const;
};

/// Returns a mnemonic for \p Op ("add", "shr", ...).
const char *binKindName(BinKind Op);
/// Returns a mnemonic for \p Op ("neg", "not").
const char *unKindName(UnKind Op);
/// Returns a mnemonic for \p Pred ("eq", "lt", ...).
const char *cmpPredName(CmpPred Pred);
/// Returns a mnemonic for \p Op ("const", "bin", ...).
const char *opcodeName(Opcode Op);

/// Evaluates `A <Op> B` with 16-bit wrapping semantics (division by zero
/// yields 0, matching the SAVR simulator).
int16_t evalBin(BinKind Op, int16_t A, int16_t B);
/// Evaluates `<Op> A` with 16-bit semantics.
int16_t evalUn(UnKind Op, int16_t A);
/// Evaluates `A <Pred> B` over signed 16-bit values.
bool evalCmp(CmpPred Pred, int16_t A, int16_t B);

} // namespace ucc

#endif // UCC_IR_IR_H
