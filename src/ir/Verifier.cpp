//===- ir/Verifier.cpp -----------------------------------------------------==//

#include "ir/Verifier.h"

#include "ir/IR.h"
#include "support/Format.h"

using namespace ucc;

namespace {

/// Expected value-operand count per opcode; -1 means variadic (Call) and -2
/// means "0 or 1" (Ret) / "1 or 2" (indexed memory ops handled specially).
struct OperandSpec {
  int MinSrcs;
  int MaxSrcs;
  bool NeedsDst;
};

OperandSpec specFor(const Instr &I) {
  switch (I.Op) {
  case Opcode::Const:
    return {0, 0, true};
  case Opcode::Mov:
    return {1, 1, true};
  case Opcode::Bin:
    return {2, 2, true};
  case Opcode::Un:
    return {1, 1, true};
  case Opcode::LoadG:
  case Opcode::LoadF:
    return {0, 1, true};
  case Opcode::StoreG:
  case Opcode::StoreF:
    return {1, 2, false};
  case Opcode::Call:
    return {0, 4, false}; // dst optional; at most 4 register args
  case Opcode::Br:
    return {0, 0, false};
  case Opcode::CondBr:
    return {2, 2, false};
  case Opcode::Ret:
    return {0, 1, false};
  case Opcode::In:
    return {0, 0, true};
  case Opcode::Out:
    return {1, 1, false};
  case Opcode::Halt:
    return {0, 0, false};
  }
  return {0, 0, false};
}

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    if (M.EntryFunc < -1 ||
        M.EntryFunc >= static_cast<int>(M.Functions.size()))
      problem("entry function index %d out of range", M.EntryFunc);
    for (size_t I = 0; I < M.Functions.size(); ++I)
      checkFunction(static_cast<int>(I));
    return std::move(Problems);
  }

private:
  void problem(const char *Fmt, ...) __attribute__((format(printf, 2, 3))) {
    va_list Args;
    va_start(Args, Fmt);
    std::string Msg = Context + formatv(Fmt, Args);
    va_end(Args);
    Problems.push_back(std::move(Msg));
  }

  void checkFunction(int FnIdx) {
    const Function &F = M.Functions[static_cast<size_t>(FnIdx)];
    Context = format("@%s: ", F.Name.c_str());
    if (F.Blocks.empty()) {
      problem("function has no blocks");
      return;
    }
    if (F.Params.size() > 4)
      problem("more than 4 parameters (%zu)", F.Params.size());
    for (VReg P : F.Params)
      checkVReg(F, P, "parameter");

    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      Context = format("@%s/.%s: ", F.Name.c_str(), BB.Name.c_str());
      if (BB.Instrs.empty() || !BB.Instrs.back().isTerminator()) {
        problem("block does not end in a terminator");
        continue;
      }
      for (size_t K = 0; K < BB.Instrs.size(); ++K) {
        const Instr &I = BB.Instrs[K];
        if (I.isTerminator() && K + 1 != BB.Instrs.size())
          problem("terminator '%s' in the middle of a block", opcodeName(I.Op));
        checkInstr(F, I);
      }
    }
  }

  void checkVReg(const Function &F, VReg R, const char *What) {
    if (R < 0 || R >= F.NumVRegs)
      problem("%s vreg %d out of range [0, %d)", What, R, F.NumVRegs);
  }

  void checkBlockRef(const Function &F, int BB) {
    if (BB < 0 || BB >= static_cast<int>(F.Blocks.size()))
      problem("block reference %d out of range", BB);
  }

  void checkInstr(const Function &F, const Instr &I) {
    OperandSpec Spec = specFor(I);
    int NSrcs = static_cast<int>(I.Srcs.size());
    if (NSrcs < Spec.MinSrcs || NSrcs > Spec.MaxSrcs)
      problem("'%s' has %d operands, expected %d..%d", opcodeName(I.Op),
              NSrcs, Spec.MinSrcs, Spec.MaxSrcs);
    if (Spec.NeedsDst && !I.hasDst())
      problem("'%s' requires a destination", opcodeName(I.Op));
    if (I.hasDst())
      checkVReg(F, I.Dst, "destination");
    for (VReg S : I.Srcs)
      checkVReg(F, S, "source");

    switch (I.Op) {
    case Opcode::LoadG:
    case Opcode::StoreG:
      if (I.Global < 0 || I.Global >= static_cast<int>(M.Globals.size()))
        problem("global index %d out of range", I.Global);
      break;
    case Opcode::LoadF:
    case Opcode::StoreF:
      if (I.Slot < 0 || I.Slot >= static_cast<int>(F.FrameObjects.size()))
        problem("frame slot %d out of range", I.Slot);
      break;
    case Opcode::Call: {
      if (I.Callee < 0 || I.Callee >= static_cast<int>(M.Functions.size())) {
        problem("callee index %d out of range", I.Callee);
        break;
      }
      const Function &Callee = M.Functions[static_cast<size_t>(I.Callee)];
      if (I.Srcs.size() != Callee.Params.size())
        problem("call to @%s passes %zu args, expected %zu",
                Callee.Name.c_str(), I.Srcs.size(), Callee.Params.size());
      break;
    }
    case Opcode::Br:
      checkBlockRef(F, I.TrueBB);
      break;
    case Opcode::CondBr:
      checkBlockRef(F, I.TrueBB);
      checkBlockRef(F, I.FalseBB);
      break;
    default:
      break;
    }
  }

  const Module &M;
  std::string Context;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> ucc::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}

bool ucc::moduleIsValid(const Module &M) { return verifyModule(M).empty(); }
