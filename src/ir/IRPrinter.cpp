//===- ir/IRPrinter.cpp - textual rendering of IR modules -----------------==//

#include "ir/IR.h"
#include "support/Format.h"

using namespace ucc;

namespace {

std::string vregStr(const Function &F, VReg R) {
  if (R == NoVReg)
    return "<none>";
  const std::string &Name = F.vregName(R);
  if (!Name.empty())
    return format("%%%s.%d", Name.c_str(), R);
  return format("%%%d", R);
}

std::string instrStr(const Module &M, const Function &F, const Instr &I) {
  auto Src = [&](size_t Idx) { return vregStr(F, I.Srcs[Idx]); };
  switch (I.Op) {
  case Opcode::Const:
    return format("%s = const %lld", vregStr(F, I.Dst).c_str(),
                  static_cast<long long>(I.Imm));
  case Opcode::Mov:
    return format("%s = mov %s", vregStr(F, I.Dst).c_str(), Src(0).c_str());
  case Opcode::Bin:
    return format("%s = %s %s, %s", vregStr(F, I.Dst).c_str(),
                  binKindName(I.BinK), Src(0).c_str(), Src(1).c_str());
  case Opcode::Un:
    return format("%s = %s %s", vregStr(F, I.Dst).c_str(), unKindName(I.UnK),
                  Src(0).c_str());
  case Opcode::LoadG: {
    std::string Idx = I.Srcs.empty() ? "" : format("[%s]", Src(0).c_str());
    return format("%s = loadg @%s%s", vregStr(F, I.Dst).c_str(),
                  M.Globals[I.Global].Name.c_str(), Idx.c_str());
  }
  case Opcode::StoreG: {
    std::string Idx = I.Srcs.size() < 2 ? "" : format("[%s]", Src(1).c_str());
    return format("storeg @%s%s, %s", M.Globals[I.Global].Name.c_str(),
                  Idx.c_str(), Src(0).c_str());
  }
  case Opcode::LoadF: {
    std::string Idx = I.Srcs.empty() ? "" : format("[%s]", Src(0).c_str());
    return format("%s = loadf $%s%s", vregStr(F, I.Dst).c_str(),
                  F.FrameObjects[I.Slot].Name.c_str(), Idx.c_str());
  }
  case Opcode::StoreF: {
    std::string Idx = I.Srcs.size() < 2 ? "" : format("[%s]", Src(1).c_str());
    return format("storef $%s%s, %s", F.FrameObjects[I.Slot].Name.c_str(),
                  Idx.c_str(), Src(0).c_str());
  }
  case Opcode::Call: {
    std::string Args;
    for (size_t K = 0; K < I.Srcs.size(); ++K) {
      if (K)
        Args += ", ";
      Args += Src(K);
    }
    std::string Head =
        I.hasDst() ? format("%s = ", vregStr(F, I.Dst).c_str()) : "";
    return format("%scall @%s(%s)", Head.c_str(),
                  M.Functions[I.Callee].Name.c_str(), Args.c_str());
  }
  case Opcode::Br:
    return format("br .%s", F.Blocks[I.TrueBB].Name.c_str());
  case Opcode::CondBr:
    return format("condbr %s %s, %s, .%s, .%s", cmpPredName(I.PredK),
                  Src(0).c_str(), Src(1).c_str(),
                  F.Blocks[I.TrueBB].Name.c_str(),
                  F.Blocks[I.FalseBB].Name.c_str());
  case Opcode::Ret:
    return I.Srcs.empty() ? std::string("ret")
                          : format("ret %s", Src(0).c_str());
  case Opcode::In:
    return format("%s = in %lld", vregStr(F, I.Dst).c_str(),
                  static_cast<long long>(I.Imm));
  case Opcode::Out:
    return format("out %lld, %s", static_cast<long long>(I.Imm),
                  Src(0).c_str());
  case Opcode::Halt:
    return "halt";
  }
  return "<bad instr>";
}

} // namespace

std::string Module::print() const {
  std::string Out;
  for (const GlobalVar &G : Globals) {
    Out += format("global @%s[%d]", G.Name.c_str(), G.SizeWords);
    if (!G.Init.empty()) {
      Out += " = {";
      for (size_t I = 0; I < G.Init.size(); ++I) {
        if (I)
          Out += ", ";
        Out += format("%d", G.Init[I]);
      }
      Out += "}";
    }
    Out += "\n";
  }
  for (const Function &F : Functions) {
    std::string Params;
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        Params += ", ";
      Params += vregStr(F, F.Params[I]);
    }
    Out += format("\nfunc @%s(%s) {\n", F.Name.c_str(), Params.c_str());
    for (const FrameObject &FO : F.FrameObjects)
      Out += format("  frame $%s[%d]\n", FO.Name.c_str(), FO.SizeWords);
    for (const BasicBlock &BB : F.Blocks) {
      Out += format(".%s:\n", BB.Name.c_str());
      for (const Instr &I : BB.Instrs)
        Out += "  " + instrStr(*this, F, I) + "\n";
    }
    Out += "}\n";
  }
  return Out;
}
