//===- ir/IRParser.h - textual IR parsing ----------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format produced by Module::print(), so IR can be
/// written by hand in tests, dumped from one tool and re-read by another.
/// print() and parseIR() round-trip: parseIR(M.print()).print() ==
/// M.print().
///
//===----------------------------------------------------------------------===//

#ifndef UCC_IR_IRPARSER_H
#define UCC_IR_IRPARSER_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <string>

namespace ucc {

/// Parses \p Text into a module. Problems are reported to \p Diag (with
/// line numbers); the result is only meaningful when no errors were
/// raised. The entry function is the one named "main" when present.
Module parseIR(const std::string &Text, DiagnosticEngine &Diag);

} // namespace ucc

#endif // UCC_IR_IRPARSER_H
