//===- codegen/ISel.cpp -------------------------------------------------------==//

#include "codegen/ISel.h"

#include "analysis/IRAnalysis.h"
#include "support/Format.h"

#include <cassert>

using namespace ucc;

namespace {

MOp binToMOp(BinKind Op) {
  switch (Op) {
  case BinKind::Add:
    return MOp::ADD;
  case BinKind::Sub:
    return MOp::SUB;
  case BinKind::Mul:
    return MOp::MUL;
  case BinKind::Div:
    return MOp::DIV;
  case BinKind::Rem:
    return MOp::REM;
  case BinKind::And:
    return MOp::AND;
  case BinKind::Or:
    return MOp::OR;
  case BinKind::Xor:
    return MOp::XOR;
  case BinKind::Shl:
    return MOp::SHL;
  case BinKind::Shr:
    return MOp::SHR;
  }
  return MOp::NOP;
}

MOp predToBranch(CmpPred Pred) {
  switch (Pred) {
  case CmpPred::EQ:
    return MOp::BEQ;
  case CmpPred::NE:
    return MOp::BNE;
  case CmpPred::LT:
    return MOp::BLT;
  case CmpPred::LE:
    return MOp::BLE;
  case CmpPred::GT:
    return MOp::BGT;
  case CmpPred::GE:
    return MOp::BGE;
  }
  return MOp::BNE;
}

class ISelImpl {
public:
  ISelImpl(const Module &M, const Function &F) : M(M), F(F) {}

  MachineFunction run() {
    MF.Name = F.Name;
    MF.NextVReg = FirstVReg + F.NumVRegs;
    MF.VRegNames = F.VRegNames; // source names make frame homes stable
    for (const FrameObject &FO : F.FrameObjects)
      MF.makeFrameObject(FO.Name, FO.SizeWords, /*IsSpill=*/false);

    MF.Blocks.resize(F.Blocks.size());
    // Mirror block names and successors up front.
    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      MF.Blocks[B].Name = F.Blocks[B].Name;
      MF.Blocks[B].Succs = F.Blocks[B].successors();
    }

    int IRIndex = 0;
    for (size_t B = 0; B < F.Blocks.size(); ++B) {
      CurBlock = static_cast<int>(B);
      if (B == 0)
        emitPrologue();
      for (const Instr &I : F.Blocks[B].Instrs) {
        CurIRIndex = IRIndex++;
        select(I);
      }
    }
    return std::move(MF);
  }

private:
  int vregOf(VReg IRReg) const {
    assert(IRReg >= 0 && "expected a valid IR vreg");
    return FirstVReg + IRReg;
  }

  MInstr &emit(MOp Op) {
    MInstr I;
    I.Op = Op;
    I.IRIndex = CurIRIndex;
    MF.Blocks[static_cast<size_t>(CurBlock)].Instrs.push_back(I);
    return MF.Blocks[static_cast<size_t>(CurBlock)].Instrs.back();
  }

  void emitPrologue() {
    CurIRIndex = -1;
    emit(MOp::ENTER); // Imm patched after frame layout
    for (size_t K = 0; K < F.Params.size(); ++K) {
      MInstr &I = emit(MOp::MOV);
      I.A = vregOf(F.Params[K]);
      I.B = static_cast<int>(K); // physical argument register rK
    }
  }

  void select(const Instr &I) {
    switch (I.Op) {
    case Opcode::Const: {
      MInstr &MI = emit(MOp::LDI);
      MI.A = vregOf(I.Dst);
      MI.Imm = static_cast<int16_t>(I.Imm);
      return;
    }
    case Opcode::Mov: {
      MInstr &MI = emit(MOp::MOV);
      MI.A = vregOf(I.Dst);
      MI.B = vregOf(I.Srcs[0]);
      return;
    }
    case Opcode::Bin: {
      MInstr &MI = emit(binToMOp(I.BinK));
      MI.A = vregOf(I.Dst);
      MI.B = vregOf(I.Srcs[0]);
      MI.C = vregOf(I.Srcs[1]);
      return;
    }
    case Opcode::Un: {
      MInstr &MI = emit(I.UnK == UnKind::Neg ? MOp::NEG : MOp::NOTR);
      MI.A = vregOf(I.Dst);
      MI.B = vregOf(I.Srcs[0]);
      return;
    }
    case Opcode::LoadG: {
      MInstr &MI = emit(I.Srcs.empty() ? MOp::LDG : MOp::LDGX);
      MI.A = vregOf(I.Dst);
      if (!I.Srcs.empty())
        MI.B = vregOf(I.Srcs[0]);
      MI.GlobalIdx = I.Global;
      return;
    }
    case Opcode::StoreG: {
      bool Indexed = I.Srcs.size() == 2;
      MInstr &MI = emit(Indexed ? MOp::STGX : MOp::STG);
      MI.A = vregOf(I.Srcs[0]);
      if (Indexed)
        MI.B = vregOf(I.Srcs[1]);
      MI.GlobalIdx = I.Global;
      return;
    }
    case Opcode::LoadF: {
      MInstr &MI = emit(I.Srcs.empty() ? MOp::LDF : MOp::LDFX);
      MI.A = vregOf(I.Dst);
      if (!I.Srcs.empty())
        MI.B = vregOf(I.Srcs[0]);
      MI.FrameIdx = I.Slot;
      return;
    }
    case Opcode::StoreF: {
      bool Indexed = I.Srcs.size() == 2;
      MInstr &MI = emit(Indexed ? MOp::STFX : MOp::STF);
      MI.A = vregOf(I.Srcs[0]);
      if (Indexed)
        MI.B = vregOf(I.Srcs[1]);
      MI.FrameIdx = I.Slot;
      return;
    }
    case Opcode::Call: {
      assert(I.Srcs.size() <= NumArgRegs && "too many call arguments");
      for (size_t K = 0; K < I.Srcs.size(); ++K) {
        MInstr &MI = emit(MOp::MOV);
        MI.A = static_cast<int>(K);
        MI.B = vregOf(I.Srcs[K]);
      }
      MInstr &CallMI = emit(MOp::CALL);
      CallMI.Callee = I.Callee;
      if (I.hasDst()) {
        MInstr &MI = emit(MOp::MOV);
        MI.A = vregOf(I.Dst);
        MI.B = RetReg;
      }
      return;
    }
    case Opcode::Br: {
      MInstr &MI = emit(MOp::JMP);
      MI.Target = I.TrueBB;
      return;
    }
    case Opcode::CondBr: {
      MInstr &Cmp = emit(MOp::CMP);
      Cmp.A = vregOf(I.Srcs[0]);
      Cmp.B = vregOf(I.Srcs[1]);
      MInstr &Bcc = emit(predToBranch(I.PredK));
      Bcc.Target = I.TrueBB;
      MInstr &Jmp = emit(MOp::JMP);
      Jmp.Target = I.FalseBB;
      return;
    }
    case Opcode::Ret: {
      if (!I.Srcs.empty()) {
        MInstr &MI = emit(MOp::MOV);
        MI.A = RetReg;
        MI.B = vregOf(I.Srcs[0]);
      }
      emit(MOp::RET);
      return;
    }
    case Opcode::In: {
      MInstr &MI = emit(MOp::IN);
      MI.A = vregOf(I.Dst);
      MI.Imm = static_cast<int32_t>(I.Imm);
      return;
    }
    case Opcode::Out: {
      MInstr &MI = emit(MOp::OUT);
      MI.A = vregOf(I.Srcs[0]);
      MI.Imm = static_cast<int32_t>(I.Imm);
      return;
    }
    case Opcode::Halt:
      emit(MOp::HALT);
      return;
    }
  }

  const Module &M;
  const Function &F;
  MachineFunction MF;
  int CurBlock = 0;
  int CurIRIndex = -1;
};

} // namespace

MachineFunction ucc::selectFunction(const Module &M, const Function &F) {
  return ISelImpl(M, F).run();
}

MachineModule ucc::selectModule(const Module &M) {
  MachineModule MM;
  MM.EntryFunc = M.EntryFunc;
  MM.Functions.reserve(M.Functions.size());
  for (const Function &F : M.Functions)
    MM.Functions.push_back(selectFunction(M, F));
  return MM;
}

std::vector<double> ucc::machineFrequencies(const Function &F,
                                            const MachineFunction &MF) {
  std::vector<double> BlockFreq = blockFrequencies(F);

  // Map each IR statement index (block-major order) to its block.
  std::vector<int> IRIndexToBlock;
  for (size_t B = 0; B < F.Blocks.size(); ++B)
    for (size_t K = 0; K < F.Blocks[B].Instrs.size(); ++K)
      IRIndexToBlock.push_back(static_cast<int>(B));

  std::vector<double> Freq;
  Freq.reserve(static_cast<size_t>(MF.instrCount()));
  for (const MBlock &BB : MF.Blocks) {
    for (const MInstr &I : BB.Instrs) {
      double W = 1.0;
      if (I.IRIndex >= 0 &&
          I.IRIndex < static_cast<int>(IRIndexToBlock.size()))
        W = BlockFreq[static_cast<size_t>(
            IRIndexToBlock[static_cast<size_t>(I.IRIndex)])];
      Freq.push_back(W);
    }
  }
  return Freq;
}
