//===- codegen/BinaryImage.cpp ------------------------------------------------==//

#include "codegen/BinaryImage.h"

#include "support/ByteStream.h"
#include "support/Format.h"

#include <cassert>

using namespace ucc;

int BinaryImage::findFunction(const std::string &Name) const {
  for (size_t I = 0; I < Functions.size(); ++I)
    if (Functions[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

std::vector<uint32_t> BinaryImage::functionCode(int FnIdx) const {
  assert(FnIdx >= 0 && FnIdx < static_cast<int>(Functions.size()) &&
         "function index out of range");
  const FunctionSpan &S = Functions[static_cast<size_t>(FnIdx)];
  return std::vector<uint32_t>(Code.begin() + S.Start,
                               Code.begin() + S.Start + S.Count);
}

std::vector<uint8_t> BinaryImage::serialize() const {
  ByteWriter W;
  W.writeU32(0x53415652); // 'SAVR'
  W.writeI32(EntryFunc);
  W.writeU32(static_cast<uint32_t>(Functions.size()));
  for (const FunctionSpan &S : Functions) {
    W.writeString(S.Name);
    W.writeU32(S.Start);
    W.writeU32(S.Count);
  }
  W.writeU32(static_cast<uint32_t>(Code.size()));
  for (uint32_t Word : Code)
    W.writeU32(Word);
  W.writeU32(static_cast<uint32_t>(DataInit.size()));
  for (int16_t V : DataInit)
    W.writeU16(static_cast<uint16_t>(V));
  return W.take();
}

bool BinaryImage::deserialize(const std::vector<uint8_t> &Bytes,
                              BinaryImage &Out) {
  ByteReader R(Bytes);
  if (R.readU32() != 0x53415652)
    return false;
  Out.EntryFunc = R.readI32();
  uint32_t NumFns = R.readU32();
  Out.Functions.clear();
  for (uint32_t I = 0; I < NumFns && !R.hadError(); ++I) {
    FunctionSpan S;
    S.Name = R.readString();
    S.Start = R.readU32();
    S.Count = R.readU32();
    Out.Functions.push_back(std::move(S));
  }
  uint32_t NumWords = R.readU32();
  Out.Code.clear();
  for (uint32_t I = 0; I < NumWords && !R.hadError(); ++I)
    Out.Code.push_back(R.readU32());
  uint32_t NumData = R.readU32();
  Out.DataInit.clear();
  for (uint32_t I = 0; I < NumData && !R.hadError(); ++I)
    Out.DataInit.push_back(static_cast<int16_t>(R.readU16()));
  return !R.hadError() && R.atEnd();
}

std::string BinaryImage::disassemble() const {
  std::string Out;
  for (const FunctionSpan &S : Functions) {
    Out += format("%s:  ; fn @%u, %u instrs\n", S.Name.c_str(), S.Start,
                  S.Count);
    for (uint32_t K = 0; K < S.Count; ++K)
      Out += format("  %4u: %s\n", K,
                    disassembleInstr(Code[S.Start + K]).c_str());
  }
  return Out;
}

std::vector<uint32_t> ucc::encodeFunction(const MachineFunction &MF,
                                          const DataLayoutMap &DL,
                                          const FrameLayout &Frame,
                                          std::vector<int> *IRIndexOut) {
  size_t NumBlocks = MF.Blocks.size();

  // Pass 1: decide which trailing JMPs fall through to the next block.
  std::vector<std::vector<bool>> Skip(NumBlocks);
  for (size_t B = 0; B < NumBlocks; ++B) {
    const MBlock &BB = MF.Blocks[B];
    Skip[B].assign(BB.Instrs.size(), false);
    if (!BB.Instrs.empty()) {
      const MInstr &Last = BB.Instrs.back();
      if (Last.Op == MOp::JMP &&
          Last.Target == static_cast<int>(B) + 1)
        Skip[B].back() = true;
    }
  }

  // Pass 2: block start offsets after fallthrough elision.
  std::vector<uint32_t> BlockStart(NumBlocks, 0);
  uint32_t Offset = 0;
  for (size_t B = 0; B < NumBlocks; ++B) {
    BlockStart[B] = Offset;
    for (size_t K = 0; K < MF.Blocks[B].Instrs.size(); ++K)
      if (!Skip[B][K])
        ++Offset;
  }

  // Pass 3: encode.
  std::vector<uint32_t> Words;
  Words.reserve(Offset);
  for (size_t B = 0; B < NumBlocks; ++B) {
    const MBlock &BB = MF.Blocks[B];
    for (size_t K = 0; K < BB.Instrs.size(); ++K) {
      if (Skip[B][K])
        continue;
      const MInstr &I = BB.Instrs[K];
      EncodedInstr E;
      E.Op = I.Op;

      auto physA = [&]() {
        assert(isPhysReg(I.A) && "operand A must be physical by encoding");
        return static_cast<uint8_t>(I.A);
      };
      auto physB = [&]() {
        assert(isPhysReg(I.B) && "operand B must be physical by encoding");
        return static_cast<uint8_t>(I.B);
      };

      if (I.A >= 0)
        E.A = physA();
      if (I.B >= 0)
        E.B = physB();
      if (I.C >= 0) {
        assert(isPhysReg(I.C) && "operand C must be physical by encoding");
        E.Imm = static_cast<uint16_t>(I.C);
      }

      switch (I.Op) {
      case MOp::LDI:
      case MOp::IN:
      case MOp::OUT:
        E.Imm = static_cast<uint16_t>(I.Imm);
        break;
      case MOp::ENTER:
        E.Imm = static_cast<uint16_t>(Frame.FrameWords);
        break;
      case MOp::JMP:
      case MOp::BEQ:
      case MOp::BNE:
      case MOp::BLT:
      case MOp::BGE:
      case MOp::BGT:
      case MOp::BLE:
        assert(I.Target >= 0 &&
               I.Target < static_cast<int>(NumBlocks) &&
               "branch target out of range");
        E.Imm = static_cast<uint16_t>(
            BlockStart[static_cast<size_t>(I.Target)]);
        break;
      case MOp::CALL:
        assert(I.Callee >= 0 && "call without callee");
        E.Imm = static_cast<uint16_t>(I.Callee);
        break;
      case MOp::LDG:
      case MOp::STG:
      case MOp::LDGX:
      case MOp::STGX:
        assert(I.GlobalIdx >= 0 &&
               I.GlobalIdx < static_cast<int>(DL.GlobalOffsets.size()) &&
               "global index out of range");
        E.Imm = static_cast<uint16_t>(
            DL.GlobalOffsets[static_cast<size_t>(I.GlobalIdx)]);
        break;
      case MOp::LDF:
      case MOp::STF:
      case MOp::LDFX:
      case MOp::STFX:
        assert(I.FrameIdx >= 0 &&
               I.FrameIdx < static_cast<int>(Frame.Offsets.size()) &&
               "frame index out of range");
        E.Imm = static_cast<uint16_t>(
            Frame.Offsets[static_cast<size_t>(I.FrameIdx)]);
        break;
      default:
        break;
      }
      Words.push_back(E.pack());
      if (IRIndexOut)
        IRIndexOut->push_back(I.IRIndex);
    }
  }
  return Words;
}

BinaryImage ucc::encodeModule(const MachineModule &MM, const Module &M,
                              const DataLayoutMap &DL,
                              const std::vector<FrameLayout> &Frames,
                              std::vector<std::vector<int>> *IRIndexOut) {
  assert(Frames.size() == MM.Functions.size() &&
         "one frame layout per function");
  BinaryImage Img;
  Img.EntryFunc = MM.EntryFunc;

  if (IRIndexOut)
    IRIndexOut->resize(MM.Functions.size());
  for (size_t F = 0; F < MM.Functions.size(); ++F) {
    std::vector<uint32_t> Words = encodeFunction(
        MM.Functions[F], DL, Frames[F],
        IRIndexOut ? &(*IRIndexOut)[F] : nullptr);
    FunctionSpan Span;
    Span.Name = MM.Functions[F].Name;
    Span.Start = static_cast<uint32_t>(Img.Code.size());
    Span.Count = static_cast<uint32_t>(Words.size());
    Img.Functions.push_back(std::move(Span));
    Img.Code.insert(Img.Code.end(), Words.begin(), Words.end());
  }

  Img.DataInit.assign(static_cast<size_t>(DL.DataWords), 0);
  for (size_t G = 0; G < M.Globals.size(); ++G) {
    const GlobalVar &GV = M.Globals[G];
    int Base = DL.GlobalOffsets[G];
    for (size_t K = 0; K < GV.Init.size(); ++K) {
      size_t At = static_cast<size_t>(Base) + K;
      assert(At < Img.DataInit.size() && "initializer out of data segment");
      Img.DataInit[At] = GV.Init[K];
    }
  }
  return Img;
}
