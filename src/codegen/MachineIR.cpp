//===- codegen/MachineIR.cpp --------------------------------------------------==//

#include "codegen/MachineIR.h"

#include "support/Format.h"

using namespace ucc;

namespace {

/// Operand roles per opcode: which of A/B/C are written and read.
struct Roles {
  bool DefA = false;
  bool UseA = false;
  bool UseB = false;
  bool UseC = false;
};

Roles rolesFor(MOp Op) {
  switch (Op) {
  case MOp::LDI:
  case MOp::IN:
  case MOp::LDG:
  case MOp::LDF:
    return {/*DefA=*/true, false, false, false};
  case MOp::MOV:
  case MOp::NEG:
  case MOp::NOTR:
  case MOp::LDGX:
  case MOp::LDFX:
    return {/*DefA=*/true, false, /*UseB=*/true, false};
  case MOp::ADD:
  case MOp::SUB:
  case MOp::MUL:
  case MOp::DIV:
  case MOp::REM:
  case MOp::AND:
  case MOp::OR:
  case MOp::XOR:
  case MOp::SHL:
  case MOp::SHR:
    return {/*DefA=*/true, false, /*UseB=*/true, /*UseC=*/true};
  case MOp::CMP:
  case MOp::STGX:
  case MOp::STFX:
    return {false, /*UseA=*/true, /*UseB=*/true, false};
  case MOp::STG:
  case MOp::STF:
  case MOp::OUT:
    return {false, /*UseA=*/true, false, false};
  default:
    return {};
  }
}

} // namespace

void ucc::minstrDefs(const MInstr &I, RegList &Out) {
  Out.clear();
  if (rolesFor(I.Op).DefA && I.A >= 0)
    Out.push_back(I.A);
  if (mopIsCall(I.Op))
    for (int R = 0; R < NumPhysRegs; ++R)
      Out.push_back(R);
}

void ucc::minstrUses(const MInstr &I, RegList &Out) {
  Out.clear();
  Roles R = rolesFor(I.Op);
  if (R.UseA && I.A >= 0)
    Out.push_back(I.A);
  if (R.UseB && I.B >= 0)
    Out.push_back(I.B);
  if (R.UseC && I.C >= 0)
    Out.push_back(I.C);
  if (I.Op == MOp::RET)
    Out.push_back(RetReg);
  if (mopIsCall(I.Op))
    for (int K = 0; K < NumArgRegs; ++K)
      Out.push_back(K);
}

std::vector<int> ucc::minstrDefs(const MInstr &I) {
  RegList L;
  minstrDefs(I, L);
  return std::vector<int>(L.begin(), L.end());
}

std::vector<int> ucc::minstrUses(const MInstr &I) {
  RegList L;
  minstrUses(I, L);
  return std::vector<int>(L.begin(), L.end());
}

int MachineFunction::makeFrameObject(const std::string &Name, int SizeWords,
                                     bool IsSpill) {
  std::string Unique = Name;
  int Suffix = 2;
  auto taken = [&](const std::string &Candidate) {
    for (const MFrameObject &FO : FrameObjects)
      if (FO.Name == Candidate)
        return true;
    return false;
  };
  while (taken(Unique))
    Unique = Name + "." + std::to_string(Suffix++);
  FrameObjects.push_back(MFrameObject{Unique, SizeWords, IsSpill});
  return static_cast<int>(FrameObjects.size()) - 1;
}

int MachineFunction::instrCount() const {
  int N = 0;
  for (const MBlock &BB : Blocks)
    N += static_cast<int>(BB.Instrs.size());
  return N;
}

FlowGraph ucc::buildMachineFlowGraph(const MachineFunction &F) {
  FlowGraph G;
  G.NumValues = F.NextVReg;
  G.Blocks.reserve(F.Blocks.size());
  for (const MBlock &BB : F.Blocks) {
    FlowBlock FB;
    FB.Succs = BB.Succs;
    FB.Instrs.reserve(BB.Instrs.size());
    for (const MInstr &I : BB.Instrs)
      FB.Instrs.push_back(DefUse{minstrDefs(I), minstrUses(I)});
    G.Blocks.push_back(std::move(FB));
  }
  return G;
}

std::vector<LinearInstrRef> ucc::linearize(const MachineFunction &F) {
  std::vector<LinearInstrRef> Order;
  Order.reserve(static_cast<size_t>(F.instrCount()));
  for (size_t B = 0; B < F.Blocks.size(); ++B)
    for (size_t K = 0; K < F.Blocks[B].Instrs.size(); ++K)
      Order.push_back(LinearInstrRef{static_cast<int>(B),
                                     static_cast<int>(K)});
  return Order;
}

namespace {

std::string regStr(int Reg) {
  if (Reg < 0)
    return "-";
  if (isPhysReg(Reg))
    return format("r%d", Reg);
  return format("v%d", Reg - FirstVReg);
}

} // namespace

std::string MachineFunction::print() const {
  std::string Out = format("mfunc @%s {\n", Name.c_str());
  for (const MFrameObject &FO : FrameObjects)
    Out += format("  frame %s[%d]%s\n", FO.Name.c_str(), FO.SizeWords,
                  FO.IsSpill ? " (spill)" : "");
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const MBlock &BB = Blocks[B];
    Out += format(".%s:\n", BB.Name.c_str());
    for (const MInstr &I : BB.Instrs) {
      std::string Line = format("  %-6s", mopName(I.Op));
      auto addReg = [&](int R) {
        if (R >= 0)
          Line += " " + regStr(R);
      };
      addReg(I.A);
      addReg(I.B);
      addReg(I.C);
      if (I.Op == MOp::LDI || I.Op == MOp::IN || I.Op == MOp::OUT ||
          I.Op == MOp::ENTER)
        Line += format(" #%d", I.Imm);
      if (I.Target >= 0)
        Line += format(" ->bb%d", I.Target);
      if (I.Callee >= 0)
        Line += format(" fn%d", I.Callee);
      if (I.GlobalIdx >= 0)
        Line += format(" @g%d", I.GlobalIdx);
      if (I.FrameIdx >= 0)
        Line += format(" $f%d", I.FrameIdx);
      Out += Line + "\n";
    }
  }
  Out += "}\n";
  return Out;
}
