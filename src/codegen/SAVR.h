//===- codegen/SAVR.h - the simulated AVR-class target ISA ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SAVR is the reproduction's stand-in for the ATmega128L AVR core of the
/// Mica2 mote (see DESIGN.md section 4): sixteen 16-bit general-purpose
/// registers, fixed 4-byte instruction words, frame-pointer-relative
/// load/store, port-mapped I/O and an index-addressed data segment.
///
/// Register convention:
///   r0..r11  allocatable general-purpose registers (caller-saved)
///   r0..r3   argument registers; r0 also carries return values
///   r12..r15 reserved (unused by generated code; kept for ISA headroom)
///
/// Instruction word layout (little-endian 32-bit):
///   bits  0..7   opcode
///   bits  8..11  register field A
///   bits 12..15  register field B
///   bits 16..31  Imm16 (3-register ops keep register C in Imm16 bits 0..3)
///
/// Branch/jump targets are instruction indices *relative to the function
/// entry*, and CALL takes a function-table index rather than an address.
/// Both choices mean that moving a function in the image does not change
/// its encoded bytes, matching the paper's per-function diff accounting
/// (section 5.3: code shifting from neighboring functions is excluded).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CODEGEN_SAVR_H
#define UCC_CODEGEN_SAVR_H

#include <cstdint>
#include <string>

namespace ucc {

/// Number of physical registers visible to the allocators.
constexpr int NumPhysRegs = 12;
/// Argument registers r0..r3 (in order); r0 carries return values.
constexpr int NumArgRegs = 4;
constexpr int RetReg = 0;
/// Machine virtual-register ids start here; anything below is physical.
constexpr int FirstVReg = 16;

/// Returns true for physical register ids.
inline bool isPhysReg(int Reg) { return Reg >= 0 && Reg < FirstVReg; }
/// Returns true for virtual register ids.
inline bool isVirtReg(int Reg) { return Reg >= FirstVReg; }

/// SAVR opcodes.
enum class MOp : uint8_t {
  NOP = 0,
  HALT,
  LDI,  ///< A <- Imm16
  MOV,  ///< A <- B
  // Three-register ALU: A <- B op C.
  ADD,
  SUB,
  MUL,
  DIV, ///< signed; division by zero yields 0
  REM,
  AND,
  OR,
  XOR,
  SHL,
  SHR, ///< arithmetic right shift
  // Two-register ALU: A <- op B.
  NEG,
  NOTR,
  // Compare and branch (flags live only between CMP and the next branch).
  CMP, ///< compare A with B, set flags
  BEQ,
  BNE,
  BLT,
  BGE,
  BGT,
  BLE,
  JMP,
  CALL, ///< Imm16 = function-table index
  RET,
  // Data-segment access; Imm16 = word address (resolved from data layout).
  LDG,  ///< A <- data[Imm]
  STG,  ///< data[Imm] <- A
  LDGX, ///< A <- data[Imm + B]
  STGX, ///< data[Imm + B] <- A
  // Frame access; Imm16 = word offset within the current frame.
  LDF,  ///< A <- frame[Imm]
  STF,  ///< frame[Imm] <- A
  LDFX, ///< A <- frame[Imm + B]
  STFX, ///< frame[Imm + B] <- A
  // Port-mapped I/O.
  IN,  ///< A <- port[Imm]
  OUT, ///< port[Imm] <- A
  // Frame allocation; first instruction of every function.
  ENTER, ///< allocate Imm16 frame words
  NumOpcodes
};

/// Well-known I/O ports used by the workload suite and the simulator.
enum Port : int {
  PortLed = 0,       ///< LED register (low 3 bits displayed)
  PortRadioData = 1, ///< radio payload staging
  PortRadioSend = 2, ///< writing N transmits a packet of the last N words
  PortTimer = 3,     ///< reading yields the scripted timer tick count
  PortSensor = 4,    ///< reading yields the next scripted sensor sample
  PortDebug = 15     ///< writes are collected in the debug trace
};

/// Returns the mnemonic for \p Op.
const char *mopName(MOp Op);

/// Returns the cycle cost of \p Op. Branches cost an extra cycle when
/// \p Taken (the table mirrors AVR-class cores; see DESIGN.md).
int mopCycles(MOp Op, bool Taken = false);

/// True for BEQ..BLE.
bool isCondBranch(MOp Op);

/// A decoded 4-byte SAVR instruction word.
struct EncodedInstr {
  MOp Op = MOp::NOP;
  uint8_t A = 0;
  uint8_t B = 0;
  uint16_t Imm = 0;

  /// Register C of three-register ALU ops lives in Imm bits 0..3.
  uint8_t regC() const { return Imm & 0xf; }

  uint32_t pack() const {
    return static_cast<uint32_t>(Op) | (static_cast<uint32_t>(A & 0xf) << 8) |
           (static_cast<uint32_t>(B & 0xf) << 12) |
           (static_cast<uint32_t>(Imm) << 16);
  }

  static EncodedInstr unpack(uint32_t Word) {
    EncodedInstr E;
    E.Op = static_cast<MOp>(Word & 0xff);
    E.A = (Word >> 8) & 0xf;
    E.B = (Word >> 12) & 0xf;
    E.Imm = static_cast<uint16_t>(Word >> 16);
    return E;
  }
};

/// Renders one encoded instruction as assembly text.
std::string disassembleInstr(uint32_t Word);

} // namespace ucc

#endif // UCC_CODEGEN_SAVR_H
