//===- codegen/ISel.h - IR -> SAVR instruction selection ------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction selection from the mid-level IR to pre-allocation SAVR
/// machine code. Selection is 1:N and local; calls are lowered to explicit
/// argument moves into r0..r3 (the caller-saved convention both register
/// allocators then honor).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CODEGEN_ISEL_H
#define UCC_CODEGEN_ISEL_H

#include "codegen/MachineIR.h"
#include "ir/IR.h"

namespace ucc {

/// Selects machine code for every function in \p M. The result still uses
/// virtual registers; run a register allocator before encoding.
MachineModule selectModule(const Module &M);

/// Selects one function (exposed for unit tests).
MachineFunction selectFunction(const Module &M, const Function &F);

/// Per-machine-instruction execution-frequency estimates for \p MF, taken
/// from the IR block frequencies of the originating statements (the paper's
/// `freq(s)`). Index = linear instruction position.
std::vector<double> machineFrequencies(const Function &F,
                                       const MachineFunction &MF);

} // namespace ucc

#endif // UCC_CODEGEN_ISEL_H
