//===- codegen/BinaryImage.h - the deployable sensor image ----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary image a sensor node runs: encoded 4-byte SAVR instruction
/// words, a function table, and the initial data segment. This is the
/// artifact the differ compares and the edit-script patcher rewrites on the
/// "sensor" side, and the input the simulator executes.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CODEGEN_BINARYIMAGE_H
#define UCC_CODEGEN_BINARYIMAGE_H

#include "codegen/MachineIR.h"
#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// Location of one function's code within the image.
struct FunctionSpan {
  std::string Name;
  uint32_t Start = 0; ///< first instruction index
  uint32_t Count = 0; ///< number of instructions
};

/// Word offsets assigned to globals by a data-allocation strategy.
struct DataLayoutMap {
  std::vector<int> GlobalOffsets; ///< indexed by global index
  int DataWords = 0;              ///< total data-segment size in words
};

/// Word offsets assigned to one function's frame objects.
struct FrameLayout {
  std::vector<int> Offsets; ///< indexed by frame object index
  int FrameWords = 0;
};

/// A complete, runnable sensor image.
struct BinaryImage {
  std::vector<uint32_t> Code;
  std::vector<FunctionSpan> Functions;
  std::vector<int16_t> DataInit; ///< initial data segment, DataWords long
  int EntryFunc = -1;

  int findFunction(const std::string &Name) const;

  /// The code of one function as a window into Code.
  std::vector<uint32_t> functionCode(int FnIdx) const;

  /// Total size in bytes when transmitted whole (code + data init).
  size_t transmitBytes() const {
    return Code.size() * 4 + DataInit.size() * 2;
  }

  std::vector<uint8_t> serialize() const;
  static bool deserialize(const std::vector<uint8_t> &Bytes,
                          BinaryImage &Out);

  /// Full disassembly listing with function headers.
  std::string disassemble() const;
};

/// Encodes a fully register-allocated machine module into an image.
///
/// \p M supplies global names/initializers; \p DL and \p Frames supply the
/// offsets chosen by the data allocator. Every register operand must be
/// physical by now (asserted). A trailing `jmp` to the lexically next block
/// is elided (fallthrough). When \p IRIndexOut is non-null it receives,
/// per function, the originating IR-statement index of every encoded
/// instruction (-1 for compiler-inserted code) — the bridge that lets
/// simulator profiles flow back into `freq(s)`.
BinaryImage encodeModule(const MachineModule &MM, const Module &M,
                         const DataLayoutMap &DL,
                         const std::vector<FrameLayout> &Frames,
                         std::vector<std::vector<int>> *IRIndexOut = nullptr);

/// Encodes a single function to instruction words (exposed for the differ
/// and tests). See encodeModule for \p IRIndexOut.
std::vector<uint32_t> encodeFunction(const MachineFunction &MF,
                                     const DataLayoutMap &DL,
                                     const FrameLayout &Frame,
                                     std::vector<int> *IRIndexOut = nullptr);

} // namespace ucc

#endif // UCC_CODEGEN_BINARYIMAGE_H
