//===- codegen/SAVR.cpp -------------------------------------------------------==//

#include "codegen/SAVR.h"

#include "support/Format.h"

using namespace ucc;

const char *ucc::mopName(MOp Op) {
  switch (Op) {
  case MOp::NOP:
    return "nop";
  case MOp::HALT:
    return "halt";
  case MOp::LDI:
    return "ldi";
  case MOp::MOV:
    return "mov";
  case MOp::ADD:
    return "add";
  case MOp::SUB:
    return "sub";
  case MOp::MUL:
    return "mul";
  case MOp::DIV:
    return "div";
  case MOp::REM:
    return "rem";
  case MOp::AND:
    return "and";
  case MOp::OR:
    return "or";
  case MOp::XOR:
    return "xor";
  case MOp::SHL:
    return "shl";
  case MOp::SHR:
    return "shr";
  case MOp::NEG:
    return "neg";
  case MOp::NOTR:
    return "not";
  case MOp::CMP:
    return "cmp";
  case MOp::BEQ:
    return "beq";
  case MOp::BNE:
    return "bne";
  case MOp::BLT:
    return "blt";
  case MOp::BGE:
    return "bge";
  case MOp::BGT:
    return "bgt";
  case MOp::BLE:
    return "ble";
  case MOp::JMP:
    return "jmp";
  case MOp::CALL:
    return "call";
  case MOp::RET:
    return "ret";
  case MOp::LDG:
    return "ldg";
  case MOp::STG:
    return "stg";
  case MOp::LDGX:
    return "ldgx";
  case MOp::STGX:
    return "stgx";
  case MOp::LDF:
    return "ldf";
  case MOp::STF:
    return "stf";
  case MOp::LDFX:
    return "ldfx";
  case MOp::STFX:
    return "stfx";
  case MOp::IN:
    return "in";
  case MOp::OUT:
    return "out";
  case MOp::ENTER:
    return "enter";
  case MOp::NumOpcodes:
    break;
  }
  return "???";
}

int ucc::mopCycles(MOp Op, bool Taken) {
  switch (Op) {
  case MOp::NOP:
  case MOp::LDI:
  case MOp::MOV:
  case MOp::ADD:
  case MOp::SUB:
  case MOp::AND:
  case MOp::OR:
  case MOp::XOR:
  case MOp::SHL:
  case MOp::SHR:
  case MOp::NEG:
  case MOp::NOTR:
  case MOp::CMP:
  case MOp::IN:
  case MOp::OUT:
  case MOp::ENTER:
    return 1;
  case MOp::MUL:
    return 2;
  case MOp::DIV:
  case MOp::REM:
    return 8;
  case MOp::BEQ:
  case MOp::BNE:
  case MOp::BLT:
  case MOp::BGE:
  case MOp::BGT:
  case MOp::BLE:
    return Taken ? 2 : 1;
  case MOp::JMP:
    return 2;
  case MOp::CALL:
  case MOp::RET:
    return 4;
  case MOp::LDG:
  case MOp::STG:
  case MOp::LDGX:
  case MOp::STGX:
  case MOp::LDF:
  case MOp::STF:
  case MOp::LDFX:
  case MOp::STFX:
    return 2;
  case MOp::HALT:
  case MOp::NumOpcodes:
    return 0;
  }
  return 1;
}

bool ucc::isCondBranch(MOp Op) {
  switch (Op) {
  case MOp::BEQ:
  case MOp::BNE:
  case MOp::BLT:
  case MOp::BGE:
  case MOp::BGT:
  case MOp::BLE:
    return true;
  default:
    return false;
  }
}

std::string ucc::disassembleInstr(uint32_t Word) {
  EncodedInstr E = EncodedInstr::unpack(Word);
  switch (E.Op) {
  case MOp::NOP:
  case MOp::HALT:
  case MOp::RET:
    return mopName(E.Op);
  case MOp::LDI:
    return format("ldi r%u, %d", E.A, static_cast<int16_t>(E.Imm));
  case MOp::MOV:
    return format("mov r%u, r%u", E.A, E.B);
  case MOp::ADD:
  case MOp::SUB:
  case MOp::MUL:
  case MOp::DIV:
  case MOp::REM:
  case MOp::AND:
  case MOp::OR:
  case MOp::XOR:
  case MOp::SHL:
  case MOp::SHR:
    return format("%s r%u, r%u, r%u", mopName(E.Op), E.A, E.B, E.regC());
  case MOp::NEG:
  case MOp::NOTR:
    return format("%s r%u, r%u", mopName(E.Op), E.A, E.B);
  case MOp::CMP:
    return format("cmp r%u, r%u", E.A, E.B);
  case MOp::BEQ:
  case MOp::BNE:
  case MOp::BLT:
  case MOp::BGE:
  case MOp::BGT:
  case MOp::BLE:
  case MOp::JMP:
    return format("%s +%u", mopName(E.Op), E.Imm);
  case MOp::CALL:
    return format("call fn%u", E.Imm);
  case MOp::LDG:
    return format("ldg r%u, [%u]", E.A, E.Imm);
  case MOp::STG:
    return format("stg [%u], r%u", E.Imm, E.A);
  case MOp::LDGX:
    return format("ldgx r%u, [%u + r%u]", E.A, E.Imm, E.B);
  case MOp::STGX:
    return format("stgx [%u + r%u], r%u", E.Imm, E.B, E.A);
  case MOp::LDF:
    return format("ldf r%u, {%u}", E.A, E.Imm);
  case MOp::STF:
    return format("stf {%u}, r%u", E.Imm, E.A);
  case MOp::LDFX:
    return format("ldfx r%u, {%u + r%u}", E.A, E.Imm, E.B);
  case MOp::STFX:
    return format("stfx {%u + r%u}, r%u", E.Imm, E.B, E.A);
  case MOp::IN:
    return format("in r%u, port%u", E.A, E.Imm);
  case MOp::OUT:
    return format("out port%u, r%u", E.Imm, E.A);
  case MOp::ENTER:
    return format("enter %u", E.Imm);
  case MOp::NumOpcodes:
    break;
  }
  return format(".word 0x%08x", Word);
}
