//===- codegen/MachineIR.h - pre-encoding machine representation ----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level representation between instruction selection and
/// binary encoding. Register operands may be virtual (>= FirstVReg) before
/// register allocation and are physical afterwards; each operand keeps its
/// originating virtual register so the allocation can be validated and
/// recorded (the CompilationRecord the update-conscious compiler feeds on).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_CODEGEN_MACHINEIR_H
#define UCC_CODEGEN_MACHINEIR_H

#include "analysis/Dataflow.h"
#include "codegen/SAVR.h"

#include <cassert>
#include <string>
#include <vector>

namespace ucc {

/// One machine instruction before encoding.
struct MInstr {
  MOp Op = MOp::NOP;
  /// Register operands; -1 when unused. Roles follow codegen/SAVR.h.
  int A = -1;
  int B = -1;
  int C = -1;
  /// Originating virtual registers of A/B/C; filled by the register
  /// allocator when it substitutes physical registers.
  int VA = -1;
  int VB = -1;
  int VC = -1;
  int32_t Imm = 0;    ///< LDI immediate / port number
  int Target = -1;    ///< branch target: machine block id (pre-layout)
  int Callee = -1;    ///< CALL: function index
  int GlobalIdx = -1; ///< LDG/STG/LDGX/STGX: global index
  int FrameIdx = -1;  ///< LDF/STF/LDFX/STFX: frame object index
  int IRIndex = -1;   ///< originating IR statement (frequency lookup)
};

/// Fixed-capacity register-operand list for the allocation-lean hot path.
/// The worst case is CALL's clobber set (all NumPhysRegs physical
/// registers plus the A slot), so a small inline buffer covers every
/// instruction with no heap traffic — the def/use queries inside the
/// liveness, validation, and UCC-RA inner loops run allocation-free.
class RegList {
public:
  void push_back(int Reg) {
    assert(Count < Cap && "operand list overflow");
    Regs[Count++] = Reg;
  }
  void clear() { Count = 0; }
  int size() const { return Count; }
  bool empty() const { return Count == 0; }
  int operator[](int I) const { return Regs[I]; }
  const int *begin() const { return Regs; }
  const int *end() const { return Regs + Count; }
  bool contains(int Reg) const {
    for (int R : *this)
      if (R == Reg)
        return true;
    return false;
  }

private:
  static constexpr int Cap = 16; // >= NumPhysRegs + 1 (CALL's worst case)
  int Count = 0;
  int Regs[Cap];
};

/// Registers defined by \p I. CALL clobbers every physical register; the
/// liveness adapter handles that separately via mopIsCall().
std::vector<int> minstrDefs(const MInstr &I);
/// Registers used by \p I.
std::vector<int> minstrUses(const MInstr &I);
/// Allocation-free variants: append the defs/uses of \p I to \p Out
/// (cleared first). Same contents and order as the vector versions.
void minstrDefs(const MInstr &I, RegList &Out);
void minstrUses(const MInstr &I, RegList &Out);
/// True when \p Op is CALL (clobbers all physical registers).
inline bool mopIsCall(MOp Op) { return Op == MOp::CALL; }

/// A machine basic block.
struct MBlock {
  std::string Name;
  std::vector<MInstr> Instrs;
  std::vector<int> Succs;
};

/// Sizes (in words) of everything addressed frame-relative.
struct MFrameObject {
  std::string Name;
  int SizeWords = 1;
  bool IsSpill = false;
};

/// A machine function.
struct MachineFunction {
  std::string Name;
  std::vector<MBlock> Blocks;
  std::vector<MFrameObject> FrameObjects;
  int NextVReg = FirstVReg;
  /// Source names per virtual register, indexed by (vreg - FirstVReg);
  /// empty for compiler temporaries. Used to give frame homes stable,
  /// version-independent names.
  std::vector<std::string> VRegNames;

  int makeVReg() {
    VRegNames.push_back("");
    return NextVReg++;
  }

  const std::string &vregName(int VReg) const {
    static const std::string Empty;
    size_t Idx = static_cast<size_t>(VReg - FirstVReg);
    return Idx < VRegNames.size() ? VRegNames[Idx] : Empty;
  }

  /// Creates a frame object, uniquifying the name so that names are a
  /// stable cross-version identity for the differ.
  int makeFrameObject(const std::string &Name, int SizeWords, bool IsSpill);

  int instrCount() const;

  /// Renders the function as assembly-like text (virtual or physical regs).
  std::string print() const;
};

/// A machine module mirrors the IR module's functions and globals.
struct MachineModule {
  std::vector<MachineFunction> Functions;
  int EntryFunc = -1;
};

/// Builds the liveness CFG for \p F. Values are register ids; virtual
/// registers and the NumPhysRegs physical registers share the space, so
/// fixed (physical) liveness falls out of the same fixpoint. CALL defines
/// every physical register (the caller-saved clobber); RET uses RetReg.
FlowGraph buildMachineFlowGraph(const MachineFunction &F);

/// Linearizes \p F: returns (block, instr) pairs in layout order.
struct LinearInstrRef {
  int Block;
  int Index;
};
std::vector<LinearInstrRef> linearize(const MachineFunction &F);

} // namespace ucc

#endif // UCC_CODEGEN_MACHINEIR_H
