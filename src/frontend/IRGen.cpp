//===- frontend/IRGen.cpp -----------------------------------------------------==//

#include "frontend/IRGen.h"

#include "frontend/Parser.h"
#include "support/Format.h"

#include <deque>
#include <unordered_map>

using namespace ucc;

namespace {

/// What a name refers to inside a function body.
struct Binding {
  enum class Kind { LocalScalar, LocalArray, Global, GlobalArray } K;
  int Index = 0; ///< vreg (LocalScalar) / frame slot / global index
};

class IRGenImpl {
public:
  IRGenImpl(const ProgramAST &Program, DiagnosticEngine &Diag)
      : Program(Program), Diag(Diag) {}

  Module run() {
    declareGlobals();
    declareFunctions();
    if (Diag.hasErrors())
      return std::move(M);
    for (size_t I = 0; I < Program.Functions.size(); ++I)
      lowerFunction(Program.Functions[I], M.Functions[I]);
    M.EntryFunc = M.findFunction("main");
    return std::move(M);
  }

private:
  //===--- module-level declarations --------------------------------------===//

  void declareGlobals() {
    for (const GlobalDecl &G : Program.Globals) {
      if (M.findGlobal(G.Name) >= 0) {
        Diag.error(G.Loc, format("redefinition of global '%s'",
                                 G.Name.c_str()));
        continue;
      }
      GlobalVar GV;
      GV.Name = G.Name;
      GV.SizeWords = G.ArraySize > 0 ? G.ArraySize : 1;
      if (G.HasInit) {
        if (static_cast<int>(G.Init.size()) > GV.SizeWords)
          Diag.error(G.Loc, format("too many initializers for '%s'",
                                   G.Name.c_str()));
        for (int64_t V : G.Init)
          GV.Init.push_back(static_cast<int16_t>(V));
      }
      M.Globals.push_back(std::move(GV));
    }
  }

  void declareFunctions() {
    for (const FuncDecl &F : Program.Functions) {
      if (M.findFunction(F.Name) >= 0) {
        Diag.error(F.Loc,
                   format("redefinition of function '%s'", F.Name.c_str()));
        continue;
      }
      Function Fn;
      Fn.Name = F.Name;
      for (const std::string &P : F.Params)
        Fn.Params.push_back(Fn.makeVReg(P));
      M.Functions.push_back(std::move(Fn));
      ReturnsInt.push_back(F.ReturnsInt);
    }
  }

  //===--- function lowering ----------------------------------------------===//

  void lowerFunction(const FuncDecl &Decl, Function &Fn) {
    CurFn = &Fn;
    CurDecl = &Decl;
    Scopes.clear();
    Scopes.emplace_back();
    BreakTargets.clear();
    ContinueTargets.clear();

    for (size_t I = 0; I < Decl.Params.size(); ++I) {
      if (!declare(Decl.Params[I],
                   Binding{Binding::Kind::LocalScalar,
                           Fn.Params[I]}))
        Diag.error(Decl.Loc, format("duplicate parameter '%s'",
                                    Decl.Params[I].c_str()));
    }

    CurBB = Fn.makeBlock("entry");
    lowerStmt(*Decl.Body);

    // Fall-off-the-end: synthesize a return (0 for int functions).
    if (!Fn.Blocks[CurBB].hasTerminator()) {
      Instr Ret;
      Ret.Op = Opcode::Ret;
      if (Decl.ReturnsInt) {
        VReg Zero = emitConst(0, Decl.Loc);
        Ret.Srcs.push_back(Zero);
      }
      append(std::move(Ret));
    }
    CurFn = nullptr;
    CurDecl = nullptr;
  }

  //===--- scope handling -------------------------------------------------===//

  bool declare(const std::string &Name, Binding B) {
    auto [It, Inserted] = Scopes.back().emplace(Name, B);
    (void)It;
    return Inserted;
  }

  const Binding *lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  /// Resolves \p Name to a binding, checking globals after locals.
  /// Returns nullptr (and diagnoses) when the name is unknown.
  const Binding *resolve(const std::string &Name, SourceLoc Loc) {
    if (const Binding *B = lookupLocal(Name))
      return B;
    int G = M.findGlobal(Name);
    if (G >= 0) {
      Binding B;
      B.K = M.Globals[static_cast<size_t>(G)].SizeWords > 1 ||
                    isDeclaredArray(Name)
                ? Binding::Kind::GlobalArray
                : Binding::Kind::Global;
      B.Index = G;
      GlobalBindingStorage.push_back(B);
      return &GlobalBindingStorage.back();
    }
    Diag.error(Loc, format("use of undeclared identifier '%s'", Name.c_str()));
    return nullptr;
  }

  bool isDeclaredArray(const std::string &Name) const {
    for (const GlobalDecl &G : Program.Globals)
      if (G.Name == Name)
        return G.ArraySize > 0;
    return false;
  }

  //===--- emission helpers -----------------------------------------------===//

  void append(Instr I) { CurFn->Blocks[CurBB].Instrs.push_back(std::move(I)); }

  VReg emitConst(int64_t Value, SourceLoc Loc) {
    VReg Dst = CurFn->makeVReg();
    Instr I;
    I.Op = Opcode::Const;
    I.Dst = Dst;
    I.Imm = Value;
    I.Loc = Loc;
    append(std::move(I));
    return Dst;
  }

  void emitBr(int Target, SourceLoc Loc) {
    if (CurFn->Blocks[CurBB].hasTerminator())
      return; // unreachable code after return/break
    Instr I;
    I.Op = Opcode::Br;
    I.TrueBB = Target;
    I.Loc = Loc;
    append(std::move(I));
  }

  void emitCondBr(CmpPred Pred, VReg A, VReg B, int TrueBB, int FalseBB,
                  SourceLoc Loc) {
    if (CurFn->Blocks[CurBB].hasTerminator())
      return;
    Instr I;
    I.Op = Opcode::CondBr;
    I.PredK = Pred;
    I.Srcs = {A, B};
    I.TrueBB = TrueBB;
    I.FalseBB = FalseBB;
    I.Loc = Loc;
    append(std::move(I));
  }

  int newBlock(const std::string &Name) {
    return CurFn->makeBlock(format("%s%d", Name.c_str(), BlockCounter++));
  }

  //===--- statement lowering ---------------------------------------------===//

  void lowerStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Block: {
      Scopes.emplace_back();
      for (const StmtPtr &Child : S.Body)
        lowerStmt(*Child);
      Scopes.pop_back();
      return;
    }
    case Stmt::Kind::Decl:
      lowerDecl(S);
      return;
    case Stmt::Kind::Assign:
      lowerAssign(S);
      return;
    case Stmt::Kind::If:
      lowerIf(S);
      return;
    case Stmt::Kind::While:
      lowerWhile(S);
      return;
    case Stmt::Kind::For:
      lowerFor(S);
      return;
    case Stmt::Kind::Return:
      lowerReturn(S);
      return;
    case Stmt::Kind::Break:
      if (BreakTargets.empty())
        Diag.error(S.Loc, "'break' outside a loop");
      else
        emitBr(BreakTargets.back(), S.Loc);
      return;
    case Stmt::Kind::Continue:
      if (ContinueTargets.empty())
        Diag.error(S.Loc, "'continue' outside a loop");
      else
        emitBr(ContinueTargets.back(), S.Loc);
      return;
    case Stmt::Kind::ExprStmt:
      lowerExprStmt(S);
      return;
    case Stmt::Kind::OutPort: {
      VReg V = lowerExpr(*S.Value);
      Instr I;
      I.Op = Opcode::Out;
      I.Imm = S.Port;
      I.Srcs = {V};
      I.Loc = S.Loc;
      append(std::move(I));
      return;
    }
    case Stmt::Kind::Halt: {
      Instr I;
      I.Op = Opcode::Halt;
      I.Loc = S.Loc;
      append(std::move(I));
      return;
    }
    }
  }

  void lowerDecl(const Stmt &S) {
    if (S.ArraySize > 0) {
      int Slot = CurFn->makeFrameObject(S.Name, S.ArraySize);
      if (!declare(S.Name, Binding{Binding::Kind::LocalArray, Slot}))
        Diag.error(S.Loc, format("redefinition of '%s'", S.Name.c_str()));
      return;
    }
    VReg R = CurFn->makeVReg(S.Name);
    if (!declare(S.Name, Binding{Binding::Kind::LocalScalar, R}))
      Diag.error(S.Loc, format("redefinition of '%s'", S.Name.c_str()));
    // Deterministic semantics: scalars without initializers start at 0.
    VReg Init = S.Value ? lowerExpr(*S.Value) : emitConst(0, S.Loc);
    Instr I;
    I.Op = Opcode::Mov;
    I.Dst = R;
    I.Srcs = {Init};
    I.Loc = S.Loc;
    append(std::move(I));
  }

  void lowerAssign(const Stmt &S) {
    const Binding *B = resolve(S.Name, S.Loc);
    if (!B)
      return;
    VReg Value = lowerExpr(*S.Value);

    switch (B->K) {
    case Binding::Kind::LocalScalar: {
      Instr I;
      I.Op = Opcode::Mov;
      I.Dst = B->Index;
      I.Srcs = {Value};
      I.Loc = S.Loc;
      append(std::move(I));
      return;
    }
    case Binding::Kind::LocalArray: {
      if (!S.TargetIndex) {
        Diag.error(S.Loc, format("cannot assign to array '%s' without index",
                                 S.Name.c_str()));
        return;
      }
      VReg Idx = lowerExpr(*S.TargetIndex);
      Instr I;
      I.Op = Opcode::StoreF;
      I.Slot = B->Index;
      I.Srcs = {Value, Idx};
      I.Loc = S.Loc;
      append(std::move(I));
      return;
    }
    case Binding::Kind::Global:
    case Binding::Kind::GlobalArray: {
      bool IsArray = B->K == Binding::Kind::GlobalArray;
      if (IsArray && !S.TargetIndex) {
        Diag.error(S.Loc, format("cannot assign to array '%s' without index",
                                 S.Name.c_str()));
        return;
      }
      if (!IsArray && S.TargetIndex) {
        Diag.error(S.Loc,
                   format("'%s' is not an array", S.Name.c_str()));
        return;
      }
      Instr I;
      I.Op = Opcode::StoreG;
      I.Global = B->Index;
      I.Srcs = {Value};
      if (S.TargetIndex)
        I.Srcs.push_back(lowerExpr(*S.TargetIndex));
      I.Loc = S.Loc;
      append(std::move(I));
      return;
    }
    }
  }

  void lowerIf(const Stmt &S) {
    int ThenBB = newBlock("if.then");
    int ElseBB = S.Else ? newBlock("if.else") : -1;
    int EndBB = newBlock("if.end");
    lowerCond(*S.Cond, ThenBB, S.Else ? ElseBB : EndBB);

    CurBB = ThenBB;
    lowerStmt(*S.Then);
    emitBr(EndBB, S.Loc);

    if (S.Else) {
      CurBB = ElseBB;
      lowerStmt(*S.Else);
      emitBr(EndBB, S.Loc);
    }
    CurBB = EndBB;
  }

  void lowerWhile(const Stmt &S) {
    int CondBB = newBlock("while.cond");
    int BodyBB = newBlock("while.body");
    int EndBB = newBlock("while.end");
    emitBr(CondBB, S.Loc);

    CurBB = CondBB;
    lowerCond(*S.Cond, BodyBB, EndBB);

    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(CondBB);
    CurBB = BodyBB;
    lowerStmt(*S.Body0);
    emitBr(CondBB, S.Loc);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();

    CurBB = EndBB;
  }

  void lowerFor(const Stmt &S) {
    if (S.InitStmt)
      lowerStmt(*S.InitStmt);
    int CondBB = newBlock("for.cond");
    int BodyBB = newBlock("for.body");
    int StepBB = newBlock("for.step");
    int EndBB = newBlock("for.end");
    emitBr(CondBB, S.Loc);

    CurBB = CondBB;
    if (S.Cond)
      lowerCond(*S.Cond, BodyBB, EndBB);
    else
      emitBr(BodyBB, S.Loc);

    BreakTargets.push_back(EndBB);
    ContinueTargets.push_back(StepBB);
    CurBB = BodyBB;
    lowerStmt(*S.Body0);
    emitBr(StepBB, S.Loc);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();

    CurBB = StepBB;
    if (S.StepStmt)
      lowerStmt(*S.StepStmt);
    emitBr(CondBB, S.Loc);

    CurBB = EndBB;
  }

  void lowerReturn(const Stmt &S) {
    bool WantsValue = ReturnsInt[static_cast<size_t>(currentFnIndex())];
    Instr I;
    I.Op = Opcode::Ret;
    I.Loc = S.Loc;
    if (S.Value) {
      if (!WantsValue)
        Diag.error(S.Loc, "void function cannot return a value");
      I.Srcs = {lowerExpr(*S.Value)};
    } else if (WantsValue) {
      Diag.error(S.Loc, "non-void function must return a value");
      I.Srcs = {emitConst(0, S.Loc)};
    }
    append(std::move(I));
  }

  void lowerExprStmt(const Stmt &S) {
    const Expr &E = *S.Value;
    if (E.K == Expr::Kind::CallE) {
      lowerCall(E, /*WantValue=*/false);
      return;
    }
    // Evaluate for side effects (there are none besides calls, but the
    // program is still valid C-like code).
    lowerExpr(E);
  }

  //===--- expression lowering --------------------------------------------===//

  int currentFnIndex() const {
    return M.findFunction(CurFn->Name);
  }

  VReg lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return emitConst(E.Value, E.Loc);
    case Expr::Kind::VarRef:
      return lowerVarRef(E);
    case Expr::Kind::Index:
      return lowerIndex(E);
    case Expr::Kind::CallE:
      return lowerCall(E, /*WantValue=*/true);
    case Expr::Kind::Unary: {
      VReg A = lowerExpr(*E.LHS);
      VReg Dst = CurFn->makeVReg();
      Instr I;
      I.Op = Opcode::Un;
      I.UnK = E.UnK;
      I.Dst = Dst;
      I.Srcs = {A};
      I.Loc = E.Loc;
      append(std::move(I));
      return Dst;
    }
    case Expr::Kind::Binary:
      return lowerBinary(E);
    case Expr::Kind::InPort: {
      VReg Dst = CurFn->makeVReg();
      Instr I;
      I.Op = Opcode::In;
      I.Dst = Dst;
      I.Imm = E.Port;
      I.Loc = E.Loc;
      append(std::move(I));
      return Dst;
    }
    }
    return emitConst(0, E.Loc);
  }

  VReg lowerVarRef(const Expr &E) {
    const Binding *B = resolve(E.Name, E.Loc);
    if (!B)
      return emitConst(0, E.Loc);
    switch (B->K) {
    case Binding::Kind::LocalScalar:
      return B->Index;
    case Binding::Kind::Global: {
      VReg Dst = CurFn->makeVReg();
      Instr I;
      I.Op = Opcode::LoadG;
      I.Global = B->Index;
      I.Dst = Dst;
      I.Loc = E.Loc;
      append(std::move(I));
      return Dst;
    }
    case Binding::Kind::LocalArray:
    case Binding::Kind::GlobalArray:
      Diag.error(E.Loc,
                 format("array '%s' used without index", E.Name.c_str()));
      return emitConst(0, E.Loc);
    }
    return emitConst(0, E.Loc);
  }

  VReg lowerIndex(const Expr &E) {
    const Binding *B = resolve(E.Name, E.Loc);
    if (!B)
      return emitConst(0, E.Loc);
    VReg Idx = lowerExpr(*E.LHS);
    VReg Dst = CurFn->makeVReg();
    Instr I;
    I.Dst = Dst;
    I.Srcs = {Idx};
    I.Loc = E.Loc;
    switch (B->K) {
    case Binding::Kind::LocalArray:
      I.Op = Opcode::LoadF;
      I.Slot = B->Index;
      break;
    case Binding::Kind::GlobalArray:
    case Binding::Kind::Global:
      I.Op = Opcode::LoadG;
      I.Global = B->Index;
      break;
    case Binding::Kind::LocalScalar:
      Diag.error(E.Loc, format("'%s' is not an array", E.Name.c_str()));
      return emitConst(0, E.Loc);
    }
    append(std::move(I));
    return Dst;
  }

  VReg lowerCall(const Expr &E, bool WantValue) {
    int Callee = M.findFunction(E.Name);
    if (Callee < 0) {
      Diag.error(E.Loc, format("call to undeclared function '%s'",
                               E.Name.c_str()));
      return WantValue ? emitConst(0, E.Loc) : NoVReg;
    }
    bool CalleeReturnsInt = ReturnsInt[static_cast<size_t>(Callee)];
    if (WantValue && !CalleeReturnsInt)
      Diag.error(E.Loc, format("void function '%s' used as a value",
                               E.Name.c_str()));
    const Function &CalleeFn = M.Functions[static_cast<size_t>(Callee)];
    if (E.Args.size() != CalleeFn.Params.size())
      Diag.error(E.Loc,
                 format("'%s' expects %zu arguments, got %zu",
                        E.Name.c_str(), CalleeFn.Params.size(),
                        E.Args.size()));

    Instr I;
    I.Op = Opcode::Call;
    I.Callee = Callee;
    for (const ExprPtr &Arg : E.Args)
      I.Srcs.push_back(lowerExpr(*Arg));
    if (WantValue || CalleeReturnsInt)
      I.Dst = CurFn->makeVReg();
    I.Loc = E.Loc;
    VReg Dst = I.Dst;
    append(std::move(I));
    return Dst;
  }

  VReg lowerBinary(const Expr &E) {
    switch (E.BOp) {
    case BinaryOpKind::Arith: {
      VReg A = lowerExpr(*E.LHS);
      VReg B = lowerExpr(*E.RHS);
      VReg Dst = CurFn->makeVReg();
      Instr I;
      I.Op = Opcode::Bin;
      I.BinK = E.ArithK;
      I.Dst = Dst;
      I.Srcs = {A, B};
      I.Loc = E.Loc;
      append(std::move(I));
      return Dst;
    }
    case BinaryOpKind::Compare:
    case BinaryOpKind::LogicalAnd:
    case BinaryOpKind::LogicalOr: {
      // Materialize the truth value through control flow.
      VReg Dst = CurFn->makeVReg();
      int TrueBB = newBlock("bool.true");
      int FalseBB = newBlock("bool.false");
      int EndBB = newBlock("bool.end");
      lowerCond(E, TrueBB, FalseBB);

      CurBB = TrueBB;
      Instr One;
      One.Op = Opcode::Const;
      One.Dst = Dst;
      One.Imm = 1;
      One.Loc = E.Loc;
      append(std::move(One));
      emitBr(EndBB, E.Loc);

      CurBB = FalseBB;
      Instr Zero;
      Zero.Op = Opcode::Const;
      Zero.Dst = Dst;
      Zero.Imm = 0;
      Zero.Loc = E.Loc;
      append(std::move(Zero));
      emitBr(EndBB, E.Loc);

      CurBB = EndBB;
      return Dst;
    }
    }
    return emitConst(0, E.Loc);
  }

  /// Lowers \p E as a branch condition: control transfers to \p TrueBB when
  /// E is truthy and to \p FalseBB otherwise. Handles short-circuit logic
  /// and fuses comparisons directly into CondBr.
  void lowerCond(const Expr &E, int TrueBB, int FalseBB) {
    if (E.K == Expr::Kind::Binary) {
      if (E.BOp == BinaryOpKind::Compare) {
        VReg A = lowerExpr(*E.LHS);
        VReg B = lowerExpr(*E.RHS);
        emitCondBr(E.CmpK, A, B, TrueBB, FalseBB, E.Loc);
        return;
      }
      if (E.BOp == BinaryOpKind::LogicalAnd) {
        int MidBB = newBlock("and.rhs");
        lowerCond(*E.LHS, MidBB, FalseBB);
        CurBB = MidBB;
        lowerCond(*E.RHS, TrueBB, FalseBB);
        return;
      }
      if (E.BOp == BinaryOpKind::LogicalOr) {
        int MidBB = newBlock("or.rhs");
        lowerCond(*E.LHS, TrueBB, MidBB);
        CurBB = MidBB;
        lowerCond(*E.RHS, TrueBB, FalseBB);
        return;
      }
    }
    VReg V = lowerExpr(E);
    VReg Zero = emitConst(0, E.Loc);
    emitCondBr(CmpPred::NE, V, Zero, TrueBB, FalseBB, E.Loc);
  }

  const ProgramAST &Program;
  DiagnosticEngine &Diag;
  Module M;
  std::vector<bool> ReturnsInt; ///< parallel to M.Functions

  Function *CurFn = nullptr;
  const FuncDecl *CurDecl = nullptr;
  int CurBB = 0;
  int BlockCounter = 0;
  std::vector<std::unordered_map<std::string, Binding>> Scopes;
  std::vector<int> BreakTargets;
  std::vector<int> ContinueTargets;
  // resolve() hands out pointers; globals need stable storage.
  std::deque<Binding> GlobalBindingStorage;
};

} // namespace

Module ucc::lowerToIR(const ProgramAST &Program, DiagnosticEngine &Diag) {
  return IRGenImpl(Program, Diag).run();
}

Module ucc::compileToIR(const std::string &Source, DiagnosticEngine &Diag) {
  ProgramAST Program = parseProgram(Source, Diag);
  if (Diag.hasErrors())
    return Module();
  return lowerToIR(Program, Diag);
}
