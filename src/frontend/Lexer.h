//===- frontend/Lexer.h - MiniC lexical analysis ---------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniC, the small C-like language the workload suite is
/// written in (the "NesC / avr-gcc input" stand-in, see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_FRONTEND_LEXER_H
#define UCC_FRONTEND_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// Token kinds produced by the lexer.
enum class TokKind {
  Eof,
  Ident,
  IntLit,
  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
};

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  ///< identifier spelling
  int64_t IntValue = 0; ///< for IntLit
  SourceLoc Loc;
};

/// Returns a printable name for \p Kind (diagnostics).
const char *tokKindName(TokKind Kind);

/// Tokenizes \p Source. Lexical errors are reported to \p Diag; lexing
/// continues past errors so the parser can report more problems in one run.
/// The returned stream always ends with an Eof token.
std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diag);

} // namespace ucc

#endif // UCC_FRONTEND_LEXER_H
