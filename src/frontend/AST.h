//===- frontend/AST.h - MiniC abstract syntax trees ------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC. Nodes are tagged structs rather than a class hierarchy:
/// the tree is produced once by the parser and consumed once by IRGen, so a
/// closed, value-oriented representation keeps both sides simple.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_FRONTEND_AST_H
#define UCC_FRONTEND_AST_H

#include "ir/IR.h" // BinKind / UnKind / CmpPred reused as AST operators
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace ucc {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Expression operators beyond BinKind: comparisons and short-circuit logic
/// need their own lowering, so the AST keeps them distinct.
enum class BinaryOpKind {
  Arith,   ///< maps to BinKind
  Compare, ///< maps to CmpPred; value is 0/1
  LogicalAnd,
  LogicalOr
};

/// A MiniC expression.
struct Expr {
  enum class Kind {
    IntLit,  ///< Value
    VarRef,  ///< Name
    Index,   ///< Name[Sub] — array element read
    CallE,   ///< Name(Args) as an expression (must return int)
    Unary,   ///< UnOp applied to LHS; UnKind::Not is bitwise '~',
             ///< logical '!' is represented as Compare EQ 0 by the parser
    Binary,  ///< LHS BinaryOp RHS
    InPort   ///< __in(Port)
  };

  Kind K = Kind::IntLit;
  SourceLoc Loc;

  int64_t Value = 0;     // IntLit
  std::string Name;      // VarRef / Index / CallE
  ExprPtr LHS, RHS;      // Unary (LHS), Binary, Index (LHS = subscript)
  std::vector<ExprPtr> Args; // CallE
  BinaryOpKind BOp = BinaryOpKind::Arith;
  BinKind ArithK = BinKind::Add;
  CmpPred CmpK = CmpPred::EQ;
  UnKind UnK = UnKind::Neg;
  int64_t Port = 0; // InPort
};

/// A MiniC statement.
struct Stmt {
  enum class Kind {
    Decl,     ///< int Name[ArraySize]? (= Init)?
    Assign,   ///< Name(= TargetIndex?) = Value
    If,       ///< if (Cond) Then else Else?
    While,    ///< while (Cond) Body0
    For,      ///< for (InitStmt; Cond; StepStmt) Body0
    Return,   ///< return Value?
    Break,
    Continue,
    ExprStmt, ///< expression evaluated for side effects (calls)
    Block,    ///< { Body... }
    OutPort,  ///< __out(Port, Value)
    Halt      ///< __halt()
  };

  Kind K = Kind::Block;
  SourceLoc Loc;

  std::string Name;       // Decl / Assign target
  int ArraySize = 0;      // Decl: >0 for arrays
  ExprPtr TargetIndex;    // Assign to Name[TargetIndex]
  ExprPtr Value;          // Decl init / Assign value / Return / Out value
  ExprPtr Cond;           // If / While / For
  StmtPtr Then, Else;     // If
  StmtPtr Body0;          // While / For body
  StmtPtr InitStmt, StepStmt; // For
  std::vector<StmtPtr> Body;  // Block
  int64_t Port = 0;           // OutPort
};

/// A global variable declaration.
struct GlobalDecl {
  SourceLoc Loc;
  std::string Name;
  int ArraySize = 0; ///< 0 for scalars, element count for arrays
  std::vector<int64_t> Init;
  bool HasInit = false;
};

/// A function definition.
struct FuncDecl {
  SourceLoc Loc;
  std::string Name;
  bool ReturnsInt = false;
  std::vector<std::string> Params;
  StmtPtr Body;
};

/// A parsed translation unit.
struct ProgramAST {
  std::vector<GlobalDecl> Globals;
  std::vector<FuncDecl> Functions;
};

} // namespace ucc

#endif // UCC_FRONTEND_AST_H
