//===- frontend/Parser.h - MiniC recursive-descent parser -----------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing a ProgramAST. Syntax errors are
/// reported through the DiagnosticEngine; the parser recovers at statement
/// boundaries so several errors can be reported per run.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_FRONTEND_PARSER_H
#define UCC_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "support/Diagnostics.h"

#include <string>

namespace ucc {

/// Parses MiniC \p Source into an AST. Returns the (possibly partial) AST;
/// callers must check \p Diag for errors before using it.
ProgramAST parseProgram(const std::string &Source, DiagnosticEngine &Diag);

} // namespace ucc

#endif // UCC_FRONTEND_PARSER_H
