//===- frontend/IRGen.h - AST -> IR lowering -------------------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniC AST to the mid-level IR. Name resolution and semantic
/// checks (arity, void-vs-int use, break placement, ...) happen here; every
/// problem is reported through the DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_FRONTEND_IRGEN_H
#define UCC_FRONTEND_IRGEN_H

#include "frontend/AST.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"

namespace ucc {

/// Lowers \p Program into an IR module. Returns the module; callers must
/// check \p Diag before using it. The entry function is the function named
/// "main" when present.
Module lowerToIR(const ProgramAST &Program, DiagnosticEngine &Diag);

/// Convenience: parse + lower in one step.
Module compileToIR(const std::string &Source, DiagnosticEngine &Diag);

} // namespace ucc

#endif // UCC_FRONTEND_IRGEN_H
