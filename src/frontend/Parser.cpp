//===- frontend/Parser.cpp ---------------------------------------------------==//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"
#include "support/Format.h"

#include <memory>

using namespace ucc;

namespace {

/// Binding powers for binary operators, lowest first.
enum Precedence {
  PrecNone = 0,
  PrecOr,      // ||
  PrecAnd,     // &&
  PrecBitOr,   // |
  PrecBitXor,  // ^
  PrecBitAnd,  // &
  PrecEquality,// == !=
  PrecRelation,// < <= > >=
  PrecShift,   // << >>
  PrecAdd,     // + -
  PrecMul      // * / %
};

struct BinOpInfo {
  int Prec = PrecNone;
  BinaryOpKind Kind = BinaryOpKind::Arith;
  BinKind Arith = BinKind::Add;
  CmpPred Cmp = CmpPred::EQ;
};

BinOpInfo binOpInfo(TokKind Kind) {
  switch (Kind) {
  case TokKind::PipePipe:
    return {PrecOr, BinaryOpKind::LogicalOr, {}, {}};
  case TokKind::AmpAmp:
    return {PrecAnd, BinaryOpKind::LogicalAnd, {}, {}};
  case TokKind::Pipe:
    return {PrecBitOr, BinaryOpKind::Arith, BinKind::Or, {}};
  case TokKind::Caret:
    return {PrecBitXor, BinaryOpKind::Arith, BinKind::Xor, {}};
  case TokKind::Amp:
    return {PrecBitAnd, BinaryOpKind::Arith, BinKind::And, {}};
  case TokKind::EqEq:
    return {PrecEquality, BinaryOpKind::Compare, {}, CmpPred::EQ};
  case TokKind::NotEq:
    return {PrecEquality, BinaryOpKind::Compare, {}, CmpPred::NE};
  case TokKind::Lt:
    return {PrecRelation, BinaryOpKind::Compare, {}, CmpPred::LT};
  case TokKind::Le:
    return {PrecRelation, BinaryOpKind::Compare, {}, CmpPred::LE};
  case TokKind::Gt:
    return {PrecRelation, BinaryOpKind::Compare, {}, CmpPred::GT};
  case TokKind::Ge:
    return {PrecRelation, BinaryOpKind::Compare, {}, CmpPred::GE};
  case TokKind::Shl:
    return {PrecShift, BinaryOpKind::Arith, BinKind::Shl, {}};
  case TokKind::Shr:
    return {PrecShift, BinaryOpKind::Arith, BinKind::Shr, {}};
  case TokKind::Plus:
    return {PrecAdd, BinaryOpKind::Arith, BinKind::Add, {}};
  case TokKind::Minus:
    return {PrecAdd, BinaryOpKind::Arith, BinKind::Sub, {}};
  case TokKind::Star:
    return {PrecMul, BinaryOpKind::Arith, BinKind::Mul, {}};
  case TokKind::Slash:
    return {PrecMul, BinaryOpKind::Arith, BinKind::Div, {}};
  case TokKind::Percent:
    return {PrecMul, BinaryOpKind::Arith, BinKind::Rem, {}};
  default:
    return {};
  }
}

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, DiagnosticEngine &Diag)
      : Toks(std::move(Tokens)), Diag(Diag) {}

  ProgramAST run() {
    ProgramAST Program;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwInt) || at(TokKind::KwVoid)) {
        parseTopLevel(Program);
        continue;
      }
      error(format("expected declaration, found %s", tokKindName(cur().Kind)));
      advance();
    }
    return Program;
  }

private:
  //===--- token helpers --------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind Kind) const { return cur().Kind == Kind; }

  Token advance() {
    Token T = cur();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  bool accept(TokKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }

  Token expect(TokKind Kind, const char *Where) {
    if (at(Kind))
      return advance();
    error(format("expected %s %s, found %s", tokKindName(Kind), Where,
                 tokKindName(cur().Kind)));
    return cur();
  }

  void error(const std::string &Msg) { Diag.error(cur().Loc, Msg); }

  /// Skips ahead to the next ';' or '}' to recover from a syntax error.
  void recover() {
    while (!at(TokKind::Eof) && !at(TokKind::Semi) && !at(TokKind::RBrace))
      advance();
    accept(TokKind::Semi);
  }

  //===--- declarations ---------------------------------------------------===//

  void parseTopLevel(ProgramAST &Program) {
    bool ReturnsInt = at(TokKind::KwInt);
    advance(); // int / void
    Token Name = expect(TokKind::Ident, "in declaration");

    if (at(TokKind::LParen)) {
      parseFunction(Program, Name, ReturnsInt);
      return;
    }
    if (!ReturnsInt) {
      error("global variables must have type 'int'");
      recover();
      return;
    }
    parseGlobal(Program, Name);
  }

  void parseGlobal(ProgramAST &Program, const Token &Name) {
    GlobalDecl G;
    G.Loc = Name.Loc;
    G.Name = Name.Text;
    if (accept(TokKind::LBracket)) {
      Token Size = expect(TokKind::IntLit, "as array size");
      G.ArraySize = static_cast<int>(Size.IntValue);
      if (G.ArraySize <= 0)
        Diag.error(Size.Loc, "array size must be positive");
      expect(TokKind::RBracket, "after array size");
    }
    if (accept(TokKind::Assign)) {
      G.HasInit = true;
      if (accept(TokKind::LBrace)) {
        if (!at(TokKind::RBrace)) {
          do {
            G.Init.push_back(parseSignedIntLit());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RBrace, "after initializer list");
      } else {
        G.Init.push_back(parseSignedIntLit());
      }
    }
    expect(TokKind::Semi, "after global declaration");
    Program.Globals.push_back(std::move(G));
  }

  int64_t parseSignedIntLit() {
    bool Negate = accept(TokKind::Minus);
    Token Lit = expect(TokKind::IntLit, "in initializer");
    return Negate ? -Lit.IntValue : Lit.IntValue;
  }

  void parseFunction(ProgramAST &Program, const Token &Name,
                     bool ReturnsInt) {
    FuncDecl F;
    F.Loc = Name.Loc;
    F.Name = Name.Text;
    F.ReturnsInt = ReturnsInt;
    expect(TokKind::LParen, "after function name");
    if (!at(TokKind::RParen) && !accept(TokKind::KwVoid)) {
      do {
        expect(TokKind::KwInt, "as parameter type");
        Token P = expect(TokKind::Ident, "as parameter name");
        F.Params.push_back(P.Text);
      } while (accept(TokKind::Comma));
    }
    if (F.Params.size() > 4)
      Diag.error(F.Loc, "functions take at most 4 parameters");
    expect(TokKind::RParen, "after parameters");
    F.Body = parseBlock();
    Program.Functions.push_back(std::move(F));
  }

  //===--- statements -----------------------------------------------------===//

  StmtPtr makeStmt(Stmt::Kind Kind, SourceLoc Loc) {
    auto S = std::make_unique<Stmt>();
    S->K = Kind;
    S->Loc = Loc;
    return S;
  }

  StmtPtr parseBlock() {
    SourceLoc Loc = cur().Loc;
    expect(TokKind::LBrace, "to open block");
    StmtPtr Block = makeStmt(Stmt::Kind::Block, Loc);
    while (!at(TokKind::RBrace) && !at(TokKind::Eof))
      Block->Body.push_back(parseStmt());
    expect(TokKind::RBrace, "to close block");
    return Block;
  }

  StmtPtr parseStmt() {
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwInt:
      return parseDecl();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwReturn: {
      StmtPtr S = makeStmt(Stmt::Kind::Return, advance().Loc);
      if (!at(TokKind::Semi))
        S->Value = parseExpr();
      expect(TokKind::Semi, "after return");
      return S;
    }
    case TokKind::KwBreak: {
      StmtPtr S = makeStmt(Stmt::Kind::Break, advance().Loc);
      expect(TokKind::Semi, "after break");
      return S;
    }
    case TokKind::KwContinue: {
      StmtPtr S = makeStmt(Stmt::Kind::Continue, advance().Loc);
      expect(TokKind::Semi, "after continue");
      return S;
    }
    default: {
      StmtPtr S = parseSimpleStmt();
      expect(TokKind::Semi, "after statement");
      return S;
    }
    }
  }

  StmtPtr parseDecl() {
    SourceLoc Loc = advance().Loc; // int
    Token Name = expect(TokKind::Ident, "as variable name");
    StmtPtr S = makeStmt(Stmt::Kind::Decl, Loc);
    S->Name = Name.Text;
    if (accept(TokKind::LBracket)) {
      Token Size = expect(TokKind::IntLit, "as array size");
      S->ArraySize = static_cast<int>(Size.IntValue);
      if (S->ArraySize <= 0)
        Diag.error(Size.Loc, "array size must be positive");
      expect(TokKind::RBracket, "after array size");
    }
    if (accept(TokKind::Assign)) {
      if (S->ArraySize > 0)
        error("local arrays cannot have initializers");
      S->Value = parseExpr();
    }
    expect(TokKind::Semi, "after declaration");
    return S;
  }

  StmtPtr parseIf() {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::LParen, "after 'if'");
    StmtPtr S = makeStmt(Stmt::Kind::If, Loc);
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after condition");
    S->Then = parseStmt();
    if (accept(TokKind::KwElse))
      S->Else = parseStmt();
    return S;
  }

  StmtPtr parseWhile() {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::LParen, "after 'while'");
    StmtPtr S = makeStmt(Stmt::Kind::While, Loc);
    S->Cond = parseExpr();
    expect(TokKind::RParen, "after condition");
    S->Body0 = parseStmt();
    return S;
  }

  StmtPtr parseFor() {
    SourceLoc Loc = advance().Loc;
    expect(TokKind::LParen, "after 'for'");
    StmtPtr S = makeStmt(Stmt::Kind::For, Loc);
    if (!at(TokKind::Semi))
      S->InitStmt = parseSimpleStmt();
    expect(TokKind::Semi, "after for-init");
    if (!at(TokKind::Semi))
      S->Cond = parseExpr();
    expect(TokKind::Semi, "after for-condition");
    if (!at(TokKind::RParen))
      S->StepStmt = parseSimpleStmt();
    expect(TokKind::RParen, "after for-step");
    S->Body0 = parseStmt();
    return S;
  }

  /// Simple statement: assignment, builtin, or expression (call).
  StmtPtr parseSimpleStmt() {
    SourceLoc Loc = cur().Loc;

    if (at(TokKind::Ident)) {
      const std::string &Name = cur().Text;
      if (Name == "__out")
        return parseOut();
      if (Name == "__halt") {
        advance();
        expect(TokKind::LParen, "after '__halt'");
        expect(TokKind::RParen, "after '__halt('");
        return makeStmt(Stmt::Kind::Halt, Loc);
      }
      // Assignment? Lookahead for `ident =` or `ident [ ... ] =`.
      if (peek(1).Kind == TokKind::Assign)
        return parseAssign(/*Indexed=*/false);
      if (peek(1).Kind == TokKind::LBracket && isIndexedAssign())
        return parseAssign(/*Indexed=*/true);
    }

    StmtPtr S = makeStmt(Stmt::Kind::ExprStmt, Loc);
    S->Value = parseExpr();
    return S;
  }

  /// Scans forward from `ident [` to decide whether this is an indexed
  /// assignment (`a[i] = ...`) or an expression (`a[i] + ...`).
  bool isIndexedAssign() const {
    size_t I = Pos + 2; // past ident and '['
    int Depth = 1;
    while (I < Toks.size() && Depth > 0) {
      TokKind K = Toks[I].Kind;
      if (K == TokKind::LBracket)
        ++Depth;
      else if (K == TokKind::RBracket)
        --Depth;
      else if (K == TokKind::Semi || K == TokKind::Eof)
        return false;
      ++I;
    }
    return I < Toks.size() && Toks[I].Kind == TokKind::Assign;
  }

  StmtPtr parseAssign(bool Indexed) {
    Token Name = advance();
    StmtPtr S = makeStmt(Stmt::Kind::Assign, Name.Loc);
    S->Name = Name.Text;
    if (Indexed) {
      expect(TokKind::LBracket, "in indexed assignment");
      S->TargetIndex = parseExpr();
      expect(TokKind::RBracket, "after index");
    }
    expect(TokKind::Assign, "in assignment");
    S->Value = parseExpr();
    return S;
  }

  StmtPtr parseOut() {
    SourceLoc Loc = advance().Loc; // __out
    expect(TokKind::LParen, "after '__out'");
    Token Port = expect(TokKind::IntLit, "as port number");
    expect(TokKind::Comma, "after port number");
    StmtPtr S = makeStmt(Stmt::Kind::OutPort, Loc);
    S->Port = Port.IntValue;
    S->Value = parseExpr();
    expect(TokKind::RParen, "after '__out' arguments");
    return S;
  }

  //===--- expressions ----------------------------------------------------===//

  ExprPtr makeExpr(Expr::Kind Kind, SourceLoc Loc) {
    auto E = std::make_unique<Expr>();
    E->K = Kind;
    E->Loc = Loc;
    return E;
  }

  ExprPtr parseExpr() { return parseBinary(PrecOr); }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr LHS = parseUnary();
    while (true) {
      BinOpInfo Info = binOpInfo(cur().Kind);
      if (Info.Prec == PrecNone || Info.Prec < MinPrec)
        return LHS;
      SourceLoc Loc = advance().Loc;
      ExprPtr RHS = parseBinary(Info.Prec + 1);
      ExprPtr E = makeExpr(Expr::Kind::Binary, Loc);
      E->BOp = Info.Kind;
      E->ArithK = Info.Arith;
      E->CmpK = Info.Cmp;
      E->LHS = std::move(LHS);
      E->RHS = std::move(RHS);
      LHS = std::move(E);
    }
  }

  ExprPtr parseUnary() {
    SourceLoc Loc = cur().Loc;
    if (accept(TokKind::Minus)) {
      ExprPtr E = makeExpr(Expr::Kind::Unary, Loc);
      E->UnK = UnKind::Neg;
      E->LHS = parseUnary();
      return E;
    }
    if (accept(TokKind::Tilde)) {
      ExprPtr E = makeExpr(Expr::Kind::Unary, Loc);
      E->UnK = UnKind::Not;
      E->LHS = parseUnary();
      return E;
    }
    if (accept(TokKind::Bang)) {
      // !x  ==>  (x == 0)
      ExprPtr E = makeExpr(Expr::Kind::Binary, Loc);
      E->BOp = BinaryOpKind::Compare;
      E->CmpK = CmpPred::EQ;
      E->LHS = parseUnary();
      ExprPtr Zero = makeExpr(Expr::Kind::IntLit, Loc);
      Zero->Value = 0;
      E->RHS = std::move(Zero);
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    SourceLoc Loc = cur().Loc;
    if (at(TokKind::IntLit)) {
      ExprPtr E = makeExpr(Expr::Kind::IntLit, Loc);
      E->Value = advance().IntValue;
      return E;
    }
    if (accept(TokKind::LParen)) {
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "to close parenthesized expression");
      return E;
    }
    if (at(TokKind::Ident)) {
      Token Name = advance();
      if (Name.Text == "__in") {
        expect(TokKind::LParen, "after '__in'");
        Token Port = expect(TokKind::IntLit, "as port number");
        expect(TokKind::RParen, "after port number");
        ExprPtr E = makeExpr(Expr::Kind::InPort, Loc);
        E->Port = Port.IntValue;
        return E;
      }
      if (accept(TokKind::LParen)) {
        ExprPtr E = makeExpr(Expr::Kind::CallE, Loc);
        E->Name = Name.Text;
        if (!at(TokKind::RParen)) {
          do {
            E->Args.push_back(parseExpr());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "after call arguments");
        return E;
      }
      if (accept(TokKind::LBracket)) {
        ExprPtr E = makeExpr(Expr::Kind::Index, Loc);
        E->Name = Name.Text;
        E->LHS = parseExpr();
        expect(TokKind::RBracket, "after index");
        return E;
      }
      ExprPtr E = makeExpr(Expr::Kind::VarRef, Loc);
      E->Name = Name.Text;
      return E;
    }
    error(format("expected expression, found %s", tokKindName(cur().Kind)));
    advance();
    return makeExpr(Expr::Kind::IntLit, Loc);
  }

  std::vector<Token> Toks;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
};

} // namespace

ProgramAST ucc::parseProgram(const std::string &Source,
                             DiagnosticEngine &Diag) {
  std::vector<Token> Toks = lex(Source, Diag);
  return ParserImpl(std::move(Toks), Diag).run();
}
