//===- frontend/Lexer.cpp ---------------------------------------------------==//

#include "frontend/Lexer.h"

#include "support/Format.h"

#include <cctype>
#include <unordered_map>

using namespace ucc;

const char *ucc::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwVoid:
    return "'void'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokKind> &keywordTable() {
  static const std::unordered_map<std::string, TokKind> Table = {
      {"int", TokKind::KwInt},       {"void", TokKind::KwVoid},
      {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},   {"for", TokKind::KwFor},
      {"return", TokKind::KwReturn}, {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
  };
  return Table;
}

class LexerImpl {
public:
  LexerImpl(const std::string &Source, DiagnosticEngine &Diag)
      : Src(Source), Diag(Diag) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      skipTrivia();
      Token T = next();
      Out.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Out;
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc here() const { return SourceLoc{Line, Col}; }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (Pos < Src.size() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        bool Closed = false;
        while (Pos < Src.size()) {
          if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            Closed = true;
            break;
          }
          advance();
        }
        if (!Closed)
          Diag.error(Start, "unterminated block comment");
        continue;
      }
      break;
    }
  }

  Token make(TokKind Kind, SourceLoc Loc) {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    SourceLoc Loc = here();
    if (Pos >= Src.size())
      return make(TokKind::Eof, Loc);

    char C = advance();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdent(C, Loc);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(C, Loc);

    auto twoChar = [&](char Next, TokKind Two, TokKind One) {
      if (peek() == Next) {
        advance();
        return make(Two, Loc);
      }
      return make(One, Loc);
    };

    switch (C) {
    case '(':
      return make(TokKind::LParen, Loc);
    case ')':
      return make(TokKind::RParen, Loc);
    case '{':
      return make(TokKind::LBrace, Loc);
    case '}':
      return make(TokKind::RBrace, Loc);
    case '[':
      return make(TokKind::LBracket, Loc);
    case ']':
      return make(TokKind::RBracket, Loc);
    case ',':
      return make(TokKind::Comma, Loc);
    case ';':
      return make(TokKind::Semi, Loc);
    case '+':
      return make(TokKind::Plus, Loc);
    case '-':
      return make(TokKind::Minus, Loc);
    case '*':
      return make(TokKind::Star, Loc);
    case '/':
      return make(TokKind::Slash, Loc);
    case '%':
      return make(TokKind::Percent, Loc);
    case '^':
      return make(TokKind::Caret, Loc);
    case '~':
      return make(TokKind::Tilde, Loc);
    case '&':
      return twoChar('&', TokKind::AmpAmp, TokKind::Amp);
    case '|':
      return twoChar('|', TokKind::PipePipe, TokKind::Pipe);
    case '=':
      return twoChar('=', TokKind::EqEq, TokKind::Assign);
    case '!':
      return twoChar('=', TokKind::NotEq, TokKind::Bang);
    case '<':
      if (peek() == '<') {
        advance();
        return make(TokKind::Shl, Loc);
      }
      return twoChar('=', TokKind::Le, TokKind::Lt);
    case '>':
      if (peek() == '>') {
        advance();
        return make(TokKind::Shr, Loc);
      }
      return twoChar('=', TokKind::Ge, TokKind::Gt);
    default:
      Diag.error(Loc, format("unexpected character '%c'", C));
      return next();
    }
  }

  Token lexIdent(char First, SourceLoc Loc) {
    std::string Text(1, First);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    auto It = keywordTable().find(Text);
    Token T = make(It != keywordTable().end() ? It->second : TokKind::Ident,
                   Loc);
    T.Text = std::move(Text);
    return T;
  }

  Token lexNumber(char First, SourceLoc Loc) {
    int64_t Value = 0;
    if (First == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      bool AnyDigit = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        int Digit = std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : std::tolower(D) - 'a' + 10;
        Value = Value * 16 + Digit;
        AnyDigit = true;
      }
      if (!AnyDigit)
        Diag.error(Loc, "hex literal requires at least one digit");
    } else {
      Value = First - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + (advance() - '0');
    }
    if (Value > 0xffff)
      Diag.error(Loc, format("integer literal %lld exceeds 16 bits",
                             static_cast<long long>(Value)));
    Token T = make(TokKind::IntLit, Loc);
    T.IntValue = Value;
    return T;
  }

  const std::string &Src;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

std::vector<Token> ucc::lex(const std::string &Source,
                            DiagnosticEngine &Diag) {
  return LexerImpl(Source, Diag).run();
}
