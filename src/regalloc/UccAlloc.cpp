//===- regalloc/UccAlloc.cpp - update-conscious register allocation -------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UCC-RA implementation: LCS alignment of the new pre-allocation code
/// against the old final code, chunking with threshold K, the greedy
/// preference/split planner, and the bridge into the full ILP window model
/// for straight-line functions. Per-function UccAllocStats are mirrored
/// into the telemetry registry (`ra.*`) on every exit path.
///
//===----------------------------------------------------------------------===//

#include "regalloc/UccAlloc.h"

#include "diff/Align.h"
#include "regalloc/LiveIntervals.h"
#include "regalloc/UccIlpModel.h"

#include "support/Arena.h"
#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ucc;

std::vector<std::vector<bool>>
ucc::computeDominators(const MachineFunction &MF) {
  size_t N = MF.Blocks.size();
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
  if (N == 0)
    return Dom;
  // Entry dominated only by itself.
  Dom[0].assign(N, false);
  Dom[0][0] = true;

  std::vector<std::vector<int>> Preds(N);
  for (size_t B = 0; B < N; ++B)
    for (int S : MF.Blocks[B].Succs)
      Preds[static_cast<size_t>(S)].push_back(static_cast<int>(B));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = 1; B < N; ++B) {
      std::vector<bool> NewDom(N, true);
      bool AnyPred = false;
      for (int P : Preds[B]) {
        AnyPred = true;
        for (size_t K = 0; K < N; ++K)
          NewDom[K] = NewDom[K] && Dom[static_cast<size_t>(P)][K];
      }
      if (!AnyPred)
        NewDom.assign(N, false); // unreachable
      NewDom[B] = true;
      if (NewDom != Dom[B]) {
        Dom[B] = std::move(NewDom);
        Changed = true;
      }
    }
  }
  return Dom;
}

namespace {

/// Structural similarity of two machine instructions across program
/// versions: same opcode and same version-independent operands (immediates,
/// symbol names, branch shape). Register operands are deliberately ignored
/// — deciding them identically is UCC-RA's whole job.
bool instrsSimilar(const MInstr &O, int OldBlock, const MachineFunction &OldF,
                   const MInstr &N, int NewBlock, const MachineFunction &NewF,
                   const UccContext &Ctx) {
  if (O.Op != N.Op)
    return false;
  switch (O.Op) {
  case MOp::LDI:
  case MOp::IN:
  case MOp::OUT:
    return O.Imm == N.Imm;
  case MOp::JMP:
  case MOp::BEQ:
  case MOp::BNE:
  case MOp::BLT:
  case MOp::BGE:
  case MOp::BGT:
  case MOp::BLE:
    // Compare the branch's block-relative shape.
    return (O.Target - OldBlock) == (N.Target - NewBlock);
  case MOp::CALL:
    return (*Ctx.OldFunctionNames)[static_cast<size_t>(O.Callee)] ==
           (*Ctx.NewFunctionNames)[static_cast<size_t>(N.Callee)];
  case MOp::LDG:
  case MOp::STG:
  case MOp::LDGX:
  case MOp::STGX:
    return (*Ctx.OldGlobalNames)[static_cast<size_t>(O.GlobalIdx)] ==
           (*Ctx.NewGlobalNames)[static_cast<size_t>(N.GlobalIdx)];
  case MOp::LDF:
  case MOp::STF:
  case MOp::LDFX:
  case MOp::STFX:
    // Frame objects are identified by (uniquified) name, which is derived
    // from the source variable and thus stable across versions.
    return OldF.FrameObjects[static_cast<size_t>(O.FrameIdx)].Name ==
           NewF.FrameObjects[static_cast<size_t>(N.FrameIdx)].Name;
  default:
    return true;
  }
}

/// One flattened instruction reference.
struct Flat {
  const MInstr *I;
  int Block;
  int IndexInBlock;
};

/// Per-round scratch lives in a bump arena: flattened instruction lists,
/// the match table, and the chunk mask are short-lived and allocation-hot.
using FlatList = ArenaVector<Flat>;
using IntList = ArenaVector<int>;
using BoolList = ArenaVector<bool>;

FlatList flatten(const MachineFunction &MF, Arena &A) {
  FlatList Out = makeArenaVector<Flat>(A);
  Out.reserve(static_cast<size_t>(MF.instrCount()));
  for (size_t B = 0; B < MF.Blocks.size(); ++B)
    for (size_t K = 0; K < MF.Blocks[B].Instrs.size(); ++K)
      Out.push_back(Flat{&MF.Blocks[B].Instrs[K], static_cast<int>(B),
                         static_cast<int>(K)});
  return Out;
}

/// The per-variable allocation plan.
struct Plan {
  enum class Kind { Whole, Split, Spill } K = Kind::Whole;
  int WholeReg = -1;
  // Split: EarlyReg on [Start, MovPos), LateReg from MovPos on; a
  // `mov LateReg, EarlyReg` is inserted immediately before MovPos.
  int EarlyReg = -1;
  int LateReg = -1;
  int MovPos = -1;

  int regAt(int Pos) const {
    if (K == Kind::Whole)
      return WholeReg;
    return Pos < MovPos ? EarlyReg : LateReg;
  }
};

/// Tracks which linear ranges each physical register is claimed for.
class RegClaims {
public:
  explicit RegClaims(const IntervalAnalysis &IA) : IA(IA) {}

  bool freeOn(int Reg, int Start, int End) const {
    if (IA.physBusyInRange(Reg, Start, End))
      return false;
    for (const auto &[S, E] : Claims[static_cast<size_t>(Reg)])
      if (S <= End && Start <= E)
        return false;
    return true;
  }

  void claim(int Reg, int Start, int End) {
    Claims[static_cast<size_t>(Reg)].push_back({Start, End});
  }

private:
  const IntervalAnalysis &IA;
  std::vector<std::vector<std::pair<int, int>>> Claims{
      static_cast<size_t>(NumPhysRegs)};
};

/// Everything known about one virtual register during planning.
struct VRegInfo {
  int VReg = -1;
  LiveInterval Interval;
  std::vector<std::pair<int, int>> Anchors; ///< (pos, required phys reg)
  int SoftPref = -1; ///< preference without an unchanged-chunk anchor
  std::vector<int> DefPositions;
  std::vector<int> OccPositions; ///< every referencing position
};

/// Attempts the paper's full ILP on a straight-line (single-block)
/// function. Returns true when the model fit the budget, solved, and was
/// applied; false falls back to the greedy engine.
bool tryIlpSingleBlock(MachineFunction &MF, const FlatList &NewLin,
                       const FlatList &OldLin, const IntList &MatchedOld,
                       const BoolList &InChangedChunk,
                       const UccAllocOptions &Opts,
                       const std::vector<double> &Freq,
                       const IntervalAnalysis &IA, UccAllocStats &Stats) {
  if (MF.Blocks.size() != 1)
    return false;
  size_t NewN = NewLin.size();

  // Window variable ids for every virtual register.
  std::map<int, int> VarOf;
  std::vector<int> VRegOf;
  auto varId = [&](int VReg) {
    auto [It, Inserted] = VarOf.emplace(VReg, static_cast<int>(VRegOf.size()));
    if (Inserted)
      VRegOf.push_back(VReg);
    return It->second;
  };

  WindowSpec Spec;
  Spec.NumRegs = NumPhysRegs;
  Spec.Etrans = Opts.EtransInstr;
  Spec.Eexe = Opts.EexeCycle;
  Spec.Cnt = Opts.Cnt;
  Spec.Instrs.reserve(NewN);

  // Which MInstr field each use slot reads (parallel to WindowInstr.Uses).
  struct SlotRef {
    int MInstr::*Reg;
    int MInstr::*Prov;
  };
  std::vector<std::vector<SlotRef>> UseSlots(NewN);

  for (size_t J = 0; J < NewN; ++J) {
    MInstr &I = MF.Blocks[0].Instrs[J];
    const MInstr *O =
        MatchedOld[J] >= 0 ? OldLin[static_cast<size_t>(MatchedOld[J])].I
                           : nullptr;
    bool Anchor = O && !InChangedChunk[J];

    WindowInstr W;
    W.Changed = InChangedChunk[J];
    int IRIdx = I.IRIndex;
    W.Freq = (IRIdx >= 0 && IRIdx < static_cast<int>(Freq.size()))
                 ? Freq[static_cast<size_t>(IRIdx)]
                 : 1.0;
    uint16_t Mask = 0;
    for (int R = 0; R < NumPhysRegs; ++R)
      if (IA.PhysBusy[static_cast<size_t>(R)].test(J))
        Mask |= static_cast<uint16_t>(1u << R);
    W.BusyMask = Mask;

    RegList Uses;
    minstrUses(I, Uses);
    auto addUse = [&](int MInstr::*Reg, int MInstr::*Prov, int OldReg) {
      if (I.*Reg < 0 || !isVirtReg(I.*Reg) || !Uses.contains(I.*Reg))
        return;
      W.Uses.push_back(varId(I.*Reg));
      W.UsePref.push_back(Anchor && isPhysReg(OldReg) ? OldReg : -1);
      UseSlots[J].push_back(SlotRef{Reg, Prov});
    };
    addUse(&MInstr::A, &MInstr::VA, O ? O->A : -1);
    addUse(&MInstr::B, &MInstr::VB, O ? O->B : -1);
    addUse(&MInstr::C, &MInstr::VC, O ? O->C : -1);

    RegList Defs;
    minstrDefs(I, Defs);
    if (!Defs.empty() && isVirtReg(Defs[0]) && !mopIsCall(I.Op)) {
      W.Def = varId(I.A);
      W.DefPref = Anchor && O && isPhysReg(O->A) ? O->A : -1;
    }
    Spec.Instrs.push_back(std::move(W));
  }
  Spec.NumVars = static_cast<int>(VRegOf.size());
  Spec.EntryReg.assign(static_cast<size_t>(Spec.NumVars), -1);
  Spec.ExitReg.assign(static_cast<size_t>(Spec.NumVars), -1);
  Spec.LiveOut.assign(static_cast<size_t>(Spec.NumVars), false);

  WindowModelStats ModelStats = windowModelStats(Spec);
  if (ModelStats.NumBinaries > Opts.IlpMaxBinaries)
    return false;

  ILPOptions IO;
  IO.TimeLimitSec = Opts.IlpTimeLimitSec;
  WindowSolution Sol = Opts.EnableWindowCache
                           ? solveWindowCached(Spec, IO, /*UsePrefHint=*/true)
                           : solveWindow(Spec, IO, /*UsePrefHint=*/true);
  if (Sol.Status != SolveStatus::Optimal &&
      Sol.Status != SolveStatus::Feasible)
    return false;

  // --- Apply: substitute operand registers.
  for (size_t J = 0; J < NewN; ++J) {
    MInstr &I = MF.Blocks[0].Instrs[J];
    const WindowInstr &W = Spec.Instrs[J];
    for (size_t Slot = 0; Slot < UseSlots[J].size(); ++Slot) {
      SlotRef Ref = UseSlots[J][Slot];
      I.*(Ref.Prov) = I.*(Ref.Reg);
      I.*(Ref.Reg) = Sol.UseRegs[J][Slot];
      assert(isPhysReg(I.*(Ref.Reg)) && "ILP left a use unassigned");
    }
    if (W.Def >= 0) {
      I.VA = I.A;
      I.A = Sol.DefReg[J];
      assert(isPhysReg(I.A) && "ILP left a def unassigned");
    }
  }

  // --- Apply: insert movs and spill code.
  std::vector<int> SlotOfVar(static_cast<size_t>(Spec.NumVars), -1);
  auto spillSlot = [&](int Var) {
    if (SlotOfVar[static_cast<size_t>(Var)] < 0)
      SlotOfVar[static_cast<size_t>(Var)] = MF.makeFrameObject(
          format("ilpspill.%d", Var), 1, /*IsSpill=*/true);
    return SlotOfVar[static_cast<size_t>(Var)];
  };

  std::vector<std::vector<MInstr>> Before(NewN), After(NewN);
  for (const WindowSolution::MovOp &M : Sol.Movs) {
    MInstr Mov;
    Mov.Op = MOp::MOV;
    Mov.A = M.ToReg;
    Mov.B = M.FromReg;
    Mov.VA = VRegOf[static_cast<size_t>(M.Var)];
    Mov.VB = Mov.VA;
    Mov.IRIndex = NewLin[static_cast<size_t>(M.Stmt)].I->IRIndex;
    Before[static_cast<size_t>(M.Stmt)].push_back(Mov);
  }
  for (const WindowSolution::SpillOp &S : Sol.Spills) {
    MInstr Op;
    Op.FrameIdx = spillSlot(S.Var);
    Op.A = S.Reg;
    Op.VA = VRegOf[static_cast<size_t>(S.Var)];
    if (S.IsLoad) {
      Op.Op = MOp::LDF;
      Op.IRIndex = NewLin[static_cast<size_t>(S.Stmt)].I->IRIndex;
      Before[static_cast<size_t>(S.Stmt)].push_back(Op);
    } else {
      Op.Op = MOp::STF;
      int AfterStmt = S.Stmt - 1; // stores land after the prior statement
      Op.IRIndex = NewLin[static_cast<size_t>(AfterStmt)].I->IRIndex;
      After[static_cast<size_t>(AfterStmt)].push_back(Op);
    }
  }

  std::vector<MInstr> Rebuilt;
  Rebuilt.reserve(NewN + Sol.Movs.size() + Sol.Spills.size());
  for (size_t J = 0; J < NewN; ++J) {
    for (const MInstr &I : Before[J])
      Rebuilt.push_back(I);
    Rebuilt.push_back(MF.Blocks[0].Instrs[J]);
    for (const MInstr &I : After[J])
      Rebuilt.push_back(I);
  }
  MF.Blocks[0].Instrs = std::move(Rebuilt);

  Stats.UsedIlp = true;
  Stats.IlpPivots = Sol.Pivots;
  Stats.InsertedMovs = Sol.InsertedMovs;
  Stats.PrefHonored = Sol.PrefHonored;
  Stats.PrefBroken = Sol.PrefBroken;
  Stats.SpilledVRegs += Sol.SpillLoads > 0 ? 1 : 0;

  if (Telemetry *T = currentTelemetry()) {
    T->addCounter("ra.ilp_binaries", Sol.NumBinaries);
    T->addCounter("ra.ilp_constraints", Sol.NumConstraints);
    // The theta approximation (eq. 15) charges Theta*Etrans per broken
    // operand slot; the true nonlinear objective (eq. 12) charges Etrans
    // once per unchanged statement with any broken slot. Measure the gap
    // on the solution actually chosen.
    int BrokenStmts = 0;
    for (size_t J = 0; J < Spec.Instrs.size(); ++J) {
      const WindowInstr &W = Spec.Instrs[J];
      if (W.Changed)
        continue;
      bool Broken = false;
      for (size_t Slot = 0; Slot < W.Uses.size(); ++Slot)
        if (W.UsePref[Slot] >= 0 &&
            Sol.UseRegs[J][Slot] != W.UsePref[Slot])
          Broken = true;
      if (W.Def >= 0 && W.DefPref >= 0 && Sol.DefReg[J] != W.DefPref)
        Broken = true;
      BrokenStmts += Broken;
    }
    double Nonlinear = Spec.Etrans * BrokenStmts;
    double Linearized = Spec.Theta * Spec.Etrans * Sol.PrefBroken;
    T->addGauge("ra.theta_gap_joules", Nonlinear - Linearized);
  }
  return true;
}

} // namespace

UccAllocStats ucc::allocateUcc(MachineFunction &MF, const UccContext &Ctx,
                               const UccAllocOptions &Opts,
                               const std::vector<double> &Freq) {
  UccAllocStats Stats;

  // Mirrors the final Stats into the `ra.*` telemetry counters on every
  // exit path (no-op without an active registry).
  struct StatsExporter {
    const UccAllocStats &S;
    ~StatsExporter() {
      Telemetry *T = currentTelemetry();
      if (!T)
        return;
      T->addCounter("ra.functions");
      T->addCounter("ra.total_instrs", S.TotalInstrs);
      T->addCounter("ra.matched_instrs", S.MatchedInstrs);
      T->addCounter("ra.chunks_changed", S.ChangedChunks);
      T->addCounter("ra.chunks_unchanged", S.UnchangedChunks);
      T->addCounter("ra.anchor_occurrences", S.AnchorOccurrences);
      T->addCounter("ra.pref_honored", S.PrefHonored);
      T->addCounter("ra.pref_broken", S.PrefBroken);
      T->addCounter("ra.inserted_movs", S.InsertedMovs);
      T->addCounter("ra.spilled_vregs", S.SpilledVRegs);
      if (S.UsedIlp)
        T->addCounter("ra.ilp_windows");
    }
  } Exporter{Stats};

  // No old code for this function: plain update-oblivious allocation.
  if (!Ctx.OldFinal) {
    RAStats LS = allocateLinearScan(MF);
    Stats.SpilledVRegs = LS.SpilledVRegs;
    Stats.TotalInstrs = MF.instrCount();
    return Stats;
  }

  memoryHomeAcrossCalls(MF);
  Arena Scratch;
  FlatList OldLin = flatten(*Ctx.OldFinal, Scratch);

  for (int Round = 0; Round < 32; ++Round) {
    // Per-round statistics; a spill restarts the round from scratch.
    Stats.AnchorOccurrences = 0;
    Stats.PrefHonored = 0;
    Stats.PrefBroken = 0;
    Stats.InsertedMovs = 0;

    IntervalAnalysis IA = analyzeIntervals(MF);
    FlatList NewLin = flatten(MF, Scratch);
    size_t OldN = OldLin.size(), NewN = NewLin.size();
    Stats.TotalInstrs = static_cast<int>(NewN);

    // --- Alignment (skip pathological sizes; everything becomes changed).
    IntList MatchedOld(NewN, -1, ArenaAllocator<int>(Scratch));
    if (OldN * NewN <= 25'000'000) {
      auto Matches = lcsAlign(OldN, NewN, [&](size_t I, size_t J) {
        return instrsSimilar(*OldLin[I].I, OldLin[I].Block, *Ctx.OldFinal,
                             *NewLin[J].I, NewLin[J].Block, MF, Ctx);
      });
      for (const auto &[OldIdx, NewIdx] : Matches)
        MatchedOld[static_cast<size_t>(NewIdx)] = OldIdx;
    }

    // --- Chunking with threshold K (section 3.2): unchanged runs shorter
    // than K are folded into the surrounding changed chunk.
    BoolList InChangedChunk(NewN, false, ArenaAllocator<bool>(Scratch));
    {
      size_t J = 0;
      while (J < NewN) {
        bool Changed = MatchedOld[J] < 0;
        size_t RunEnd = J;
        while (RunEnd < NewN && (MatchedOld[RunEnd] < 0) == Changed)
          ++RunEnd;
        bool Fold = Changed || (RunEnd - J) <
                                   static_cast<size_t>(Opts.ChunkK);
        for (size_t K = J; K < RunEnd; ++K)
          InChangedChunk[K] = Fold;
        J = RunEnd;
      }
      // Chunk census of this (final, unless a spill restarts) round:
      // maximal runs of the folded classification.
      Stats.ChangedChunks = 0;
      Stats.UnchangedChunks = 0;
      for (size_t K = 0; K < NewN; ++K)
        if (K == 0 || InChangedChunk[K] != InChangedChunk[K - 1])
          ++(InChangedChunk[K] ? Stats.ChangedChunks
                               : Stats.UnchangedChunks);
    }

    int Matched = 0;
    for (size_t J = 0; J < NewN; ++J)
      Matched += MatchedOld[J] >= 0;
    Stats.MatchedInstrs = Matched;

    // Strategy Ilp/Hybrid: try the paper's full 0/1 program when the
    // function is straight-line and the model fits the budget.
    if (Opts.Strategy != UccStrategy::Greedy &&
        tryIlpSingleBlock(MF, NewLin, OldLin, MatchedOld, InChangedChunk,
                          Opts, Freq, IA, Stats)) {
      Stats.TotalInstrs = MF.instrCount();
      return Stats;
    }

    // --- Collect per-vreg occurrences, anchors and preferences.
    std::map<int, VRegInfo> Info;
    auto infoFor = [&](int V) -> VRegInfo & {
      VRegInfo &VI = Info[V];
      if (VI.VReg < 0) {
        VI.VReg = V;
        VI.Interval =
            IA.VRegIntervals[static_cast<size_t>(V - FirstVReg)];
      }
      return VI;
    };

    for (size_t J = 0; J < NewN; ++J) {
      const MInstr &N = *NewLin[J].I;
      const MInstr *O =
          MatchedOld[J] >= 0 ? OldLin[static_cast<size_t>(MatchedOld[J])].I
                             : nullptr;
      bool Anchor = O && !InChangedChunk[J];

      auto slot = [&](int NewReg, int OldReg) {
        if (!isVirtReg(NewReg))
          return;
        VRegInfo &VI = infoFor(NewReg);
        VI.OccPositions.push_back(static_cast<int>(J));
        if (O && isPhysReg(OldReg)) {
          if (Anchor)
            VI.Anchors.push_back({static_cast<int>(J), OldReg});
          else if (VI.SoftPref < 0)
            VI.SoftPref = OldReg;
        }
      };
      slot(N.A, O ? O->A : -1);
      slot(N.B, O ? O->B : -1);
      slot(N.C, O ? O->C : -1);
      RegList NDefs;
      minstrDefs(N, NDefs);
      for (int D : NDefs)
        if (isVirtReg(D))
          infoFor(D).DefPositions.push_back(static_cast<int>(J));
    }

    // --- Frequencies per linear position (via originating IR statement).
    auto freqAt = [&](int Pos) {
      int IRIdx = NewLin[static_cast<size_t>(Pos)].I->IRIndex;
      if (IRIdx >= 0 && IRIdx < static_cast<int>(Freq.size()))
        return Freq[static_cast<size_t>(IRIdx)];
      return 1.0;
    };

    // --- Dominators for the split-safety check.
    std::vector<std::vector<bool>> Dom = computeDominators(MF);

    // --- Plan registers, anchored variables first.
    std::vector<VRegInfo *> OrderedVRegs;
    for (auto &[V, VI] : Info)
      if (VI.Interval.valid())
        OrderedVRegs.push_back(&VI);
    std::sort(OrderedVRegs.begin(), OrderedVRegs.end(),
              [](const VRegInfo *L, const VRegInfo *R) {
                bool LA = !L->Anchors.empty(), RA = !R->Anchors.empty();
                if (LA != RA)
                  return LA; // anchored first
                if (L->Interval.Start != R->Interval.Start)
                  return L->Interval.Start < R->Interval.Start;
                return L->VReg < R->VReg;
              });

    RegClaims Claims(IA);
    std::map<int, Plan> Plans;
    std::vector<int> Spilled;

    for (VRegInfo *VI : OrderedVRegs) {
      int S = VI->Interval.Start, E = VI->Interval.End;
      Plan P;

      // Majority anchor register and its occurrence count.
      int AnchorReg = -1, AnchorCount = 0;
      if (!VI->Anchors.empty()) {
        std::map<int, int> Votes;
        for (const auto &[Pos, Reg] : VI->Anchors)
          ++Votes[Reg];
        for (const auto &[Reg, N] : Votes)
          if (N > AnchorCount) {
            AnchorCount = N;
            AnchorReg = Reg;
          }
      }
      Stats.AnchorOccurrences += static_cast<int>(VI->Anchors.size());

      auto finishWhole = [&](int Reg) {
        P.K = Plan::Kind::Whole;
        P.WholeReg = Reg;
        Claims.claim(Reg, S, E);
      };

      bool Planned = false;

      // Plan 1: the preferred register for the whole range.
      int HardOrSoft = AnchorReg >= 0 ? AnchorReg : VI->SoftPref;
      if (HardOrSoft >= 0 && Claims.freeOn(HardOrSoft, S, E)) {
        finishWhole(HardOrSoft);
        Planned = true;
      }

      // Plan 2: split the range so the anchored region keeps the old
      // register (paper Fig. 4(c)), if the energy model approves.
      if (!Planned && AnchorReg >= 0 && Opts.EnableSplits) {
        int MovPos = -1;
        for (const auto &[Pos, Reg] : VI->Anchors)
          if (Reg == AnchorReg && (MovPos < 0 || Pos < MovPos))
            MovPos = Pos;

        bool Safe = MovPos > S && Claims.freeOn(AnchorReg, MovPos, E);
        // All defs must precede the split point.
        for (int D : VI->DefPositions)
          Safe &= D < MovPos;
        // The split block must dominate every later reference.
        if (Safe) {
          int MovBlock = NewLin[static_cast<size_t>(MovPos)].Block;
          for (int Occ : VI->OccPositions)
            if (Occ >= MovPos) {
              int OB = NewLin[static_cast<size_t>(Occ)].Block;
              Safe &= Dom[static_cast<size_t>(OB)]
                         [static_cast<size_t>(MovBlock)];
            }
        }
        if (Safe) {
          int Alt = -1;
          for (int R = 0; R < NumPhysRegs; ++R)
            if (R != AnchorReg && Claims.freeOn(R, S, MovPos)) {
              Alt = R;
              break;
            }
          if (Alt >= 0) {
            double CostMov = Opts.EtransInstr +
                             Opts.Cnt * Opts.EexeCycle * freqAt(MovPos);
            double CostBreak = Opts.EtransInstr * AnchorCount;
            if (CostMov < CostBreak) {
              P.K = Plan::Kind::Split;
              P.EarlyReg = Alt;
              P.LateReg = AnchorReg;
              P.MovPos = MovPos;
              Claims.claim(Alt, S, MovPos);
              Claims.claim(AnchorReg, MovPos, E);
              ++Stats.InsertedMovs;
              Planned = true;
            }
          }
        }
      }

      // Plan 3: any free register for the whole range.
      if (!Planned) {
        for (int R = 0; R < NumPhysRegs; ++R)
          if (Claims.freeOn(R, S, E)) {
            finishWhole(R);
            Planned = true;
            break;
          }
      }

      if (!Planned) {
        Spilled.push_back(VI->VReg);
        continue;
      }
      Plans[VI->VReg] = P;

      // Anchor bookkeeping.
      for (const auto &[Pos, Reg] : VI->Anchors) {
        if (Plans[VI->VReg].regAt(Pos) == Reg)
          ++Stats.PrefHonored;
        else
          ++Stats.PrefBroken;
      }
    }

    if (!Spilled.empty()) {
      Stats.SpilledVRegs += static_cast<int>(Spilled.size());
      rewriteSpills(MF, Spilled);
      continue;
    }

    // --- Rewrite: substitute registers and insert split movs.
    // Substitution first (positions still match NewLin).
    {
      int Pos = 0;
      for (MBlock &BB : MF.Blocks) {
        for (MInstr &I : BB.Instrs) {
          auto subst = [&](int &Reg, int &Orig) {
            if (Reg < 0 || isPhysReg(Reg))
              return;
            auto It = Plans.find(Reg);
            assert(It != Plans.end() && "vreg without a plan");
            Orig = Reg;
            Reg = It->second.regAt(Pos);
            assert(Reg >= 0 && Reg < NumPhysRegs && "bad planned register");
          };
          subst(I.A, I.VA);
          subst(I.B, I.VB);
          subst(I.C, I.VC);
          ++Pos;
        }
      }
    }

    // Collect mov insertions as (block, index-in-block, instr), then apply
    // per block in descending index order so earlier indices stay valid.
    std::vector<std::vector<std::pair<int, MInstr>>> Inserts(
        MF.Blocks.size());
    for (const auto &[V, P] : Plans) {
      if (P.K != Plan::Kind::Split)
        continue;
      const Flat &At = NewLin[static_cast<size_t>(P.MovPos)];
      MInstr Mov;
      Mov.Op = MOp::MOV;
      Mov.A = P.LateReg;
      Mov.B = P.EarlyReg;
      Mov.VA = V;
      Mov.VB = V;
      Mov.IRIndex = At.I->IRIndex;
      Inserts[static_cast<size_t>(At.Block)].push_back(
          {At.IndexInBlock, Mov});
    }
    for (size_t B = 0; B < Inserts.size(); ++B) {
      auto &List = Inserts[B];
      std::sort(List.begin(), List.end(),
                [](const auto &L, const auto &R) { return L.first > R.first; });
      for (const auto &[Idx, Mov] : List)
        MF.Blocks[B].Instrs.insert(MF.Blocks[B].Instrs.begin() + Idx, Mov);
    }
    Stats.ArenaBytes = static_cast<int64_t>(Scratch.bytesAllocated());
    return Stats;
  }

  assert(false && "UCC-RA failed to converge");
  Stats.ArenaBytes = static_cast<int64_t>(Scratch.bytesAllocated());
  return Stats;
}
