//===- regalloc/LinearScan.cpp ------------------------------------------------==//

#include "regalloc/LinearScan.h"

#include "regalloc/LiveIntervals.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace ucc;

void ucc::applyAssignment(MachineFunction &MF,
                          const std::vector<int> &Assignment) {
  for (MBlock &BB : MF.Blocks) {
    for (MInstr &I : BB.Instrs) {
      auto subst = [&](int &Reg, int &Orig) {
        if (Reg < 0 || isPhysReg(Reg))
          return;
        Orig = Reg;
        int Phys = Assignment[static_cast<size_t>(Reg)];
        assert(Phys >= 0 && Phys < NumPhysRegs &&
               "virtual register left unassigned");
        Reg = Phys;
      };
      subst(I.A, I.VA);
      subst(I.B, I.VB);
      subst(I.C, I.VC);
    }
  }
}

RAStats ucc::allocateLinearScan(MachineFunction &MF) {
  RAStats Stats;
  Stats.HomedAcrossCalls = memoryHomeAcrossCalls(MF);

  for (int Round = 0; Round < 32; ++Round) {
    ++Stats.Rounds;
    IntervalAnalysis IA = analyzeIntervals(MF);

    // Collect valid vreg intervals, sorted by (start, reg) for determinism.
    std::vector<LiveInterval> Order;
    for (const LiveInterval &IV : IA.VRegIntervals)
      if (IV.valid())
        Order.push_back(IV);
    std::sort(Order.begin(), Order.end(),
              [](const LiveInterval &L, const LiveInterval &R) {
                return std::tie(L.Start, L.Reg) < std::tie(R.Start, R.Reg);
              });

    std::vector<int> Assignment(static_cast<size_t>(MF.NextVReg), -1);
    std::vector<LiveInterval> Active; // intervals currently holding a reg
    std::vector<int> Spilled;
    // Next-fit register selection: rotate through the file instead of
    // always reusing the lowest index. Common in linear-scan allocators
    // (spreads pressure); it also makes the baseline order-sensitive the
    // way the paper observes for gcc — an inserted live range rotates
    // every later assignment (section 5.3's "propagated" changes).
    int Cursor = 0;

    auto regOfActive = [&](const LiveInterval &IV) {
      return Assignment[static_cast<size_t>(IV.Reg)];
    };

    for (const LiveInterval &IV : Order) {
      // Expire intervals that ended before this one starts.
      Active.erase(std::remove_if(Active.begin(), Active.end(),
                                  [&](const LiveInterval &A) {
                                    return A.End < IV.Start;
                                  }),
                   Active.end());

      // Candidate registers: free among active and quiet in PhysBusy.
      bool TakenByActive[NumPhysRegs] = {};
      for (const LiveInterval &A : Active)
        TakenByActive[regOfActive(A)] = true;

      int Chosen = -1;
      for (int Step = 0; Step < NumPhysRegs; ++Step) {
        int R = (Cursor + Step) % NumPhysRegs;
        if (TakenByActive[R])
          continue;
        if (IA.physBusyInRange(R, IV.Start, IV.End))
          continue;
        Chosen = R;
        Cursor = (R + 1) % NumPhysRegs;
        break;
      }

      if (Chosen >= 0) {
        Assignment[static_cast<size_t>(IV.Reg)] = Chosen;
        Active.push_back(IV);
        continue;
      }

      // No free register: spill the active interval with the furthest end
      // whose register this interval may legally take; otherwise spill the
      // incoming interval itself.
      int VictimIdx = -1;
      for (size_t K = 0; K < Active.size(); ++K) {
        if (IA.physBusyInRange(regOfActive(Active[K]), IV.Start, IV.End))
          continue;
        if (VictimIdx < 0 || Active[K].End > Active[VictimIdx].End)
          VictimIdx = static_cast<int>(K);
      }
      if (VictimIdx >= 0 && Active[static_cast<size_t>(VictimIdx)].End >
                                IV.End) {
        const LiveInterval &Victim = Active[static_cast<size_t>(VictimIdx)];
        Assignment[static_cast<size_t>(IV.Reg)] = regOfActive(Victim);
        Spilled.push_back(Victim.Reg);
        Assignment[static_cast<size_t>(Victim.Reg)] = -1;
        Active.erase(Active.begin() + VictimIdx);
        Active.push_back(IV);
      } else {
        Spilled.push_back(IV.Reg);
      }
    }

    if (Spilled.empty()) {
      applyAssignment(MF, Assignment);
      return Stats;
    }
    Stats.SpilledVRegs += static_cast<int>(Spilled.size());
    rewriteSpills(MF, Spilled);
  }
  assert(false && "linear scan failed to converge");
  return Stats;
}
