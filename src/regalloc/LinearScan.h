//===- regalloc/LinearScan.h - baseline update-oblivious allocator --------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline, update-*oblivious* register allocator ("GCC-RA" in the
/// paper's evaluation): a classic linear scan over layout-order intervals.
/// It knows nothing about previous compilations, so any shift in virtual-
/// register numbering after a source change reshuffles assignments — which
/// is exactly the behavior UCC-RA is measured against.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_REGALLOC_LINEARSCAN_H
#define UCC_REGALLOC_LINEARSCAN_H

#include "codegen/MachineIR.h"

namespace ucc {

/// Statistics reported by a register-allocation run.
struct RAStats {
  int HomedAcrossCalls = 0; ///< vregs given frame homes by the pre-pass
  int SpilledVRegs = 0;     ///< vregs spilled for pressure
  int Rounds = 0;           ///< allocate/rewrite iterations
};

/// Allocates \p MF in place: after the call every register operand is
/// physical and each operand's originating virtual register is recorded in
/// MInstr::VA/VB/VC. Asserts that allocation converges.
RAStats allocateLinearScan(MachineFunction &MF);

/// Substitutes \p Assignment (vreg id -> physical register) into \p MF,
/// recording operand provenance. Shared by both allocators.
void applyAssignment(MachineFunction &MF, const std::vector<int> &Assignment);

} // namespace ucc

#endif // UCC_REGALLOC_LINEARSCAN_H
