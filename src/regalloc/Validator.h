//===- regalloc/Validator.h - allocation correctness checking -------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dataflow validation of a register-allocated machine function: walks the
/// CFG tracking which virtual register each physical register currently
/// holds (via the MInstr::VA/VB/VC provenance the allocators record) and
/// reports any use that reads a register holding the wrong value. Both
/// allocators are property-tested against this, and the UCC allocator runs
/// it after live-range splits.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_REGALLOC_VALIDATOR_H
#define UCC_REGALLOC_VALIDATOR_H

#include "codegen/MachineIR.h"

#include <string>
#include <vector>

namespace ucc {

/// Validates a fully allocated \p MF. Returns human-readable problem
/// descriptions; empty means no inconsistency was found.
std::vector<std::string> validateAllocation(const MachineFunction &MF);

} // namespace ucc

#endif // UCC_REGALLOC_VALIDATOR_H
