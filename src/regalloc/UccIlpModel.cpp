//===- regalloc/UccIlpModel.cpp - the paper's 0/1 program for UCC-RA ------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds and solves the 0/1 program of sections 3.3-3.4: the ModelIndex
/// variable space, constraint families (1)-(9), the linearized objective
/// (10)-(15) with the theta = 3/4 coefficient, hint construction from the
/// preferred-register tags, solution decoding, and the exponential exact
/// (nonlinear-objective) enumerator for the section 5.6 comparison.
///
//===----------------------------------------------------------------------===//

#include "regalloc/UccIlpModel.h"

#include <cassert>
#include <cmath>

using namespace ucc;

namespace {

/// Index space for the model's binary variables. Points P run 0..S, where
/// point P corresponds to "after statement P-1" (P = 0 is window entry).
class ModelIndex {
public:
  ModelIndex(const WindowSpec &Spec) : Spec(Spec) {
    S = static_cast<int>(Spec.Instrs.size());
    V = Spec.NumVars;
    R = Spec.NumRegs;

    // Window liveness (backward).
    LiveAtPoint.assign(static_cast<size_t>(V),
                       std::vector<bool>(static_cast<size_t>(S + 1), false));
    std::vector<bool> Live(static_cast<size_t>(V), false);
    for (int Var = 0; Var < V; ++Var)
      Live[static_cast<size_t>(Var)] =
          Spec.LiveOut[static_cast<size_t>(Var)] ||
          Spec.ExitReg[static_cast<size_t>(Var)] >= 0;
    for (int Var = 0; Var < V; ++Var)
      LiveAtPoint[static_cast<size_t>(Var)][static_cast<size_t>(S)] =
          Live[static_cast<size_t>(Var)];
    for (int Stmt = S - 1; Stmt >= 0; --Stmt) {
      const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
      if (I.Def >= 0)
        Live[static_cast<size_t>(I.Def)] = false;
      for (int U : I.Uses)
        Live[static_cast<size_t>(U)] = true;
      for (int Var = 0; Var < V; ++Var)
        LiveAtPoint[static_cast<size_t>(Var)][static_cast<size_t>(Stmt)] =
            Live[static_cast<size_t>(Var)];
    }
  }

  /// A variable is "active" at a point when it is live there or a def just
  /// landed there (a dead def still occupies a register for an instant).
  bool active(int Var, int Point) const {
    if (LiveAtPoint[static_cast<size_t>(Var)][static_cast<size_t>(Point)])
      return true;
    return Point > 0 &&
           Spec.Instrs[static_cast<size_t>(Point - 1)].Def == Var;
  }

  bool liveAt(int Var, int Point) const {
    return LiveAtPoint[static_cast<size_t>(Var)][static_cast<size_t>(Point)];
  }

  /// Builds all variable indices into \p P.
  void allocate(LPProblem &P) {
    auto grid3 = [&](std::vector<int> &Store) {
      Store.assign(static_cast<size_t>(V) * static_cast<size_t>(S + 1) *
                       static_cast<size_t>(R),
                   -1);
    };
    grid3(LocIdx);
    grid3(MovIdx);
    grid3(LdIdx);
    MemIdx.assign(static_cast<size_t>(V) * static_cast<size_t>(S + 1), -1);
    StIdx.assign(static_cast<size_t>(V) * static_cast<size_t>(S + 1), -1);
    UseIdx.clear();

    for (int Var = 0; Var < V; ++Var) {
      for (int Point = 0; Point <= S; ++Point) {
        if (!active(Var, Point))
          continue;
        for (int Reg = 0; Reg < R; ++Reg)
          at3(LocIdx, Var, Point, Reg) = P.addBinaryVar(0.0);
        if (Point > 0) // memory copies persist only while live
          at2(MemIdx, Var, Point) = P.addBinaryVar(0.0);
      }
    }
    for (int Stmt = 0; Stmt < S; ++Stmt) {
      const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
      double MoveCost = Spec.Etrans + Spec.Cnt * Spec.Eexe * I.Freq;
      double SpillCost = Spec.Etrans + 2.0 * Spec.Cnt * Spec.Eexe * I.Freq;
      for (int Var = 0; Var < V; ++Var) {
        if (!liveAt(Var, Stmt))
          continue; // nothing to move/load before Stmt
        for (int Reg = 0; Reg < R; ++Reg) {
          at3(MovIdx, Var, Stmt, Reg) = P.addBinaryVar(MoveCost);
          at3(LdIdx, Var, Stmt, Reg) = P.addBinaryVar(SpillCost);
        }
      }
      // Stores happen after the statement (point Stmt + 1).
      for (int Var = 0; Var < V; ++Var)
        if (active(Var, Stmt + 1))
          at2(StIdx, Var, Stmt + 1) = P.addBinaryVar(SpillCost);
      // Use-operand registers.
      std::vector<std::vector<int>> Slots;
      for (size_t K = 0; K < I.Uses.size(); ++K) {
        std::vector<int> Regs(static_cast<size_t>(R), -1);
        for (int Reg = 0; Reg < R; ++Reg)
          Regs[static_cast<size_t>(Reg)] = P.addBinaryVar(0.0);
        Slots.push_back(std::move(Regs));
      }
      UseIdx.push_back(std::move(Slots));
    }
  }

  int &at3(std::vector<int> &Store, int Var, int Point, int Reg) {
    return Store[(static_cast<size_t>(Var) * static_cast<size_t>(S + 1) +
                  static_cast<size_t>(Point)) *
                     static_cast<size_t>(R) +
                 static_cast<size_t>(Reg)];
  }
  int at3c(const std::vector<int> &Store, int Var, int Point,
           int Reg) const {
    return Store[(static_cast<size_t>(Var) * static_cast<size_t>(S + 1) +
                  static_cast<size_t>(Point)) *
                     static_cast<size_t>(R) +
                 static_cast<size_t>(Reg)];
  }
  int &at2(std::vector<int> &Store, int Var, int Point) {
    return Store[static_cast<size_t>(Var) * static_cast<size_t>(S + 1) +
                 static_cast<size_t>(Point)];
  }
  int at2c(const std::vector<int> &Store, int Var, int Point) const {
    return Store[static_cast<size_t>(Var) * static_cast<size_t>(S + 1) +
                 static_cast<size_t>(Point)];
  }

  int loc(int Var, int Point, int Reg) const {
    return at3c(LocIdx, Var, Point, Reg);
  }
  int mov(int Var, int Stmt, int Reg) const {
    return at3c(MovIdx, Var, Stmt, Reg);
  }
  int ld(int Var, int Stmt, int Reg) const {
    return at3c(LdIdx, Var, Stmt, Reg);
  }
  int mem(int Var, int Point) const { return at2c(MemIdx, Var, Point); }
  int st(int Var, int Point) const { return at2c(StIdx, Var, Point); }
  int use(int Stmt, int Slot, int Reg) const {
    return UseIdx[static_cast<size_t>(Stmt)][static_cast<size_t>(Slot)]
                 [static_cast<size_t>(Reg)];
  }

  const WindowSpec &Spec;
  int S = 0, V = 0, R = 0;
  std::vector<std::vector<bool>> LiveAtPoint;

  std::vector<int> LocIdx, MovIdx, LdIdx, MemIdx, StIdx;
  std::vector<std::vector<std::vector<int>>> UseIdx;
};

/// Builds the full problem. Returns the objective constant skipped by the
/// "reward matched preferences" terms so reported objectives are absolute.
double buildProblem(const WindowSpec &Spec, ModelIndex &Ix, LPProblem &P) {
  Ix.allocate(P);
  int S = Ix.S, V = Ix.V, R = Ix.R;
  double Offset = 0.0;

  auto term = [&](int VarIdx, double Coef) {
    return std::pair<int, double>{VarIdx, Coef};
  };

  // --- Entry conditions.
  for (int Var = 0; Var < V; ++Var) {
    if (!Ix.active(Var, 0))
      continue;
    int Req = Spec.EntryReg[static_cast<size_t>(Var)];
    if (Req >= 0) {
      // Pinned: in the required register and nowhere else (a value cannot
      // start out replicated for free).
      for (int Reg = 0; Reg < R; ++Reg)
        P.addEQ({term(Ix.loc(Var, 0, Reg), 1.0)}, Reg == Req ? 1.0 : 0.0);
    } else {
      std::vector<std::pair<int, double>> One;
      for (int Reg = 0; Reg < R; ++Reg)
        One.push_back(term(Ix.loc(Var, 0, Reg), 1.0));
      P.addEQ(One, 1.0);
    }
  }

  // --- Per-statement structure.
  for (int Stmt = 0; Stmt < S; ++Stmt) {
    const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];

    // Defs land in exactly one register (paper eq. 1).
    if (I.Def >= 0) {
      std::vector<std::pair<int, double>> Sum;
      for (int Reg = 0; Reg < R; ++Reg)
        Sum.push_back(term(Ix.loc(I.Def, Stmt + 1, Reg), 1.0));
      P.addEQ(Sum, 1.0);
    }

    // Continuity for everything else that survives the statement
    // (paper eq. 3): after = before | mov-in | load.
    for (int Var = 0; Var < V; ++Var) {
      if (Var == I.Def || !Ix.active(Var, Stmt + 1) ||
          !Ix.liveAt(Var, Stmt))
        continue;
      for (int Reg = 0; Reg < R; ++Reg)
        P.addLE({term(Ix.loc(Var, Stmt + 1, Reg), 1.0),
                 term(Ix.loc(Var, Stmt, Reg), -1.0),
                 term(Ix.mov(Var, Stmt, Reg), -1.0),
                 term(Ix.ld(Var, Stmt, Reg), -1.0)},
                0.0);
      // Presence: a live value must be somewhere (register or memory).
      std::vector<std::pair<int, double>> Somewhere;
      for (int Reg = 0; Reg < R; ++Reg)
        Somewhere.push_back(term(Ix.loc(Var, Stmt + 1, Reg), 1.0));
      Somewhere.push_back(term(Ix.mem(Var, Stmt + 1), 1.0));
      P.addGE(Somewhere, 1.0);
    }

    for (int Var = 0; Var < V; ++Var) {
      if (!Ix.liveAt(Var, Stmt))
        continue;
      // Mov needs a source register (paper eq. 2).
      std::vector<std::pair<int, double>> MovSum;
      for (int Reg = 0; Reg < R; ++Reg)
        MovSum.push_back(term(Ix.mov(Var, Stmt, Reg), 1.0));
      for (int Reg = 0; Reg < R; ++Reg)
        MovSum.push_back(term(Ix.loc(Var, Stmt, Reg), -1.0));
      P.addLE(MovSum, 0.0);
      // Loads need the value in memory (paper eq. 7).
      if (Ix.mem(Var, Stmt) >= 0) {
        for (int Reg = 0; Reg < R; ++Reg)
          P.addLE({term(Ix.ld(Var, Stmt, Reg), 1.0),
                   term(Ix.mem(Var, Stmt), -1.0)},
                  0.0);
      } else {
        for (int Reg = 0; Reg < R; ++Reg)
          P.addEQ({term(Ix.ld(Var, Stmt, Reg), 1.0)}, 0.0);
      }
    }

    // Memory continuity (paper eq. 4): mem after = mem before | store.
    for (int Var = 0; Var < V; ++Var) {
      int MemAfter = Ix.mem(Var, Stmt + 1);
      if (MemAfter < 0)
        continue;
      std::vector<std::pair<int, double>> Terms = {term(MemAfter, 1.0)};
      if (Ix.mem(Var, Stmt) >= 0)
        Terms.push_back(term(Ix.mem(Var, Stmt), -1.0));
      if (Ix.st(Var, Stmt + 1) >= 0)
        Terms.push_back(term(Ix.st(Var, Stmt + 1), -1.0));
      P.addLE(Terms, 0.0);
      // A store reads the value from a register (paper eq. 4).
      if (Ix.st(Var, Stmt + 1) >= 0) {
        std::vector<std::pair<int, double>> StTerms = {
            term(Ix.st(Var, Stmt + 1), 1.0)};
        for (int Reg = 0; Reg < R; ++Reg)
          StTerms.push_back(term(Ix.loc(Var, Stmt + 1, Reg), -1.0));
        P.addLE(StTerms, 0.0);
      }
    }

    // Uses read from a register (paper eqs. 5-6).
    for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot) {
      int Var = I.Uses[Slot];
      std::vector<std::pair<int, double>> One;
      for (int Reg = 0; Reg < R; ++Reg)
        One.push_back(term(Ix.use(Stmt, static_cast<int>(Slot), Reg), 1.0));
      P.addEQ(One, 1.0);
      for (int Reg = 0; Reg < R; ++Reg)
        P.addLE({term(Ix.use(Stmt, static_cast<int>(Slot), Reg), 1.0),
                 term(Ix.loc(Var, Stmt, Reg), -1.0),
                 term(Ix.mov(Var, Stmt, Reg), -1.0),
                 term(Ix.ld(Var, Stmt, Reg), -1.0)},
                0.0);
    }

    // Register exclusivity at the pre-statement moment (paper eq. 8),
    // honoring the busy mask. A value whose def was immediately dead (the
    // variable is redefined before any use) still has a forced def
    // register, but that register frees as soon as the defining statement
    // retires: it conflicts with values held *across* the gap, yet movs
    // and loads arriving for this statement may reuse it.
    int DeadDefVar = -1;
    if (Stmt > 0) {
      int Prev = Spec.Instrs[static_cast<size_t>(Stmt - 1)].Def;
      if (Prev >= 0 && !Ix.liveAt(Prev, Stmt))
        DeadDefVar = Prev;
    }
    for (int Reg = 0; Reg < R; ++Reg) {
      bool Busy = (I.BusyMask >> Reg) & 1;
      // Family 1: live values plus arrivals.
      std::vector<std::pair<int, double>> Sum;
      for (int Var = 0; Var < V; ++Var) {
        if (Var != DeadDefVar && Ix.loc(Var, Stmt, Reg) >= 0)
          Sum.push_back(term(Ix.loc(Var, Stmt, Reg), 1.0));
        if (Ix.liveAt(Var, Stmt)) {
          Sum.push_back(term(Ix.mov(Var, Stmt, Reg), 1.0));
          Sum.push_back(term(Ix.ld(Var, Stmt, Reg), 1.0));
        }
      }
      if (!Sum.empty())
        P.addLE(Sum, Busy ? 0.0 : 1.0);
      // Family 2: the dead def's landing register conflicts with values
      // held across the defining statement (but not with arrivals).
      if (DeadDefVar >= 0) {
        std::vector<std::pair<int, double>> Held = {
            term(Ix.loc(DeadDefVar, Stmt, Reg), 1.0)};
        for (int Var = 0; Var < V; ++Var)
          if (Var != DeadDefVar && Ix.loc(Var, Stmt, Reg) >= 0)
            Held.push_back(term(Ix.loc(Var, Stmt, Reg), 1.0));
        P.addLE(Held, Busy ? 0.0 : 1.0);
      }
    }

    // Objective: preference rewards on unchanged statements (eqs. 12/15,
    // linearized with Theta).
    if (!I.Changed) {
      double Reward = Spec.Theta * Spec.Etrans;
      for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot) {
        int Pref = I.UsePref[Slot];
        if (Pref < 0)
          continue;
        Offset += Reward;
        P.Obj[static_cast<size_t>(
            Ix.use(Stmt, static_cast<int>(Slot), Pref))] -= Reward;
      }
      if (I.Def >= 0 && I.DefPref >= 0) {
        Offset += Reward;
        P.Obj[static_cast<size_t>(Ix.loc(I.Def, Stmt + 1, I.DefPref))] -=
            Reward;
      }
    }
  }

  // Final-point exclusivity.
  for (int Reg = 0; Reg < R; ++Reg) {
    std::vector<std::pair<int, double>> Sum;
    for (int Var = 0; Var < V; ++Var)
      if (Ix.loc(Var, S, Reg) >= 0)
        Sum.push_back(term(Ix.loc(Var, S, Reg), 1.0));
    if (!Sum.empty())
      P.addLE(Sum, 1.0);
  }

  // Exit requirements.
  for (int Var = 0; Var < V; ++Var) {
    int Req = Spec.ExitReg[static_cast<size_t>(Var)];
    if (Req >= 0)
      P.addEQ({term(Ix.loc(Var, S, Req), 1.0)}, 1.0);
    else if (Spec.LiveOut[static_cast<size_t>(Var)]) {
      std::vector<std::pair<int, double>> Somewhere;
      for (int Reg = 0; Reg < R; ++Reg)
        Somewhere.push_back(term(Ix.loc(Var, S, Reg), 1.0));
      if (Ix.mem(Var, S) >= 0)
        Somewhere.push_back(term(Ix.mem(Var, S), 1.0));
      P.addGE(Somewhere, 1.0);
    }
  }

  // Consecutive-pair constraint (paper eq. 9).
  for (const auto &[Low, High] : Spec.Pairs) {
    for (int Point = 0; Point <= S; ++Point) {
      if (!Ix.active(Low, Point) || !Ix.active(High, Point))
        continue;
      for (int Reg = 0; Reg + 1 < R; ++Reg)
        P.addEQ({term(Ix.loc(Low, Point, Reg), 1.0),
                 term(Ix.loc(High, Point, Reg + 1), -1.0)},
                0.0);
      P.addEQ({term(Ix.loc(Low, Point, R - 1), 1.0)}, 0.0);
    }
  }
  return Offset;
}

/// Builds the "sit in your preferred register the whole time" hint.
std::vector<double> buildPrefHint(const WindowSpec &Spec,
                                  const ModelIndex &Ix, const LPProblem &P) {
  int S = Ix.S, V = Ix.V;
  std::vector<int> HintReg(static_cast<size_t>(V), -1);
  for (int Var = 0; Var < V; ++Var) {
    if (Spec.EntryReg[static_cast<size_t>(Var)] >= 0)
      HintReg[static_cast<size_t>(Var)] =
          Spec.EntryReg[static_cast<size_t>(Var)];
  }
  for (int Stmt = 0; Stmt < S; ++Stmt) {
    const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
    for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot)
      if (HintReg[static_cast<size_t>(I.Uses[Slot])] < 0)
        HintReg[static_cast<size_t>(I.Uses[Slot])] = I.UsePref[Slot];
    if (I.Def >= 0 && HintReg[static_cast<size_t>(I.Def)] < 0)
      HintReg[static_cast<size_t>(I.Def)] = I.DefPref;
  }
  // Remaining vars: first register not used by another hint.
  for (int Var = 0; Var < V; ++Var) {
    if (HintReg[static_cast<size_t>(Var)] >= 0)
      continue;
    for (int Reg = 0; Reg < Ix.R; ++Reg) {
      bool Taken = false;
      for (int Other = 0; Other < V; ++Other)
        Taken |= HintReg[static_cast<size_t>(Other)] == Reg;
      if (!Taken) {
        HintReg[static_cast<size_t>(Var)] = Reg;
        break;
      }
    }
    if (HintReg[static_cast<size_t>(Var)] < 0)
      HintReg[static_cast<size_t>(Var)] = 0;
  }

  std::vector<double> X(static_cast<size_t>(P.NumVars), 0.0);
  for (int Var = 0; Var < V; ++Var) {
    int Reg = HintReg[static_cast<size_t>(Var)];
    for (int Point = 0; Point <= S; ++Point)
      if (Ix.loc(Var, Point, Reg) >= 0)
        X[static_cast<size_t>(Ix.loc(Var, Point, Reg))] = 1.0;
  }
  for (int Stmt = 0; Stmt < S; ++Stmt) {
    const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
    for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot) {
      int Reg = HintReg[static_cast<size_t>(I.Uses[Slot])];
      X[static_cast<size_t>(
          Ix.use(Stmt, static_cast<int>(Slot), Reg))] = 1.0;
    }
  }
  return X;
}

/// Decodes a raw solution vector into a WindowSolution.
void decode(const WindowSpec &Spec, const ModelIndex &Ix,
            const std::vector<double> &X, WindowSolution &Out) {
  int S = Ix.S, V = Ix.V, R = Ix.R;
  auto isOne = [&](int Idx) {
    return Idx >= 0 && X[static_cast<size_t>(Idx)] > 0.5;
  };

  Out.RegAfter.assign(static_cast<size_t>(S + 1),
                      std::vector<int>(static_cast<size_t>(V), -1));
  for (int Point = 0; Point <= S; ++Point)
    for (int Var = 0; Var < V; ++Var)
      for (int Reg = 0; Reg < R; ++Reg)
        if (isOne(Ix.loc(Var, Point, Reg)))
          Out.RegAfter[static_cast<size_t>(Point)]
                      [static_cast<size_t>(Var)] = Reg;

  Out.DefReg.assign(static_cast<size_t>(S), -1);
  for (int Stmt = 0; Stmt < S; ++Stmt) {
    const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
    std::vector<int> Slots;
    for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot) {
      int Chosen = -1;
      for (int Reg = 0; Reg < R; ++Reg)
        if (isOne(Ix.use(Stmt, static_cast<int>(Slot), Reg)))
          Chosen = Reg;
      Slots.push_back(Chosen);
      if (!I.Changed && I.UsePref[Slot] >= 0) {
        if (Chosen == I.UsePref[Slot])
          ++Out.PrefHonored;
        else
          ++Out.PrefBroken;
      }
    }
    Out.UseRegs.push_back(std::move(Slots));
    if (I.Def >= 0) {
      Out.DefReg[static_cast<size_t>(Stmt)] =
          Out.RegAfter[static_cast<size_t>(Stmt + 1)]
                      [static_cast<size_t>(I.Def)];
      if (!I.Changed && I.DefPref >= 0) {
        if (Out.DefReg[static_cast<size_t>(Stmt)] == I.DefPref)
          ++Out.PrefHonored;
        else
          ++Out.PrefBroken;
      }
    }
    for (int Var = 0; Var < V; ++Var) {
      if (!Ix.liveAt(Var, Stmt))
        continue;
      for (int Reg = 0; Reg < R; ++Reg) {
        if (isOne(Ix.mov(Var, Stmt, Reg))) {
          ++Out.InsertedMovs;
          Out.Movs.push_back(WindowSolution::MovOp{
              Stmt, Var,
              Out.RegAfter[static_cast<size_t>(Stmt)]
                          [static_cast<size_t>(Var)],
              Reg});
        }
        if (isOne(Ix.ld(Var, Stmt, Reg))) {
          ++Out.SpillLoads;
          Out.Spills.push_back(
              WindowSolution::SpillOp{Stmt, Var, Reg, /*IsLoad=*/true});
        }
      }
    }
    for (int Var = 0; Var < V; ++Var) {
      if (isOne(Ix.st(Var, Stmt + 1))) {
        ++Out.SpillStores;
        Out.Spills.push_back(WindowSolution::SpillOp{
            Stmt + 1, Var,
            Out.RegAfter[static_cast<size_t>(Stmt + 1)]
                        [static_cast<size_t>(Var)],
            /*IsLoad=*/false});
      }
    }
  }
}

} // namespace

WindowModelStats ucc::windowModelStats(const WindowSpec &Spec) {
  ModelIndex Ix(Spec);
  LPProblem P;
  buildProblem(Spec, Ix, P);
  WindowModelStats Stats;
  Stats.NumBinaries = P.NumVars;
  Stats.NumConstraints = static_cast<int>(P.Constraints.size());
  return Stats;
}

WindowSolution ucc::solveWindow(const WindowSpec &Spec,
                                const ILPOptions &Opts, bool UsePrefHint) {
  ModelIndex Ix(Spec);
  LPProblem P;
  double Offset = buildProblem(Spec, Ix, P);

  std::vector<int> IntVars(static_cast<size_t>(P.NumVars));
  for (int K = 0; K < P.NumVars; ++K)
    IntVars[static_cast<size_t>(K)] = K;

  ILPOptions Local = Opts;
  std::vector<double> Hint;
  if (UsePrefHint) {
    Hint = buildPrefHint(Spec, Ix, P);
    if (isFeasible(P, Hint))
      Local.Hint = &Hint;
  }

  ILPResult R = solveILP(P, IntVars, Local);
  WindowSolution Out;
  Out.Status = R.Status;
  Out.Pivots = R.Pivots;
  Out.Nodes = R.Nodes;
  Out.NumBinaries = P.NumVars;
  Out.NumConstraints = static_cast<int>(P.Constraints.size());
  if (R.Status == SolveStatus::Optimal || R.Status == SolveStatus::Feasible) {
    Out.Objective = R.Objective + Offset;
    decode(Spec, Ix, R.X, Out);
  }
  return Out;
}

WindowSolution ucc::solveWindowExact(const WindowSpec &Spec) {
  ModelIndex Ix(Spec);
  int S = Ix.S, V = Ix.V, R = Ix.R;
  assert(V <= 7 && std::pow(R, V) <= 3e6 &&
         "exact enumeration is for tiny windows");

  WindowSolution Best;
  Best.Status = SolveStatus::Infeasible;

  std::vector<int> Assign(static_cast<size_t>(V), 0);
  uint64_t Total = 1;
  for (int K = 0; K < V; ++K)
    Total *= static_cast<uint64_t>(R);

  for (uint64_t Code = 0; Code < Total; ++Code) {
    uint64_t Rest = Code;
    for (int Var = 0; Var < V; ++Var) {
      Assign[static_cast<size_t>(Var)] = static_cast<int>(
          Rest % static_cast<uint64_t>(R));
      Rest /= static_cast<uint64_t>(R);
    }

    // Validity: entry/exit requirements, pairs, busy masks, exclusivity
    // wherever two variables are simultaneously active.
    bool Ok = true;
    for (int Var = 0; Var < V && Ok; ++Var) {
      int Reg = Assign[static_cast<size_t>(Var)];
      int Entry = Spec.EntryReg[static_cast<size_t>(Var)];
      int Exit = Spec.ExitReg[static_cast<size_t>(Var)];
      Ok &= Entry < 0 || Entry == Reg;
      Ok &= Exit < 0 || Exit == Reg;
    }
    for (const auto &[Low, High] : Spec.Pairs)
      Ok &= Assign[static_cast<size_t>(High)] ==
            Assign[static_cast<size_t>(Low)] + 1;
    for (int Point = 0; Point <= S && Ok; ++Point) {
      for (int VarA = 0; VarA < V && Ok; ++VarA) {
        if (!Ix.active(VarA, Point))
          continue;
        if (Point < S) {
          uint16_t Busy =
              Spec.Instrs[static_cast<size_t>(Point)].BusyMask;
          Ok &= ((Busy >> Assign[static_cast<size_t>(VarA)]) & 1) == 0;
        }
        for (int VarB = VarA + 1; VarB < V && Ok; ++VarB) {
          if (!Ix.active(VarB, Point))
            continue;
          Ok &= Assign[static_cast<size_t>(VarA)] !=
                Assign[static_cast<size_t>(VarB)];
        }
      }
    }
    if (!Ok)
      continue;

    // The *nonlinear* objective of eq. 12: one E_trans per unchanged
    // statement whose operands are not all in their preferred registers.
    double Obj = 0.0;
    for (int Stmt = 0; Stmt < S; ++Stmt) {
      const WindowInstr &I = Spec.Instrs[static_cast<size_t>(Stmt)];
      if (I.Changed)
        continue;
      bool AllMatch = true;
      bool AnyPref = false;
      for (size_t Slot = 0; Slot < I.Uses.size(); ++Slot) {
        if (I.UsePref[Slot] < 0)
          continue;
        AnyPref = true;
        AllMatch &= Assign[static_cast<size_t>(I.Uses[Slot])] ==
                    I.UsePref[Slot];
      }
      if (I.Def >= 0 && I.DefPref >= 0) {
        AnyPref = true;
        AllMatch &= Assign[static_cast<size_t>(I.Def)] == I.DefPref;
      }
      if (AnyPref && !AllMatch)
        Obj += Spec.Etrans;
    }

    if (Best.Status == SolveStatus::Infeasible || Obj < Best.Objective) {
      Best.Status = SolveStatus::Optimal;
      Best.Objective = Obj;
      Best.RegAfter.assign(
          static_cast<size_t>(S + 1),
          std::vector<int>(static_cast<size_t>(V), -1));
      for (int Point = 0; Point <= S; ++Point)
        for (int Var = 0; Var < V; ++Var)
          if (Ix.active(Var, Point))
            Best.RegAfter[static_cast<size_t>(Point)]
                         [static_cast<size_t>(Var)] =
                Assign[static_cast<size_t>(Var)];
    }
    ++Best.Nodes;
  }
  return Best;
}
