//===- regalloc/LiveIntervals.h - intervals and call-clobber homing -------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for both register allocators:
///
///  * linear live intervals over the block-layout instruction order;
///  * per-position physical-register occupancy (fixed intervals from the
///    argument/return conventions and the CALL clobber);
///  * the memory-homing pre-pass that gives every virtual register live
///    across a call a frame home, so that afterwards no allocatable value
///    crosses a call (the all-caller-saved discipline in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef UCC_REGALLOC_LIVEINTERVALS_H
#define UCC_REGALLOC_LIVEINTERVALS_H

#include "codegen/MachineIR.h"
#include "support/BitVector.h"

#include <vector>

namespace ucc {

/// A conservative contiguous live interval [Start, End] in linear
/// instruction positions. Start == -1 means the register never occurs.
struct LiveInterval {
  int Reg = -1;
  int Start = -1;
  int End = -1;

  bool valid() const { return Start >= 0; }
  bool overlaps(const LiveInterval &RHS) const {
    return valid() && RHS.valid() && Start <= RHS.End && RHS.Start <= End;
  }
};

/// Interval analysis over one machine function.
struct IntervalAnalysis {
  int NumPositions = 0;
  /// Intervals for virtual registers, indexed by (reg - FirstVReg).
  std::vector<LiveInterval> VRegIntervals;
  /// PhysBusy[r] bit p set when physical register r is defined, used or
  /// live at linear position p.
  std::vector<BitVector> PhysBusy;
  /// Values live immediately after each linear position.
  std::vector<BitVector> LiveAfter;

  /// True when PhysBusy[\p Reg] has any set bit in [\p Start, \p End].
  bool physBusyInRange(int Reg, int Start, int End) const;
};

/// Computes intervals, occupancy and live-after sets for \p MF.
IntervalAnalysis analyzeIntervals(const MachineFunction &MF);

/// Rewrites every virtual register that is live across a CALL to live in a
/// dedicated frame slot: defs gain a store, uses gain a load through fresh
/// short-lived temporaries. Returns the number of rewritten registers.
int memoryHomeAcrossCalls(MachineFunction &MF);

/// Rewrites \p MF so that each virtual register in \p Spilled lives in a
/// fresh spill slot (load before use, store after def). Returns the number
/// of inserted memory instructions.
int rewriteSpills(MachineFunction &MF, const std::vector<int> &Spilled);

} // namespace ucc

#endif // UCC_REGALLOC_LIVEINTERVALS_H
