//===- regalloc/UccIlpModel.h - the paper's 0/1 program for UCC-RA --------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ILP formulation of update-conscious register allocation (paper
/// sections 3.3-3.4) over a straight-line window of statements. The
/// variable families map onto the paper's as follows:
///
///   paper                      here
///   -----------------------    ------------------------------------------
///   X_def / X_cont             Loc[v][p][r]   (v occupies r at point p)
///   X_use / X_useCont /
///   X_lastUse                  UseReg[v][s][r] (operand register at s)
///   X_mov.in / X_mov.out       MovIn[v][s][r] (decoupled mov, sec. 3.3)
///   X_ld / X_st / X_mem.cont   Ld[v][s][r] / St[v][s] / Mem[v][p]
///
/// Constraints realize the paper's (1)-(8) families plus the consecutive-
/// register pair constraint (9); the objective is the linearized (10)-(15)
/// with the theta = 3/4 approximation of the nonlinear unchanged-instruction
/// term. solveWindowExact() evaluates the *nonlinear* objective by
/// enumeration for the section 5.6 MINLP-vs-ILP comparison.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_REGALLOC_UCCILPMODEL_H
#define UCC_REGALLOC_UCCILPMODEL_H

#include "lp/LP.h"

#include <cstdint>
#include <vector>

namespace ucc {

/// One straight-line statement of an allocation window.
struct WindowInstr {
  bool Changed = true; ///< chg(s); unchanged statements carry preferences
  double Freq = 1.0;   ///< freq(s)
  std::vector<int> Uses;    ///< variable ids read (0-based window ids)
  std::vector<int> UsePref; ///< preferred register per use (-1 = none)
  int Def = -1;             ///< variable id written (-1 = none)
  int DefPref = -1;         ///< preferred register for the def
  uint16_t BusyMask = 0;    ///< registers unavailable around this statement
};

/// A straight-line allocation window (a changed chunk plus the unchanged
/// statements whose preferences it must weigh).
struct WindowSpec {
  int NumVars = 0;
  int NumRegs = 8;
  std::vector<WindowInstr> Instrs;
  /// Per variable: register required at window entry (-1 = not live in).
  std::vector<int> EntryReg;
  /// Per variable: register required at window exit (-1 = none). A
  /// variable with an exit requirement is implicitly live out.
  std::vector<int> ExitReg;
  /// Per variable: live at exit even without a register requirement.
  std::vector<bool> LiveOut;
  /// 16/32-bit pairs (paper eq. 9): Reg(High) must equal Reg(Low) + 1.
  std::vector<std::pair<int, int>> Pairs; ///< (Low, High) variable ids

  double Etrans = 32000.0; ///< energy to transmit one instruction
  double Eexe = 1.0;       ///< energy to execute one cycle
  double Cnt = 1000.0;     ///< executions before retirement
  double Theta = 0.75;     ///< the 3/4 linearization coefficient (eq. 15)
};

/// Decoded solution of a window.
struct WindowSolution {
  SolveStatus Status = SolveStatus::Infeasible;
  double Objective = 0.0;
  int64_t Pivots = 0;
  int Nodes = 0;
  int NumBinaries = 0;
  int NumConstraints = 0;

  /// RegAfter[p+1][v]: register of v at point p (p = -1 is entry), or -1
  /// when v is dead / in memory there.
  std::vector<std::vector<int>> RegAfter;
  /// UseRegs[s] parallel to Instrs[s].Uses.
  std::vector<std::vector<int>> UseRegs;
  /// DefReg[s]: register the def of s lands in (-1 = no def).
  std::vector<int> DefReg;
  int InsertedMovs = 0;
  int SpillLoads = 0;
  int SpillStores = 0;
  /// Unchanged-statement operands whose preference was honored / broken.
  int PrefHonored = 0;
  int PrefBroken = 0;

  /// A register-to-register copy inserted immediately before a statement.
  struct MovOp {
    int Stmt;
    int Var;
    int FromReg;
    int ToReg;
  };
  std::vector<MovOp> Movs;

  /// A spill operation: a load (before Stmt) or store (after Stmt - 1).
  struct SpillOp {
    int Stmt; ///< loads: statement index; stores: the point index
    int Var;
    int Reg; ///< loads: destination; stores: source
    bool IsLoad;
  };
  std::vector<SpillOp> Spills;
};

/// Model-size statistics without solving (Fig. 13).
struct WindowModelStats {
  int NumBinaries = 0;
  int NumConstraints = 0;
};

/// Builds the 0/1 program for \p Spec and reports its size.
WindowModelStats windowModelStats(const WindowSpec &Spec);

/// Solves \p Spec with branch-and-bound over the linearized objective.
/// When \p UsePrefHint is true, a solution built from the preferred-
/// register tags seeds the incumbent (section 5.6's observation that tags
/// speed up the solver).
WindowSolution solveWindow(const WindowSpec &Spec,
                           const ILPOptions &Opts = {},
                           bool UsePrefHint = true);

/// Solves \p Spec by exhaustively enumerating register assignments and
/// scoring them under the *nonlinear* objective (eq. 12 before the theta
/// approximation). Exponential; only for tiny windows (the A1/A3
/// ablation). Windows must need no spills or movs.
WindowSolution solveWindowExact(const WindowSpec &Spec);

/// Canonical FNV-1a hash of a window model: every field of \p Spec
/// (structure, coefficients, preferred tags) plus the solver options that
/// can change the answer. Equal windows hash equal by construction; the
/// cache below still compares specs field-by-field on a key match.
uint64_t windowSpecKey(const WindowSpec &Spec, const ILPOptions &Opts,
                       bool UsePrefHint);

/// `solveWindow` behind a process-global memo cache (WindowCache.cpp).
/// Iterative-update experiments (Fig. 14) re-solve identical windows many
/// times; the cache guarantees each unique window is solved exactly once
/// per process — a concurrent requester for an in-flight window blocks on
/// it rather than re-solving — and that a cached hit returns the original
/// solution (including its Pivots/Nodes metrics, so deterministic bench
/// counters are unaffected by cache order or `--jobs`). Reports
/// `ra.window_cache_hits` / `ra.window_cache_misses`.
WindowSolution solveWindowCached(const WindowSpec &Spec,
                                 const ILPOptions &Opts = {},
                                 bool UsePrefHint = true);

/// Empties the window memo cache (tests and benches that measure
/// cold-solve behavior).
void clearWindowCache();

/// Number of distinct windows currently memoized.
size_t windowCacheSize();

} // namespace ucc

#endif // UCC_REGALLOC_UCCILPMODEL_H
