//===- regalloc/Validator.cpp -------------------------------------------------==//

#include "regalloc/Validator.h"

#include "support/Format.h"

#include <cassert>

using namespace ucc;

namespace {

/// Lattice values for "which vreg does this physical register hold".
constexpr int Empty = -1;    ///< nothing known to be here
constexpr int Conflict = -2; ///< different values on different paths
constexpr int Opaque = -3;   ///< written by untracked (physical-only) code

using RegState = std::vector<int>; // size NumPhysRegs

int meet(int A, int B) {
  // Correct code defines a value on every path before using it, so even
  // Empty-vs-held disagreements collapse to Conflict: if the register is
  // later read expecting the held value, some path never wrote it.
  return A == B ? A : Conflict;
}

std::string describeHolding(int Holding) {
  if (Holding >= 0)
    return format("v%d", Holding - FirstVReg);
  if (Holding == Conflict)
    return "conflicting values";
  if (Holding == Opaque)
    return "untracked data";
  return "nothing";
}

/// Walks one block from \p State. When \p Problems is non-null, mis-held
/// uses are reported; the state is updated in place either way.
void walkBlock(const MachineFunction &MF, const MBlock &BB, RegState &State,
               std::vector<std::string> *Problems) {
  RegList Uses, Defs;
  for (const MInstr &I : BB.Instrs) {
    minstrUses(I, Uses);
    auto slotUsed = [&](int Reg) { return Uses.contains(Reg); };
    auto checkUse = [&](int Reg, int Vreg) {
      if (!Problems || Vreg < 0 || Reg < 0 || !isPhysReg(Reg))
        return;
      int Holding = State[static_cast<size_t>(Reg)];
      if (Holding != Vreg)
        Problems->push_back(format(
            "@%s: use of r%d expects v%d but it holds %s", MF.Name.c_str(),
            Reg, Vreg - FirstVReg, describeHolding(Holding).c_str()));
    };
    if (I.A >= 0 && slotUsed(I.A))
      checkUse(I.A, I.VA);
    if (I.B >= 0 && slotUsed(I.B))
      checkUse(I.B, I.VB);
    if (I.C >= 0 && slotUsed(I.C))
      checkUse(I.C, I.VC);

    // Apply defs.
    if (mopIsCall(I.Op)) {
      for (int R = 0; R < NumPhysRegs; ++R)
        State[static_cast<size_t>(R)] = Opaque;
      continue;
    }
    minstrDefs(I, Defs);
    for (int D : Defs)
      if (isPhysReg(D)) // slot A is the only register-def slot
        State[static_cast<size_t>(D)] = I.VA >= 0 ? I.VA : Opaque;
  }
}

} // namespace

std::vector<std::string> ucc::validateAllocation(const MachineFunction &MF) {
  std::vector<std::string> Problems;
  size_t NumBlocks = MF.Blocks.size();
  if (NumBlocks == 0)
    return Problems;

  std::vector<RegState> BlockIn(NumBlocks, RegState(NumPhysRegs, Empty));
  std::vector<bool> Reached(NumBlocks, false);
  Reached[0] = true;

  // Fixpoint over the CFG; states only move down the (finite) lattice.
  bool Changed = true;
  int Guard = 0;
  while (Changed && ++Guard < 10000) {
    Changed = false;
    for (size_t B = 0; B < NumBlocks; ++B) {
      if (!Reached[B])
        continue;
      RegState State = BlockIn[B];
      walkBlock(MF, MF.Blocks[B], State, /*Problems=*/nullptr);

      for (int S : MF.Blocks[B].Succs) {
        size_t SI = static_cast<size_t>(S);
        if (!Reached[SI]) {
          Reached[SI] = true;
          BlockIn[SI] = State;
          Changed = true;
          continue;
        }
        for (int R = 0; R < NumPhysRegs; ++R) {
          int M = meet(BlockIn[SI][static_cast<size_t>(R)],
                       State[static_cast<size_t>(R)]);
          if (M != BlockIn[SI][static_cast<size_t>(R)]) {
            BlockIn[SI][static_cast<size_t>(R)] = M;
            Changed = true;
          }
        }
      }
    }
  }
  assert(Guard < 10000 && "validator fixpoint failed to converge");

  // Report uses against the final fixpoint states.
  for (size_t B = 0; B < NumBlocks; ++B) {
    if (!Reached[B])
      continue;
    RegState State = BlockIn[B];
    walkBlock(MF, MF.Blocks[B], State, &Problems);
  }
  return Problems;
}
