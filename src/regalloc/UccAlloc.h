//===- regalloc/UccAlloc.h - update-conscious register allocation ---------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UCC-RA (paper section 3). The allocator aligns the new pre-allocation
/// machine code against the old final code from the CompilationRecord,
/// classifies instructions as changed/unchanged, groups them into chunks
/// with the threshold K (section 3.2), and then assigns registers giving
/// *preference* to each variable's old register. When the preferred
/// register is occupied during part of a live range, it weighs two plans
/// with the energy model exactly as section 3.1's example:
///
///   (a) use a different register everywhere — every unchanged instruction
///       that mentions the variable must be retransmitted
///       (cost ~ E_trans x #occurrences);
///   (b) split the live range and insert a `mov` so the unchanged uses keep
///       their old register (cost ~ E_trans for the mov itself plus
///       Cnt x freq x E_exe for executing it).
///
/// The greedy engine realizes this per variable (at most one split each,
/// guarded by a dominance check so the copy reaches every later use); the
/// ILP engine in UccIlpModel.h solves the paper's full 0/1 program for
/// bounded windows, and `Strategy::Hybrid` uses it when the function fits.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_REGALLOC_UCCALLOC_H
#define UCC_REGALLOC_UCCALLOC_H

#include "codegen/MachineIR.h"
#include "core/Record.h"
#include "regalloc/LinearScan.h"
#include "support/Interner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ucc {

/// How changed chunks are solved.
enum class UccStrategy {
  Greedy, ///< preference-guided interval assignment with cost-modeled splits
  Ilp,    ///< the paper's 0/1 program (falls back to Greedy over budget)
  Hybrid  ///< Ilp when the model fits the budget, Greedy otherwise (default)
};

/// Tuning knobs for UCC-RA.
struct UccAllocOptions {
  int ChunkK = 3;           ///< minimum unchanged-run length (section 3.2)
  double Cnt = 1000.0;      ///< expected executions before the code retires
  double EtransInstr = 0.0; ///< energy to transmit one instruction word
  double EexeCycle = 0.0;   ///< energy to execute one cycle
  bool EnableSplits = true; ///< ablation: allow live-range splits + movs
  UccStrategy Strategy = UccStrategy::Greedy;
  int IlpMaxBinaries = 400;      ///< model-size budget for the ILP engine
  double IlpTimeLimitSec = 10.0; ///< per-function ILP time budget
  /// Memoize ILP window solves in the process-global cache keyed by the
  /// canonical window-model hash (solveWindowCached). Iterative-update
  /// runs re-solve identical windows; hits skip the solver entirely.
  bool EnableWindowCache = true;
};

/// Statistics from one UCC-RA run. Mirrored into the telemetry registry
/// (the `ra.*` counters, see docs/OBSERVABILITY.md) when a TelemetryScope
/// is active, so one JSON trace aggregates every function's run.
struct UccAllocStats {
  int TotalInstrs = 0;
  int MatchedInstrs = 0;   ///< aligned against the old binary
  int ChangedChunks = 0;   ///< changed chunks after K-folding (section 3.2)
  int UnchangedChunks = 0; ///< unchanged runs that survived the K threshold
  int AnchorOccurrences = 0; ///< operand slots tied to a preferred register
  int PrefHonored = 0;
  int PrefBroken = 0;
  int InsertedMovs = 0;
  int SpilledVRegs = 0;
  bool UsedIlp = false;
  int64_t IlpPivots = 0;
  /// Scratch bytes drawn from the per-run bump arena (deterministic for a
  /// given input; surfaced as the `compile.arena_bytes` gauge).
  int64_t ArenaBytes = 0;
};

/// Context resolving symbol identities across the two program versions.
/// Name tables are interned (support/Interner.h): the alignment inner loop
/// compares symbols — plain integers — instead of strings.
struct UccContext {
  const MachineFunction *OldFinal = nullptr; ///< null = new function
  const SymbolTable *OldGlobalNames = nullptr;
  const SymbolTable *OldFunctionNames = nullptr;
  const SymbolTable *NewGlobalNames = nullptr;
  const SymbolTable *NewFunctionNames = nullptr;
};

/// Runs UCC-RA on \p MF in place (same postcondition as
/// allocateLinearScan: all operands physical, provenance recorded).
/// \p Freq holds per-linear-position execution-frequency estimates of the
/// *pre-allocation* code (machineFrequencies); it is re-derived internally
/// after rewrites. Falls back to plain linear scan when the context has no
/// old code.
UccAllocStats allocateUcc(MachineFunction &MF, const UccContext &Ctx,
                          const UccAllocOptions &Opts,
                          const std::vector<double> &Freq);

/// Per-block dominator sets (bit B2 of result[B1] set when B2 dominates
/// B1). Exposed for tests.
std::vector<std::vector<bool>> computeDominators(const MachineFunction &MF);

} // namespace ucc

#endif // UCC_REGALLOC_UCCALLOC_H
