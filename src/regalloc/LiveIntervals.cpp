//===- regalloc/LiveIntervals.cpp ---------------------------------------------==//

#include "regalloc/LiveIntervals.h"

#include "analysis/Dataflow.h"
#include "support/Format.h"

#include <cassert>

using namespace ucc;

bool IntervalAnalysis::physBusyInRange(int Reg, int Start, int End) const {
  assert(isPhysReg(Reg) && "expected a physical register");
  const BitVector &Busy = PhysBusy[static_cast<size_t>(Reg)];
  int Hi = std::min(End, static_cast<int>(Busy.size()) - 1);
  for (int P = std::max(0, Start); P <= Hi; ++P)
    if (Busy.test(static_cast<size_t>(P)))
      return true;
  return false;
}

IntervalAnalysis ucc::analyzeIntervals(const MachineFunction &MF) {
  IntervalAnalysis IA;
  FlowGraph G = buildMachineFlowGraph(MF);
  Liveness L = computeLiveness(G);

  int NumPositions = MF.instrCount();
  IA.NumPositions = NumPositions;
  IA.LiveAfter.assign(static_cast<size_t>(NumPositions),
                      BitVector(static_cast<size_t>(MF.NextVReg)));
  int NumVRegs = MF.NextVReg - FirstVReg;
  IA.VRegIntervals.assign(static_cast<size_t>(std::max(0, NumVRegs)),
                          LiveInterval{});
  IA.PhysBusy.assign(static_cast<size_t>(FirstVReg),
                     BitVector(static_cast<size_t>(NumPositions)));

  auto extend = [&](int Reg, int Pos) {
    if (isPhysReg(Reg)) {
      IA.PhysBusy[static_cast<size_t>(Reg)].set(static_cast<size_t>(Pos));
      return;
    }
    LiveInterval &IV =
        IA.VRegIntervals[static_cast<size_t>(Reg - FirstVReg)];
    IV.Reg = Reg;
    if (!IV.valid()) {
      IV.Start = IV.End = Pos;
      return;
    }
    IV.Start = std::min(IV.Start, Pos);
    IV.End = std::max(IV.End, Pos);
  };

  int Pos = 0;
  RegList Defs, Uses;
  for (size_t B = 0; B < MF.Blocks.size(); ++B) {
    std::vector<BitVector> After = L.liveAfterPerInstr(G, static_cast<int>(B));
    for (size_t K = 0; K < MF.Blocks[B].Instrs.size(); ++K, ++Pos) {
      const MInstr &I = MF.Blocks[B].Instrs[K];
      minstrDefs(I, Defs);
      for (int D : Defs)
        extend(D, Pos);
      minstrUses(I, Uses);
      for (int U : Uses)
        extend(U, Pos);
      IA.LiveAfter[static_cast<size_t>(Pos)] = After[K];
      // Everything live after this position must also cover position+1 (if
      // any); covering Pos itself keeps the conservative single-interval
      // shape correct for loops as well, because liveAfter at the loop's
      // last position includes values live around the back edge.
      After[K].forEach([&](size_t Value) {
        extend(static_cast<int>(Value), Pos);
        if (Pos + 1 < NumPositions)
          extend(static_cast<int>(Value), Pos + 1);
      });
    }
  }
  assert(Pos == NumPositions && "position accounting mismatch");
  return IA;
}

namespace {

/// Inserts loads/stores so that each register in \p Victims lives in a frame
/// slot. Shared by memory-homing and spilling.
int rewriteToFrameSlots(MachineFunction &MF, const std::vector<int> &Victims,
                        const char *SlotPrefix) {
  if (Victims.empty())
    return 0;

  std::vector<int> SlotOf(static_cast<size_t>(MF.NextVReg), -1);
  for (int V : Victims) {
    assert(isVirtReg(V) && "can only home virtual registers");
    // Prefer the source variable's name: it survives edits to other parts
    // of the function, so the differ can match the slot across versions.
    const std::string &SrcName = MF.vregName(V);
    std::string SlotName =
        SrcName.empty() ? format("%s%d", SlotPrefix, V - FirstVReg)
                        : format("%s%s", SlotPrefix, SrcName.c_str());
    SlotOf[static_cast<size_t>(V)] =
        MF.makeFrameObject(SlotName, 1, /*IsSpill=*/true);
  }

  int Inserted = 0;
  for (MBlock &BB : MF.Blocks) {
    std::vector<MInstr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size());
    for (MInstr I : BB.Instrs) {
      // Loads for used victims (each use gets its own short-lived temp).
      // Registers created by this very rewrite have ids beyond SlotOf and
      // are never victims.
      auto fixUse = [&](int &Reg) {
        if (Reg < 0 || !isVirtReg(Reg) ||
            static_cast<size_t>(Reg) >= SlotOf.size() ||
            SlotOf[static_cast<size_t>(Reg)] < 0)
          return;
        MInstr Load;
        Load.Op = MOp::LDF;
        Load.A = MF.makeVReg();
        Load.FrameIdx = SlotOf[static_cast<size_t>(Reg)];
        Load.IRIndex = I.IRIndex;
        NewInstrs.push_back(Load);
        Reg = Load.A;
        ++Inserted;
      };

      RegList Uses;
      minstrUses(I, Uses);
      if (I.B >= 0 && Uses.contains(I.B))
        fixUse(I.B);
      if (I.C >= 0 && Uses.contains(I.C))
        fixUse(I.C);
      // A is a use for stores/CMP/OUT; minstrUses already told us.
      if (I.A >= 0 && Uses.contains(I.A))
        fixUse(I.A);

      // Store after a def of a victim.
      RegList Defs;
      minstrDefs(I, Defs);
      bool DefsVictim = false;
      for (int D : Defs)
        if (isVirtReg(D) && static_cast<size_t>(D) < SlotOf.size() &&
            SlotOf[static_cast<size_t>(D)] >= 0)
          DefsVictim = true;

      if (!DefsVictim) {
        NewInstrs.push_back(I);
        continue;
      }
      int Victim = I.A; // only A can be a virtual def
      int Temp = MF.makeVReg();
      I.A = Temp;
      NewInstrs.push_back(I);
      MInstr Store;
      Store.Op = MOp::STF;
      Store.A = Temp;
      Store.FrameIdx = SlotOf[static_cast<size_t>(Victim)];
      Store.IRIndex = I.IRIndex;
      NewInstrs.push_back(Store);
      ++Inserted;
    }
    BB.Instrs = std::move(NewInstrs);
  }
  return Inserted;
}

} // namespace

int ucc::memoryHomeAcrossCalls(MachineFunction &MF) {
  IntervalAnalysis IA = analyzeIntervals(MF);

  // Victims: virtual registers live immediately after a CALL.
  std::vector<bool> IsVictim(static_cast<size_t>(MF.NextVReg), false);
  int Pos = 0;
  for (const MBlock &BB : MF.Blocks) {
    for (const MInstr &I : BB.Instrs) {
      if (mopIsCall(I.Op)) {
        IA.LiveAfter[static_cast<size_t>(Pos)].forEach([&](size_t V) {
          if (isVirtReg(static_cast<int>(V)))
            IsVictim[V] = true;
        });
      }
      ++Pos;
    }
  }

  std::vector<int> Victims;
  for (size_t V = 0; V < IsVictim.size(); ++V)
    if (IsVictim[V])
      Victims.push_back(static_cast<int>(V));
  rewriteToFrameSlots(MF, Victims, "home.");
  return static_cast<int>(Victims.size());
}

int ucc::rewriteSpills(MachineFunction &MF, const std::vector<int> &Spilled) {
  return rewriteToFrameSlots(MF, Spilled, "spill.");
}
