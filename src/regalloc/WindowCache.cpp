//===- regalloc/WindowCache.cpp - memoized window solves ------------------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global memo cache in front of solveWindow. The iterative
/// update experiments (Fig. 14) and the per-function UCC-RA loop under
/// `--jobs` repeatedly build byte-identical window models — same chunk,
/// same frequencies, same preferred tags — and re-solving them dominated
/// the hot path. The cache keys on a canonical FNV-1a hash of the full
/// WindowSpec plus the result-affecting solver options, verifies a hit by
/// field-by-field spec comparison (hash collisions fall through to a
/// separate entry), and uses an in-flight latch so a window being solved
/// on one thread blocks — rather than re-solves — concurrent requesters:
/// every unique window is solved exactly once per process, which also
/// keeps deterministic metrics (pivots, nodes) independent of `--jobs`
/// and of arrival order.
///
//===----------------------------------------------------------------------===//

#include "regalloc/UccIlpModel.h"

#include "support/Telemetry.h"

#include <condition_variable>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>

using namespace ucc;

namespace {

//===--- canonical hashing ----------------------------------------------------//

class Fnv1a {
public:
  void bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      Hash ^= P[I];
      Hash *= 0x100000001b3ULL;
    }
  }
  void i32(int32_t V) { bytes(&V, sizeof V); }
  void u16(uint16_t V) { bytes(&V, sizeof V); }
  void u64(uint64_t V) { bytes(&V, sizeof V); }
  void f64(double V) {
    // Canonicalize -0.0 so numerically equal coefficients hash equal.
    if (V == 0.0)
      V = 0.0;
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void vecI32(const std::vector<int> &V) {
    u64(V.size());
    for (int X : V)
      i32(X);
  }
  uint64_t value() const { return Hash; }

private:
  uint64_t Hash = 0xcbf29ce484222325ULL;
};

bool sameInstr(const WindowInstr &A, const WindowInstr &B) {
  return A.Changed == B.Changed && A.Freq == B.Freq && A.Uses == B.Uses &&
         A.UsePref == B.UsePref && A.Def == B.Def && A.DefPref == B.DefPref &&
         A.BusyMask == B.BusyMask;
}

bool sameSpec(const WindowSpec &A, const WindowSpec &B) {
  if (A.NumVars != B.NumVars || A.NumRegs != B.NumRegs ||
      A.Instrs.size() != B.Instrs.size() || A.EntryReg != B.EntryReg ||
      A.ExitReg != B.ExitReg || A.LiveOut != B.LiveOut || A.Pairs != B.Pairs ||
      A.Etrans != B.Etrans || A.Eexe != B.Eexe || A.Cnt != B.Cnt ||
      A.Theta != B.Theta)
    return false;
  for (size_t I = 0; I < A.Instrs.size(); ++I)
    if (!sameInstr(A.Instrs[I], B.Instrs[I]))
      return false;
  return true;
}

//===--- the cache ------------------------------------------------------------//

struct CacheEntry {
  WindowSpec Spec;
  ILPOptions Opts; // Hint is never stored (derived from the spec)
  bool UsePrefHint;
  bool Ready = false;
  WindowSolution Sol;
};

struct Cache {
  std::mutex Lock;
  std::condition_variable Filled;
  /// Collision chains per key; entries are stable (std::list) so a solver
  /// can fill its entry without holding the lock.
  std::unordered_map<uint64_t, std::list<CacheEntry>> Map;
};

Cache &cache() {
  static Cache C;
  return C;
}

bool sameOptions(const ILPOptions &A, const ILPOptions &B) {
  return A.MaxPivots == B.MaxPivots && A.MaxNodes == B.MaxNodes &&
         A.TimeLimitSec == B.TimeLimitSec;
}

} // namespace

uint64_t ucc::windowSpecKey(const WindowSpec &Spec, const ILPOptions &Opts,
                            bool UsePrefHint) {
  Fnv1a H;
  H.i32(Spec.NumVars);
  H.i32(Spec.NumRegs);
  H.u64(Spec.Instrs.size());
  for (const WindowInstr &I : Spec.Instrs) {
    H.i32(I.Changed ? 1 : 0);
    H.f64(I.Freq);
    H.vecI32(I.Uses);
    H.vecI32(I.UsePref);
    H.i32(I.Def);
    H.i32(I.DefPref);
    H.u16(I.BusyMask);
  }
  H.vecI32(Spec.EntryReg);
  H.vecI32(Spec.ExitReg);
  H.u64(Spec.LiveOut.size());
  for (bool B : Spec.LiveOut)
    H.i32(B ? 1 : 0);
  H.u64(Spec.Pairs.size());
  for (const auto &[Low, High] : Spec.Pairs) {
    H.i32(Low);
    H.i32(High);
  }
  H.f64(Spec.Etrans);
  H.f64(Spec.Eexe);
  H.f64(Spec.Cnt);
  H.f64(Spec.Theta);
  H.u64(static_cast<uint64_t>(Opts.MaxPivots));
  H.i32(Opts.MaxNodes);
  H.f64(Opts.TimeLimitSec);
  H.i32(UsePrefHint ? 1 : 0);
  return H.value();
}

WindowSolution ucc::solveWindowCached(const WindowSpec &Spec,
                                      const ILPOptions &Opts,
                                      bool UsePrefHint) {
  uint64_t Key = windowSpecKey(Spec, Opts, UsePrefHint);
  Cache &C = cache();
  CacheEntry *Mine = nullptr;

  {
    std::unique_lock<std::mutex> Guard(C.Lock);
    std::list<CacheEntry> &Chain = C.Map[Key];
    for (CacheEntry &E : Chain) {
      if (E.UsePrefHint != UsePrefHint || !sameOptions(E.Opts, Opts) ||
          !sameSpec(E.Spec, Spec))
        continue;
      // Hit — possibly on an in-flight solve; wait for it rather than
      // solving the same window twice.
      if (Telemetry *T = currentTelemetry())
        T->addCounter("ra.window_cache_hits");
      C.Filled.wait(Guard, [&] { return E.Ready; });
      return E.Sol;
    }
    Chain.emplace_back();
    Mine = &Chain.back();
    Mine->Spec = Spec;
    Mine->Opts = Opts;
    Mine->Opts.Hint = nullptr;
    Mine->UsePrefHint = UsePrefHint;
    if (Telemetry *T = currentTelemetry())
      T->addCounter("ra.window_cache_misses");
  }

  // Solve outside the lock (entries are list nodes, so Mine stays valid).
  WindowSolution Sol = solveWindow(Spec, Opts, UsePrefHint);

  {
    std::lock_guard<std::mutex> Guard(C.Lock);
    Mine->Sol = Sol;
    Mine->Ready = true;
  }
  C.Filled.notify_all();
  return Sol;
}

void ucc::clearWindowCache() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Guard(C.Lock);
  // In-flight entries must not be erased from under their solver; callers
  // clear between experiments, not mid-solve. Drop only ready chains.
  for (auto It = C.Map.begin(); It != C.Map.end();) {
    std::list<CacheEntry> &Chain = It->second;
    for (auto E = Chain.begin(); E != Chain.end();)
      E = E->Ready ? Chain.erase(E) : std::next(E);
    It = Chain.empty() ? C.Map.erase(It) : std::next(It);
  }
}

size_t ucc::windowCacheSize() {
  Cache &C = cache();
  std::lock_guard<std::mutex> Guard(C.Lock);
  size_t N = 0;
  for (const auto &[Key, Chain] : C.Map)
    N += Chain.size();
  return N;
}
