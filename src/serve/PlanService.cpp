//===- serve/PlanService.cpp - the sink's update-distribution front end ---===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving mechanics. The snapshot is a vector of shared_ptr-owned
/// StoredVersion copies plus one content hash per version; commit builds
/// the successor snapshot by structural sharing (the old entries are
/// reused, only the new version is copied) and publishes it with a single
/// atomic pointer store. The cache follows regalloc/WindowCache: entries
/// live in an intrusive LRU list and are found through a hash-keyed
/// collision chain confirmed field by field, a miss inserts a not-yet-ready
/// entry and computes outside the lock, and concurrent requests for the
/// same pair block on a condition variable until the owner fills it.
/// Entries are shared_ptr so an eviction can never pull a result out from
/// under a waiter, and in-flight (not Ready) entries are never evicted.
///
//===----------------------------------------------------------------------===//

#include "serve/PlanService.h"

#include "support/Format.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <list>
#include <map>
#include <unordered_map>

using namespace ucc;

namespace {

uint64_t fnv1aBytes(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t imageContentHash(const BinaryImage &Image) {
  std::vector<uint8_t> Bytes = Image.serialize();
  return fnv1aBytes(1469598103934665603ull, Bytes.data(), Bytes.size());
}

/// The canonical cache key: FNV-1a over the two endpoint content hashes,
/// in order (plans are directional). Identity is confirmed against the
/// exact (From, To) ids because distinct versions can share content — the
/// store's own tests commit the same source twice.
uint64_t pairKey(uint64_t FromHash, uint64_t ToHash) {
  uint64_t H = fnv1aBytes(1469598103934665603ull, &FromHash,
                          sizeof(FromHash));
  return fnv1aBytes(H, &ToHash, sizeof(ToHash));
}

/// Records the enclosing scope's wall time into a latency histogram,
/// early returns included.
struct LatencyStopwatch {
  LatencyHistogram &H;
  std::chrono::steady_clock::time_point T0 =
      std::chrono::steady_clock::now();
  explicit LatencyStopwatch(LatencyHistogram &H) : H(H) {}
  ~LatencyStopwatch() {
    H.record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           T0)
                 .count());
  }
};

/// Installs a fresh TraceContext when events are being recorded and no
/// context is active — the request is externally originated and becomes
/// the root of its own trace. Requests arriving inside an active context
/// (planBatch items, campaign cohorts) keep the caller's trace id.
struct RequestTrace {
  std::optional<TraceContextScope> Scope;
  RequestTrace() {
    if (eventTelemetry() && !currentTraceContext())
      Scope.emplace(TraceContext{nextTraceId(), 0});
  }
};

} // namespace

/// The immutable version index one plan() call reads: dense ids, like the
/// store, plus the per-version content hash the cache key is built from.
struct PlanService::Snapshot {
  std::vector<std::shared_ptr<const StoredVersion>> Versions;
  std::vector<uint64_t> ImageHash;

  const StoredVersion *find(int Id) const {
    if (Id < 0 || static_cast<size_t>(Id) >= Versions.size())
      return nullptr;
    return Versions[static_cast<size_t>(Id)].get();
  }
};

namespace {

struct CacheEntry {
  int From = -1;
  int To = -1;
  uint64_t Key = 0;
  bool Ready = false;    ///< Plan is filled in; guarded by Cache::Lock
  bool Resident = true;  ///< still in the LRU list (false after eviction)
  std::optional<UpdatePlan> Plan;
  std::list<std::shared_ptr<CacheEntry>>::iterator Self;
};

} // namespace

struct PlanService::Cache {
  std::mutex Lock;
  std::condition_variable Filled;
  /// Front = most recently used. shared_ptr entries keep evicted results
  /// alive for whoever already holds them.
  std::list<std::shared_ptr<CacheEntry>> Lru;
  /// Canonical key -> collision chain (content-equal pairs with different
  /// ids land in the same chain and are told apart by exact id match).
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<CacheEntry>>>
      Map;

  void removeFromMap(const std::shared_ptr<CacheEntry> &E) {
    auto It = Map.find(E->Key);
    if (It == Map.end())
      return;
    auto &Chain = It->second;
    Chain.erase(std::remove(Chain.begin(), Chain.end(), E), Chain.end());
    if (Chain.empty())
      Map.erase(It);
  }

  /// Evicts least-recently-used Ready entries until the size bound holds.
  /// In-flight entries are skipped — the cache may transiently exceed its
  /// capacity while more than CacheCapacity pairs compute at once.
  void evictExcess(size_t Capacity, const std::function<void()> &OnEvict) {
    while (Lru.size() > Capacity) {
      bool Evicted = false;
      for (auto It = std::prev(Lru.end());; --It) {
        if ((*It)->Ready) {
          std::shared_ptr<CacheEntry> Victim = *It;
          removeFromMap(Victim);
          Victim->Resident = false;
          Lru.erase(It);
          OnEvict();
          Evicted = true;
          break;
        }
        if (It == Lru.begin())
          break;
      }
      if (!Evicted)
        break;
    }
  }
};

PlanService::PlanService(VersionStore S, PlanServiceOptions O)
    : Store(std::move(S)), FnCache(std::make_unique<CompileCache>()),
      C(std::make_unique<Cache>()), Opts(O) {
  auto Initial = std::make_shared<Snapshot>();
  for (const StoredVersion &V : Store.versions()) {
    Initial->Versions.push_back(std::make_shared<const StoredVersion>(V));
    Initial->ImageHash.push_back(imageContentHash(V.Image));
  }
  Snap.store(std::shared_ptr<const Snapshot>(std::move(Initial)));
}

PlanService::~PlanService() = default;

std::shared_ptr<const PlanService::Snapshot> PlanService::snapshot() const {
  return Snap.load();
}

std::optional<UpdatePlan>
PlanService::planOnSnapshot(const Snapshot &S, int FromId, int ToId) const {
  return planBetweenVersions([&S](int Id) { return S.find(Id); }, FromId,
                             ToId);
}

std::optional<UpdatePlan> PlanService::plan(int FromId, int ToId) const {
  RequestTrace Trace;
  ScopedSpan Span("serve.plan");
  LatencyStopwatch Timer(Latency);
  std::shared_ptr<const Snapshot> S = snapshot();
  NPlans.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.plans");

  // Unknown ids are answered (nullopt) but never cached: the snapshot that
  // rejects them today may know them after the next commit.
  if (!S->find(FromId) || !S->find(ToId))
    return std::nullopt;

  if (Opts.CacheCapacity == 0) {
    NMisses.fetch_add(1, std::memory_order_relaxed);
    telemetryCount("serve.cache_misses");
    return planOnSnapshot(*S, FromId, ToId);
  }

  uint64_t Key = pairKey(S->ImageHash[static_cast<size_t>(FromId)],
                         S->ImageHash[static_cast<size_t>(ToId)]);
  std::shared_ptr<CacheEntry> E;
  {
    std::unique_lock<std::mutex> Guard(C->Lock);
    if (auto It = C->Map.find(Key); It != C->Map.end())
      for (const std::shared_ptr<CacheEntry> &Cand : It->second)
        if (Cand->From == FromId && Cand->To == ToId) {
          E = Cand;
          break;
        }
    if (E) {
      if (!E->Ready) {
        // Someone else is computing this exact pair: wait for the latch
        // instead of solving it twice. The waiter still counts a hit —
        // the result was (about to be) in the cache.
        NInflightWaits.fetch_add(1, std::memory_order_relaxed);
        telemetryCount("serve.inflight_waits");
        C->Filled.wait(Guard, [&] { return E->Ready; });
      }
      NHits.fetch_add(1, std::memory_order_relaxed);
      telemetryCount("serve.cache_hits");
      if (E->Resident)
        C->Lru.splice(C->Lru.begin(), C->Lru, E->Self);
      return E->Plan;
    }
    E = std::make_shared<CacheEntry>();
    E->From = FromId;
    E->To = ToId;
    E->Key = Key;
    C->Map[Key].push_back(E);
    C->Lru.push_front(E);
    E->Self = C->Lru.begin();
    NMisses.fetch_add(1, std::memory_order_relaxed);
    telemetryCount("serve.cache_misses");
    C->evictExcess(Opts.CacheCapacity, [this] {
      NEvictions.fetch_add(1, std::memory_order_relaxed);
      telemetryCount("serve.evictions");
    });
  }

  // Compute outside the lock; composition failures are cached too — they
  // are as immutable as any other answer for a committed pair.
  std::optional<UpdatePlan> P = planOnSnapshot(*S, FromId, ToId);
  {
    std::lock_guard<std::mutex> Guard(C->Lock);
    E->Plan = P;
    E->Ready = true;
  }
  C->Filled.notify_all();
  return P;
}

std::vector<std::optional<UpdatePlan>>
PlanService::planBatch(const std::vector<std::pair<int, int>> &Pairs,
                       int Jobs) const {
  // The whole batch is one trace: the context minted here rides through
  // parallelFor into every item's worker thread, so the fan-out reads as
  // one request lifeline in the exported trace.
  RequestTrace Trace;
  ScopedSpan Span("serve.batch");
  NBatches.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.batches");

  // Dedupe in first-seen order so a pair requested twice is planned (or
  // latched on) once, and results map back positionally.
  std::vector<std::pair<int, int>> Unique;
  std::vector<size_t> Slot(Pairs.size());
  std::map<std::pair<int, int>, size_t> Seen;
  for (size_t I = 0; I < Pairs.size(); ++I) {
    auto [It, Inserted] = Seen.try_emplace(Pairs[I], Unique.size());
    if (Inserted)
      Unique.push_back(Pairs[I]);
    Slot[I] = It->second;
  }
  uint64_t Duplicates =
      static_cast<uint64_t>(Pairs.size() - Unique.size());
  if (Duplicates) {
    NBatchDeduped.fetch_add(Duplicates, std::memory_order_relaxed);
    telemetryCount("serve.batch_deduped",
                   static_cast<int64_t>(Duplicates));
  }

  std::vector<std::optional<UpdatePlan>> UniqueResults(Unique.size());
  parallelFor(static_cast<int>(Unique.size()), Jobs, [&](int I) {
    UniqueResults[static_cast<size_t>(I)] =
        plan(Unique[static_cast<size_t>(I)].first,
             Unique[static_cast<size_t>(I)].second);
  });

  std::vector<std::optional<UpdatePlan>> Out(Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I)
    Out[I] = UniqueResults[Slot[I]];
  return Out;
}

int PlanService::warm(const std::vector<int> &NodeVersions,
                      int TargetVersion, int Jobs) const {
  if (Opts.CacheCapacity == 0)
    return 0; // nothing to warm when caching is off

  // Histogram of stale deployed versions (node 0 is the sink, skipped to
  // match campaign cohort grouping).
  std::map<int, int> Count;
  for (size_t Node = 1; Node < NodeVersions.size(); ++Node) {
    int V = NodeVersions[Node];
    if (V != TargetVersion)
      ++Count[V];
  }

  // Hottest version first; ties go to the older version, which campaigns
  // flood first anyway.
  std::vector<std::pair<int, int>> ByHeat(Count.begin(), Count.end());
  std::stable_sort(ByHeat.begin(), ByHeat.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  size_t Take = std::min(ByHeat.size(), Opts.CacheCapacity);

  std::vector<std::pair<int, int>> Pairs;
  Pairs.reserve(Take);
  for (size_t I = 0; I < Take; ++I)
    Pairs.push_back({ByHeat[I].first, TargetVersion});
  planBatch(Pairs, Jobs);
  NPrecomputed.fetch_add(Pairs.size(), std::memory_order_relaxed);
  telemetryCount("serve.precomputed", static_cast<int64_t>(Pairs.size()));
  return static_cast<int>(Pairs.size());
}

int PlanService::commit(const std::string &Source,
                        const CompileOptions &CompileOpts,
                        DiagnosticEngine &Diag, int ParentId) {
  RequestTrace Trace;
  ScopedSpan Span("serve.commit");
  std::lock_guard<std::mutex> Guard(CommitLock);
  CompileOptions Effective = CompileOpts;
  if (!Effective.Cache)
    Effective.Cache = FnCache.get();
  int Id = (Store.size() == 0 && ParentId < 0)
               ? Store.addInitial(Source, Effective, Diag)
               : Store.addUpdate(Source, Effective, Diag, ParentId);
  if (Id < 0)
    return -1;

  // Publish the successor snapshot: reuse every existing entry, copy only
  // the new version. Readers on the old snapshot are unaffected.
  std::shared_ptr<const Snapshot> Old = Snap.load();
  auto Next = std::make_shared<Snapshot>(*Old);
  const StoredVersion &V = *Store.find(Id);
  Next->Versions.push_back(std::make_shared<const StoredVersion>(V));
  Next->ImageHash.push_back(imageContentHash(V.Image));
  Snap.store(std::shared_ptr<const Snapshot>(std::move(Next)));

  NCommits.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.commits");
  return Id;
}

CompileCacheStats PlanService::compileCacheStats() const {
  return FnCache->stats();
}

size_t PlanService::versionCount() const { return snapshot()->Versions.size(); }

int PlanService::latestId() const {
  return static_cast<int>(snapshot()->Versions.size()) - 1;
}

PlanServiceStats PlanService::stats() const {
  PlanServiceStats S;
  S.Plans = NPlans.load(std::memory_order_relaxed);
  S.Hits = NHits.load(std::memory_order_relaxed);
  S.Misses = NMisses.load(std::memory_order_relaxed);
  S.Evictions = NEvictions.load(std::memory_order_relaxed);
  S.InflightWaits = NInflightWaits.load(std::memory_order_relaxed);
  S.Batches = NBatches.load(std::memory_order_relaxed);
  S.BatchDeduped = NBatchDeduped.load(std::memory_order_relaxed);
  S.Precomputed = NPrecomputed.load(std::memory_order_relaxed);
  S.Commits = NCommits.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Guard(C->Lock);
  S.CacheEntries = C->Lru.size();
  return S;
}

void PlanService::clearCache() const {
  std::lock_guard<std::mutex> Guard(C->Lock);
  // Drop Ready entries only; in-flight ones still have an owner that will
  // fill them and waiters parked on the latch. A clear is a reset, not an
  // eviction — serve.evictions counts capacity pressure only.
  for (auto It = C->Lru.begin(); It != C->Lru.end();) {
    if ((*It)->Ready) {
      C->removeFromMap(*It);
      (*It)->Resident = false;
      It = C->Lru.erase(It);
    } else {
      ++It;
    }
  }
}

std::optional<CampaignResult>
ucc::planFleetCampaign(const PlanService &Service, const Topology &T,
                       const std::vector<int> &NodeVersions,
                       int TargetVersion, DiagnosticEngine &Diag,
                       const PacketFormat &Fmt, const Mica2Power &Power,
                       const RadioChannel &Channel) {
  if (TargetVersion < 0 ||
      static_cast<size_t>(TargetVersion) >= Service.versionCount()) {
    Diag.error({}, format("unknown target version %d", TargetVersion));
    return std::nullopt;
  }
  // One batched request covers every cohort; repeated campaigns over
  // similar fleets serve straight from the cache.
  std::vector<int> Stale = staleVersions(NodeVersions, TargetVersion);
  std::vector<std::pair<int, int>> Pairs;
  Pairs.reserve(Stale.size());
  for (int V : Stale)
    Pairs.push_back({V, TargetVersion});
  std::vector<std::optional<UpdatePlan>> Plans = Service.planBatch(Pairs);

  std::map<int, size_t> BytesFor;
  for (size_t I = 0; I < Stale.size(); ++I) {
    if (!Plans[I]) {
      Diag.error({}, format("cannot plan update %d -> %d", Stale[I],
                            TargetVersion));
      return std::nullopt;
    }
    BytesFor[Stale[I]] = Plans[I]->ScriptBytes;
  }
  return runUpdateCampaign(
      T, NodeVersions, TargetVersion,
      [&](int From) { return BytesFor.at(From); }, Fmt, Power, Channel);
}
