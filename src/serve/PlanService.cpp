//===- serve/PlanService.cpp - the sink's update-distribution front end ---===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving mechanics. The snapshot is a vector of shared_ptr-owned
/// StoredVersion copies plus one content hash per version; commit builds
/// the successor snapshot by structural sharing (the old entries are
/// reused, only the new version is copied) and publishes it by bumping an
/// atomic snapshot id — readers keep a thread-local pointer to the
/// snapshot they last used and only take the publication lock when the id
/// moved, so the steady-state read path is one acquire load with no
/// shared-cache-line writes.
///
/// The cache is an array of shards, each following regalloc/WindowCache:
/// entries live in an intrusive LRU list and are found through a
/// hash-keyed collision chain confirmed field by field, a miss inserts a
/// not-yet-ready entry and computes outside the lock, and concurrent
/// requests for the same pair block on the shard's condition variable
/// until the owner fills it. Entries are shared_ptr so an eviction can
/// never pull a result out from under a waiter, and in-flight (not Ready)
/// entries are never evicted. Capacity is a single global budget: the
/// inserting shard evicts from its own LRU tail while the global resident
/// count is over budget, which keeps the degenerate everything-hashes-to-
/// one-shard case exactly as capacious as the uniform case.
///
/// Admission (TinyLFU-flavored) and TTL act per shard under the same
/// lock: every access bumps a small frequency sketch, a computed plan is
/// granted residency over budget only if it is hotter than the shard's
/// LRU victim, and a hit older than the TTL is dropped and recomputed.
/// Neither policy touches the exactly-once latch — the latch entry is
/// always inserted and always filled; the policies only decide residency
/// afterward.
///
//===----------------------------------------------------------------------===//

#include "serve/PlanService.h"

#include "support/Format.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <list>
#include <map>
#include <unordered_map>

using namespace ucc;

namespace {

uint64_t fnv1aBytes(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t imageContentHash(const BinaryImage &Image) {
  std::vector<uint8_t> Bytes = Image.serialize();
  return fnv1aBytes(1469598103934665603ull, Bytes.data(), Bytes.size());
}

/// The canonical cache key: FNV-1a over the two endpoint content hashes,
/// in order (plans are directional). Identity is confirmed against the
/// exact (From, To) ids because distinct versions can share content — the
/// store's own tests commit the same source twice.
uint64_t pairKey(uint64_t FromHash, uint64_t ToHash) {
  uint64_t H = fnv1aBytes(1469598103934665603ull, &FromHash,
                          sizeof(FromHash));
  return fnv1aBytes(H, &ToHash, sizeof(ToHash));
}

/// Key -> shard. A splitmix finalizer decorrelates the shard choice from
/// the in-shard hash map's bucket choice (libstdc++ hashes uint64_t
/// keys by identity).
size_t shardFor(uint64_t Key, size_t NumShards) {
  uint64_t Z = Key + 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  Z ^= Z >> 31;
  return static_cast<size_t>(Z % NumShards);
}

/// Snapshot ids are unique across every service in the process, so a
/// thread-local cached snapshot can never be mistaken for one belonging
/// to a different service that reused the same address.
std::atomic<uint64_t> GlobalSnapId{0};

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Records the enclosing scope's wall time into a latency histogram,
/// early returns included.
struct LatencyStopwatch {
  LatencyHistogram &H;
  std::chrono::steady_clock::time_point T0 =
      std::chrono::steady_clock::now();
  explicit LatencyStopwatch(LatencyHistogram &H) : H(H) {}
  ~LatencyStopwatch() {
    H.record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           T0)
                 .count());
  }
};

/// Installs a fresh TraceContext when events are being recorded and no
/// context is active — the request is externally originated and becomes
/// the root of its own trace. Requests arriving inside an active context
/// (planBatch items, campaign cohorts) keep the caller's trace id.
struct RequestTrace {
  std::optional<TraceContextScope> Scope;
  RequestTrace() {
    if (eventTelemetry() && !currentTraceContext())
      Scope.emplace(TraceContext{nextTraceId(), 0});
  }
};

struct CacheEntry {
  int From = -1;
  int To = -1;
  uint64_t Key = 0;
  bool Ready = false;   ///< Plan is filled in; guarded by the shard lock
  bool Resident = true; ///< still in the LRU list (false after eviction)
  /// Null until Ready; null AND Ready = a cached planning failure.
  std::shared_ptr<const UpdatePlan> Plan;
  double FillSeconds = 0; ///< TTL stamp, set when the plan is filled
  std::list<std::shared_ptr<CacheEntry>>::iterator Self;
};

} // namespace

/// The immutable version index one plan() call reads: dense ids, like the
/// store, plus the per-version content hash the cache key is built from.
struct PlanService::Snapshot {
  uint64_t Id = 0; ///< globally unique publication id
  std::vector<std::shared_ptr<const StoredVersion>> Versions;
  std::vector<uint64_t> ImageHash;

  const StoredVersion *find(int Id) const {
    if (Id < 0 || static_cast<size_t>(Id) >= Versions.size())
      return nullptr;
    return Versions[static_cast<size_t>(Id)].get();
  }
};

/// One cache shard: an independent WindowCache-style LRU plus the shard's
/// slice of the accounting and a small TinyLFU frequency sketch. All
/// fields are guarded by Lock; the counters are plain integers because
/// every mutation already holds it, which is exactly what makes
/// shardStats() consistent.
struct PlanService::Shard {
  std::mutex Lock;
  std::condition_variable Filled;
  /// Front = most recently used. shared_ptr entries keep evicted results
  /// alive for whoever already holds them.
  std::list<std::shared_ptr<CacheEntry>> Lru;
  /// Canonical key -> collision chain (content-equal pairs with different
  /// ids land in the same chain and are told apart by exact id match).
  std::unordered_map<uint64_t, std::vector<std::shared_ptr<CacheEntry>>>
      Map;

  uint64_t Hits = 0, Misses = 0, Evictions = 0, AdmissionRejects = 0,
           TtlExpired = 0, InflightWaits = 0;

  /// Two-probe min sketch of access frequency (the admission doorkeeper's
  /// memory). Halved every 8192 recorded accesses so frequency estimates
  /// stay recency-biased.
  std::array<uint8_t, 1024> Freq{};
  uint32_t SketchOps = 0;

  /// Prebuilt per-shard telemetry counter names (serve.shard.<i>.*), so
  /// the hot path never formats strings.
  std::string CtrHits, CtrMisses, CtrEvictions;

  void recordAccess(uint64_t Key) {
    uint8_t &A = Freq[Key & 1023];
    uint8_t &B = Freq[(Key >> 32) & 1023];
    if (A < 255)
      ++A;
    if (B < 255)
      ++B;
    if (++SketchOps >= 8192) {
      for (uint8_t &C : Freq)
        C = static_cast<uint8_t>(C >> 1);
      SketchOps = 0;
    }
  }

  uint32_t estimate(uint64_t Key) const {
    return std::min(Freq[Key & 1023], Freq[(Key >> 32) & 1023]);
  }

  void removeFromMap(const std::shared_ptr<CacheEntry> &E) {
    auto It = Map.find(E->Key);
    if (It == Map.end())
      return;
    auto &Chain = It->second;
    Chain.erase(std::remove(Chain.begin(), Chain.end(), E), Chain.end());
    if (Chain.empty())
      Map.erase(It);
  }

  /// Unlinks \p E from the shard (map + LRU). Waiters that already hold
  /// the shared_ptr are unaffected.
  void drop(const std::shared_ptr<CacheEntry> &E) {
    removeFromMap(E);
    E->Resident = false;
    Lru.erase(E->Self);
  }

  /// The entry the LRU policy would evict next: the least recently used
  /// Ready entry, excluding \p Keep. Null when every entry is in flight.
  std::shared_ptr<CacheEntry> victim(const CacheEntry *Keep) {
    for (auto It = Lru.rbegin(); It != Lru.rend(); ++It)
      if ((*It)->Ready && It->get() != Keep)
        return *It;
    return nullptr;
  }
};

PlanService::PlanService(VersionStore S, PlanServiceOptions O)
    : Store(std::move(S)), FnCache(std::make_unique<CompileCache>()),
      Opts(std::move(O)) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
  ClockFn = Opts.Clock ? Opts.Clock : steadySeconds;
  Shards.reserve(Opts.Shards);
  for (size_t I = 0; I < Opts.Shards; ++I) {
    auto Sh = std::make_unique<Shard>();
    Sh->CtrHits = format("serve.shard.%zu.hits", I);
    Sh->CtrMisses = format("serve.shard.%zu.misses", I);
    Sh->CtrEvictions = format("serve.shard.%zu.evictions", I);
    Shards.push_back(std::move(Sh));
  }

  auto Initial = std::make_shared<Snapshot>();
  Initial->Id = GlobalSnapId.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const StoredVersion &V : Store.versions()) {
    Initial->Versions.push_back(std::make_shared<const StoredVersion>(V));
    Initial->ImageHash.push_back(imageContentHash(V.Image));
  }
  uint64_t Id = Initial->Id;
  Snap = std::move(Initial);
  CurrentSnapId.store(Id, std::memory_order_release);
}

PlanService::~PlanService() = default;

std::shared_ptr<const PlanService::Snapshot> PlanService::snapshot() const {
  // The thread-local cache makes the common path lock-free: one acquire
  // load of the published id, compared against what this thread last
  // refreshed. A retained shared_ptr can outlive the service (snapshots
  // are self-contained), and globally unique ids rule out aliasing with
  // another service at a reused address.
  struct Cached {
    const PlanService *Svc = nullptr;
    uint64_t Id = 0;
    std::shared_ptr<const Snapshot> Snap;
  };
  thread_local Cached Tls;
  uint64_t Id = CurrentSnapId.load(std::memory_order_acquire);
  if (Tls.Svc == this && Tls.Id == Id && Tls.Snap)
    return Tls.Snap;
  std::lock_guard<std::mutex> Guard(SnapLock);
  Tls.Svc = this;
  Tls.Id = Snap->Id;
  Tls.Snap = Snap;
  return Tls.Snap;
}

std::optional<UpdatePlan>
PlanService::planOnSnapshot(const Snapshot &S, int FromId, int ToId) const {
  return planBetweenVersions([&S](int Id) { return S.find(Id); }, FromId,
                             ToId);
}

std::shared_ptr<const UpdatePlan>
PlanService::planThroughShard(const std::shared_ptr<const Snapshot> &S,
                              int FromId, int ToId) const {
  uint64_t Key = pairKey(S->ImageHash[static_cast<size_t>(FromId)],
                         S->ImageHash[static_cast<size_t>(ToId)]);
  Shard &Sh = *Shards[shardFor(Key, Shards.size())];
  bool UseAdmission =
      Opts.Admit == PlanServiceOptions::Admission::Frequency;
  double Now = Opts.TtlSeconds > 0 ? ClockFn() : 0;

  std::shared_ptr<CacheEntry> E;
  {
    std::unique_lock<std::mutex> Guard(Sh.Lock);
    if (UseAdmission)
      Sh.recordAccess(Key);
    if (auto It = Sh.Map.find(Key); It != Sh.Map.end())
      for (const std::shared_ptr<CacheEntry> &Cand : It->second)
        if (Cand->From == FromId && Cand->To == ToId) {
          E = Cand;
          break;
        }
    if (E && E->Ready && Opts.TtlSeconds > 0 &&
        Now - E->FillSeconds > Opts.TtlSeconds) {
      // Expired: drop it and take the miss path below. Only Ready entries
      // can expire — an in-flight fill is by definition fresh.
      Sh.drop(E);
      TotalEntries.fetch_sub(1, std::memory_order_relaxed);
      ++Sh.TtlExpired;
      telemetryCount("serve.ttl_expired");
      E = nullptr;
    }
    if (E) {
      if (!E->Ready) {
        // Someone else is computing this exact pair: wait for the latch
        // instead of solving it twice. The waiter still counts a hit —
        // the result was (about to be) in the cache.
        ++Sh.InflightWaits;
        telemetryCount("serve.inflight_waits");
        Sh.Filled.wait(Guard, [&] { return E->Ready; });
      }
      ++Sh.Hits;
      if (Telemetry *T = currentTelemetry()) {
        T->addCounter("serve.cache_hits");
        T->addCounter(Sh.CtrHits);
      }
      if (E->Resident)
        Sh.Lru.splice(Sh.Lru.begin(), Sh.Lru, E->Self);
      return E->Plan;
    }
    E = std::make_shared<CacheEntry>();
    E->From = FromId;
    E->To = ToId;
    E->Key = Key;
    Sh.Map[Key].push_back(E);
    Sh.Lru.push_front(E);
    E->Self = Sh.Lru.begin();
    TotalEntries.fetch_add(1, std::memory_order_relaxed);
    ++Sh.Misses;
    if (Telemetry *T = currentTelemetry()) {
      T->addCounter("serve.cache_misses");
      T->addCounter(Sh.CtrMisses);
    }
    if (!UseAdmission) {
      // Classic LRU: enforce the global budget now, evicting from this
      // shard's own tail. In-flight entries are skipped — the cache may
      // transiently exceed its capacity while many pairs compute at once.
      while (TotalEntries.load(std::memory_order_relaxed) >
             Opts.CacheCapacity) {
        std::shared_ptr<CacheEntry> V = Sh.victim(E.get());
        if (!V)
          break;
        Sh.drop(V);
        TotalEntries.fetch_sub(1, std::memory_order_relaxed);
        ++Sh.Evictions;
        if (Telemetry *T = currentTelemetry()) {
          T->addCounter("serve.evictions");
          T->addCounter(Sh.CtrEvictions);
        }
      }
    }
  }

  // Compute outside the lock; composition failures are cached too — they
  // are as immutable as any other answer for a committed pair.
  std::shared_ptr<const UpdatePlan> P;
  if (std::optional<UpdatePlan> Computed =
          planOnSnapshot(*S, FromId, ToId))
    P = std::make_shared<const UpdatePlan>(std::move(*Computed));
  {
    std::lock_guard<std::mutex> Guard(Sh.Lock);
    E->Plan = P;
    E->Ready = true;
    E->FillSeconds = Opts.TtlSeconds > 0 ? ClockFn() : 0;
    if (UseAdmission && E->Resident) {
      // The doorkeeper decides residency only now that the plan exists:
      // over budget, the newcomer must be hotter than the shard's LRU
      // victim to displace it; otherwise the newcomer itself is dropped.
      // Waiters already holding the entry still get their plan.
      while (TotalEntries.load(std::memory_order_relaxed) >
             Opts.CacheCapacity) {
        std::shared_ptr<CacheEntry> V = Sh.victim(E.get());
        if (!V)
          break;
        if (Sh.estimate(E->Key) <= Sh.estimate(V->Key)) {
          Sh.drop(E);
          TotalEntries.fetch_sub(1, std::memory_order_relaxed);
          ++Sh.AdmissionRejects;
          telemetryCount("serve.admission_rejects");
          break;
        }
        Sh.drop(V);
        TotalEntries.fetch_sub(1, std::memory_order_relaxed);
        ++Sh.Evictions;
        if (Telemetry *T = currentTelemetry()) {
          T->addCounter("serve.evictions");
          T->addCounter(Sh.CtrEvictions);
        }
      }
    }
  }
  Sh.Filled.notify_all();
  return P;
}

std::shared_ptr<const UpdatePlan> PlanService::plan(int FromId,
                                                    int ToId) const {
  RequestTrace Trace;
  ScopedSpan Span("serve.plan");
  LatencyStopwatch Timer(Latency);
  std::shared_ptr<const Snapshot> S = snapshot();
  NPlans.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.plans");

  // Unknown ids are answered (null) but never cached: the snapshot that
  // rejects them today may know them after the next commit.
  if (!S->find(FromId) || !S->find(ToId)) {
    NRejected.fetch_add(1, std::memory_order_relaxed);
    telemetryCount("serve.rejected");
    return nullptr;
  }

  if (Opts.CacheCapacity == 0) {
    uint64_t Key = pairKey(S->ImageHash[static_cast<size_t>(FromId)],
                           S->ImageHash[static_cast<size_t>(ToId)]);
    Shard &Sh = *Shards[shardFor(Key, Shards.size())];
    {
      std::lock_guard<std::mutex> Guard(Sh.Lock);
      ++Sh.Misses;
      if (Telemetry *T = currentTelemetry()) {
        T->addCounter("serve.cache_misses");
        T->addCounter(Sh.CtrMisses);
      }
    }
    if (std::optional<UpdatePlan> Computed =
            planOnSnapshot(*S, FromId, ToId))
      return std::make_shared<const UpdatePlan>(std::move(*Computed));
    return nullptr;
  }

  return planThroughShard(S, FromId, ToId);
}

std::vector<std::shared_ptr<const UpdatePlan>>
PlanService::planBatch(const std::vector<std::pair<int, int>> &Pairs,
                       int Jobs) const {
  // The whole batch is one trace: the context minted here rides through
  // parallelFor into every item's worker thread, so the fan-out reads as
  // one request lifeline in the exported trace.
  RequestTrace Trace;
  ScopedSpan Span("serve.batch");
  NBatches.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.batches");

  // Dedupe in first-seen order so a pair requested twice is planned (or
  // latched on) once, and results map back positionally.
  std::vector<std::pair<int, int>> Unique;
  std::vector<size_t> Slot(Pairs.size());
  std::map<std::pair<int, int>, size_t> Seen;
  for (size_t I = 0; I < Pairs.size(); ++I) {
    auto [It, Inserted] = Seen.try_emplace(Pairs[I], Unique.size());
    if (Inserted)
      Unique.push_back(Pairs[I]);
    Slot[I] = It->second;
  }
  uint64_t Duplicates =
      static_cast<uint64_t>(Pairs.size() - Unique.size());
  if (Duplicates) {
    NBatchDeduped.fetch_add(Duplicates, std::memory_order_relaxed);
    telemetryCount("serve.batch_deduped",
                   static_cast<int64_t>(Duplicates));
  }

  std::vector<std::shared_ptr<const UpdatePlan>> UniqueResults(
      Unique.size());
  parallelFor(static_cast<int>(Unique.size()), Jobs, [&](int I) {
    UniqueResults[static_cast<size_t>(I)] =
        plan(Unique[static_cast<size_t>(I)].first,
             Unique[static_cast<size_t>(I)].second);
  });

  std::vector<std::shared_ptr<const UpdatePlan>> Out(Pairs.size());
  for (size_t I = 0; I < Pairs.size(); ++I)
    Out[I] = UniqueResults[Slot[I]];
  return Out;
}

int PlanService::warm(const std::vector<int> &NodeVersions,
                      int TargetVersion, int Jobs) const {
  if (Opts.CacheCapacity == 0)
    return 0; // nothing to warm when caching is off

  // Histogram of stale deployed versions (node 0 is the sink, skipped to
  // match campaign cohort grouping).
  std::map<int, int> Count;
  for (size_t Node = 1; Node < NodeVersions.size(); ++Node) {
    int V = NodeVersions[Node];
    if (V != TargetVersion)
      ++Count[V];
  }

  // Hottest version first; ties go to the older version, which campaigns
  // flood first anyway. The cap is the global capacity — shard placement
  // is the pair hash's business, so even a warm set that lands entirely
  // in one shard stays resident.
  std::vector<std::pair<int, int>> ByHeat(Count.begin(), Count.end());
  std::stable_sort(ByHeat.begin(), ByHeat.end(),
                   [](const auto &A, const auto &B) {
                     return A.second > B.second;
                   });
  size_t Take = std::min(ByHeat.size(), Opts.CacheCapacity);

  std::vector<std::pair<int, int>> Pairs;
  Pairs.reserve(Take);
  for (size_t I = 0; I < Take; ++I)
    Pairs.push_back({ByHeat[I].first, TargetVersion});
  planBatch(Pairs, Jobs);
  NPrecomputed.fetch_add(Pairs.size(), std::memory_order_relaxed);
  telemetryCount("serve.precomputed", static_cast<int64_t>(Pairs.size()));
  return static_cast<int>(Pairs.size());
}

int PlanService::commit(const std::string &Source,
                        const CompileOptions &CompileOpts,
                        DiagnosticEngine &Diag, int ParentId) {
  RequestTrace Trace;
  ScopedSpan Span("serve.commit");
  std::lock_guard<std::mutex> Guard(CommitLock);
  CompileOptions Effective = CompileOpts;
  if (!Effective.Cache)
    Effective.Cache = FnCache.get();
  int Id = (Store.size() == 0 && ParentId < 0)
               ? Store.addInitial(Source, Effective, Diag)
               : Store.addUpdate(Source, Effective, Diag, ParentId);
  if (Id < 0)
    return -1;

  // Publish the successor snapshot: reuse every existing entry, copy only
  // the new version. Readers on the old snapshot are unaffected; readers
  // with a cached pointer notice the id moved and refresh.
  {
    std::lock_guard<std::mutex> SnapGuard(SnapLock);
    auto Next = std::make_shared<Snapshot>(*Snap);
    Next->Id = GlobalSnapId.fetch_add(1, std::memory_order_relaxed) + 1;
    const StoredVersion &V = *Store.find(Id);
    Next->Versions.push_back(std::make_shared<const StoredVersion>(V));
    Next->ImageHash.push_back(imageContentHash(V.Image));
    uint64_t NextId = Next->Id;
    Snap = std::move(Next);
    CurrentSnapId.store(NextId, std::memory_order_release);
  }

  NCommits.fetch_add(1, std::memory_order_relaxed);
  telemetryCount("serve.commits");
  return Id;
}

CompileCacheStats PlanService::compileCacheStats() const {
  return FnCache->stats();
}

size_t PlanService::versionCount() const { return snapshot()->Versions.size(); }

int PlanService::latestId() const {
  return static_cast<int>(snapshot()->Versions.size()) - 1;
}

PlanServiceStats PlanService::stats() const {
  PlanServiceStats S;
  S.Plans = NPlans.load(std::memory_order_relaxed);
  S.Rejected = NRejected.load(std::memory_order_relaxed);
  S.Batches = NBatches.load(std::memory_order_relaxed);
  S.BatchDeduped = NBatchDeduped.load(std::memory_order_relaxed);
  S.Precomputed = NPrecomputed.load(std::memory_order_relaxed);
  S.Commits = NCommits.load(std::memory_order_relaxed);
  // Each shard's slice is read under that shard's lock — never from a
  // racy global — so concurrent eviction cannot tear a shard's (hits,
  // misses, evictions, entries) quadruple.
  for (const std::unique_ptr<Shard> &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh->Lock);
    S.Hits += Sh->Hits;
    S.Misses += Sh->Misses;
    S.Evictions += Sh->Evictions;
    S.AdmissionRejects += Sh->AdmissionRejects;
    S.TtlExpired += Sh->TtlExpired;
    S.InflightWaits += Sh->InflightWaits;
    S.CacheEntries += Sh->Lru.size();
  }
  return S;
}

std::vector<PlanShardStats> PlanService::shardStats() const {
  std::vector<PlanShardStats> Out;
  Out.reserve(Shards.size());
  for (const std::unique_ptr<Shard> &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh->Lock);
    PlanShardStats S;
    S.Hits = Sh->Hits;
    S.Misses = Sh->Misses;
    S.Evictions = Sh->Evictions;
    S.AdmissionRejects = Sh->AdmissionRejects;
    S.TtlExpired = Sh->TtlExpired;
    S.InflightWaits = Sh->InflightWaits;
    S.Entries = Sh->Lru.size();
    Out.push_back(S);
  }
  return Out;
}

size_t PlanService::shardCount() const { return Shards.size(); }

std::optional<size_t> PlanService::shardIndex(int FromId, int ToId) const {
  std::shared_ptr<const Snapshot> S = snapshot();
  if (!S->find(FromId) || !S->find(ToId))
    return std::nullopt;
  uint64_t Key = pairKey(S->ImageHash[static_cast<size_t>(FromId)],
                         S->ImageHash[static_cast<size_t>(ToId)]);
  return shardFor(Key, Shards.size());
}

void PlanService::clearCache() const {
  for (const std::unique_ptr<Shard> &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh->Lock);
    // Drop Ready entries only; in-flight ones still have an owner that
    // will fill them and waiters parked on the latch. A clear is a reset,
    // not an eviction — serve.evictions counts capacity pressure only.
    for (auto It = Sh->Lru.begin(); It != Sh->Lru.end();) {
      if ((*It)->Ready) {
        Sh->removeFromMap(*It);
        (*It)->Resident = false;
        It = Sh->Lru.erase(It);
        TotalEntries.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++It;
      }
    }
  }
}

std::optional<CampaignResult>
ucc::planFleetCampaign(const PlanService &Service, const Topology &T,
                       const std::vector<int> &NodeVersions,
                       int TargetVersion, DiagnosticEngine &Diag,
                       const PacketFormat &Fmt, const Mica2Power &Power,
                       const RadioChannel &Channel) {
  if (TargetVersion < 0 ||
      static_cast<size_t>(TargetVersion) >= Service.versionCount()) {
    Diag.error({}, format("unknown target version %d", TargetVersion));
    return std::nullopt;
  }
  // One batched request covers every cohort; repeated campaigns over
  // similar fleets serve straight from the cache.
  std::vector<int> Stale = staleVersions(NodeVersions, TargetVersion);
  std::vector<std::pair<int, int>> Pairs;
  Pairs.reserve(Stale.size());
  for (int V : Stale)
    Pairs.push_back({V, TargetVersion});
  std::vector<std::shared_ptr<const UpdatePlan>> Plans =
      Service.planBatch(Pairs);

  std::map<int, size_t> BytesFor;
  for (size_t I = 0; I < Stale.size(); ++I) {
    if (!Plans[I]) {
      Diag.error({}, format("cannot plan update %d -> %d", Stale[I],
                            TargetVersion));
      return std::nullopt;
    }
    BytesFor[Stale[I]] = Plans[I]->ScriptBytes;
  }
  return runUpdateCampaign(
      T, NodeVersions, TargetVersion,
      [&](int From) { return BytesFor.at(From); }, Fmt, Power, Channel);
}
