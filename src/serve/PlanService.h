//===- serve/PlanService.h - the sink's update-distribution front end -----===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-serving layer over core/VersionStore: a long-lived sink
/// process answers `plan(from, to)` for a whole fleet at high rates, so the
/// store facade alone — single-threaded, recomputing every diff — is the
/// wrong shape. PlanService wraps a store with four serving mechanisms:
///
///  * an immutable snapshot index published through an atomic sequence
///    number with a per-thread snapshot cache, so steady-state `plan`
///    reads touch no lock and no shared cache line beyond one acquire
///    load, and `commit` never blocks them;
///  * a plan cache split into N independent shards (canonical pair hash →
///    shard), each with its own mutex, LRU list, and exactly-once
///    in-flight latch (generalizing regalloc/WindowCache), so concurrent
///    requests for distinct pairs never contend on a shared lock; plans
///    are held behind `shared_ptr<const UpdatePlan>`, so a cache hit is a
///    pointer copy, not a deep copy of the composed script;
///  * admission and TTL policies per shard: a TinyLFU-flavored frequency
///    doorkeeper that refuses residency to one-hit wonders once the cache
///    is full (scan-resistant), and an optional time-to-live so a
///    long-lived service re-validates stale plans;
///  * batched requests (`planBatch`) that dedupe shared pairs and fan out
///    across support/ThreadPool, plus a precompute pass (`warm`) that
///    seeds the shards from an observed fleet-version histogram.
///
/// Plans are immutable once both endpoints are committed (the version
/// graph is append-only and parent links never change), which is what
/// makes them cacheable forever; correctness is anchored by sharing the
/// exact planner (core planBetweenVersions) with VersionStore::plan, so a
/// served plan is byte-identical to a direct store plan regardless of
/// shard count, thread count, or policy. Serving activity is visible as
/// the `serve.*` telemetry counters — including per-shard
/// `serve.shard.<i>.*` (see docs/OBSERVABILITY.md) — and as
/// PlanServiceStats for callers that need exact accounting in tests.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SERVE_PLANSERVICE_H
#define UCC_SERVE_PLANSERVICE_H

#include "core/VersionStore.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace ucc {

/// Serving knobs. CacheCapacity bounds the number of cached plans across
/// ALL shards (a global budget, not a per-shard quota; each shard evicts
/// from its own LRU tail when the global count is over budget); 0 disables
/// caching entirely, which makes every request recompute — the cache-cold
/// configuration benches measure.
struct PlanServiceOptions {
  size_t CacheCapacity = 256;

  /// Number of independent cache shards (clamped to at least 1). Requests
  /// map to shards by canonical pair hash, so distinct hot pairs spread
  /// across mutexes; 1 reproduces the single-lock cache exactly (tests
  /// that script LRU order pin this).
  size_t Shards = 8;

  /// Cache admission policy. `Always` admits every computed plan (classic
  /// LRU). `Frequency` is a TinyLFU-flavored doorkeeper: while the cache
  /// is over budget, a newly computed plan becomes resident only if its
  /// access frequency (per-shard sketch, periodically halved) exceeds the
  /// would-be LRU victim's — one-pass scans stop thrashing the working
  /// set. Either way the plan is computed once and returned; admission
  /// only decides residency.
  enum class Admission { Always, Frequency };
  Admission Admit = Admission::Always;

  /// Plan time-to-live in seconds; 0 = plans never expire. Expiry is
  /// lazy: an expired entry is dropped on its next lookup (counted as
  /// serve.ttl_expired plus a miss) and recomputed.
  double TtlSeconds = 0;

  /// Clock used for TTL stamps, seconds on any monotonic scale. Unset =
  /// steady_clock. Tests inject a fake clock to make expiry
  /// deterministic.
  std::function<double()> Clock;
};

/// Exact cache accounting, mirrored into the `serve.*` telemetry
/// counters. Summed across shards; each shard's slice is gathered under
/// that shard's own lock, so a quiesced service satisfies
/// Plans == Hits + Misses + Rejected exactly. InflightWaits counts
/// requests that found their pair already being computed and blocked on
/// the latch; it depends on thread scheduling and is observability-only
/// (never asserted or regression-gated).
struct PlanServiceStats {
  uint64_t Plans = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Requests for ids the snapshot does not know (answered null, never
  /// cached, not counted as hit or miss).
  uint64_t Rejected = 0;
  uint64_t Evictions = 0;
  /// Computed plans refused residency by the admission policy.
  uint64_t AdmissionRejects = 0;
  /// Cached plans dropped because they outlived TtlSeconds.
  uint64_t TtlExpired = 0;
  uint64_t InflightWaits = 0;
  uint64_t Batches = 0;
  uint64_t BatchDeduped = 0;
  uint64_t Precomputed = 0;
  uint64_t Commits = 0;
  size_t CacheEntries = 0;
};

/// One shard's slice of the accounting (read under that shard's lock).
struct PlanShardStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t AdmissionRejects = 0;
  uint64_t TtlExpired = 0;
  uint64_t InflightWaits = 0;
  size_t Entries = 0;
};

/// The thread-safe serving front end. `plan`/`planBatch`/`warm` may be
/// called concurrently from any number of threads, concurrently with
/// `commit`; commits are serialized among themselves. The service owns its
/// store — mutate it only through `commit` (direct store access via
/// `store()` is for single-threaded setup and inspection).
class PlanService {
public:
  explicit PlanService(VersionStore Store,
                       PlanServiceOptions Opts = PlanServiceOptions());
  ~PlanService();
  PlanService(const PlanService &) = delete;
  PlanService &operator=(const PlanService &) = delete;

  /// Plans FromId -> ToId against the current snapshot, serving from the
  /// cache when the pair was planned before. The returned plan is
  /// immutable and shared with the cache — a hit costs one shared_ptr
  /// copy. Returns null for ids the snapshot does not know (never cached)
  /// or a composition failure (cached, like any other answer).
  /// Byte-identical to VersionStore::plan on the same version graph.
  std::shared_ptr<const UpdatePlan> plan(int FromId, int ToId) const;

  /// Plans a whole batch: dedupes repeated pairs, fans the distinct ones
  /// out across \p Jobs threads (0 = ThreadPool::defaultJobs()), and
  /// returns one result per input pair, in input order.
  std::vector<std::shared_ptr<const UpdatePlan>>
  planBatch(const std::vector<std::pair<int, int>> &Pairs,
            int Jobs = 0) const;

  /// Precomputes plans for the hottest (version -> \p TargetVersion)
  /// pairs in \p NodeVersions (an observed fleet-version histogram; node 0
  /// is the sink and ignored, matching campaign cohort grouping). Pairs
  /// are warmed most-populous version first, capped at the GLOBAL cache
  /// capacity — pair hashes decide which shard holds each plan, so a warm
  /// set that happens to hash into one shard still fits (capacity is not
  /// split into per-shard quotas). Returns the number of pairs planned.
  int warm(const std::vector<int> &NodeVersions, int TargetVersion,
           int Jobs = 0) const;

  /// Compiles and appends a new version (addInitial when the store is
  /// empty, addUpdate against \p ParentId or the tip otherwise), then
  /// publishes a new snapshot. In-flight plan() calls keep reading the old
  /// snapshot; later calls see the new version. Returns the id, or -1.
  /// Unless \p Opts carries its own CompileCache, the service's
  /// function-level compile cache serves the back half, so commits that
  /// touch few functions skip isel -> RA for the rest (byte-identical
  /// results either way).
  int commit(const std::string &Source, const CompileOptions &Opts,
             DiagnosticEngine &Diag, int ParentId = -1);

  /// Accounting for the service's function-level compile cache.
  CompileCacheStats compileCacheStats() const;

  /// Versions visible to plan() right now (the snapshot, not the store).
  size_t versionCount() const;
  /// Highest id visible to plan() right now, or -1 when empty.
  int latestId() const;

  PlanServiceStats stats() const;
  /// Per-shard accounting, index = shard (each slice read under its
  /// shard's lock).
  std::vector<PlanShardStats> shardStats() const;
  /// Number of cache shards actually in use (>= 1).
  size_t shardCount() const;
  /// The shard the (FromId, ToId) pair maps to under the current
  /// snapshot, or nullopt for unknown ids. Exposed so adversarial benches
  /// and distribution tests can construct same-shard request mixes.
  std::optional<size_t> shardIndex(int FromId, int ToId) const;

  /// Per-request latency distribution (every plan() call records into it,
  /// cache hits and misses alike). Always on — two clock reads and a few
  /// relaxed atomic increments per request — so `uccc monitor` and the
  /// flight recorder can read p50/p95/p99 without enabling telemetry.
  const LatencyHistogram &latency() const { return Latency; }

  /// Clears the latency distribution (for phase-scoped measurements:
  /// cold vs warm windows).
  void resetLatency() const { Latency.reset(); }

  /// Drops every cached plan (the latch state of in-flight computations is
  /// preserved). For cold-vs-warm measurements.
  void clearCache() const;

  /// The underlying store. Not synchronized against commit() — use only
  /// when no other thread is touching the service.
  const VersionStore &store() const { return Store; }

private:
  struct Snapshot;
  struct Shard;

  std::shared_ptr<const Snapshot> snapshot() const;
  std::optional<UpdatePlan> planOnSnapshot(const Snapshot &S, int FromId,
                                           int ToId) const;
  std::shared_ptr<const UpdatePlan>
  planThroughShard(const std::shared_ptr<const Snapshot> &S, int FromId,
                   int ToId) const;

  VersionStore Store; ///< guarded by CommitLock
  std::mutex CommitLock;
  /// Function-level compile cache shared by every commit (internally
  /// synchronized; see core/CompileCache.h).
  std::unique_ptr<CompileCache> FnCache;

  /// Snapshot publication: readers load CurrentSnapId (acquire) and serve
  /// from a thread-local cache when it still names that snapshot; only a
  /// stale thread takes SnapLock to refresh. Snapshot ids are globally
  /// unique, so a thread-local entry can never alias a snapshot from
  /// another service reusing this address.
  mutable std::mutex SnapLock;
  std::shared_ptr<const Snapshot> Snap; ///< guarded by SnapLock
  std::atomic<uint64_t> CurrentSnapId{0};

  std::vector<std::unique_ptr<Shard>> Shards;
  /// Resident entries across all shards (the global capacity budget).
  mutable std::atomic<size_t> TotalEntries{0};
  PlanServiceOptions Opts;
  std::function<double()> ClockFn; ///< resolved TTL clock

  mutable std::atomic<uint64_t> NPlans{0}, NRejected{0}, NBatches{0},
      NBatchDeduped{0}, NPrecomputed{0}, NCommits{0};
  mutable LatencyHistogram Latency;
};

/// The serving-layer fleet campaign: plans every cohort's script through
/// the service (so repeated campaigns over similar fleets hit the cache)
/// and floods them via net/runUpdateCampaign. Same result, flood for
/// flood, as the store-backed core planFleetCampaign.
std::optional<CampaignResult>
planFleetCampaign(const PlanService &Service, const Topology &T,
                  const std::vector<int> &NodeVersions, int TargetVersion,
                  DiagnosticEngine &Diag,
                  const PacketFormat &Fmt = PacketFormat(),
                  const Mica2Power &Power = Mica2Power(),
                  const RadioChannel &Channel = RadioChannel());

} // namespace ucc

#endif // UCC_SERVE_PLANSERVICE_H
