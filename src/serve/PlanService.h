//===- serve/PlanService.h - the sink's update-distribution front end -----===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request-serving layer over core/VersionStore: a long-lived sink
/// process answers `plan(from, to)` for a whole fleet at high rates, so the
/// store facade alone — single-threaded, recomputing every diff — is the
/// wrong shape. PlanService wraps a store with three serving mechanisms:
///
///  * an immutable snapshot index behind an RCU-style atomic pointer swap,
///    so `plan` reads never take a lock and `commit` never blocks them;
///  * a bounded LRU cache of composed plans keyed by a canonical
///    `(fromHash, toHash)` pair, with an exactly-once in-flight latch
///    (generalizing regalloc/WindowCache) so concurrent requests for the
///    same pair compute the plan once and everyone else waits for it;
///  * batched requests (`planBatch`) that dedupe shared pairs and fan out
///    across support/ThreadPool, plus a precompute pass (`warm`) that
///    seeds the cache from an observed fleet-version histogram.
///
/// Plans are immutable once both endpoints are committed (the chain is
/// append-only and parent links never change), which is what makes them
/// cacheable forever; correctness is anchored by sharing the exact planner
/// (core planBetweenVersions) with VersionStore::plan, so a served plan is
/// byte-identical to a direct store plan. Serving activity is visible as
/// the `serve.*` telemetry counters (see docs/OBSERVABILITY.md) and as
/// CacheStats for callers that need exact accounting in tests.
///
//===----------------------------------------------------------------------===//

#ifndef UCC_SERVE_PLANSERVICE_H
#define UCC_SERVE_PLANSERVICE_H

#include "core/VersionStore.h"
#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace ucc {

/// Serving knobs. CacheCapacity bounds the number of cached plans (an LRU
/// evicts beyond it); 0 disables caching entirely, which makes every
/// request recompute — the cache-cold configuration benches measure.
struct PlanServiceOptions {
  size_t CacheCapacity = 256;
};

/// Exact cache accounting, mirrored into the `serve.*` telemetry counters.
/// InflightWaits counts requests that found their pair already being
/// computed and blocked on the latch; it depends on thread scheduling and
/// is observability-only (never asserted or regression-gated).
struct PlanServiceStats {
  uint64_t Plans = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t InflightWaits = 0;
  uint64_t Batches = 0;
  uint64_t BatchDeduped = 0;
  uint64_t Precomputed = 0;
  uint64_t Commits = 0;
  size_t CacheEntries = 0;
};

/// The thread-safe serving front end. `plan`/`planBatch`/`warm` may be
/// called concurrently from any number of threads, concurrently with
/// `commit`; commits are serialized among themselves. The service owns its
/// store — mutate it only through `commit` (direct store access via
/// `store()` is for single-threaded setup and inspection).
class PlanService {
public:
  explicit PlanService(VersionStore Store,
                       PlanServiceOptions Opts = PlanServiceOptions());
  ~PlanService();
  PlanService(const PlanService &) = delete;
  PlanService &operator=(const PlanService &) = delete;

  /// Plans FromId -> ToId against the current snapshot, serving from the
  /// cache when the pair was planned before. Returns nullopt for ids the
  /// snapshot does not know (never cached) or a composition failure
  /// (cached, like any other answer). Byte-identical to
  /// VersionStore::plan on the same chain.
  std::optional<UpdatePlan> plan(int FromId, int ToId) const;

  /// Plans a whole batch: dedupes repeated pairs, fans the distinct ones
  /// out across \p Jobs threads (0 = ThreadPool::defaultJobs()), and
  /// returns one result per input pair, in input order.
  std::vector<std::optional<UpdatePlan>>
  planBatch(const std::vector<std::pair<int, int>> &Pairs,
            int Jobs = 0) const;

  /// Precomputes plans for the hottest (version -> \p TargetVersion)
  /// pairs in \p NodeVersions (an observed fleet-version histogram; node 0
  /// is the sink and ignored, matching campaign cohort grouping). Pairs
  /// are warmed most-populous version first, capped at the cache capacity.
  /// Returns the number of pairs planned.
  int warm(const std::vector<int> &NodeVersions, int TargetVersion,
           int Jobs = 0) const;

  /// Compiles and appends a new version (addInitial when the store is
  /// empty, addUpdate against \p ParentId or the tip otherwise), then
  /// publishes a new snapshot. In-flight plan() calls keep reading the old
  /// snapshot; later calls see the new version. Returns the id, or -1.
  /// Unless \p Opts carries its own CompileCache, the service's
  /// function-level compile cache serves the back half, so commits that
  /// touch few functions skip isel -> RA for the rest (byte-identical
  /// results either way).
  int commit(const std::string &Source, const CompileOptions &Opts,
             DiagnosticEngine &Diag, int ParentId = -1);

  /// Accounting for the service's function-level compile cache.
  CompileCacheStats compileCacheStats() const;

  /// Versions visible to plan() right now (the snapshot, not the store).
  size_t versionCount() const;
  /// Highest id visible to plan() right now, or -1 when empty.
  int latestId() const;

  PlanServiceStats stats() const;

  /// Per-request latency distribution (every plan() call records into it,
  /// cache hits and misses alike). Always on — two clock reads and a few
  /// relaxed atomic increments per request — so `uccc monitor` and the
  /// flight recorder can read p50/p95/p99 without enabling telemetry.
  const LatencyHistogram &latency() const { return Latency; }

  /// Clears the latency distribution (for phase-scoped measurements:
  /// cold vs warm windows).
  void resetLatency() const { Latency.reset(); }

  /// Drops every cached plan (the latch state of in-flight computations is
  /// preserved). For cold-vs-warm measurements.
  void clearCache() const;

  /// The underlying store. Not synchronized against commit() — use only
  /// when no other thread is touching the service.
  const VersionStore &store() const { return Store; }

private:
  struct Snapshot;
  struct Cache;

  std::shared_ptr<const Snapshot> snapshot() const;
  std::optional<UpdatePlan> planOnSnapshot(const Snapshot &S, int FromId,
                                           int ToId) const;

  VersionStore Store; ///< guarded by CommitLock
  std::mutex CommitLock;
  /// Function-level compile cache shared by every commit (internally
  /// synchronized; see core/CompileCache.h).
  std::unique_ptr<CompileCache> FnCache;
  std::atomic<std::shared_ptr<const Snapshot>> Snap;
  std::unique_ptr<Cache> C; ///< internally synchronized
  PlanServiceOptions Opts;

  mutable std::atomic<uint64_t> NPlans{0}, NHits{0}, NMisses{0},
      NEvictions{0}, NInflightWaits{0}, NBatches{0}, NBatchDeduped{0},
      NPrecomputed{0}, NCommits{0};
  mutable LatencyHistogram Latency;
};

/// The serving-layer fleet campaign: plans every cohort's script through
/// the service (so repeated campaigns over similar fleets hit the cache)
/// and floods them via net/runUpdateCampaign. Same result, flood for
/// flood, as the store-backed core planFleetCampaign.
std::optional<CampaignResult>
planFleetCampaign(const PlanService &Service, const Topology &T,
                  const std::vector<int> &NodeVersions, int TargetVersion,
                  DiagnosticEngine &Diag,
                  const PacketFormat &Fmt = PacketFormat(),
                  const Mica2Power &Power = Mica2Power(),
                  const RadioChannel &Channel = RadioChannel());

} // namespace ucc

#endif // UCC_SERVE_PLANSERVICE_H
