//===- core/Compiler.cpp - the update-conscious compiler driver -----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Compiler facade: the shared front half (parse,
/// verify, optimize), the back half (ISel, register allocation, data
/// layout, encoding), record construction, update packaging, and the
/// profile-to-freq(s) bridge. Every phase runs under a telemetry span so a
/// `--trace-json` capture shows the full per-phase breakdown.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "analysis/IRAnalysis.h"
#include "codegen/ISel.h"
#include "core/CompileCache.h"
#include "frontend/IRGen.h"
#include "ir/Verifier.h"
#include "regalloc/LinearScan.h"
#include "regalloc/Validator.h"
#include "support/Interner.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

using namespace ucc;

namespace {

/// Roots a trace for an externally-originated compilation when events are
/// on and no context is active, so `compile.*`/phase spans in the export
/// carry a trace id even outside the serving layer.
struct CompileTrace {
  std::optional<TraceContextScope> Scope;
  CompileTrace() {
    if (eventTelemetry() && !currentTraceContext())
      Scope.emplace(TraceContext{nextTraceId(), 0});
  }
};

/// Shared front half: parse, lower, verify, optimize, select.
std::optional<std::pair<Module, MachineModule>>
frontHalf(const std::string &Source, const CompileOptions &Opts,
          DiagnosticEngine &Diag) {
  Module M = [&] {
    ScopedSpan Span("parse");
    return compileToIR(Source, Diag);
  }();
  if (Diag.hasErrors())
    return std::nullopt;
  if (M.EntryFunc < 0) {
    Diag.error({}, "program has no 'main' function");
    return std::nullopt;
  }
  {
    ScopedSpan Span("verify");
    std::vector<std::string> Problems = verifyModule(M);
    if (!Problems.empty()) {
      for (const std::string &P : Problems)
        Diag.error({}, "internal: IR verification failed: " + P);
      return std::nullopt;
    }
  }
  {
    ScopedSpan Span("opt");
    optimizeModule(M, Opts.Opt);
  }
  assert(moduleIsValid(M) && "optimizer broke the module");
  return std::make_pair(std::move(M), MachineModule());
}

/// Builds the record from a finished compilation.
CompilationRecord buildRecord(const Module &M, const MachineModule &MM,
                              const DataLayoutMap &DL,
                              const std::vector<FrameLayout> &Frames) {
  CompilationRecord Rec;
  Rec.FunctionNames.reserve(M.Functions.size());
  for (const Function &F : M.Functions)
    Rec.FunctionNames.push_back(F.Name);
  Rec.GlobalNames.reserve(M.Globals.size());
  for (const GlobalVar &G : M.Globals)
    Rec.GlobalNames.push_back(G.Name);
  Rec.FinalCode = MM.Functions;
  Rec.FrameOffsets.reserve(Frames.size());
  for (const FrameLayout &FL : Frames)
    Rec.FrameOffsets.push_back(FL.Offsets);
  Rec.GlobalLayout = toOldLayout(M, DL);
  return Rec;
}

/// Back half shared by compile and recompile: the per-function pipeline
/// (isel -> RA -> frame layout), optionally served from the function-level
/// compile cache, then module-level data layout, encoding, and record
/// assembly.
CompileOutput backHalf(Module M, const CompileOptions &Opts,
                       const CompilationRecord *OldRecord) {
  CompileOutput Out;

  bool UseUcc =
      Opts.RA == RegAllocKind::UpdateConscious && OldRecord != nullptr;
  bool UccFrames = UseUcc && Opts.DA == DataAllocKind::UpdateConscious;

  // Interned name tables for cross-version symbol resolution: symbol ids
  // instead of per-compile string-table copies, so the alignment inner
  // loop (instrsSimilar) compares integers.
  StringInterner &SI = StringInterner::global();
  SymbolTable NewGlobalSyms, NewFunctionSyms;
  NewGlobalSyms.reserve(M.Globals.size());
  for (const GlobalVar &G : M.Globals)
    NewGlobalSyms.push_back(SI.intern(G.Name));
  NewFunctionSyms.reserve(M.Functions.size());
  for (const Function &F : M.Functions)
    NewFunctionSyms.push_back(SI.intern(F.Name));
  SymbolTable OldGlobalSyms, OldFunctionSyms;
  if (UseUcc) {
    OldGlobalSyms = internNames(SI, OldRecord->GlobalNames);
    OldFunctionSyms = internNames(SI, OldRecord->FunctionNames);
  }

  // Name-table digests folded into every function's cache key.
  uint64_t NewNamesDigest = 0, OldNamesDigest = 0;
  uint64_t EvictionsBefore = 0;
  if (Opts.Cache) {
    NewNamesDigest = digestModuleNames(M);
    if (OldRecord)
      OldNamesDigest =
          digestNameTables(OldRecord->GlobalNames, OldRecord->FunctionNames);
    EvictionsBefore = Opts.Cache->stats().Evictions;
  }

  int NumFns = static_cast<int>(M.Functions.size());
  Out.MachineCode.EntryFunc = M.EntryFunc;
  Out.MachineCode.Functions.resize(static_cast<size_t>(NumFns));
  Out.RegAllocStats.resize(static_cast<size_t>(NumFns));
  std::vector<FrameLayout> Frames(static_cast<size_t>(NumFns));

  // The per-function pipelines are independent (the shared mutable state
  // — the window memo cache and the compile cache — is internally
  // synchronized), so they fan out over the thread pool. Each item runs
  // under its own telemetry registry, merged back in function order, and
  // every function's result depends only on its own inputs — the output
  // is bit-identical for every Jobs value and with the cache on or off.
  parallelFor(NumFns, Opts.Jobs, [&](int F) {
    const Function &IRF = M.Functions[static_cast<size_t>(F)];
    auto Start = std::chrono::steady_clock::now();

    int OldIdx = UseUcc ? OldRecord->findFunction(IRF.Name) : -1;
    const MachineFunction *OldFinal =
        OldIdx >= 0 ? &OldRecord->FinalCode[static_cast<size_t>(OldIdx)]
                    : nullptr;
    const std::vector<int> *OldOffsets =
        UccFrames && OldIdx >= 0 &&
                static_cast<size_t>(OldIdx) < OldRecord->FrameOffsets.size()
            ? &OldRecord->FrameOffsets[static_cast<size_t>(OldIdx)]
            : nullptr;

    // UCC-RA inputs are part of the cache key, so they are materialized
    // before the lookup (hit or miss).
    UccAllocOptions UccOpts = Opts.Ucc;
    std::vector<double> Freq;
    if (UseUcc) {
      UccOpts.EtransInstr = Opts.Energy.instrTransmissionEnergy();
      UccOpts.EexeCycle = Opts.Energy.energyPerCycle();
      // Measured profile when the caller supplied one, else the static
      // loop-depth estimate.
      auto Profiled = Opts.ProfiledFreq.find(IRF.Name);
      if (Profiled != Opts.ProfiledFreq.end())
        Freq = Profiled->second;
      else
        Freq = statementFrequencies(IRF);
      Freq.resize(static_cast<size_t>(IRF.instrCount()), 1.0);
    }

    auto compute = [&]() -> CompiledFunction {
      CompiledFunction R;
      {
        ScopedSpan Span("isel");
        R.Final = selectFunction(M, IRF);
      }
      {
        ScopedSpan Span("ra");
        if (UseUcc) {
          UccContext Ctx;
          Ctx.OldFinal = OldFinal;
          Ctx.OldGlobalNames = &OldGlobalSyms;
          Ctx.OldFunctionNames = &OldFunctionSyms;
          Ctx.NewGlobalNames = &NewGlobalSyms;
          Ctx.NewFunctionNames = &NewFunctionSyms;
          R.Stats = allocateUcc(R.Final, Ctx, UccOpts, Freq);
        } else {
          allocateLinearScan(R.Final);
          R.Stats = UccAllocStats{};
        }
        assert(validateAllocation(R.Final).empty() &&
               "register allocation failed validation");
      }
      {
        ScopedSpan Span("da");
        if (OldOffsets)
          R.Frame = layoutFrameUpdateConscious(
              R.Final, OldFinal->FrameObjects, *OldOffsets, Opts.UccDa);
        else
          R.Frame = layoutFrame(R.Final);
      }
      return R;
    };

    CompiledFunction R;
    if (Opts.Cache) {
      CompileKeyInputs In;
      In.F = &IRF;
      In.RAKind = static_cast<uint8_t>(Opts.RA);
      In.DAKind = static_cast<uint8_t>(Opts.DA);
      In.UseUcc = UseUcc;
      In.UccFrames = UccFrames;
      In.Ucc = &UccOpts;
      In.SpaceT = Opts.UccDa.SpaceT;
      In.Freq = &Freq;
      In.NewNamesDigest = NewNamesDigest;
      In.OldFinal = OldFinal;
      In.OldFrameOffsets = OldOffsets;
      In.OldNamesDigest = OldNamesDigest;
      bool Hit = false;
      R = Opts.Cache->lookupOrCompute(CompileCache::buildKey(In), compute,
                                      &Hit);
      telemetryCount(Hit ? "compile.cache_hits" : "compile.cache_misses");
    } else {
      R = compute();
    }

    Out.MachineCode.Functions[static_cast<size_t>(F)] = std::move(R.Final);
    Frames[static_cast<size_t>(F)] = std::move(R.Frame);
    Out.RegAllocStats[static_cast<size_t>(F)] = R.Stats;
    if (currentTelemetry()) {
      currentTelemetry()->addGauge(
          "compile.arena_bytes",
          static_cast<double>(R.Stats.ArenaBytes));
      currentTelemetry()->addGauge(
          "ra.seconds." + IRF.Name,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count());
    }
  });

  // Module-level data layout (global regions).
  telemetryBeginSpan("da");
  if (Opts.DA == DataAllocKind::UpdateConscious && OldRecord)
    Out.Layout = layoutGlobalsUpdateConscious(
        M, OldRecord->GlobalLayout, Opts.UccDa, &Out.DataAllocStats);
  else
    Out.Layout = layoutGlobalsBaseline(M);
  telemetryEndSpan(); // da

  {
    ScopedSpan Span("encode");
    Out.Image = encodeModule(Out.MachineCode, M, Out.Layout, Frames,
                             &Out.EncodedIRIndex);
  }

  // Cache accounting on the parent registry (hits/misses were counted in
  // the per-item registries and merge deterministically).
  if (Opts.Cache && currentTelemetry()) {
    CompileCacheStats CS = Opts.Cache->stats();
    telemetryCount("compile.cache_evictions",
                   static_cast<int64_t>(CS.Evictions - EvictionsBefore));
    telemetryGauge("compile.cache_entries",
                   static_cast<double>(CS.Entries));
  }

  Out.Record = buildRecord(M, Out.MachineCode, Out.Layout, Frames);
  Out.IR = std::move(M);
  return Out;
}

} // namespace

std::optional<CompileOutput> Compiler::compile(const std::string &Source,
                                               const CompileOptions &Opts,
                                               DiagnosticEngine &Diag) {
  CompileTrace Trace;
  ScopedSpan Span("compile");
  auto Front = frontHalf(Source, Opts, Diag);
  if (!Front)
    return std::nullopt;
  return backHalf(std::move(Front->first), Opts, /*OldRecord=*/nullptr);
}

std::optional<CompileOutput>
Compiler::recompile(const std::string &Source,
                    const CompilationRecord &OldRecord,
                    const CompileOptions &Opts, DiagnosticEngine &Diag) {
  CompileTrace Trace;
  ScopedSpan Span("recompile");
  auto Front = frontHalf(Source, Opts, Diag);
  if (!Front)
    return std::nullopt;
  return backHalf(std::move(Front->first), Opts, &OldRecord);
}

std::map<std::string, std::vector<double>>
ucc::profiledStatementFrequencies(const CompileOutput &Out,
                                  const std::vector<uint64_t> &InstrCounts) {
  std::map<std::string, std::vector<double>> Freq;
  if (InstrCounts.size() != Out.Image.Code.size())
    return Freq; // profile does not belong to this image

  // Normalizer: one "run" is one execution of the entry function's body.
  double Runs = 1.0;
  if (Out.Image.EntryFunc >= 0) {
    const FunctionSpan &Entry =
        Out.Image.Functions[static_cast<size_t>(Out.Image.EntryFunc)];
    Runs = std::max<double>(1.0, static_cast<double>(
                                     InstrCounts[Entry.Start]));
  }

  for (size_t F = 0; F < Out.Image.Functions.size(); ++F) {
    const FunctionSpan &Span = Out.Image.Functions[F];
    const std::vector<int> &IRIdx = Out.EncodedIRIndex[F];
    int MaxIR = -1;
    for (int Idx : IRIdx)
      MaxIR = std::max(MaxIR, Idx);
    std::vector<double> Table(static_cast<size_t>(MaxIR + 1), 0.0);
    for (size_t K = 0; K < IRIdx.size(); ++K) {
      if (IRIdx[K] < 0)
        continue;
      double Count =
          static_cast<double>(InstrCounts[Span.Start + K]) / Runs;
      Table[static_cast<size_t>(IRIdx[K])] =
          std::max(Table[static_cast<size_t>(IRIdx[K])], Count);
    }
    // Never-executed statements keep a small floor so the cost model does
    // not treat them as free.
    for (double &W : Table)
      W = std::max(W, 0.01);
    Freq[Span.Name] = std::move(Table);
  }
  return Freq;
}

UpdatePackage ucc::makeUpdate(const CompileOutput &Old,
                              const CompileOutput &New, int Jobs) {
  UpdatePackage Pkg;
  Pkg.Update = makeImageUpdate(Old.Image, New.Image, Jobs);
  Pkg.Diff = diffImages(Old.Image, New.Image, Jobs);
  Pkg.ScriptBytes = Pkg.Update.scriptBytes();
  return Pkg;
}
