//===- core/Compiler.cpp - the update-conscious compiler driver -----------===//
//
// Part of the UCC reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the Compiler facade: the shared front half (parse,
/// verify, optimize), the back half (ISel, register allocation, data
/// layout, encoding), record construction, update packaging, and the
/// profile-to-freq(s) bridge. Every phase runs under a telemetry span so a
/// `--trace-json` capture shows the full per-phase breakdown.
///
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "analysis/IRAnalysis.h"
#include "codegen/ISel.h"
#include "frontend/IRGen.h"
#include "ir/Verifier.h"
#include "regalloc/LinearScan.h"
#include "regalloc/Validator.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

using namespace ucc;

namespace {

/// Roots a trace for an externally-originated compilation when events are
/// on and no context is active, so `compile.*`/phase spans in the export
/// carry a trace id even outside the serving layer.
struct CompileTrace {
  std::optional<TraceContextScope> Scope;
  CompileTrace() {
    if (eventTelemetry() && !currentTraceContext())
      Scope.emplace(TraceContext{nextTraceId(), 0});
  }
};

/// Shared front half: parse, lower, verify, optimize, select.
std::optional<std::pair<Module, MachineModule>>
frontHalf(const std::string &Source, const CompileOptions &Opts,
          DiagnosticEngine &Diag) {
  Module M = [&] {
    ScopedSpan Span("parse");
    return compileToIR(Source, Diag);
  }();
  if (Diag.hasErrors())
    return std::nullopt;
  if (M.EntryFunc < 0) {
    Diag.error({}, "program has no 'main' function");
    return std::nullopt;
  }
  {
    ScopedSpan Span("verify");
    std::vector<std::string> Problems = verifyModule(M);
    if (!Problems.empty()) {
      for (const std::string &P : Problems)
        Diag.error({}, "internal: IR verification failed: " + P);
      return std::nullopt;
    }
  }
  {
    ScopedSpan Span("opt");
    optimizeModule(M, Opts.Opt);
  }
  assert(moduleIsValid(M) && "optimizer broke the module");
  return std::make_pair(std::move(M), MachineModule());
}

/// Builds the record from a finished compilation.
CompilationRecord buildRecord(const Module &M, const MachineModule &MM,
                              const DataLayoutMap &DL,
                              const std::vector<FrameLayout> &Frames) {
  CompilationRecord Rec;
  for (const Function &F : M.Functions)
    Rec.FunctionNames.push_back(F.Name);
  for (const GlobalVar &G : M.Globals)
    Rec.GlobalNames.push_back(G.Name);
  Rec.FinalCode = MM.Functions;
  for (const FrameLayout &FL : Frames)
    Rec.FrameOffsets.push_back(FL.Offsets);
  Rec.GlobalLayout = toOldLayout(M, DL);
  return Rec;
}

/// Back half shared by compile and recompile: allocate registers, lay out
/// data, encode, and assemble the output.
CompileOutput backHalf(Module M, const CompileOptions &Opts,
                       const CompilationRecord *OldRecord) {
  CompileOutput Out;
  {
    ScopedSpan Span("isel");
    Out.MachineCode = selectModule(M);
  }

  // Name tables for cross-version symbol resolution.
  std::vector<std::string> NewGlobalNames, NewFunctionNames;
  for (const GlobalVar &G : M.Globals)
    NewGlobalNames.push_back(G.Name);
  for (const Function &F : M.Functions)
    NewFunctionNames.push_back(F.Name);

  bool UseUcc = Opts.RA == RegAllocKind::UpdateConscious &&
                OldRecord != nullptr;

  // The per-function UCC-RA problems are independent (the only shared
  // mutable state, the window memo cache, is internally synchronized), so
  // they fan out over the thread pool. Each item runs under its own
  // telemetry registry, merged back in function order, and every
  // function's allocation depends only on its own inputs — the output is
  // bit-identical for every Jobs value.
  telemetryBeginSpan("ra");
  int NumFns = static_cast<int>(Out.MachineCode.Functions.size());
  Out.RegAllocStats.resize(static_cast<size_t>(NumFns));
  parallelFor(NumFns, Opts.Jobs, [&](int F) {
    MachineFunction &MF = Out.MachineCode.Functions[static_cast<size_t>(F)];
    auto RaStart = std::chrono::steady_clock::now();
    if (UseUcc) {
      UccContext Ctx;
      int OldIdx = OldRecord->findFunction(MF.Name);
      Ctx.OldFinal =
          OldIdx >= 0
              ? &OldRecord->FinalCode[static_cast<size_t>(OldIdx)]
              : nullptr;
      Ctx.OldGlobalNames = &OldRecord->GlobalNames;
      Ctx.OldFunctionNames = &OldRecord->FunctionNames;
      Ctx.NewGlobalNames = &NewGlobalNames;
      Ctx.NewFunctionNames = &NewFunctionNames;

      UccAllocOptions UccOpts = Opts.Ucc;
      UccOpts.EtransInstr = Opts.Energy.instrTransmissionEnergy();
      UccOpts.EexeCycle = Opts.Energy.energyPerCycle();

      // Measured profile when the caller supplied one, else the static
      // loop-depth estimate.
      std::vector<double> Freq;
      auto Profiled = Opts.ProfiledFreq.find(MF.Name);
      if (Profiled != Opts.ProfiledFreq.end())
        Freq = Profiled->second;
      else
        Freq = statementFrequencies(M.Functions[static_cast<size_t>(F)]);
      Freq.resize(
          static_cast<size_t>(M.Functions[static_cast<size_t>(F)].instrCount()),
          1.0);
      Out.RegAllocStats[static_cast<size_t>(F)] =
          allocateUcc(MF, Ctx, UccOpts, Freq);
    } else {
      allocateLinearScan(MF);
      Out.RegAllocStats[static_cast<size_t>(F)] = UccAllocStats{};
    }
    assert(validateAllocation(MF).empty() &&
           "register allocation failed validation");
    if (currentTelemetry())
      currentTelemetry()->addGauge(
          "ra.seconds." + MF.Name,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        RaStart)
              .count());
  });
  telemetryEndSpan(); // ra

  // Data layout.
  telemetryBeginSpan("da");
  if (Opts.DA == DataAllocKind::UpdateConscious && OldRecord)
    Out.Layout = layoutGlobalsUpdateConscious(
        M, OldRecord->GlobalLayout, Opts.UccDa, &Out.DataAllocStats);
  else
    Out.Layout = layoutGlobalsBaseline(M);

  std::vector<FrameLayout> Frames;
  for (const MachineFunction &MF : Out.MachineCode.Functions) {
    int OldIdx = UseUcc && Opts.DA == DataAllocKind::UpdateConscious
                     ? OldRecord->findFunction(MF.Name)
                     : -1;
    if (OldIdx >= 0 &&
        static_cast<size_t>(OldIdx) < OldRecord->FrameOffsets.size())
      Frames.push_back(layoutFrameUpdateConscious(
          MF,
          OldRecord->FinalCode[static_cast<size_t>(OldIdx)].FrameObjects,
          OldRecord->FrameOffsets[static_cast<size_t>(OldIdx)],
          Opts.UccDa));
    else
      Frames.push_back(layoutFrame(MF));
  }
  telemetryEndSpan(); // da

  {
    ScopedSpan Span("encode");
    Out.Image = encodeModule(Out.MachineCode, M, Out.Layout, Frames,
                             &Out.EncodedIRIndex);
  }
  Out.Record = buildRecord(M, Out.MachineCode, Out.Layout, Frames);
  Out.IR = std::move(M);
  return Out;
}

} // namespace

std::optional<CompileOutput> Compiler::compile(const std::string &Source,
                                               const CompileOptions &Opts,
                                               DiagnosticEngine &Diag) {
  CompileTrace Trace;
  ScopedSpan Span("compile");
  auto Front = frontHalf(Source, Opts, Diag);
  if (!Front)
    return std::nullopt;
  return backHalf(std::move(Front->first), Opts, /*OldRecord=*/nullptr);
}

std::optional<CompileOutput>
Compiler::recompile(const std::string &Source,
                    const CompilationRecord &OldRecord,
                    const CompileOptions &Opts, DiagnosticEngine &Diag) {
  CompileTrace Trace;
  ScopedSpan Span("recompile");
  auto Front = frontHalf(Source, Opts, Diag);
  if (!Front)
    return std::nullopt;
  return backHalf(std::move(Front->first), Opts, &OldRecord);
}

std::map<std::string, std::vector<double>>
ucc::profiledStatementFrequencies(const CompileOutput &Out,
                                  const std::vector<uint64_t> &InstrCounts) {
  std::map<std::string, std::vector<double>> Freq;
  if (InstrCounts.size() != Out.Image.Code.size())
    return Freq; // profile does not belong to this image

  // Normalizer: one "run" is one execution of the entry function's body.
  double Runs = 1.0;
  if (Out.Image.EntryFunc >= 0) {
    const FunctionSpan &Entry =
        Out.Image.Functions[static_cast<size_t>(Out.Image.EntryFunc)];
    Runs = std::max<double>(1.0, static_cast<double>(
                                     InstrCounts[Entry.Start]));
  }

  for (size_t F = 0; F < Out.Image.Functions.size(); ++F) {
    const FunctionSpan &Span = Out.Image.Functions[F];
    const std::vector<int> &IRIdx = Out.EncodedIRIndex[F];
    int MaxIR = -1;
    for (int Idx : IRIdx)
      MaxIR = std::max(MaxIR, Idx);
    std::vector<double> Table(static_cast<size_t>(MaxIR + 1), 0.0);
    for (size_t K = 0; K < IRIdx.size(); ++K) {
      if (IRIdx[K] < 0)
        continue;
      double Count =
          static_cast<double>(InstrCounts[Span.Start + K]) / Runs;
      Table[static_cast<size_t>(IRIdx[K])] =
          std::max(Table[static_cast<size_t>(IRIdx[K])], Count);
    }
    // Never-executed statements keep a small floor so the cost model does
    // not treat them as free.
    for (double &W : Table)
      W = std::max(W, 0.01);
    Freq[Span.Name] = std::move(Table);
  }
  return Freq;
}

UpdatePackage ucc::makeUpdate(const CompileOutput &Old,
                              const CompileOutput &New, int Jobs) {
  UpdatePackage Pkg;
  Pkg.Update = makeImageUpdate(Old.Image, New.Image, Jobs);
  Pkg.Diff = diffImages(Old.Image, New.Image, Jobs);
  Pkg.ScriptBytes = Pkg.Update.scriptBytes();
  return Pkg;
}
